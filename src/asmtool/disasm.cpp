#include <map>

#include "asmtool/assembler.hpp"
#include "support/text.hpp"

namespace cepic::asmtool {

std::string disassemble(const Program& program) {
  std::string out;
  out += "// disassembly\n";

  if (!program.data_symbols.empty()) {
    out += ".data\n";
    // Symbols sorted by address reproduce the original layout order.
    std::map<std::uint32_t, std::string> by_addr;
    for (const auto& [name, addr] : program.data_symbols) {
      by_addr[addr] = name;
    }
    std::uint32_t end_addr =
        kDataBase + static_cast<std::uint32_t>(program.data.size());
    for (auto it = by_addr.begin(); it != by_addr.end(); ++it) {
      const std::uint32_t addr = it->first;
      const std::uint32_t next =
          std::next(it) != by_addr.end() ? std::next(it)->first : end_addr;
      const std::uint32_t words = (next - addr) / 4;
      out += cat(".global ", it->second, " ", words);
      // Emit initialiser words up to the last non-zero one.
      std::uint32_t last_nonzero = 0;
      bool any = false;
      for (std::uint32_t w = 0; w < words; ++w) {
        const std::uint32_t off = addr - kDataBase + w * 4;
        const std::uint32_t value =
            (static_cast<std::uint32_t>(program.data[off]) << 24) |
            (static_cast<std::uint32_t>(program.data[off + 1]) << 16) |
            (static_cast<std::uint32_t>(program.data[off + 2]) << 8) |
            static_cast<std::uint32_t>(program.data[off + 3]);
        if (value != 0) {
          last_nonzero = w + 1;
          any = true;
        }
      }
      if (any) {
        out += " =";
        for (std::uint32_t w = 0; w < last_nonzero; ++w) {
          const std::uint32_t off = addr - kDataBase + w * 4;
          const std::uint32_t value =
              (static_cast<std::uint32_t>(program.data[off]) << 24) |
              (static_cast<std::uint32_t>(program.data[off + 1]) << 16) |
              (static_cast<std::uint32_t>(program.data[off + 2]) << 8) |
              static_cast<std::uint32_t>(program.data[off + 3]);
          out += cat(" 0x", std::hex, value, std::dec);
        }
      }
      out += "\n";
    }
  }

  out += ".text\n";
  // Invert the code symbol table: bundle -> labels.
  std::multimap<std::uint32_t, std::string> labels;
  for (const auto& [name, addr] : program.code_symbols) {
    labels.emplace(addr, name);
  }
  for (const auto& [name, addr] : program.code_symbols) {
    if (addr == program.entry_bundle) {
      out += cat(".entry ", name, "\n");
      break;
    }
  }

  const std::size_t width = program.config.issue_width;
  for (std::uint32_t b = 0; b < program.bundle_count(); ++b) {
    for (auto [it, end] = labels.equal_range(b); it != end; ++it) {
      out += cat(it->second, ":\n");
    }
    std::string ops;
    for (std::size_t slot = 0; slot < width; ++slot) {
      const Instruction& inst = program.code[b * width + slot];
      if (inst.is_nop()) continue;
      if (!ops.empty()) ops += " ; ";
      ops += to_string(inst);
    }
    out += ops.empty() ? "nop ;;\n" : cat(ops, " ;;\n");
  }
  return out;
}

}  // namespace cepic::asmtool
