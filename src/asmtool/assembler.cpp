#include "asmtool/assembler.hpp"

#include <map>
#include <optional>
#include <vector>

#include "core/encoding.hpp"
#include "mdes/mdes.hpp"
#include "obs/obs.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic::asmtool {

namespace {

struct PendingOp {
  Instruction inst;
  std::string src1_sym;  ///< unresolved @name for src1
  std::string src2_sym;
  int line = 0;
};

struct PendingGlobal {
  std::string name;
  std::uint32_t size_words = 0;
  std::vector<std::uint32_t> init;
};

class Assembler {
public:
  Assembler(std::string_view source, const ProcessorConfig& config)
      : source_(source), config_(config), mdes_(config) {
    config_.validate();
  }

  Program run() {
    parse();
    return resolve_and_encode();
  }

private:
  [[noreturn]] void error(const std::string& msg) const {
    throw AsmError(msg, line_);
  }

  // ---------- pass 1: parse into pending bundles ----------

  void parse() {
    for (std::string_view raw : split(source_, '\n')) {
      ++line_;
      std::string_view line = raw;
      if (auto slashes = line.find("//"); slashes != std::string_view::npos) {
        line = line.substr(0, slashes);
      }
      line = trim(line);
      if (line.empty()) continue;
      if (line[0] == '.') {
        parse_directive(line);
        continue;
      }
      parse_code_line(line);
    }
    if (!open_bundle_.empty()) {
      error("dangling operations at end of file (missing `;;`)");
    }
  }

  void parse_directive(std::string_view line) {
    const auto words = split_ws(line);
    const std::string_view d = words[0];
    if (d == ".text") {
      in_text_ = true;
      return;
    }
    if (d == ".data") {
      in_text_ = false;
      return;
    }
    if (d == ".entry") {
      if (words.size() != 2) error(".entry needs one label");
      entry_label_ = std::string(words[1]);
      return;
    }
    if (d == ".global") {
      if (words.size() < 3) error(".global needs a name and a size");
      PendingGlobal g;
      g.name = std::string(words[1]);
      std::int64_t size = 0;
      if (!parse_int(words[2], size) || size <= 0) {
        error("bad global size");
      }
      g.size_words = static_cast<std::uint32_t>(size);
      std::size_t i = 3;
      if (i < words.size()) {
        if (words[i] != "=") error("expected `=` before initialiser words");
        ++i;
        for (; i < words.size(); ++i) {
          std::int64_t w = 0;
          if (!parse_int(words[i], w)) error(cat("bad word `", words[i], "`"));
          g.init.push_back(static_cast<std::uint32_t>(w));
        }
      }
      if (g.init.size() > g.size_words) error("too many initialiser words");
      for (const PendingGlobal& prev : globals_) {
        if (prev.name == g.name) error(cat("duplicate global `", g.name, "`"));
      }
      globals_.push_back(std::move(g));
      return;
    }
    error(cat("unknown directive `", std::string(d), "`"));
  }

  void parse_code_line(std::string_view line) {
    if (!in_text_) error("code outside .text");
    // Labels: `name:` possibly several, possibly followed by ops.
    for (;;) {
      line = trim(line);
      const auto colon = line.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view before = trim(line.substr(0, colon));
      if (before.empty() || before.find_first_of(" \t,;#@") !=
                                std::string_view::npos) {
        break;  // the ':' is not a label separator (shouldn't happen)
      }
      if (!open_bundle_.empty()) {
        error("label in the middle of a MultiOp (missing `;;`?)");
      }
      if (labels_.count(std::string(before)) != 0) {
        error(cat("duplicate label `", std::string(before), "`"));
      }
      labels_[std::string(before)] =
          static_cast<std::uint32_t>(bundles_.size());
      line = line.substr(colon + 1);
    }
    line = trim(line);
    if (line.empty()) return;

    // Split on `;;` bundle stops, then on `;` within.
    std::size_t start = 0;
    while (start <= line.size()) {
      const auto stop = line.find(";;", start);
      const std::string_view chunk =
          line.substr(start, stop == std::string_view::npos
                                 ? std::string_view::npos
                                 : stop - start);
      for (std::string_view op_text : split(chunk, ';')) {
        op_text = trim(op_text);
        if (!op_text.empty()) open_bundle_.push_back(parse_op(op_text));
      }
      if (stop == std::string_view::npos) break;
      close_bundle();
      start = stop + 2;
    }
  }

  void close_bundle() {
    if (open_bundle_.size() > config_.issue_width) {
      error(cat("MultiOp has ", open_bundle_.size(),
                " operations; issue width is ", config_.issue_width));
    }
    // Functional-unit constraints from the machine description.
    unsigned used[5] = {0, 0, 0, 0, 0};
    for (const PendingOp& op : open_bundle_) {
      const FuClass fu = op.inst.info().fu;
      if (fu == FuClass::None) continue;
      if (++used[static_cast<std::size_t>(fu)] > mdes_.units(fu)) {
        error(cat("MultiOp oversubscribes ",
                  fu == FuClass::Alu ? "ALU"
                  : fu == FuClass::Cmpu ? "CMPU"
                  : fu == FuClass::Lsu ? "LSU" : "BRU",
                  " units (", mdes_.units(fu), " available)"));
      }
    }
    while (open_bundle_.size() < config_.issue_width) {
      PendingOp nop;
      nop.inst = Instruction::nop();
      nop.line = line_;
      open_bundle_.push_back(nop);
    }
    bundles_.push_back(std::move(open_bundle_));
    open_bundle_.clear();
  }

  // ---- operand / op parsing ----

  struct ParsedOperand {
    enum class Kind { Reg, Lit, Sym } kind;
    char reg_file = 'r';
    std::uint32_t reg = 0;
    std::int32_t lit = 0;
    std::string sym;
  };

  ParsedOperand parse_operand(std::string_view text) {
    text = trim(text);
    if (text.empty()) error("empty operand");
    ParsedOperand op{ParsedOperand::Kind::Reg, 'r', 0, 0, {}};
    if (text[0] == '#') {
      std::int64_t v = 0;
      if (!parse_int(text.substr(1), v)) {
        error(cat("bad literal `", std::string(text), "`"));
      }
      op.kind = ParsedOperand::Kind::Lit;
      op.lit = static_cast<std::int32_t>(v);
      return op;
    }
    if (text[0] == '@') {
      op.kind = ParsedOperand::Kind::Sym;
      op.sym = std::string(text.substr(1));
      if (op.sym.empty()) error("empty symbol reference");
      return op;
    }
    if (text[0] == 'r' || text[0] == 'p' || text[0] == 'b') {
      std::int64_t n = 0;
      if (parse_int(text.substr(1), n) && n >= 0) {
        op.kind = ParsedOperand::Kind::Reg;
        op.reg_file = text[0];
        op.reg = static_cast<std::uint32_t>(n);
        return op;
      }
    }
    error(cat("cannot parse operand `", std::string(text), "`"));
  }

  char file_letter(RegFile f) {
    switch (f) {
      case RegFile::Gpr: return 'r';
      case RegFile::Pred: return 'p';
      case RegFile::Btr: return 'b';
      case RegFile::None: break;
    }
    return '?';
  }

  std::uint32_t expect_reg(const ParsedOperand& op, RegFile file,
                           const char* slot) {
    if (op.kind != ParsedOperand::Kind::Reg) {
      error(cat(slot, ": expected a register"));
    }
    if (op.reg_file != file_letter(file)) {
      error(cat(slot, ": expected `", std::string(1, file_letter(file)),
                "` register, got `", std::string(1, op.reg_file), "`"));
    }
    return op.reg;
  }

  PendingOp parse_op(std::string_view text) {
    PendingOp out;
    out.line = line_;
    text = trim(text);

    // Optional guard: (pN)
    if (!text.empty() && text[0] == '(') {
      const auto close = text.find(')');
      if (close == std::string_view::npos) error("unterminated guard");
      const std::string_view guard = trim(text.substr(1, close - 1));
      if (guard.size() < 2 || guard[0] != 'p') error("bad guard predicate");
      std::int64_t p = 0;
      if (!parse_int(guard.substr(1), p) || p < 0) error("bad guard predicate");
      out.inst.pred = static_cast<std::uint32_t>(p);
      text = trim(text.substr(close + 1));
    }

    // Mnemonic.
    const auto sp = text.find_first_of(" \t");
    const std::string mnemonic =
        to_lower(sp == std::string_view::npos ? text : text.substr(0, sp));
    const auto op = op_by_name(mnemonic);
    if (!op) error(cat("unknown operation `", mnemonic, "`"));
    out.inst.op = *op;
    const OpInfo& info = op_info(*op);
    text = sp == std::string_view::npos ? std::string_view{}
                                        : trim(text.substr(sp));

    // Operand list in to_string order: dest1, dest2, src1, src2.
    std::vector<ParsedOperand> ops;
    if (!text.empty()) {
      for (std::string_view piece : split(text, ',')) {
        ops.push_back(parse_operand(piece));
      }
    }
    std::size_t idx = 0;
    const auto next = [&](const char* slot) -> const ParsedOperand& {
      if (idx >= ops.size()) error(cat("missing ", slot, " operand"));
      return ops[idx++];
    };

    if (info.dest1 != RegFile::None) {
      out.inst.dest1 = expect_reg(next("dest1"), info.dest1, "dest1");
    }
    if (info.dest2 != RegFile::None) {
      out.inst.dest2 = expect_reg(next("dest2"), info.dest2, "dest2");
    }
    const auto src = [&](SrcSpec spec, std::string& sym_out,
                         const char* slot) -> Operand {
      switch (spec) {
        case SrcSpec::None:
          return Operand::none();
        case SrcSpec::Gpr:
          return Operand::r(expect_reg(next(slot), RegFile::Gpr, slot));
        case SrcSpec::Pred:
          return Operand::r(expect_reg(next(slot), RegFile::Pred, slot));
        case SrcSpec::Btr:
          return Operand::r(expect_reg(next(slot), RegFile::Btr, slot));
        case SrcSpec::LitOnly:
        case SrcSpec::GprOrLit: {
          const ParsedOperand& p = next(slot);
          if (p.kind == ParsedOperand::Kind::Lit) return Operand::imm(p.lit);
          if (p.kind == ParsedOperand::Kind::Sym) {
            sym_out = p.sym;
            return Operand::imm(0);  // patched at resolution
          }
          if (spec == SrcSpec::LitOnly) {
            error(cat(slot, ": expected a literal or @symbol"));
          }
          return Operand::r(expect_reg(p, RegFile::Gpr, slot));
        }
      }
      return Operand::none();
    };
    out.inst.src1 = src(info.src1, out.src1_sym, "src1");
    out.inst.src2 = src(info.src2, out.src2_sym, "src2");
    if (idx != ops.size()) {
      error(cat("too many operands for `", mnemonic, "`"));
    }
    return out;
  }

  // ---------- pass 2: resolve symbols, validate, encode ----------

  Program resolve_and_encode() {
    Program p;
    p.config = config_;

    // Data layout: globals in declaration order from kDataBase (the
    // same rule ir::layout_globals uses).
    std::uint32_t addr = kDataBase;
    for (const PendingGlobal& g : globals_) {
      p.data_symbols[g.name] = addr;
      addr += g.size_words * 4;
    }
    p.data.assign(addr - kDataBase, 0);
    for (const PendingGlobal& g : globals_) {
      std::uint32_t off = p.data_symbols[g.name] - kDataBase;
      for (std::uint32_t w : g.init) {
        p.data[off] = static_cast<std::uint8_t>(w >> 24);
        p.data[off + 1] = static_cast<std::uint8_t>(w >> 16);
        p.data[off + 2] = static_cast<std::uint8_t>(w >> 8);
        p.data[off + 3] = static_cast<std::uint8_t>(w);
        off += 4;
      }
    }

    const auto resolve = [&](const std::string& sym, bool is_branch_target,
                             int line) -> std::int32_t {
      if (is_branch_target) {
        if (auto it = labels_.find(sym); it != labels_.end()) {
          return static_cast<std::int32_t>(it->second);
        }
        throw AsmError(cat("undefined label `", sym, "`"), line);
      }
      if (auto it = p.data_symbols.find(sym); it != p.data_symbols.end()) {
        return static_cast<std::int32_t>(it->second);
      }
      if (auto it = labels_.find(sym); it != labels_.end()) {
        return static_cast<std::int32_t>(it->second);
      }
      throw AsmError(cat("undefined symbol `", sym, "`"), line);
    };

    for (std::vector<PendingOp>& bundle : bundles_) {
      for (PendingOp& op : bundle) {
        if (!op.src1_sym.empty()) {
          op.inst.src1 = Operand::imm(
              resolve(op.src1_sym, op.inst.op == Op::PBR, op.line));
        }
        if (!op.src2_sym.empty()) {
          op.inst.src2 = Operand::imm(resolve(op.src2_sym, false, op.line));
        }
        if (const std::string err = validate_instruction(op.inst, config_);
            !err.empty()) {
          throw AsmError(cat("invalid instruction `", to_string(op.inst),
                             "`: ", err),
                         op.line);
        }
        p.code.push_back(op.inst);
      }
    }

    for (const auto& [name, bundle_addr] : labels_) {
      if (bundle_addr > p.bundle_count()) {
        throw AsmError(cat("label `", name, "` past end of code"), line_);
      }
      p.code_symbols[name] = bundle_addr;
    }

    if (!entry_label_.empty()) {
      const auto it = labels_.find(entry_label_);
      if (it == labels_.end()) {
        throw AsmError(cat("undefined entry label `", entry_label_, "`"),
                       line_);
      }
      p.entry_bundle = it->second;
    }

    // Resolved branch targets must land inside the program.
    for (const Instruction& inst : p.code) {
      if (inst.op == Op::PBR &&
          static_cast<std::uint32_t>(inst.src1.lit) >= p.bundle_count()) {
        throw AsmError(cat("branch target ", inst.src1.lit,
                           " outside program (", p.bundle_count(),
                           " bundles)"),
                       0);
      }
    }
    return p;
  }

  std::string_view source_;
  ProcessorConfig config_;
  Mdes mdes_;

  int line_ = 0;
  bool in_text_ = true;
  std::string entry_label_;
  std::vector<PendingGlobal> globals_;
  std::map<std::string, std::uint32_t> labels_;
  std::vector<PendingOp> open_bundle_;
  std::vector<std::vector<PendingOp>> bundles_;
};

}  // namespace

Program assemble(std::string_view source, const ProcessorConfig& config) {
  obs::Span span("assemble", "asm");
  span.arg("source_bytes", static_cast<std::uint64_t>(source.size()));
  return Assembler(source, config).run();
}

Program assemble_with_config_text(std::string_view source,
                                  std::string_view config_text) {
  return assemble(source, ProcessorConfig::from_text(config_text));
}

}  // namespace cepic::asmtool
