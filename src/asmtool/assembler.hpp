// The CEPIC assembler (paper §4.2): maps textual EPIC assembly onto
// machine code for a *specific processor customisation*. Like the
// paper's tool it needs no recompilation to re-target — hand it a
// different configuration (or configuration file) and it packs MultiOps
// to the new issue width, checks functional-unit constraints from the
// machine description, pads with no-ops and re-encodes.
//
// Syntax:
//   // comment (to end of line)
//   .data                          switch to the data section
//   .global <name> <words> [= w0 w1 ...]   reserve/initialise a global
//   .text                          switch to the code section
//   .entry <label>                 program entry bundle
//   <label>:                       bundle label (several may stack)
//   (pN) op d, s1, s2 ; op ... ;;  ops separated by `;`, `;;` ends the
//                                  MultiOp (NOP-padded to issue width)
// Operands: rN (GPR), pN (predicate), bN (BTR), #imm (decimal/hex
// literal), @name (label -> bundle address, or data symbol -> byte
// address).
#pragma once

#include <string_view>

#include "core/program.hpp"

namespace cepic::asmtool {

/// Assemble for a configuration. Throws AsmError with a line number on
/// any syntax, operand, range or bundle-constraint violation.
Program assemble(std::string_view source, const ProcessorConfig& config);

/// Convenience: the configuration itself comes from a configuration
/// file ("configuration header file" in the paper), so a retarget needs
/// no recompilation of the assembler.
Program assemble_with_config_text(std::string_view source,
                                  std::string_view config_text);

/// Render a program back to assembly (labels from the symbol tables;
/// branch-target literals stay numeric). assemble(disassemble(p)) keeps
/// the encoded words bit-identical.
std::string disassemble(const Program& program);

}  // namespace cepic::asmtool
