#include "driver/driver.hpp"

#include "asmtool/assembler.hpp"
#include "frontend/irgen.hpp"

namespace cepic::driver {

EpicCompileResult compile_minic_to_epic(std::string_view source,
                                        const ProcessorConfig& config,
                                        const EpicCompileOptions& options) {
  EpicCompileResult result;
  result.module = minic::compile_to_ir(source);
  if (options.optimize) {
    opt::optimize(result.module, options.opt);
  }
  result.asm_text =
      backend::compile_ir_to_asm(result.module, config, options.backend);
  result.program = asmtool::assemble(result.asm_text, config);
  return result;
}

EpicSimulator run_minic_on_epic(std::string_view source,
                                const ProcessorConfig& config,
                                const EpicCompileOptions& options,
                                const SimOptions& sim_options) {
  EpicCompileOptions opts = options;
  // The backend's stack-top constant must match the simulated memory.
  opts.backend.stack_top = static_cast<std::uint32_t>(sim_options.mem_size);
  EpicCompileResult compiled = compile_minic_to_epic(source, config, opts);
  EpicSimulator sim(std::move(compiled.program),
                    CustomOpTable::for_names(config.custom_ops), sim_options);
  sim.run();
  return sim;
}

sarm::SProgram compile_minic_to_sarm(std::string_view source,
                                     const SarmCompileOptions& options) {
  ir::Module module = minic::compile_to_ir(source);
  if (options.optimize) opt::optimize(module, options.opt);
  return sarm::compile_ir_to_sarm(module, options.backend);
}

sarm::SarmSimulator run_minic_on_sarm(std::string_view source,
                                      const SarmCompileOptions& options,
                                      const sarm::SarmOptionsSim& sim_options) {
  SarmCompileOptions opts = options;
  opts.backend.stack_top = static_cast<std::uint32_t>(sim_options.mem_size);
  sarm::SarmSimulator sim(compile_minic_to_sarm(source, opts), sim_options);
  sim.run();
  return sim;
}

}  // namespace cepic::driver
