#include "driver/driver.hpp"

#include "frontend/irgen.hpp"

namespace cepic::driver {

namespace {

/// A fresh, memory-only Service per call: same bytes as the historical
/// driver (the partition contract guarantees it), no cross-call state.
pipeline::Service make_service(const EpicCompileOptions& options,
                               const SimOptions& sim_options = {}) {
  pipeline::Options popts;
  popts.codegen = options;
  popts.sim = sim_options;
  return pipeline::Service(std::move(popts));
}

}  // namespace

EpicCompileResult compile_minic_to_epic(std::string_view source,
                                        const ProcessorConfig& config,
                                        const EpicCompileOptions& options) {
  pipeline::Service service = make_service(options);
  pipeline::CompileArtifacts artifacts = service.compile(source, config);
  EpicCompileResult result;
  result.module = std::move(artifacts.module);
  result.asm_text = std::move(artifacts.asm_text);
  result.program = std::move(artifacts.program);
  return result;
}

EpicSimulator run_minic_on_epic(std::string_view source,
                                const ProcessorConfig& config,
                                const EpicCompileOptions& options,
                                const SimOptions& sim_options) {
  pipeline::Service service = make_service(options, sim_options);
  return service.run(source, config);
}

sarm::SProgram compile_minic_to_sarm(std::string_view source,
                                     const SarmCompileOptions& options) {
  ir::Module module = minic::compile_to_ir(source);
  if (options.optimize) opt::optimize(module, options.opt);
  return sarm::compile_ir_to_sarm(module, options.backend);
}

sarm::SarmSimulator run_minic_on_sarm(std::string_view source,
                                      const SarmCompileOptions& options,
                                      const sarm::SarmOptionsSim& sim_options) {
  SarmCompileOptions opts = options;
  opts.backend.stack_top = static_cast<std::uint32_t>(sim_options.mem_size);
  sarm::SarmSimulator sim(compile_minic_to_sarm(source, opts), sim_options);
  sim.run();
  return sim;
}

}  // namespace cepic::driver
