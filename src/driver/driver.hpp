// One-call compilation pipelines. Since PR 2 the EPIC entry points are
// thin deprecated shims over cepic::pipeline::Service (see
// pipeline/pipeline.hpp): each call constructs a private, memory-only
// Service, so behaviour is identical to the historical drivers but no
// artifact is shared across calls. New code — anything that compiles
// more than once, wants the persistent store, or runs batches — should
// hold a pipeline::Service instead.
//
// The SARM (scalar baseline) drivers are not part of the EPIC pipeline
// and remain native here.
#pragma once

#include <string>

#include "backend/backend.hpp"
#include "core/program.hpp"
#include "ir/ir.hpp"
#include "opt/opt.hpp"
#include "pipeline/pipeline.hpp"
#include "sarm/codegen.hpp"
#include "sarm/sim.hpp"
#include "sim/simulator.hpp"

namespace cepic::driver {

/// Deprecated spelling of pipeline::CodegenOptions (field-for-field
/// identical; kept so existing call sites compile unchanged).
using EpicCompileOptions = pipeline::CodegenOptions;

struct EpicCompileResult {
  ir::Module module;      ///< optimised IR
  std::string asm_text;   ///< backend output fed to the assembler
  Program program;        ///< assembled machine code
};

/// Compile MiniC to an EPIC program for `config`.
/// Deprecated: use pipeline::Service::compile().
EpicCompileResult compile_minic_to_epic(std::string_view source,
                                        const ProcessorConfig& config,
                                        const EpicCompileOptions& options = {});

/// Compile and run on the cycle-level simulator; returns the simulator
/// so callers can inspect stats, outputs and state. `main`'s return
/// value is left in r3.
/// Deprecated: use pipeline::Service::run().
EpicSimulator run_minic_on_epic(std::string_view source,
                                const ProcessorConfig& config,
                                const EpicCompileOptions& options = {},
                                const SimOptions& sim_options = {});

struct SarmCompileOptions {
  opt::OptOptions opt;
  sarm::SarmOptions backend;
  bool optimize = true;

  SarmCompileOptions() {
    // The scalar baseline is compiled conventionally: EPIC-style
    // if-conversion off (its light ARM counterpart, conditional
    // execution, is applied by the SARM code generator itself).
    opt.if_convert = false;
  }
};

/// Compile MiniC for the SA-110-like scalar baseline.
sarm::SProgram compile_minic_to_sarm(std::string_view source,
                                     const SarmCompileOptions& options = {});

/// Compile and run on the SA-110 cycle-model simulator; `main`'s return
/// value is left in r0.
sarm::SarmSimulator run_minic_on_sarm(
    std::string_view source, const SarmCompileOptions& options = {},
    const sarm::SarmOptionsSim& sim_options = {});

}  // namespace cepic::driver
