// One-call compilation pipelines: MiniC source -> optimised IR -> EPIC
// assembly -> machine code (via the assembler) -> ready-to-run
// simulator. This is the library equivalent of the paper's tool flow
// (IMPACT -> elcor -> assembler -> processor).
#pragma once

#include <string>

#include "backend/backend.hpp"
#include "core/program.hpp"
#include "ir/ir.hpp"
#include "opt/opt.hpp"
#include "sarm/codegen.hpp"
#include "sarm/sim.hpp"
#include "sim/simulator.hpp"

namespace cepic::driver {

struct EpicCompileOptions {
  opt::OptOptions opt;
  backend::BackendOptions backend;
  bool optimize = true;
};

struct EpicCompileResult {
  ir::Module module;      ///< optimised IR
  std::string asm_text;   ///< backend output fed to the assembler
  Program program;        ///< assembled machine code
};

/// Compile MiniC to an EPIC program for `config`.
EpicCompileResult compile_minic_to_epic(std::string_view source,
                                        const ProcessorConfig& config,
                                        const EpicCompileOptions& options = {});

/// Compile and run on the cycle-level simulator; returns the simulator
/// so callers can inspect stats, outputs and state. `main`'s return
/// value is left in r3.
EpicSimulator run_minic_on_epic(std::string_view source,
                                const ProcessorConfig& config,
                                const EpicCompileOptions& options = {},
                                const SimOptions& sim_options = {});

struct SarmCompileOptions {
  opt::OptOptions opt;
  sarm::SarmOptions backend;
  bool optimize = true;

  SarmCompileOptions() {
    // The scalar baseline is compiled conventionally: EPIC-style
    // if-conversion off (its light ARM counterpart, conditional
    // execution, is applied by the SARM code generator itself).
    opt.if_convert = false;
  }
};

/// Compile MiniC for the SA-110-like scalar baseline.
sarm::SProgram compile_minic_to_sarm(std::string_view source,
                                     const SarmCompileOptions& options = {});

/// Compile and run on the SA-110 cycle-model simulator; `main`'s return
/// value is left in r0.
sarm::SarmSimulator run_minic_on_sarm(
    std::string_view source, const SarmCompileOptions& options = {},
    const sarm::SarmOptionsSim& sim_options = {});

}  // namespace cepic::driver
