// Error hierarchy and internal-invariant checking for the CEPIC toolchain.
//
// Policy (see DESIGN.md §5): user-facing failures (bad source program, bad
// assembly, bad configuration, simulated-program faults) are reported as
// exceptions derived from cepic::Error so that tools can catch and print
// them; violations of internal invariants abort via CEPIC_CHECK, which
// throws InternalError carrying the failing expression and location.
#pragma once

#include <stdexcept>
#include <string>

namespace cepic {

/// Root of all CEPIC-reported errors.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid processor configuration (parameter out of range, inconsistent
/// instruction format, ...).
class ConfigError : public Error {
public:
  using Error::Error;
};

/// Error in a MiniC source program (lex/parse/semantic), with location.
class CompileError : public Error {
public:
  CompileError(const std::string& what, int line, int col)
      : Error("line " + std::to_string(line) + ":" + std::to_string(col) +
              ": " + what),
        line_(line), col_(col) {}

  int line() const { return line_; }
  int col() const { return col_; }

private:
  int line_ = 0;
  int col_ = 0;
};

/// Error in textual assembly input.
class AsmError : public Error {
public:
  AsmError(const std::string& what, int line)
      : Error("asm line " + std::to_string(line) + ": " + what), line_(line) {}

  int line() const { return line_; }

private:
  int line_ = 0;
};

/// Fault raised by a simulated program (bad memory access, unencodable
/// instruction, runaway execution past the cycle limit, ...).
class SimError : public Error {
public:
  using Error::Error;
};

/// Broken internal invariant — indicates a bug in CEPIC itself.
class InternalError : public Error {
public:
  using Error::Error;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::string s = "internal check failed: ";
  s += expr;
  s += " at ";
  s += file;
  s += ":";
  s += std::to_string(line);
  if (!msg.empty()) {
    s += ": ";
    s += msg;
  }
  throw InternalError(s);
}

}  // namespace cepic

/// Check an internal invariant; throws cepic::InternalError on failure.
#define CEPIC_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) ::cepic::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
