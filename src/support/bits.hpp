// Bit-field manipulation helpers used by the instruction encoder/decoder
// and the simulators. All word-level state in CEPIC is carried in
// uint32_t/uint64_t; signed interpretation happens explicitly via
// to_signed()/sign_extend() so that shifts and field packing stay
// well-defined (Core Guidelines ES.101/ES.102).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>

#include "support/error.hpp"

namespace cepic {

/// A mask with the low `n` bits set; n may be 0..64.
constexpr std::uint64_t mask64(unsigned n) {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Extract bits [lo, lo+width) of `word`.
constexpr std::uint64_t extract_bits(std::uint64_t word, unsigned lo,
                                     unsigned width) {
  return (word >> lo) & mask64(width);
}

/// Return `word` with bits [lo, lo+width) replaced by the low bits of
/// `value`. Bits of `value` above `width` must be zero.
inline std::uint64_t insert_bits(std::uint64_t word, unsigned lo,
                                 unsigned width, std::uint64_t value) {
  CEPIC_CHECK((value & ~mask64(width)) == 0, "field value overflows width");
  return (word & ~(mask64(width) << lo)) | (value << lo);
}

/// Sign-extend the low `bits` bits of `v` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t v, unsigned bits) {
  if (bits == 0 || bits >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t m = std::uint64_t{1} << (bits - 1);
  const std::uint64_t low = v & mask64(bits);
  return static_cast<std::int64_t>((low ^ m) - m);
}

/// Does the signed value `v` fit in `bits` bits (two's complement)?
constexpr bool fits_signed(std::int64_t v, unsigned bits) {
  if (bits >= 64) return true;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

/// Does the unsigned value `v` fit in `bits` bits?
constexpr bool fits_unsigned(std::uint64_t v, unsigned bits) {
  return bits >= 64 || v <= mask64(bits);
}

/// Number of bits needed to index `n` distinct values (ceil(log2(n))),
/// with a minimum of 1.
constexpr unsigned index_bits(std::uint64_t n) {
  if (n <= 2) return 1;
  return static_cast<unsigned>(std::bit_width(n - 1));
}

/// Reinterpret a uint32 as int32 (two's complement), without UB.
constexpr std::int32_t to_signed(std::uint32_t v) {
  return static_cast<std::int32_t>(v);
}

/// Reinterpret an int32 as uint32.
constexpr std::uint32_t to_unsigned(std::int32_t v) {
  return static_cast<std::uint32_t>(v);
}

/// 32-bit rotate right.
constexpr std::uint32_t rotr32(std::uint32_t v, unsigned n) {
  return std::rotr(v, static_cast<int>(n & 31));
}

inline constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ull;

/// Fold one byte into a running 64-bit FNV-1a hash.
constexpr std::uint64_t fnv1a64_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnvPrime64;
}

/// 64-bit FNV-1a over a byte string. Stable across runs and platforms —
/// used wherever a persisted key is needed (the pipeline stores).
constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t h = kFnvOffset64) {
  for (char c : bytes) h = fnv1a64_byte(h, static_cast<std::uint8_t>(c));
  return h;
}

/// 64-bit FNV-1a over a word stream, each word folded LSB-first. The
/// stable fingerprint of a simulation's OUT stream (pipeline result
/// cache, explore exports).
constexpr std::uint64_t fnv1a64_words(std::span<const std::uint32_t> words,
                                      std::uint64_t h = kFnvOffset64) {
  for (std::uint32_t w : words) {
    for (unsigned b = 0; b < 4; ++b) {
      h = fnv1a64_byte(h, static_cast<std::uint8_t>(w >> (8 * b)));
    }
  }
  return h;
}

}  // namespace cepic
