// Deterministic PRNG used for synthetic workload inputs and property
// tests. xorshift64* — tiny, fast and identical across platforms, so
// every golden value in tests and EXPERIMENTS.md is reproducible.
// The MiniC workloads embed the same algorithm (32-bit variant) so that
// the simulated programs and their native golden references generate
// byte-identical input data.
#pragma once

#include <cstdint>

namespace cepic {

class Prng {
public:
  explicit constexpr Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 1) {}

  constexpr std::uint64_t next_u64() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  constexpr std::uint32_t next_u32() {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  /// Uniform value in [0, bound); bound must be > 0.
  constexpr std::uint32_t next_below(std::uint32_t bound) {
    return static_cast<std::uint32_t>(next_u64() % bound);
  }

  /// Uniform value in [lo, hi] inclusive.
  constexpr std::int32_t next_in(std::int32_t lo, std::int32_t hi) {
    const std::uint32_t span = static_cast<std::uint32_t>(hi - lo) + 1u;
    return lo + static_cast<std::int32_t>(next_below(span));
  }

private:
  std::uint64_t state_;
};

/// The 32-bit xorshift used *inside* MiniC workloads (state is a single
/// int). Kept here so native golden references match the simulated code.
constexpr std::uint32_t xorshift32(std::uint32_t s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

}  // namespace cepic
