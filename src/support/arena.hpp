// Bump-pointer arena for analysis/optimiser scratch memory.
//
// The dataflow solver, the per-pass worklists and the optimiser's
// transient bitsets allocate millions of tiny, same-lifetime blocks per
// compile; routing them through the general-purpose heap dominates the
// mid-end profile. An Arena hands out pointers by bumping a cursor
// through geometrically-growing chunks, never frees individual blocks,
// and recycles every chunk on reset() — so a steady-state optimize()
// performs no heap traffic at all for scratch structures.
//
// Usage discipline:
//  * only trivially-destructible element types (enforced for the typed
//    helpers) — nothing runs destructors;
//  * scratch() returns a thread-local arena shared by the analysis
//    stack; always pair uses with an ArenaScope so nested computations
//    (e.g. a pass querying two analyses) unwind to their watermark;
//  * cached/persistent results must NOT live in the scratch arena —
//    copy them out before the scope closes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace cepic {

class Arena {
 public:
  static constexpr std::size_t kMinChunk = 16u << 10;  // 16 KiB

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t size, std::size_t align) {
    std::size_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (chunk_ >= chunks_.size() || p + size > chunks_[chunk_].size) {
      next_chunk(size + align);
      p = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = p + size;
    used_ = cursor_ + prior_used_;
    if (used_ > peak_) peak_ = used_;
    return chunks_[chunk_].data.get() + p;
  }

  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Zero-filled variant (BitSet rows, flag arrays).
  template <typename T>
  T* alloc_zeroed(std::size_t n) {
    T* p = alloc_array<T>(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = T{};
    return p;
  }

  /// Rewind to empty, keeping every chunk for reuse.
  void reset() {
    chunk_ = 0;
    cursor_ = 0;
    prior_used_ = 0;
    used_ = 0;
  }

  /// Bytes currently handed out (high-water within this fill).
  std::size_t bytes_used() const { return used_; }
  /// Largest bytes_used() ever observed (survives reset()).
  std::size_t bytes_peak() const { return peak_; }
  /// Total bytes owned by the arena's chunks.
  std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const Chunk& c : chunks_) n += c.size;
    return n;
  }

  /// The thread-local scratch arena shared by the analysis/opt stack.
  static Arena& scratch();

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  struct Mark {
    std::size_t chunk;
    std::size_t cursor;
    std::size_t prior_used;
  };
  friend class ArenaScope;

  Mark mark() const { return {chunk_, cursor_, prior_used_}; }
  void rewind(const Mark& m) {
    chunk_ = m.chunk;
    cursor_ = m.cursor;
    prior_used_ = m.prior_used;
    used_ = prior_used_ + cursor_;
  }

  void next_chunk(std::size_t need) {
    if (chunk_ < chunks_.size()) {  // the current chunk exists but is full
      prior_used_ += cursor_;
      ++chunk_;
    }
    cursor_ = 0;
    if (chunk_ < chunks_.size() && chunks_[chunk_].size >= need) return;
    std::size_t size = chunks_.empty() ? kMinChunk : chunks_.back().size * 2;
    if (size < need) size = need;
    // Drop any too-small tail chunks so the geometric ladder stays sorted.
    chunks_.resize(chunk_);
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;       ///< index of the chunk being filled
  std::size_t cursor_ = 0;      ///< bump offset within the current chunk
  std::size_t prior_used_ = 0;  ///< bytes consumed in earlier chunks
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
};

/// RAII watermark: everything allocated inside the scope is reclaimed
/// (without destructors) when it closes. Scopes nest like stack frames.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

inline Arena& Arena::scratch() {
  thread_local Arena arena;
  return arena;
}

}  // namespace cepic
