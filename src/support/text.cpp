#include "support/text.hpp"

#include <cctype>
#include <cstdlib>
#include <iomanip>

namespace cepic {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool parse_int(std::string_view s, std::int64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    s.remove_prefix(1);
    if (s.empty()) return false;
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
    if (s.empty()) return false;
  }
  std::uint64_t value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    const std::uint64_t next = value * static_cast<unsigned>(base) +
                               static_cast<unsigned>(digit);
    if (next < value) return false;  // overflow
    value = next;
  }
  out = neg ? -static_cast<std::int64_t>(value)
            : static_cast<std::int64_t>(value);
  return true;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace cepic
