// Small text utilities shared by the assembler, config parser and
// table-printing benches. GCC 12 lacks <format>, so `cat()` provides the
// variadic string building used throughout.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cepic {

namespace detail {
inline void cat_one(std::ostringstream& os, const std::string& v) { os << v; }
inline void cat_one(std::ostringstream& os, std::string_view v) { os << v; }
inline void cat_one(std::ostringstream& os, const char* v) { os << v; }
inline void cat_one(std::ostringstream& os, char v) { os << v; }
inline void cat_one(std::ostringstream& os, bool v) {
  os << (v ? "true" : "false");
}
template <typename T>
void cat_one(std::ostringstream& os, T v) {
  os << v;
}
}  // namespace detail

/// Concatenate heterogeneous values into a string.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (detail::cat_one(os, args), ...);
  return os.str();
}

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty pieces are kept.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on any whitespace; empty pieces are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// Case-sensitive prefix test (string_view helper for older call sites).
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view s);

/// Parse a MiniC/assembly integer literal: decimal, 0x hex, or negative.
/// Returns false if `s` is not a valid literal or overflows 64 bits.
bool parse_int(std::string_view s, std::int64_t& out);

/// Fixed-width right-aligned rendering used by the bench table printers.
std::string pad_left(const std::string& s, std::size_t width);
/// Fixed-width left-aligned rendering.
std::string pad_right(const std::string& s, std::size_t width);

/// Render a double with `digits` fractional digits.
std::string fixed(double v, int digits);

}  // namespace cepic
