// Custom-instruction support (paper §3.3): an application may bind up to
// four extra ALU operations to the CUSTOM0..CUSTOM3 opcode slots. The
// processor configuration names the enabled ops; this table supplies
// their semantics (for the simulator) and their area cost (for the FPGA
// model). Neither the assembler nor the simulator needs recompiling to
// pick up a new custom op — mirroring the paper's claim for its tools.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/isa.hpp"

namespace cepic {

struct CustomOp {
  std::string name;
  /// Combinational semantics: (src1, src2) -> result, on the masked
  /// datapath width.
  std::function<std::uint32_t(std::uint32_t, std::uint32_t)> eval;
  /// FPGA slice cost of adding this op to *each* ALU.
  double slices_per_alu = 200.0;
  /// Block multipliers consumed per ALU (e.g. madd16 uses multipliers).
  unsigned block_mults_per_alu = 0;
  unsigned latency = 1;
};

/// Registry binding CUSTOM0..3 slots to semantics. A default-constructed
/// table has no ops; ops are installed by slot.
class CustomOpTable {
public:
  void install(unsigned slot, CustomOp op);

  bool has(unsigned slot) const {
    return slot < ops_.size() && ops_[slot].has_value();
  }
  const CustomOp& get(unsigned slot) const;

  /// Find the slot bound to `name`, if any.
  std::optional<unsigned> slot_of(std::string_view name) const;

  /// Builds a table binding `names[i]` to slot i using the built-in
  /// library of example ops (see builtin_custom_op). Throws ConfigError
  /// for unknown names.
  static CustomOpTable for_names(const std::vector<std::string>& names);

private:
  std::array<std::optional<CustomOp>, 4> ops_;
};

/// Built-in example custom ops used by tests, examples and ablation A4:
///   "rotr"   — 32-bit rotate right (SHA-256 sigma functions)
///   "madd16" — dual 16-bit multiply-accumulate:
///              lo16(s1)*lo16(s2) + hi16(s1)*hi16(s2), for DCT butterflies
///   "popc"   — popcount(s1) + s2
///   "sadd"   — signed saturating add
std::optional<CustomOp> builtin_custom_op(std::string_view name);

}  // namespace cepic
