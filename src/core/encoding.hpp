// Binary encoding of instructions into the parameterisable fixed-width
// format of paper Fig. 1. The OPCODE field holds the 12-bit operation id
// plus two flags marking SRC1/SRC2 as inline literals; all other fields
// are plain indices / literal bits. Encoding always validates against
// the configuration first, so a successfully encoded word is always
// decodable on a processor with the same configuration.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/instruction.hpp"

namespace cepic {

/// Encode one instruction. Throws Error if the instruction fails
/// validate_instruction() for `cfg`.
std::uint64_t encode_instruction(const Instruction& inst,
                                 const ProcessorConfig& cfg);

/// Decode one instruction word. Throws Error on an unknown operation id,
/// malformed literal flags, or out-of-range fields.
Instruction decode_instruction(std::uint64_t word,
                               const ProcessorConfig& cfg);

}  // namespace cepic
