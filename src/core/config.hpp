// ProcessorConfig: the compile-time customisation parameters of the EPIC
// processor (paper §3.3), and InstructionFormat: the parameterisable
// 64-bit instruction layout derived from them (paper Fig. 1).
//
// The paper instantiates all parameters "in the configuration header
// file"; ProcessorConfig::from_text()/to_text() implement that file so
// the assembler and simulator can re-target without recompilation
// (paper §4.2).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace cepic {

/// Which operation groups the ALUs implement. Trimming unused groups is
/// the paper's primary example of customisation ("ALUs do not need to
/// support division if this operation is not required").
struct AluFeatures {
  bool has_mul = true;
  bool has_div = true;  ///< covers DIV and REM
  bool has_shift = true;
  bool has_minmax = true;  ///< MIN/MAX/ABS

  bool operator==(const AluFeatures&) const = default;
};

/// Layout of one fixed-width instruction (paper Fig. 1):
///   OPCODE | DEST1 | DEST2 | SRC1 | SRC2 | PRED   (MSB → LSB)
/// The OPCODE field carries the operation id plus two "source is a
/// literal" flags. With the default configuration the widths are
/// 15/6/6/16/16/5 = 64 bits, exactly the paper's format.
struct InstructionFormat {
  unsigned opcode_bits = 15;
  unsigned dest_bits = 6;
  unsigned src_bits = 16;
  unsigned pred_bits = 5;

  /// Bits of the OPCODE field that hold the operation id (the remaining
  /// bits are the two literal flags and spare).
  static constexpr unsigned kOpIdBits = 12;
  /// Flag bit positions inside the OPCODE field (from its LSB).
  static constexpr unsigned kSrc1LitFlag = 0;
  static constexpr unsigned kSrc2LitFlag = 1;

  unsigned total_bits() const {
    return opcode_bits + 2 * dest_bits + 2 * src_bits + pred_bits;
  }

  // Field offsets from bit 0 (LSB) of the instruction word.
  unsigned pred_lo() const { return 0; }
  unsigned src2_lo() const { return pred_bits; }
  unsigned src1_lo() const { return pred_bits + src_bits; }
  unsigned dest2_lo() const { return pred_bits + 2 * src_bits; }
  unsigned dest1_lo() const { return pred_bits + 2 * src_bits + dest_bits; }
  unsigned opcode_lo() const {
    return pred_bits + 2 * src_bits + 2 * dest_bits;
  }

  bool operator==(const InstructionFormat&) const = default;
};

/// All customisation parameters from paper §3.3, with the paper's
/// defaults: 4 ALUs, 64 GPRs, 32 predicate registers, 16 branch target
/// registers, 32-bit datapath, 4 instructions per issue.
struct ProcessorConfig {
  unsigned num_alus = 4;
  unsigned num_gprs = 64;
  unsigned num_preds = 32;
  unsigned num_btrs = 16;
  /// Instructions per issue; constrained to 1..4 by memory bandwidth
  /// (paper §3.3 last paragraph).
  unsigned issue_width = 4;
  /// Width of datapath and registers, in bits (8..32 supported by the
  /// simulator; the FPGA model accepts up to 64).
  unsigned datapath_width = 32;
  /// "Number of registers each instruction can use" (paper §3.3) — an
  /// encoding-level cap on register operands per instruction.
  unsigned max_regs_per_instr = 4;
  /// Register read+write operations available per processor cycle. The
  /// paper's dual-port register file with a 4x-clock controller gives 8.
  unsigned reg_port_budget = 8;
  /// Result forwarding by the register file controller (paper §3.2).
  bool forwarding = true;
  /// If true, data-memory accesses steal instruction-fetch bandwidth
  /// from the shared external banks (ablation A2); off by default.
  bool unified_memory_contention = false;
  /// Load-to-use latency in cycles as exposed to the scheduler.
  unsigned load_latency = 2;
  /// Pipeline depth (paper future work: "parameterising the level of
  /// pipelining"). The prototype is 2-stage (Fetch/Decode/Issue |
  /// Execute/WriteBack); deeper pipelines raise the clock (see the FPGA
  /// model) at the cost of one taken-branch bubble per extra stage.
  unsigned pipeline_stages = 2;

  AluFeatures alu;

  /// Names of enabled custom ALU operations, bound to CUSTOM0.. slots in
  /// order. The CustomOpTable supplies their semantics.
  std::vector<std::string> custom_ops;

  /// Derive the instruction format. Field widths grow automatically with
  /// the register-file sizes (the paper's "provision for adjustment").
  InstructionFormat format() const;

  /// Throws ConfigError if any parameter is out of range or the derived
  /// format exceeds the 64-bit container.
  void validate() const;

  /// Parse the textual configuration file (one `key = value` per line,
  /// `#` comments). Unknown keys are rejected.
  static ProcessorConfig from_text(std::string_view text);

  /// Render as a configuration file (round-trips through from_text).
  std::string to_text() const;

  /// Order-stable 64-bit hash of the canonical textual form, identical
  /// across runs and platforms. Two configs hash equal iff they compare
  /// equal (to_text() covers every field). Keys the explore result
  /// cache, including its on-disk file.
  std::uint64_t stable_hash() const;

  /// Compact one-line description for sweep tables and CSV rows, e.g.
  /// "2alu/4iss/8port/2stg" plus any non-default extras.
  std::string summary() const;

  bool operator==(const ProcessorConfig&) const = default;
};

}  // namespace cepic
