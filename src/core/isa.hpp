// The CEPIC instruction set: an integer subset of HPL-PD (paper §3.1),
// plus CUSTOM0..CUSTOM3 slots for application-specific instructions
// (paper §3.3). Each operation carries static metadata (functional unit,
// operand shapes, latency class) consumed by the encoder, assembler,
// scheduler and simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace cepic {

enum class Op : std::uint16_t {
  NOP = 0,

  // ALU operations (one of the N ALUs).
  ADD, SUB, MUL, DIV, REM,
  AND, OR, XOR,
  SHL, SHRA, SHRL,
  MIN, MAX, ABS,
  MOV,

  // Compare-to-predicate operations (CMPU). Dual destination, HPL-PD
  // style: DEST1 pred <- cond, DEST2 pred <- !cond.
  CMPP_EQ, CMPP_NE,
  CMPP_LT, CMPP_LE, CMPP_GT, CMPP_GE,
  CMPP_LTU, CMPP_LEU, CMPP_GTU, CMPP_GEU,
  PSET,  ///< DEST1 pred <- (src1 != 0)

  // Load/store unit.
  LDW,   ///< word load,  dest <- mem32[src1 + src2]
  LDB,   ///< byte load, sign-extended
  LDBU,  ///< byte load, zero-extended
  LDWS,  ///< speculative word load: never faults, out-of-range loads 0
  STW,   ///< mem32[src1 + src2] <- dest1-as-source
  STB,   ///< byte store
  OUT,   ///< memory-mapped output port: emit src1 (used by workloads)

  // Branch unit. Branch targets are *bundle* addresses held in branch
  // target registers (BTRs), prepared in advance by PBR (paper §3.2).
  PBR,   ///< BTR[dest1] <- literal target
  BRU,   ///< unconditional branch to BTR[src1]
  BRCT,  ///< branch to BTR[src1] if predicate src2 is true
  BRCF,  ///< branch to BTR[src1] if predicate src2 is false
  BRL,   ///< branch-and-link: GPR[dest1] <- return bundle, jump BTR[src1]
  BRR,   ///< indirect branch to bundle address in GPR[src1] (return)
  HALT,  ///< stop the processor

  // Custom-instruction slots (ALU class); semantics supplied at runtime
  // by a CustomOpTable bound to the configuration.
  CUSTOM0, CUSTOM1, CUSTOM2, CUSTOM3,

  kCount
};

constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kCount);

/// Functional unit classes (paper Fig. 2).
enum class FuClass : std::uint8_t { None, Alu, Cmpu, Lsu, Bru };

/// Register files addressed by operands.
enum class RegFile : std::uint8_t { None, Gpr, Pred, Btr };

/// Shape of a source operand slot.
enum class SrcSpec : std::uint8_t {
  None,      ///< slot unused
  Gpr,       ///< must be a GPR index
  Pred,      ///< must be a predicate-register index
  Btr,       ///< must be a BTR index
  GprOrLit,  ///< GPR index or inline literal
  LitOnly,   ///< inline literal only
};

struct OpInfo {
  Op op = Op::NOP;
  std::string_view name;
  FuClass fu = FuClass::None;
  RegFile dest1 = RegFile::None;
  RegFile dest2 = RegFile::None;
  SrcSpec src1 = SrcSpec::None;
  SrcSpec src2 = SrcSpec::None;
  /// For stores the DEST1 field is read, not written (value operand).
  bool dest1_is_source = false;
  /// Literals are zero-extended (logical/shift/unsigned-compare ops)
  /// rather than sign-extended.
  bool literal_zero_extends = false;
  /// Default result latency in cycles (MDES may override loads).
  unsigned latency = 1;
  bool is_branch = false;
  bool is_load = false;
  bool is_store = false;

  bool is_mem() const { return is_load || is_store || op == Op::OUT; }
  bool writes_dest1() const {
    return dest1 != RegFile::None && !dest1_is_source;
  }
};

/// Static metadata for an operation. O(1).
const OpInfo& op_info(Op op);

/// Look an operation up by its assembly mnemonic (lower-case).
std::optional<Op> op_by_name(std::string_view name);

/// True for the CUSTOM0..CUSTOM3 slots.
constexpr bool is_custom(Op op) {
  return op >= Op::CUSTOM0 && op <= Op::CUSTOM3;
}

/// Slot index 0..3 of a custom op.
constexpr unsigned custom_slot(Op op) {
  return static_cast<unsigned>(op) - static_cast<unsigned>(Op::CUSTOM0);
}

/// True if op is one of the compare-to-predicate operations.
constexpr bool is_cmpp(Op op) {
  return op >= Op::CMPP_EQ && op <= Op::CMPP_GEU;
}

}  // namespace cepic
