#include "core/memory.hpp"

#include "core/program.hpp"
#include "support/text.hpp"

namespace cepic {

DataMemory::DataMemory(std::size_t size_bytes) : bytes_(size_bytes, 0) {
  CEPIC_CHECK(size_bytes >= kDataBase, "data memory smaller than data base");
}

void DataMemory::load_image(std::uint32_t base,
                            std::span<const std::uint8_t> image) {
  CEPIC_CHECK(base + image.size() <= bytes_.size(),
              "data image does not fit in memory");
  std::copy(image.begin(), image.end(), bytes_.begin() + base);
}

void DataMemory::check(std::uint32_t addr, unsigned n, bool write) const {
  if (addr < kDataBase) {
    throw SimError(cat(write ? "store" : "load", " to unmapped low address 0x",
                       std::hex, addr, " (null guard)"));
  }
  if (static_cast<std::size_t>(addr) + n > bytes_.size()) {
    throw SimError(cat(write ? "store" : "load", " past end of memory: 0x",
                       std::hex, addr));
  }
  if (n == 4 && (addr & 3u) != 0) {
    throw SimError(cat("misaligned word ", write ? "store" : "load",
                       " at 0x", std::hex, addr));
  }
}

std::uint32_t DataMemory::read_word(std::uint32_t addr) const {
  check(addr, 4, false);
  // Big-endian, as the paper's architecture.
  return (static_cast<std::uint32_t>(bytes_[addr]) << 24) |
         (static_cast<std::uint32_t>(bytes_[addr + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[addr + 2]) << 8) |
         static_cast<std::uint32_t>(bytes_[addr + 3]);
}

void DataMemory::write_word(std::uint32_t addr, std::uint32_t value) {
  check(addr, 4, true);
  bytes_[addr] = static_cast<std::uint8_t>(value >> 24);
  bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 16);
  bytes_[addr + 2] = static_cast<std::uint8_t>(value >> 8);
  bytes_[addr + 3] = static_cast<std::uint8_t>(value);
}

std::uint8_t DataMemory::read_byte(std::uint32_t addr) const {
  check(addr, 1, false);
  return bytes_[addr];
}

void DataMemory::write_byte(std::uint32_t addr, std::uint8_t value) {
  check(addr, 1, true);
  bytes_[addr] = value;
}

std::uint32_t DataMemory::read_word_speculative(std::uint32_t addr) const {
  if (addr < kDataBase || (addr & 3u) != 0 ||
      static_cast<std::size_t>(addr) + 4 > bytes_.size()) {
    return 0;
  }
  return read_word(addr);
}

}  // namespace cepic
