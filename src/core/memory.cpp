#include "core/memory.hpp"

#include <bit>

#include "core/program.hpp"
#include "support/text.hpp"

namespace cepic {

DataMemory::DataMemory(std::size_t size_bytes)
    : bytes_(size_bytes, 0),
      dirty_((((size_bytes + (1u << kPageBits) - 1) >> kPageBits) >> 6) + 1,
             0) {
  CEPIC_CHECK(size_bytes >= kDataBase, "data memory smaller than data base");
}

void DataMemory::load_image(std::uint32_t base,
                            std::span<const std::uint8_t> image) {
  CEPIC_CHECK(base + image.size() <= bytes_.size(),
              "data image does not fit in memory");
  std::copy(image.begin(), image.end(), bytes_.begin() + base);
  mark_written(base, static_cast<unsigned>(image.size()));
}

void DataMemory::reset() {
  const std::size_t pages = (bytes_.size() + (1u << kPageBits) - 1) >> kPageBits;
  for (std::size_t w = 0; w < dirty_.size(); ++w) {
    std::uint64_t bits = dirty_[w];
    if (bits == 0) continue;
    dirty_[w] = 0;
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::size_t page = w * 64 + b;
      if (page >= pages) break;  // raw() sets stray bits past the end
      const std::size_t lo = page << kPageBits;
      const std::size_t hi = std::min(lo + (std::size_t{1} << kPageBits),
                                      bytes_.size());
      std::fill(bytes_.begin() + static_cast<std::ptrdiff_t>(lo),
                bytes_.begin() + static_cast<std::ptrdiff_t>(hi),
                std::uint8_t{0});
    }
  }
}

void DataMemory::check(std::uint32_t addr, unsigned n, bool write) const {
  if (addr < kDataBase) {
    throw SimError(cat(write ? "store" : "load", " to unmapped low address 0x",
                       std::hex, addr, " (null guard)"));
  }
  if (static_cast<std::size_t>(addr) + n > bytes_.size()) {
    throw SimError(cat(write ? "store" : "load", " past end of memory: 0x",
                       std::hex, addr));
  }
  if (n == 4 && (addr & 3u) != 0) {
    throw SimError(cat("misaligned word ", write ? "store" : "load",
                       " at 0x", std::hex, addr));
  }
}

std::uint32_t DataMemory::read_word(std::uint32_t addr) const {
  check(addr, 4, false);
  // Big-endian, as the paper's architecture.
  return (static_cast<std::uint32_t>(bytes_[addr]) << 24) |
         (static_cast<std::uint32_t>(bytes_[addr + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes_[addr + 2]) << 8) |
         static_cast<std::uint32_t>(bytes_[addr + 3]);
}

void DataMemory::write_word(std::uint32_t addr, std::uint32_t value) {
  check(addr, 4, true);
  mark_written(addr, 4);
  bytes_[addr] = static_cast<std::uint8_t>(value >> 24);
  bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 16);
  bytes_[addr + 2] = static_cast<std::uint8_t>(value >> 8);
  bytes_[addr + 3] = static_cast<std::uint8_t>(value);
}

std::uint8_t DataMemory::read_byte(std::uint32_t addr) const {
  check(addr, 1, false);
  return bytes_[addr];
}

void DataMemory::write_byte(std::uint32_t addr, std::uint8_t value) {
  check(addr, 1, true);
  mark_written(addr, 1);
  bytes_[addr] = value;
}

std::uint32_t DataMemory::read_word_speculative(std::uint32_t addr) const {
  if (addr < kDataBase || (addr & 3u) != 0 ||
      static_cast<std::size_t>(addr) + 4 > bytes_.size()) {
    return 0;
  }
  return read_word(addr);
}

}  // namespace cepic
