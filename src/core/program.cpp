#include "core/program.hpp"

#include "core/encoding.hpp"
#include "support/error.hpp"

namespace cepic {

std::span<const Instruction> Program::bundle(std::uint32_t addr) const {
  const std::size_t w = config.issue_width;
  CEPIC_CHECK(addr < bundle_count(), "bundle address out of range");
  return {code.data() + addr * w, w};
}

std::uint32_t Program::append_bundle(std::span<const Instruction> ops) {
  const std::size_t w = config.issue_width;
  CEPIC_CHECK(ops.size() <= w, "bundle wider than issue width");
  const auto addr = static_cast<std::uint32_t>(bundle_count());
  for (const Instruction& inst : ops) code.push_back(inst);
  for (std::size_t i = ops.size(); i < w; ++i) code.push_back(Instruction::nop());
  return addr;
}

std::vector<std::uint64_t> Program::encode_code() const {
  std::vector<std::uint64_t> words;
  words.reserve(code.size());
  for (const Instruction& inst : code) {
    words.push_back(encode_instruction(inst, config));
  }
  return words;
}

}  // namespace cepic
