#include "core/program.hpp"

#include "core/encoding.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic {

std::span<const Instruction> Program::bundle(std::uint32_t addr) const {
  const std::size_t w = config.issue_width;
  CEPIC_CHECK(addr < bundle_count(), "bundle address out of range");
  return {code.data() + addr * w, w};
}

std::uint32_t Program::append_bundle(std::span<const Instruction> ops) {
  const std::size_t w = config.issue_width;
  CEPIC_CHECK(ops.size() <= w, "bundle wider than issue width");
  const auto addr = static_cast<std::uint32_t>(bundle_count());
  for (const Instruction& inst : ops) code.push_back(inst);
  for (std::size_t i = ops.size(); i < w; ++i) code.push_back(Instruction::nop());
  return addr;
}

std::vector<std::uint64_t> Program::encode_code() const {
  std::vector<std::uint64_t> words;
  words.reserve(code.size());
  for (const Instruction& inst : code) {
    words.push_back(encode_instruction(inst, config));
  }
  return words;
}

namespace {

// Minimal big-endian byte writer/reader for the CEPX container.
class Writer {
public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }
  void u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | bytes_[pos_++];
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | bytes_[pos_++];
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  bool done() const { return pos_ == bytes_.size(); }

private:
  void need(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      throw Error("CEPX container truncated");
    }
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

constexpr std::uint32_t kMagic = 0x43455058;  // "CEPX"
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> Program::serialize() const {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(config.to_text());
  w.u32(entry_bundle);

  const std::vector<std::uint64_t> words = encode_code();
  w.u32(static_cast<std::uint32_t>(words.size()));
  for (std::uint64_t word : words) w.u64(word);

  w.u32(static_cast<std::uint32_t>(data.size()));
  for (std::uint8_t b : data) w.u8(b);

  w.u32(static_cast<std::uint32_t>(code_symbols.size()));
  for (const auto& [name, addr] : code_symbols) {
    w.str(name);
    w.u32(addr);
  }
  w.u32(static_cast<std::uint32_t>(data_symbols.size()));
  for (const auto& [name, addr] : data_symbols) {
    w.str(name);
    w.u32(addr);
  }
  return w.take();
}

Program Program::deserialize(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  if (r.u32() != kMagic) throw Error("not a CEPX binary (bad magic)");
  if (const std::uint32_t v = r.u32(); v != kVersion) {
    throw Error(cat("unsupported CEPX version ", v));
  }

  Program p;
  p.config = ProcessorConfig::from_text(r.str());
  p.entry_bundle = r.u32();

  const std::uint32_t n_code = r.u32();
  p.code.reserve(n_code);
  for (std::uint32_t i = 0; i < n_code; ++i) {
    p.code.push_back(decode_instruction(r.u64(), p.config));
  }
  if (p.code.size() % p.config.issue_width != 0) {
    throw Error("CEPX code is not a whole number of bundles");
  }

  const std::uint32_t n_data = r.u32();
  p.data.reserve(n_data);
  for (std::uint32_t i = 0; i < n_data; ++i) p.data.push_back(r.u8());

  const std::uint32_t n_csym = r.u32();
  for (std::uint32_t i = 0; i < n_csym; ++i) {
    const std::string name = r.str();
    p.code_symbols[name] = r.u32();
  }
  const std::uint32_t n_dsym = r.u32();
  for (std::uint32_t i = 0; i < n_dsym; ++i) {
    const std::string name = r.str();
    p.data_symbols[name] = r.u32();
  }
  if (!r.done()) throw Error("trailing bytes after CEPX container");
  return p;
}

}  // namespace cepic
