// Pure combinational semantics of the ALU and CMPU operations, shared by
// the EPIC simulator and reused in tests as a single source of truth.
// All arithmetic is performed on a `width`-bit datapath (paper §3.3:
// "width of datapath and registers" is a customisation parameter);
// values are carried in uint32_t and masked to the datapath width.
#pragma once

#include <cstdint>

#include "core/custom.hpp"
#include "core/isa.hpp"

namespace cepic {

/// Mask a value to the datapath width.
std::uint32_t mask_to_width(std::uint32_t v, unsigned width);

/// Interpret the low `width` bits of `v` as a signed value.
std::int32_t signed_at_width(std::uint32_t v, unsigned width);

/// Evaluate an ALU-class operation (including MOV/ABS and custom ops).
/// Defined corner cases: divide by zero yields quotient 0 and remainder
/// `a`; INT_MIN / -1 yields INT_MIN remainder 0; shift amounts are taken
/// modulo the datapath width.
std::uint32_t eval_alu(Op op, std::uint32_t a, std::uint32_t b,
                       unsigned width, const CustomOpTable* custom = nullptr);

/// Evaluate a compare-to-predicate condition (CMPP_* / PSET dest1 value).
bool eval_cmpp(Op op, std::uint32_t a, std::uint32_t b, unsigned width);

}  // namespace cepic
