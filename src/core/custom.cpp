#include "core/custom.hpp"

#include <bit>
#include <limits>

#include "support/bits.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic {

void CustomOpTable::install(unsigned slot, CustomOp op) {
  CEPIC_CHECK(slot < ops_.size(), "custom op slot out of range");
  CEPIC_CHECK(static_cast<bool>(op.eval), "custom op needs semantics");
  ops_[slot] = std::move(op);
}

const CustomOp& CustomOpTable::get(unsigned slot) const {
  CEPIC_CHECK(has(slot), cat("custom op slot ", slot, " not installed"));
  return *ops_[slot];
}

std::optional<unsigned> CustomOpTable::slot_of(std::string_view name) const {
  for (unsigned i = 0; i < ops_.size(); ++i) {
    if (ops_[i] && ops_[i]->name == name) return i;
  }
  return std::nullopt;
}

CustomOpTable CustomOpTable::for_names(const std::vector<std::string>& names) {
  CustomOpTable table;
  for (unsigned i = 0; i < names.size(); ++i) {
    auto op = builtin_custom_op(names[i]);
    if (!op) {
      throw ConfigError(cat("unknown custom op `", names[i],
                            "`; built-ins: rotr, madd16, popc, sadd"));
    }
    table.install(i, std::move(*op));
  }
  return table;
}

std::optional<CustomOp> builtin_custom_op(std::string_view name) {
  if (name == "rotr") {
    CustomOp op;
    op.name = "rotr";
    op.eval = [](std::uint32_t a, std::uint32_t b) { return rotr32(a, b); };
    op.slices_per_alu = 96.0;  // a 32-bit barrel rotator
    return op;
  }
  if (name == "madd16") {
    CustomOp op;
    op.name = "madd16";
    op.eval = [](std::uint32_t a, std::uint32_t b) {
      const auto lo = static_cast<std::int32_t>(sign_extend(a & 0xFFFFu, 16)) *
                      static_cast<std::int32_t>(sign_extend(b & 0xFFFFu, 16));
      const auto hi = static_cast<std::int32_t>(sign_extend(a >> 16, 16)) *
                      static_cast<std::int32_t>(sign_extend(b >> 16, 16));
      return to_unsigned(lo + hi);
    };
    op.slices_per_alu = 64.0;  // adders only; multiplies map to block mults
    op.block_mults_per_alu = 2;
    return op;
  }
  if (name == "popc") {
    CustomOp op;
    op.name = "popc";
    op.eval = [](std::uint32_t a, std::uint32_t b) {
      return static_cast<std::uint32_t>(std::popcount(a)) + b;
    };
    op.slices_per_alu = 48.0;
    return op;
  }
  if (name == "sadd") {
    CustomOp op;
    op.name = "sadd";
    op.eval = [](std::uint32_t a, std::uint32_t b) {
      const std::int64_t sum = static_cast<std::int64_t>(to_signed(a)) +
                               static_cast<std::int64_t>(to_signed(b));
      const std::int64_t lo = std::numeric_limits<std::int32_t>::min();
      const std::int64_t hi = std::numeric_limits<std::int32_t>::max();
      return to_unsigned(
          static_cast<std::int32_t>(sum < lo ? lo : (sum > hi ? hi : sum)));
    };
    op.slices_per_alu = 40.0;
    return op;
  }
  return std::nullopt;
}

}  // namespace cepic
