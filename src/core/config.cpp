#include "core/config.hpp"

#include <algorithm>

#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic {

InstructionFormat ProcessorConfig::format() const {
  InstructionFormat f;
  f.opcode_bits = InstructionFormat::kOpIdBits + 3;  // opid + 2 flags + spare
  f.dest_bits = std::max({index_bits(num_gprs), index_bits(num_preds),
                          index_bits(num_btrs), 6u});
  f.pred_bits = std::max(index_bits(num_preds), 5u);
  // The SRC fields must hold a register index or a literal; 16 bits is
  // the paper's default literal width.
  f.src_bits = std::max({16u, f.dest_bits});
  return f;
}

void ProcessorConfig::validate() const {
  auto require = [](bool ok, const std::string& msg) {
    if (!ok) throw ConfigError(msg);
  };
  require(num_alus >= 1 && num_alus <= 16,
          cat("num_alus must be 1..16, got ", num_alus));
  require(num_gprs >= 8 && num_gprs <= 1024,
          cat("num_gprs must be 8..1024, got ", num_gprs));
  require(num_preds >= 2 && num_preds <= 256,
          cat("num_preds must be 2..256, got ", num_preds));
  require(num_btrs >= 1 && num_btrs <= 256,
          cat("num_btrs must be 1..256, got ", num_btrs));
  require(issue_width >= 1 && issue_width <= 4,
          cat("issue_width must be 1..4 (memory bandwidth limit), got ",
              issue_width));
  require(datapath_width >= 8 && datapath_width <= 64,
          cat("datapath_width must be 8..64, got ", datapath_width));
  require(max_regs_per_instr >= 3 && max_regs_per_instr <= 4,
          cat("max_regs_per_instr must be 3..4, got ", max_regs_per_instr));
  require(reg_port_budget >= 2 && reg_port_budget <= 64,
          cat("reg_port_budget must be 2..64, got ", reg_port_budget));
  require(load_latency >= 1 && load_latency <= 8,
          cat("load_latency must be 1..8, got ", load_latency));
  require(pipeline_stages >= 2 && pipeline_stages <= 4,
          cat("pipeline_stages must be 2..4, got ", pipeline_stages));
  require(custom_ops.size() <= 4,
          cat("at most 4 custom ops supported, got ", custom_ops.size()));

  const InstructionFormat f = format();
  require(f.total_bits() <= 64,
          cat("derived instruction format needs ", f.total_bits(),
              " bits, exceeding the 64-bit container; reduce register-file "
              "sizes or redesign the format"));
}

namespace {

bool parse_bool(std::string_view v, bool& out) {
  const std::string s = to_lower(v);
  if (s == "true" || s == "1" || s == "yes" || s == "on") {
    out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "no" || s == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

ProcessorConfig ProcessorConfig::from_text(std::string_view text) {
  ProcessorConfig cfg;
  int line_no = 0;
  for (std::string_view raw_line : split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError(
          cat("config line ", line_no, ": expected `key = value`: ", line));
    }
    const std::string key = to_lower(trim(line.substr(0, eq)));
    const std::string_view value = trim(line.substr(eq + 1));

    auto as_uint = [&](unsigned& field) {
      std::int64_t v = 0;
      if (!parse_int(value, v) || v < 0) {
        throw ConfigError(
            cat("config line ", line_no, ": bad integer for ", key));
      }
      field = static_cast<unsigned>(v);
    };
    auto as_bool = [&](bool& field) {
      if (!parse_bool(value, field)) {
        throw ConfigError(
            cat("config line ", line_no, ": bad boolean for ", key));
      }
    };

    if (key == "num_alus") {
      as_uint(cfg.num_alus);
    } else if (key == "num_gprs") {
      as_uint(cfg.num_gprs);
    } else if (key == "num_preds") {
      as_uint(cfg.num_preds);
    } else if (key == "num_btrs") {
      as_uint(cfg.num_btrs);
    } else if (key == "issue_width") {
      as_uint(cfg.issue_width);
    } else if (key == "datapath_width") {
      as_uint(cfg.datapath_width);
    } else if (key == "max_regs_per_instr") {
      as_uint(cfg.max_regs_per_instr);
    } else if (key == "reg_port_budget") {
      as_uint(cfg.reg_port_budget);
    } else if (key == "forwarding") {
      as_bool(cfg.forwarding);
    } else if (key == "unified_memory_contention") {
      as_bool(cfg.unified_memory_contention);
    } else if (key == "load_latency") {
      as_uint(cfg.load_latency);
    } else if (key == "pipeline_stages") {
      as_uint(cfg.pipeline_stages);
    } else if (key == "alu_has_mul") {
      as_bool(cfg.alu.has_mul);
    } else if (key == "alu_has_div") {
      as_bool(cfg.alu.has_div);
    } else if (key == "alu_has_shift") {
      as_bool(cfg.alu.has_shift);
    } else if (key == "alu_has_minmax") {
      as_bool(cfg.alu.has_minmax);
    } else if (key == "custom_ops") {
      cfg.custom_ops.clear();
      for (std::string_view name : split(value, ',')) {
        name = trim(name);
        if (!name.empty()) cfg.custom_ops.emplace_back(name);
      }
    } else {
      throw ConfigError(cat("config line ", line_no, ": unknown key `", key,
                            "`"));
    }
  }
  cfg.validate();
  return cfg;
}

std::uint64_t ProcessorConfig::stable_hash() const { return fnv1a64(to_text()); }

std::string ProcessorConfig::summary() const {
  const ProcessorConfig def;
  std::string s = cat(num_alus, "alu/", issue_width, "iss/", reg_port_budget,
                      "port/", pipeline_stages, "stg");
  if (num_gprs != def.num_gprs) s += cat("/g", num_gprs);
  if (num_preds != def.num_preds) s += cat("/p", num_preds);
  if (num_btrs != def.num_btrs) s += cat("/b", num_btrs);
  if (datapath_width != def.datapath_width) s += cat("/w", datapath_width);
  if (max_regs_per_instr != def.max_regs_per_instr) {
    s += cat("/m", max_regs_per_instr);
  }
  if (load_latency != def.load_latency) s += cat("/l", load_latency);
  if (!forwarding) s += "/nofwd";
  if (unified_memory_contention) s += "/umc";
  if (!(alu == def.alu)) s += "/trim";
  if (!custom_ops.empty()) s += cat("/c", custom_ops.size());
  return s;
}

std::string ProcessorConfig::to_text() const {
  std::string custom;
  for (std::size_t i = 0; i < custom_ops.size(); ++i) {
    if (i) custom += ",";
    custom += custom_ops[i];
  }
  return cat(
      "# CEPIC processor configuration (paper §3.3 parameters)\n",
      "num_alus = ", num_alus, "\n",
      "num_gprs = ", num_gprs, "\n",
      "num_preds = ", num_preds, "\n",
      "num_btrs = ", num_btrs, "\n",
      "issue_width = ", issue_width, "\n",
      "datapath_width = ", datapath_width, "\n",
      "max_regs_per_instr = ", max_regs_per_instr, "\n",
      "reg_port_budget = ", reg_port_budget, "\n",
      "forwarding = ", forwarding, "\n",
      "unified_memory_contention = ", unified_memory_contention, "\n",
      "load_latency = ", load_latency, "\n",
      "pipeline_stages = ", pipeline_stages, "\n",
      "alu_has_mul = ", alu.has_mul, "\n",
      "alu_has_div = ", alu.has_div, "\n",
      "alu_has_shift = ", alu.has_shift, "\n",
      "alu_has_minmax = ", alu.has_minmax, "\n",
      "custom_ops = ", custom, "\n");
}

}  // namespace cepic
