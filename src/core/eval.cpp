#include "core/eval.hpp"

#include "support/bits.hpp"
#include "support/error.hpp"

namespace cepic {

std::uint32_t mask_to_width(std::uint32_t v, unsigned width) {
  if (width >= 32) return v;
  return v & static_cast<std::uint32_t>(mask64(width));
}

std::int32_t signed_at_width(std::uint32_t v, unsigned width) {
  if (width >= 32) return to_signed(v);
  return static_cast<std::int32_t>(sign_extend(v, width));
}

std::uint32_t eval_alu(Op op, std::uint32_t a, std::uint32_t b,
                       unsigned width, const CustomOpTable* custom) {
  a = mask_to_width(a, width);
  b = mask_to_width(b, width);
  const std::int64_t sa = signed_at_width(a, width);
  const std::int64_t sb = signed_at_width(b, width);
  const unsigned shamt = width ? static_cast<unsigned>(b % width) : 0;

  std::int64_t result = 0;
  switch (op) {
    case Op::ADD: result = sa + sb; break;
    case Op::SUB: result = sa - sb; break;
    case Op::MUL: result = sa * sb; break;
    case Op::DIV:
      if (sb == 0) {
        result = 0;
      } else {
        // On a width-bit machine, most-negative / -1 overflows; define
        // the result as most-negative (two's-complement wrap).
        result = sa / sb;
      }
      break;
    case Op::REM:
      result = (sb == 0) ? sa : sa % sb;
      break;
    case Op::AND: return a & b;
    case Op::OR: return a | b;
    case Op::XOR: return a ^ b;
    case Op::SHL: return mask_to_width(a << shamt, width);
    case Op::SHRL: return a >> shamt;
    case Op::SHRA:
      return mask_to_width(
          static_cast<std::uint32_t>(
              static_cast<std::int64_t>(sa) >> shamt),
          width);
    case Op::MIN: result = sa < sb ? sa : sb; break;
    case Op::MAX: result = sa > sb ? sa : sb; break;
    case Op::ABS: result = sa < 0 ? -sa : sa; break;
    case Op::MOV: return a;
    case Op::CUSTOM0:
    case Op::CUSTOM1:
    case Op::CUSTOM2:
    case Op::CUSTOM3: {
      CEPIC_CHECK(custom != nullptr && custom->has(custom_slot(op)),
                  "custom op evaluated without installed semantics");
      return mask_to_width(custom->get(custom_slot(op)).eval(a, b), width);
    }
    default:
      CEPIC_CHECK(false, "eval_alu called on a non-ALU op");
  }
  return mask_to_width(static_cast<std::uint32_t>(result), width);
}

bool eval_cmpp(Op op, std::uint32_t a, std::uint32_t b, unsigned width) {
  a = mask_to_width(a, width);
  b = mask_to_width(b, width);
  const std::int32_t sa = signed_at_width(a, width);
  const std::int32_t sb = signed_at_width(b, width);
  switch (op) {
    case Op::CMPP_EQ: return a == b;
    case Op::CMPP_NE: return a != b;
    case Op::CMPP_LT: return sa < sb;
    case Op::CMPP_LE: return sa <= sb;
    case Op::CMPP_GT: return sa > sb;
    case Op::CMPP_GE: return sa >= sb;
    case Op::CMPP_LTU: return a < b;
    case Op::CMPP_LEU: return a <= b;
    case Op::CMPP_GTU: return a > b;
    case Op::CMPP_GEU: return a >= b;
    case Op::PSET: return a != 0;
    default:
      CEPIC_CHECK(false, "eval_cmpp called on a non-compare op");
  }
  return false;
}

}  // namespace cepic
