// Byte-addressed big-endian data memory for the EPIC and SARM
// simulators. Address 0..kDataBase-1 is unmapped (null guard); word
// accesses must be 4-byte aligned. Speculative loads (HPL-PD LDWS) use
// the *_speculative accessors, which never fault and return 0 instead —
// exactly the "non-trapping load" EPIC mechanism.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace cepic {

class DataMemory {
public:
  explicit DataMemory(std::size_t size_bytes);

  /// Copy an image into memory starting at `base`.
  void load_image(std::uint32_t base, std::span<const std::uint8_t> image);

  std::size_t size() const { return bytes_.size(); }

  std::uint32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::uint32_t value);
  std::uint8_t read_byte(std::uint32_t addr) const;
  void write_byte(std::uint32_t addr, std::uint8_t value);

  /// Non-trapping word read: out-of-range, unmapped or misaligned
  /// addresses yield 0.
  std::uint32_t read_word_speculative(std::uint32_t addr) const;

  /// Direct image access for loaders and tests.
  std::span<std::uint8_t> raw() { return bytes_; }
  std::span<const std::uint8_t> raw() const { return bytes_; }

private:
  void check(std::uint32_t addr, unsigned bytes, bool write) const;

  std::vector<std::uint8_t> bytes_;
};

}  // namespace cepic
