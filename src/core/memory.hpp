// Byte-addressed big-endian data memory for the EPIC and SARM
// simulators. Address 0..kDataBase-1 is unmapped (null guard); word
// accesses must be 4-byte aligned. Speculative loads (HPL-PD LDWS) use
// the *_speculative accessors, which never fault and return 0 instead —
// exactly the "non-trapping load" EPIC mechanism.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace cepic {

class DataMemory {
public:
  explicit DataMemory(std::size_t size_bytes);

  /// Copy an image into memory starting at `base`.
  void load_image(std::uint32_t base, std::span<const std::uint8_t> image);

  std::size_t size() const { return bytes_.size(); }

  std::uint32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::uint32_t value);
  std::uint8_t read_byte(std::uint32_t addr) const;
  void write_byte(std::uint32_t addr, std::uint8_t value);

  /// Non-trapping word read: out-of-range, unmapped or misaligned
  /// addresses yield 0.
  std::uint32_t read_word_speculative(std::uint32_t addr) const;

  /// Zero the memory again, at a cost proportional to the pages
  /// actually written since construction / the last reset (a 4 KiB
  /// dirty bitmap maintained by the write accessors) instead of the
  /// full size. Simulator reset() is per-run overhead: re-zeroing
  /// megabytes of untouched image would dominate short simulations.
  void reset();

  /// Mark pages written. Every store that bypasses the checked
  /// accessors (the threaded tier writes through exec_data() after
  /// probing) must pair with this, or reset() misses it.
  void mark_written(std::uint32_t addr, unsigned n) {
    const std::size_t first = addr >> kPageBits;
    const std::size_t last =
        (static_cast<std::size_t>(addr) + n - 1) >> kPageBits;
    for (std::size_t p = first; p <= last; ++p) {
      dirty_[p >> 6] |= std::uint64_t{1} << (p & 63);
    }
  }

  /// Unmanaged image pointer for the threaded tier's probed direct
  /// accesses; see mark_written().
  std::uint8_t* exec_data() { return bytes_.data(); }

  /// Direct image access for loaders and tests. The mutable overload
  /// conservatively marks the whole memory written, because writes
  /// through the span are invisible to the dirty bitmap.
  std::span<std::uint8_t> raw() {
    for (std::uint64_t& w : dirty_) w = ~std::uint64_t{0};
    return bytes_;
  }
  std::span<const std::uint8_t> raw() const { return bytes_; }

private:
  static constexpr unsigned kPageBits = 12;  ///< 4 KiB dirty pages

  void check(std::uint32_t addr, unsigned bytes, bool write) const;

  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint64_t> dirty_;  ///< one bit per page, see reset()
};

}  // namespace cepic
