// Program: the unit the assembler produces and the simulator executes.
// Code is a flat sequence of instructions grouped into fixed-width
// MultiOps of `issue_width` slots (NOP-padded by the assembler, paper
// §4.2); branch targets are bundle addresses. A program also carries the
// initial data-memory image, symbol tables, and the configuration it was
// assembled for (binaries are configuration-specific, as on the real
// processor).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/instruction.hpp"

namespace cepic {

/// Base byte address of the data segment in data memory. Address 0 is
/// kept unmapped so stray null-based accesses fault loudly.
inline constexpr std::uint32_t kDataBase = 64;

struct Program {
  ProcessorConfig config;
  /// Flat code; size is always a multiple of config.issue_width.
  std::vector<Instruction> code;
  /// Initial data image, loaded at kDataBase.
  std::vector<std::uint8_t> data;
  /// Entry bundle address.
  std::uint32_t entry_bundle = 0;
  /// Label -> bundle address (kept for disassembly and debugging).
  std::map<std::string, std::uint32_t> code_symbols;
  /// Global name -> absolute byte address in data memory.
  std::map<std::string, std::uint32_t> data_symbols;

  std::size_t bundle_count() const {
    return config.issue_width == 0 ? 0 : code.size() / config.issue_width;
  }

  /// The instructions of bundle `addr`.
  std::span<const Instruction> bundle(std::uint32_t addr) const;

  /// Append one bundle; `ops` must contain at most issue_width entries
  /// and is NOP-padded. Returns the new bundle's address.
  std::uint32_t append_bundle(std::span<const Instruction> ops);

  /// Encode all instructions to raw 64-bit words (validates each).
  /// Binary persistence lives in serial/serial.hpp
  /// (serial::encode_program / decode_program — the CEPX container).
  std::vector<std::uint64_t> encode_code() const;

  bool operator==(const Program&) const = default;
};

}  // namespace cepic
