// Decoded instruction representation shared by the backend, assembler,
// encoder and simulator, plus structural validation against a
// ProcessorConfig.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/isa.hpp"

namespace cepic {

/// A source operand: absent, a register index (file implied by the op's
/// OpInfo), or an inline literal.
struct Operand {
  enum class Kind : std::uint8_t { None, Reg, Lit };

  Kind kind = Kind::None;
  std::uint32_t reg = 0;   ///< register index when kind == Reg
  std::int32_t lit = 0;    ///< literal value when kind == Lit

  static Operand none() { return {}; }
  static Operand r(std::uint32_t index) {
    Operand o;
    o.kind = Kind::Reg;
    o.reg = index;
    return o;
  }
  static Operand imm(std::int32_t value) {
    Operand o;
    o.kind = Kind::Lit;
    o.lit = value;
    return o;
  }

  bool is_reg() const { return kind == Kind::Reg; }
  bool is_lit() const { return kind == Kind::Lit; }
  bool operator==(const Operand&) const = default;
};

/// One decoded EPIC operation. `dest1`/`dest2` index the register file
/// given by the op's OpInfo; `pred` is the guard predicate (0 = p0,
/// hardwired true, i.e. unguarded).
struct Instruction {
  Op op = Op::NOP;
  std::uint32_t dest1 = 0;
  std::uint32_t dest2 = 0;
  Operand src1;
  Operand src2;
  std::uint32_t pred = 0;

  bool operator==(const Instruction&) const = default;

  const OpInfo& info() const { return op_info(op); }
  bool is_nop() const { return op == Op::NOP; }

  // --- factories for the common shapes (used heavily in tests) ---
  static Instruction make(Op op, std::uint32_t d1 = 0, Operand s1 = {},
                          Operand s2 = {}, std::uint32_t pred = 0,
                          std::uint32_t d2 = 0);
  static Instruction nop() { return {}; }
  static Instruction halt() { return make(Op::HALT); }
};

/// Human-readable assembly rendering, e.g. "(p3) add r1, r2, #-5".
std::string to_string(const Instruction& inst);

/// Validate operand shapes, register ranges, literal ranges and the
/// max-registers-per-instruction cap against `cfg`. Returns an empty
/// string when valid, else a diagnostic.
std::string validate_instruction(const Instruction& inst,
                                 const ProcessorConfig& cfg);

/// Number of GPR/pred/BTR *reads* this instruction performs (guard
/// predicate excluded — the predicate file has its own ports in the
/// modelled design) and writes it performs. Used for the register-port
/// budget (paper §3.2).
unsigned count_reg_reads(const Instruction& inst);
unsigned count_reg_writes(const Instruction& inst);

}  // namespace cepic
