#include "core/encoding.hpp"

#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic {

namespace {

// Flag bit positions inside the OPCODE field: the operation id occupies
// the low kOpIdBits bits, the literal flags sit directly above it.
constexpr unsigned s1_flag_bit = InstructionFormat::kOpIdBits + 0;
constexpr unsigned s2_flag_bit = InstructionFormat::kOpIdBits + 1;

std::uint64_t encode_src(const Operand& o, const OpInfo& info,
                         const InstructionFormat& fmt) {
  if (o.is_reg()) return o.reg;
  if (o.is_lit()) {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(o.lit)) &
           mask64(fmt.src_bits);
  }
  (void)info;
  return 0;
}

}  // namespace

std::uint64_t encode_instruction(const Instruction& inst,
                                 const ProcessorConfig& cfg) {
  if (const std::string err = validate_instruction(inst, cfg); !err.empty()) {
    throw Error(cat("cannot encode `", to_string(inst), "`: ", err));
  }
  const InstructionFormat fmt = cfg.format();
  const OpInfo& info = inst.info();

  std::uint64_t opcode = static_cast<std::uint64_t>(inst.op);
  if (inst.src1.is_lit()) opcode |= std::uint64_t{1} << s1_flag_bit;
  if (inst.src2.is_lit()) opcode |= std::uint64_t{1} << s2_flag_bit;

  std::uint64_t word = 0;
  word = insert_bits(word, fmt.opcode_lo(), fmt.opcode_bits, opcode);
  word = insert_bits(word, fmt.dest1_lo(), fmt.dest_bits, inst.dest1);
  word = insert_bits(word, fmt.dest2_lo(), fmt.dest_bits, inst.dest2);
  word = insert_bits(word, fmt.src1_lo(), fmt.src_bits,
                     encode_src(inst.src1, info, fmt));
  word = insert_bits(word, fmt.src2_lo(), fmt.src_bits,
                     encode_src(inst.src2, info, fmt));
  word = insert_bits(word, fmt.pred_lo(), fmt.pred_bits, inst.pred);
  return word;
}

namespace {

Operand decode_src(std::uint64_t field, SrcSpec spec, bool is_lit, bool zext,
                   const InstructionFormat& fmt, std::string_view slot) {
  switch (spec) {
    case SrcSpec::None:
      return Operand::none();
    case SrcSpec::Gpr:
    case SrcSpec::Pred:
    case SrcSpec::Btr:
      if (is_lit) {
        throw Error(cat("decode: ", slot, " literal flag set on a "
                        "register-only operand"));
      }
      return Operand::r(static_cast<std::uint32_t>(field));
    case SrcSpec::LitOnly:
      if (!is_lit) {
        throw Error(cat("decode: ", slot, " must be a literal"));
      }
      break;
    case SrcSpec::GprOrLit:
      if (!is_lit) return Operand::r(static_cast<std::uint32_t>(field));
      break;
  }
  const std::int64_t value =
      zext ? static_cast<std::int64_t>(field)
           : sign_extend(field, fmt.src_bits);
  return Operand::imm(static_cast<std::int32_t>(value));
}

}  // namespace

Instruction decode_instruction(std::uint64_t word,
                               const ProcessorConfig& cfg) {
  const InstructionFormat fmt = cfg.format();
  if (fmt.total_bits() < 64 && (word & ~mask64(fmt.total_bits())) != 0) {
    throw Error("decode: bits set above the instruction width");
  }

  const std::uint64_t opcode =
      extract_bits(word, fmt.opcode_lo(), fmt.opcode_bits);
  const std::uint64_t opid =
      opcode & mask64(InstructionFormat::kOpIdBits);
  const bool s1_lit = (opcode >> s1_flag_bit) & 1;
  const bool s2_lit = (opcode >> s2_flag_bit) & 1;

  if (opid >= kNumOps) {
    throw Error(cat("decode: unknown operation id ", opid));
  }
  const Op op = static_cast<Op>(opid);
  const OpInfo& info = op_info(op);
  if (info.name.empty()) {
    throw Error(cat("decode: unassigned operation id ", opid));
  }

  Instruction inst;
  inst.op = op;
  inst.dest1 =
      static_cast<std::uint32_t>(extract_bits(word, fmt.dest1_lo(), fmt.dest_bits));
  inst.dest2 =
      static_cast<std::uint32_t>(extract_bits(word, fmt.dest2_lo(), fmt.dest_bits));
  inst.src1 = decode_src(extract_bits(word, fmt.src1_lo(), fmt.src_bits),
                         info.src1, s1_lit, info.literal_zero_extends, fmt,
                         "src1");
  inst.src2 = decode_src(extract_bits(word, fmt.src2_lo(), fmt.src_bits),
                         info.src2, s2_lit, info.literal_zero_extends, fmt,
                         "src2");
  inst.pred =
      static_cast<std::uint32_t>(extract_bits(word, fmt.pred_lo(), fmt.pred_bits));

  if (const std::string err = validate_instruction(inst, cfg); !err.empty()) {
    throw Error(cat("decode: invalid instruction `", to_string(inst),
                    "`: ", err));
  }
  return inst;
}

}  // namespace cepic
