#include "core/isa.hpp"

#include <array>
#include <string>
#include <unordered_map>

#include "support/error.hpp"

namespace cepic {

namespace {

// Shorthand builders keep the table readable.
constexpr OpInfo alu2(Op op, std::string_view name, bool zext = false) {
  OpInfo i;
  i.op = op;
  i.name = name;
  i.fu = FuClass::Alu;
  i.dest1 = RegFile::Gpr;
  i.src1 = SrcSpec::GprOrLit;
  i.src2 = SrcSpec::GprOrLit;
  i.literal_zero_extends = zext;
  return i;
}

constexpr OpInfo alu1(Op op, std::string_view name) {
  OpInfo i;
  i.op = op;
  i.name = name;
  i.fu = FuClass::Alu;
  i.dest1 = RegFile::Gpr;
  i.src1 = SrcSpec::GprOrLit;
  return i;
}

constexpr OpInfo cmpp(Op op, std::string_view name, bool zext) {
  OpInfo i;
  i.op = op;
  i.name = name;
  i.fu = FuClass::Cmpu;
  i.dest1 = RegFile::Pred;
  i.dest2 = RegFile::Pred;
  i.src1 = SrcSpec::GprOrLit;
  i.src2 = SrcSpec::GprOrLit;
  i.literal_zero_extends = zext;
  return i;
}

constexpr OpInfo load(Op op, std::string_view name, bool speculative) {
  OpInfo i;
  i.op = op;
  i.name = name;
  i.fu = FuClass::Lsu;
  i.dest1 = RegFile::Gpr;
  i.src1 = SrcSpec::Gpr;
  i.src2 = SrcSpec::GprOrLit;
  i.is_load = true;
  i.latency = 2;  // overridden by the MDES from config.load_latency
  (void)speculative;
  return i;
}

constexpr OpInfo store(Op op, std::string_view name) {
  OpInfo i;
  i.op = op;
  i.name = name;
  i.fu = FuClass::Lsu;
  i.dest1 = RegFile::Gpr;  // value operand, read not written
  i.dest1_is_source = true;
  i.src1 = SrcSpec::Gpr;
  i.src2 = SrcSpec::GprOrLit;
  i.is_store = true;
  return i;
}

constexpr std::array<OpInfo, kNumOps> make_table() {
  std::array<OpInfo, kNumOps> t{};

  auto set = [&t](OpInfo info) {
    t[static_cast<std::size_t>(info.op)] = info;
  };

  {
    OpInfo nop;
    nop.op = Op::NOP;
    nop.name = "nop";
    set(nop);
  }

  set(alu2(Op::ADD, "add"));
  set(alu2(Op::SUB, "sub"));
  set(alu2(Op::MUL, "mul"));
  set(alu2(Op::DIV, "div"));
  set(alu2(Op::REM, "rem"));
  set(alu2(Op::AND, "and", /*zext=*/true));
  set(alu2(Op::OR, "or", /*zext=*/true));
  set(alu2(Op::XOR, "xor", /*zext=*/true));
  set(alu2(Op::SHL, "shl", /*zext=*/true));
  set(alu2(Op::SHRA, "shra", /*zext=*/true));
  set(alu2(Op::SHRL, "shrl", /*zext=*/true));
  set(alu2(Op::MIN, "min"));
  set(alu2(Op::MAX, "max"));
  set(alu1(Op::ABS, "abs"));
  set(alu1(Op::MOV, "mov"));

  set(cmpp(Op::CMPP_EQ, "cmpp.eq", false));
  set(cmpp(Op::CMPP_NE, "cmpp.ne", false));
  set(cmpp(Op::CMPP_LT, "cmpp.lt", false));
  set(cmpp(Op::CMPP_LE, "cmpp.le", false));
  set(cmpp(Op::CMPP_GT, "cmpp.gt", false));
  set(cmpp(Op::CMPP_GE, "cmpp.ge", false));
  set(cmpp(Op::CMPP_LTU, "cmpp.ltu", true));
  set(cmpp(Op::CMPP_LEU, "cmpp.leu", true));
  set(cmpp(Op::CMPP_GTU, "cmpp.gtu", true));
  set(cmpp(Op::CMPP_GEU, "cmpp.geu", true));
  {
    OpInfo i;
    i.op = Op::PSET;
    i.name = "pset";
    i.fu = FuClass::Cmpu;
    i.dest1 = RegFile::Pred;
    i.src1 = SrcSpec::GprOrLit;
    set(i);
  }

  set(load(Op::LDW, "ldw", false));
  set(load(Op::LDB, "ldb", false));
  set(load(Op::LDBU, "ldbu", false));
  set(load(Op::LDWS, "ldws", true));
  set(store(Op::STW, "stw"));
  set(store(Op::STB, "stb"));
  {
    OpInfo i;
    i.op = Op::OUT;
    i.name = "out";
    i.fu = FuClass::Lsu;
    i.src1 = SrcSpec::GprOrLit;
    set(i);
  }

  {
    OpInfo i;
    i.op = Op::PBR;
    i.name = "pbr";
    i.fu = FuClass::Bru;
    i.dest1 = RegFile::Btr;
    i.src1 = SrcSpec::LitOnly;
    i.literal_zero_extends = true;  // bundle addresses are unsigned
    set(i);
  }
  {
    OpInfo i;
    i.op = Op::BRU;
    i.name = "bru";
    i.fu = FuClass::Bru;
    i.src1 = SrcSpec::Btr;
    i.is_branch = true;
    set(i);
  }
  {
    OpInfo i;
    i.op = Op::BRCT;
    i.name = "brct";
    i.fu = FuClass::Bru;
    i.src1 = SrcSpec::Btr;
    i.src2 = SrcSpec::Pred;
    i.is_branch = true;
    set(i);
  }
  {
    OpInfo i;
    i.op = Op::BRCF;
    i.name = "brcf";
    i.fu = FuClass::Bru;
    i.src1 = SrcSpec::Btr;
    i.src2 = SrcSpec::Pred;
    i.is_branch = true;
    set(i);
  }
  {
    OpInfo i;
    i.op = Op::BRL;
    i.name = "brl";
    i.fu = FuClass::Bru;
    i.dest1 = RegFile::Gpr;
    i.src1 = SrcSpec::Btr;
    i.is_branch = true;
    set(i);
  }
  {
    OpInfo i;
    i.op = Op::BRR;
    i.name = "brr";
    i.fu = FuClass::Bru;
    i.src1 = SrcSpec::Gpr;
    i.is_branch = true;
    set(i);
  }
  {
    OpInfo i;
    i.op = Op::HALT;
    i.name = "halt";
    i.fu = FuClass::Bru;
    set(i);
  }

  set(alu2(Op::CUSTOM0, "custom0"));
  set(alu2(Op::CUSTOM1, "custom1"));
  set(alu2(Op::CUSTOM2, "custom2"));
  set(alu2(Op::CUSTOM3, "custom3"));

  return t;
}

constexpr std::array<OpInfo, kNumOps> kOpTable = make_table();

const std::unordered_map<std::string_view, Op>& name_map() {
  static const std::unordered_map<std::string_view, Op> map = [] {
    std::unordered_map<std::string_view, Op> m;
    for (const OpInfo& info : kOpTable) {
      if (!info.name.empty()) m.emplace(info.name, info.op);
    }
    return m;
  }();
  return map;
}

}  // namespace

const OpInfo& op_info(Op op) {
  const auto idx = static_cast<std::size_t>(op);
  CEPIC_CHECK(idx < kNumOps, "op out of range");
  return kOpTable[idx];
}

std::optional<Op> op_by_name(std::string_view name) {
  const auto& m = name_map();
  if (auto it = m.find(name); it != m.end()) return it->second;
  return std::nullopt;
}

}  // namespace cepic
