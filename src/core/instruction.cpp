#include "core/instruction.hpp"

#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic {

Instruction Instruction::make(Op op, std::uint32_t d1, Operand s1, Operand s2,
                              std::uint32_t pred, std::uint32_t d2) {
  Instruction i;
  i.op = op;
  i.dest1 = d1;
  i.dest2 = d2;
  i.src1 = s1;
  i.src2 = s2;
  i.pred = pred;
  return i;
}

namespace {

char file_prefix(RegFile f) {
  switch (f) {
    case RegFile::Gpr: return 'r';
    case RegFile::Pred: return 'p';
    case RegFile::Btr: return 'b';
    case RegFile::None: break;
  }
  return '?';
}

RegFile src_file(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr:
    case SrcSpec::GprOrLit: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    case SrcSpec::None:
    case SrcSpec::LitOnly: return RegFile::None;
  }
  return RegFile::None;
}

std::string operand_str(const Operand& o, SrcSpec spec) {
  if (o.is_lit()) return cat('#', o.lit);
  if (o.is_reg()) return cat(file_prefix(src_file(spec)), o.reg);
  return "<none>";
}

unsigned reg_count(const ProcessorConfig& cfg, RegFile f) {
  switch (f) {
    case RegFile::Gpr: return cfg.num_gprs;
    case RegFile::Pred: return cfg.num_preds;
    case RegFile::Btr: return cfg.num_btrs;
    case RegFile::None: break;
  }
  return 0;
}

}  // namespace

std::string to_string(const Instruction& inst) {
  const OpInfo& info = inst.info();
  std::string s;
  if (inst.pred != 0) s += cat("(p", inst.pred, ") ");
  s += info.name;
  bool first = true;
  auto comma = [&] {
    s += first ? " " : ", ";
    first = false;
  };
  if (info.dest1 != RegFile::None) {
    comma();
    s += cat(file_prefix(info.dest1), inst.dest1);
  }
  if (info.dest2 != RegFile::None) {
    comma();
    s += cat(file_prefix(info.dest2), inst.dest2);
  }
  if (info.src1 != SrcSpec::None) {
    comma();
    s += operand_str(inst.src1, info.src1);
  }
  if (info.src2 != SrcSpec::None) {
    comma();
    s += operand_str(inst.src2, info.src2);
  }
  return s;
}

namespace {

std::string check_src(const Operand& o, SrcSpec spec, const char* slot,
                      const ProcessorConfig& cfg, bool zext) {
  const InstructionFormat fmt = cfg.format();
  switch (spec) {
    case SrcSpec::None:
      if (o.kind != Operand::Kind::None) return cat(slot, ": operand not allowed");
      return {};
    case SrcSpec::Gpr:
    case SrcSpec::Pred:
    case SrcSpec::Btr: {
      if (!o.is_reg()) return cat(slot, ": register operand required");
      const unsigned n = reg_count(cfg, src_file(spec));
      if (o.reg >= n) return cat(slot, ": register index ", o.reg, " >= ", n);
      return {};
    }
    case SrcSpec::LitOnly:
      if (!o.is_lit()) return cat(slot, ": literal operand required");
      break;
    case SrcSpec::GprOrLit:
      if (o.is_reg()) {
        if (o.reg >= cfg.num_gprs) {
          return cat(slot, ": register index ", o.reg, " >= ", cfg.num_gprs);
        }
        return {};
      }
      if (!o.is_lit()) return cat(slot, ": operand required");
      break;
  }
  // Literal range check against the SRC field width.
  if (zext) {
    if (!fits_unsigned(static_cast<std::uint32_t>(o.lit), fmt.src_bits)) {
      return cat(slot, ": literal ", o.lit, " does not fit in ",
                 fmt.src_bits, " unsigned bits");
    }
  } else if (!fits_signed(o.lit, fmt.src_bits)) {
    return cat(slot, ": literal ", o.lit, " does not fit in ", fmt.src_bits,
               " signed bits");
  }
  return {};
}

}  // namespace

std::string validate_instruction(const Instruction& inst,
                                 const ProcessorConfig& cfg) {
  const OpInfo& info = inst.info();

  if (is_custom(inst.op) && custom_slot(inst.op) >= cfg.custom_ops.size()) {
    return cat(info.name, ": custom slot not enabled in configuration");
  }
  if (inst.op == Op::DIV || inst.op == Op::REM) {
    if (!cfg.alu.has_div) return cat(info.name, ": ALU division disabled");
  }
  if (inst.op == Op::MUL && !cfg.alu.has_mul) {
    return "mul: ALU multiplication disabled";
  }
  if ((inst.op == Op::SHL || inst.op == Op::SHRA || inst.op == Op::SHRL) &&
      !cfg.alu.has_shift) {
    return cat(info.name, ": ALU shifter disabled");
  }
  if ((inst.op == Op::MIN || inst.op == Op::MAX || inst.op == Op::ABS) &&
      !cfg.alu.has_minmax) {
    return cat(info.name, ": ALU min/max disabled");
  }

  if (info.dest1 != RegFile::None) {
    const unsigned n = reg_count(cfg, info.dest1);
    if (inst.dest1 >= n) return cat("dest1 index ", inst.dest1, " >= ", n);
  } else if (inst.dest1 != 0) {
    return "dest1 not allowed";
  }
  if (info.dest2 != RegFile::None) {
    const unsigned n = reg_count(cfg, info.dest2);
    if (inst.dest2 >= n) return cat("dest2 index ", inst.dest2, " >= ", n);
  } else if (inst.dest2 != 0) {
    return "dest2 not allowed";
  }

  if (auto err = check_src(inst.src1, info.src1, "src1", cfg,
                           info.literal_zero_extends);
      !err.empty()) {
    return err;
  }
  if (auto err = check_src(inst.src2, info.src2, "src2", cfg,
                           info.literal_zero_extends);
      !err.empty()) {
    return err;
  }

  if (inst.pred >= cfg.num_preds) {
    return cat("guard predicate p", inst.pred, " >= ", cfg.num_preds);
  }

  const unsigned regs = count_reg_reads(inst) + count_reg_writes(inst);
  if (regs > cfg.max_regs_per_instr) {
    return cat("instruction uses ", regs, " register operands, cap is ",
               cfg.max_regs_per_instr);
  }
  return {};
}

unsigned count_reg_reads(const Instruction& inst) {
  const OpInfo& info = inst.info();
  unsigned n = 0;
  if (inst.src1.is_reg()) ++n;
  if (inst.src2.is_reg()) ++n;
  if (info.dest1_is_source) ++n;  // store value operand
  return n;
}

unsigned count_reg_writes(const Instruction& inst) {
  const OpInfo& info = inst.info();
  unsigned n = 0;
  if (info.writes_dest1()) ++n;
  if (info.dest2 != RegFile::None) ++n;
  return n;
}

}  // namespace cepic
