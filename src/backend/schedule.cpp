// Resource-constrained list scheduling (the core of the elcor role):
// builds the dependence DAG of each block — true/anti/output register
// dependences across all three register files, memory and output-port
// ordering, and control edges that pin branches to the block end — and
// packs operations into MultiOps honouring the Mdes functional-unit
// counts, the issue width, operation latencies, and the register-file
// controller's port budget with forwarding (paper §3.2). Priority is
// critical-path height.
#include <algorithm>
#include <set>

#include "backend/backend.hpp"
#include "support/text.hpp"

namespace cepic::backend {

namespace {

struct RegKey {
  RegFile file;
  std::uint32_t reg;
  bool operator<(const RegKey& o) const {
    return file < o.file || (file == o.file && reg < o.reg);
  }
};

RegFile src_file(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr:
    case SrcSpec::GprOrLit: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    default: return RegFile::None;
  }
}

struct InstSets {
  std::set<RegKey> reads;
  std::set<RegKey> writes;
  bool is_branch = false;   ///< transfers control (BRU/BRCT/BRCF/BRL/BRR/HALT)
  bool is_barrier = false;  ///< calls/returns: nothing moves across
  bool mem_read = false;
  bool mem_write = false;
  bool is_out = false;
};

InstSets classify(const MInst& mi) {
  InstSets s;
  const Instruction& inst = mi.inst;
  const OpInfo& info = inst.info();
  const auto add_read = [&](RegFile f, std::uint32_t r) {
    if (f == RegFile::None) return;
    if (f == RegFile::Gpr && r == 0) return;   // r0 constant
    if (f == RegFile::Pred && r == 0) return;  // p0 constant
    s.reads.insert({f, r});
  };
  if (inst.src1.is_reg()) add_read(src_file(info.src1), inst.src1.reg);
  if (inst.src2.is_reg()) add_read(src_file(info.src2), inst.src2.reg);
  if (info.dest1_is_source) add_read(RegFile::Gpr, inst.dest1);
  if (inst.pred != 0) add_read(RegFile::Pred, inst.pred);
  if (info.writes_dest1() && !(info.dest1 == RegFile::Gpr && inst.dest1 == 0)) {
    s.writes.insert({info.dest1, inst.dest1});
    if (inst.pred != 0) add_read(info.dest1, inst.dest1);  // guarded def
  }
  if (info.dest2 != RegFile::None && inst.dest2 != 0) {
    s.writes.insert({info.dest2, inst.dest2});
    if (inst.pred != 0) add_read(info.dest2, inst.dest2);
  }
  s.is_branch = info.is_branch || inst.op == Op::HALT;
  s.is_barrier = mi.is_barrier;
  s.mem_read = info.is_load;
  s.mem_write = info.is_store;
  s.is_out = inst.op == Op::OUT;
  return s;
}

struct Edge {
  int to;
  unsigned delay;
};

}  // namespace

ScheduledFunc schedule_function(const MFunc& fn, const Mdes& mdes,
                                const ProcessorConfig& config, bool schedule,
                                unsigned override_port_budget) {
  ScheduledFunc out;
  out.name = fn.name;

  for (const MBlock& block : fn.blocks) {
    ScheduledFunc::Block sblock;
    sblock.label = block.label;

    if (!schedule) {
      for (const MInst& mi : block.insts) sblock.bundles.push_back({mi});
      out.blocks.push_back(std::move(sblock));
      continue;
    }

    const int n = static_cast<int>(block.insts.size());
    std::vector<InstSets> sets;
    sets.reserve(block.insts.size());
    for (const MInst& mi : block.insts) sets.push_back(classify(mi));

    // ---- dependence edges ----
    std::vector<std::vector<Edge>> succs(n);
    std::vector<int> indegree(n, 0);
    const auto add_edge = [&](int from, int to, unsigned delay) {
      succs[from].push_back({to, delay});
      ++indegree[to];
    };

    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < j; ++i) {
        unsigned delay = 0;
        bool dep = false;
        // RAW: j reads something i writes.
        for (const RegKey& w : sets[i].writes) {
          if (sets[j].reads.count(w) != 0) {
            dep = true;
            delay = std::max(delay, mdes.latency(block.insts[i].inst.op));
          }
          // WAW: both write (keep order; distinct cycles).
          if (sets[j].writes.count(w) != 0) {
            dep = true;
            delay = std::max(delay, 1u);
          }
        }
        // WAR: j writes something i reads — same cycle is fine
        // (MultiOps read before writing), so delay 0.
        if (!dep) {
          for (const RegKey& r : sets[i].reads) {
            if (sets[j].writes.count(r) != 0) {
              dep = true;
              break;
            }
          }
        }
        // Memory and output-port ordering.
        if (sets[i].mem_write && sets[j].mem_write) {
          dep = true;
          delay = std::max(delay, 1u);
        }
        if (sets[i].mem_write && sets[j].mem_read) {
          dep = true;
          delay = std::max(delay, 1u);
        }
        if (sets[i].mem_read && sets[j].mem_write) dep = true;  // delay 0
        if (sets[i].is_out && sets[j].is_out) {
          dep = true;
          delay = std::max(delay, 1u);
        }
        // Control: branches sink to the end; nothing crosses barriers.
        if (sets[j].is_branch || sets[j].is_barrier) dep = true;
        if (sets[i].is_branch || sets[i].is_barrier) {
          dep = true;
          delay = std::max(delay, 1u);
        }
        if (dep) add_edge(i, j, delay);
      }
    }

    // ---- priorities: critical-path height ----
    std::vector<unsigned> height(n, 0);
    for (int i = n - 1; i >= 0; --i) {
      for (const Edge& e : succs[i]) {
        height[i] = std::max(height[i], height[e.to] + std::max(e.delay, 1u));
      }
    }

    // ---- cycle-by-cycle packing ----
    std::vector<int> remaining_in = indegree;
    std::vector<unsigned> earliest(n, 0);
    std::vector<bool> done(n, false);
    std::set<std::uint32_t> prev_cycle_writes;  // GPRs written last cycle
    int scheduled = 0;
    unsigned cycle = 0;
    const unsigned width = mdes.issue_width();
    const unsigned budget = override_port_budget != 0 ? override_port_budget
                                                      : mdes.reg_port_budget();
    const bool fwd = mdes.forwarding();

    while (scheduled < n) {
      std::vector<MInst> bundle;
      std::vector<int> bundle_idx;
      unsigned used_alu = 0, used_cmpu = 0, used_lsu = 0, used_bru = 0;
      std::set<std::uint32_t> cycle_writes;
      unsigned port_reads = 0, port_writes = 0;

      for (;;) {
        // Candidates: all deps satisfied, ready at this cycle.
        int best = -1;
        for (int i = 0; i < n; ++i) {
          if (done[i] || remaining_in[i] != 0 || earliest[i] > cycle) continue;
          if (bundle.size() >= width) continue;
          const FuClass fu = block.insts[i].inst.info().fu;
          unsigned* used = nullptr;
          unsigned avail = 0;
          switch (fu) {
            case FuClass::Alu: used = &used_alu; avail = mdes.units(FuClass::Alu); break;
            case FuClass::Cmpu: used = &used_cmpu; avail = mdes.units(FuClass::Cmpu); break;
            case FuClass::Lsu: used = &used_lsu; avail = mdes.units(FuClass::Lsu); break;
            case FuClass::Bru: used = &used_bru; avail = mdes.units(FuClass::Bru); break;
            case FuClass::None: break;
          }
          if (used != nullptr && *used >= avail) continue;
          // Port budget check for the register file controller.
          unsigned reads = 0, writes = 0;
          for (const RegKey& r : sets[i].reads) {
            if (r.file != RegFile::Gpr) continue;
            if (fwd && prev_cycle_writes.count(r.reg) != 0) continue;
            ++reads;
          }
          for (const RegKey& w : sets[i].writes) {
            if (w.file == RegFile::Gpr) ++writes;
          }
          if (port_reads + port_writes + reads + writes > budget) continue;
          if (best < 0 || height[i] > height[best] ||
              (height[i] == height[best] && i < best)) {
            best = i;
          }
        }
        if (best < 0) break;

        bundle.push_back(block.insts[best]);
        bundle_idx.push_back(best);
        done[best] = true;
        ++scheduled;
        const FuClass fu = block.insts[best].inst.info().fu;
        if (fu == FuClass::Alu) ++used_alu;
        if (fu == FuClass::Cmpu) ++used_cmpu;
        if (fu == FuClass::Lsu) ++used_lsu;
        if (fu == FuClass::Bru) ++used_bru;
        for (const RegKey& r : sets[best].reads) {
          if (r.file == RegFile::Gpr &&
              !(fwd && prev_cycle_writes.count(r.reg) != 0)) {
            ++port_reads;
          }
        }
        for (const RegKey& w : sets[best].writes) {
          if (w.file == RegFile::Gpr) {
            ++port_writes;
            cycle_writes.insert(w.reg);
          }
        }
        for (const Edge& e : succs[best]) {
          --remaining_in[e.to];
          earliest[e.to] =
              std::max(earliest[e.to], cycle + e.delay);
        }
      }

      // Latency gaps become explicit empty (all-NOP) bundles: fetching a
      // NOP bundle costs the same cycle the scoreboard stall would have,
      // and it keeps bundle index == issue cycle within the block — the
      // invariant mcheck's port-budget and latency rules verify.
      sblock.bundles.push_back(std::move(bundle));
      prev_cycle_writes = std::move(cycle_writes);
      ++cycle;
      CEPIC_CHECK(cycle < 1000000u,
                  cat("scheduler failed to make progress in @", fn.name,
                      " block ", block.label));
    }

    out.blocks.push_back(std::move(sblock));
  }
  (void)config;
  return out;
}

}  // namespace cepic::backend
