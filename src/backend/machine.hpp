// Machine-level representation used by the EPIC backend between lowering
// and emission: core Instructions whose register fields may still hold
// *virtual* registers (ids >= kVirtBase, per register file), organised in
// the IR's block structure. The register allocator rewrites virtuals to
// physical indices; the scheduler then packs each block into MultiOps.
//
// Calling convention (CEPIC ABI):
//   r0  hardwired zero          r1  stack pointer (grows down)
//   r2  return address (BRL)    r3  return value
//   r4..r11  arguments (max 8)  r12.. allocatable temporaries
// All registers are caller-save. Frame layout (from sp after prologue):
//   [0,4)                saved return address
//   [4, 4+frame_bytes)   IR locals (FrameAddr offsets)
//   [4+frame_bytes, ..)  register spill slots
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instruction.hpp"

namespace cepic::backend {

/// Register ids at or above this are virtual (per register file).
inline constexpr std::uint32_t kVirtBase = 0x10000;

inline constexpr bool is_virtual(std::uint32_t reg) { return reg >= kVirtBase; }
inline constexpr std::uint32_t virt_id(std::uint32_t reg) {
  return reg - kVirtBase;
}
inline constexpr std::uint32_t virt_reg(std::uint32_t id) {
  return id + kVirtBase;
}

struct CallConv {
  static constexpr std::uint32_t kZero = 0;
  static constexpr std::uint32_t kSp = 1;
  static constexpr std::uint32_t kRa = 2;
  static constexpr std::uint32_t kRv = 3;
  static constexpr std::uint32_t kArg0 = 4;
  static constexpr std::uint32_t kMaxArgs = 8;
  /// First general-purpose register available to the allocator.
  static constexpr std::uint32_t first_allocatable() {
    return kArg0 + kMaxArgs;  // r12
  }
};

struct MInst {
  Instruction inst;
  /// Label a PBR target literal resolves to (empty = literal is final).
  std::string target;
  /// BRL/BRR/HALT: no code motion across (calls clobber everything).
  bool is_barrier = false;
  /// Prologue/epilogue sp adjustment whose literal is patched with the
  /// final frame size after spill slots are known: -1 = sp -= frame,
  /// +1 = sp += frame.
  int frame_sign = 0;
};

struct MBlock {
  std::string label;  ///< empty for fall-through-only blocks
  std::vector<MInst> insts;
};

struct MFunc {
  std::string name;
  std::vector<MBlock> blocks;
  /// Successor block indices (mirrors the IR CFG; needed for liveness).
  std::vector<std::vector<int>> succs;
  std::uint32_t frame_bytes = 0;  ///< IR locals (before spill slots)
  std::uint32_t num_vgpr = 0;
  std::uint32_t num_vpred = 0;
  std::uint32_t num_vbtr = 0;
};

/// A scheduled function: per block, a list of MultiOp bundles.
struct ScheduledFunc {
  std::string name;
  struct Block {
    std::string label;
    std::vector<std::vector<MInst>> bundles;
  };
  std::vector<Block> blocks;
};

}  // namespace cepic::backend
