// Register allocation: liveness-driven linear scan over each register
// file. All registers are caller-save in the CEPIC ABI, so any virtual
// GPR live across a call is spilled to a frame slot; GPR pressure spills
// pick the interval with the furthest end. Predicate/BTR files cannot be
// spilled — exhaustion is reported as a configuration problem (the
// paper's parameters trade register-file size against area, and the
// compiler must tell the designer when a customisation is too small).
#include <algorithm>
#include <map>
#include <set>

#include "backend/backend.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic::backend {

namespace {

struct RegRef {
  RegFile file = RegFile::None;
  std::uint32_t* slot = nullptr;
  bool is_def = false;
  bool guarded = false;  ///< guarded defs do not kill liveness
};

RegFile src_file(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr:
    case SrcSpec::GprOrLit: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    default: return RegFile::None;
  }
}

/// Collect every register reference in an instruction (reads and
/// writes), with pointers so callers can rewrite in place.
std::vector<RegRef> reg_refs(Instruction& inst) {
  const OpInfo& info = inst.info();
  std::vector<RegRef> refs;
  const bool guarded = inst.pred != 0;

  if (inst.src1.is_reg() && src_file(info.src1) != RegFile::None) {
    refs.push_back({src_file(info.src1), &inst.src1.reg, false, false});
  }
  if (inst.src2.is_reg() && src_file(info.src2) != RegFile::None) {
    refs.push_back({src_file(info.src2), &inst.src2.reg, false, false});
  }
  if (info.dest1_is_source) {
    refs.push_back({RegFile::Gpr, &inst.dest1, false, false});
  } else if (info.dest1 != RegFile::None) {
    refs.push_back({info.dest1, &inst.dest1, true, guarded});
  }
  if (info.dest2 != RegFile::None) {
    refs.push_back({info.dest2, &inst.dest2, true, guarded});
  }
  if (inst.pred != 0) {
    refs.push_back({RegFile::Pred, &inst.pred, false, false});
  }
  return refs;
}

constexpr std::size_t file_index(RegFile f) {
  return static_cast<std::size_t>(f);
}

struct Interval {
  std::uint32_t vid = 0;
  int start = -1;
  int end = -1;
  bool crosses_call = false;
};

class Allocator {
public:
  Allocator(MFunc& fn, const ProcessorConfig& config)
      : fn_(fn), config_(config) {}

  void run() {
    if (config_.num_gprs <= CallConv::first_allocatable() + 1) {
      throw Error(cat("cannot allocate @", fn_.name,
                      ": configuration has only ", config_.num_gprs,
                      " GPRs; the CEPIC ABI reserves r0-r11, so at least ",
                      CallConv::first_allocatable() + 2, " are required"));
    }
    for (int iteration = 0; iteration < 24; ++iteration) {
      if (try_allocate()) {
        patch_frame();
        return;
      }
      // try_allocate() queued spills and rewrote code; go again.
    }
    throw Error(cat("register allocation did not converge in @", fn_.name));
  }

private:
  // ---- positions ----

  void number_positions() {
    pos_start_.assign(fn_.blocks.size(), 0);
    pos_end_.assign(fn_.blocks.size(), 0);
    int p = 0;
    call_positions_.clear();
    for (std::size_t b = 0; b < fn_.blocks.size(); ++b) {
      pos_start_[b] = p;
      for (MInst& mi : fn_.blocks[b].insts) {
        if (mi.inst.op == Op::BRL) call_positions_.push_back(p);
        ++p;
      }
      pos_end_[b] = p;  // one past the last inst
      ++p;              // gap between blocks
    }
  }

  // ---- liveness over virtual registers of one file ----

  std::vector<std::vector<bool>> live_in_, live_out_;

  void compute_liveness(RegFile file, std::uint32_t num_virt) {
    const std::size_t nb = fn_.blocks.size();
    live_in_.assign(nb, std::vector<bool>(num_virt, false));
    live_out_.assign(nb, std::vector<bool>(num_virt, false));
    std::vector<std::vector<bool>> use(nb, std::vector<bool>(num_virt, false));
    std::vector<std::vector<bool>> def(nb, std::vector<bool>(num_virt, false));

    for (std::size_t b = 0; b < nb; ++b) {
      for (MInst& mi : fn_.blocks[b].insts) {
        for (const RegRef& r : reg_refs(mi.inst)) {
          if (r.file != file || !is_virtual(*r.slot)) continue;
          const std::uint32_t v = virt_id(*r.slot);
          if (!r.is_def) {
            if (!def[b][v]) use[b][v] = true;
          } else if (!r.guarded) {
            def[b][v] = true;
          } else if (!def[b][v]) {
            use[b][v] = true;  // guarded def reads-through
          }
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = nb; b-- > 0;) {
        for (int s : fn_.succs[b]) {
          for (std::uint32_t v = 0; v < num_virt; ++v) {
            if (live_in_[s][v] && !live_out_[b][v]) {
              live_out_[b][v] = true;
              changed = true;
            }
          }
        }
        for (std::uint32_t v = 0; v < num_virt; ++v) {
          const bool want = use[b][v] || (live_out_[b][v] && !def[b][v]);
          if (want && !live_in_[b][v]) {
            live_in_[b][v] = true;
            changed = true;
          }
        }
      }
    }
  }

  std::vector<Interval> build_intervals(RegFile file, std::uint32_t num_virt) {
    compute_liveness(file, num_virt);
    std::vector<Interval> iv(num_virt);
    for (std::uint32_t v = 0; v < num_virt; ++v) iv[v].vid = v;
    const auto extend = [&](std::uint32_t v, int p) {
      Interval& i = iv[v];
      if (i.start < 0 || p < i.start) i.start = p;
      if (p > i.end) i.end = p;
    };
    for (std::size_t b = 0; b < fn_.blocks.size(); ++b) {
      for (std::uint32_t v = 0; v < num_virt; ++v) {
        if (live_in_[b][v]) extend(v, pos_start_[b]);
        if (live_out_[b][v]) extend(v, pos_end_[b]);
      }
      int p = pos_start_[b];
      for (MInst& mi : fn_.blocks[b].insts) {
        for (const RegRef& r : reg_refs(mi.inst)) {
          if (r.file == file && is_virtual(*r.slot)) extend(virt_id(*r.slot), p);
        }
        ++p;
      }
    }
    for (Interval& i : iv) {
      if (i.start < 0) continue;
      for (int cp : call_positions_) {
        if (i.start < cp && cp < i.end) {
          i.crosses_call = true;
          break;
        }
      }
    }
    return iv;
  }

  // ---- linear scan for one file ----

  /// Returns the virtual ids that must be spilled (GPR only); empty on
  /// success, in which case `assignment` holds vid -> physical index.
  std::set<std::uint32_t> scan_file(RegFile file, std::uint32_t num_virt,
                                    std::vector<std::uint32_t>& assignment) {
    std::vector<std::uint32_t> free_regs;
    if (file == RegFile::Gpr) {
      for (std::uint32_t r = CallConv::first_allocatable();
           r < config_.num_gprs; ++r) {
        free_regs.push_back(r);
      }
    } else if (file == RegFile::Pred) {
      for (std::uint32_t r = 1; r < config_.num_preds; ++r) {
        free_regs.push_back(r);
      }
    } else {
      for (std::uint32_t r = 0; r < config_.num_btrs; ++r) {
        free_regs.push_back(r);
      }
    }
    // Round-robin (FIFO) reuse: freed registers go to the back of the
    // queue, so consecutive short-lived values land in distinct physical
    // registers. This matters post-RA: immediate reuse would manufacture
    // WAW/WAR dependences that serialise the list scheduler and destroy
    // the ILP the EPIC datapath exists to exploit.
    std::size_t free_head = 0;
    const auto take_free = [&]() {
      const std::uint32_t r = free_regs[free_head];
      free_regs.erase(free_regs.begin() +
                      static_cast<std::ptrdiff_t>(free_head));
      if (free_head >= free_regs.size()) free_head = 0;
      return r;
    };

    std::vector<Interval> intervals = build_intervals(file, num_virt);
    std::erase_if(intervals, [](const Interval& i) { return i.start < 0; });

    std::set<std::uint32_t> spills;
    if (file == RegFile::Gpr) {
      // All registers are caller-save: call-crossing values go to memory.
      for (const Interval& i : intervals) {
        if (i.crosses_call && spilled_.count(i.vid) == 0) {
          spills.insert(i.vid);
        }
      }
      if (!spills.empty()) return spills;
    }

    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start ||
                       (a.start == b.start && a.vid < b.vid);
              });

    assignment.assign(num_virt, 0);
    struct Active {
      int end;
      std::uint32_t vid;
      std::uint32_t phys;
    };
    std::vector<Active> active;  // kept sorted by end

    for (const Interval& i : intervals) {
      // Expire.
      std::erase_if(active, [&](const Active& a) {
        if (a.end < i.start) {
          free_regs.push_back(a.phys);
          return true;
        }
        return false;
      });
      if (!free_regs.empty()) {
        const std::uint32_t phys = take_free();
        assignment[i.vid] = phys;
        active.push_back({i.end, i.vid, phys});
        continue;
      }
      if (file != RegFile::Gpr) {
        throw Error(cat("out of ", file == RegFile::Pred ? "predicate"
                                                         : "branch-target",
                        " registers in @", fn_.name,
                        "; increase the register-file size in the "
                        "configuration"));
      }
      // Spill the active interval with the furthest end (or this one).
      auto victim = std::max_element(
          active.begin(), active.end(),
          [](const Active& a, const Active& b) { return a.end < b.end; });
      if (victim != active.end() && victim->end > i.end) {
        spills.insert(victim->vid);
        assignment[i.vid] = victim->phys;
        const int end = i.end;
        const std::uint32_t vid = i.vid;
        const std::uint32_t phys = victim->phys;
        active.erase(victim);
        active.push_back({end, vid, phys});
      } else {
        spills.insert(i.vid);
      }
    }
    return spills;
  }

  // ---- spilling ----

  std::uint32_t slot_of(std::uint32_t vid) {
    auto [it, fresh] = spilled_.try_emplace(
        vid, 4 + fn_.frame_bytes +
                 4 * static_cast<std::uint32_t>(spilled_.size()));
    return it->second;
  }

  void rewrite_spills(const std::set<std::uint32_t>& to_spill) {
    for (std::uint32_t vid : to_spill) slot_of(vid);

    for (MBlock& block : fn_.blocks) {
      std::vector<MInst> rewritten;
      rewritten.reserve(block.insts.size());
      for (MInst& mi : rewritten_scratch_assign(block)) {
        std::map<std::uint32_t, std::uint32_t> temp_for;  // vid -> temp reg
        bool any_def = false;
        std::uint32_t def_vid = 0;

        for (const RegRef& r : reg_refs(mi.inst)) {
          if (r.file != RegFile::Gpr || !is_virtual(*r.slot)) continue;
          const std::uint32_t vid = virt_id(*r.slot);
          if (to_spill.count(vid) == 0) continue;
          auto [it, fresh] = temp_for.try_emplace(vid, 0);
          if (fresh) it->second = virt_reg(fn_.num_vgpr++);
          *r.slot = it->second;
          if (r.is_def) {
            any_def = true;
            def_vid = vid;
          }
        }

        (void)any_def;
        (void)def_vid;
        // A temp needs a reload before the instruction when it is read
        // (source operand, store value, or a guarded def, which
        // reads-through), and a store after when it is written.
        std::set<std::uint32_t> temps_read;
        std::set<std::uint32_t> temps_written;
        for (const RegRef& r : reg_refs(mi.inst)) {
          if (r.file != RegFile::Gpr) continue;
          for (const auto& [vid, temp] : temp_for) {
            if (*r.slot == temp) {
              if (r.is_def) {
                temps_written.insert(vid);
                if (r.guarded) temps_read.insert(vid);
              } else {
                temps_read.insert(vid);
              }
            }
          }
        }
        for (const auto& [vid, temp] : temp_for) {
          if (temps_read.count(vid) != 0) {
            MInst ld;
            ld.inst = Instruction::make(Op::LDW, temp,
                                        Operand::r(CallConv::kSp),
                                        Operand::imm(static_cast<std::int32_t>(
                                            slot_of(vid))));
            rewritten.push_back(std::move(ld));
          }
        }
        const std::uint32_t guard = mi.inst.pred;
        rewritten.push_back(std::move(mi));
        for (const auto& [vid, temp] : temp_for) {
          if (temps_written.count(vid) != 0) {
            MInst st;
            st.inst = Instruction::make(Op::STW, temp,
                                        Operand::r(CallConv::kSp),
                                        Operand::imm(static_cast<std::int32_t>(
                                            slot_of(vid))),
                                        guard);
            rewritten.push_back(std::move(st));
          }
        }
      }
      block.insts = std::move(rewritten);
    }
  }

  // Helper granting mutable iteration over a block's insts by value-move.
  std::vector<MInst>& rewritten_scratch_assign(MBlock& block) {
    scratch_ = std::move(block.insts);
    block.insts.clear();
    return scratch_;
  }

  // ---- driver ----

  bool try_allocate() {
    number_positions();

    std::vector<std::uint32_t> gpr_assign;
    const std::set<std::uint32_t> spills =
        scan_file(RegFile::Gpr, fn_.num_vgpr, gpr_assign);
    if (!spills.empty()) {
      rewrite_spills(spills);
      return false;
    }
    std::vector<std::uint32_t> pred_assign;
    scan_file(RegFile::Pred, fn_.num_vpred, pred_assign);
    std::vector<std::uint32_t> btr_assign;
    scan_file(RegFile::Btr, fn_.num_vbtr, btr_assign);

    for (MBlock& block : fn_.blocks) {
      for (MInst& mi : block.insts) {
        for (const RegRef& r : reg_refs(mi.inst)) {
          if (!is_virtual(*r.slot)) continue;
          const std::uint32_t vid = virt_id(*r.slot);
          switch (r.file) {
            case RegFile::Gpr: *r.slot = gpr_assign[vid]; break;
            case RegFile::Pred: *r.slot = pred_assign[vid]; break;
            case RegFile::Btr: *r.slot = btr_assign[vid]; break;
            case RegFile::None: break;
          }
        }
      }
    }
    return true;
  }

  void patch_frame() {
    const std::uint32_t frame_total =
        4 + fn_.frame_bytes + 4 * static_cast<std::uint32_t>(spilled_.size());
    if (!fits_signed(static_cast<std::int32_t>(frame_total), 16)) {
      throw Error(cat("frame of @", fn_.name, " too large: ", frame_total));
    }
    for (MBlock& block : fn_.blocks) {
      for (MInst& mi : block.insts) {
        if (mi.frame_sign != 0) {
          mi.inst.src2 = Operand::imm(mi.frame_sign *
                                      static_cast<std::int32_t>(frame_total));
        }
      }
    }
  }

  MFunc& fn_;
  const ProcessorConfig& config_;
  std::vector<int> pos_start_, pos_end_;
  std::vector<int> call_positions_;
  std::map<std::uint32_t, std::uint32_t> spilled_;  // vid -> frame offset
  std::vector<MInst> scratch_;
};

}  // namespace

void allocate_registers(MFunc& fn, const ProcessorConfig& config) {
  Allocator(fn, config).run();
}

}  // namespace cepic::backend
