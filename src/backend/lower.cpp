// IR -> machine lowering: maps IR virtual registers onto virtual GPRs,
// turns compare results that only feed branches/guards into virtual
// predicate registers (CMPP dual-destination when a complement is
// needed), materialises 32-bit constants, and builds the ABI prologue /
// epilogue / call sequences.
#include <map>
#include <set>

#include "backend/backend.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic::backend {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::VReg;

Op alu_op_of(IrOp op) {
  switch (op) {
    case IrOp::Add: return Op::ADD;
    case IrOp::Sub: return Op::SUB;
    case IrOp::Mul: return Op::MUL;
    case IrOp::Div: return Op::DIV;
    case IrOp::Rem: return Op::REM;
    case IrOp::And: return Op::AND;
    case IrOp::Or: return Op::OR;
    case IrOp::Xor: return Op::XOR;
    case IrOp::Shl: return Op::SHL;
    case IrOp::Shra: return Op::SHRA;
    case IrOp::Shrl: return Op::SHRL;
    case IrOp::Min: return Op::MIN;
    case IrOp::Max: return Op::MAX;
    default: break;
  }
  CEPIC_CHECK(false, "not an ALU IrOp");
}

Op cmp_op_of(IrOp op) {
  switch (op) {
    case IrOp::CmpEq: return Op::CMPP_EQ;
    case IrOp::CmpNe: return Op::CMPP_NE;
    case IrOp::CmpLt: return Op::CMPP_LT;
    case IrOp::CmpLe: return Op::CMPP_LE;
    case IrOp::CmpGt: return Op::CMPP_GT;
    case IrOp::CmpGe: return Op::CMPP_GE;
    case IrOp::CmpLtU: return Op::CMPP_LTU;
    case IrOp::CmpLeU: return Op::CMPP_LEU;
    case IrOp::CmpGtU: return Op::CMPP_GTU;
    case IrOp::CmpGeU: return Op::CMPP_GEU;
    default: break;
  }
  CEPIC_CHECK(false, "not a compare IrOp");
}

Op load_op_of(IrOp op) {
  switch (op) {
    case IrOp::LoadW: return Op::LDW;
    case IrOp::LoadB: return Op::LDB;
    case IrOp::LoadBU: return Op::LDBU;
    default: break;
  }
  CEPIC_CHECK(false, "not a load IrOp");
}

/// Usage analysis deciding which IR vregs become predicate registers.
struct PredInfo {
  std::set<VReg> pred_only;       ///< all defs are compares, no value uses
  std::set<VReg> needs_negation;  ///< some guard uses it negated
};

PredInfo analyse_preds(const ir::Function& fn) {
  std::map<VReg, bool> all_defs_cmp;  // vreg -> every def is a compare
  std::set<VReg> value_used;
  std::set<VReg> pred_used;
  PredInfo info;

  for (const ir::BasicBlock& block : fn.blocks) {
    for (const IrInst& inst : block.insts) {
      if (ir::has_dst(inst)) {
        const bool is_cmp = ir::is_cmp(inst.op);
        auto [it, fresh] = all_defs_cmp.emplace(inst.dst, is_cmp);
        if (!fresh) it->second = it->second && is_cmp;
      }
      if (inst.guard != ir::kNoVReg) {
        pred_used.insert(inst.guard);
        if (inst.guard_negate) info.needs_negation.insert(inst.guard);
      }
      if (inst.op == IrOp::CondBr) {
        if (inst.a.is_reg()) {
          pred_used.insert(inst.a.reg);
          // Branch lowering may fall through on true and branch on the
          // complement, so conservatively allocate both polarities.
          info.needs_negation.insert(inst.a.reg);
        }
        continue;
      }
      // Every other operand read is a value use.
      const auto note = [&](const ir::Value& v) {
        if (v.is_reg()) value_used.insert(v.reg);
      };
      switch (inst.op) {
        case IrOp::StoreW:
        case IrOp::StoreB:
          note(inst.a);
          note(inst.b);
          note(inst.c);
          break;
        case IrOp::Call:
          for (const ir::Value& v : inst.args) note(v);
          break;
        case IrOp::GlobalAddr:
        case IrOp::FrameAddr:
        case IrOp::Br:
          break;
        default:
          note(inst.a);
          note(inst.b);
          break;
      }
    }
  }
  // Parameters are defined by the caller, not by compares.
  for (VReg p : fn.params) all_defs_cmp[p] = false;

  for (const auto& [vreg, cmp_only] : all_defs_cmp) {
    if (cmp_only && value_used.count(vreg) == 0) {
      info.pred_only.insert(vreg);
    }
  }
  return info;
}

class Lowerer {
public:
  Lowerer(const ir::Function& fn, const ir::Module& module,
          const ir::DataLayout& layout, const Mdes& mdes,
          const ProcessorConfig& config)
      : fn_(fn),
        module_(module),
        layout_(layout),
        mdes_(mdes),
        config_(config),
        fmt_(config.format()),
        preds_(analyse_preds(fn)) {}

  MFunc run() {
    if (fn_.params.size() > CallConv::kMaxArgs) {
      throw Error(cat("function @", fn_.name, " has ", fn_.params.size(),
                      " parameters; the CEPIC ABI supports at most ",
                      CallConv::kMaxArgs));
    }
    out_.name = fn_.name;
    out_.frame_bytes = fn_.frame_bytes;
    next_vgpr_ = fn_.next_vreg;  // IR vregs map identically onto vGPRs

    for (std::size_t bi = 0; bi < fn_.blocks.size(); ++bi) {
      MBlock block;
      block.label = bi == 0 ? cat("fn_", fn_.name) : block_label(bi);
      out_.blocks.push_back(std::move(block));
    }

    for (std::size_t bi = 0; bi < fn_.blocks.size(); ++bi) {
      cur_ = static_cast<int>(bi);
      if (bi == 0) emit_prologue();
      for (const IrInst& inst : fn_.blocks[bi].insts) lower_inst(inst, bi);

      const IrInst& term = fn_.blocks[bi].terminator();
      std::vector<int> succ;
      if (term.op == IrOp::Br) {
        succ = {term.block_then};
      } else if (term.op == IrOp::CondBr) {
        if (term.a.is_imm()) {
          succ = {term.a.imm != 0 ? term.block_then : term.block_else};
        } else {
          succ = {term.block_then, term.block_else};
        }
      }
      out_.succs.push_back(std::move(succ));
    }

    out_.num_vgpr = next_vgpr_;
    out_.num_vpred = next_vpred_;
    out_.num_vbtr = next_vbtr_;
    return std::move(out_);
  }

private:
  std::string block_label(std::size_t bi) const {
    return cat("L", fn_.name, "_", bi);
  }

  // ---- emission helpers ----

  void push(Instruction inst, std::string target = {}, bool barrier = false,
            int frame_sign = 0) {
    MInst m;
    m.inst = inst;
    m.target = std::move(target);
    m.is_barrier = barrier;
    m.frame_sign = frame_sign;
    out_.blocks[cur_].insts.push_back(std::move(m));
  }

  std::uint32_t fresh_gpr() { return virt_reg(next_vgpr_++); }
  std::uint32_t fresh_pred() { return virt_reg(next_vpred_++); }
  std::uint32_t fresh_btr() { return virt_reg(next_vbtr_++); }

  std::uint32_t gpr_of(VReg v) { return virt_reg(v); }

  void require_op(Op op) {
    if (!mdes_.op_supported(op)) {
      throw Error(cat("operation `", std::string(op_info(op).name),
                      "` in @", fn_.name, " block ",
                      out_.blocks[static_cast<std::size_t>(cur_)].label,
                      " is not available on this customisation (see the "
                      "alu_* configuration switches)"));
    }
  }

  /// Emit a constant into `dst` (1 op when it fits the literal field,
  /// otherwise the 3-op mov/shl/or sequence), guarded by `pred`.
  /// When guarded and the value needs multiple ops, build in a temp and
  /// conditionally move so a false guard leaves dst untouched.
  void emit_const(std::uint32_t dst, std::int32_t value, std::uint32_t pred) {
    if (fits_signed(value, fmt_.src_bits)) {
      push(Instruction::make(Op::MOV, dst, Operand::imm(value), {}, pred));
      return;
    }
    const std::uint32_t target = pred == 0 ? dst : fresh_gpr();
    const std::int32_t hi = value >> 16;
    const std::int32_t lo = value & 0xFFFF;
    push(Instruction::make(Op::MOV, target, Operand::imm(hi)));
    push(Instruction::make(Op::SHL, target, Operand::r(target),
                           Operand::imm(16)));
    if (lo != 0) {
      push(Instruction::make(Op::OR, target, Operand::r(target),
                             Operand::imm(lo)));
    }
    if (pred != 0) {
      push(Instruction::make(Op::MOV, dst, Operand::r(target), {}, pred));
    }
  }

  std::uint32_t const_in_reg(std::int32_t value) {
    if (value == 0) return CallConv::kZero;
    const std::uint32_t t = fresh_gpr();
    emit_const(t, value, 0);
    return t;
  }

  /// IR value -> instruction operand; literals that do not fit the
  /// field are materialised.
  Operand operand_of(const ir::Value& v, bool zext_literal) {
    if (v.is_reg()) return Operand::r(gpr_of(v.reg));
    CEPIC_CHECK(v.is_imm(), "operand missing");
    const bool fits = zext_literal
                          ? fits_unsigned(static_cast<std::uint32_t>(v.imm),
                                          fmt_.src_bits)
                          : fits_signed(v.imm, fmt_.src_bits);
    if (fits) return Operand::imm(v.imm);
    return Operand::r(const_in_reg(v.imm));
  }

  /// Register-only operand (bases, store values).
  std::uint32_t reg_of(const ir::Value& v) {
    if (v.is_reg()) return gpr_of(v.reg);
    CEPIC_CHECK(v.is_imm(), "operand missing");
    return const_in_reg(v.imm);
  }

  // ---- predicates ----

  struct CmpPreds {
    std::uint32_t on_true = 0;
    std::uint32_t on_false = 0;  ///< 0 (p0 sink) if never needed
  };

  CmpPreds& preds_of(VReg cmp_vreg) {
    auto [it, fresh] = cmp_preds_.try_emplace(cmp_vreg);
    if (fresh) {
      it->second.on_true = fresh_pred();
      if (preds_.needs_negation.count(cmp_vreg) != 0) {
        it->second.on_false = fresh_pred();
      }
    }
    return it->second;
  }

  /// Predicate register for "vreg is true" (or false). For pred-mapped
  /// compare results this is the CMPP destination; otherwise a PSET-like
  /// compare against zero is emitted on the spot.
  std::uint32_t pred_for(VReg v, bool negated) {
    if (preds_.pred_only.count(v) != 0) {
      CmpPreds& cp = preds_of(v);
      if (!negated) return cp.on_true;
      CEPIC_CHECK(cp.on_false != 0, "complement predicate not allocated");
      return cp.on_false;
    }
    const std::uint32_t p = fresh_pred();
    push(Instruction::make(negated ? Op::CMPP_EQ : Op::CMPP_NE, p,
                           Operand::r(gpr_of(v)), Operand::imm(0)));
    return p;
  }

  std::uint32_t guard_of(const IrInst& inst) {
    if (inst.guard == ir::kNoVReg) return 0;
    return pred_for(inst.guard, inst.guard_negate);
  }

  // ---- ABI pieces ----

  void emit_prologue() {
    // sp -= frame (patched after spill slots are known), save ra.
    push(Instruction::make(Op::ADD, CallConv::kSp,
                           Operand::r(CallConv::kSp), Operand::imm(-4)),
         {}, false, /*frame_sign=*/-1);
    push(Instruction::make(Op::STW, CallConv::kRa,
                           Operand::r(CallConv::kSp), Operand::imm(0)));
    for (std::size_t i = 0; i < fn_.params.size(); ++i) {
      push(Instruction::make(Op::MOV, gpr_of(fn_.params[i]),
                             Operand::r(CallConv::kArg0 +
                                        static_cast<std::uint32_t>(i))));
    }
  }

  void emit_epilogue_and_return() {
    push(Instruction::make(Op::LDW, CallConv::kRa,
                           Operand::r(CallConv::kSp), Operand::imm(0)));
    push(Instruction::make(Op::ADD, CallConv::kSp,
                           Operand::r(CallConv::kSp), Operand::imm(4)),
         {}, false, /*frame_sign=*/+1);
    push(Instruction::make(Op::BRR, 0, Operand::r(CallConv::kRa)), {},
         /*barrier=*/true);
  }

  // ---- per-instruction lowering ----

  void lower_inst(const IrInst& inst, std::size_t bi) {
    switch (inst.op) {
      case IrOp::Mov: {
        const std::uint32_t g = guard_of(inst);
        push(Instruction::make(Op::MOV, gpr_of(inst.dst),
                               operand_of(inst.a, false), {}, g));
        return;
      }
      case IrOp::GlobalAddr: {
        const std::uint32_t g = guard_of(inst);
        emit_const(gpr_of(inst.dst),
                   static_cast<std::int32_t>(
                       layout_.global_addr[inst.global_index]),
                   g);
        return;
      }
      case IrOp::FrameAddr: {
        const std::uint32_t g = guard_of(inst);
        push(Instruction::make(Op::ADD, gpr_of(inst.dst),
                               Operand::r(CallConv::kSp),
                               Operand::imm(inst.a.imm + 4), g));
        return;
      }
      case IrOp::LoadW:
      case IrOp::LoadB:
      case IrOp::LoadBU: {
        const std::uint32_t g = guard_of(inst);
        const Op op = load_op_of(inst.op);
        push(Instruction::make(op, gpr_of(inst.dst),
                               Operand::r(reg_of(inst.a)),
                               operand_of(inst.b, false), g));
        return;
      }
      case IrOp::StoreW:
      case IrOp::StoreB: {
        const std::uint32_t g = guard_of(inst);
        const Op op = inst.op == IrOp::StoreW ? Op::STW : Op::STB;
        push(Instruction::make(op, reg_of(inst.c),
                               Operand::r(reg_of(inst.a)),
                               operand_of(inst.b, false), g));
        return;
      }
      case IrOp::Out: {
        const std::uint32_t g = guard_of(inst);
        push(Instruction::make(Op::OUT, 0, operand_of(inst.a, false), {}, g));
        return;
      }
      case IrOp::Call:
        lower_call(inst);
        return;
      case IrOp::Ret: {
        if (!inst.a.is_none()) {
          push(Instruction::make(Op::MOV, CallConv::kRv,
                                 operand_of(inst.a, false)));
        }
        emit_epilogue_and_return();
        return;
      }
      case IrOp::Br: {
        const int target = inst.block_then;
        if (target != static_cast<int>(bi) + 1) {
          const std::uint32_t b = fresh_btr();
          push(Instruction::make(Op::PBR, b, Operand::imm(0)),
               block_label(target));
          push(Instruction::make(Op::BRU, 0, Operand::r(b)));
        }
        return;
      }
      case IrOp::CondBr:
        lower_condbr(inst, bi);
        return;
      default:
        break;
    }

    if (ir::is_cmp(inst.op)) {
      lower_cmp(inst);
      return;
    }

    // Binary ALU.
    const Op op = alu_op_of(inst.op);
    require_op(op);
    const bool zext = op_info(op).literal_zero_extends;
    const std::uint32_t g = guard_of(inst);
    push(Instruction::make(op, gpr_of(inst.dst), operand_of(inst.a, zext),
                           operand_of(inst.b, zext), g));
  }

  void lower_cmp(const IrInst& inst) {
    const Op op = cmp_op_of(inst.op);
    const bool zext = op_info(op).literal_zero_extends;
    const std::uint32_t g = guard_of(inst);
    const Operand a = operand_of(inst.a, zext);
    const Operand b = operand_of(inst.b, zext);

    if (preds_.pred_only.count(inst.dst) != 0) {
      const CmpPreds& cp = preds_of(inst.dst);
      push(Instruction::make(op, cp.on_true, a, b, g, cp.on_false));
      return;
    }
    // Value materialisation: 0/1 into a GPR via a fresh predicate.
    const std::uint32_t p = fresh_pred();
    push(Instruction::make(op, p, a, b, g));
    const std::uint32_t target = g == 0 ? gpr_of(inst.dst) : fresh_gpr();
    push(Instruction::make(Op::MOV, target, Operand::imm(0)));
    push(Instruction::make(Op::MOV, target, Operand::imm(1), {}, p));
    if (g != 0) {
      push(Instruction::make(Op::MOV, gpr_of(inst.dst), Operand::r(target),
                             {}, g));
    }
  }

  void lower_call(const IrInst& inst) {
    CEPIC_CHECK(inst.guard == ir::kNoVReg, "calls cannot be guarded");
    if (inst.args.size() > CallConv::kMaxArgs) {
      throw Error(cat("call to @", inst.callee, " passes ", inst.args.size(),
                      " arguments; the CEPIC ABI supports at most ",
                      CallConv::kMaxArgs));
    }
    for (std::size_t i = 0; i < inst.args.size(); ++i) {
      push(Instruction::make(Op::MOV,
                             CallConv::kArg0 + static_cast<std::uint32_t>(i),
                             operand_of(inst.args[i], false)));
    }
    const std::uint32_t b = fresh_btr();
    push(Instruction::make(Op::PBR, b, Operand::imm(0)),
         cat("fn_", inst.callee));
    push(Instruction::make(Op::BRL, CallConv::kRa, Operand::r(b)), {},
         /*barrier=*/true);
    if (inst.dst != ir::kNoVReg) {
      push(Instruction::make(Op::MOV, gpr_of(inst.dst),
                             Operand::r(CallConv::kRv)));
    }
  }

  void lower_condbr(const IrInst& inst, std::size_t bi) {
    const int bt = inst.block_then;
    const int bf = inst.block_else;
    if (inst.a.is_imm()) {
      const int target = inst.a.imm != 0 ? bt : bf;
      if (target != static_cast<int>(bi) + 1) {
        const std::uint32_t b = fresh_btr();
        push(Instruction::make(Op::PBR, b, Operand::imm(0)),
             block_label(target));
        push(Instruction::make(Op::BRU, 0, Operand::r(b)));
      }
      return;
    }
    // Prefer falling through to the then-target when it is the next
    // block (branch on the complement), else branch-on-true.
    if (bt == static_cast<int>(bi) + 1) {
      const std::uint32_t p = pred_for(inst.a.reg, /*negated=*/true);
      const std::uint32_t b = fresh_btr();
      push(Instruction::make(Op::PBR, b, Operand::imm(0)), block_label(bf));
      push(Instruction::make(Op::BRCT, 0, Operand::r(b), Operand::r(p)));
      return;
    }
    const std::uint32_t p = pred_for(inst.a.reg, /*negated=*/false);
    const std::uint32_t b = fresh_btr();
    push(Instruction::make(Op::PBR, b, Operand::imm(0)), block_label(bt));
    push(Instruction::make(Op::BRCT, 0, Operand::r(b), Operand::r(p)));
    if (bf != static_cast<int>(bi) + 1) {
      const std::uint32_t b2 = fresh_btr();
      push(Instruction::make(Op::PBR, b2, Operand::imm(0)), block_label(bf));
      push(Instruction::make(Op::BRU, 0, Operand::r(b2)));
    }
  }

  const ir::Function& fn_;
  const ir::Module& module_;
  const ir::DataLayout& layout_;
  const Mdes& mdes_;
  const ProcessorConfig& config_;
  InstructionFormat fmt_;
  PredInfo preds_;

  MFunc out_;
  int cur_ = 0;
  std::uint32_t next_vgpr_ = 0;
  std::uint32_t next_vpred_ = 0;
  std::uint32_t next_vbtr_ = 0;
  std::map<VReg, CmpPreds> cmp_preds_;
};

}  // namespace

MFunc lower_function(const ir::Function& fn, const ir::Module& module,
                     const ir::DataLayout& layout, const Mdes& mdes,
                     const ProcessorConfig& config) {
  return Lowerer(fn, module, layout, mdes, config).run();
}

}  // namespace cepic::backend
