// EPIC backend — the elcor role from the paper (§4.1): lowering from IR
// to HPL-PD-subset machine operations, register allocation over the
// configured register files, dependence-aware resource-constrained list
// scheduling driven by the Mdes, and emission of textual assembly that
// the configuration-driven assembler (asmtool) turns into machine code.
#pragma once

#include <string>

#include "backend/machine.hpp"
#include "core/config.hpp"
#include "ir/ir.hpp"
#include "mdes/mdes.hpp"

namespace cepic::backend {

struct BackendOptions {
  /// Initial stack pointer (must match the simulator's memory size).
  std::uint32_t stack_top = std::uint32_t{1} << 22;
  /// Schedule greedily for ILP; when false each op gets its own bundle
  /// (ablation baseline for the scheduler's contribution).
  bool schedule = true;
  /// Test-only: when non-zero, the scheduler packs against this register
  /// port budget instead of the Mdes one, leaving the emitted program's
  /// configuration untouched. Used to fabricate contract-violating
  /// schedules that mcheck must catch (the simulator merely stalls).
  unsigned test_override_port_budget = 0;
};

/// Compile a verified IR module to CEPIC assembly text for the given
/// processor configuration. Throws Error/CompileError when the module
/// needs operations the customisation lacks (e.g. DIV on a divider-less
/// ALU) or exceeds ABI limits (more than 8 arguments).
std::string compile_ir_to_asm(const ir::Module& module,
                              const ProcessorConfig& config,
                              const BackendOptions& options = {});

// ---- pipeline stages, exposed for unit tests ----

/// Lower one IR function to machine code with virtual registers.
MFunc lower_function(const ir::Function& fn, const ir::Module& module,
                     const ir::DataLayout& layout, const Mdes& mdes,
                     const ProcessorConfig& config);

/// Allocate physical registers (rewrites in place, adds spill code and
/// patches frame adjustments). Throws Error if a register file is too
/// small to allocate even with spilling.
void allocate_registers(MFunc& fn, const ProcessorConfig& config);

/// Pack each block into MultiOps obeying the Mdes resources, the issue
/// width, dependence latencies and the register-port budget. Latency
/// gaps are emitted as explicit empty bundles so that within a block,
/// bundle index == issue cycle — the machine-level contract mcheck
/// verifies statically. `override_port_budget` (0 = off) substitutes the
/// Mdes budget, see BackendOptions::test_override_port_budget.
ScheduledFunc schedule_function(const MFunc& fn, const Mdes& mdes,
                                const ProcessorConfig& config,
                                bool schedule = true,
                                unsigned override_port_budget = 0);

/// Render scheduled functions + data section + entry stub as assembly.
std::string emit_module_asm(const std::vector<ScheduledFunc>& funcs,
                            const ir::Module& module,
                            const ProcessorConfig& config,
                            const BackendOptions& options);

}  // namespace cepic::backend
