// Pre-decoded program representation for the EPIC simulator's fast
// path. The interpretive step() re-derived static facts — OpInfo
// lookups, operand register-file classes, Mdes latencies and support
// verdicts, §3.2 port read/write classification — on every simulated
// cycle. decode_program() lowers each bundle once, at simulator
// construction, into a DecodedBundle that bakes all of it in, so the
// per-cycle loop touches only architectural state. Behaviour is
// bit-identical to the interpretive path (tests/test_sim_fastpath.cpp
// proves it differentially); bundles the decoder cannot prove safe
// (out-of-range register indices in hand-built programs) are flagged
// `use_legacy` and executed by the interpretive path instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/isa.hpp"
#include "core/program.hpp"
#include "mdes/mdes.hpp"

namespace cepic {

/// Flat dispatch kind: the FuClass x Op nesting of the interpretive
/// execute stage collapsed into one switch.
enum class ExecKind : std::uint8_t {
  Alu,   ///< every ALU-class op, including MOV/ABS and custom slots
  Cmpp,  ///< compare-to-predicate (dual destination) and PSET
  Out,
  LdW,
  LdWS,
  LdB,
  LdBU,
  StW,
  StB,
  Pbr,
  Bru,
  Brct,
  Brcf,
  Brl,
  Brr,
  Halt,
  /// Op the Mdes rejects for this customisation: faults on first touch
  /// with the interpretive path's exact error text.
  Unsupported,
};

/// How a source operand is fetched at execute time. Literals are
/// pre-masked to the datapath width at decode (except the PBR target,
/// which the interpretive path uses raw).
enum class SrcKind : std::uint8_t { Zero, Lit, Gpr, Pred, Btr };

struct DecodedSrc {
  SrcKind kind = SrcKind::Zero;
  std::uint32_t reg = 0;    ///< register index when kind is a file
  std::uint32_t value = 0;  ///< pre-extended literal when kind == Lit
};

struct DecodedOp {
  ExecKind kind = ExecKind::Halt;
  /// NOP slots between the previous decoded op and this one (stats
  /// interleaving matches the interpretive path even on fault paths).
  std::uint8_t nops_before = 0;
  bool has_dest2 = false;
  std::uint32_t pred = 0;
  std::uint32_t dest1 = 0;
  std::uint32_t dest2 = 0;
  DecodedSrc src1;
  DecodedSrc src2;
  unsigned latency = 1;       ///< Mdes result latency, resolved at decode
  Op op = Op::NOP;            ///< original opcode (ALU eval, errors)
  const OpInfo* info = nullptr;
};

struct DecodedBundle {
  /// Decoder could not prove every register access in range; the
  /// simulator executes this bundle through the interpretive path so
  /// fault behaviour is unchanged.
  bool use_legacy = false;
  std::uint8_t nops_trailing = 0;  ///< NOP slots after the last decoded op
  /// Static GPR write-port demand of the bundle (§3.2).
  unsigned write_ports = 0;
  std::vector<DecodedOp> ops;  ///< non-NOP slots, in slot order

  // Scoreboard source lists (deduplicated; index 0 entries dropped —
  // they are always ready).
  std::vector<std::uint32_t> sb_gpr;
  std::vector<std::uint32_t> sb_pred;
  std::vector<std::uint32_t> sb_btr;

  /// GPR port-read candidates for the §3.2 budget fixed point:
  /// register indices (duplicates preserved — each read costs a port)
  /// that need a port unless forwarding satisfies them.
  std::vector<std::uint32_t> port_reads;

  /// Pre-rendered trace line (only when tracing was requested).
  std::string trace_text;
};

/// Lower every bundle of `program` against `mdes`. `prerender_trace`
/// additionally renders each bundle's trace text (skipped otherwise —
/// it is the only decode product that costs real time).
std::vector<DecodedBundle> decode_program(const Program& program,
                                          const Mdes& mdes,
                                          bool prerender_trace);

}  // namespace cepic
