#include "sim/decode.hpp"

#include <algorithm>

#include "core/eval.hpp"
#include "support/text.hpp"

namespace cepic {

namespace {

RegFile file_of_src(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr:
    case SrcSpec::GprOrLit: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    case SrcSpec::None:
    case SrcSpec::LitOnly: return RegFile::None;
  }
  return RegFile::None;
}

unsigned file_size(const ProcessorConfig& cfg, RegFile file) {
  switch (file) {
    case RegFile::Gpr: return cfg.num_gprs;
    case RegFile::Pred: return cfg.num_preds;
    case RegFile::Btr: return cfg.num_btrs;
    case RegFile::None: break;
  }
  return 0;
}

ExecKind exec_kind(const OpInfo& info) {
  switch (info.fu) {
    case FuClass::Alu: return ExecKind::Alu;
    case FuClass::Cmpu: return ExecKind::Cmpp;
    case FuClass::Lsu:
      switch (info.op) {
        case Op::OUT: return ExecKind::Out;
        case Op::LDW: return ExecKind::LdW;
        case Op::LDWS: return ExecKind::LdWS;
        case Op::LDB: return ExecKind::LdB;
        case Op::LDBU: return ExecKind::LdBU;
        case Op::STW: return ExecKind::StW;
        case Op::STB: return ExecKind::StB;
        default: return ExecKind::Unsupported;
      }
    case FuClass::Bru:
      switch (info.op) {
        case Op::PBR: return ExecKind::Pbr;
        case Op::BRU: return ExecKind::Bru;
        case Op::BRCT: return ExecKind::Brct;
        case Op::BRCF: return ExecKind::Brcf;
        case Op::BRL: return ExecKind::Brl;
        case Op::BRR: return ExecKind::Brr;
        case Op::HALT: return ExecKind::Halt;
        default: return ExecKind::Unsupported;
      }
    case FuClass::None: break;
  }
  return ExecKind::Unsupported;
}

void push_unique(std::vector<std::uint32_t>& v, std::uint32_t x) {
  if (std::find(v.begin(), v.end(), x) == v.end()) v.push_back(x);
}

/// Decode one source operand; returns false when a register index is
/// out of range for its file (bundle falls back to the legacy path).
bool decode_src(const Operand& o, SrcSpec spec, const ProcessorConfig& cfg,
                DecodedSrc& out) {
  if (o.is_lit()) {
    out.kind = SrcKind::Lit;
    out.value =
        mask_to_width(static_cast<std::uint32_t>(o.lit), cfg.datapath_width);
    return true;
  }
  if (!o.is_reg()) {
    out.kind = SrcKind::Zero;
    return true;
  }
  switch (file_of_src(spec)) {
    case RegFile::Gpr: out.kind = SrcKind::Gpr; break;
    case RegFile::Pred: out.kind = SrcKind::Pred; break;
    case RegFile::Btr: out.kind = SrcKind::Btr; break;
    case RegFile::None:
      // A register operand in a literal/unused slot reads as zero on
      // the interpretive path too.
      out.kind = SrcKind::Zero;
      return true;
  }
  out.reg = o.reg;
  return o.reg < file_size(cfg, file_of_src(spec));
}

DecodedBundle decode_bundle(std::span<const Instruction> bundle,
                            const Program& program, const Mdes& mdes) {
  const ProcessorConfig& cfg = program.config;
  DecodedBundle out;
  bool in_range = true;
  std::uint8_t pending_nops = 0;

  for (const Instruction& inst : bundle) {
    if (inst.is_nop()) {
      ++pending_nops;
      continue;
    }
    const OpInfo& info = inst.info();
    DecodedOp op;
    op.nops_before = pending_nops;
    pending_nops = 0;
    op.op = inst.op;
    op.info = &info;
    op.pred = inst.pred;
    op.dest1 = inst.dest1;
    op.dest2 = inst.dest2;
    op.has_dest2 = info.dest2 != RegFile::None;
    op.latency = mdes.latency(inst.op);
    op.kind = mdes.op_supported(inst.op) ? exec_kind(info)
                                         : ExecKind::Unsupported;

    in_range &= inst.pred < cfg.num_preds;
    in_range &= decode_src(inst.src1, info.src1, cfg, op.src1);
    in_range &= decode_src(inst.src2, info.src2, cfg, op.src2);
    // The interpretive path feeds PBR's raw (unmasked) literal to the
    // BTR write; keep that exact value.
    if (op.kind == ExecKind::Pbr) {
      op.src1.value = static_cast<std::uint32_t>(inst.src1.lit);
    }
    if (info.dest1 != RegFile::None) {
      in_range &= inst.dest1 < file_size(cfg, info.dest1);
    }
    if (info.dest2 != RegFile::None) {
      in_range &= inst.dest2 < file_size(cfg, info.dest2);
    }

    // ---- Stage-1 static facts: scoreboard sources and §3.2 ports. ----
    if (inst.pred != 0) push_unique(out.sb_pred, inst.pred);
    const auto note_src = [&](const DecodedSrc& s) {
      switch (s.kind) {
        case SrcKind::Gpr:
          if (s.reg != 0) {
            push_unique(out.sb_gpr, s.reg);
            out.port_reads.push_back(s.reg);
          }
          break;
        case SrcKind::Pred:
          if (s.reg != 0) push_unique(out.sb_pred, s.reg);
          break;
        case SrcKind::Btr:
          push_unique(out.sb_btr, s.reg);
          break;
        case SrcKind::Zero:
        case SrcKind::Lit:
          break;
      }
    };
    note_src(op.src1);
    note_src(op.src2);
    if (info.dest1_is_source && inst.dest1 != 0) {
      push_unique(out.sb_gpr, inst.dest1);
      out.port_reads.push_back(inst.dest1);
    }
    if (info.writes_dest1() && info.dest1 == RegFile::Gpr &&
        inst.dest1 != 0) {
      ++out.write_ports;
    }

    out.ops.push_back(op);
  }
  out.nops_trailing = pending_nops;
  out.use_legacy = !in_range;
  return out;
}

}  // namespace

std::vector<DecodedBundle> decode_program(const Program& program,
                                          const Mdes& mdes,
                                          bool prerender_trace) {
  std::vector<DecodedBundle> decoded;
  const std::size_t bundles = program.bundle_count();
  decoded.reserve(bundles);
  for (std::uint32_t pc = 0; pc < bundles; ++pc) {
    const std::span<const Instruction> bundle = program.bundle(pc);
    DecodedBundle d = decode_bundle(bundle, program, mdes);
    if (prerender_trace) {
      std::string text;
      for (const Instruction& inst : bundle) {
        if (inst.is_nop()) continue;
        if (!text.empty()) text += " || ";
        text += to_string(inst);
      }
      d.trace_text = text.empty() ? "nop" : text;
    }
    decoded.push_back(std::move(d));
  }
  return decoded;
}

}  // namespace cepic
