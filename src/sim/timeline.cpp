#include "sim/timeline.hpp"

#include "obs/obs.hpp"
#include "support/text.hpp"

namespace cepic {

namespace {

enum SliceKind : std::uint8_t {
  kIssue = 0,
  kStallScoreboard,
  kStallRegPort,
  kStallMemContention,
  kBranchBubble,
  kFuOp,
  kFuNullified,
};

const char* stall_name(std::uint8_t kind) {
  switch (kind) {
    case kStallScoreboard: return "scoreboard";
    case kStallRegPort: return "reg-port";
    case kStallMemContention: return "mem-contention";
    case kBranchBubble: return "branch-bubble";
    default: return "?";
  }
}

}  // namespace

SimTimeline::SimTimeline(const ProcessorConfig& config,
                         std::uint64_t max_bundles)
    : config_(config), max_bundles_(max_bundles) {
  track_names_.push_back("issue");
  track_names_.push_back("stall");
  for (unsigned i = 0; i < config_.num_alus; ++i) {
    track_names_.push_back(cat("ALU", i));
  }
  track_names_.push_back("LSU");
  track_names_.push_back("CMPU");
  track_names_.push_back("BRU");
}

unsigned SimTimeline::fu_track(FuClass fu, unsigned& alu_rr) const {
  const unsigned alu_base = 2;
  switch (fu) {
    case FuClass::Alu: return alu_base + (alu_rr++ % config_.num_alus);
    case FuClass::Lsu: return alu_base + config_.num_alus;
    case FuClass::Cmpu: return alu_base + config_.num_alus + 1;
    case FuClass::Bru:
    case FuClass::None: return alu_base + config_.num_alus + 2;
  }
  return alu_base + config_.num_alus + 2;
}

void SimTimeline::record(const BundleEvent& bundle,
                         const std::vector<OpEvent>& ops) {
  totals_.cycles = bundle.end_cycle;
  ++totals_.bundles_issued;
  totals_.stall_scoreboard += bundle.sb_stall;
  totals_.stall_reg_ports += bundle.port_stall;
  if (bundle.mem_contention) ++totals_.stall_mem_contention;
  totals_.branch_bubbles += bundle.branch_bubbles;
  totals_.ops_executed += ops.size();
  for (const OpEvent& op : ops) {
    if (op.nullified) {
      ++totals_.ops_nullified;
    } else {
      ++totals_.ops_committed;
    }
  }

  if (max_bundles_ != 0 && totals_.bundles_issued > max_bundles_) {
    truncated_ = true;
    return;
  }

  const auto add = [&](std::uint8_t track, std::uint8_t kind,
                       std::uint64_t ts, std::uint64_t dur,
                       std::string_view op_name = {}) {
    Slice s;
    s.track = track;
    s.kind = kind;
    s.pc = bundle.pc;
    s.ts = ts;
    s.dur = dur;
    s.op_name = op_name;
    s.useful_ops = bundle.useful_ops;
    slices_.push_back(s);
  };

  // Stall attribution: the gap between fetch and issue is scoreboard
  // then reg-port stall; contention and bubbles trail the execute cycle.
  if (bundle.sb_stall != 0) {
    add(1, kStallScoreboard, bundle.fetch, bundle.sb_stall);
  }
  if (bundle.port_stall != 0) {
    add(1, kStallRegPort, bundle.fetch + bundle.sb_stall, bundle.port_stall);
  }
  add(0, kIssue, bundle.issue, 1);
  if (bundle.mem_contention) {
    add(1, kStallMemContention, bundle.issue + 1, 1);
  }
  if (bundle.branch_bubbles != 0) {
    add(1, kBranchBubble,
        bundle.issue + 1 + (bundle.mem_contention ? 1 : 0),
        bundle.branch_bubbles);
  }

  unsigned alu_rr = 0;
  for (const OpEvent& op : ops) {
    const unsigned track = fu_track(op.fu, alu_rr);
    if (op.nullified) {
      add(static_cast<std::uint8_t>(track), kFuNullified, bundle.issue, 1,
          op.name);
    } else {
      add(static_cast<std::uint8_t>(track), kFuOp, bundle.issue,
          op.latency == 0 ? 1 : op.latency, op.name);
    }
  }
}

std::string SimTimeline::to_chrome_json() const {
  std::vector<obs::TraceEvent> events;
  events.reserve(slices_.size() + track_names_.size() + 2);

  // Process + track naming metadata so Perfetto labels every unit.
  {
    obs::TraceEvent proc;
    proc.ph = 'M';
    proc.name = "process_name";
    proc.tid = 0;
    proc.args.push_back({"name", cat("EPIC core ", config_.summary()), false});
    events.push_back(std::move(proc));
  }
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    obs::TraceEvent meta;
    meta.ph = 'M';
    meta.name = "thread_name";
    meta.tid = static_cast<int>(i) + 1;
    meta.args.push_back({"name", track_names_[i], false});
    events.push_back(std::move(meta));
    obs::TraceEvent order;
    order.ph = 'M';
    order.name = "thread_sort_index";
    order.tid = static_cast<int>(i) + 1;
    order.args.push_back({"sort_index", cat(i), true});
    events.push_back(std::move(order));
  }

  for (const Slice& s : slices_) {
    obs::TraceEvent e;
    e.ph = 'X';
    e.tid = s.track + 1;
    e.ts = static_cast<double>(s.ts);
    e.dur = static_cast<double>(s.dur);
    switch (s.kind) {
      case kIssue:
        e.name = cat("b", s.pc);
        e.cat = "issue";
        e.args.push_back({"pc", cat(s.pc), true});
        e.args.push_back({"useful_ops", cat(s.useful_ops), true});
        break;
      case kFuOp:
        e.name = std::string(s.op_name);
        e.cat = "fu";
        e.args.push_back({"pc", cat(s.pc), true});
        break;
      case kFuNullified:
        e.name = std::string(s.op_name);
        e.cat = "nullified";
        e.args.push_back({"pc", cat(s.pc), true});
        break;
      default:
        e.name = stall_name(s.kind);
        e.cat = "stall";
        e.args.push_back({"pc", cat(s.pc), true});
        break;
    }
    events.push_back(std::move(e));
  }

  if (truncated_) {
    obs::TraceEvent marker;
    marker.ph = 'I';
    marker.name = cat("timeline truncated at ", max_bundles_, " bundles");
    marker.cat = "meta";
    marker.tid = 1;
    marker.ts = static_cast<double>(totals_.cycles);
    events.push_back(std::move(marker));
  }

  std::vector<obs::EventArg> other;
  other.push_back({"time_unit", "cycles", false});
  other.push_back({"config", config_.summary(), false});
  other.push_back({"truncated", truncated_ ? "true" : "false", true});
  other.push_back({"cycles", cat(totals_.cycles), true});
  other.push_back({"bundles_issued", cat(totals_.bundles_issued), true});
  other.push_back({"stall_scoreboard", cat(totals_.stall_scoreboard), true});
  other.push_back({"stall_reg_ports", cat(totals_.stall_reg_ports), true});
  other.push_back(
      {"stall_mem_contention", cat(totals_.stall_mem_contention), true});
  other.push_back({"branch_bubbles", cat(totals_.branch_bubbles), true});
  other.push_back({"ops_executed", cat(totals_.ops_executed), true});
  other.push_back({"ops_committed", cat(totals_.ops_committed), true});
  other.push_back({"ops_nullified", cat(totals_.ops_nullified), true});
  return obs::chrome_trace_json(events, other);
}

}  // namespace cepic
