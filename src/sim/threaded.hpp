// Block-level threaded-code execution tier for the EPIC simulator (the
// third tier above the interpretive and decode-cache paths; docs/SIM.md
// "Execution tiers"). Hot straight-line runs of DecodedBundles —
// promoted by per-entry-pc profile counters while executing on the
// decode tier — are lowered once into a flat, pre-resolved micro-op
// stream: per-op dispatch kinds specialised on opcode and operand
// shape, literals materialised as constant-pool registers so operand
// fetch is one unconditional array load, Mdes latencies and §3.2 port
// verdicts pre-folded, per-bundle statistics collapsed into static
// deltas on the bundle-end micro-op. A tight
// switch dispatch loop (exec_block) then executes whole blocks without
// re-deriving any static fact and with all loop state in registers.
//
// Correctness contract: bit-identical SimStats, OUT stream, traces,
// architectural state and fault text/interleaving against the other
// two tiers (tests/test_sim_fastpath.cpp proves it differentially).
// Bundles the lowering cannot prove exact — intra-bundle hazards,
// custom-op slots (user semantics may throw), unsupported ops, operand
// shapes outside the fast kinds — fall back per bundle to
// step_decoded(), exactly as the decode tier falls back per bundle to
// the interpretive path. Memory operations stay direct behind probe
// micro-ops: the probe re-checks the access before any state changes
// and bails to the per-bundle fallback when the access would fault, so
// the fault path replays with the decode tier's exact interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "core/isa.hpp"
#include "sim/decode.hpp"

namespace cepic {

/// Dispatch code of one micro-op. Operand fields are indices into the
/// simulator's extended GPR array (architectural registers, then the
/// write sink, then the constant pool — see EpicSimulator::gprs_), so
/// fetch and write-back are branchless; remaining shape bits (guarded
/// vs not, branch-target file) ride in MicroOp::flags. Opcode
/// specialisations that need exact-width arithmetic are only emitted at
/// datapath width 32.
enum class UopCode : std::uint8_t {
  // -- bundle prologue --
  kBeginFast,   ///< no scoreboard sources, no port demand: issue = cycle
  kBegin,       ///< scoreboard max + constant port stall (port_const)
  kBegin2,      ///< kBegin for <= 2 GPR-only scoreboard sources: the
                ///< register indices ride in a/d, no slice scan
  kBeginPorts,  ///< scoreboard max + dynamic §3.2 fixed point (fwd on)
  kProbeWord,   ///< bail to uops[e] unless a word access at a+b succeeds
  kProbeByte,   ///< bail to uops[e] unless a byte access at a+b succeeds
  kGuard,       ///< predicate prefix: skip the next micro-op (one slot)
                ///< when preds[pred] is 0, else commit it (a/b carry the
                ///< mem read/write stat deltas). Op handlers themselves
                ///< never test guards.
  // -- operations (direct execution) --
  kAluGen,  ///< eval_alu (div/rem/min/max/abs/shra, narrow datapaths)
  kAluAdd,
  kAluSub,
  kAluMul,
  kAluAnd,
  kAluOr,
  kAluXor,
  kAluShl,
  kAluShrl,
  kAluMov,
  kCmpp,  ///< eval_cmpp; always writes d and e (absent dest -> pred sink)
  kOut,
  kLdW,
  kLdWS,
  kLdB,
  kLdBU,
  kStW,  ///< deferred into the pending-store buffer (flushed at end)
  kStB,
  // -- probing memory forms (the probe fused into the op itself) --
  // Emitted instead of a standalone probe + plain op when a mid-bundle
  // bail still replays exactly: the op checks the access and bails to
  // uops[e] itself, saving one dispatch and a duplicate address
  // computation per memory op. Eligibility (compile_block): no OUT, no
  // guarded op, and no op writing a register the bundle reads — then
  // re-running the already-executed prefix through step_decoded is
  // unobservable (same sources, same results, pending stores dropped).
  kLdWP,
  kLdBP,
  kLdBUP,
  kStWP,
  kStBP,
  kPbr,
  kBr,  ///< BRU/BRR/BRL; target mode + link write via flags
  kBrct,
  kBrcf,
  kHalt,
  // -- bundle epilogue --
  kEndFall,  ///< no control-flow op in the bundle: static fall-through
  kEnd,      ///< full halt/branch epilogue (may exit the block)
  // -- fused pairs (one dispatch, two micro-op slots) --
  kEndFallBegin,       ///< kEndFall + the next bundle's kBegin
  kEndFallBegin2,      ///< kEndFall + the next bundle's kBegin2
  kEndFallBeginFast,   ///< kEndFall + the next bundle's kBeginFast
  kEndFallBeginPorts,  ///< kEndFall + the next bundle's kBeginPorts
  // -- block control --
  kFallback,  ///< run this bundle via step_decoded(), then goto uops[e]
  kExit,      ///< leave the block (pc_ already advanced)
};

// MicroOp::flags bits. One namespace across codes; each code documents
// which bits it reads.
inline constexpr std::uint8_t kFlagS2Lit = 2;       ///< kBrct/kBrcf: b is a
                                                    ///< literal condition
inline constexpr std::uint8_t kFlagGuarded = 4;     ///< pred guards the op
inline constexpr std::uint8_t kFlagTargetGpr = 16;  ///< kBr* target indexes
                                                    ///< gprs_ (incl. pool),
                                                    ///< not btrs_
inline constexpr std::uint8_t kFlagLink = 32;       ///< kBr writes link (BRL)
inline constexpr std::uint8_t kFlagTrace = 64;      ///< kEnd*: record trace
inline constexpr std::uint8_t kFlagContention = 128;  ///< kEnd*: mem steals

/// Number of dispatch codes (kExit is last); the dispatch table in
/// sim/threaded.cpp static_asserts against this.
inline constexpr unsigned kNumUopCodes =
    static_cast<unsigned>(UopCode::kExit) + 1;

/// One pre-resolved micro-op, packed to 32 bytes (two per cache line)
/// so blocks stream through the dispatch loop cheaply. Operand fields
/// a/b are extended-GPR indices (literals resolve to constant-pool
/// slots at lowering time); d is the destination index, with absent
/// destinations redirected to the write sink so stores never branch.
/// Micro-ops that need no operands reuse a/b/d for other payload:
///  * kBegin/kBeginPorts: a = scoreboard slice offset in
///    ThreadedBlock::sb, b = packed slice lengths
///    (gprs | preds<<8 | btrs<<16 | port_reads<<24), d = port-read
///    slice offset, aux = constant port stall (kBegin) or static
///    write-port demand (kBeginPorts);
///  * kEnd/kEndFall: d|e<<32 = the four counter deltas pre-expanded to
///    16-bit lanes (nops | executed<<16 | committed<<32 |
///    mem_reads<<48) so the dispatch loop folds them with one add,
///    b = mem_writes | hist_bucket<<8.
struct MicroOp {
  UopCode code = UopCode::kExit;
  std::uint8_t flags = 0;
  std::uint8_t lat = 0;    ///< result latency (pre-folded from Mdes)
  std::uint8_t aux = 0;    ///< kBegin*: port payload (see above)
  std::uint16_t pred = 0;  ///< guard predicate (kFlagGuarded)
  Op op = Op::NOP;         ///< kAluGen/kCmpp: original opcode
  std::uint32_t a = 0;     ///< src1 reg/lit, or packed payload
  std::uint32_t b = 0;     ///< src2 reg/lit / link, or packed payload
  std::uint32_t d = 0;     ///< destination register index
  std::uint32_t e = 0;     ///< dest2 / bail/continue micro-op index
  std::uint32_t pc = 0;    ///< bundle pc this micro-op belongs to
};
static_assert(sizeof(MicroOp) <= 32, "MicroOp must stay two-per-line");

/// One compiled block: a maximal straight-line run of bundles starting
/// at entry_pc. Conditional-branch fall-through stays inside the block;
/// a taken branch or halt exits it.
struct ThreadedBlock {
  std::uint32_t entry_pc = 0;
  std::uint32_t len_bundles = 0;
  /// Conservative bound on how far the clock can advance in one pass
  /// through the block. run_threaded() only enters the block when
  /// max_cycles - cycle exceeds this, so no in-block micro-op needs the
  /// per-bundle cycle-limit check; near the limit execution single-steps
  /// on the decode tier, whose check (and fault text) is exact.
  std::uint64_t max_advance = 0;
  std::vector<MicroOp> uops;
  /// Flattened scoreboard + port-read register indices, sliced per
  /// begin micro-op (offset/length fields there): one contiguous scan
  /// instead of three vector hops per bundle.
  std::vector<std::uint32_t> sb;
};

/// Per-program threaded-tier state: promotion counters and compiled
/// blocks. Pure functions of the (immutable) program + options, so —
/// like the decode cache — blocks survive reset() and repeated runs
/// reuse them deterministically.
struct ThreadedCache {
  static constexpr std::int32_t kCold = -1;

  std::vector<std::int32_t> block_at;  ///< pc -> blocks index, or kCold
  std::vector<std::uint32_t> hot;      ///< per-pc promotion counters
  std::vector<ThreadedBlock> blocks;

  /// Deduplicated literal operand values, shared by every block. Pool
  /// entry i is materialised once in the register-file tail (extended
  /// GPR index num_gprs + 1 + i) when its block is compiled; reset()
  /// leaves the tail intact, so operand fetch never distinguishes
  /// literal from register. The zero literal needs no slot: it resolves
  /// to r0, which is pinned to 0.
  std::vector<std::uint32_t> pool;

  /// Worst-case clock advance of one bundle (scoreboard + port stalls +
  /// bubbles + contention), pre-computed over the whole program.
  std::uint64_t advance_bound = 0;

  // Tier telemetry (tests/test_sim_threaded.cpp).
  std::uint64_t block_entries = 0;  ///< block entries (incl. in-loop
                                    ///< block-to-block transitions)
  std::uint64_t fallback_bundles = 0;   ///< per-bundle decode-tier falls
  std::uint64_t cold_steps = 0;         ///< decode-tier steps pre-promotion

  bool enabled() const { return !block_at.empty(); }
};

}  // namespace cepic
