#include "sim/stats.hpp"

#include "support/text.hpp"

namespace cepic {

const char* to_string(ExecTier tier) {
  switch (tier) {
    case ExecTier::Interp: return "interp";
    case ExecTier::Decode: return "decode";
    case ExecTier::Threaded: return "threaded";
  }
  return "?";
}

std::string SimStats::report() const {
  std::string s;
  s += cat("exec tier:          ", to_string(exec_tier),
           timeline_pinned ? " (pinned from threaded: timeline attached)"
                           : "",
           "\n");
  s += cat("cycles:             ", cycles, "\n");
  s += cat("bundles issued:     ", bundles_issued, "\n");
  s += cat("ops executed:       ", ops_executed, "\n");
  s += cat("ops committed:      ", ops_committed, "\n");
  s += cat("ops nullified:      ", ops_nullified, "\n");
  s += cat("nop slots:          ", nops, "\n");
  s += cat("ILP (ops/cycle):    ", fixed(ilp(), 3), "\n");
  s += cat("stall: scoreboard   ", stall_scoreboard, "\n");
  s += cat("stall: reg ports    ", stall_reg_ports, "\n");
  s += cat("stall: mem contention ", stall_mem_contention, "\n");
  s += cat("branch bubbles:     ", branch_bubbles, "\n");
  s += cat("branches taken:     ", branches_taken, " / not taken: ",
           branches_not_taken, "\n");
  s += cat("memory reads/writes: ", mem_reads, " / ", mem_writes, "\n");
  s += "bundle width histogram:";
  for (std::size_t i = 0; i < bundle_width_hist.size(); ++i) {
    if (bundle_width_hist[i] != 0) {
      s += cat(" [", i, "]=", bundle_width_hist[i]);
    }
  }
  s += "\n";
  if (trace_truncated) {
    s += "trace truncated:    yes\n";
  }
  return s;
}

}  // namespace cepic
