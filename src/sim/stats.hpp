// Cycle-accounting statistics reported by the EPIC simulator — the
// quantities Table 1 and Figs. 3–5 of the paper are built from, plus the
// stall breakdown used by the ablation benches.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace cepic {

/// Simulator execution tier (docs/SIM.md "Execution tiers"). All three
/// produce bit-identical statistics, output, traces and faults; they
/// differ only in speed (tests/test_sim_fastpath.cpp proves it
/// differentially).
enum class ExecTier : std::uint8_t {
  Interp,    ///< decode-every-cycle reference path
  Decode,    ///< pre-decoded DecodedBundle fast path (PR 4)
  Threaded,  ///< block-level threaded-code tier (sim/threaded.hpp)
};

/// Short lowercase name (matches the --exec-tier CLI spelling).
const char* to_string(ExecTier tier);

struct SimStats {
  std::uint64_t cycles = 0;          ///< total processor cycles
  std::uint64_t bundles_issued = 0;  ///< MultiOps issued
  std::uint64_t ops_executed = 0;    ///< non-NOP ops entering execute
  std::uint64_t ops_committed = 0;   ///< ops whose guard predicate was true
  std::uint64_t ops_nullified = 0;   ///< ops squashed by a false predicate
  std::uint64_t nops = 0;            ///< NOP padding slots fetched

  std::uint64_t stall_scoreboard = 0;   ///< operand-not-ready stalls
  std::uint64_t stall_reg_ports = 0;    ///< register-port budget stalls (§3.2)
  std::uint64_t stall_mem_contention = 0;  ///< unified-memory fetch steals
  std::uint64_t branch_bubbles = 0;     ///< taken-branch fetch flushes

  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  std::uint64_t branches_taken = 0;
  std::uint64_t branches_not_taken = 0;

  /// The execution trace hit SimOptions::trace_limit and later entries
  /// were dropped (an explicit truncation marker entry is appended to
  /// the trace itself as well — never a silent cut).
  bool trace_truncated = false;

  /// Widest issue the histogram below can record. The simulator asserts
  /// config.issue_width fits at construction, so a customisation with
  /// wider issue fails loudly instead of silently folding into the top
  /// bucket.
  static constexpr std::size_t kMaxBundleWidth = 8;

  /// Histogram of useful (non-NOP) ops per issued bundle,
  /// index 0..kMaxBundleWidth.
  std::array<std::uint64_t, kMaxBundleWidth + 1> bundle_width_hist{};

  // --- execution metadata (not architecture-visible counters) ---------

  /// Tier that executed the most recent run()/step(). When a timeline
  /// is attached to a threaded-tier simulator the run pins to the
  /// decode tier and says so here (timeline_pinned below).
  ExecTier exec_tier = ExecTier::Interp;
  /// exec_tier was requested Threaded but the run executed on the
  /// decode tier because a SimTimeline was attached.
  bool timeline_pinned = false;

  /// Achieved instruction-level parallelism: committed ops per cycle.
  double ilp() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(ops_committed) /
                             static_cast<double>(cycles);
  }

  /// Multi-line human-readable report.
  std::string report() const;

  /// Field-wise equality over the semantic counters (differential
  /// cross-tier tests). The exec_tier/timeline_pinned markers record
  /// which tier ran — the one thing the tiers legitimately disagree on
  /// — so they are deliberately excluded.
  bool operator==(const SimStats& o) const {
    return cycles == o.cycles && bundles_issued == o.bundles_issued &&
           ops_executed == o.ops_executed &&
           ops_committed == o.ops_committed &&
           ops_nullified == o.ops_nullified && nops == o.nops &&
           stall_scoreboard == o.stall_scoreboard &&
           stall_reg_ports == o.stall_reg_ports &&
           stall_mem_contention == o.stall_mem_contention &&
           branch_bubbles == o.branch_bubbles && mem_reads == o.mem_reads &&
           mem_writes == o.mem_writes &&
           branches_taken == o.branches_taken &&
           branches_not_taken == o.branches_not_taken &&
           trace_truncated == o.trace_truncated &&
           bundle_width_hist == o.bundle_width_hist;
  }
};

}  // namespace cepic
