#include "sim/simulator.hpp"

#include <algorithm>

#include "core/eval.hpp"
#include "obs/obs.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic {

EpicSimulator::EpicSimulator(Program program, CustomOpTable custom,
                             SimOptions options)
    : program_(std::move(program)),
      custom_(std::move(custom)),
      options_(options),
      mdes_(program_.config, &custom_),
      width_(program_.config.datapath_width),
      // +1: write-sink slot for the threaded tier (see the gprs_ layout
      // comment in simulator.hpp); pool constants append beyond it.
      gprs_(program_.config.num_gprs + 1, 0),
      preds_(program_.config.num_preds + 1, 0),
      btrs_(program_.config.num_btrs, 0),
      gpr_ready_(program_.config.num_gprs + 1, 0),
      pred_ready_(program_.config.num_preds + 1, 0),
      btr_ready_(program_.config.num_btrs, 0),
      mem_(options.mem_size) {
  program_.config.validate();
  CEPIC_CHECK(program_.code.size() % program_.config.issue_width == 0,
              "program code is not a whole number of bundles");
  // The per-bundle width histogram is statically sized; a customisation
  // with wider issue must fail here, not overflow the histogram index.
  CEPIC_CHECK(program_.config.issue_width <= SimStats::kMaxBundleWidth,
              cat("issue_width ", program_.config.issue_width,
                  " exceeds the bundle-width histogram range 0..",
                  SimStats::kMaxBundleWidth));
  // Install semantics for any config-enabled custom op the caller did
  // not supply explicitly.
  for (unsigned slot = 0; slot < program_.config.custom_ops.size(); ++slot) {
    if (!custom_.has(slot)) {
      auto op = builtin_custom_op(program_.config.custom_ops[slot]);
      if (op) custom_.install(slot, std::move(*op));
    }
  }
  fwd_ = mdes_.forwarding();
  port_budget_ = mdes_.reg_port_budget();
  bundle_count_ = static_cast<std::uint32_t>(program_.bundle_count());
  gpr_mask_ = width_ >= 32 ? 0xFFFFFFFFu
                           : ((std::uint32_t{1} << width_) - 1);
  if (options_.exec_tier != ExecTier::Interp) {
    decoded_ = decode_program(program_, mdes_, options_.collect_trace);
    writes_scratch_.reserve(2 * program_.config.issue_width);
    stores_scratch_.reserve(program_.config.issue_width);
  }
  if (options_.exec_tier == ExecTier::Threaded) {
    threaded_.block_at.assign(bundle_count_, ThreadedCache::kCold);
    threaded_.hot.assign(bundle_count_, 0);
    // Worst-case clock advance of any single bundle: scoreboard stall
    // (bounded by the largest in-flight latency), port stall (bounded
    // by the largest static port demand), bubbles and contention.
    std::uint64_t max_lat = 1;
    std::uint64_t max_ports = 0;
    for (const DecodedBundle& b : decoded_) {
      for (const DecodedOp& op : b.ops) {
        max_lat = std::max<std::uint64_t>(max_lat, op.latency);
      }
      max_ports = std::max<std::uint64_t>(
          max_ports, b.write_ports + b.port_reads.size());
    }
    const std::uint64_t port_bound =
        max_ports == 0 ? 0 : (max_ports + port_budget_ - 1) / port_budget_;
    threaded_.advance_bound =
        max_lat + port_bound + program_.config.pipeline_stages + 2;
  }
  reset();
}

void EpicSimulator::reset() {
  // Architectural registers + the sink only: the constant-pool tail of
  // gprs_ holds compiled-block literals, which survive reset exactly
  // like the blocks that reference them.
  std::fill_n(gprs_.begin(), program_.config.num_gprs + 1, 0);
  std::fill(preds_.begin(), preds_.end(), 0);
  std::fill(btrs_.begin(), btrs_.end(), 0);
  std::fill(gpr_ready_.begin(), gpr_ready_.end(), 0);
  std::fill(pred_ready_.begin(), pred_ready_.end(), 0);
  std::fill(btr_ready_.begin(), btr_ready_.end(), 0);
  preds_[0] = 1;  // p0 hardwired true
  mem_.reset();  // cost: the pages actually written, not the full size
  mem_.load_image(kDataBase, program_.data);
  pc_ = program_.entry_bundle;
  cycle_ = 0;
  halted_ = false;
  output_.clear();
  stats_ = SimStats{};
  trace_.clear();
}

std::uint32_t EpicSimulator::gpr(unsigned i) const {
  CEPIC_CHECK(i < program_.config.num_gprs, "gpr index");
  return i == 0 ? 0 : gprs_[i];
}

void EpicSimulator::set_gpr(unsigned i, std::uint32_t v) {
  CEPIC_CHECK(i < program_.config.num_gprs, "gpr index");
  if (i != 0) gprs_[i] = mask_to_width(v, width_);
}

bool EpicSimulator::pred(unsigned i) const {
  CEPIC_CHECK(i < program_.config.num_preds, "pred index");
  return i == 0 ? true : preds_[i] != 0;
}

void EpicSimulator::set_pred(unsigned i, bool v) {
  CEPIC_CHECK(i < program_.config.num_preds, "pred index");
  if (i != 0) preds_[i] = v ? 1 : 0;
}

std::uint32_t EpicSimulator::btr(unsigned i) const {
  CEPIC_CHECK(i < btrs_.size(), "btr index");
  return btrs_[i];
}

namespace {

RegFile file_of_src(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr:
    case SrcSpec::GprOrLit: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    case SrcSpec::None:
    case SrcSpec::LitOnly: return RegFile::None;
  }
  return RegFile::None;
}

}  // namespace

std::uint64_t EpicSimulator::ready_cycle(RegFile file,
                                         std::uint32_t index) const {
  switch (file) {
    case RegFile::Gpr: return index == 0 ? 0 : gpr_ready_[index];
    case RegFile::Pred: return index == 0 ? 0 : pred_ready_[index];
    case RegFile::Btr: return btr_ready_[index];
    case RegFile::None: break;
  }
  return 0;
}

void EpicSimulator::note_ready(RegFile file, std::uint32_t index,
                               std::uint64_t cycle) {
  switch (file) {
    case RegFile::Gpr:
      if (index != 0) gpr_ready_[index] = cycle;
      break;
    case RegFile::Pred:
      if (index != 0) pred_ready_[index] = cycle;
      break;
    case RegFile::Btr:
      btr_ready_[index] = cycle;
      break;
    case RegFile::None:
      break;
  }
}

std::uint32_t EpicSimulator::read_operand(const Operand& o, SrcSpec spec,
                                          bool zext) const {
  (void)zext;  // literal extension already happened at decode/build time
  if (o.is_lit()) return mask_to_width(static_cast<std::uint32_t>(o.lit), width_);
  if (!o.is_reg()) return 0;
  switch (file_of_src(spec)) {
    case RegFile::Gpr: return gpr(o.reg);
    case RegFile::Pred: return pred(o.reg) ? 1u : 0u;
    case RegFile::Btr: return btr(o.reg);
    case RegFile::None: break;
  }
  return 0;
}

std::uint32_t EpicSimulator::fetch(const DecodedSrc& src) const {
  switch (src.kind) {
    case SrcKind::Zero: return 0;
    case SrcKind::Lit: return src.value;
    // gprs_[0] is pinned to 0 (reset + set_gpr never write it), so the
    // r0 special case costs nothing here.
    case SrcKind::Gpr: return gprs_[src.reg];
    case SrcKind::Pred:
      return (src.reg == 0 || preds_[src.reg] != 0) ? 1u : 0u;
    case SrcKind::Btr: return btrs_[src.reg];
  }
  return 0;
}

void EpicSimulator::check_cycle_limit(std::uint64_t issue) const {
  // Issuing at `issue` would advance the clock to issue + 1; refuse as
  // soon as that provably crosses the budget, before stalls, bubbles or
  // side effects are applied (the old end-of-step check let one step
  // overshoot the limit arbitrarily far).
  if (issue >= options_.max_cycles) {
    throw SimError(cat("cycle limit exceeded (", options_.max_cycles,
                       " cycles) at bundle ", pc_, " — runaway program?"));
  }
}

void EpicSimulator::write_back(const std::vector<PendingStore>& stores,
                               const std::vector<WriteBack>& writes) {
  // Memory first (loads above read pre-store memory), then registers in
  // op order (later writes win on WAW within a MultiOp).
  for (const PendingStore& s : stores) {
    if (s.byte) {
      mem_.write_byte(s.addr, static_cast<std::uint8_t>(s.value));
    } else {
      mem_.write_word(s.addr, s.value);
    }
  }
  for (const WriteBack& w : writes) {
    switch (w.file) {
      case RegFile::Gpr:
        set_gpr(w.index, w.value);
        break;
      case RegFile::Pred:
        set_pred(w.index, w.value != 0);
        break;
      case RegFile::Btr:
        btrs_[w.index] = w.value;
        break;
      case RegFile::None:
        break;
    }
    note_ready(w.file, w.index, w.ready);
  }
}

bool EpicSimulator::finish_step(std::uint64_t issue, bool branch_taken,
                                std::uint32_t branch_target, bool halt_now,
                                bool any_mem, unsigned useful_ops,
                                const std::string* trace_text) {
  const std::uint32_t issued_pc = pc_;
  ++stats_.bundles_issued;
  stats_.bundle_width_hist[std::min<std::size_t>(
      useful_ops, SimStats::kMaxBundleWidth)]++;
  cycle_ = issue + 1;

  const bool contention =
      program_.config.unified_memory_contention && any_mem;
  if (contention) {
    ++cycle_;
    ++stats_.stall_mem_contention;
  }

  if (options_.collect_trace) trace_record(issue, trace_text);

  unsigned bubbles = 0;
  bool keep_running = true;
  if (halt_now) {
    halted_ = true;
    keep_running = false;
  } else if (branch_taken) {
    ++stats_.branches_taken;
    // A taken branch flushes everything in front of execute: one bubble
    // per pipeline stage before it (1 on the 2-stage prototype).
    bubbles = program_.config.pipeline_stages - 1;
    stats_.branch_bubbles += bubbles;
    cycle_ += bubbles;
    if (branch_target >= program_.bundle_count()) {
      throw SimError(cat("branch to bundle ", branch_target,
                         " past end of program"));
    }
    pc_ = branch_target;
  } else {
    ++pc_;
  }

  stats_.cycles = cycle_;

  if (timeline_ != nullptr) {
    SimTimeline::BundleEvent bundle;
    bundle.fetch = tl_fetch_;
    bundle.issue = issue;
    bundle.sb_stall = tl_sb_stall_;
    bundle.port_stall = tl_port_stall_;
    bundle.pc = issued_pc;
    bundle.useful_ops = useful_ops;
    bundle.mem_contention = contention;
    bundle.branch_bubbles = bubbles;
    bundle.halt = halt_now;
    bundle.end_cycle = cycle_;
    timeline_->record(bundle, tl_ops_);
  }
  return keep_running;
}

void EpicSimulator::trace_record(std::uint64_t issue,
                                 const std::string* trace_text) {
  if (trace_.size() < options_.trace_limit) {
    if (trace_text != nullptr) {
      trace_.push_back({issue, pc_, *trace_text});
    } else {
      std::string text;
      for (const Instruction& inst : program_.bundle(pc_)) {
        if (inst.is_nop()) continue;
        if (!text.empty()) text += " || ";
        text += to_string(inst);
      }
      trace_.push_back({issue, pc_, text.empty() ? "nop" : text});
    }
  } else if (!stats_.trace_truncated) {
    // The limit was hit: leave an explicit marker instead of silently
    // dropping the tail, and flag it on the statistics.
    stats_.trace_truncated = true;
    trace_.push_back({issue, pc_,
                      cat("[trace truncated at ", options_.trace_limit,
                          " entries]")});
  }
}

bool EpicSimulator::step() {
  if (halted_) return false;
  if (pc_ >= program_.bundle_count()) {
    throw SimError(cat("pc 0x", std::hex, pc_, " past end of program"));
  }
  // Single-stepping a threaded-tier simulator executes the decode tier:
  // bit-identical by contract, and per-bundle stepping has no block to
  // amortise over anyway. run() is where blocks pay off.
  if (options_.exec_tier != ExecTier::Interp) {
    stats_.exec_tier = ExecTier::Decode;
    const DecodedBundle& bundle = decoded_[pc_];
    if (!bundle.use_legacy) return step_decoded(bundle);
    return step_interpretive();
  }
  stats_.exec_tier = ExecTier::Interp;
  return step_interpretive();
}

bool EpicSimulator::step_decoded(const DecodedBundle& bundle) {
  return timeline_ != nullptr ? step_decoded_impl<true>(bundle)
                              : step_decoded_impl<false>(bundle);
}

template <bool kTimeline>
bool EpicSimulator::step_decoded_impl(const DecodedBundle& bundle) {
  // ---- Stage 1: issue cycle from the pre-computed source lists. ----
  std::uint64_t issue = cycle_;
  for (const std::uint32_t r : bundle.sb_gpr) {
    issue = std::max(issue, gpr_ready_[r]);
  }
  for (const std::uint32_t r : bundle.sb_pred) {
    issue = std::max(issue, pred_ready_[r]);
  }
  for (const std::uint32_t r : bundle.sb_btr) {
    issue = std::max(issue, btr_ready_[r]);
  }
  if constexpr (kTimeline) {
    tl_fetch_ = cycle_;
    tl_sb_stall_ = issue - cycle_;
  }
  stats_.stall_scoreboard += issue - cycle_;

  // §3.2 register-port budget fixed point over the static read/write
  // lists. Without forwarding the demand is constant, so one division
  // suffices; with forwarding, delaying issue can turn a forwarded read
  // into a port read — iterate exactly like the interpretive path.
  std::uint64_t port_stall = 0;
  if (!fwd_) {
    const unsigned ports =
        bundle.write_ports + static_cast<unsigned>(bundle.port_reads.size());
    if (ports != 0) port_stall = (ports + port_budget_ - 1) / port_budget_ - 1;
  } else if (bundle.write_ports != 0 || !bundle.port_reads.empty()) {
    for (int iter = 0; iter < 4; ++iter) {
      const std::uint64_t at = issue + port_stall;
      unsigned ports = bundle.write_ports;
      for (const std::uint32_t r : bundle.port_reads) {
        if (gpr_ready_[r] != at) ++ports;
      }
      const std::uint64_t needed =
          ports == 0 ? 0 : (ports + port_budget_ - 1) / port_budget_ - 1;
      if (needed == port_stall) break;
      port_stall = needed;
    }
  }
  if constexpr (kTimeline) tl_port_stall_ = port_stall;
  stats_.stall_reg_ports += port_stall;
  issue += port_stall;
  check_cycle_limit(issue);

  // ---- Stage 2: execute + writeback (all reads before any write). ----
  writes_scratch_.clear();
  stores_scratch_.clear();
  if constexpr (kTimeline) tl_ops_.clear();
  bool branch_taken = false;
  std::uint32_t branch_target = 0;
  bool halt_now = false;
  bool any_mem = false;
  unsigned useful_ops = 0;

  for (const DecodedOp& op : bundle.ops) {
    stats_.nops += op.nops_before;
    ++useful_ops;
    ++stats_.ops_executed;
    if (op.kind == ExecKind::Unsupported) {
      throw SimError(cat("operation `", std::string(op.info->name),
                         "` not implemented on this customisation"));
    }
    const bool guard = op.pred == 0 || preds_[op.pred] != 0;
    if (!guard) {
      ++stats_.ops_nullified;
      if constexpr (kTimeline) {
        tl_ops_.push_back({op.info->fu, op.info->name, 1, true});
      }
      continue;
    }
    ++stats_.ops_committed;
    if constexpr (kTimeline) {
      tl_ops_.push_back({op.info->fu, op.info->name, op.latency, false});
    }

    const std::uint32_t a = fetch(op.src1);
    const std::uint32_t b = fetch(op.src2);
    const std::uint64_t ready = issue + op.latency;

    switch (op.kind) {
      case ExecKind::Alu: {
        const std::uint32_t r = eval_alu(op.op, a, b, width_, &custom_);
        writes_scratch_.push_back({RegFile::Gpr, op.dest1, r, ready});
        break;
      }
      case ExecKind::Cmpp: {
        const bool c = eval_cmpp(op.op, a, b, width_);
        writes_scratch_.push_back(
            {RegFile::Pred, op.dest1, c ? 1u : 0u, ready});
        if (op.has_dest2) {
          writes_scratch_.push_back(
              {RegFile::Pred, op.dest2, c ? 0u : 1u, ready});
        }
        break;
      }
      case ExecKind::Out:
        output_.push_back(a);
        break;
      case ExecKind::LdW:
        any_mem = true;
        writes_scratch_.push_back(
            {RegFile::Gpr, op.dest1,
             mask_to_width(mem_.read_word(a + b), width_), ready});
        ++stats_.mem_reads;
        break;
      case ExecKind::LdWS:
        any_mem = true;
        writes_scratch_.push_back(
            {RegFile::Gpr, op.dest1,
             mask_to_width(mem_.read_word_speculative(a + b), width_), ready});
        ++stats_.mem_reads;
        break;
      case ExecKind::LdB: {
        any_mem = true;
        const std::uint8_t byte = mem_.read_byte(a + b);
        writes_scratch_.push_back(
            {RegFile::Gpr, op.dest1,
             mask_to_width(
                 static_cast<std::uint32_t>(static_cast<std::int32_t>(
                     static_cast<std::int8_t>(byte))),
                 width_),
             ready});
        ++stats_.mem_reads;
        break;
      }
      case ExecKind::LdBU:
        any_mem = true;
        writes_scratch_.push_back(
            {RegFile::Gpr, op.dest1,
             static_cast<std::uint32_t>(mem_.read_byte(a + b)), ready});
        ++stats_.mem_reads;
        break;
      case ExecKind::StW:
        any_mem = true;
        stores_scratch_.push_back({false, a + b, gprs_[op.dest1]});
        ++stats_.mem_writes;
        break;
      case ExecKind::StB:
        any_mem = true;
        stores_scratch_.push_back({true, a + b, gprs_[op.dest1]});
        ++stats_.mem_writes;
        break;
      case ExecKind::Pbr:
        writes_scratch_.push_back(
            {RegFile::Btr, op.dest1, op.src1.value, ready});
        break;
      case ExecKind::Bru:
      case ExecKind::Brr:
        if (!branch_taken) {
          branch_taken = true;
          branch_target = a;
        }
        break;
      case ExecKind::Brct:
      case ExecKind::Brcf: {
        const bool cond = b != 0;
        const bool take = op.kind == ExecKind::Brct ? cond : !cond;
        if (take) {
          if (!branch_taken) {
            branch_taken = true;
            branch_target = a;
          }
        } else {
          ++stats_.branches_not_taken;
        }
        break;
      }
      case ExecKind::Brl:
        writes_scratch_.push_back({RegFile::Gpr, op.dest1, pc_ + 1, ready});
        if (!branch_taken) {
          branch_taken = true;
          branch_target = a;
        }
        break;
      case ExecKind::Halt:
        halt_now = true;
        break;
      case ExecKind::Unsupported:
        break;  // unreachable: thrown above
    }
  }
  stats_.nops += bundle.nops_trailing;

  write_back(stores_scratch_, writes_scratch_);
  return finish_step(issue, branch_taken, branch_target, halt_now, any_mem,
                     useful_ops,
                     options_.collect_trace ? &bundle.trace_text : nullptr);
}

bool EpicSimulator::step_interpretive() {
  const std::span<const Instruction> bundle = program_.bundle(pc_);

  // ---- Stage 1: fetch/decode/issue. Determine the issue cycle. ----
  // (a) Scoreboard: all source operands must be ready.
  std::uint64_t issue = cycle_;
  for (const Instruction& inst : bundle) {
    if (inst.is_nop()) continue;
    const OpInfo& info = inst.info();
    issue = std::max(issue, ready_cycle(RegFile::Pred, inst.pred));
    if (inst.src1.is_reg()) {
      issue = std::max(issue, ready_cycle(file_of_src(info.src1), inst.src1.reg));
    }
    if (inst.src2.is_reg()) {
      issue = std::max(issue, ready_cycle(file_of_src(info.src2), inst.src2.reg));
    }
    if (info.dest1_is_source) {
      issue = std::max(issue, ready_cycle(RegFile::Gpr, inst.dest1));
    }
  }
  tl_fetch_ = cycle_;
  tl_sb_stall_ = issue - cycle_;
  stats_.stall_scoreboard += issue - cycle_;

  // (b) Register-file-controller port budget (paper §3.2): GPR reads not
  // satisfied by forwarding plus GPR writes must fit in the budget;
  // excess adds issue cycles. Delaying issue can turn a forwarded read
  // into a port read, so iterate to a fixed point (converges fast: the
  // port count only grows while forwarded reads remain).
  const bool fwd = mdes_.forwarding();
  const unsigned budget = mdes_.reg_port_budget();
  std::uint64_t port_stall = 0;
  for (int iter = 0; iter < 4; ++iter) {
    const std::uint64_t at = issue + port_stall;
    unsigned ports = 0;
    auto count_read = [&](std::uint32_t reg) {
      if (reg == 0) return;  // r0 is hardwired, no port needed
      const std::uint64_t r = gpr_ready_[reg];
      if (!(fwd && r == at)) ++ports;
    };
    for (const Instruction& inst : bundle) {
      if (inst.is_nop()) continue;
      const OpInfo& info = inst.info();
      if (inst.src1.is_reg() && file_of_src(info.src1) == RegFile::Gpr) {
        count_read(inst.src1.reg);
      }
      if (inst.src2.is_reg() && file_of_src(info.src2) == RegFile::Gpr) {
        count_read(inst.src2.reg);
      }
      if (info.dest1_is_source) count_read(inst.dest1);
      if (info.writes_dest1() && info.dest1 == RegFile::Gpr && inst.dest1 != 0) {
        ++ports;
      }
    }
    const std::uint64_t needed =
        ports == 0 ? 0 : (ports + budget - 1) / budget - 1;
    if (needed == port_stall) break;
    port_stall = needed;
  }
  tl_port_stall_ = port_stall;
  stats_.stall_reg_ports += port_stall;
  issue += port_stall;
  check_cycle_limit(issue);

  // ---- Stage 2: execute + writeback (MultiOp semantics: all reads
  // happen before any write of the same MultiOp). ----
  if (timeline_ != nullptr) tl_ops_.clear();
  std::vector<WriteBack> writes;
  std::vector<PendingStore> stores;
  bool branch_taken = false;
  std::uint32_t branch_target = 0;
  bool halt_now = false;
  bool any_mem = false;
  unsigned useful_ops = 0;

  for (const Instruction& inst : bundle) {
    if (inst.is_nop()) {
      ++stats_.nops;
      continue;
    }
    ++useful_ops;
    ++stats_.ops_executed;
    const OpInfo& info = inst.info();
    if (!mdes_.op_supported(inst.op)) {
      throw SimError(cat("operation `", std::string(info.name),
                         "` not implemented on this customisation"));
    }
    const bool guard = pred(inst.pred);
    if (!guard) {
      ++stats_.ops_nullified;
      if (timeline_ != nullptr) {
        tl_ops_.push_back({info.fu, info.name, 1, true});
      }
      continue;
    }
    ++stats_.ops_committed;
    if (timeline_ != nullptr) {
      tl_ops_.push_back({info.fu, info.name, mdes_.latency(inst.op), false});
    }

    const std::uint32_t a =
        read_operand(inst.src1, info.src1, info.literal_zero_extends);
    const std::uint32_t b =
        read_operand(inst.src2, info.src2, info.literal_zero_extends);
    const std::uint64_t ready = issue + mdes_.latency(inst.op);

    switch (info.fu) {
      case FuClass::Alu: {
        const std::uint32_t r = eval_alu(inst.op, a, b, width_, &custom_);
        writes.push_back({RegFile::Gpr, inst.dest1, r, ready});
        break;
      }
      case FuClass::Cmpu: {
        const bool c = eval_cmpp(inst.op, a, b, width_);
        writes.push_back({RegFile::Pred, inst.dest1, c ? 1u : 0u, ready});
        if (info.dest2 != RegFile::None) {
          writes.push_back({RegFile::Pred, inst.dest2, c ? 0u : 1u, ready});
        }
        break;
      }
      case FuClass::Lsu: {
        if (inst.op == Op::OUT) {
          output_.push_back(a);
          break;
        }
        any_mem = true;
        const std::uint32_t addr = a + b;
        switch (inst.op) {
          case Op::LDW:
            writes.push_back({RegFile::Gpr, inst.dest1,
                              mask_to_width(mem_.read_word(addr), width_),
                              ready});
            ++stats_.mem_reads;
            break;
          case Op::LDWS:
            writes.push_back({RegFile::Gpr, inst.dest1,
                              mask_to_width(mem_.read_word_speculative(addr),
                                            width_),
                              ready});
            ++stats_.mem_reads;
            break;
          case Op::LDB: {
            const std::uint8_t byte = mem_.read_byte(addr);
            writes.push_back(
                {RegFile::Gpr, inst.dest1,
                 mask_to_width(static_cast<std::uint32_t>(
                                   static_cast<std::int32_t>(
                                       static_cast<std::int8_t>(byte))),
                               width_),
                 ready});
            ++stats_.mem_reads;
            break;
          }
          case Op::LDBU:
            writes.push_back({RegFile::Gpr, inst.dest1,
                              static_cast<std::uint32_t>(mem_.read_byte(addr)),
                              ready});
            ++stats_.mem_reads;
            break;
          case Op::STW:
            stores.push_back({false, addr, gpr(inst.dest1)});
            ++stats_.mem_writes;
            break;
          case Op::STB:
            stores.push_back({true, addr, gpr(inst.dest1)});
            ++stats_.mem_writes;
            break;
          default:
            CEPIC_CHECK(false, "unhandled LSU op");
        }
        break;
      }
      case FuClass::Bru: {
        switch (inst.op) {
          case Op::PBR:
            writes.push_back({RegFile::Btr, inst.dest1,
                              static_cast<std::uint32_t>(inst.src1.lit),
                              ready});
            break;
          case Op::BRU:
            if (!branch_taken) {
              branch_taken = true;
              branch_target = a;
            }
            break;
          case Op::BRCT:
          case Op::BRCF: {
            const bool cond = b != 0;
            const bool take = inst.op == Op::BRCT ? cond : !cond;
            if (take) {
              if (!branch_taken) {
                branch_taken = true;
                branch_target = a;
              }
            } else {
              ++stats_.branches_not_taken;
            }
            break;
          }
          case Op::BRL:
            writes.push_back({RegFile::Gpr, inst.dest1, pc_ + 1, ready});
            if (!branch_taken) {
              branch_taken = true;
              branch_target = a;
            }
            break;
          case Op::BRR:
            if (!branch_taken) {
              branch_taken = true;
              branch_target = a;
            }
            break;
          case Op::HALT:
            halt_now = true;
            break;
          default:
            CEPIC_CHECK(false, "unhandled BRU op");
        }
        break;
      }
      case FuClass::None:
        break;
    }
  }

  write_back(stores, writes);
  return finish_step(issue, branch_taken, branch_target, halt_now, any_mem,
                     useful_ops, nullptr);
}

const SimStats& EpicSimulator::run() {
  const ExecTier tier = active_tier();
  stats_.exec_tier = tier;
  stats_.timeline_pinned =
      options_.exec_tier == ExecTier::Threaded && tier == ExecTier::Decode;
  if (tier == ExecTier::Threaded) {
    run_threaded();
    obs::observe("sim.cycles_per_run", stats_.cycles);
    return stats_;
  }
  while (step()) {
  }
  // step() re-stamps the marker each bundle; restore the run-level
  // verdict (identical unless the tier was pinned).
  stats_.exec_tier = tier;
  obs::observe("sim.cycles_per_run", stats_.cycles);
  return stats_;
}

}  // namespace cepic
