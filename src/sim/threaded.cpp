// Threaded-code execution tier: block lowering (compile_block), the
// micro-op dispatch loop (exec_block) and the tier's run loop
// (run_threaded). See sim/threaded.hpp for the contract; the oracle
// whose observable behaviour every path here must reproduce exactly is
// step_decoded_impl / finish_step in sim/simulator.cpp.

#include <algorithm>
#include <utility>

#include "core/eval.hpp"
#include "sim/simulator.hpp"
#include "support/text.hpp"

namespace cepic {

namespace {

/// Register touched by an op, for the intra-bundle hazard scan.
struct RegRef {
  RegFile file = RegFile::None;
  std::uint32_t index = 0;
  bool operator==(const RegRef&) const = default;
};

void add_src_read(std::vector<RegRef>& reads, const DecodedSrc& src) {
  switch (src.kind) {
    case SrcKind::Gpr:
      if (src.reg != 0) reads.push_back({RegFile::Gpr, src.reg});
      break;
    case SrcKind::Pred:
      // preds_[0] is hardwired true and set_pred never writes it.
      if (src.reg != 0) reads.push_back({RegFile::Pred, src.reg});
      break;
    case SrcKind::Btr:
      reads.push_back({RegFile::Btr, src.reg});
      break;
    case SrcKind::Zero:
    case SrcKind::Lit:
      break;
  }
}

/// Everything `op` reads at execute time. The decode tier reads all of
/// these before any op of the bundle writes; direct micro-op execution
/// interleaves, so any op reading a register an earlier op writes must
/// push the whole bundle to the per-bundle fallback.
void reads_of(const DecodedOp& op, std::vector<RegRef>& reads) {
  reads.clear();
  if (op.pred != 0) reads.push_back({RegFile::Pred, op.pred});
  add_src_read(reads, op.src1);
  add_src_read(reads, op.src2);
  if (op.kind == ExecKind::StW || op.kind == ExecKind::StB) {
    // Store value: dest1-as-source.
    if (op.dest1 != 0) reads.push_back({RegFile::Gpr, op.dest1});
  }
}

/// Everything `op` may write. Guarded writes count: whether the guard
/// fires is unknown at compile time, so assume it does.
void writes_of(const DecodedOp& op, std::vector<RegRef>& writes) {
  writes.clear();
  switch (op.kind) {
    case ExecKind::Alu:
    case ExecKind::LdW:
    case ExecKind::LdWS:
    case ExecKind::LdB:
    case ExecKind::LdBU:
    case ExecKind::Brl:
      if (op.dest1 != 0) writes.push_back({RegFile::Gpr, op.dest1});
      break;
    case ExecKind::Cmpp:
      if (op.dest1 != 0) writes.push_back({RegFile::Pred, op.dest1});
      if (op.has_dest2 && op.dest2 != 0) {
        writes.push_back({RegFile::Pred, op.dest2});
      }
      break;
    case ExecKind::Pbr:
      writes.push_back({RegFile::Btr, op.dest1});
      break;
    default:
      break;
  }
}

bool src_is_fast(const DecodedSrc& src) {
  return src.kind == SrcKind::Zero || src.kind == SrcKind::Lit ||
         src.kind == SrcKind::Gpr;
}

/// Can this op be lowered to a direct micro-op (with memory probes),
/// or must the bundle fall back to step_decoded()?
bool op_is_direct(const DecodedOp& op) {
  if (op.latency > 255) return false;  // lat rides in a uint8_t
  switch (op.kind) {
    case ExecKind::Alu:
      // Custom-op semantics are user callbacks: they may throw, so the
      // no-throw-between-begin-and-end invariant would not hold.
      if (is_custom(op.op)) return false;
      return src_is_fast(op.src1) && src_is_fast(op.src2);
    case ExecKind::Cmpp:
    case ExecKind::Out:
    case ExecKind::LdW:
    case ExecKind::LdWS:
    case ExecKind::LdB:
    case ExecKind::LdBU:
    case ExecKind::StW:
    case ExecKind::StB:
      return src_is_fast(op.src1) && src_is_fast(op.src2);
    case ExecKind::Pbr:
      return true;  // uses the raw literal, no operand fetch
    case ExecKind::Bru:
    case ExecKind::Brr:
    case ExecKind::Brl:
      return op.src1.kind != SrcKind::Pred;  // Btr/Gpr/Lit/Zero targets
    case ExecKind::Brct:
    case ExecKind::Brcf:
      if (op.src1.kind == SrcKind::Pred) return false;
      return op.src2.kind == SrcKind::Pred || op.src2.kind == SrcKind::Zero ||
             op.src2.kind == SrcKind::Lit;
    case ExecKind::Halt:
      return true;
    case ExecKind::Unsupported:
      return false;  // must fault with the decode tier's interleaving
  }
  return false;
}

bool is_control(ExecKind kind) {
  switch (kind) {
    case ExecKind::Bru:
    case ExecKind::Brr:
    case ExecKind::Brl:
    case ExecKind::Brct:
    case ExecKind::Brcf:
    case ExecKind::Halt:
      return true;
    default:
      return false;
  }
}

/// Specialised dispatch code for an ALU op. Only exact at a 32-bit
/// datapath, where eval_alu's sign-extended int64 arithmetic collapses
/// to plain uint32 identities; other widths use kAluGen.
UopCode alu_code(Op op, unsigned width) {
  if (width != 32) return UopCode::kAluGen;
  switch (op) {
    case Op::ADD: return UopCode::kAluAdd;
    case Op::SUB: return UopCode::kAluSub;
    case Op::MUL: return UopCode::kAluMul;
    case Op::AND: return UopCode::kAluAnd;
    case Op::OR: return UopCode::kAluOr;
    case Op::XOR: return UopCode::kAluXor;
    case Op::SHL: return UopCode::kAluShl;
    case Op::SHRL: return UopCode::kAluShrl;
    case Op::MOV: return UopCode::kAluMov;
    default: return UopCode::kAluGen;  // DIV/REM/MIN/MAX/ABS/SHRA
  }
}

}  // namespace

ThreadedBlock EpicSimulator::compile_block(std::uint32_t entry_pc) {
  ThreadedBlock block;
  block.entry_pc = entry_pc;

  // Extended-GPR index space (gprs_ layout in simulator.hpp): literal
  // operands intern into the shared constant pool so exec_block fetches
  // every operand with one unconditional load, and absent destinations
  // redirect to the sink so write-back never branches.
  const std::uint32_t gpr_sink = program_.config.num_gprs;
  const std::uint32_t pred_sink = program_.config.num_preds;
  const std::uint32_t pool_base = gpr_sink + 1;
  auto gpr_of = [&](const DecodedSrc& src) -> std::uint32_t {
    if (src.kind == SrcKind::Gpr) return src.reg;
    const std::uint32_t value = src.kind == SrcKind::Lit ? src.value : 0;
    if (value == 0) return 0;  // r0 is pinned to 0: the free zero literal
    for (std::size_t i = 0; i < threaded_.pool.size(); ++i) {
      if (threaded_.pool[i] == value) {
        return pool_base + static_cast<std::uint32_t>(i);
      }
    }
    threaded_.pool.push_back(value);
    return pool_base + static_cast<std::uint32_t>(threaded_.pool.size() - 1);
  };

  // Bundles whose memory probes can bail: each needs a tail fallback
  // micro-op appended after kExit. {indices of the uops whose e is the
  // bail target (standalone probes or fused probing forms), bundle pc,
  // index of the uop following the bundle's end}.
  struct ProbedBundle {
    std::vector<std::uint32_t> probes;
    std::uint32_t pc = 0;
    std::uint32_t next = 0;
  };
  std::vector<ProbedBundle> probed;

  std::vector<RegRef> hazard_writes;
  std::vector<RegRef> refs;

  std::uint32_t pc = entry_pc;
  while (pc < bundle_count_ && block.len_bundles < options_.threaded_max_block) {
    const DecodedBundle& bundle = decoded_[pc];
    if (bundle.use_legacy) break;  // interpretive-only: never in a block

    // ---- classify: direct (+probes) or per-bundle fallback ----
    bool direct = true;
    hazard_writes.clear();
    for (const DecodedOp& op : bundle.ops) {
      if (!op_is_direct(op)) {
        direct = false;
        break;
      }
      reads_of(op, refs);
      for (const RegRef& r : refs) {
        if (std::find(hazard_writes.begin(), hazard_writes.end(), r) !=
            hazard_writes.end()) {
          // Intra-bundle RAW: the decode tier reads all operands before
          // any write of the same MultiOp; direct execution would not.
          direct = false;
          break;
        }
      }
      if (!direct) break;
      writes_of(op, refs);
      hazard_writes.insert(hazard_writes.end(), refs.begin(), refs.end());
    }

    if (!direct) {
      MicroOp fb;
      fb.code = UopCode::kFallback;
      fb.pc = pc;
      fb.e = static_cast<std::uint32_t>(block.uops.size()) + 1;
      block.uops.push_back(fb);
      ++block.len_bundles;
      ++pc;
      continue;
    }

    ProbedBundle pb;
    pb.pc = pc;

    // ---- can the probes fuse into the memory ops themselves? ----
    // A fused probe bails mid-bundle, after earlier ops of the bundle
    // have executed, so the replay through step_decoded() is exact only
    // when re-running that prefix is unobservable: no OUT (the stream
    // would double-emit), no guard (the kGuard prefix commits its
    // statistics immediately), and no op writing a register the bundle
    // reads — the replay would see the new value (this covers self
    // increments and write-after-read pairs; the begin uop's scoreboard
    // and §3.2 port-read scans are register reads too, but they draw
    // from the same read set). hazard_writes holds the whole bundle's
    // writes after the classification scan above.
    bool fuse_probes = true;
    for (const DecodedOp& op : bundle.ops) {
      if (op.kind == ExecKind::Out || op.pred != 0) {
        fuse_probes = false;
        break;
      }
      reads_of(op, refs);
      for (const RegRef& r : refs) {
        if (std::find(hazard_writes.begin(), hazard_writes.end(), r) !=
            hazard_writes.end()) {
          fuse_probes = false;
          break;
        }
      }
      if (!fuse_probes) break;
    }

    // ---- begin uop: scoreboard slices + §3.2 port verdict ----
    {
      MicroOp m;
      m.pc = pc;
      m.a = static_cast<std::uint32_t>(block.sb.size());
      block.sb.insert(block.sb.end(), bundle.sb_gpr.begin(),
                      bundle.sb_gpr.end());
      block.sb.insert(block.sb.end(), bundle.sb_pred.begin(),
                      bundle.sb_pred.end());
      block.sb.insert(block.sb.end(), bundle.sb_btr.begin(),
                      bundle.sb_btr.end());
      m.b = static_cast<std::uint32_t>(bundle.sb_gpr.size()) |
            static_cast<std::uint32_t>(bundle.sb_pred.size()) << 8 |
            static_cast<std::uint32_t>(bundle.sb_btr.size()) << 16;
      const unsigned demand =
          bundle.write_ports + static_cast<unsigned>(bundle.port_reads.size());
      if (fwd_ && demand > port_budget_) {
        // Forwarding can re-price reads as issue slips: dynamic fixed
        // point over the port-read list.
        m.code = UopCode::kBeginPorts;
        m.d = static_cast<std::uint32_t>(block.sb.size());
        block.sb.insert(block.sb.end(), bundle.port_reads.begin(),
                        bundle.port_reads.end());
        m.b |= static_cast<std::uint32_t>(bundle.port_reads.size()) << 24;
        m.aux = static_cast<std::uint8_t>(bundle.write_ports);
      } else {
        // Constant verdict: zero with forwarding (demand fits the
        // budget), a pre-divided stall without it.
        m.aux = static_cast<std::uint8_t>(
            fwd_ || demand == 0 ? 0
                                : (demand + port_budget_ - 1) / port_budget_ - 1);
        if (m.aux == 0 && bundle.sb_gpr.empty() && bundle.sb_pred.empty() &&
            bundle.sb_btr.empty()) {
          m.code = UopCode::kBeginFast;
        } else if (m.aux == 0 && bundle.sb_pred.empty() &&
                   bundle.sb_btr.empty() && bundle.sb_gpr.size() <= 2) {
          // The dominant shape — one or two GPR-only scoreboard
          // sources and no port stall: the register indices ride in
          // the uop itself (a/d; gpr_ready[0] is always 0, so padding
          // with r0 is free), no slice scan, issue = ready max.
          m.code = UopCode::kBegin2;
          m.a = bundle.sb_gpr.empty() ? 0 : bundle.sb_gpr[0];
          m.d = bundle.sb_gpr.size() > 1 ? bundle.sb_gpr[1] : m.a;
        } else {
          m.code = UopCode::kBegin;
        }
      }
      block.uops.push_back(m);
    }

    // ---- standalone memory probes, for bundles the fused forms
    // cannot prove exact (after the begin uop — its stall statistics
    // are deferred to the bundle-end uop, so a bail still replays the
    // bundle with no state changed; placing them here keeps every
    // fall-through end/begin pair adjacent and fusable). Probes read
    // only pre-bundle register values, which the intra-bundle hazard
    // scan above guarantees are what the decode tier would read.
    for (const DecodedOp& op : bundle.ops) {
      if (fuse_probes) break;  // the fused forms carry their own probe
      UopCode code;
      switch (op.kind) {
        case ExecKind::LdW: code = UopCode::kProbeWord; break;
        case ExecKind::LdB:
        case ExecKind::LdBU: code = UopCode::kProbeByte; break;
        case ExecKind::StW: code = UopCode::kProbeWord; break;
        case ExecKind::StB: code = UopCode::kProbeByte; break;
        default: continue;  // LdWS never faults: no probe
      }
      MicroOp m;
      m.code = code;
      m.pc = pc;
      m.a = gpr_of(op.src1);
      m.b = gpr_of(op.src2);
      if (op.pred != 0) {
        m.flags |= kFlagGuarded;
        m.pred = static_cast<std::uint16_t>(op.pred);
      }
      pb.probes.push_back(static_cast<std::uint32_t>(block.uops.size()));
      block.uops.push_back(m);
    }

    // ---- op uops, in slot order ----
    unsigned n_nops = bundle.nops_trailing;
    unsigned n_commit = 0;
    unsigned n_memr = 0;
    unsigned n_memw = 0;
    for (const DecodedOp& op : bundle.ops) {
      n_nops += op.nops_before;
      const bool guarded = op.pred != 0;
      if (!guarded) {
        ++n_commit;
        switch (op.kind) {
          case ExecKind::LdW:
          case ExecKind::LdWS:
          case ExecKind::LdB:
          case ExecKind::LdBU: ++n_memr; break;
          case ExecKind::StW:
          case ExecKind::StB: ++n_memw; break;
          default: break;
        }
      }

      if (guarded) {
        // Predicate prefix: the op handlers themselves never test
        // guards (most ops are unguarded), the prefix skips or commits
        // the next slot and carries the dynamic stat deltas a static
        // end-uop fold cannot know.
        MicroOp g;
        g.code = UopCode::kGuard;
        g.pc = pc;
        g.pred = static_cast<std::uint16_t>(op.pred);
        switch (op.kind) {
          case ExecKind::LdW:
          case ExecKind::LdWS:
          case ExecKind::LdB:
          case ExecKind::LdBU: g.a = 1; break;  // mem_reads on commit
          case ExecKind::StW:
          case ExecKind::StB: g.b = 1; break;  // mem_writes on commit
          default: break;
        }
        block.uops.push_back(g);
      }

      MicroOp m;
      m.pc = pc;
      m.lat = static_cast<std::uint8_t>(op.latency);
      m.op = op.op;
      // Branch targets live in the extended GPR space too (pool slot
      // for literal targets) unless they come from a branch-target
      // register: one flag picks the file, nothing else branches.
      auto target_of = [&](const DecodedSrc& src) {
        if (src.kind == SrcKind::Btr) return src.reg;
        m.flags |= kFlagTargetGpr;
        return gpr_of(src);
      };
      switch (op.kind) {
        case ExecKind::Alu:
          m.code = alu_code(op.op, width_);
          m.a = gpr_of(op.src1);
          m.b = gpr_of(op.src2);
          m.d = op.dest1 != 0 ? op.dest1 : gpr_sink;
          break;
        case ExecKind::Cmpp:
          m.code = UopCode::kCmpp;
          m.a = gpr_of(op.src1);
          m.b = gpr_of(op.src2);
          // Both predicate writes are unconditional in exec_block; an
          // absent (or p0) destination lands in the sink.
          m.d = op.dest1 != 0 ? op.dest1 : pred_sink;
          m.e = op.has_dest2 && op.dest2 != 0 ? op.dest2 : pred_sink;
          break;
        case ExecKind::Out:
          m.code = UopCode::kOut;
          m.a = gpr_of(op.src1);
          break;
        case ExecKind::LdW:
        case ExecKind::LdWS:
        case ExecKind::LdB:
        case ExecKind::LdBU:
          m.code = op.kind == ExecKind::LdW    ? UopCode::kLdW
                   : op.kind == ExecKind::LdWS ? UopCode::kLdWS
                   : op.kind == ExecKind::LdB  ? UopCode::kLdB
                                               : UopCode::kLdBU;
          m.a = gpr_of(op.src1);
          m.b = gpr_of(op.src2);
          m.d = op.dest1 != 0 ? op.dest1 : gpr_sink;
          break;
        case ExecKind::StW:
        case ExecKind::StB:
          m.code = op.kind == ExecKind::StW ? UopCode::kStW : UopCode::kStB;
          m.a = gpr_of(op.src1);
          m.b = gpr_of(op.src2);
          m.d = op.dest1;  // store value register (dest1-as-source; r0
                           // reads as 0, so no redirect)
          break;
        case ExecKind::Pbr:
          m.code = UopCode::kPbr;
          m.a = op.src1.value;  // raw literal, not width-masked
          m.d = op.dest1;
          break;
        case ExecKind::Bru:
        case ExecKind::Brr:
        case ExecKind::Brl:
          m.code = UopCode::kBr;
          m.a = target_of(op.src1);
          if (op.kind == ExecKind::Brl) {
            m.flags |= kFlagLink;
            m.d = op.dest1 != 0 ? op.dest1 : gpr_sink;
            m.b = mask_to_width(pc + 1, width_);  // link value, pre-masked
          }
          break;
        case ExecKind::Brct:
        case ExecKind::Brcf:
          m.code = op.kind == ExecKind::Brct ? UopCode::kBrct : UopCode::kBrcf;
          m.a = target_of(op.src1);
          // Condition: p0 is hardwired true, so fold it (and Zero/Lit)
          // into a literal condition.
          if (op.src2.kind == SrcKind::Pred && op.src2.reg != 0) {
            m.b = op.src2.reg;
          } else {
            m.flags |= kFlagS2Lit;
            m.b = op.src2.kind == SrcKind::Pred ? 1 : op.src2.value;
          }
          break;
        case ExecKind::Halt:
          m.code = UopCode::kHalt;
          break;
        case ExecKind::Unsupported:
          break;  // unreachable: op_is_direct rejected it
      }
      if (fuse_probes) {
        // Probing forms: the bail target (e) is patched to the
        // bundle's tail fallback below, exactly like a standalone
        // probe. kLdWS stays plain — it never faults.
        UopCode fused = m.code;
        switch (m.code) {
          case UopCode::kLdW: fused = UopCode::kLdWP; break;
          case UopCode::kLdB: fused = UopCode::kLdBP; break;
          case UopCode::kLdBU: fused = UopCode::kLdBUP; break;
          case UopCode::kStW: fused = UopCode::kStWP; break;
          case UopCode::kStB: fused = UopCode::kStBP; break;
          default: break;
        }
        if (fused != m.code) {
          m.code = fused;
          pb.probes.push_back(static_cast<std::uint32_t>(block.uops.size()));
        }
      }
      block.uops.push_back(m);
    }

    // ---- end uop: folded statistics + epilogue ----
    {
      MicroOp m;
      m.pc = pc;
      bool control = false;
      for (const DecodedOp& op : bundle.ops) control |= is_control(op.kind);
      m.code = control ? UopCode::kEnd : UopCode::kEndFall;
      // d/e: the four per-bundle counter deltas pre-expanded to 16-bit
      // lanes of one 64-bit word, so exec_block folds them with a
      // single register add (flushed to SimStats at block exits).
      m.d = (n_nops & 0xffu) |
            static_cast<std::uint32_t>(bundle.ops.size() & 0xff) << 16;
      m.e = (n_commit & 0xffu) | (n_memr & 0xffu) << 16;
      m.b = (n_memw & 0xffu) |
            static_cast<std::uint32_t>(std::min<std::size_t>(
                bundle.ops.size(), SimStats::kMaxBundleWidth))
                << 8;
      if (options_.collect_trace) m.flags |= kFlagTrace;
      if (program_.config.unified_memory_contention) {
        m.flags |= kFlagContention;
      }
      block.uops.push_back(m);
    }

    pb.next = static_cast<std::uint32_t>(block.uops.size());
    if (!pb.probes.empty()) probed.push_back(std::move(pb));
    ++block.len_bundles;
    ++pc;

    // An unguarded unconditional control op never falls through: the
    // block cannot extend past it.
    bool always_exits = false;
    for (const DecodedOp& op : bundle.ops) {
      if (op.pred != 0) continue;
      if (op.kind == ExecKind::Bru || op.kind == ExecKind::Brr ||
          op.kind == ExecKind::Brl || op.kind == ExecKind::Halt) {
        always_exits = true;
      }
    }
    if (always_exits) break;
  }

  block.uops.push_back(MicroOp{});  // kExit

  // Tail fallbacks for probe bails: replay the bundle via
  // step_decoded() (reproducing the fault, or the guarded skip), then
  // rejoin the block at the next bundle if execution fell through.
  for (const ProbedBundle& pb : probed) {
    const std::uint32_t tail = static_cast<std::uint32_t>(block.uops.size());
    MicroOp fb;
    fb.code = UopCode::kFallback;
    fb.pc = pb.pc;
    fb.e = pb.next;
    block.uops.push_back(fb);
    for (const std::uint32_t probe : pb.probes) block.uops[probe].e = tail;
  }

  // Fuse adjacent fall-through-end / begin pairs into one dispatch
  // (roughly one indirect branch per bundle saved on straight-line
  // code). Codes are rewritten in place and both slots stay, so probe
  // bail targets and fallback rejoin indices remain valid: a rejoin
  // lands on the second slot and executes the original begin there,
  // while the fused handler consumes both slots itself.
  for (std::size_t i = 0; i + 1 < block.uops.size(); ++i) {
    if (block.uops[i].code != UopCode::kEndFall) continue;
    if (block.uops[i + 1].code == UopCode::kBegin) {
      block.uops[i].code = UopCode::kEndFallBegin;
    } else if (block.uops[i + 1].code == UopCode::kBegin2) {
      block.uops[i].code = UopCode::kEndFallBegin2;
    } else if (block.uops[i + 1].code == UopCode::kBeginFast) {
      block.uops[i].code = UopCode::kEndFallBeginFast;
    } else if (block.uops[i + 1].code == UopCode::kBeginPorts) {
      block.uops[i].code = UopCode::kEndFallBeginPorts;
    }
  }

  block.max_advance =
      (std::uint64_t{block.len_bundles} + 1) * threaded_.advance_bound;
  return block;
}

// Dispatch strategy: classic threaded code. With GNU extensions the
// dispatch is a computed goto replicated at the end of every handler —
// no bounds check, and each handler's indirect branch predicts
// independently (a shared switch jump is a BTB bottleneck at this
// frequency). Elsewhere the same handler bodies compile as a portable
// for/switch loop.
#if defined(__GNUC__) || defined(__clang__)
#define CEPIC_THREADED_GOTO 1
#else
#define CEPIC_THREADED_GOTO 0
#endif

#if CEPIC_THREADED_GOTO
#define CEPIC_CASE(x) L_##x
#define CEPIC_NEXT() goto* kDispatch[static_cast<unsigned>((++u)->code)]
#define CEPIC_DISPATCH() goto* kDispatch[static_cast<unsigned>(u->code)]
#else
#define CEPIC_CASE(x) case UopCode::x
#define CEPIC_NEXT() \
  {                  \
    ++u;             \
    continue;        \
  }
#define CEPIC_DISPATCH() continue
#endif

void EpicSimulator::exec_block(const ThreadedBlock& block) {
  // Not const: when one block exits into the entry of another compiled
  // block (the loop back-edge case), execution transitions to it right
  // here (L_next_block below) without returning to run_threaded — all
  // the hoisted state stays in registers across the whole hot region.
  const MicroOp* uops = block.uops.data();
  const std::uint32_t* sbt = block.sb.data();
  const DecodedBundle* const db = decoded_.data();
  const std::int32_t* const block_at = threaded_.block_at.data();
  const ThreadedBlock* const blocks_p = threaded_.blocks.data();
  const std::uint64_t max_cycles = options_.max_cycles;
  const std::uint32_t bcount = bundle_count_;
  const unsigned bubbles_c = program_.config.pipeline_stages - 1;

  // Hoisted raw pointers: locals whose address never escapes, so the
  // compiler keeps them live in registers across the member-function
  // calls below (vector members would have to be reloaded).
  std::uint32_t* const gprs = gprs_.data();
  std::uint8_t* const preds = preds_.data();
  std::uint32_t* const btrs = btrs_.data();
  std::uint64_t* const gpr_ready = gpr_ready_.data();
  std::uint64_t* const pred_ready = pred_ready_.data();
  std::uint64_t* const btr_ready = btr_ready_.data();
  std::uint8_t* const mem = mem_.exec_data();
  const std::size_t mem_size = mem_.size();
  const std::uint32_t gpr_mask = gpr_mask_;

  const MicroOp* u = uops;

  // The architectural clock and next-pc live in registers; the members
  // (cycle_, pc_, stats_.cycles) are flushed only where they become
  // observable: block exits, per-bundle fallbacks, trace records and
  // fault throws. Invariant at every flush point: stats_.cycles ==
  // cycle_ == clk at a bundle boundary, exactly as after finish_step.
  std::uint64_t clk = cycle_;
  std::uint32_t pcl = pc_;
  std::uint64_t issue = clk;
  bool branch_taken = false;
  bool halt_now = false;
  bool any_mem = false;
  std::uint32_t branch_target = 0;
  PendingStore pend[SimStats::kMaxBundleWidth];
  unsigned pend_n = 0;

  // Per-bundle counter deltas accumulate in 16-bit lanes of one
  // register (nops | executed<<16 | committed<<32 | mem_reads<<48,
  // pre-expanded at lowering time) plus bundle/stall counters, flushed
  // to SimStats only where stats become observable. A lane cannot
  // overflow: forward-only movement bounds one pass at
  // threaded_max_block (<= 64) end micro-ops, each delta <= 255, and
  // block-to-block transitions flush.
  std::uint64_t acc = 0;
  // Second accumulator, same lane trick: stall_scoreboard |
  // stall_reg_ports<<16 | mem_writes<<32 | bundles_issued<<48. Per-end
  // deltas are <= 254 / 8 / 8 / 1, so the overflow bound is the same
  // one `acc` lives under.
  std::uint64_t acc2 = 0;
  // Current bundle's stall deltas (scoreboard | reg_ports<<16), packed
  // by the begin shapes and folded into acc2 by the end micro-op:
  // deferring the commit lets the memory probes run *after* the begin
  // (keeping end/begin pairs adjacent for fusion) while a probe bail
  // still replays the bundle with its statistics untouched.
  std::uint64_t bundle_sr = 0;

// Operand fetch / guard prologue shared by the op micro-ops. Operand
// fields are extended-GPR indices (literals were interned into the
// constant-pool tail of gprs_ at lowering time), so a fetch is one
// unconditional load. The guard bookkeeping mirrors the decode tier: a
// false guard nullifies, a true guard on a guarded op commits
// (unguarded commits are folded onto the end micro-op instead).
#define CEPIC_SRC_A() gprs[m.a]
#define CEPIC_SRC_B() gprs[m.b]
// Unconditional: absent destinations (and r0) were redirected to the
// write sink at lowering time.
#define CEPIC_WRITE_GPR(value)    \
  gprs[m.d] = (value);            \
  gpr_ready[m.d] = issue + m.lat
// Folded per-bundle statistics + pending-store flush + clock advance:
// the head of the bundle epilogue, shared by kEndFall and kEnd (legal:
// nothing between the begin uop and here can throw). Mirrors
// finish_step's exact order; loads and stores went through the probes,
// so raw big-endian access cannot fault.
#define CEPIC_END_COMMON()                                           \
  const std::uint32_t sb2 = m.b;                                     \
  acc += (static_cast<std::uint64_t>(m.e) << 32) | m.d;              \
  /* stall stats commit with the bundle (a probe bail after the */   \
  /* begin drops them), mem_writes and the bundle count ride the */  \
  /* upper lanes */                                                  \
  acc2 += bundle_sr + (static_cast<std::uint64_t>(sb2 & 0xff) << 32) + \
          (std::uint64_t{1} << 48);                                  \
  ++stats_.bundle_width_hist[sb2 >> 8];                              \
  for (unsigned i = 0; i < pend_n; ++i) {                            \
    const std::uint32_t at = pend[i].addr;                           \
    const std::uint32_t v = pend[i].value;                           \
    mem_.mark_written(at, pend[i].byte ? 1 : 4);                     \
    if (pend[i].byte) {                                              \
      mem[at] = static_cast<std::uint8_t>(v);                        \
    } else {                                                         \
      mem[at] = static_cast<std::uint8_t>(v >> 24);                  \
      mem[at + 1] = static_cast<std::uint8_t>(v >> 16);              \
      mem[at + 2] = static_cast<std::uint8_t>(v >> 8);               \
      mem[at + 3] = static_cast<std::uint8_t>(v);                    \
    }                                                                \
  }                                                                  \
  clk = issue + 1;                                                   \
  if ((m.flags & kFlagContention) && any_mem) {                      \
    ++clk;                                                           \
    ++stats_.stall_mem_contention;                                   \
  }                                                                  \
  if (m.flags & kFlagTrace) {                                        \
    pc_ = m.pc; /* trace_record tags entries with pc_ */             \
    cycle_ = clk;                                                    \
    trace_record(issue, &db[m.pc].trace_text);                       \
  }                                                                  \
  any_mem = false; /* consume-and-reset: cheaper than resetting */   \
  pend_n = 0;      /* at every begin (see kFallback / kEnd)     */
// Apply the accumulated counter deltas. Required before every point
// where SimStats escapes the block: returns, throws, per-bundle
// fallbacks (step_decoded updates SimStats itself and may throw), and
// block-to-block transitions (keeps the lane-overflow bound).
#define CEPIC_FLUSH_STATS()                        \
  stats_.nops += acc & 0xffff;                     \
  stats_.ops_executed += (acc >> 16) & 0xffff;     \
  stats_.ops_committed += (acc >> 32) & 0xffff;    \
  stats_.mem_reads += acc >> 48;                   \
  stats_.stall_scoreboard += acc2 & 0xffff;        \
  stats_.stall_reg_ports += (acc2 >> 16) & 0xffff; \
  stats_.mem_writes += (acc2 >> 32) & 0xffff;      \
  stats_.bundles_issued += acc2 >> 48;             \
  acc = 0;                                         \
  acc2 = 0;
// Scoreboard scan of the begin micro-op: issue slips to the latest
// ready time over the bundle's source registers (leaves `is` in
// scope; the caller packs the stall delta into bundle_sr). Shared by
// kBegin/kBeginPorts and the fused end+begin codes. The delta parks in
// bundle_sr (not acc2): it becomes observable only when the bundle's
// end micro-op commits, so a memory probe bailing to the per-bundle
// fallback leaves no trace of it.
#define CEPIC_BEGIN_SB()                                     \
  std::uint64_t is = clk;                                    \
  {                                                          \
    const std::uint32_t* p = sbt + m.a;                      \
    const std::uint32_t counts = m.b;                        \
    for (unsigned i = 0; i < (counts & 0xff); ++i) {         \
      is = std::max(is, gpr_ready[p[i]]);                    \
    }                                                        \
    p += counts & 0xff;                                      \
    for (unsigned i = 0; i < ((counts >> 8) & 0xff); ++i) {  \
      is = std::max(is, pred_ready[p[i]]);                   \
    }                                                        \
    p += (counts >> 8) & 0xff;                               \
    for (unsigned i = 0; i < ((counts >> 16) & 0xff); ++i) { \
      is = std::max(is, btr_ready[p[i]]);                    \
    }                                                        \
  }
// §3.2 fixed point, exactly as step_decoded_impl with forwarding on:
// delaying issue can turn a forwarded read into a port read. Follows
// CEPIC_BEGIN_SB (consumes `is`); shared by kBeginPorts and its fused
// form.
#define CEPIC_BEGIN_PORTS_STALL()                                        \
  const std::uint32_t* reads = sbt + m.d;                                \
  const unsigned n_reads = m.b >> 24;                                    \
  std::uint64_t port_stall = 0;                                          \
  for (int iter = 0; iter < 4; ++iter) {                                 \
    const std::uint64_t at = is + port_stall;                            \
    unsigned ports = m.aux; /* static write-port demand */               \
    for (unsigned i = 0; i < n_reads; ++i) {                             \
      if (gpr_ready[reads[i]] != at) ++ports;                            \
    }                                                                    \
    const std::uint64_t needed =                                         \
        ports == 0 ? 0 : (ports + port_budget_ - 1) / port_budget_ - 1;  \
    if (needed == port_stall) break;                                     \
    port_stall = needed;                                                 \
  }                                                                      \
  bundle_sr = (is - clk) | (port_stall << 16);                           \
  issue = is + port_stall

#if CEPIC_THREADED_GOTO
  // Indexed by UopCode; order must match the enum (the count is pinned
  // by the static_assert below).
  static const void* const kDispatch[] = {
      &&L_kBeginFast, &&L_kBegin,  &&L_kBegin2,        &&L_kBeginPorts,
      &&L_kProbeWord, &&L_kProbeByte, &&L_kGuard,      &&L_kAluGen,
      &&L_kAluAdd,
      &&L_kAluSub,    &&L_kAluMul, &&L_kAluAnd,        &&L_kAluOr,
      &&L_kAluXor,    &&L_kAluShl, &&L_kAluShrl,       &&L_kAluMov,
      &&L_kCmpp,      &&L_kOut,    &&L_kLdW,           &&L_kLdWS,
      &&L_kLdB,       &&L_kLdBU,   &&L_kStW,           &&L_kStB,
      &&L_kLdWP,      &&L_kLdBP,   &&L_kLdBUP,         &&L_kStWP,
      &&L_kStBP,
      &&L_kPbr,       &&L_kBr,     &&L_kBrct,          &&L_kBrcf,
      &&L_kHalt,      &&L_kEndFall, &&L_kEnd,          &&L_kEndFallBegin,
      &&L_kEndFallBegin2,          &&L_kEndFallBeginFast,
      &&L_kEndFallBeginPorts,
      &&L_kFallback,  &&L_kExit,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) == kNumUopCodes);
#endif
  goto L_dispatch;

  // Block exit with a known next pc: when the next bundle heads a
  // compiled block and the cycle-limit slack holds, transition straight
  // into it — the common loop back-edge never pays the function-call
  // round trip through run_threaded (prologue, re-hoisting a dozen
  // pointers) per iteration.
L_next_block:
  if (pcl < bcount) {
    const std::int32_t bi = block_at[pcl];
    if (bi >= 0) {
      const ThreadedBlock& nb = blocks_p[bi];
      if (clk < max_cycles && max_cycles - clk > nb.max_advance) {
        ++threaded_.block_entries;
        // SimStats are not observable across an in-function
        // transition, so the flush is lazy: only often enough that the
        // 16-bit lanes of `acc` cannot overflow (<= 255 per end
        // micro-op, and one block pass adds at most threaded_max_block
        // <= 64 ends, so lanes stay <= 255 * 255 < 2^16).
        if (acc2 >= (std::uint64_t{192} << 48)) {  // >= 192 bundles
          CEPIC_FLUSH_STATS();
        }
        uops = nb.uops.data();
        sbt = nb.sb.data();
        u = uops;
        goto L_dispatch;
      }
    }
  }
  CEPIC_FLUSH_STATS();
  pc_ = pcl;
  cycle_ = clk;
  stats_.cycles = clk;
  return;

L_dispatch:
#if CEPIC_THREADED_GOTO
  CEPIC_DISPATCH();
#else
  for (;;) {
    switch (u->code) {
#endif

      CEPIC_CASE(kBeginFast) : {
        issue = clk;
        bundle_sr = 0;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kBegin) : {
        const MicroOp& m = *u;
        CEPIC_BEGIN_SB();
        bundle_sr = (is - clk) | (static_cast<std::uint64_t>(m.aux) << 16);
        issue = is + m.aux;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kBegin2) : {
        const MicroOp& m = *u;
        const std::uint64_t is =
            std::max(clk, std::max(gpr_ready[m.a], gpr_ready[m.d]));
        bundle_sr = is - clk;
        issue = is;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kBeginPorts) : {
        const MicroOp& m = *u;
        CEPIC_BEGIN_SB();
        CEPIC_BEGIN_PORTS_STALL();
        CEPIC_NEXT();
      }

      CEPIC_CASE(kProbeWord) : {
        const MicroOp& m = *u;
        if ((m.flags & kFlagGuarded) && preds[m.pred] == 0) {
          CEPIC_NEXT();  // op will be nullified: no access, no probe
        }
        const std::uint32_t addr = CEPIC_SRC_A() + CEPIC_SRC_B();
        if (addr < kDataBase || (addr & 3u) != 0 ||
            static_cast<std::size_t>(addr) + 4 > mem_size) {
          u = uops + m.e;  // would fault: replay via the tail fallback
          CEPIC_DISPATCH();
        }
        CEPIC_NEXT();
      }
      CEPIC_CASE(kProbeByte) : {
        const MicroOp& m = *u;
        if ((m.flags & kFlagGuarded) && preds[m.pred] == 0) {
          CEPIC_NEXT();
        }
        const std::uint32_t addr = CEPIC_SRC_A() + CEPIC_SRC_B();
        if (addr < kDataBase ||
            static_cast<std::size_t>(addr) + 1 > mem_size) {
          u = uops + m.e;
          CEPIC_DISPATCH();
        }
        CEPIC_NEXT();
      }

      CEPIC_CASE(kGuard) : {
        const MicroOp& m = *u;
        if (preds[m.pred] == 0) {
          ++stats_.ops_nullified;
          u += 2;  // skip the guarded op (always exactly one slot)
          CEPIC_DISPATCH();
        }
        ++stats_.ops_committed;
        stats_.mem_reads += m.a;  // dynamic mem deltas the end uop's
        stats_.mem_writes += m.b; /* static fold cannot account for */
        CEPIC_NEXT();
      }

      CEPIC_CASE(kAluGen) : {
        const MicroOp& m = *u;
        const std::uint32_t r =
            eval_alu(m.op, CEPIC_SRC_A(), CEPIC_SRC_B(), width_, &custom_);
        CEPIC_WRITE_GPR(r);
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluAdd) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A() + CEPIC_SRC_B());
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluSub) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A() - CEPIC_SRC_B());
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluMul) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A() * CEPIC_SRC_B());
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluAnd) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A() & CEPIC_SRC_B());
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluOr) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A() | CEPIC_SRC_B());
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluXor) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A() ^ CEPIC_SRC_B());
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluShl) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A() << (CEPIC_SRC_B() & 31u));
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluShrl) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A() >> (CEPIC_SRC_B() & 31u));
        CEPIC_NEXT();
      }
      CEPIC_CASE(kAluMov) : {
        const MicroOp& m = *u;
        CEPIC_WRITE_GPR(CEPIC_SRC_A());
        CEPIC_NEXT();
      }

      CEPIC_CASE(kCmpp) : {
        const MicroOp& m = *u;
        const bool c = eval_cmpp(m.op, CEPIC_SRC_A(), CEPIC_SRC_B(), width_);
        const std::uint64_t ready = issue + m.lat;
        // Unconditional: absent destinations (and p0) were redirected
        // to the predicate sink at lowering time.
        preds[m.d] = c ? 1 : 0;
        pred_ready[m.d] = ready;
        preds[m.e] = c ? 0 : 1;
        pred_ready[m.e] = ready;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kOut) : {
        const MicroOp& m = *u;
        output_.push_back(CEPIC_SRC_A());
        CEPIC_NEXT();
      }

      CEPIC_CASE(kLdW) : {
        const MicroOp& m = *u;
        any_mem = true;
        const std::uint32_t at = CEPIC_SRC_A() + CEPIC_SRC_B();
        const std::uint32_t w = static_cast<std::uint32_t>(mem[at]) << 24 |
                                static_cast<std::uint32_t>(mem[at + 1]) << 16 |
                                static_cast<std::uint32_t>(mem[at + 2]) << 8 |
                                static_cast<std::uint32_t>(mem[at + 3]);
        CEPIC_WRITE_GPR(w & gpr_mask);
        CEPIC_NEXT();
      }
      CEPIC_CASE(kLdWS) : {
        const MicroOp& m = *u;
        any_mem = true;
        // Non-trapping load: no probe, so the range check lives here
        // (out-of-range reads yield 0, as read_word_speculative).
        const std::uint32_t at = CEPIC_SRC_A() + CEPIC_SRC_B();
        std::uint32_t w = 0;
        if (at >= kDataBase && (at & 3u) == 0 &&
            static_cast<std::size_t>(at) + 4 <= mem_size) {
          w = static_cast<std::uint32_t>(mem[at]) << 24 |
              static_cast<std::uint32_t>(mem[at + 1]) << 16 |
              static_cast<std::uint32_t>(mem[at + 2]) << 8 |
              static_cast<std::uint32_t>(mem[at + 3]);
        }
        CEPIC_WRITE_GPR(w & gpr_mask);
        CEPIC_NEXT();
      }
      CEPIC_CASE(kLdB) : {
        const MicroOp& m = *u;
        any_mem = true;
        const std::uint8_t byte = mem[CEPIC_SRC_A() + CEPIC_SRC_B()];
        CEPIC_WRITE_GPR(static_cast<std::uint32_t>(static_cast<std::int32_t>(
                            static_cast<std::int8_t>(byte))) &
                        gpr_mask);
        CEPIC_NEXT();
      }
      CEPIC_CASE(kLdBU) : {
        const MicroOp& m = *u;
        any_mem = true;
        CEPIC_WRITE_GPR(
            static_cast<std::uint32_t>(mem[CEPIC_SRC_A() + CEPIC_SRC_B()]) &
            gpr_mask);
        CEPIC_NEXT();
      }

      CEPIC_CASE(kStW) : {
        const MicroOp& m = *u;
        any_mem = true;
        // Deferred to the bundle epilogue: a later load in the same
        // MultiOp must read pre-store memory. The value is captured
        // now, as the decode tier does at the op's slot.
        pend[pend_n].byte = false;
        pend[pend_n].addr = CEPIC_SRC_A() + CEPIC_SRC_B();
        pend[pend_n].value = gprs[m.d];
        ++pend_n;
        CEPIC_NEXT();
      }
      CEPIC_CASE(kStB) : {
        const MicroOp& m = *u;
        any_mem = true;
        pend[pend_n].byte = true;
        pend[pend_n].addr = CEPIC_SRC_A() + CEPIC_SRC_B();
        pend[pend_n].value = gprs[m.d];
        ++pend_n;
        CEPIC_NEXT();
      }

      // Probing memory forms: the probe rides in the op itself (see
      // threaded.hpp for the eligibility rule that makes a mid-bundle
      // bail exact). The check precedes every state change of THIS op;
      // earlier ops' effects are replay-idempotent by construction.
      CEPIC_CASE(kLdWP) : {
        const MicroOp& m = *u;
        const std::uint32_t at = CEPIC_SRC_A() + CEPIC_SRC_B();
        if (at < kDataBase || (at & 3u) != 0 ||
            static_cast<std::size_t>(at) + 4 > mem_size) {
          u = uops + m.e;  // would fault: replay via the tail fallback
          CEPIC_DISPATCH();
        }
        any_mem = true;
        const std::uint32_t w = static_cast<std::uint32_t>(mem[at]) << 24 |
                                static_cast<std::uint32_t>(mem[at + 1]) << 16 |
                                static_cast<std::uint32_t>(mem[at + 2]) << 8 |
                                static_cast<std::uint32_t>(mem[at + 3]);
        CEPIC_WRITE_GPR(w & gpr_mask);
        CEPIC_NEXT();
      }
      CEPIC_CASE(kLdBP) : {
        const MicroOp& m = *u;
        const std::uint32_t at = CEPIC_SRC_A() + CEPIC_SRC_B();
        if (at < kDataBase || static_cast<std::size_t>(at) + 1 > mem_size) {
          u = uops + m.e;
          CEPIC_DISPATCH();
        }
        any_mem = true;
        CEPIC_WRITE_GPR(static_cast<std::uint32_t>(static_cast<std::int32_t>(
                            static_cast<std::int8_t>(mem[at]))) &
                        gpr_mask);
        CEPIC_NEXT();
      }
      CEPIC_CASE(kLdBUP) : {
        const MicroOp& m = *u;
        const std::uint32_t at = CEPIC_SRC_A() + CEPIC_SRC_B();
        if (at < kDataBase || static_cast<std::size_t>(at) + 1 > mem_size) {
          u = uops + m.e;
          CEPIC_DISPATCH();
        }
        any_mem = true;
        CEPIC_WRITE_GPR(static_cast<std::uint32_t>(mem[at]) & gpr_mask);
        CEPIC_NEXT();
      }
      CEPIC_CASE(kStWP) : {
        const MicroOp& m = *u;
        const std::uint32_t at = CEPIC_SRC_A() + CEPIC_SRC_B();
        if (at < kDataBase || (at & 3u) != 0 ||
            static_cast<std::size_t>(at) + 4 > mem_size) {
          u = uops + m.e;
          CEPIC_DISPATCH();
        }
        any_mem = true;
        pend[pend_n].byte = false;
        pend[pend_n].addr = at;
        pend[pend_n].value = gprs[m.d];
        ++pend_n;
        CEPIC_NEXT();
      }
      CEPIC_CASE(kStBP) : {
        const MicroOp& m = *u;
        const std::uint32_t at = CEPIC_SRC_A() + CEPIC_SRC_B();
        if (at < kDataBase || static_cast<std::size_t>(at) + 1 > mem_size) {
          u = uops + m.e;
          CEPIC_DISPATCH();
        }
        any_mem = true;
        pend[pend_n].byte = true;
        pend[pend_n].addr = at;
        pend[pend_n].value = gprs[m.d];
        ++pend_n;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kPbr) : {
        const MicroOp& m = *u;
        btrs[m.d] = m.a;  // raw literal; BTR writes are not masked
        btr_ready[m.d] = issue + m.lat;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kBr) : {
        const MicroOp& m = *u;
        if (m.flags & kFlagLink) {
          CEPIC_WRITE_GPR(m.b);  // pre-masked return bundle
        }
        if (!branch_taken) {
          branch_taken = true;
          branch_target =
              (m.flags & kFlagTargetGpr) ? gprs[m.a] : btrs[m.a];
        }
        CEPIC_NEXT();
      }

      CEPIC_CASE(kBrct) : {
        const MicroOp& m = *u;
        const bool cond =
            (m.flags & kFlagS2Lit) ? m.b != 0 : preds[m.b] != 0;
        if (cond) {
          if (!branch_taken) {
            branch_taken = true;
            branch_target =
                (m.flags & kFlagTargetGpr) ? gprs[m.a] : btrs[m.a];
          }
        } else {
          ++stats_.branches_not_taken;
        }
        CEPIC_NEXT();
      }
      CEPIC_CASE(kBrcf) : {
        const MicroOp& m = *u;
        const bool cond =
            (m.flags & kFlagS2Lit) ? m.b != 0 : preds[m.b] != 0;
        if (!cond) {
          if (!branch_taken) {
            branch_taken = true;
            branch_target =
                (m.flags & kFlagTargetGpr) ? gprs[m.a] : btrs[m.a];
          }
        } else {
          ++stats_.branches_not_taken;
        }
        CEPIC_NEXT();
      }

      CEPIC_CASE(kHalt) : {
        halt_now = true;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kEndFall) : {
        const MicroOp& m = *u;
        CEPIC_END_COMMON();
        pcl = m.pc + 1;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kEnd) : {
        const MicroOp& m = *u;
        // finish_step leaves stats_.cycles at the previous bundle's
        // value on a fault throw; capture it before the clock advances.
        const std::uint64_t prev_clk = clk;
        CEPIC_END_COMMON();
        if (halt_now) {
          halted_ = true;
          pc_ = m.pc;  // halt does not advance pc
          cycle_ = clk;
          stats_.cycles = clk;
          CEPIC_FLUSH_STATS();
          return;
        }
        if (branch_taken) {
          ++stats_.branches_taken;
          stats_.branch_bubbles += bubbles_c;
          clk += bubbles_c;
          if (branch_target >= bundle_count_) {
            // Before stats_.cycles and pc_ advance, matching
            // finish_step (cycle_ already includes the bubbles).
            pc_ = m.pc;
            cycle_ = clk;
            stats_.cycles = prev_clk;
            CEPIC_FLUSH_STATS();
            throw SimError(cat("branch to bundle ", branch_target,
                               " past end of program"));
          }
          pcl = branch_target;
          branch_taken = false;  // consumed; false at every bundle begin
          if (branch_target == m.pc + 1) {
            CEPIC_NEXT();  // branch to the fall-through: stay in block
          }
          goto L_next_block;  // taken branch: maybe straight into a block
        }
        pcl = m.pc + 1;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kEndFallBegin) : {
        {
          const MicroOp& m = *u;
          CEPIC_END_COMMON();
          pcl = m.pc + 1;
        }
        ++u;  // the begin micro-op rides in the next slot
        {
          const MicroOp& m = *u;
          CEPIC_BEGIN_SB();
          bundle_sr = (is - clk) | (static_cast<std::uint64_t>(m.aux) << 16);
          issue = is + m.aux;
        }
        CEPIC_NEXT();
      }

      CEPIC_CASE(kEndFallBegin2) : {
        {
          const MicroOp& m = *u;
          CEPIC_END_COMMON();
          pcl = m.pc + 1;
        }
        ++u;  // the begin micro-op rides in the next slot
        {
          const MicroOp& m = *u;
          const std::uint64_t is =
              std::max(clk, std::max(gpr_ready[m.a], gpr_ready[m.d]));
          bundle_sr = is - clk;
          issue = is;
        }
        CEPIC_NEXT();
      }

      CEPIC_CASE(kEndFallBeginFast) : {
        const MicroOp& m = *u;
        CEPIC_END_COMMON();
        pcl = m.pc + 1;
        ++u;  // skip the (empty) begin slot
        issue = clk;
        bundle_sr = 0;
        CEPIC_NEXT();
      }

      CEPIC_CASE(kEndFallBeginPorts) : {
        {
          const MicroOp& m = *u;
          CEPIC_END_COMMON();
          pcl = m.pc + 1;
        }
        ++u;  // the ports-begin micro-op rides in the next slot
        {
          const MicroOp& m = *u;
          CEPIC_BEGIN_SB();
          CEPIC_BEGIN_PORTS_STALL();
        }
        CEPIC_NEXT();
      }

      CEPIC_CASE(kFallback) : {
        const MicroOp& m = *u;
        ++threaded_.fallback_bundles;
        // A probe bail may arrive mid-bundle: drop the partial bundle's
        // latched state to restore the every-bundle-begins-clean
        // invariant (step_decoded replays the bundle from scratch).
        branch_taken = false;
        halt_now = false;
        any_mem = false;
        pend_n = 0;
        pc_ = m.pc;
        cycle_ = clk;
        stats_.cycles = clk;
        CEPIC_FLUSH_STATS();
        if (!step_decoded(db[m.pc])) return;  // halted
        if (pc_ != m.pc + 1) {
          clk = cycle_;  // branched away: maybe straight into a block
          pcl = pc_;
          goto L_next_block;
        }
        clk = cycle_;
        pcl = pc_;
        u = uops + m.e;
        CEPIC_DISPATCH();
      }

      CEPIC_CASE(kExit) : {
        goto L_next_block;  // pcl holds the fall-through successor
      }

#if !CEPIC_THREADED_GOTO
    }
  }
#endif

#undef CEPIC_SRC_A
#undef CEPIC_SRC_B
#undef CEPIC_WRITE_GPR
#undef CEPIC_END_COMMON
#undef CEPIC_FLUSH_STATS
#undef CEPIC_BEGIN_SB
#undef CEPIC_BEGIN_PORTS_STALL
#undef CEPIC_CASE
#undef CEPIC_NEXT
#undef CEPIC_DISPATCH
}

void EpicSimulator::run_threaded() {
  const std::uint64_t max_cycles = options_.max_cycles;
  while (!halted_) {
    if (pc_ >= bundle_count_) {
      throw SimError(cat("pc 0x", std::hex, pc_, " past end of program"));
    }
    const std::int32_t bi = threaded_.block_at[pc_];
    if (bi >= 0) {
      const ThreadedBlock& block = threaded_.blocks[bi];
      // Blocks elide the per-bundle cycle-limit check; only enter with
      // enough slack that the limit provably cannot be hit inside.
      // Near the limit, single-step the decode tier — its check (and
      // fault text) is exact.
      if (cycle_ < max_cycles && max_cycles - cycle_ > block.max_advance) {
        ++threaded_.block_entries;
        exec_block(block);
        continue;
      }
      const DecodedBundle& bundle = decoded_[pc_];
      if (bundle.use_legacy ? !step_interpretive() : !step_decoded(bundle)) {
        return;
      }
      continue;
    }
    const DecodedBundle& bundle = decoded_[pc_];
    if (bundle.use_legacy) {
      // Out-of-range register indices: interpretive-only, never
      // promoted (a block could not contain it anyway).
      if (!step_interpretive()) return;
      continue;
    }
    if (++threaded_.hot[pc_] >= options_.threaded_hot_threshold) {
      threaded_.blocks.push_back(compile_block(pc_));
      threaded_.block_at[pc_] =
          static_cast<std::int32_t>(threaded_.blocks.size() - 1);
      // Materialise any literals the new block interned: pool constant
      // i lives at extended-GPR index num_gprs + 1 + i. Compilation
      // only happens here (never inside exec_block), so every block a
      // running exec_block can transition into already has its
      // constants in place when gprs_.data() is hoisted.
      const std::size_t pool_base = program_.config.num_gprs + 1;
      // (gpr_ready_ needs no pool slots: ready times are only read for
      // scoreboard/port registers and written for real dests + sink.)
      for (std::size_t i = gprs_.size() - pool_base;
           i < threaded_.pool.size(); ++i) {
        gprs_.push_back(threaded_.pool[i]);
      }
      continue;  // dispatch the freshly compiled block
    }
    ++threaded_.cold_steps;
    if (!step_decoded(bundle)) return;
  }
}

}  // namespace cepic
