// Cycle-level simulator of the customisable EPIC processor (the
// ReaCT-ILP role from the paper, §5.2). Models the prototype's 2-stage
// pipeline (Fetch/Decode/Issue | Execute/WriteBack, paper Fig. 2):
//
//  * one MultiOp of up to issue_width operations issues per cycle;
//  * MultiOp semantics: all operands are read before any result of the
//    same MultiOp is written;
//  * the register file controller allows `reg_port_budget` register
//    read+write operations per cycle; exceeding it stalls issue
//    (paper §3.2). Results produced in the immediately preceding cycle
//    are satisfied by forwarding and cost no read port;
//  * operand readiness is scoreboarded, so hand-written assembly that
//    ignores latencies still executes correctly — it just stalls;
//  * a taken branch flushes the fetch stage: one bubble cycle;
//  * predicated operations execute but are nullified on a false guard;
//  * optionally, every data-memory access steals one cycle of
//    instruction-fetch bandwidth (unified_memory_contention, ablation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/custom.hpp"
#include "core/program.hpp"
#include "mdes/mdes.hpp"
#include "core/memory.hpp"
#include "sim/decode.hpp"
#include "sim/stats.hpp"
#include "sim/threaded.hpp"
#include "sim/timeline.hpp"

namespace cepic {

struct SimOptions {
  std::uint64_t max_cycles = 2'000'000'000;
  std::size_t mem_size = std::size_t{1} << 22;  // 4 MiB
  bool collect_trace = false;
  std::size_t trace_limit = 4096;
  /// Execution tier (docs/SIM.md "Execution tiers"). Threaded promotes
  /// hot bundle runs to pre-compiled micro-op blocks (sim/threaded.hpp)
  /// and executes cold/irregular code on the decode tier; Decode is the
  /// pre-decoded fast path (sim/decode.hpp); Interp is the
  /// decode-every-cycle reference. All three are bit-identical in
  /// stats, output, traces, faults and architectural state
  /// (tests/test_sim_fastpath.cpp proves it differentially). run() with
  /// a timeline attached pins Threaded to Decode and flags it in
  /// SimStats::timeline_pinned.
  ExecTier exec_tier = ExecTier::Threaded;
  /// An entry pc's Nth dispatch (N = this) compiles and runs its
  /// threaded block; the first N-1 run on the decode tier. 1 compiles
  /// eagerly on first touch. Only read when exec_tier == Threaded.
  unsigned threaded_hot_threshold = 8;
  /// Maximum bundles lowered into one threaded block.
  unsigned threaded_max_block = 64;
};

struct TraceEntry {
  std::uint64_t cycle = 0;
  std::uint32_t bundle = 0;
  std::string text;
};

class EpicSimulator {
public:
  explicit EpicSimulator(Program program, CustomOpTable custom = {},
                         SimOptions options = {});

  /// Reset architectural state and statistics (keeps the program).
  void reset();

  /// Run until HALT. Throws SimError on a fault or cycle-limit overrun.
  const SimStats& run();

  /// Execute one MultiOp (for microtests). Returns false once halted.
  bool step();

  bool halted() const { return halted_; }

  // --- architectural state access (tests, examples) ---
  std::uint32_t gpr(unsigned i) const;
  void set_gpr(unsigned i, std::uint32_t v);
  bool pred(unsigned i) const;
  void set_pred(unsigned i, bool v);
  std::uint32_t btr(unsigned i) const;
  std::uint32_t pc() const { return pc_; }

  DataMemory& memory() { return mem_; }
  const DataMemory& memory() const { return mem_; }

  /// Values emitted through the OUT port, in order.
  const std::vector<std::uint32_t>& output() const { return output_; }

  const SimStats& stats() const { return stats_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  const Program& program() const { return program_; }

  /// Threaded-tier promotion counters, compiled blocks and telemetry
  /// (read-only; empty unless exec_tier == Threaded). Blocks are pure
  /// functions of the program and survive reset().
  const ThreadedCache& threaded_cache() const { return threaded_; }

  /// The tier run() would execute on right now: the configured tier,
  /// except that an attached timeline pins Threaded to Decode.
  ExecTier active_tier() const {
    if (options_.exec_tier == ExecTier::Threaded && timeline_ == nullptr) {
      return ExecTier::Threaded;
    }
    return options_.exec_tier == ExecTier::Interp ? ExecTier::Interp
                                                  : ExecTier::Decode;
  }

  /// Attach an opt-in per-cycle event timeline (sim/timeline.hpp);
  /// nullptr detaches. The caller owns the timeline and keeps it alive
  /// across run(). With no timeline attached the step loop is
  /// unchanged except for three dead integer stores.
  void set_timeline(SimTimeline* timeline) { timeline_ = timeline; }

private:
  struct WriteBack {
    RegFile file = RegFile::None;
    std::uint32_t index = 0;
    std::uint32_t value = 0;
    std::uint64_t ready = 0;
  };
  struct PendingStore {
    bool byte = false;
    std::uint32_t addr = 0;
    std::uint32_t value = 0;
  };

  std::uint32_t read_operand(const Operand& o, SrcSpec spec, bool zext) const;
  std::uint64_t ready_cycle(RegFile file, std::uint32_t index) const;
  void note_ready(RegFile file, std::uint32_t index, std::uint64_t cycle);

  /// One step through the pre-decoded fast path (never called for
  /// bundles flagged use_legacy). Dispatches to the template below so
  /// the no-timeline instantiation carries zero timeline bookkeeping.
  bool step_decoded(const DecodedBundle& bundle);
  template <bool kTimeline>
  bool step_decoded_impl(const DecodedBundle& bundle);
  /// One step through the interpretive decode-every-cycle path.
  bool step_interpretive();
  /// Fetch a pre-decoded source operand's value.
  std::uint32_t fetch(const DecodedSrc& src) const;
  /// Shared cycle-limit clamp: fires as soon as the issue computation
  /// proves the limit will be crossed, before any state changes.
  void check_cycle_limit(std::uint64_t issue) const;
  /// Shared writeback + advance/control-flow tail of both step paths.
  void write_back(const std::vector<PendingStore>& stores,
                  const std::vector<WriteBack>& writes);
  bool finish_step(std::uint64_t issue, bool branch_taken,
                   std::uint32_t branch_target, bool halt_now, bool any_mem,
                   unsigned useful_ops, const std::string* trace_text);
  /// Shared trace append (limit + truncation marker); pc_ must still be
  /// the issued bundle's pc. Used by finish_step and the threaded tier.
  void trace_record(std::uint64_t issue, const std::string* trace_text);

  // --- threaded tier (sim/threaded.cpp) ---
  /// run() body for ExecTier::Threaded: dispatch compiled blocks,
  /// promote hot entry pcs, execute cold/legacy bundles on the decode/
  /// interpretive paths.
  void run_threaded();
  /// Execute one compiled block starting at pc_ == block.entry_pc.
  void exec_block(const ThreadedBlock& block);
  /// Lower the maximal straight-line bundle run starting at entry_pc
  /// (non-const: interns literal operands in threaded_.pool).
  ThreadedBlock compile_block(std::uint32_t entry_pc);

  Program program_;
  CustomOpTable custom_;
  SimOptions options_;
  Mdes mdes_;
  unsigned width_;
  bool fwd_ = true;           ///< mdes_.forwarding(), hoisted
  unsigned port_budget_ = 8;  ///< mdes_.reg_port_budget(), hoisted

  /// Pre-decoded bundles (empty on the interpretive tier); built once
  /// at construction, reused across reset().
  std::vector<DecodedBundle> decoded_;
  /// Threaded-tier promotion counters and compiled micro-op blocks
  /// (empty unless exec_tier == Threaded); blocks compile lazily at
  /// promotion and, like decoded_, survive reset().
  ThreadedCache threaded_;
  std::uint32_t bundle_count_ = 0;  ///< program_.bundle_count(), hoisted
  std::uint32_t gpr_mask_ = 0;      ///< datapath-width value mask, hoisted
  /// Reused per-step scratch (capacity fixed by issue_width): the
  /// interpretive path's per-cycle heap allocations removed.
  std::vector<WriteBack> writes_scratch_;
  std::vector<PendingStore> stores_scratch_;

  /// Opt-in per-cycle timeline (not owned; see set_timeline).
  SimTimeline* timeline_ = nullptr;
  /// Per-step stall attribution handed to the timeline by finish_step
  /// (filled unconditionally — cheaper than a branch in the step loop).
  std::uint64_t tl_fetch_ = 0;
  std::uint64_t tl_sb_stall_ = 0;
  std::uint64_t tl_port_stall_ = 0;
  /// Per-step op events, reused; only populated while a timeline is
  /// attached.
  std::vector<SimTimeline::OpEvent> tl_ops_;

  /// Extended register files. Layout of gprs_:
  ///   [0, num_gprs)          architectural registers (r0 pinned to 0)
  ///   [num_gprs]             write sink for the threaded tier (absent
  ///                          destinations redirect here, so write-back
  ///                          is branchless)
  ///   [num_gprs + 1, ...)    ThreadedCache::pool literal constants,
  ///                          appended as blocks are compiled and left
  ///                          intact by reset()
  /// preds_ likewise carries one sink slot at num_preds. The public
  /// accessors bound-check against the architectural counts only.
  std::vector<std::uint32_t> gprs_;
  std::vector<std::uint8_t> preds_;
  std::vector<std::uint32_t> btrs_;
  std::vector<std::uint64_t> gpr_ready_;
  std::vector<std::uint64_t> pred_ready_;
  std::vector<std::uint64_t> btr_ready_;
  DataMemory mem_;

  std::uint32_t pc_ = 0;
  std::uint64_t cycle_ = 0;
  bool halted_ = false;

  std::vector<std::uint32_t> output_;
  SimStats stats_;
  std::vector<TraceEntry> trace_;
};

}  // namespace cepic
