// Per-cycle event timeline of the EPIC simulator, exported as Chrome
// trace-event JSON (cepic-sim --timeline-out; loads in Perfetto or
// chrome://tracing). One track per unit of the paper's Fig. 2 core:
//
//   issue     — one slice per issued MultiOp (ts = issue cycle, dur 1)
//   stall     — stall attribution in the gap before/after each issue:
//               scoreboard (operand-not-ready), reg-port (§3.2 budget),
//               mem-contention (unified-memory fetch steal) and
//               branch-bubble slices whose durations are exactly the
//               cycles the SimStats stall counters account
//   ALU0..N-1 — committed ALU-class ops, round-robin over the
//               configured ALUs, dur = result latency
//   LSU/CMPU/BRU — same for the load-store, compare-to-predicate and
//               branch units
//
// Nullified (false-guard) ops appear on their unit with category
// "nullified" and dur 1: they occupied the slot but produced nothing.
//
// The trace time unit is the simulated cycle (rendered by Perfetto as
// "us"). Totals across all tracks reconcile with SimStats by
// construction — tests/test_obs.cpp re-derives the per-class sums from
// the exported JSON and asserts equality with the run's SimStats.
//
// Recording is opt-in (EpicSimulator::set_timeline) and rides the
// decode-cache fast path: the simulator only ever does three integer
// stores per step plus, when a timeline is attached, one op-list
// append per executed op. With no timeline attached the hot loop is
// unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/isa.hpp"

namespace cepic {

class SimTimeline {
public:
  /// `max_bundles` caps the number of per-bundle event groups kept in
  /// memory (0 = unlimited). Past the cap, totals keep accumulating and
  /// the export carries an explicit truncation marker — never a
  /// silently shortened timeline.
  explicit SimTimeline(const ProcessorConfig& config,
                       std::uint64_t max_bundles = 0);

  /// One executed (non-NOP) operation of a bundle, in slot order.
  struct OpEvent {
    FuClass fu = FuClass::None;
    std::string_view name;
    unsigned latency = 1;
    bool nullified = false;
  };

  /// Everything the simulator knows about one issued bundle.
  struct BundleEvent {
    std::uint64_t fetch = 0;       ///< cycle the bundle reached issue
    std::uint64_t issue = 0;       ///< cycle it actually issued
    std::uint64_t sb_stall = 0;    ///< scoreboard stall cycles
    std::uint64_t port_stall = 0;  ///< §3.2 reg-port stall cycles
    std::uint32_t pc = 0;          ///< bundle index
    unsigned useful_ops = 0;
    bool mem_contention = false;   ///< one fetch-steal cycle applied
    unsigned branch_bubbles = 0;   ///< taken-branch flush cycles
    bool halt = false;
    std::uint64_t end_cycle = 0;   ///< simulator clock after the bundle
  };

  void record(const BundleEvent& bundle, const std::vector<OpEvent>& ops);

  /// Cycle accounting accumulated alongside the events; matches the
  /// run's SimStats field-for-field (asserted in tests).
  struct Totals {
    std::uint64_t cycles = 0;
    std::uint64_t bundles_issued = 0;
    std::uint64_t stall_scoreboard = 0;
    std::uint64_t stall_reg_ports = 0;
    std::uint64_t stall_mem_contention = 0;
    std::uint64_t branch_bubbles = 0;
    std::uint64_t ops_executed = 0;
    std::uint64_t ops_committed = 0;
    std::uint64_t ops_nullified = 0;
  };
  const Totals& totals() const { return totals_; }
  bool truncated() const { return truncated_; }

  /// Complete Chrome trace JSON document: track-naming metadata, the
  /// per-cycle slices, and the totals under "otherData".
  std::string to_chrome_json() const;

private:
  struct Slice {
    std::uint8_t track = 0;      ///< index into track_names_
    std::uint8_t kind = 0;       ///< SliceKind below
    std::uint32_t pc = 0;
    std::uint64_t ts = 0;        ///< cycle
    std::uint64_t dur = 0;       ///< cycles
    std::string_view op_name;    ///< FU slices only (static OpInfo name)
    unsigned useful_ops = 0;     ///< issue slices only
  };

  unsigned fu_track(FuClass fu, unsigned& alu_rr) const;

  ProcessorConfig config_;
  std::uint64_t max_bundles_ = 0;
  bool truncated_ = false;
  std::vector<std::string> track_names_;
  std::vector<Slice> slices_;
  Totals totals_;
};

}  // namespace cepic
