// Analytic FPGA resource/timing model for the customisable EPIC
// processor on a Xilinx Virtex-II-class device — the stand-in for the
// paper's place-and-route results (§5.1). Calibrated to the published
// figures:
//   * designs with 1/2/3/4 ALUs occupy 4181/6779/9367/~11955 slices,
//     i.e. ~2600 slices per ALU over a ~1585-slice base;
//   * the register file maps to block RAM ("SelectRAM"), so growing it
//     costs block RAM, not slices, and does not move the critical path;
//   * multiplication uses the on-chip block multipliers (MULT18X18);
//   * the prototype clocks at 41.8 MHz regardless of ALU count (the
//     ALUs are parallel and off the critical path).
//
// The decomposition below is a *model*, not a netlist: each term is a
// plausible slice budget for the corresponding unit, chosen so the
// calibration points are met; trends (linearity in ALUs, width scaling,
// feature trims, custom-op costs) follow the architecture.
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/custom.hpp"

namespace cepic::fpga {

struct ResourceEstimate {
  double slices = 0;
  unsigned block_rams = 0;    ///< 18 Kbit SelectRAM blocks
  unsigned block_mults = 0;   ///< MULT18X18 primitives
  double fmax_mhz = 0;

  /// Per-component slice breakdown (for the report and ablations).
  double slices_fdi = 0;       ///< fetch/decode/issue
  double slices_writeback = 0;
  double slices_rf_ctrl = 0;   ///< register file controller (4x clock)
  double slices_lsu = 0;
  double slices_cmpu = 0;
  double slices_bru = 0;
  double slices_alus = 0;      ///< all ALUs together
  double slices_per_alu = 0;

  std::string report() const;
};

/// Estimate resources for a configuration (custom ops add their
/// per-ALU slice and multiplier costs).
ResourceEstimate estimate(const ProcessorConfig& config,
                          const CustomOpTable* custom = nullptr);

/// Power model (paper §6 future work: "characterising the trade-offs in
/// performance, size and power consumption"). Virtex-II-era CMOS:
/// dynamic power scales with switched capacitance (~slices and the
/// embedded blocks) x clock x activity; static power with configured
/// area. Returns milliwatts.
struct PowerEstimate {
  double dynamic_mw = 0;
  double static_mw = 0;
  double total() const { return dynamic_mw + static_mw; }

  std::string report() const;
};

PowerEstimate estimate_power(const ResourceEstimate& resources,
                             double activity = 0.25);

}  // namespace cepic::fpga
