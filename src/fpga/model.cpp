#include "fpga/model.hpp"

#include <cmath>

#include "support/text.hpp"

namespace cepic::fpga {

namespace {

// Slice budgets at 32-bit width (see header for calibration).
constexpr double kFdiBase = 400.0;
constexpr double kFdiPerIssue = 80.0;
constexpr double kWriteback = 130.0;
constexpr double kRfCtrlBase = 150.0;
constexpr double kRfCtrlPerPort = 8.0;
constexpr double kLsu = 185.0;
constexpr double kCmpu = 140.0;
constexpr double kBruBase = 132.0;
constexpr double kBruPerBtr = 4.0;

// One full-featured 32-bit ALU = 2598 slices.
constexpr double kAluAdder = 230.0;
constexpr double kAluLogic = 175.0;
constexpr double kAluShifter = 870.0;
constexpr double kAluDivider = 935.0;
constexpr double kAluMinMax = 128.0;
constexpr double kAluDecodeMux = 260.0;

// 32-bit multiply from 18x18 block multipliers (truncated product).
constexpr unsigned kBlockMultsPerMul32 = 3;

constexpr double kBaseFmaxMhz = 41.8;

}  // namespace

ResourceEstimate estimate(const ProcessorConfig& config,
                          const CustomOpTable* custom) {
  config.validate();
  ResourceEstimate e;
  const double width_scale = config.datapath_width / 32.0;

  e.slices_fdi = kFdiBase + kFdiPerIssue * config.issue_width;
  e.slices_writeback = kWriteback * width_scale;
  e.slices_rf_ctrl = kRfCtrlBase + kRfCtrlPerPort * config.reg_port_budget;
  if (!config.forwarding) e.slices_rf_ctrl -= 60.0;  // no bypass network
  e.slices_lsu = kLsu * width_scale;
  e.slices_cmpu = kCmpu * width_scale;
  e.slices_bru = kBruBase + kBruPerBtr * config.num_btrs;

  double per_alu = kAluAdder + kAluLogic + kAluDecodeMux;
  if (config.alu.has_shift) per_alu += kAluShifter;
  if (config.alu.has_div) per_alu += kAluDivider;
  if (config.alu.has_minmax) per_alu += kAluMinMax;
  per_alu *= width_scale;

  unsigned mults_per_alu = 0;
  if (config.alu.has_mul) {
    mults_per_alu += static_cast<unsigned>(
        std::ceil(kBlockMultsPerMul32 * width_scale));
  }
  if (custom != nullptr) {
    for (unsigned slot = 0; slot < config.custom_ops.size(); ++slot) {
      if (custom->has(slot)) {
        per_alu += custom->get(slot).slices_per_alu * width_scale;
        mults_per_alu += custom->get(slot).block_mults_per_alu;
      }
    }
  }
  e.slices_per_alu = per_alu;
  e.slices_alus = per_alu * config.num_alus;

  e.slices = e.slices_fdi + e.slices_writeback + e.slices_rf_ctrl +
             e.slices_lsu + e.slices_cmpu + e.slices_bru + e.slices_alus;

  // Register file in SelectRAM: two interleaved dual-port banks driven
  // at 4x clock, plus one block for the instruction-fetch buffer.
  const unsigned rf_bits = config.num_gprs * config.datapath_width;
  const unsigned blocks_per_bank = (rf_bits + 18431) / 18432;
  e.block_rams = 2 * blocks_per_bank + 1;

  e.block_mults = mults_per_alu * config.num_alus;

  // Pipeline registers: each extra stage adds flop stages across the
  // datapath (issue width x instruction width plus result buses).
  if (config.pipeline_stages > 2) {
    e.slices += 90.0 * config.issue_width * width_scale *
                (config.pipeline_stages - 2);
  }

  // Clock: set by the execute stage (ALU + forwarding mux), which
  // widens with the datapath; parallel ALUs do not lengthen it. Deeper
  // pipelines split that path (paper §6: "with further optimisations in
  // the datapath additional speedup should be possible"); returns
  // diminish because the register-file controller still runs at 4x. The
  // 4x controller also caps scaling for very wide port budgets.
  e.fmax_mhz = kBaseFmaxMhz * std::pow(32.0 / config.datapath_width, 0.30);
  if (config.pipeline_stages == 3) e.fmax_mhz *= 1.35;
  if (config.pipeline_stages == 4) e.fmax_mhz *= 1.55;
  if (config.reg_port_budget > 8) {
    e.fmax_mhz *= 8.0 / config.reg_port_budget;
  }
  return e;
}

std::string ResourceEstimate::report() const {
  std::string s;
  s += cat("slices:        ", fixed(slices, 0), "\n");
  s += cat("  fetch/decode/issue ", fixed(slices_fdi, 0), "\n");
  s += cat("  writeback          ", fixed(slices_writeback, 0), "\n");
  s += cat("  regfile controller ", fixed(slices_rf_ctrl, 0), "\n");
  s += cat("  LSU                ", fixed(slices_lsu, 0), "\n");
  s += cat("  CMPU               ", fixed(slices_cmpu, 0), "\n");
  s += cat("  BRU                ", fixed(slices_bru, 0), "\n");
  s += cat("  ALUs               ", fixed(slices_alus, 0), " (",
           fixed(slices_per_alu, 0), " each)\n");
  s += cat("block RAMs:    ", block_rams, "\n");
  s += cat("block mults:   ", block_mults, "\n");
  s += cat("fmax:          ", fixed(fmax_mhz, 1), " MHz\n");
  return s;
}

PowerEstimate estimate_power(const ResourceEstimate& resources,
                             double activity) {
  // Coefficients for a Virtex-II-class 1.5V process: ~4 uW per
  // slice*MHz at full activity, ~12 uW per embedded block*MHz, plus
  // configured-area leakage. Calibrated so the paper's 4-ALU default at
  // 41.8 MHz lands in the half-watt region typical of era reports [14].
  PowerEstimate p;
  const double blocks = resources.block_rams + resources.block_mults;
  p.dynamic_mw = activity * resources.fmax_mhz *
                 (resources.slices * 0.004 + blocks * 0.012);
  p.static_mw = 120.0 + resources.slices * 0.008;
  return p;
}

std::string PowerEstimate::report() const {
  return cat("power:         ", fixed(total(), 0), " mW (dynamic ",
             fixed(dynamic_mw, 0), " + static ", fixed(static_mw, 0),
             ")\n");
}

}  // namespace cepic::fpga
