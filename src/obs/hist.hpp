// cepic::obs::Histogram — lock-free, log-bucketed (HDR-style) latency
// histograms.
//
// Recording is wait-free: `observe(v)` picks the calling thread's shard
// (cache-line padded, assigned round-robin on first use) and performs a
// handful of relaxed atomic adds — no locks, no allocation.  Export
// merges the shards by summation, which is exact: every recorded sample
// lands in exactly one shard bucket, so the merged `count`/`sum`/bucket
// totals equal what a single global histogram would have seen.  Only
// quantiles are approximate, and only by the bucket scheme below.
//
// Bucket scheme (log-linear, like HdrHistogram/Prometheus native):
// values below 2^(kSubBits+1) get one bucket each (exact); above that,
// each power-of-two octave is split into kSub = 2^kSubBits linear
// sub-buckets.  With kSubBits = 3 a bucket spans at most 1/8 of its
// lower bound, so any quantile reported from a bucket's upper bound is
// within +12.5% of the true sample (and never below it).  496 buckets
// cover the full uint64 range; a histogram with 8 shards is ~32 KiB.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace cepic::obs {

/// Merged, immutable view of a Histogram at one point in time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;  ///< exact (tracked per-sample, not per-bucket)
  std::vector<std::uint64_t> buckets;

  /// Value `v` such that at least ceil(q * count) samples were <= v.
  /// Reported as the covering bucket's upper bound clamped to the exact
  /// max, so the result is >= the true quantile and within +12.5% of it
  /// (exact below 16). Returns 0 on an empty histogram.
  std::uint64_t quantile(double q) const;
};

class Histogram {
public:
  static constexpr unsigned kSubBits = 3;
  static constexpr unsigned kSub = 1u << kSubBits;  // 8 sub-buckets/octave
  // Buckets 0..2*kSub-1 hold values 0..15 exactly; each further octave
  // (bit width kSubBits+2 .. 64) contributes kSub buckets.
  static constexpr unsigned kBuckets = (64 - kSubBits + 1) * kSub;
  static constexpr unsigned kShards = 8;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one sample. Wait-free; callable from any thread.
  void observe(std::uint64_t value) {
    Shard& s = shard();
    const unsigned b = bucket_of(value);
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = s.max.load(std::memory_order_relaxed);
    while (seen < value &&
           !s.max.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Merge all shards into one snapshot. Exact for count/sum/max/bucket
  /// totals provided no observe() races the export (quiescent exports —
  /// after joins, at process exit — see every sample exactly once).
  HistogramSnapshot snapshot() const;

  // --- bucket scheme (static: shared by snapshot consumers/tests) ---

  /// Bucket index covering `value`.
  static unsigned bucket_of(std::uint64_t value) {
    const unsigned width =
        value == 0 ? 1u : static_cast<unsigned>(std::bit_width(value));
    if (width <= kSubBits + 1) return static_cast<unsigned>(value);
    const unsigned octave = width - (kSubBits + 1);
    const unsigned sub = static_cast<unsigned>(
        (value >> (width - 1 - kSubBits)) & (kSub - 1));
    return (octave + 1) * kSub + sub;
  }

  /// Smallest / largest value mapping to bucket `b`.
  static std::uint64_t bucket_low(unsigned b) {
    if (b < 2 * kSub) return b;
    const unsigned octave = b / kSub - 1;
    const std::uint64_t sub = b % kSub;
    return (std::uint64_t{kSub} + sub) << octave;
  }
  static std::uint64_t bucket_high(unsigned b) {
    if (b < 2 * kSub) return b;
    const unsigned octave = b / kSub - 1;
    return bucket_low(b) + ((std::uint64_t{1} << octave) - 1);
  }

private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };

  Shard& shard();

  std::array<Shard, kShards> shards_;
};

}  // namespace cepic::obs
