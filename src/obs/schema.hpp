// Tiny JSON-Schema validator covering the subset the checked-in
// observability schemas (schemas/*.schema.json) use, so CI can validate
// exported trace/metrics files with a CEPIC binary instead of requiring
// python3-jsonschema.
//
// Supported keywords: "type" (string or array of strings), "enum",
// "const", "required", "properties", "additionalProperties" (boolean or
// schema), "patternProperties" (prefix "^..." and suffix "...$" only —
// no general regex), "items" (single schema), "minItems", "minimum",
// "maximum". Unknown keywords are ignored, exactly like a conformant
// validator ignores unknown annotations.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cepic::obs::schema {

/// Validate `value` against `schema`. Returns every violation found as
/// "<json-path>: <message>"; an empty vector means the document is
/// valid. Throws cepic::Error only if the schema itself is malformed.
std::vector<std::string> validate(const json::Value& schema,
                                  const json::Value& value);

}  // namespace cepic::obs::schema
