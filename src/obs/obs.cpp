#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/flight.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::obs {

namespace detail {

std::atomic<unsigned> g_mode{kModeFlight};

}  // namespace detail

namespace {

std::string number_text(double v) {
  // Trim a fixed-precision rendering so 12.000 exports as 12 and
  // fractional microseconds keep three digits.
  std::string s = fixed(v, 3);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s.empty() ? "0" : s;
}

}  // namespace

bool enabled() {
  return (detail::mode() & detail::kModeTrace) != 0;
}

void set_enabled(bool on) {
  if (on) {
    if (!enabled()) Registry::instance().set_epoch_ns(now_ns());
    detail::g_mode.fetch_or(detail::kModeTrace, std::memory_order_relaxed);
  } else {
    detail::g_mode.fetch_and(~detail::kModeTrace,
                             std::memory_order_relaxed);
  }
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- Registry ---------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // Counters are node-stable: the atomic lives behind a unique_ptr so
  // references handed out by counter() survive rehashing.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      counters;
  std::map<std::string, double, std::less<>> gauges;
  // Histograms are node-stable for the same reason as counters.
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> hists;
  std::vector<SpanRecord> spans;
  std::map<std::thread::id, int> thread_ids;
  std::uint64_t epoch_ns = 0;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

std::atomic<std::uint64_t>& Registry::counter(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters
             .emplace(std::string(name),
                      std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return *it->second;
}

void Registry::set_counter(std::string_view name, std::uint64_t value) {
  counter(name).store(value, std::memory_order_relaxed);
}

void Registry::set_gauge(std::string_view name, double value) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    i.gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.hists.find(name);
  if (it == i.hists.end()) {
    it = i.hists.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::record(SpanRecord&& span) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.spans.push_back(std::move(span));
}

int Registry::thread_id() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  const auto [it, inserted] = i.thread_ids.emplace(
      std::this_thread::get_id(), static_cast<int>(i.thread_ids.size()) + 1);
  (void)inserted;
  return it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(i.counters.size());
  for (const auto& [name, cell] : i.counters) {
    out.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return {i.gauges.begin(), i.gauges.end()};
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms()
    const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(i.hists.size());
  for (const auto& [name, hist] : i.hists) {
    out.emplace_back(name, hist->snapshot());
  }
  return out;
}

std::vector<SpanRecord> Registry::spans() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.spans;
}

std::uint64_t Registry::epoch_ns() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.epoch_ns;
}

void Registry::set_epoch_ns(std::uint64_t ns) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.epoch_ns = ns;
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.counters.clear();
  i.gauges.clear();
  i.hists.clear();
  i.spans.clear();
  i.thread_ids.clear();
  i.epoch_ns = 0;
}

// --- Span -------------------------------------------------------------

Span::Span(std::string_view name, std::string_view cat) {
  static_assert(sizeof(flight_name_) == kFlightNameChars + 1,
                "Span's fixed name buffer must fit a flight-event name");
  const unsigned mode = detail::mode();
  if (mode == 0) return;  // inert: one relaxed load, nothing else
  if ((mode & detail::kModeFlight) != 0) {
    // Capture the (truncated) name for the matching end event; the
    // fixed buffer keeps the flight path allocation-free.
    const std::size_t n = std::min(name.size(), kFlightNameChars);
    std::memcpy(flight_name_, name.data(), n);
    flight_name_[n] = '\0';
    flight_len_ = static_cast<std::uint8_t>(n);
  }
  start_ns_ = now_ns();
  if (flight_len_ != 0) {
    flight_record(FlightEvent::kBegin, {flight_name_, flight_len_}, 0,
                  start_ns_);
  }
  if ((mode & detail::kModeTrace) == 0) return;
  active_ = true;
  rec_.name.assign(name.data(), name.size());
  rec_.cat.assign(cat.data(), cat.size());
  rec_.tid = Registry::instance().thread_id();
}

Span::~Span() {
  if (!active_ && flight_len_ == 0) return;
  const std::uint64_t end_ns = now_ns();
  if (flight_len_ != 0) {
    flight_record(FlightEvent::kEnd, {flight_name_, flight_len_},
                  end_ns - start_ns_, end_ns);
  }
  if (!active_) return;
  rec_.start_ns = start_ns_;
  rec_.dur_ns = end_ns - start_ns_;
  Registry::instance().record(std::move(rec_));
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  rec_.args.push_back({std::string(key), std::string(value), false});
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  rec_.args.push_back({std::string(key), cat(value), true});
}

// --- exporters --------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_args(std::string& out, const std::vector<EventArg>& args) {
  out += "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ",";
    out += cat("\"", json_escape(args[i].key), "\":");
    if (args[i].numeric) {
      out += args[i].value;
    } else {
      out += cat("\"", json_escape(args[i].value), "\"");
    }
  }
  out += "}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<EventArg>& other_data) {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i != 0) out += ",";
    out += cat("\n{\"ph\":\"", e.ph, "\",\"name\":\"", json_escape(e.name),
               "\",\"pid\":", e.pid, ",\"tid\":", e.tid);
    if (!e.cat.empty()) out += cat(",\"cat\":\"", json_escape(e.cat), "\"");
    out += cat(",\"ts\":", number_text(e.ts));
    if (e.ph == 'X') out += cat(",\"dur\":", number_text(e.dur));
    if (!e.args.empty()) {
      out += ",\"args\":";
      append_args(out, e.args);
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"";
  if (!other_data.empty()) {
    out += ",\"otherData\":";
    append_args(out, other_data);
  }
  out += "}\n";
  return out;
}

std::string trace_json() {
  Registry& reg = Registry::instance();
  const std::uint64_t epoch = reg.epoch_ns();
  std::vector<SpanRecord> spans = reg.spans();
  // Deterministic order: by start time, then thread, then name.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.name < b.name;
                   });
  std::vector<TraceEvent> events;
  events.reserve(spans.size());
  for (SpanRecord& s : spans) {
    TraceEvent e;
    e.ph = 'X';
    e.name = std::move(s.name);
    e.cat = s.cat.empty() ? "span" : std::move(s.cat);
    e.ts = static_cast<double>(s.start_ns - std::min(epoch, s.start_ns)) / 1e3;
    e.dur = static_cast<double>(s.dur_ns) / 1e3;
    e.tid = s.tid;
    e.args = std::move(s.args);
    events.push_back(std::move(e));
  }
  std::vector<EventArg> other;
  for (const auto& [name, value] : reg.counters()) {
    other.push_back({cat("counter.", name), cat(value), true});
  }
  for (const auto& [name, value] : reg.gauges()) {
    other.push_back({cat("gauge.", name), number_text(value), true});
  }
  for (const auto& [name, snap] : reg.histograms()) {
    other.push_back({cat("histogram.", name, ".count"), cat(snap.count), true});
    other.push_back(
        {cat("histogram.", name, ".p50"), cat(snap.quantile(0.50)), true});
    other.push_back(
        {cat("histogram.", name, ".p99"), cat(snap.quantile(0.99)), true});
    other.push_back({cat("histogram.", name, ".max"), cat(snap.max), true});
  }
  return chrome_trace_json(events, other);
}

namespace {

// The per-histogram stats every exporter emits, in export order.
std::vector<std::pair<const char*, std::uint64_t>> histogram_stats(
    const HistogramSnapshot& snap) {
  return {{"count", snap.count},        {"sum", snap.sum},
          {"max", snap.max},            {"p50", snap.quantile(0.50)},
          {"p90", snap.quantile(0.90)}, {"p99", snap.quantile(0.99)}};
}

}  // namespace

std::string metrics_json() {
  Registry& reg = Registry::instance();
  std::string out = "{\n  \"counters\": {";
  const auto counters = reg.counters();
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += cat(i == 0 ? "\n" : ",\n", "    \"", json_escape(counters[i].first),
               "\": ", counters[i].second);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  const auto gauges = reg.gauges();
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += cat(i == 0 ? "\n" : ",\n", "    \"", json_escape(gauges[i].first),
               "\": ", number_text(gauges[i].second));
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  const auto hists = reg.histograms();
  for (std::size_t i = 0; i < hists.size(); ++i) {
    out += cat(i == 0 ? "\n" : ",\n", "    \"", json_escape(hists[i].first),
               "\": {");
    const auto stats = histogram_stats(hists[i].second);
    for (std::size_t j = 0; j < stats.size(); ++j) {
      out += cat(j == 0 ? "" : ", ", "\"", stats[j].first,
                 "\": ", stats[j].second);
    }
    out += "}";
  }
  out += hists.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string metrics_csv() {
  Registry& reg = Registry::instance();
  std::string out = "kind,name,value\n";
  for (const auto& [name, value] : reg.counters()) {
    out += cat("counter,", name, ",", value, "\n");
  }
  for (const auto& [name, value] : reg.gauges()) {
    out += cat("gauge,", name, ",", number_text(value), "\n");
  }
  for (const auto& [name, snap] : reg.histograms()) {
    for (const auto& [stat, value] : histogram_stats(snap)) {
      out += cat("histogram,", name, ".", stat, ",", value, "\n");
    }
  }
  return out;
}

namespace detail {

void write_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw Error("failed writing " + path);
}

}  // namespace detail

void write_trace_json(const std::string& path) {
  detail::write_text_file(path, trace_json());
}

void write_metrics_json(const std::string& path) {
  detail::write_text_file(path, metrics_json());
}

void write_metrics_csv(const std::string& path) {
  detail::write_text_file(path, metrics_csv());
}

}  // namespace cepic::obs
