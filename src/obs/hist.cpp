#include "obs/hist.hpp"

#include <algorithm>
#include <cmath>

namespace cepic::obs {

namespace {

// Round-robin shard assignment: consecutive threads land on different
// cache lines, and a thread keeps its shard for its whole life.
std::atomic<unsigned> g_next_shard{0};

unsigned this_thread_shard() {
  static thread_local const unsigned shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) %
      Histogram::kShards;
  return shard;
}

}  // namespace

Histogram::Shard& Histogram::shard() { return shards_[this_thread_shard()]; }

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  for (const Shard& s : shards_) {
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
    for (unsigned b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (unsigned b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) {
      return std::min(Histogram::bucket_high(b), max);
    }
  }
  return max;
}

}  // namespace cepic::obs
