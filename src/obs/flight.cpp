#include "obs/flight.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"
#include "support/text.hpp"

namespace cepic::obs {

namespace {

static_assert((kFlightCapacity & (kFlightCapacity - 1)) == 0,
              "ring indexing masks with capacity - 1");

// One ring per recording thread. Only its owner writes; `seq` is
// release-published after each slot write so a racing reader never
// mistakes a half-written slot for a retained one (slots being
// *overwritten* mid-dump are still possible — dumps are exact only
// when quiescent, which fault paths and post-join exports are).
struct FlightRing {
  std::atomic<std::uint64_t> seq{0};
  std::array<FlightEvent, kFlightCapacity> slots{};
};

struct FlightState {
  std::mutex mu;
  // Rings are owned here and never destroyed or reused: a cached
  // per-thread pointer stays valid after its thread dies, and a dead
  // worker's last events survive for post-mortem dumps.
  std::vector<std::unique_ptr<FlightRing>> rings;
  std::string fault_path;
};

FlightState& state() {
  // Leaked: fault dumps may run during shutdown, after static dtors.
  static FlightState* s = new FlightState;
  return *s;
}

FlightRing& this_thread_ring() {
  static thread_local FlightRing* ring = [] {
    auto owned = std::make_unique<FlightRing>();
    FlightRing* raw = owned.get();
    FlightState& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.rings.push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

}  // namespace

bool flight_enabled() {
  return (detail::mode() & detail::kModeFlight) != 0;
}

void set_flight_enabled(bool on) {
  if (on) {
    detail::g_mode.fetch_or(detail::kModeFlight, std::memory_order_relaxed);
  } else {
    detail::g_mode.fetch_and(~detail::kModeFlight,
                             std::memory_order_relaxed);
  }
}

void flight_record(FlightEvent::Kind kind, std::string_view name,
                   std::uint64_t value, std::uint64_t ts_ns) {
  if (!flight_enabled()) return;
  FlightRing& ring = this_thread_ring();
  const std::uint64_t seq = ring.seq.load(std::memory_order_relaxed);
  FlightEvent& e = ring.slots[seq & (kFlightCapacity - 1)];
  e.ts_ns = ts_ns != 0 ? ts_ns : now_ns();
  e.value = value;
  e.kind = kind;
  const std::size_t n = std::min(name.size(), kFlightNameChars);
  std::memcpy(e.name, name.data(), n);
  e.name[n] = '\0';
  ring.seq.store(seq + 1, std::memory_order_release);
}

namespace detail {

void flight_add(std::string_view name, std::uint64_t delta) {
  flight_record(FlightEvent::kCounter, name, delta);
}

}  // namespace detail

void set_flight_fault_path(std::string path) {
  FlightState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.fault_path = std::move(path);
}

void flight_record_fault(std::string_view what) {
  flight_record(FlightEvent::kInstant, cat("fault: ", what));
  std::string path;
  {
    FlightState& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    path = st.fault_path;
  }
  if (path.empty()) return;
  try {
    write_flight_json(path);
  } catch (...) {
    // A failing dump must not mask the fault being recorded.
  }
}

std::string flight_trace_json() {
  // Snapshot every ring under the registration lock (the ring *list*
  // is what the lock guards; slot reads race benignly, see above).
  struct RingSnap {
    int tid;
    std::vector<FlightEvent> events;  // oldest retained first
  };
  std::vector<RingSnap> snaps;
  std::vector<EventArg> other;
  {
    FlightState& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    int tid = 0;
    for (const auto& ring : st.rings) {
      ++tid;
      const std::uint64_t seq = ring->seq.load(std::memory_order_acquire);
      const std::uint64_t retained =
          std::min<std::uint64_t>(seq, kFlightCapacity);
      RingSnap snap;
      snap.tid = tid;
      snap.events.reserve(retained);
      for (std::uint64_t i = seq - retained; i < seq; ++i) {
        snap.events.push_back(ring->slots[i & (kFlightCapacity - 1)]);
      }
      other.push_back({cat("flight.ring", tid, ".recorded"), cat(seq), true});
      other.push_back(
          {cat("flight.ring", tid, ".dropped"), cat(seq - retained), true});
      snaps.push_back(std::move(snap));
    }
  }

  // Anchor exported timestamps at the oldest instant in the dump ('X'
  // events start at ts - dur, which may predate every retained ts).
  std::uint64_t epoch = ~std::uint64_t{0};
  for (const RingSnap& snap : snaps) {
    for (const FlightEvent& e : snap.events) {
      const std::uint64_t at =
          e.kind == FlightEvent::kEnd && e.value <= e.ts_ns
              ? e.ts_ns - e.value
              : e.ts_ns;
      epoch = std::min(epoch, at);
    }
  }

  std::vector<TraceEvent> events;
  for (const RingSnap& snap : snaps) {
    // Replay the ring in order: a kEnd closes the most recent open
    // kBegin (and renders as the complete event); begins still open at
    // the end of the ring — in flight when the dump was taken — render
    // as instants.
    std::vector<const FlightEvent*> open;
    auto emit = [&](const FlightEvent& e) {
      TraceEvent out;
      out.tid = snap.tid;
      out.name = e.name;
      switch (e.kind) {
        case FlightEvent::kEnd: {
          // Same start-time rule as the epoch scan above, so the
          // start never precedes the epoch.
          const std::uint64_t start =
              e.value <= e.ts_ns ? e.ts_ns - e.value : e.ts_ns;
          out.ph = 'X';
          out.cat = "flight";
          out.ts = static_cast<double>(start - epoch) / 1e3;
          out.dur = static_cast<double>(e.value) / 1e3;
          break;
        }
        case FlightEvent::kCounter:
          out.ph = 'C';
          out.cat = "counter";
          out.ts = static_cast<double>(e.ts_ns - epoch) / 1e3;
          out.args.push_back({"delta", cat(e.value), true});
          break;
        case FlightEvent::kBegin:
          out.ph = 'I';
          out.cat = "flight";
          out.name += " (in flight)";
          out.ts = static_cast<double>(e.ts_ns - epoch) / 1e3;
          break;
        case FlightEvent::kInstant:
          out.ph = 'I';
          out.cat = "flight";
          out.ts = static_cast<double>(e.ts_ns - epoch) / 1e3;
          break;
      }
      events.push_back(std::move(out));
    };
    for (const FlightEvent& e : snap.events) {
      switch (e.kind) {
        case FlightEvent::kBegin:
          open.push_back(&e);
          break;
        case FlightEvent::kEnd:
          if (!open.empty()) open.pop_back();
          emit(e);
          break;
        default:
          emit(e);
      }
    }
    for (const FlightEvent* e : open) emit(*e);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.tid < b.tid;
                   });
  other.push_back({"flight.capacity", cat(kFlightCapacity), true});
  return chrome_trace_json(events, other);
}

void write_flight_json(const std::string& path) {
  detail::write_text_file(path, flight_trace_json());
}

void flight_reset() {
  FlightState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  for (const auto& ring : st.rings) {
    ring->seq.store(0, std::memory_order_relaxed);
  }
  st.fault_path.clear();
  set_flight_enabled(true);
}

}  // namespace cepic::obs
