// cepic::obs — the unified tracing & metrics layer of the toolchain.
//
// One dependency-free library with three pieces:
//
//  * **Scoped spans** (`Span`): RAII timing regions with nesting, named
//    string/integer arguments and monotonic-clock timestamps. Spans are
//    recorded into the global Registry only while tracing is enabled
//    (`set_enabled(true)`); when disabled a Span constructor is a single
//    relaxed atomic load and the object performs no allocation at all —
//    cheap enough to leave instrumentation in release hot paths
//    (tests/test_obs.cpp pins the no-allocation property down).
//
//  * **Typed counters and gauges** in the same global Registry.
//    Counters are monotonic uint64 atomics, safe to increment from any
//    thread and independent of the tracing switch (they back
//    `--metrics-json` and the unified `--cache-stats` report even when
//    no trace is being collected). Gauges are doubles set by the last
//    writer.
//
//  * **Exporters**: Chrome trace-event JSON (loads directly in Perfetto
//    or chrome://tracing) and a flat metrics report as JSON or CSV.
//    The trace export embeds the counter snapshot under `otherData` so
//    one file is enough for cepic-prof to reconstruct both timing and
//    cache-efficiency summaries.
//
// The simulator's per-cycle timeline (sim/timeline.hpp) reuses the
// TraceEvent model and writer from here but keeps its own event list:
// a timeline is per-run artefact data, not process-wide telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cepic::obs {

// --- global switch ----------------------------------------------------

/// True while span recording is on. Counters/gauges ignore this.
bool enabled();

/// Flip span recording. Turning it on (re)anchors the trace epoch so
/// exported timestamps start near zero.
void set_enabled(bool on);

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock).
std::uint64_t now_ns();

// --- events -----------------------------------------------------------

/// One named argument of a span / trace event. `numeric` renders the
/// value bare in JSON instead of quoted.
struct EventArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// One Chrome trace-event. `ts`/`dur` are in the writer's time unit
/// (microseconds for wall-clock spans; simulated cycles for the
/// simulator timeline, which Perfetto simply renders as "us").
struct TraceEvent {
  char ph = 'X';  ///< 'X' complete, 'I' instant, 'M' metadata, 'C' counter
  std::string name;
  std::string cat;
  double ts = 0;
  double dur = 0;
  int pid = 1;
  int tid = 1;
  std::vector<EventArg> args;
};

/// Render `events` as a complete Chrome trace JSON document.
/// `other_data` entries land under "otherData" (counter snapshots,
/// run descriptions); pass {} for none.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<EventArg>& other_data);

// --- the registry -----------------------------------------------------

/// A completed span as stored by the registry.
struct SpanRecord {
  std::string name;
  std::string cat;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  int tid = 0;  ///< small dense id assigned per recording thread
  std::vector<EventArg> args;
};

/// Process-global store of spans, counters and gauges. All methods are
/// thread-safe. Tests may reset() it; tools normally never do.
class Registry {
public:
  static Registry& instance();

  /// Monotonic counter cell. The returned reference stays valid for the
  /// life of the process; hot paths should cache it.
  std::atomic<std::uint64_t>& counter(std::string_view name);

  /// Set a counter to an absolute value (used when folding externally
  /// accumulated statistics, e.g. pipeline::ServiceStats, into the
  /// registry).
  void set_counter(std::string_view name, std::uint64_t value);

  void set_gauge(std::string_view name, double value);

  void record(SpanRecord&& span);

  /// Dense id for the calling thread (assigned on first use).
  int thread_id();

  // --- snapshots (name-sorted, for deterministic exports) ---
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<SpanRecord> spans() const;

  /// Nanosecond timestamp all exported span times are relative to.
  std::uint64_t epoch_ns() const;
  void set_epoch_ns(std::uint64_t ns);

  /// Drop all spans, counters, gauges and thread ids (tests only).
  void reset();

private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// --- spans ------------------------------------------------------------

/// RAII scoped span. Construction snapshots the monotonic clock and the
/// thread id; destruction records the completed span into the Registry.
/// When tracing is disabled the whole object is inert: no clock read,
/// no allocation, no recording.
class Span {
public:
  explicit Span(std::string_view name, std::string_view cat = "");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is live and will be recorded.
  bool active() const { return active_; }

  /// Attach arguments (no-ops when inactive).
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::uint64_t value);

private:
  bool active_ = false;
  std::uint64_t start_ns_ = 0;
  SpanRecord rec_;
};

/// Increment a registry counter (always live; independent of tracing).
inline void add(std::string_view name, std::uint64_t delta = 1) {
  Registry::instance().counter(name).fetch_add(delta,
                                               std::memory_order_relaxed);
}

// --- registry exporters -----------------------------------------------

/// All recorded spans as a Chrome trace JSON document (ts/dur in
/// microseconds relative to the trace epoch), with the counter snapshot
/// embedded under otherData.
std::string trace_json();

/// Flat metrics report: {"counters":{...},"gauges":{...}}, name-sorted.
std::string metrics_json();

/// Flat metrics report as CSV: kind,name,value — name-sorted.
std::string metrics_csv();

/// Write helpers (throw cepic::Error on I/O failure).
void write_trace_json(const std::string& path);
void write_metrics_json(const std::string& path);
void write_metrics_csv(const std::string& path);

/// JSON string escaping shared by every exporter in this library.
std::string json_escape(std::string_view s);

}  // namespace cepic::obs
