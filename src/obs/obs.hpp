// cepic::obs — the unified tracing & metrics layer of the toolchain.
//
// One dependency-free library with three pieces:
//
//  * **Scoped spans** (`Span`): RAII timing regions with nesting, named
//    string/integer arguments and monotonic-clock timestamps. Spans are
//    recorded into the global Registry only while tracing is enabled
//    (`set_enabled(true)`); when disabled a Span constructor is a single
//    relaxed atomic load and the object performs no allocation at all —
//    cheap enough to leave instrumentation in release hot paths
//    (tests/test_obs.cpp pins the no-allocation property down).
//
//  * **Typed counters, gauges and histograms** in the same global
//    Registry. Counters are monotonic uint64 atomics, safe to
//    increment from any thread and independent of the tracing switch
//    (they back `--metrics-json` and the unified `--cache-stats`
//    report even when no trace is being collected). Gauges are doubles
//    set by the last writer. Histograms (hist.hpp) are lock-free
//    HDR-style latency distributions whose per-thread shards merge
//    exactly at export, giving p50/p90/p99/max per instrumented seam.
//
//    A sibling **flight recorder** (flight.hpp) keeps a fixed-size
//    per-thread ring of recent span begin/end and counter-delta
//    events even while tracing is off, for post-mortem dumps on fault
//    paths and via the tools' shared `--flight-out` option.
//
//  * **Exporters**: Chrome trace-event JSON (loads directly in Perfetto
//    or chrome://tracing) and a flat metrics report as JSON or CSV.
//    The trace export embeds the counter snapshot under `otherData` so
//    one file is enough for cepic-prof to reconstruct both timing and
//    cache-efficiency summaries.
//
// The simulator's per-cycle timeline (sim/timeline.hpp) reuses the
// TraceEvent model and writer from here but keeps its own event list:
// a timeline is per-run artefact data, not process-wide telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/hist.hpp"

namespace cepic::obs {

// --- global switches --------------------------------------------------

namespace detail {

inline constexpr unsigned kModeTrace = 1u;   ///< span recording
inline constexpr unsigned kModeFlight = 2u;  ///< flight-recorder rings

/// Both switches in one word so the hot-path check (`Span` ctor,
/// `obs::add`) is a single relaxed load whatever the combination.
/// Flight recording is on by default; tracing is opt-in.
extern std::atomic<unsigned> g_mode;

inline unsigned mode() { return g_mode.load(std::memory_order_relaxed); }

/// Defined in flight.cpp: record a counter delta into the calling
/// thread's flight ring (declared here so obs::add stays inline
/// without obs.hpp pulling in flight.hpp).
void flight_add(std::string_view name, std::uint64_t delta);

/// Shared file-write helper (throws cepic::Error on I/O failure).
void write_text_file(const std::string& path, std::string_view text);

}  // namespace detail

/// True while span recording is on. Counters/gauges/histograms and the
/// flight recorder ignore this.
bool enabled();

/// Flip span recording. Turning it on (re)anchors the trace epoch so
/// exported timestamps start near zero.
void set_enabled(bool on);

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock).
std::uint64_t now_ns();

// --- events -----------------------------------------------------------

/// One named argument of a span / trace event. `numeric` renders the
/// value bare in JSON instead of quoted.
struct EventArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// One Chrome trace-event. `ts`/`dur` are in the writer's time unit
/// (microseconds for wall-clock spans; simulated cycles for the
/// simulator timeline, which Perfetto simply renders as "us").
struct TraceEvent {
  char ph = 'X';  ///< 'X' complete, 'I' instant, 'M' metadata, 'C' counter
  std::string name;
  std::string cat;
  double ts = 0;
  double dur = 0;
  int pid = 1;
  int tid = 1;
  std::vector<EventArg> args;
};

/// Render `events` as a complete Chrome trace JSON document.
/// `other_data` entries land under "otherData" (counter snapshots,
/// run descriptions); pass {} for none.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<EventArg>& other_data);

// --- the registry -----------------------------------------------------

/// A completed span as stored by the registry.
struct SpanRecord {
  std::string name;
  std::string cat;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  int tid = 0;  ///< small dense id assigned per recording thread
  std::vector<EventArg> args;
};

/// Process-global store of spans, counters and gauges. All methods are
/// thread-safe. Tests may reset() it; tools normally never do.
class Registry {
public:
  static Registry& instance();

  /// Monotonic counter cell. The returned reference stays valid for the
  /// life of the process; hot paths should cache it.
  std::atomic<std::uint64_t>& counter(std::string_view name);

  /// Set a counter to an absolute value (used when folding externally
  /// accumulated statistics, e.g. pipeline::ServiceStats, into the
  /// registry).
  void set_counter(std::string_view name, std::uint64_t value);

  void set_gauge(std::string_view name, double value);

  /// Latency histogram cell (HDR-style; see hist.hpp). Node-stable
  /// like counter(): the reference stays valid for the life of the
  /// process, so hot paths should look it up once and cache it.
  Histogram& histogram(std::string_view name);

  void record(SpanRecord&& span);

  /// Dense id for the calling thread (assigned on first use).
  int thread_id();

  // --- snapshots (name-sorted, for deterministic exports) ---
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;
  std::vector<SpanRecord> spans() const;

  /// Nanosecond timestamp all exported span times are relative to.
  std::uint64_t epoch_ns() const;
  void set_epoch_ns(std::uint64_t ns);

  /// Drop all spans, counters, gauges and thread ids (tests only).
  void reset();

private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// --- spans ------------------------------------------------------------

/// RAII scoped span. Construction snapshots the monotonic clock and the
/// thread id; destruction records the completed span into the Registry
/// and (while the flight recorder is on) begin/end events into the
/// calling thread's flight ring. With tracing *and* flight recording
/// off the whole object is inert: one relaxed load, no clock read, no
/// allocation, no recording.
class Span {
public:
  explicit Span(std::string_view name, std::string_view cat = "");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is live and will be recorded in the trace.
  bool active() const { return active_; }

  /// Attach arguments (no-ops when inactive).
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::uint64_t value);

private:
  bool active_ = false;
  std::uint8_t flight_len_ = 0;  ///< name length captured for the ring
  char flight_name_[24];         ///< kFlightNameChars + 1 (checked in obs.cpp)
  std::uint64_t start_ns_ = 0;
  SpanRecord rec_;
};

/// Increment a registry counter (always live; independent of tracing).
/// While the flight recorder is on the delta is also stamped into the
/// calling thread's flight ring.
inline void add(std::string_view name, std::uint64_t delta = 1) {
  Registry::instance().counter(name).fetch_add(delta,
                                               std::memory_order_relaxed);
  if ((detail::mode() & detail::kModeFlight) != 0) {
    detail::flight_add(name, delta);
  }
}

/// Record a sample into a registry histogram (always live; independent
/// of tracing). Hot paths observing at high rate should cache the
/// Registry::histogram reference instead.
inline void observe(std::string_view name, std::uint64_t value) {
  Registry::instance().histogram(name).observe(value);
}

/// RAII: observe the enclosing scope's wall-clock duration in
/// nanoseconds into the named registry histogram. Always live, like
/// observe() — this is how latency seams feed their distributions even
/// when tracing is off. `name` must outlive the scope (string
/// literals in practice).
class ScopedObserve {
public:
  explicit ScopedObserve(std::string_view name)
      : name_(name), start_ns_(now_ns()) {}
  ~ScopedObserve() { observe(name_, now_ns() - start_ns_); }

  ScopedObserve(const ScopedObserve&) = delete;
  ScopedObserve& operator=(const ScopedObserve&) = delete;

private:
  std::string_view name_;
  std::uint64_t start_ns_;
};

// --- registry exporters -----------------------------------------------

/// All recorded spans as a Chrome trace JSON document (ts/dur in
/// microseconds relative to the trace epoch), with the counter snapshot
/// embedded under otherData.
std::string trace_json();

/// Flat metrics report:
/// {"counters":{...},"gauges":{...},"histograms":{...}}, name-sorted.
/// Each histogram exports count/sum/max plus derived p50/p90/p99.
std::string metrics_json();

/// Flat metrics report as CSV: kind,name,value — name-sorted, with one
/// `histogram,<name>.<stat>,<value>` row per exported histogram stat.
std::string metrics_csv();

/// Write helpers (throw cepic::Error on I/O failure).
void write_trace_json(const std::string& path);
void write_metrics_json(const std::string& path);
void write_metrics_csv(const std::string& path);

/// JSON string escaping shared by every exporter in this library.
std::string json_escape(std::string_view s);

}  // namespace cepic::obs
