// cepic::obs flight recorder — an always-on, fixed-size per-thread ring
// of recent span begin/end and counter-delta events.
//
// Unlike full tracing (`set_enabled`), the flight recorder is on by
// default and stays on in release builds: recording an event is a
// timestamp read plus a POD store into a preallocated ring slot (names
// are truncated into a fixed char buffer — no allocation, no locks
// after a thread's first event registers its ring).  When something
// faults, the last ~kFlightCapacity events per thread are still there:
// `flight_record_fault()` stamps the fault and, when a dump path was
// configured (tools' shared `--flight-out` flag), writes the merged
// rings as a Chrome trace JSON file that validates against
// schemas/chrome-trace.schema.json — a triageable last-N-milliseconds
// view of a crashing simulator run or a faulting batch task.
//
// The enable check shares the one-relaxed-load discipline with `Span`:
// both switches live in a single atomic word (obs.hpp detail::g_mode),
// so a Span constructor with tracing *and* flight recording off is
// still exactly one relaxed load.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cepic::obs {

/// Ring capacity per thread (events). Power of two.
inline constexpr std::size_t kFlightCapacity = 4096;

/// Event names are truncated to this many characters in the ring.
inline constexpr std::size_t kFlightNameChars = 23;

/// One recorded flight event. POD: rings are preallocated arrays.
struct FlightEvent {
  enum Kind : std::uint8_t {
    kBegin,    ///< span opened (value unused)
    kEnd,      ///< span closed (value = duration ns)
    kCounter,  ///< obs::add (value = delta)
    kInstant,  ///< one-off marker, e.g. a recorded fault (value unused)
  };
  std::uint64_t ts_ns = 0;
  std::uint64_t value = 0;
  Kind kind = kBegin;
  char name[kFlightNameChars + 1] = {};
};

/// True while the flight recorder accepts events (default: on).
bool flight_enabled();
void set_flight_enabled(bool on);

/// Record one event into the calling thread's ring. No-op while
/// disabled. The first event on a thread allocates & registers its
/// ring; after that the call never allocates. `ts_ns` of 0 (the
/// default) stamps the current clock; tests pass explicit timestamps
/// for deterministic dumps.
void flight_record(FlightEvent::Kind kind, std::string_view name,
                   std::uint64_t value = 0, std::uint64_t ts_ns = 0);

/// Configure the file `flight_record_fault` dumps to ("" disables
/// fault dumps; on-demand dumps via write_flight_json are unaffected).
void set_flight_fault_path(std::string path);

/// Stamp a fault instant (name "fault", arg-less; `what` truncated into
/// the event name after "fault: ") and, if a fault path is configured,
/// dump the rings there. Safe to call from catch blocks on any thread.
void flight_record_fault(std::string_view what);

/// Merged rings as a Chrome trace JSON document: span ends render as
/// 'X' complete events, unmatched begins as 'I' instants ("<name>
/// (in flight)"), counter deltas as 'C' events; per-ring recorded and
/// dropped totals land under otherData. Timestamps are relative to the
/// oldest retained event. Readers race benignly with writers on other
/// threads (torn slots are possible mid-flight); dump quiescently —
/// after joins or from a fault handler — for an exact view.
std::string flight_trace_json();

/// Write flight_trace_json() to `path` (throws cepic::Error on I/O
/// failure).
void write_flight_json(const std::string& path);

/// Tests only: zero every ring (slots become unreachable), clear the
/// fault path and re-enable recording. Rings stay allocated so cached
/// per-thread pointers never dangle.
void flight_reset();

}  // namespace cepic::obs
