#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::obs::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  const Value* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // last duplicate wins
  }
  return found;
}

const char* Value::type_name() const {
  switch (kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return "boolean";
    case Kind::Number: return "number";
    case Kind::String: return "string";
    case Kind::Array: return "array";
    case Kind::Object: return "object";
  }
  return "unknown";
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error(cat("json: ", what, " at offset ", pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(cat("expected '", c, "', got '", peek(), "'"));
    ++pos_;
  }

  bool consume_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_keyword("true")) fail("bad keyword");
        return make_bool(true);
      case 'f':
        if (!consume_keyword("false")) fail("bad keyword");
        return make_bool(false);
      case 'n':
        if (!consume_keyword("null")) fail("bad keyword");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our exporters; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a value");
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = begin;
      fail(cat("bad number '", token, "'"));
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace cepic::obs::json
