#include "obs/report.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::obs::report {

namespace {

double number_or(const json::Value& obj, const char* key, double fallback) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string string_or(const json::Value& obj, const char* key,
                      std::string fallback) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->is_string()) ? v->string : fallback;
}

}  // namespace

// --- span analytics ---------------------------------------------------

std::vector<SpanRow> extract_spans(const json::Value& trace_events) {
  std::vector<SpanRow> rows;
  for (const json::Value& e : trace_events.array) {
    if (!e.is_object()) continue;
    if (string_or(e, "ph", "") != "X") continue;
    SpanRow row;
    row.name = string_or(e, "name", "?");
    row.cat = string_or(e, "cat", "");
    row.tid = static_cast<int>(number_or(e, "tid", 0));
    row.ts = number_or(e, "ts", 0);
    row.dur = number_or(e, "dur", 0);
    row.self = row.dur;
    rows.push_back(std::move(row));
  }
  // Nesting pass per thread: sort by (tid, ts, -dur) so a parent comes
  // before its children, then walk with an enclosing-span stack.
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows[a].tid != rows[b].tid) return rows[a].tid < rows[b].tid;
    if (rows[a].ts != rows[b].ts) return rows[a].ts < rows[b].ts;
    return rows[a].dur > rows[b].dur;
  });
  std::vector<std::size_t> stack;
  for (const std::size_t i : order) {
    SpanRow& row = rows[i];
    if (!stack.empty() && rows[stack.front()].tid != row.tid) stack.clear();
    while (!stack.empty() &&
           rows[stack.back()].ts + rows[stack.back()].dur <= row.ts) {
      stack.pop_back();
    }
    if (!stack.empty()) rows[stack.back()].self -= row.dur;
    stack.push_back(i);
  }
  return rows;
}

std::vector<SpanAgg> aggregate_spans(const json::Value& trace_doc) {
  const json::Value* events = trace_doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw Error("no traceEvents array in input");
  }
  std::map<std::string, SpanAgg> by_name;
  for (const SpanRow& row : extract_spans(*events)) {
    const std::string key =
        row.cat.empty() ? row.name : cat(row.cat, ".", row.name);
    SpanAgg& agg = by_name[key];
    agg.name = key;
    agg.self += row.self;
    agg.total += row.dur;
    ++agg.count;
  }
  std::vector<SpanAgg> out;
  out.reserve(by_name.size());
  for (auto& [key, agg] : by_name) {
    (void)key;
    out.push_back(std::move(agg));
  }
  return out;
}

// --- metrics analytics ------------------------------------------------

std::vector<HistStat> histogram_stats(const json::Value& metrics_doc) {
  std::vector<HistStat> out;
  const json::Value* hists = metrics_doc.find("histograms");
  if (hists == nullptr || !hists->is_object()) return out;
  for (const auto& [name, entry] : hists->object) {
    if (!entry.is_object()) continue;
    HistStat h;
    h.name = name;
    h.count = number_or(entry, "count", 0);
    h.sum = number_or(entry, "sum", 0);
    h.max = number_or(entry, "max", 0);
    h.p50 = number_or(entry, "p50", 0);
    h.p90 = number_or(entry, "p90", 0);
    h.p99 = number_or(entry, "p99", 0);
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const HistStat& a, const HistStat& b) { return a.name < b.name; });
  return out;
}

std::vector<std::pair<std::string, double>> counter_values(
    const json::Value& metrics_doc) {
  std::vector<std::pair<std::string, double>> out;
  const json::Value* counters = metrics_doc.find("counters");
  if (counters == nullptr || !counters->is_object()) return out;
  for (const auto& [name, value] : counters->object) {
    if (value.is_number()) out.emplace_back(name, value.number);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- cross-run diff ---------------------------------------------------

namespace {

void diff_pairs(
    const std::vector<std::pair<std::string, double>>& a,
    const std::vector<std::pair<std::string, double>>& b, double floor,
    double threshold, bool flag, DiffReport& report) {
  // Both sides are name-sorted; classic merge keyed on name. Entries
  // present on one side only still produce a row (a or b stays 0).
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    DiffRow row;
    if (j >= b.size() || (i < a.size() && a[i].first < b[j].first)) {
      row.name = a[i].first;
      row.a = a[i].second;
      ++i;
    } else if (i >= a.size() || b[j].first < a[i].first) {
      row.name = b[j].first;
      row.b = b[j].second;
      ++j;
    } else {
      row.name = a[i].first;
      row.a = a[i].second;
      row.b = b[j].second;
      ++i;
      ++j;
    }
    if (row.a < floor && row.b < floor) continue;
    row.ratio = row.a > 0 ? row.b / row.a : 0;
    row.regressed = flag && row.a > 0 && row.ratio >= threshold;
    report.rows.push_back(std::move(row));
  }
}

}  // namespace

DiffReport diff_documents(const json::Value& a, const json::Value& b,
                          const DiffOptions& options) {
  const bool a_trace = a.find("traceEvents") != nullptr;
  const bool b_trace = b.find("traceEvents") != nullptr;
  const bool a_metrics = a.find("counters") != nullptr;
  const bool b_metrics = b.find("counters") != nullptr;
  if (a_trace != b_trace || a_metrics != b_metrics) {
    throw Error("diff inputs are of different kinds (trace vs metrics)");
  }
  if (!a_trace && !a_metrics) {
    throw Error(
        "diff inputs are neither traces (traceEvents) nor metrics "
        "(counters) documents");
  }

  DiffReport report;
  if (a_trace) {
    std::vector<std::pair<std::string, double>> sa, sb;
    for (const SpanAgg& agg : aggregate_spans(a)) {
      sa.emplace_back(cat(agg.name, " self(us)"), agg.self);
    }
    for (const SpanAgg& agg : aggregate_spans(b)) {
      sb.emplace_back(cat(agg.name, " self(us)"), agg.self);
    }
    diff_pairs(sa, sb, options.min_self_us, options.ratio_threshold,
               /*flag=*/true, report);
  } else {
    std::vector<std::pair<std::string, double>> ha, hb;
    const auto quantile_rows =
        [](const json::Value& doc,
           std::vector<std::pair<std::string, double>>& out) {
          for (const HistStat& h : histogram_stats(doc)) {
            out.emplace_back(cat(h.name, " p50(ns)"), h.p50);
            out.emplace_back(cat(h.name, " p90(ns)"), h.p90);
            out.emplace_back(cat(h.name, " p99(ns)"), h.p99);
          }
          std::sort(out.begin(), out.end());
        };
    quantile_rows(a, ha);
    quantile_rows(b, hb);
    diff_pairs(ha, hb, options.min_quantile_ns, options.ratio_threshold,
               /*flag=*/true, report);
    // Counter deltas ride along informationally (never flagged: a
    // counter moving is not by itself a latency regression).
    std::vector<std::pair<std::string, double>> ca = counter_values(a);
    std::vector<std::pair<std::string, double>> cb = counter_values(b);
    DiffReport counters;
    diff_pairs(ca, cb, /*floor=*/1.0, options.ratio_threshold,
               /*flag=*/false, counters);
    for (DiffRow& row : counters.rows) {
      if (row.a == row.b) continue;  // unchanged counters are noise
      row.name = cat("counter ", row.name);
      report.rows.push_back(std::move(row));
    }
  }

  for (const DiffRow& row : report.rows) {
    if (row.regressed) ++report.regressions;
  }
  std::stable_sort(report.rows.begin(), report.rows.end(),
                   [](const DiffRow& x, const DiffRow& y) {
                     if (x.regressed != y.regressed) return x.regressed;
                     return x.ratio > y.ratio;
                   });
  return report;
}

// --- bench trajectory -------------------------------------------------

namespace {

double time_unit_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

void parse_benchmarks(const json::Value& doc, BenchRun& run) {
  const json::Value* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return;
  for (const json::Value& b : benchmarks->array) {
    if (!b.is_object()) continue;
    if (string_or(b, "run_type", "") == "aggregate") continue;
    const std::string name = string_or(b, "name", "");
    if (name.empty()) continue;
    BenchMeasure m;
    m.real_time_ns = number_or(b, "real_time", 0) *
                     time_unit_ns(string_or(b, "time_unit", "ns"));
    for (const auto& [key, value] : b.object) {
      if (value.is_number() && key.find("/s") != std::string::npos) {
        m.rates[key] = value.number;
      }
    }
    run.benchmarks[name] = std::move(m);
  }
}

}  // namespace

BenchRun parse_run(const json::Value& doc, std::string label) {
  BenchRun run;
  run.label = std::move(label);
  if (const json::Value* context = doc.find("context");
      context != nullptr && context->is_object()) {
    run.date = string_or(*context, "date", "");
    run.cmake_build_type = string_or(*context, "cmake_build_type", "");
    run.commit = string_or(*context, "git_commit", "");
    if (const json::Value* dirty = context->find("git_dirty");
        dirty != nullptr && dirty->is_bool()) {
      run.git_dirty = dirty->boolean;
    }
  }
  parse_benchmarks(doc, run);
  return run;
}

std::vector<BenchRun> parse_history(const json::Value& doc) {
  const json::Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    throw Error("not a bench history: no \"runs\" array");
  }
  std::vector<BenchRun> out;
  for (const json::Value& entry : runs->array) {
    if (!entry.is_object()) continue;
    BenchRun run = parse_run(entry, string_or(entry, "label", "?"));
    // History entries carry label/commit/date at the top level (the
    // context only echoes build provenance).
    run.commit = string_or(entry, "commit", run.commit);
    run.date = string_or(entry, "date", run.date);
    out.push_back(std::move(run));
  }
  return out;
}

namespace {

// The perf-smoke guard parameters. Kept in one place so CI, the tool
// and the tests all enforce identical gates.
struct GuardPair {
  const char* numerator;
  const char* denominator;
  const char* rate_key;  ///< nullptr: wall-time ratio
  double factor;         ///< floor (rate) or ceiling (time) multiplier
  bool is_floor;
};

constexpr GuardPair kGuards[] = {
    {"BM_EpicSimulator", "BM_EpicSimulatorLegacy", "sim_cycles/s", 0.75,
     true},
    {"BM_EpicSimulator", "BM_EpicSimulatorDecode", "sim_cycles/s", 0.75,
     true},
    {"BM_Optimize", "BM_Frontend", nullptr, 1.6, false},
};

/// The pair's ratio within one run; false when either side is absent.
bool pair_ratio(const BenchRun& run, const GuardPair& guard, double* out) {
  const auto num = run.benchmarks.find(guard.numerator);
  const auto den = run.benchmarks.find(guard.denominator);
  if (num == run.benchmarks.end() || den == run.benchmarks.end()) {
    return false;
  }
  double a = 0, b = 0;
  if (guard.rate_key == nullptr) {
    a = num->second.real_time_ns;
    b = den->second.real_time_ns;
  } else {
    const auto ra = num->second.rates.find(guard.rate_key);
    const auto rb = den->second.rates.find(guard.rate_key);
    if (ra == num->second.rates.end() || rb == den->second.rates.end()) {
      return false;
    }
    a = ra->second;
    b = rb->second;
  }
  if (b == 0) return false;
  *out = a / b;
  return true;
}

}  // namespace

std::vector<RatioCheck> check_ratios(const std::vector<BenchRun>& history,
                                     const BenchRun& fresh) {
  std::vector<RatioCheck> out;
  for (const GuardPair& guard : kGuards) {
    RatioCheck check;
    check.name = cat(guard.numerator, "/", guard.denominator,
                     guard.rate_key == nullptr ? " (time)" : "");
    check.is_floor = guard.is_floor;
    // The last committed release-build run carrying both benchmarks is
    // the baseline (older history may predate a benchmark).
    for (const BenchRun& run : history) {
      if (!run.release_eligible()) continue;
      double ratio = 0;
      if (pair_ratio(run, guard, &ratio)) {
        check.baseline_label = run.label;
        check.baseline = ratio;
      }
    }
    if (check.baseline_label.empty()) {
      out.push_back(std::move(check));  // no baseline yet: skipped, ok
      continue;
    }
    check.limit = guard.factor * check.baseline;
    if (!pair_ratio(fresh, guard, &check.fresh)) {
      check.ok = false;  // baseline exists but the fresh run lost a side
      out.push_back(std::move(check));
      continue;
    }
    check.ok = guard.is_floor ? check.fresh >= check.limit
                              : check.fresh <= check.limit;
    out.push_back(std::move(check));
  }
  return out;
}

}  // namespace cepic::obs::report
