#include "obs/schema.hpp"

#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::obs::schema {

namespace {

using json::Value;

bool type_matches(const std::string& type, const Value& v) {
  if (type == "object") return v.is_object();
  if (type == "array") return v.is_array();
  if (type == "string") return v.is_string();
  if (type == "boolean") return v.is_bool();
  if (type == "null") return v.is_null();
  if (type == "number") return v.is_number();
  if (type == "integer") {
    return v.is_number() &&
           v.number == static_cast<double>(static_cast<long long>(v.number));
  }
  throw Error(cat("schema: unknown type '", type, "'"));
}

bool values_equal(const Value& a, const Value& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Value::Kind::Null: return true;
    case Value::Kind::Bool: return a.boolean == b.boolean;
    case Value::Kind::Number: return a.number == b.number;
    case Value::Kind::String: return a.string == b.string;
    case Value::Kind::Array:
      if (a.array.size() != b.array.size()) return false;
      for (std::size_t i = 0; i < a.array.size(); ++i) {
        if (!values_equal(a.array[i], b.array[i])) return false;
      }
      return true;
    case Value::Kind::Object:
      if (a.object.size() != b.object.size()) return false;
      for (std::size_t i = 0; i < a.object.size(); ++i) {
        if (a.object[i].first != b.object[i].first ||
            !values_equal(a.object[i].second, b.object[i].second)) {
          return false;
        }
      }
      return true;
  }
  return false;
}

std::string render(const Value& v) {
  switch (v.kind) {
    case Value::Kind::Null: return "null";
    case Value::Kind::Bool: return v.boolean ? "true" : "false";
    case Value::Kind::Number: return cat(v.number);
    case Value::Kind::String: return cat("\"", v.string, "\"");
    case Value::Kind::Array: return cat("array[", v.array.size(), "]");
    case Value::Kind::Object: return cat("object{", v.object.size(), "}");
  }
  return "?";
}

/// "^prefix" / "suffix$" pattern match (the only forms the checked-in
/// schemas use for patternProperties).
bool pattern_matches(const std::string& pattern, const std::string& key) {
  std::string p = pattern;
  bool anchored_start = false;
  bool anchored_end = false;
  if (!p.empty() && p.front() == '^') {
    anchored_start = true;
    p.erase(p.begin());
  }
  if (!p.empty() && p.back() == '$') {
    anchored_end = true;
    p.pop_back();
  }
  if (anchored_start && anchored_end) return key == p;
  if (anchored_start) return key.rfind(p, 0) == 0;
  if (anchored_end) {
    return key.size() >= p.size() &&
           key.compare(key.size() - p.size(), p.size(), p) == 0;
  }
  return key.find(p) != std::string::npos;
}

void check(const Value& schema, const Value& value, const std::string& path,
           std::vector<std::string>& errors) {
  if (!schema.is_object()) {
    throw Error("schema: every schema node must be an object");
  }

  if (const Value* type = schema.find("type")) {
    bool ok = false;
    if (type->is_string()) {
      ok = type_matches(type->string, value);
    } else if (type->is_array()) {
      for (const Value& t : type->array) {
        if (t.is_string() && type_matches(t.string, value)) {
          ok = true;
          break;
        }
      }
    } else {
      throw Error("schema: 'type' must be a string or array of strings");
    }
    if (!ok) {
      errors.push_back(cat(path, ": expected type ",
                           type->is_string() ? type->string : "(one of list)",
                           ", got ", value.type_name()));
      return;  // further keyword checks would only cascade
    }
  }

  if (const Value* cv = schema.find("const")) {
    if (!values_equal(*cv, value)) {
      errors.push_back(cat(path, ": expected const ", render(*cv), ", got ",
                           render(value)));
    }
  }

  if (const Value* en = schema.find("enum")) {
    bool ok = false;
    for (const Value& option : en->array) {
      if (values_equal(option, value)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      errors.push_back(cat(path, ": value ", render(value),
                           " not in enum"));
    }
  }

  if (value.is_number()) {
    if (const Value* lo = schema.find("minimum")) {
      if (value.number < lo->number) {
        errors.push_back(cat(path, ": ", value.number, " below minimum ",
                             lo->number));
      }
    }
    if (const Value* hi = schema.find("maximum")) {
      if (value.number > hi->number) {
        errors.push_back(cat(path, ": ", value.number, " above maximum ",
                             hi->number));
      }
    }
  }

  if (value.is_object()) {
    if (const Value* req = schema.find("required")) {
      for (const Value& name : req->array) {
        if (value.find(name.string) == nullptr) {
          errors.push_back(
              cat(path, ": missing required property '", name.string, "'"));
        }
      }
    }
    const Value* props = schema.find("properties");
    const Value* patterns = schema.find("patternProperties");
    const Value* additional = schema.find("additionalProperties");
    for (const auto& [key, member] : value.object) {
      const std::string member_path = cat(path, ".", key);
      bool matched = false;
      if (props != nullptr) {
        if (const Value* sub = props->find(key)) {
          matched = true;
          check(*sub, member, member_path, errors);
        }
      }
      if (patterns != nullptr) {
        for (const auto& [pattern, sub] : patterns->object) {
          if (pattern_matches(pattern, key)) {
            matched = true;
            check(sub, member, member_path, errors);
          }
        }
      }
      if (!matched && additional != nullptr) {
        if (additional->is_bool()) {
          if (!additional->boolean) {
            errors.push_back(
                cat(path, ": unexpected property '", key, "'"));
          }
        } else {
          check(*additional, member, member_path, errors);
        }
      }
    }
  }

  if (value.is_array()) {
    if (const Value* min_items = schema.find("minItems")) {
      if (static_cast<double>(value.array.size()) < min_items->number) {
        errors.push_back(cat(path, ": array has ", value.array.size(),
                             " item(s), fewer than minItems ",
                             min_items->number));
      }
    }
    if (const Value* items = schema.find("items")) {
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        check(*items, value.array[i], cat(path, "[", i, "]"), errors);
      }
    }
  }
}

}  // namespace

std::vector<std::string> validate(const json::Value& schema,
                                  const json::Value& value) {
  std::vector<std::string> errors;
  check(schema, value, "$", errors);
  return errors;
}

}  // namespace cepic::obs::schema
