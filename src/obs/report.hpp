// cepic::obs::report — offline analytics over exported observability
// artifacts, shared between cepic-prof and the unit tests.
//
// Three families of helpers over parsed JSON documents (obs/json.hpp):
//
//  * **Span analytics** on Chrome trace exports: extract the 'X'
//    complete events, compute per-span self time (duration minus
//    same-thread nested children) and aggregate by `cat.name`.
//
//  * **Cross-run diff**: compare two trace exports (per-span self/total
//    time) or two metrics exports (per-histogram quantiles, counters)
//    and flag regressions — rows whose ratio crosses a threshold above
//    a noise floor. `cepic-prof diff A B [--check]` prints/enforces
//    the result.
//
//  * **Bench trajectory**: parse the committed BENCH_toolspeed.json
//    history and raw google-benchmark JSON runs, summarize how each
//    benchmark moved run over run, and enforce the execution-tier and
//    optimiser ratio guards (`cepic-prof bench --check` — the CI
//    perf-smoke gate).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cepic::obs::report {

// --- span analytics ---------------------------------------------------

/// One 'X' event with its computed self time.
struct SpanRow {
  std::string name;
  std::string cat;
  int tid = 0;
  double ts = 0;   ///< microseconds
  double dur = 0;  ///< microseconds
  double self = 0; ///< dur minus same-thread fully-nested children
};

/// Extract complete events from a traceEvents array and fill in self
/// times (nesting resolved per thread by timestamp containment).
std::vector<SpanRow> extract_spans(const json::Value& trace_events);

/// Per-span aggregate over a whole trace document, keyed "cat.name"
/// (bare name when the category is empty), name-sorted.
struct SpanAgg {
  std::string name;
  double self = 0;
  double total = 0;
  std::uint64_t count = 0;
};
std::vector<SpanAgg> aggregate_spans(const json::Value& trace_doc);

// --- metrics analytics ------------------------------------------------

/// One histogram entry of a metrics export.
struct HistStat {
  std::string name;
  double count = 0, sum = 0, max = 0, p50 = 0, p90 = 0, p99 = 0;
};
std::vector<HistStat> histogram_stats(const json::Value& metrics_doc);

/// Name-sorted counter snapshot of a metrics export.
std::vector<std::pair<std::string, double>> counter_values(
    const json::Value& metrics_doc);

// --- cross-run diff ---------------------------------------------------

struct DiffOptions {
  /// Flag a row as regressed when B >= threshold * A (bigger is worse
  /// for every compared quantity: self time, latency quantiles).
  double ratio_threshold = 1.5;
  /// Ignore span rows with both sides' self time below this (us).
  double min_self_us = 100.0;
  /// Ignore histogram quantile rows with both sides below this (ns).
  double min_quantile_ns = 10000.0;
};

struct DiffRow {
  std::string name;     ///< what is compared, e.g. "opt.cse self(us)"
  double a = 0, b = 0;  ///< the two sides
  double ratio = 0;     ///< b / a (0 when a == 0)
  bool regressed = false;
};

struct DiffReport {
  std::vector<DiffRow> rows;  ///< regressed first, then by descending ratio
  unsigned regressions = 0;
};

/// Diff two exports of the same kind: trace vs trace (span self/total
/// time) or metrics vs metrics (histogram quantiles + counters, the
/// latter informational only). Throws cepic::Error when the documents
/// are neither, or of mismatched kinds.
DiffReport diff_documents(const json::Value& a, const json::Value& b,
                          const DiffOptions& options = {});

// --- bench trajectory -------------------------------------------------

/// One benchmark measurement of one run, normalized to nanoseconds.
struct BenchMeasure {
  double real_time_ns = 0;
  std::map<std::string, double> rates;  ///< "sim_cycles/s" etc.
};

/// One recorded run (an entry of BENCH_toolspeed.json's "runs", or a
/// raw google-benchmark document).
struct BenchRun {
  std::string label;
  std::string commit;
  std::string date;
  std::string cmake_build_type;
  bool git_dirty = false;
  std::map<std::string, BenchMeasure> benchmarks;

  /// Non-release runs are excluded from ratio baselines.
  bool release_eligible() const {
    return label.find("non-release") == std::string::npos;
  }
};

/// Parse a raw google-benchmark JSON document (one process run).
/// Aggregate rows (run_type == "aggregate") are skipped.
BenchRun parse_run(const json::Value& doc, std::string label);

/// Parse the committed history ({"runs":[...]}), oldest first. Throws
/// cepic::Error when the document has no "runs" array.
std::vector<BenchRun> parse_history(const json::Value& doc);

/// One enforced ratio guard (see check_ratios).
struct RatioCheck {
  std::string name;            ///< e.g. "BM_EpicSimulator/BM_EpicSimulatorLegacy"
  std::string baseline_label;  ///< empty: no committed baseline, skipped
  double baseline = 0;
  double fresh = 0;
  double limit = 0;
  bool is_floor = true;  ///< fresh must stay >= limit (else <= limit)
  bool ok = true;
};

/// The perf-smoke gate: the within-process execution-tier sim_cycles/s
/// ratios must stay above 0.75x the last committed baseline carrying
/// both benchmarks, and the BM_Optimize/BM_Frontend wall-time ratio
/// below 1.6x. `fresh` is typically a freshly recorded run; pass the
/// history's own last run to audit the committed trajectory. Pairs
/// with no baseline (or missing from `fresh`) are reported with an
/// empty baseline_label / fresh of 0 and ok == true (skipped), except
/// that a pair present in the baseline but missing from `fresh` fails.
std::vector<RatioCheck> check_ratios(const std::vector<BenchRun>& history,
                                     const BenchRun& fresh);

}  // namespace cepic::obs::report
