// Minimal dependency-free JSON parser for the observability toolchain:
// cepic-prof reads Chrome trace / metrics files back, and the schema
// validator (obs/schema.hpp) checks exported files against the
// checked-in schemas without requiring python3-jsonschema in CI.
//
// Supports the full JSON grammar the exporters emit (objects, arrays,
// strings with escapes, numbers, booleans, null). Parsing failures
// throw cepic::Error with a byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cepic::obs::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered; duplicate keys keep the last occurrence visible
  /// through find().
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// The JSON type name ("object", "array", ...) for diagnostics.
  const char* type_name() const;
};

/// Parse a complete JSON document (trailing whitespace allowed; any
/// other trailing content is an error). Throws cepic::Error.
Value parse(std::string_view text);

}  // namespace cepic::obs::json
