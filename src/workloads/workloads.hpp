// The paper's four benchmarks (§5.2, Table 1, Figs. 3-5) as MiniC
// programs plus bit-exact native reference implementations.
//
//   SHA      — SHA-256 of a dim x dim RGB image (3 bytes/pixel)
//   AES      — AES-128 ECB: encrypt "Hello AES World!" n times, then
//              decrypt back and check
//   DCT      — fixed-point 8x8 DCT encode + decode of a dim x dim
//              greyscale image, reporting reconstruction checksums
//   DIJKSTRA — all-pairs shortest paths on an adjacency-matrix graph
//
// The paper reads a 256x256 PPM image; we synthesise input data inside
// the program with the same xorshift32 PRNG that the native references
// use, so every execution (IR interpreter, EPIC simulator, SARM
// simulator, native golden) sees identical bytes. Sizes are parameters:
// the default bench sizes are scaled down from the paper's so the whole
// harness runs in seconds (shape, not absolute time, is the target —
// see EXPERIMENTS.md).
//
// Every workload's program emits its results through out(); the golden
// function returns the exact expected stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cepic::workloads {

struct Workload {
  std::string name;
  std::string minic_source;
  std::vector<std::uint32_t> expected_output;  ///< native golden stream
};

/// SHA-256 of a dim*dim*3-byte synthetic image. Output: 8 digest words.
Workload make_sha(int dim = 32);

/// AES-128: encrypt the 16-byte message `iterations` times (chained),
/// decrypt back, output the 16 recovered bytes, a chained ciphertext
/// checksum, and a match flag.
Workload make_aes(int iterations = 100);

/// Fixed-point 8x8 DCT encode+decode of a dim x dim image. Output:
/// coefficient checksum, reconstruction checksum, total absolute error.
Workload make_dct(int dim = 32);

/// All-pairs shortest paths (repeated Dijkstra, linear min scan) over a
/// synthetic dense graph. Output: checksum of all pair distances.
Workload make_dijkstra(int nodes = 16);

/// All four at their given sizes, in paper order (SHA, AES, DCT,
/// Dijkstra).
std::vector<Workload> all_workloads(int sha_dim, int aes_iters, int dct_dim,
                                    int dijkstra_nodes);

// ---- native reference primitives (exposed for validation tests) ----

/// SHA-256 digest of a byte string.
std::vector<std::uint32_t> sha256_reference(
    const std::vector<std::uint8_t>& message);

/// AES-128 single-block encrypt/decrypt (FIPS-197).
std::vector<std::uint8_t> aes128_encrypt_block(
    const std::vector<std::uint8_t>& key, const std::vector<std::uint8_t>& in);
std::vector<std::uint8_t> aes128_decrypt_block(
    const std::vector<std::uint8_t>& key, const std::vector<std::uint8_t>& in);

/// The fixed-point DCT coefficient table shared by the MiniC source and
/// the native reference: round(cos((2x+1)*u*pi/16) * 2048).
const int* dct_coeff_table();  // 8x8, row u, column x

/// Synthetic input byte stream (xorshift32, seed 1): byte i is the top
/// byte of the i+1'th PRNG state.
std::vector<std::uint8_t> synthetic_bytes(std::size_t n);

}  // namespace cepic::workloads
