// AES-128 workload: MiniC source generator + FIPS-197 native reference.
// The paper's benchmark "encrypts `Hello AES World!' 1000 times and then
// decrypts it"; we chain the block through `iterations` encryptions,
// then decrypt the same number of times and verify the round trip.
#include <array>

#include "support/text.hpp"
#include "workloads/workloads.hpp"

namespace cepic::workloads {

namespace {

// ---- GF(2^8) tables ----

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t x, std::uint8_t y) {
  std::uint8_t r = 0;
  while (y != 0) {
    if (y & 1) r ^= x;
    x = xtime(x);
    y >>= 1;
  }
  return r;
}

const std::array<std::uint8_t, 256>& sbox() {
  static const std::array<std::uint8_t, 256> table = [] {
    // Multiplicative inverses by brute force, then the affine transform.
    std::array<std::uint8_t, 256> inv{};
    for (int x = 1; x < 256; ++x) {
      for (int y = 1; y < 256; ++y) {
        if (gmul(static_cast<std::uint8_t>(x),
                 static_cast<std::uint8_t>(y)) == 1) {
          inv[x] = static_cast<std::uint8_t>(y);
          break;
        }
      }
    }
    std::array<std::uint8_t, 256> s{};
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t b = inv[x];
      std::uint8_t r = 0;
      for (int i = 0; i < 8; ++i) {
        const int bit = ((b >> i) & 1) ^ ((b >> ((i + 4) & 7)) & 1) ^
                        ((b >> ((i + 5) & 7)) & 1) ^
                        ((b >> ((i + 6) & 7)) & 1) ^
                        ((b >> ((i + 7) & 7)) & 1) ^ ((0x63 >> i) & 1);
        r |= static_cast<std::uint8_t>(bit << i);
      }
      s[x] = r;
    }
    return s;
  }();
  return table;
}

const std::array<std::uint8_t, 256>& inv_sbox() {
  static const std::array<std::uint8_t, 256> table = [] {
    std::array<std::uint8_t, 256> t{};
    for (int i = 0; i < 256; ++i) t[sbox()[i]] = static_cast<std::uint8_t>(i);
    return t;
  }();
  return table;
}

using Block = std::array<std::uint8_t, 16>;
using RoundKeys = std::array<std::uint8_t, 176>;

RoundKeys expand_key(const std::vector<std::uint8_t>& key) {
  RoundKeys rk{};
  for (int i = 0; i < 16; ++i) rk[i] = key[i];
  std::uint8_t rcon = 1;
  for (int i = 16; i < 176; i += 4) {
    std::uint8_t t[4] = {rk[i - 4], rk[i - 3], rk[i - 2], rk[i - 1]};
    if (i % 16 == 0) {
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(sbox()[t[1]] ^ rcon);
      t[1] = sbox()[t[2]];
      t[2] = sbox()[t[3]];
      t[3] = sbox()[tmp];
      rcon = xtime(rcon);
    }
    for (int j = 0; j < 4; ++j) rk[i + j] = rk[i - 16 + j] ^ t[j];
  }
  return rk;
}

// State is column-major as in FIPS-197: state[r + 4c].
void add_round_key(Block& s, const RoundKeys& rk, int round) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[round * 16 + i];
}

void sub_bytes(Block& s, bool inverse) {
  const auto& t = inverse ? inv_sbox() : sbox();
  for (auto& b : s) b = t[b];
}

void shift_rows(Block& s, bool inverse) {
  Block out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int shift = inverse ? -r : r;
      out[r + 4 * c] = s[r + 4 * (((c + shift) % 4 + 4) % 4)];
    }
  }
  s = out;
}

void mix_columns(Block& s, bool inverse) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t a[4];
    for (int r = 0; r < 4; ++r) a[r] = s[r + 4 * c];
    for (int r = 0; r < 4; ++r) {
      if (!inverse) {
        s[r + 4 * c] = static_cast<std::uint8_t>(
            gmul(a[r], 2) ^ gmul(a[(r + 1) % 4], 3) ^ a[(r + 2) % 4] ^
            a[(r + 3) % 4]);
      } else {
        s[r + 4 * c] = static_cast<std::uint8_t>(
            gmul(a[r], 14) ^ gmul(a[(r + 1) % 4], 11) ^
            gmul(a[(r + 2) % 4], 13) ^ gmul(a[(r + 3) % 4], 9));
      }
    }
  }
}

Block encrypt_block_ref(const RoundKeys& rk, Block s) {
  add_round_key(s, rk, 0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes(s, false);
    shift_rows(s, false);
    mix_columns(s, false);
    add_round_key(s, rk, round);
  }
  sub_bytes(s, false);
  shift_rows(s, false);
  add_round_key(s, rk, 10);
  return s;
}

Block decrypt_block_ref(const RoundKeys& rk, Block s) {
  add_round_key(s, rk, 10);
  shift_rows(s, true);
  sub_bytes(s, true);
  for (int round = 9; round >= 1; --round) {
    add_round_key(s, rk, round);
    mix_columns(s, true);
    shift_rows(s, true);
    sub_bytes(s, true);
  }
  add_round_key(s, rk, 0);
  return s;
}

std::string bytes_list(const std::uint8_t* v, std::size_t n) {
  std::string s;
  for (std::size_t i = 0; i < n; ++i) {
    if (i) s += ", ";
    s += cat("0x", std::hex, static_cast<unsigned>(v[i]), std::dec);
  }
  return s;
}

constexpr const char* kMessage = "Hello AES World!";
constexpr const char* kKey = "CEPIC secret key";

}  // namespace

std::vector<std::uint8_t> aes128_encrypt_block(
    const std::vector<std::uint8_t>& key,
    const std::vector<std::uint8_t>& in) {
  Block s{};
  for (int i = 0; i < 16; ++i) s[i] = in[i];
  s = encrypt_block_ref(expand_key(key), s);
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> aes128_decrypt_block(
    const std::vector<std::uint8_t>& key,
    const std::vector<std::uint8_t>& in) {
  Block s{};
  for (int i = 0; i < 16; ++i) s[i] = in[i];
  s = decrypt_block_ref(expand_key(key), s);
  return {s.begin(), s.end()};
}

Workload make_aes(int iterations) {
  std::string src = cat(
      "// AES-128: encrypt the message ", iterations,
      " times, decrypt back, verify\n",
      "int SBOX[256] = {", bytes_list(sbox().data(), 256), "};\n",
      "int INV_SBOX[256] = {", bytes_list(inv_sbox().data(), 256), "};\n",
      "int key[16] = \"", kKey, "\";\n",
      "int msg[16] = \"", kMessage, "\";\n",
      "int rk[176];\n",
      "int st[16];\n",
      "int tmp[16];\n",
      R"(
int xt(int x) { return ((x << 1) ^ ((0 - (x >>> 7)) & 27)) & 255; }

int gmul(int x, int y) {
  int r = 0;
  while (y > 0) {
    if (y & 1) r ^= x;
    x = xt(x);
    y = y >>> 1;
  }
  return r & 255;
}

void expand_key() {
  for (int i = 0; i < 16; i++) rk[i] = key[i];
  int rcon = 1;
  for (int i = 16; i < 176; i += 4) {
    int t0 = rk[i-4]; int t1 = rk[i-3]; int t2 = rk[i-2]; int t3 = rk[i-1];
    if (i % 16 == 0) {
      int old = t0;
      t0 = SBOX[t1] ^ rcon;
      t1 = SBOX[t2];
      t2 = SBOX[t3];
      t3 = SBOX[old];
      rcon = xt(rcon);
    }
    rk[i]   = rk[i-16] ^ t0;
    rk[i+1] = rk[i-15] ^ t1;
    rk[i+2] = rk[i-14] ^ t2;
    rk[i+3] = rk[i-13] ^ t3;
  }
}

void add_round_key(int round) {
  for (int i = 0; i < 16; i++) st[i] ^= rk[round * 16 + i];
}

void shift_rows(int inverse) {
  for (int i = 0; i < 16; i++) tmp[i] = st[i];
  for (int r = 0; r < 4; r++) {
    for (int c = 0; c < 4; c++) {
      int from;
      if (inverse) { from = (c - r + 4) % 4; } else { from = (c + r) % 4; }
      st[r + 4 * c] = tmp[r + 4 * from];
    }
  }
}

void encrypt() {
  add_round_key(0);
  for (int round = 1; round <= 9; round++) {
    for (int i = 0; i < 16; i++) st[i] = SBOX[st[i]];
    shift_rows(0);
    for (int c = 0; c < 4; c++) {
      int a0 = st[4*c]; int a1 = st[4*c+1]; int a2 = st[4*c+2]; int a3 = st[4*c+3];
      st[4*c]   = xt(a0) ^ (xt(a1) ^ a1) ^ a2 ^ a3;
      st[4*c+1] = a0 ^ xt(a1) ^ (xt(a2) ^ a2) ^ a3;
      st[4*c+2] = a0 ^ a1 ^ xt(a2) ^ (xt(a3) ^ a3);
      st[4*c+3] = (xt(a0) ^ a0) ^ a1 ^ a2 ^ xt(a3);
    }
    add_round_key(round);
  }
  for (int i = 0; i < 16; i++) st[i] = SBOX[st[i]];
  shift_rows(0);
  add_round_key(10);
}

void decrypt() {
  add_round_key(10);
  shift_rows(1);
  for (int i = 0; i < 16; i++) st[i] = INV_SBOX[st[i]];
  for (int round = 9; round >= 1; round--) {
    add_round_key(round);
    for (int c = 0; c < 4; c++) {
      int a0 = st[4*c]; int a1 = st[4*c+1]; int a2 = st[4*c+2]; int a3 = st[4*c+3];
      st[4*c]   = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
      st[4*c+1] = gmul(a0, 9)  ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
      st[4*c+2] = gmul(a0, 13) ^ gmul(a1, 9)  ^ gmul(a2, 14) ^ gmul(a3, 11);
      st[4*c+3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9)  ^ gmul(a3, 14);
    }
    shift_rows(1);
    for (int i = 0; i < 16; i++) st[i] = INV_SBOX[st[i]];
  }
  add_round_key(0);
}

int main() {
)",
      "  int iters = ", iterations, ";\n",
      R"(
  expand_key();
  for (int i = 0; i < 16; i++) st[i] = msg[i];
  int cks = 0;
  for (int it = 0; it < iters; it++) {
    encrypt();
    cks ^= (st[0] << 24) | (st[5] << 16) | (st[10] << 8) | st[15];
    cks = (cks << 1) | (cks >>> 31);
  }
  for (int it = 0; it < iters; it++) decrypt();
  int match = 1;
  for (int i = 0; i < 16; i++) {
    out(st[i]);
    if (st[i] != msg[i]) match = 0;
  }
  out(cks);
  out(match);
  return match;
}
)");

  // Native golden: same chained loop.
  const std::vector<std::uint8_t> key(kKey, kKey + 16);
  const RoundKeys rk = expand_key(key);
  Block s{};
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(kMessage[i]);
  std::uint32_t cks = 0;
  for (int it = 0; it < iterations; ++it) {
    s = encrypt_block_ref(rk, s);
    cks ^= (static_cast<std::uint32_t>(s[0]) << 24) |
           (static_cast<std::uint32_t>(s[5]) << 16) |
           (static_cast<std::uint32_t>(s[10]) << 8) |
           static_cast<std::uint32_t>(s[15]);
    cks = (cks << 1) | (cks >> 31);
  }
  for (int it = 0; it < iterations; ++it) s = decrypt_block_ref(rk, s);

  Workload w;
  w.name = "aes";
  w.minic_source = std::move(src);
  for (int i = 0; i < 16; ++i) w.expected_output.push_back(s[i]);
  w.expected_output.push_back(cks);
  w.expected_output.push_back(1);  // round-trip must match
  return w;
}

}  // namespace cepic::workloads
