// SHA-256 workload: MiniC source generator + FIPS-180 native reference.
#include <array>

#include "support/bits.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "workloads/workloads.hpp"

namespace cepic::workloads {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kH0 = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::string words_list(const std::uint32_t* v, std::size_t n) {
  std::string s;
  for (std::size_t i = 0; i < n; ++i) {
    if (i) s += ", ";
    s += cat("0x", std::hex, v[i], std::dec);
  }
  return s;
}

}  // namespace

std::vector<std::uint8_t> synthetic_bytes(std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  std::uint32_t s = 1;
  for (std::size_t i = 0; i < n; ++i) {
    s = xorshift32(s);
    bytes[i] = static_cast<std::uint8_t>(s >> 24);
  }
  return bytes;
}

std::vector<std::uint32_t> sha256_reference(
    const std::vector<std::uint8_t>& message) {
  std::vector<std::uint8_t> m = message;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(m.size()) * 8;
  m.push_back(0x80);
  while (m.size() % 64 != 56) m.push_back(0);
  for (int shift = 56; shift >= 0; shift -= 8) {
    m.push_back(static_cast<std::uint8_t>(bit_len >> shift));
  }

  std::array<std::uint32_t, 8> h = kH0;
  std::array<std::uint32_t, 64> w{};
  for (std::size_t off = 0; off < m.size(); off += 64) {
    for (int t = 0; t < 16; ++t) {
      w[t] = (static_cast<std::uint32_t>(m[off + 4 * t]) << 24) |
             (static_cast<std::uint32_t>(m[off + 4 * t + 1]) << 16) |
             (static_cast<std::uint32_t>(m[off + 4 * t + 2]) << 8) |
             static_cast<std::uint32_t>(m[off + 4 * t + 3]);
    }
    for (int t = 16; t < 64; ++t) {
      const std::uint32_t s0 = rotr32(w[t - 15], 7) ^ rotr32(w[t - 15], 18) ^
                               (w[t - 15] >> 3);
      const std::uint32_t s1 = rotr32(w[t - 2], 17) ^ rotr32(w[t - 2], 19) ^
                               (w[t - 2] >> 10);
      w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int t = 0; t < 64; ++t) {
      const std::uint32_t S1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + S1 + ch + kK[t] + w[t];
      const std::uint32_t S0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = S0 + maj;
      hh = g; g = f; f = e; e = d + t1;
      d = c; c = b; b = a; a = t1 + t2;
    }
    h[0] += a; h[1] += b; h[2] += c; h[3] += d;
    h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
  }
  return {h.begin(), h.end()};
}

Workload make_sha(int dim) {
  const int n = dim * dim * 3;
  // Padded message size (whole 64-byte blocks).
  const int padded = ((n + 8) / 64 + 1) * 64;

  std::string src = cat(
      "// SHA-256 of a ", dim, "x", dim, " synthetic RGB image\n",
      "int K[64] = {", words_list(kK.data(), kK.size()), "};\n",
      "int H[8] = {", words_list(kH0.data(), kH0.size()), "};\n",
      "int msg[", padded, "];\n",
      "int W[64];\n",
      R"(
void sha_block(int buf[], int off) {
  for (int t = 0; t < 16; t++) {
    int i = off + 4 * t;
    W[t] = (buf[i] << 24) | (buf[i+1] << 16) | (buf[i+2] << 8) | buf[i+3];
  }
  for (int t = 16; t < 64; t++) {
    int x = W[t-15];
    int s0 = ((x >>> 7) | (x << 25)) ^ ((x >>> 18) | (x << 14)) ^ (x >>> 3);
    int y = W[t-2];
    int s1 = ((y >>> 17) | (y << 15)) ^ ((y >>> 19) | (y << 13)) ^ (y >>> 10);
    W[t] = W[t-16] + s0 + W[t-7] + s1;
  }
  int a = H[0]; int b = H[1]; int c = H[2]; int d = H[3];
  int e = H[4]; int f = H[5]; int g = H[6]; int h = H[7];
  for (int t = 0; t < 64; t++) {
    int S1 = ((e >>> 6) | (e << 26)) ^ ((e >>> 11) | (e << 21))
           ^ ((e >>> 25) | (e << 7));
    int ch = (e & f) ^ (~e & g);
    int t1 = h + S1 + ch + K[t] + W[t];
    int S0 = ((a >>> 2) | (a << 30)) ^ ((a >>> 13) | (a << 19))
           ^ ((a >>> 22) | (a << 10));
    int maj = (a & b) ^ (a & c) ^ (b & c);
    int t2 = S0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }
  H[0] += a; H[1] += b; H[2] += c; H[3] += d;
  H[4] += e; H[5] += f; H[6] += g; H[7] += h;
}
)",
      "int main() {\n",
      "  int n = ", n, ";\n",
      R"(
  // Synthesise the image bytes (xorshift32, seed 1).
  int s = 1;
  for (int i = 0; i < n; i++) {
    s ^= s << 13; s ^= s >>> 17; s ^= s << 5;
    msg[i] = (s >>> 24) & 255;
  }
  // FIPS-180 padding: 0x80, zeros, 64-bit bit length (big-endian).
  msg[n] = 0x80;
)",
      "  int padded = ", padded, ";\n",
      R"(
  for (int i = n + 1; i < padded - 8; i++) msg[i] = 0;
  int bits = n << 3;
  msg[padded-8] = 0; msg[padded-7] = 0; msg[padded-6] = 0; msg[padded-5] = 0;
  msg[padded-4] = (bits >>> 24) & 255;
  msg[padded-3] = (bits >>> 16) & 255;
  msg[padded-2] = (bits >>> 8) & 255;
  msg[padded-1] = bits & 255;
  for (int off = 0; off < padded; off += 64) sha_block(msg, off);
  for (int i = 0; i < 8; i++) out(H[i]);
  return H[0];
}
)");

  Workload w;
  w.name = "sha";
  w.minic_source = std::move(src);
  w.expected_output = sha256_reference(synthetic_bytes(n));
  return w;
}

}  // namespace cepic::workloads
