// Dijkstra workload: all-pairs shortest paths over a synthetic dense
// graph held as an adjacency matrix (paper §5.2: "finds the shortest
// path between every pair of nodes in a large graph represented by an
// adjacency matrix using Dijkstra's algorithm"). Linear min-scan per
// extraction — the classic MiBench formulation, branch- and
// compare-bound rather than arithmetic-bound.
#include <vector>

#include "support/prng.hpp"
#include "support/text.hpp"
#include "workloads/workloads.hpp"

namespace cepic::workloads {

namespace {

constexpr int kInf = 1000000;

/// Edge weights: ~75% density, weights 1..99, xorshift32(seed 2).
std::vector<int> graph_weights(int nodes) {
  std::vector<int> w(static_cast<std::size_t>(nodes) * nodes, 0);
  std::uint32_t s = 2;
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i == j) continue;
      s = xorshift32(s);
      const std::uint32_t r = s >> 16;
      w[i * nodes + j] = (r % 4) == 0 ? 0 : 1 + static_cast<int>(r % 99);
    }
  }
  return w;
}

}  // namespace

Workload make_dijkstra(int nodes) {
  std::string src = cat(
      "// all-pairs Dijkstra on a ", nodes, "-node adjacency matrix\n",
      "int adj[", nodes * nodes, "];\n",
      "int dist[", nodes, "];\n",
      "int done[", nodes, "];\n",
      R"(
int dijkstra(int src, int n) {
  for (int i = 0; i < n; i++) { dist[i] = 1000000; done[i] = 0; }
  dist[src] = 0;
  int sum = 0;
  for (int iter = 0; iter < n; iter++) {
    int best = 1000000;
    int u = -1;
    for (int i = 0; i < n; i++) {
      if (!done[i] && dist[i] < best) { best = dist[i]; u = i; }
    }
    if (u < 0) break;
    done[u] = 1;
    sum += dist[u];
    int row = u * n;
    for (int v = 0; v < n; v++) {
      int w = adj[row + v];
      if (w != 0) {
        int alt = dist[u] + w;
        if (alt < dist[v]) dist[v] = alt;
      }
    }
  }
  return sum;
}

int main() {
)",
      "  int n = ", nodes, ";\n",
      R"(
  // Synthesise the graph (xorshift32, seed 2; ~75% edge density).
  int s = 2;
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      if (i == j) { adj[i * n + j] = 0; continue; }
      s ^= s << 13; s ^= s >>> 17; s ^= s << 5;
      int r = s >>> 16;
      if (r % 4 == 0) { adj[i * n + j] = 0; }
      else { adj[i * n + j] = 1 + r % 99; }
    }
  }
  int cks = 0;
  for (int src = 0; src < n; src++) {
    cks = cks * 31 + dijkstra(src, n);
  }
  out(cks);
  return cks;
}
)");

  // Native golden: identical algorithm on identical weights.
  const int n = nodes;
  const std::vector<int> adj = graph_weights(n);
  std::uint32_t cks = 0;
  std::vector<int> dist(n), done(n);
  for (int src_node = 0; src_node < n; ++src_node) {
    for (int i = 0; i < n; ++i) {
      dist[i] = kInf;
      done[i] = 0;
    }
    dist[src_node] = 0;
    int sum = 0;
    for (int iter = 0; iter < n; ++iter) {
      int best = kInf;
      int u = -1;
      for (int i = 0; i < n; ++i) {
        if (!done[i] && dist[i] < best) {
          best = dist[i];
          u = i;
        }
      }
      if (u < 0) break;
      done[u] = 1;
      sum += dist[u];
      for (int v = 0; v < n; ++v) {
        const int w = adj[u * n + v];
        if (w != 0 && dist[u] + w < dist[v]) dist[v] = dist[u] + w;
      }
    }
    cks = cks * 31 + static_cast<std::uint32_t>(sum);
  }

  Workload w;
  w.name = "dijkstra";
  w.minic_source = std::move(src);
  w.expected_output = {cks};
  return w;
}

std::vector<Workload> all_workloads(int sha_dim, int aes_iters, int dct_dim,
                                    int dijkstra_nodes) {
  std::vector<Workload> out;
  out.push_back(make_sha(sha_dim));
  out.push_back(make_aes(aes_iters));
  out.push_back(make_dct(dct_dim));
  out.push_back(make_dijkstra(dijkstra_nodes));
  return out;
}

}  // namespace cepic::workloads
