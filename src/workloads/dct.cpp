// Fixed-point 8x8 DCT workload: MiniC source generator + bit-identical
// native reference. Forward pass uses an unnormalised cosine table T
// (scale 256); the inverse folds the DCT-III weights (first row halved,
// overall 1/4 per dimension) into table D. Shift bookkeeping:
//   S_raw  = T · f · T^T            (<= ~1.07e9, fits int32)
//   F      = S_raw >> 12            (stored coefficients)
//   Q1     = (D^T · F) >> 10
//   f'     = (D applied on other axis · Q1 + 8192) >> 14
#include <cmath>

#include "support/error.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"
#include "workloads/workloads.hpp"

namespace cepic::workloads {

namespace {

struct Tables {
  int fwd[64];  // T[u*8+x] = round(256 * cos((2x+1)u*pi/16))
  int inv[64];  // D[u*8+x] = round(256 * w(u) * cos((2x+1)u*pi/16)),
                // w(0)=0.5, w(u>0)=1
};

const Tables& tables() {
  static const Tables t = [] {
    Tables out{};
    for (int u = 0; u < 8; ++u) {
      for (int x = 0; x < 8; ++x) {
        const double c = std::cos((2 * x + 1) * u * 3.14159265358979323846 /
                                  16.0);
        out.fwd[u * 8 + x] = static_cast<int>(std::lround(256.0 * c));
        const double w = u == 0 ? 0.5 : 1.0;
        out.inv[u * 8 + x] = static_cast<int>(std::lround(256.0 * w * c));
      }
    }
    return out;
  }();
  return t;
}

/// The exact integer pipeline shared (conceptually) with the MiniC code:
/// process one 8x8 block in place; returns via out-params.
void block_roundtrip(const int f[64], int coeff[64], int recon[64]) {
  const Tables& t = tables();
  int p1[64];
  // Forward: p1[u][x] = sum_y T[u][y] f[y][x]
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      int acc = 0;
      for (int y = 0; y < 8; ++y) acc += t.fwd[u * 8 + y] * f[y * 8 + x];
      p1[u * 8 + x] = acc;
    }
  }
  // coeff[u][v] = (sum_x T[v][x] p1[u][x]) >> 12
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      int acc = 0;
      for (int x = 0; x < 8; ++x) acc += t.fwd[v * 8 + x] * p1[u * 8 + x];
      coeff[u * 8 + v] = acc >> 12;
    }
  }
  // Inverse: q1[y][v] = (sum_u D[u][y] coeff[u][v]) >> 10
  int q1[64];
  for (int y = 0; y < 8; ++y) {
    for (int v = 0; v < 8; ++v) {
      int acc = 0;
      for (int u = 0; u < 8; ++u) acc += t.inv[u * 8 + y] * coeff[u * 8 + v];
      q1[y * 8 + v] = acc >> 10;
    }
  }
  // recon[y][x] = (sum_v D[v][x] q1[y][v] + 8192) >> 14
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      int acc = 0;
      for (int v = 0; v < 8; ++v) acc += t.inv[v * 8 + x] * q1[y * 8 + v];
      recon[y * 8 + x] = (acc + 8192) >> 14;
    }
  }
}

}  // namespace

const int* dct_coeff_table() { return tables().fwd; }

Workload make_dct(int dim) {
  CEPIC_CHECK(dim % 8 == 0, "DCT image dimension must be a multiple of 8");
  const Tables& t = tables();

  // Generate an unrolled 1D transform: out_u = sum_k table[u][k] * x_k
  // (or table[k][u] when transposed), as a balanced tree of adds (short
  // critical path for the list scheduler), with a final arithmetic
  // shift. `in_stride`/`out_stride` are baked in as literals so array
  // addressing stays cheap; reading straight out of the image row uses
  // stride `dim`.
  const auto gen_pass = [&](const char* fn_name, const int* table,
                            bool transpose, int in_stride, int out_stride,
                            int shift, int rounding) {
    std::string body = cat("void ", fn_name,
                           "(int src[], int dst[], int sbase, int dbase) {\n");
    for (int k = 0; k < 8; ++k) {
      body += cat("  int x", k, " = src[sbase + ", k * in_stride, "];\n");
    }
    for (int u = 0; u < 8; ++u) {
      // m_k = c_k * x_k, summed as ((m0+m1)+(m2+m3)) + ((m4+m5)+(m6+m7)).
      const auto term = [&](int k) {
        const int c = transpose ? table[k * 8 + u] : table[u * 8 + k];
        return cat(c, " * x", k);
      };
      body += cat("  int o", u, " = ((", term(0), " + ", term(1), ") + (",
                  term(2), " + ", term(3), ")) + ((", term(4), " + ",
                  term(5), ") + (", term(6), " + ", term(7), "));\n");
    }
    for (int u = 0; u < 8; ++u) {
      body += cat("  dst[dbase + ", u * out_stride, "] = (o", u);
      if (rounding != 0) body += cat(" + ", rounding);
      body += cat(") >> ", shift, ";\n");
    }
    body += "}\n";
    return body;
  };

  // Unrolled per-block driver: forward columns read directly from the
  // image (stride dim), everything else works on 8x8 scratch arrays.
  std::string do_block = "void do_block(int base) {\n";
  for (int x = 0; x < 8; ++x) {
    do_block += cat("  fwd_col(img, p1, base + ", x, ", ", x, ");\n");
  }
  for (int u = 0; u < 8; ++u) {
    do_block += cat("  fwd_row(p1, coef, ", u * 8, ", ", u * 8, ");\n");
  }
  for (int v = 0; v < 8; ++v) {
    do_block += cat("  inv_col(coef, q1, ", v, ", ", v, ");\n");
  }
  for (int y = 0; y < 8; ++y) {
    do_block += cat("  inv_row(q1, rec, ", y * 8, ", ", y * 8, ");\n");
  }
  // Checksums: coefficient/reconstruction hashes and total |error| vs
  // the original pixels, inner dimension unrolled.
  do_block += "  for (int i = 0; i < 64; i++) {\n";
  do_block += "    coef_cks = coef_cks * 31 + coef[i];\n";
  do_block += "    rec_cks = rec_cks * 31 + rec[i];\n";
  do_block += "  }\n";
  do_block += "  for (int y = 0; y < 8; y++) {\n";
  do_block += cat("    int row = base + y * ", dim, ";\n");
  do_block += cat("    int rrow = y * 8;\n");
  for (int x = 0; x < 8; ++x) {
    do_block += cat("    total_err += abs(rec[rrow + ", x,
                    "] - img[row + ", x, "]);\n");
  }
  do_block += "  }\n}\n";

  std::string src = cat(
      "// fixed-point 8x8 DCT encode+decode of a ", dim, "x", dim,
      " image (unrolled butterflies, literal coefficients)\n",
      "int img[", dim * dim, "];\n",
      "int p1[64];\n int coef[64];\n int q1[64];\n int rec[64];\n",
      "int coef_cks;\n int rec_cks;\n int total_err;\n",
      // Forward: image columns with T (stride dim), rows with T (>>12).
      gen_pass("fwd_col", t.fwd, false, dim, 8, 0, 0),
      gen_pass("fwd_row", t.fwd, false, 1, 1, 12, 0),
      // Inverse: columns with D^T (>>10), rows with D^T (+8192 >> 14).
      gen_pass("inv_col", t.inv, true, 8, 8, 10, 0),
      gen_pass("inv_row", t.inv, true, 1, 1, 14, 8192),
      do_block,
      "int main() {\n",
      "  int dimw = ", dim, ";\n",
      R"(
  int s = 1;
  for (int i = 0; i < dimw * dimw; i++) {
    s ^= s << 13; s ^= s >>> 17; s ^= s << 5;
    img[i] = (s >>> 24) & 255;
  }
  coef_cks = 0; rec_cks = 0; total_err = 0;
  for (int by = 0; by < dimw; by += 8)
    for (int bx = 0; bx < dimw; bx += 8)
      do_block(by * dimw + bx);
  out(coef_cks);
  out(rec_cks);
  out(total_err);
  return total_err;
}
)");

  // Native golden with the same data and integer pipeline.
  const std::vector<std::uint8_t> pixels = synthetic_bytes(
      static_cast<std::size_t>(dim) * dim);
  std::uint32_t coef_cks = 0, rec_cks = 0, total_err = 0;
  int f[64], coeff[64], recon[64];
  for (int by = 0; by < dim; by += 8) {
    for (int bx = 0; bx < dim; bx += 8) {
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          f[y * 8 + x] = pixels[(by + y) * dim + bx + x];
        }
      }
      block_roundtrip(f, coeff, recon);
      for (int i = 0; i < 64; ++i) {
        coef_cks = coef_cks * 31 + static_cast<std::uint32_t>(coeff[i]);
        rec_cks = rec_cks * 31 + static_cast<std::uint32_t>(recon[i]);
        total_err += static_cast<std::uint32_t>(std::abs(recon[i] - f[i]));
      }
    }
  }

  Workload w;
  w.name = "dct";
  w.minic_source = std::move(src);
  w.expected_output = {coef_cks, rec_cks, total_err};
  return w;
}

}  // namespace cepic::workloads
