// The reusable forward/backward dataflow engine: a worklist solver over
// analysis::Cfg parameterised by a transfer-function "problem".  All
// concrete analyses (dominators, liveness, reaching definitions, the
// interval propagator's block schedule) and any future pass-specific
// facts run through solve() so the fixed-point discipline lives in one
// place.
//
// A Problem supplies:
//
//   using State = ...;                       // a join-semilattice element
//   static constexpr bool kForward = ...;    // direction
//   State boundary() const;                  // entry (fwd) / exit (bwd) state
//   State top() const;                       // optimistic initial state
//   // Merge `from` into `into`; return true if `into` changed.
//   bool join(State& into, const State& from) const;
//   // Apply the block's effect to `state` in place (fwd: entry->exit,
//   // bwd: exit->entry).
//   void transfer(int block, State& state) const;
//
// solve() iterates blocks in reverse postorder (forward) or postorder
// (backward) with a change-driven worklist until no state moves.  The
// result keeps both the program-order entry and exit state of every
// block: in[b] holds facts at the top of b, out[b] at the bottom,
// regardless of direction.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/cfg.hpp"

namespace cepic::analysis {

/// Dense fixed-size bitset (uint64 words) used as the lattice element of
/// the set-based analyses; faster and cheaper than vector<bool> rows.
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t n) : n_(n), w_((n + 63) / 64, 0) {}

  std::size_t size() const { return n_; }
  bool test(std::size_t i) const {
    return ((w_[i >> 6] >> (i & 63)) & 1u) != 0;
  }
  void set(std::size_t i) { w_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) { w_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  void clear() {
    for (auto& w : w_) w = 0;
  }
  void set_all() {
    if (n_ == 0) return;
    for (auto& w : w_) w = ~std::uint64_t{0};
    const unsigned tail = n_ & 63;
    if (tail != 0) w_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  bool any() const {
    for (auto w : w_) {
      if (w != 0) return true;
    }
    return false;
  }
  std::size_t count() const {
    std::size_t n = 0;
    for (auto w : w_) {
      while (w != 0) {
        w &= w - 1;
        ++n;
      }
    }
    return n;
  }

  /// this |= o; returns true if any bit changed.
  bool ior(const BitSet& o) {
    bool changed = false;
    for (std::size_t i = 0; i < w_.size(); ++i) {
      const std::uint64_t nw = w_[i] | o.w_[i];
      changed |= nw != w_[i];
      w_[i] = nw;
    }
    return changed;
  }
  /// this &= o; returns true if any bit changed.
  bool iand(const BitSet& o) {
    bool changed = false;
    for (std::size_t i = 0; i < w_.size(); ++i) {
      const std::uint64_t nw = w_[i] & o.w_[i];
      changed |= nw != w_[i];
      w_[i] = nw;
    }
    return changed;
  }

  bool operator==(const BitSet&) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> w_;
};

template <typename State>
struct DataflowResult {
  std::vector<State> in;   ///< state at block entry (program order)
  std::vector<State> out;  ///< state at block exit (program order)
};

template <typename Problem>
DataflowResult<typename Problem::State> solve(const Cfg& cfg,
                                              const Problem& problem) {
  using State = typename Problem::State;
  const int nb = cfg.num_blocks();
  DataflowResult<State> r;
  r.in.assign(nb, problem.top());
  r.out.assign(nb, problem.top());

  // Seed in a direction-friendly order so most states settle in one or
  // two sweeps; the worklist then handles stragglers and loops.
  std::deque<int> worklist;
  std::vector<bool> queued(nb, false);
  const auto enqueue = [&](int b) {
    if (!queued[b]) {
      queued[b] = true;
      worklist.push_back(b);
    }
  };
  if (Problem::kForward) {
    for (int b : cfg.rpo) enqueue(b);
  } else {
    for (auto it = cfg.rpo.rbegin(); it != cfg.rpo.rend(); ++it) enqueue(*it);
  }
  // Graph-unreachable blocks still get a (vacuous) solve so every state
  // in the result is well defined.
  for (int b = 0; b < nb; ++b) enqueue(b);

  while (!worklist.empty()) {
    const int b = worklist.front();
    worklist.pop_front();
    queued[b] = false;

    if (Problem::kForward) {
      // The entry block starts from the boundary but still joins any
      // back-edge predecessors; boundary states are chosen so the join
      // keeps them pinned (e.g. ∅ under intersection for dominators).
      State in = cfg.preds[b].empty() || b == 0 ? problem.boundary()
                                                : problem.top();
      for (int p : cfg.preds[b]) problem.join(in, r.out[p]);
      State out = in;
      problem.transfer(b, out);
      r.in[b] = std::move(in);
      const bool changed = !(out == r.out[b]);
      if (changed) {
        r.out[b] = std::move(out);
        for (int s : cfg.succs[b]) enqueue(s);
      }
    } else {
      State out = cfg.succs[b].empty() ? problem.boundary() : problem.top();
      for (int s : cfg.succs[b]) problem.join(out, r.in[s]);
      State in = out;
      problem.transfer(b, in);
      r.out[b] = std::move(out);
      const bool changed = !(in == r.in[b]);
      if (changed) {
        r.in[b] = std::move(in);
        for (int p : cfg.preds[b]) enqueue(p);
      }
    }
  }
  return r;
}

}  // namespace cepic::analysis
