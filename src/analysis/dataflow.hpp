// The reusable forward/backward dataflow engine: a worklist solver over
// analysis::Cfg parameterised by a transfer-function "problem".  All
// concrete analyses (dominators, liveness, reaching definitions, the
// interval propagator's block schedule) and any future pass-specific
// facts run through solve() so the fixed-point discipline lives in one
// place.
//
// A Problem supplies:
//
//   using State = ...;                       // a join-semilattice element
//   static constexpr bool kForward = ...;    // direction
//   State boundary() const;                  // entry (fwd) / exit (bwd) state
//   State top() const;                       // optimistic initial state
//   // Merge `from` into `into`; return true if `into` changed.
//   bool join(State& into, const State& from) const;
//   // Apply the block's effect to `state` in place (fwd: entry->exit,
//   // bwd: exit->entry).
//   void transfer(int block, State& state) const;
//
// solve() iterates blocks in reverse postorder (forward) or postorder
// (backward) with a change-driven worklist until no state moves.  The
// result keeps both the program-order entry and exit state of every
// block: in[b] holds facts at the top of b, out[b] at the bottom,
// regardless of direction.
//
// Allocation discipline: the worklist and all per-iteration scratch
// states live in the thread-local support::Arena (or hoisted buffers
// reused across iterations), so a steady-state solve performs no heap
// allocation beyond the returned result states themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"
#include "support/arena.hpp"

namespace cepic::analysis {

namespace detail {
inline constexpr std::size_t words_for(std::size_t bits) {
  return (bits + 63) / 64;
}
}  // namespace detail

/// Non-owning view of a row of bits (64-bit words). The backing words
/// come from a BitMatrix (arena) or a BitSet (heap); BitRow itself is a
/// pointer + size pair and is freely copyable.
class BitRow {
 public:
  BitRow() = default;
  BitRow(std::uint64_t* w, std::size_t nbits) : w_(w), n_(nbits) {}

  std::size_t size() const { return n_; }
  std::size_t num_words() const { return detail::words_for(n_); }
  const std::uint64_t* words() const { return w_; }

  bool test(std::size_t i) const {
    return ((w_[i >> 6] >> (i & 63)) & 1u) != 0;
  }
  void set(std::size_t i) { w_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) { w_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  void clear() {
    for (std::size_t i = 0; i < num_words(); ++i) w_[i] = 0;
  }
  void set_all() {
    if (n_ == 0) return;
    for (std::size_t i = 0; i < num_words(); ++i) w_[i] = ~std::uint64_t{0};
    const unsigned tail = n_ & 63;
    if (tail != 0) w_[num_words() - 1] &= (std::uint64_t{1} << tail) - 1;
  }

 private:
  std::uint64_t* w_ = nullptr;
  std::size_t n_ = 0;
};

/// rows × bits of zero-initialised scratch bits in one arena block.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t bits, Arena& arena)
      : bits_(bits), stride_(detail::words_for(bits)) {
    w_ = arena.alloc_zeroed<std::uint64_t>(rows * stride_);
  }

  BitRow row(std::size_t r) { return BitRow(w_ + r * stride_, bits_); }
  BitRow row(std::size_t r) const { return BitRow(w_ + r * stride_, bits_); }

 private:
  std::uint64_t* w_ = nullptr;
  std::size_t bits_ = 0;
  std::size_t stride_ = 0;
};

/// Dense fixed-size bitset (uint64 words) used as the lattice element of
/// the set-based analyses; faster and cheaper than vector<bool> rows.
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t n) : n_(n), w_((n + 63) / 64, 0) {}

  std::size_t size() const { return n_; }
  bool test(std::size_t i) const {
    return ((w_[i >> 6] >> (i & 63)) & 1u) != 0;
  }
  void set(std::size_t i) { w_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) { w_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  void clear() {
    for (auto& w : w_) w = 0;
  }
  void set_all() {
    if (n_ == 0) return;
    for (auto& w : w_) w = ~std::uint64_t{0};
    const unsigned tail = n_ & 63;
    if (tail != 0) w_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  bool any() const {
    for (auto w : w_) {
      if (w != 0) return true;
    }
    return false;
  }
  std::size_t count() const {
    std::size_t n = 0;
    for (auto w : w_) {
      while (w != 0) {
        w &= w - 1;
        ++n;
      }
    }
    return n;
  }

  /// this |= o; returns true if any bit changed.
  bool ior(const BitSet& o) { return ior_words(o.w_.data()); }
  bool ior(const BitRow& o) { return ior_words(o.words()); }
  /// this &= o; returns true if any bit changed.
  bool iand(const BitSet& o) {
    bool changed = false;
    for (std::size_t i = 0; i < w_.size(); ++i) {
      const std::uint64_t nw = w_[i] & o.w_[i];
      changed |= nw != w_[i];
      w_[i] = nw;
    }
    return changed;
  }
  /// this &= ~o (set subtraction).
  void iandnot(const BitSet& o) { iandnot_words(o.w_.data()); }
  void iandnot(const BitRow& o) { iandnot_words(o.words()); }

  const std::uint64_t* words() const { return w_.data(); }
  std::size_t num_words() const { return w_.size(); }
  /// Mutable row view over this set's words (sizes must outlive it).
  BitRow row() { return BitRow(w_.data(), n_); }

  bool operator==(const BitSet&) const = default;

 private:
  bool ior_words(const std::uint64_t* o) {
    bool changed = false;
    for (std::size_t i = 0; i < w_.size(); ++i) {
      const std::uint64_t nw = w_[i] | o[i];
      changed |= nw != w_[i];
      w_[i] = nw;
    }
    return changed;
  }
  void iandnot_words(const std::uint64_t* o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] &= ~o[i];
  }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> w_;
};

template <typename State>
struct DataflowResult {
  std::vector<State> in;   ///< state at block entry (program order)
  std::vector<State> out;  ///< state at block exit (program order)
};

/// FIFO worklist with membership dedup over block ids [0, nb), backed by
/// arena memory. Capacity nb suffices: dedup caps live entries at nb.
class BlockWorklist {
 public:
  BlockWorklist(int nb, Arena& arena)
      : nb_(nb),
        ring_(arena.alloc_array<int>(static_cast<std::size_t>(nb) + 1)),
        queued_(arena.alloc_zeroed<std::uint64_t>(
            detail::words_for(static_cast<std::size_t>(nb)))) {}

  bool empty() const { return head_ == tail_; }

  void push(int b) {
    const auto i = static_cast<std::size_t>(b);
    if ((queued_[i >> 6] >> (i & 63)) & 1u) return;
    queued_[i >> 6] |= std::uint64_t{1} << (i & 63);
    ring_[tail_] = b;
    tail_ = tail_ + 1 == nb_ + 1 ? 0 : tail_ + 1;
  }

  int pop() {
    const int b = ring_[head_];
    head_ = head_ + 1 == nb_ + 1 ? 0 : head_ + 1;
    const auto i = static_cast<std::size_t>(b);
    queued_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    return b;
  }

 private:
  int nb_;
  int head_ = 0;
  int tail_ = 0;
  int* ring_;
  std::uint64_t* queued_;
};

template <typename Problem>
DataflowResult<typename Problem::State> solve(const Cfg& cfg,
                                              const Problem& problem) {
  using State = typename Problem::State;
  const int nb = cfg.num_blocks();
  DataflowResult<State> r;
  r.in.assign(nb, problem.top());
  r.out.assign(nb, problem.top());

  ArenaScope scope(Arena::scratch());
  BlockWorklist worklist(nb, scope.arena());

  // Seed in a direction-friendly order so most states settle in one or
  // two sweeps; the worklist then handles stragglers and loops.
  if (Problem::kForward) {
    for (int b : cfg.rpo) worklist.push(b);
  } else {
    for (auto it = cfg.rpo.rbegin(); it != cfg.rpo.rend(); ++it) {
      worklist.push(*it);
    }
  }
  // Graph-unreachable blocks still get a (vacuous) solve so every state
  // in the result is well defined.
  for (int b = 0; b < nb; ++b) worklist.push(b);

  // Hoisted scratch states: copy-assignment below reuses their storage,
  // so the iteration allocates nothing once the buffers are warm.
  const State boundary_state = problem.boundary();
  const State top_state = problem.top();
  State pre = top_state;
  State post = top_state;

  while (!worklist.empty()) {
    const int b = worklist.pop();

    if (Problem::kForward) {
      // The entry block starts from the boundary but still joins any
      // back-edge predecessors; boundary states are chosen so the join
      // keeps them pinned (e.g. ∅ under intersection for dominators).
      pre = cfg.preds[b].empty() || b == 0 ? boundary_state : top_state;
      for (int p : cfg.preds[b]) problem.join(pre, r.out[p]);
      post = pre;
      problem.transfer(b, post);
      r.in[b] = pre;
      if (!(post == r.out[b])) {
        r.out[b] = post;
        for (int s : cfg.succs[b]) worklist.push(s);
      }
    } else {
      pre = cfg.succs[b].empty() ? boundary_state : top_state;
      for (int s : cfg.succs[b]) problem.join(pre, r.in[s]);
      post = pre;
      problem.transfer(b, post);
      r.out[b] = pre;
      if (!(post == r.in[b])) {
        r.in[b] = post;
        for (int p : cfg.preds[b]) worklist.push(p);
      }
    }
  }
  return r;
}

}  // namespace cepic::analysis
