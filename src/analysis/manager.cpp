#include "analysis/manager.hpp"

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::analysis {

const char* to_string(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kCfg: return "cfg";
    case AnalysisKind::kDominators: return "dominators";
    case AnalysisKind::kLiveness: return "liveness";
    case AnalysisKind::kReachingDefs: return "reaching_defs";
    case AnalysisKind::kAvailableCopies: return "available_copies";
  }
  return "?";
}

namespace {

// One cache slot: hit if present, otherwise compute (counting both ways)
// and remember. `compute` receives the function's (possibly just built)
// Cfg since every non-CFG analysis consumes it.
template <typename T, typename Compute>
const T& get_or_compute(std::unique_ptr<T>& slot, Compute&& compute) {
  if (slot != nullptr) {
    obs::add("opt.analysis_hits");
    return *slot;
  }
  obs::add("opt.analysis_computes");
  slot = std::make_unique<T>(compute());
  return *slot;
}

}  // namespace

const Cfg& AnalysisManager::cfg(const ir::Function& fn) {
  Entry& e = entry(fn);
  return get_or_compute(e.cfg, [&] { return Cfg::build(fn); });
}

const Dominators& AnalysisManager::dominators(const ir::Function& fn) {
  Entry& e = entry(fn);
  const Cfg& c = cfg(fn);
  return get_or_compute(e.dom, [&] { return compute_dominators(fn, c); });
}

const Liveness& AnalysisManager::liveness(const ir::Function& fn) {
  Entry& e = entry(fn);
  const Cfg& c = cfg(fn);
  return get_or_compute(e.live, [&] { return compute_liveness(fn, c); });
}

const ReachingDefs& AnalysisManager::reaching_defs(const ir::Function& fn) {
  Entry& e = entry(fn);
  const Cfg& c = cfg(fn);
  return get_or_compute(e.reach, [&] { return compute_reaching_defs(fn, c); });
}

const AvailableCopies& AnalysisManager::available_copies(
    const ir::Function& fn) {
  Entry& e = entry(fn);
  const Cfg& c = cfg(fn);
  return get_or_compute(e.copies,
                        [&] { return compute_available_copies(fn, c); });
}

std::uint64_t AnalysisManager::version(const ir::Function& fn) const {
  const auto it = entries_.find(&fn);
  // An untracked function is at its initial version: the first getter
  // creates the entry with the same value, so skip decisions agree.
  return it == entries_.end() ? 1 : it->second.version;
}

void AnalysisManager::verify_preserved(const ir::Function& fn, Entry& e,
                                       const PreservedAnalyses& preserved,
                                       const char* pass) {
  const auto check = [&](AnalysisKind kind, bool cached, bool same) {
    if (cached && !same) {
      throw InternalError(cat("pass ", pass, " claimed to preserve ",
                              to_string(kind), " on function ", fn.name,
                              " but the cached result no longer matches a "
                              "fresh recomputation"));
    }
  };
  // The CFG goes first: every other recomputation consumes it, so a
  // stale cached CFG must be caught before it poisons the comparisons.
  if (preserved.preserved(AnalysisKind::kCfg) && e.cfg != nullptr) {
    const Cfg fresh = Cfg::build(fn);
    check(AnalysisKind::kCfg, true, fresh == *e.cfg);
  }
  const Cfg fresh_cfg = Cfg::build(fn);
  if (preserved.preserved(AnalysisKind::kDominators) && e.dom != nullptr) {
    check(AnalysisKind::kDominators, true,
          compute_dominators(fn, fresh_cfg) == *e.dom);
  }
  if (preserved.preserved(AnalysisKind::kLiveness) && e.live != nullptr) {
    check(AnalysisKind::kLiveness, true,
          compute_liveness(fn, fresh_cfg) == *e.live);
  }
  if (preserved.preserved(AnalysisKind::kReachingDefs) && e.reach != nullptr) {
    check(AnalysisKind::kReachingDefs, true,
          compute_reaching_defs(fn, fresh_cfg) == *e.reach);
  }
  if (preserved.preserved(AnalysisKind::kAvailableCopies) &&
      e.copies != nullptr) {
    check(AnalysisKind::kAvailableCopies, true,
          compute_available_copies(fn, fresh_cfg) == *e.copies);
  }
}

void AnalysisManager::invalidate(const ir::Function& fn,
                                 const PreservedAnalyses& preserved,
                                 const char* pass) {
  Entry& e = entry(fn);
  ++e.version;
  if (verify_) verify_preserved(fn, e, preserved, pass);
  const auto drop = [&](AnalysisKind kind, auto& slot) {
    if (slot != nullptr && !preserved.preserved(kind)) {
      slot.reset();
      obs::add("opt.analysis_invalidations");
    }
  };
  drop(AnalysisKind::kCfg, e.cfg);
  drop(AnalysisKind::kDominators, e.dom);
  drop(AnalysisKind::kLiveness, e.live);
  drop(AnalysisKind::kReachingDefs, e.reach);
  drop(AnalysisKind::kAvailableCopies, e.copies);
}

}  // namespace cepic::analysis
