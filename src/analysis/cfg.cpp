#include "analysis/cfg.hpp"

namespace cepic::analysis {

using ir::IrInst;
using ir::IrOp;
using ir::VReg;

std::vector<int> successors(const ir::BasicBlock& block) {
  const IrInst& t = block.terminator();
  switch (t.op) {
    case IrOp::Br:
      return {t.block_then};
    case IrOp::CondBr:
      if (t.block_then == t.block_else) return {t.block_then};
      return {t.block_then, t.block_else};
    default:
      return {};
  }
}

std::vector<std::vector<int>> predecessors(const ir::Function& fn) {
  std::vector<std::vector<int>> preds(fn.blocks.size());
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (int s : successors(fn.blocks[b])) {
      preds[s].push_back(static_cast<int>(b));
    }
  }
  return preds;
}

VReg def_of(const IrInst& inst) {
  return ir::has_dst(inst) ? inst.dst : ir::kNoVReg;
}

Cfg Cfg::build(const ir::Function& fn) {
  const int nb = static_cast<int>(fn.blocks.size());
  Cfg cfg;
  cfg.fn = &fn;
  cfg.succs.resize(nb);
  for (int b = 0; b < nb; ++b) cfg.succs[b] = successors(fn.blocks[b]);
  cfg.preds.assign(nb, {});
  for (int b = 0; b < nb; ++b) {
    for (int s : cfg.succs[b]) cfg.preds[s].push_back(b);
  }

  // Iterative DFS from the entry block producing a postorder; rpo is its
  // reverse. Blocks never reached stay out of rpo entirely.
  cfg.reachable.assign(nb, false);
  std::vector<int> postorder;
  postorder.reserve(nb);
  if (nb > 0) {
    // stack of (block, next successor index to visit)
    std::vector<std::pair<int, std::size_t>> stack;
    cfg.reachable[0] = true;
    stack.emplace_back(0, 0);
    while (!stack.empty()) {
      auto& [b, next] = stack.back();
      if (next < cfg.succs[b].size()) {
        const int s = cfg.succs[b][next++];
        if (!cfg.reachable[s]) {
          cfg.reachable[s] = true;
          stack.emplace_back(s, 0);
        }
      } else {
        postorder.push_back(b);
        stack.pop_back();
      }
    }
  }
  cfg.rpo.assign(postorder.rbegin(), postorder.rend());
  cfg.rpo_index.assign(nb, -1);
  for (std::size_t i = 0; i < cfg.rpo.size(); ++i) {
    cfg.rpo_index[cfg.rpo[i]] = static_cast<int>(i);
  }
  return cfg;
}

}  // namespace cepic::analysis
