// Concrete dataflow analyses built on the engine in dataflow.hpp:
// dominators, guard-aware liveness, and reaching definitions.  Each
// result carries a stable to_string() rendering used by golden tests
// and `cepic-lint --dump-analysis`.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "ir/ir.hpp"

namespace cepic::analysis {

/// Block dominance: dom[b] = set of blocks dominating b, idom[b] = the
/// immediate dominator (-1 for the entry block and for graph-unreachable
/// blocks, whose dom sets are vacuous).
struct Dominators {
  std::vector<BitSet> dom;
  std::vector<int> idom;

  bool dominates(int a, int b) const { return dom[b].test(a); }
  std::string to_string(const ir::Function& fn) const;

  bool operator==(const Dominators&) const = default;
};

Dominators compute_dominators(const ir::Function& fn, const Cfg& cfg);

/// Per-block liveness over vregs.  Guard-aware: a guarded definition
/// does not kill its dst (the old value may flow through when the guard
/// nullifies the write), and the guard vreg itself counts as a use.
struct Liveness {
  std::vector<BitSet> live_in;
  std::vector<BitSet> live_out;

  std::string to_string(const ir::Function& fn) const;

  bool operator==(const Liveness&) const = default;
};

Liveness compute_liveness(const ir::Function& fn, const Cfg& cfg);
Liveness compute_liveness(const ir::Function& fn);

/// Reaching definitions over "def sites".  Site i < next_vreg is the
/// synthetic entry definition of vreg i (the incoming parameter value,
/// or the implicit zero initialisation of a non-param vreg); later sites
/// are (block, inst) pairs that write a vreg.  Guard-aware: a guarded
/// definition generates its site but kills nothing.
struct ReachingDefs {
  struct Site {
    int block = -1;  ///< -1 for synthetic entry sites
    int inst = -1;
    ir::VReg vreg = ir::kNoVReg;

    bool operator==(const Site&) const = default;
  };

  std::vector<Site> sites;
  std::vector<std::vector<int>> sites_of_vreg;  ///< site indices per vreg
  std::vector<BitSet> reach_in;                 ///< per block, over sites
  std::vector<BitSet> reach_out;

  /// True if the synthetic entry definition of a *non-param* vreg can
  /// reach the given block, i.e. the vreg may be read uninitialised
  /// there (callers intersect with upward-exposed uses).
  bool entry_def_reaches(const ir::Function& fn, int block,
                         ir::VReg v) const;

  std::string to_string(const ir::Function& fn) const;

  bool operator==(const ReachingDefs&) const = default;
};

ReachingDefs compute_reaching_defs(const ir::Function& fn, const Cfg& cfg);

/// Available copies: site i is the fact "dst currently equals src",
/// established by any unguarded `mov dst, src`; avail_in[b] holds the
/// facts valid on *every* path into b (forward, intersection join; any
/// definition of dst — or of src when it is a register — kills the
/// fact).  Sites are deduplicated by (dst, src), so the same copy made
/// on both arms of a diamond survives the join.  Drives global copy and
/// constant propagation in opt/copyprop.cpp.
struct AvailableCopies {
  struct Site {
    int block = -1;  ///< first occurrence (informational)
    int inst = -1;
    ir::VReg dst = ir::kNoVReg;
    ir::Value src;

    bool operator==(const Site&) const = default;
  };

  std::vector<Site> sites;
  std::vector<BitSet> avail_in;  ///< per block, over sites
  std::vector<BitSet> avail_out;

  std::string to_string(const ir::Function& fn) const;

  bool operator==(const AvailableCopies&) const = default;
};

AvailableCopies compute_available_copies(const ir::Function& fn,
                                         const Cfg& cfg);

}  // namespace cepic::analysis
