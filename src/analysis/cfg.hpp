// CFG utilities over ir::Function shared by the dataflow framework, the
// optimiser passes and the IR lints: successor/predecessor computation,
// operand visitation, and a prebuilt Cfg with traversal orders so every
// client walks the same graph.
#pragma once

#include <vector>

#include "ir/ir.hpp"

namespace cepic::analysis {

/// Successor block indices of a block (from its terminator).
std::vector<int> successors(const ir::BasicBlock& block);

/// preds[b] = blocks branching to b.
std::vector<std::vector<int>> predecessors(const ir::Function& fn);

/// The vreg defined by an instruction, or kNoVReg.
ir::VReg def_of(const ir::IrInst& inst);

/// Invoke fn(Value&) on every value operand the instruction *reads*
/// (a/b/c/args as applicable; the guard is visited separately since it
/// is a bare vreg).
template <typename Fn>
void for_each_use(ir::IrInst& inst, Fn&& fn) {
  using ir::IrOp;
  switch (inst.op) {
    case IrOp::GlobalAddr:
    case IrOp::FrameAddr:
      break;
    case IrOp::Call:
      for (ir::Value& v : inst.args) fn(v);
      break;
    case IrOp::Ret:
    case IrOp::Out:
    case IrOp::Mov:
    case IrOp::CondBr:
      if (!inst.a.is_none()) fn(inst.a);
      break;
    case IrOp::Br:
      break;
    case IrOp::StoreW:
    case IrOp::StoreB:
      fn(inst.a);
      fn(inst.b);
      fn(inst.c);
      break;
    default:
      if (!inst.a.is_none()) fn(inst.a);
      if (!inst.b.is_none()) fn(inst.b);
      break;
  }
}

template <typename Fn>
void for_each_use(const ir::IrInst& inst, Fn&& fn) {
  for_each_use(const_cast<ir::IrInst&>(inst),
               [&fn](ir::Value& v) { fn(static_cast<const ir::Value&>(v)); });
}

/// A control-flow graph built once per function and shared by every
/// analysis: adjacency both ways, graph reachability from the entry
/// block, and depth-first traversal orders for fast fixed points.
struct Cfg {
  const ir::Function* fn = nullptr;
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  std::vector<bool> reachable;  ///< reachable from block 0 by graph edges
  std::vector<int> rpo;         ///< reverse postorder over reachable blocks
  std::vector<int> rpo_index;   ///< block -> position in rpo (-1 unreachable)

  int num_blocks() const { return static_cast<int>(succs.size()); }

  static Cfg build(const ir::Function& fn);

  bool operator==(const Cfg&) const = default;
};

/// Visit each successor block index of `block` without allocating (the
/// vector-returning successors() is kept for callers that want one).
template <typename Fn>
void for_each_successor(const ir::BasicBlock& block, Fn&& fn) {
  const ir::IrInst& t = block.insts.back();
  switch (t.op) {
    case ir::IrOp::Br:
      fn(t.block_then);
      break;
    case ir::IrOp::CondBr:
      fn(t.block_then);
      if (t.block_else != t.block_then) fn(t.block_else);
      break;
    default:
      break;
  }
}

}  // namespace cepic::analysis
