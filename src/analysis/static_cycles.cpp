#include "analysis/static_cycles.hpp"

#include <algorithm>
#include <optional>

#include "core/eval.hpp"
#include "core/isa.hpp"
#include "mdes/mdes.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic::analysis {

namespace {

RegFile file_of_src(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr:
    case SrcSpec::GprOrLit: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    case SrcSpec::None:
    case SrcSpec::LitOnly: return RegFile::None;
  }
  return RegFile::None;
}

/// The walker: a faithful re-statement of the simulator's interpretive
/// timing rules (sim/simulator.cpp step_interpretive + finish_step) over
/// three-valued register contents — known words or "unknown" (memory
/// loads, and everything derived from them).  Any divergence between
/// this walk and the simulator is a bug; tests/test_static_cycles.cpp
/// compares the two field-for-field on the fuzz corpus.
struct Walker {
  const Program& program;
  const Mdes& mdes;
  const CustomOpTable& custom;
  const StaticCycleOptions& options;
  StaticCycleReport& report;

  unsigned width;
  unsigned budget;
  bool fwd;

  // Register contents: value + known flag.  Index 0 of gpr/pred is
  // hardwired (r0 = 0, p0 = true) and never written.
  std::vector<std::uint32_t> gprs, btrs;
  std::vector<std::uint8_t> gpr_known, btr_known;
  std::vector<std::uint8_t> preds, pred_known;
  std::vector<std::uint64_t> gpr_ready, pred_ready, btr_ready;

  std::uint64_t cycle = 0;
  std::uint32_t pc = 0;
  bool halted = false;

  struct Val {
    std::uint32_t v = 0;
    bool known = false;
  };
  struct Write {
    RegFile file;
    std::uint32_t index;
    Val value;
    std::uint64_t ready;
  };

  Walker(const Program& p, const Mdes& m, const CustomOpTable& c,
         const StaticCycleOptions& o, StaticCycleReport& r)
      : program(p), mdes(m), custom(c), options(o), report(r) {
    width = p.config.datapath_width;
    budget = m.reg_port_budget();
    fwd = m.forwarding();
    gprs.assign(p.config.num_gprs, 0);
    gpr_known.assign(p.config.num_gprs, 1);
    preds.assign(p.config.num_preds, 0);
    pred_known.assign(p.config.num_preds, 1);
    btrs.assign(p.config.num_btrs, 0);
    btr_known.assign(p.config.num_btrs, 1);
    gpr_ready.assign(p.config.num_gprs, 0);
    pred_ready.assign(p.config.num_preds, 0);
    btr_ready.assign(p.config.num_btrs, 0);
    preds[0] = 1;  // p0 hardwired true
    pc = p.entry_bundle;
    report.per_pc.assign(p.bundle_count(), {});
  }

  std::uint64_t ready_cycle(RegFile file, std::uint32_t index) const {
    switch (file) {
      case RegFile::Gpr: return index == 0 ? 0 : gpr_ready[index];
      case RegFile::Pred: return index == 0 ? 0 : pred_ready[index];
      case RegFile::Btr: return btr_ready[index];
      case RegFile::None: break;
    }
    return 0;
  }

  Val read_operand(const Operand& o, SrcSpec spec) const {
    if (o.is_lit()) {
      return {mask_to_width(static_cast<std::uint32_t>(o.lit), width), true};
    }
    if (!o.is_reg()) return {0, true};
    switch (file_of_src(spec)) {
      case RegFile::Gpr:
        if (o.reg == 0) return {0, true};
        return {gprs[o.reg], gpr_known[o.reg] != 0};
      case RegFile::Pred:
        if (o.reg == 0) return {1, true};
        return {preds[o.reg] != 0 ? 1u : 0u, pred_known[o.reg] != 0};
      case RegFile::Btr:
        return {btrs[o.reg], btr_known[o.reg] != 0};
      case RegFile::None:
        break;
    }
    return {0, true};
  }

  void write_back(const std::vector<Write>& writes) {
    for (const Write& w : writes) {
      switch (w.file) {
        case RegFile::Gpr:
          if (w.index != 0) {
            gprs[w.index] = mask_to_width(w.value.v, width);
            gpr_known[w.index] = w.value.known ? 1 : 0;
            gpr_ready[w.index] = w.ready;
          }
          break;
        case RegFile::Pred:
          if (w.index != 0) {
            preds[w.index] = w.value.v != 0 ? 1 : 0;
            pred_known[w.index] = w.value.known ? 1 : 0;
            pred_ready[w.index] = w.ready;
          }
          break;
        case RegFile::Btr:
          btrs[w.index] = w.value.v;
          btr_known[w.index] = w.value.known ? 1 : 0;
          btr_ready[w.index] = w.ready;
          break;
        case RegFile::None:
          break;
      }
    }
  }

  /// One bundle.  Returns false when the walk must stop; report.exact /
  /// report.fault / report.reason say why.
  bool step() {
    if (pc >= program.bundle_count()) {
      report.fault = true;
      report.reason = cat("pc ", pc, " past end of program");
      return false;
    }
    const auto bundle = program.bundle(pc);
    SimStats& stats = report.stats;

    // ---- Issue: scoreboard over source operands. ----
    std::uint64_t issue = cycle;
    for (const Instruction& inst : bundle) {
      if (inst.is_nop()) continue;
      const OpInfo& info = inst.info();
      issue = std::max(issue, ready_cycle(RegFile::Pred, inst.pred));
      if (inst.src1.is_reg()) {
        issue =
            std::max(issue, ready_cycle(file_of_src(info.src1), inst.src1.reg));
      }
      if (inst.src2.is_reg()) {
        issue =
            std::max(issue, ready_cycle(file_of_src(info.src2), inst.src2.reg));
      }
      if (info.dest1_is_source) {
        issue = std::max(issue, ready_cycle(RegFile::Gpr, inst.dest1));
      }
    }
    const std::uint64_t sb_stall = issue - cycle;
    stats.stall_scoreboard += sb_stall;

    // ---- Register-port budget fixed point (§3.2). ----
    std::uint64_t port_stall = 0;
    for (int iter = 0; iter < 4; ++iter) {
      const std::uint64_t at = issue + port_stall;
      unsigned ports = 0;
      const auto count_read = [&](std::uint32_t reg) {
        if (reg == 0) return;
        if (!(fwd && gpr_ready[reg] == at)) ++ports;
      };
      for (const Instruction& inst : bundle) {
        if (inst.is_nop()) continue;
        const OpInfo& info = inst.info();
        if (inst.src1.is_reg() && file_of_src(info.src1) == RegFile::Gpr) {
          count_read(inst.src1.reg);
        }
        if (inst.src2.is_reg() && file_of_src(info.src2) == RegFile::Gpr) {
          count_read(inst.src2.reg);
        }
        if (info.dest1_is_source) count_read(inst.dest1);
        if (info.writes_dest1() && info.dest1 == RegFile::Gpr &&
            inst.dest1 != 0) {
          ++ports;
        }
      }
      const std::uint64_t needed =
          ports == 0 ? 0 : (ports + budget - 1) / budget - 1;
      if (needed == port_stall) break;
      port_stall = needed;
    }
    stats.stall_reg_ports += port_stall;
    issue += port_stall;

    // ---- Execute. ----
    std::vector<Write> writes;
    bool branch_taken = false;
    Val branch_target;
    bool halt_now = false;
    bool any_mem = false;
    unsigned useful_ops = 0;
    // First faulting store of the bundle; stores fault in write_back,
    // after every op has executed (so any load fault fires first).
    std::string store_fault;

    for (const Instruction& inst : bundle) {
      if (inst.is_nop()) {
        ++stats.nops;
        continue;
      }
      ++useful_ops;
      ++stats.ops_executed;
      const OpInfo& info = inst.info();
      if (!mdes.op_supported(inst.op)) {
        report.fault = true;
        report.reason = cat("operation `", std::string(info.name),
                            "` not implemented on this customisation");
        return false;
      }
      const bool pred_is_known = inst.pred == 0 || pred_known[inst.pred] != 0;
      if (!pred_is_known) {
        report.reason = cat("guard predicate p", inst.pred,
                            " statically unknown at bundle ", pc);
        return false;
      }
      const bool guard = inst.pred == 0 || preds[inst.pred] != 0;
      if (!guard) {
        ++stats.ops_nullified;
        continue;
      }
      ++stats.ops_committed;

      const Val a = read_operand(inst.src1, info.src1);
      const Val b = read_operand(inst.src2, info.src2);
      const std::uint64_t ready = issue + mdes.latency(inst.op);

      switch (info.fu) {
        case FuClass::Alu: {
          Val r;
          if (a.known && b.known) {
            r = {eval_alu(inst.op, a.v, b.v, width, &custom), true};
          }
          writes.push_back({RegFile::Gpr, inst.dest1, r, ready});
          break;
        }
        case FuClass::Cmpu: {
          Val r;
          if (a.known && b.known) {
            r = {eval_cmpp(inst.op, a.v, b.v, width) ? 1u : 0u, true};
          }
          writes.push_back({RegFile::Pred, inst.dest1, r, ready});
          if (info.dest2 != RegFile::None) {
            Val r2 = r;
            r2.v = r.v != 0 ? 0u : 1u;
            writes.push_back({RegFile::Pred, inst.dest2, r2, ready});
          }
          break;
        }
        case FuClass::Lsu: {
          if (inst.op == Op::OUT) break;
          any_mem = true;
          // Mirror DataMemory::check on the static effective address.
          // LDWS is the non-trapping speculative load: never faults, so
          // an unknown address is fine (the result is unknown anyway).
          if (inst.op != Op::LDWS) {
            if (!(a.known && b.known)) {
              report.reason =
                  cat("memory address statically unknown at bundle ", pc);
              return false;
            }
            const std::uint32_t addr = a.v + b.v;
            const bool is_store = !info.is_load;
            const unsigned n =
                (inst.op == Op::LDW || inst.op == Op::STW) ? 4u : 1u;
            std::string fault;
            if (addr < kDataBase) {
              fault = cat(is_store ? "store" : "load",
                          " to unmapped low address 0x", std::hex, addr,
                          " (null guard)");
            } else if (static_cast<std::uint64_t>(addr) + n >
                       options.mem_size) {
              fault = cat(is_store ? "store" : "load",
                          " past end of memory: 0x", std::hex, addr);
            } else if (n == 4 && (addr & 3u) != 0) {
              fault = cat("misaligned word ", is_store ? "store" : "load",
                          " at 0x", std::hex, addr);
            }
            if (!fault.empty()) {
              if (!is_store) {
                // Loads fault during execute, in op order.
                report.fault = true;
                report.reason = std::move(fault);
                return false;
              }
              if (store_fault.empty()) store_fault = std::move(fault);
            }
          }
          if (info.is_load) {
            writes.push_back({RegFile::Gpr, inst.dest1, Val{}, ready});
            ++stats.mem_reads;
          } else {
            ++stats.mem_writes;
          }
          break;
        }
        case FuClass::Bru:
          switch (inst.op) {
            case Op::PBR:
              writes.push_back(
                  {RegFile::Btr, inst.dest1,
                   Val{static_cast<std::uint32_t>(inst.src1.lit), true},
                   ready});
              break;
            case Op::BRU:
            case Op::BRR:
              if (!branch_taken) {
                branch_taken = true;
                branch_target = a;
              }
              break;
            case Op::BRCT:
            case Op::BRCF: {
              if (!b.known) {
                report.reason = cat("branch condition statically unknown "
                                    "at bundle ", pc);
                return false;
              }
              const bool cond = b.v != 0;
              const bool take = inst.op == Op::BRCT ? cond : !cond;
              if (take) {
                if (!branch_taken) {
                  branch_taken = true;
                  branch_target = a;
                }
              } else {
                ++stats.branches_not_taken;
              }
              break;
            }
            case Op::BRL:
              writes.push_back(
                  {RegFile::Gpr, inst.dest1, Val{pc + 1, true}, ready});
              if (!branch_taken) {
                branch_taken = true;
                branch_target = a;
              }
              break;
            case Op::HALT:
              halt_now = true;
              break;
            default:
              report.reason =
                  cat("unhandled BRU op at bundle ", pc);
              return false;
          }
          break;
        case FuClass::None:
          break;
      }
    }
    if (!store_fault.empty()) {
      // write_back applies stores before anything else of the step
      // completes, so a bad store beats branch resolution and pc update.
      report.fault = true;
      report.reason = std::move(store_fault);
      return false;
    }
    if (branch_taken && !branch_target.known) {
      report.reason = cat("branch target statically unknown at bundle ", pc);
      return false;
    }

    write_back(writes);

    // ---- finish_step accounting. ----
    const std::uint32_t issued_pc = pc;
    ++stats.bundles_issued;
    stats.bundle_width_hist[std::min<std::size_t>(
        useful_ops, SimStats::kMaxBundleWidth)]++;
    cycle = issue + 1;
    auto& cost = report.per_pc[issued_pc];
    ++cost.issues;
    cost.sb_stall += sb_stall;
    cost.port_stall += port_stall;

    const bool contention =
        program.config.unified_memory_contention && any_mem;
    if (contention) {
      ++cycle;
      ++stats.stall_mem_contention;
      ++cost.contention;
    }

    if (halt_now) {
      halted = true;
    } else if (branch_taken) {
      ++stats.branches_taken;
      const unsigned bubbles = program.config.pipeline_stages - 1;
      stats.branch_bubbles += bubbles;
      cycle += bubbles;
      cost.bubbles += bubbles;
      if (branch_target.v >= program.bundle_count()) {
        report.fault = true;
        report.reason = cat("branch to bundle ", branch_target.v,
                            " past end of program");
        return false;
      }
      pc = branch_target.v;
    } else {
      ++pc;
    }
    stats.cycles = cycle;
    return !halted;
  }
};

}  // namespace

std::string StaticCycleReport::to_string() const {
  std::string out;
  if (exact) {
    out = cat("static-cycles: exact, cycles=", stats.cycles,
              " bundles=", stats.bundles_issued,
              " sb-stalls=", stats.stall_scoreboard,
              " port-stalls=", stats.stall_reg_ports,
              " mem-contention=", stats.stall_mem_contention,
              " branch-bubbles=", stats.branch_bubbles, "\n");
  } else if (fault) {
    out = cat("static-cycles: predicted fault: ", reason, "\n");
  } else {
    out = cat("static-cycles: bounded (", reason, ") after ",
              walked_bundles, " bundles\n");
  }
  out += cat("  bound: bundles_issued <= cycles <= bundles_issued * ",
             max_cycles_per_bundle, "\n");
  // Stall attribution: the costliest pcs of the walk, heaviest first.
  std::vector<std::uint32_t> pcs;
  for (std::uint32_t p = 0; p < per_pc.size(); ++p) {
    const auto& c = per_pc[p];
    if (c.sb_stall + c.port_stall + c.contention + c.bubbles > 0) {
      pcs.push_back(p);
    }
  }
  std::sort(pcs.begin(), pcs.end(), [&](std::uint32_t x, std::uint32_t y) {
    const auto& a = per_pc[x];
    const auto& b = per_pc[y];
    const std::uint64_t ca = a.sb_stall + a.port_stall + a.contention + a.bubbles;
    const std::uint64_t cb = b.sb_stall + b.port_stall + b.contention + b.bubbles;
    if (ca != cb) return ca > cb;
    return x < y;
  });
  const std::size_t limit = std::min<std::size_t>(pcs.size(), 16);
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& c = per_pc[pcs[i]];
    out += cat("  bundle ", pcs[i], ": issues=", c.issues, " sb=", c.sb_stall,
               " ports=", c.port_stall, " contention=", c.contention,
               " bubbles=", c.bubbles, "\n");
  }
  return out;
}

std::string StaticCycleReport::to_json() const {
  std::string out = cat("{\"exact\":", exact ? 1 : 0,
                        ",\"fault\":", fault ? 1 : 0,
                        ",\"walked_bundles\":", walked_bundles,
                        ",\"max_cycles_per_bundle\":", max_cycles_per_bundle);
  if (exact) {
    out += cat(",\"cycles\":", stats.cycles,
               ",\"bundles_issued\":", stats.bundles_issued,
               ",\"stall_scoreboard\":", stats.stall_scoreboard,
               ",\"stall_reg_ports\":", stats.stall_reg_ports,
               ",\"stall_mem_contention\":", stats.stall_mem_contention,
               ",\"branch_bubbles\":", stats.branch_bubbles);
  }
  out += "}";
  return out;
}

StaticCycleReport predict_cycles(const Program& program,
                                 const CustomOpTable& custom,
                                 const StaticCycleOptions& options) {
  StaticCycleReport report;

  // Bind builtin semantics for config-enabled custom ops the caller did
  // not supply, exactly as the simulator's constructor does.
  CustomOpTable bound = custom;
  for (unsigned slot = 0; slot < program.config.custom_ops.size(); ++slot) {
    if (!bound.has(slot)) {
      auto op = builtin_custom_op(program.config.custom_ops[slot]);
      if (op) bound.install(slot, std::move(*op));
    }
  }
  const Mdes mdes(program.config, &bound);

  // ---- Whole-program bound scan. ----
  std::uint64_t max_lat = 1;
  std::uint64_t max_ports = 0;
  bool any_branch = false;
  bool any_mem = false;
  for (std::size_t bi = 0; bi < program.bundle_count(); ++bi) {
    const auto bundle = program.bundle(static_cast<std::uint32_t>(bi));
    unsigned ports = 0;
    for (const Instruction& inst : bundle) {
      if (inst.is_nop()) continue;
      const OpInfo& info = inst.info();
      max_lat = std::max<std::uint64_t>(max_lat, mdes.latency(inst.op));
      any_branch |= info.is_branch;
      any_mem |= info.is_mem() && inst.op != Op::OUT;
      if (inst.src1.is_reg() && file_of_src(info.src1) == RegFile::Gpr &&
          inst.src1.reg != 0) {
        ++ports;
      }
      if (inst.src2.is_reg() && file_of_src(info.src2) == RegFile::Gpr &&
          inst.src2.reg != 0) {
        ++ports;
      }
      if (info.dest1_is_source && inst.dest1 != 0) ++ports;
      if (info.writes_dest1() && info.dest1 == RegFile::Gpr &&
          inst.dest1 != 0) {
        ++ports;
      }
    }
    max_ports = std::max<std::uint64_t>(max_ports, ports);
  }
  const unsigned budget = mdes.reg_port_budget();
  const std::uint64_t port_bound =
      max_ports == 0 ? 0 : (max_ports + budget - 1) / budget - 1;
  report.max_cycles_per_bundle =
      1 + (max_lat - 1) + port_bound +
      (program.config.unified_memory_contention && any_mem ? 1 : 0) +
      (any_branch ? program.config.pipeline_stages - 1 : 0);

  if (program.config.issue_width > SimStats::kMaxBundleWidth) {
    report.fault = true;
    report.reason = cat("issue_width ", program.config.issue_width,
                        " exceeds the bundle-width histogram range 0..",
                        SimStats::kMaxBundleWidth);
    return report;
  }

  // ---- Static walk. ----
  Walker w(program, mdes, bound, options, report);
  while (report.walked_bundles < options.max_bundles) {
    ++report.walked_bundles;
    if (!w.step()) break;
  }
  if (w.halted) {
    report.exact = true;
  } else if (!report.fault && report.reason.empty()) {
    report.reason = cat("walk budget of ", options.max_bundles,
                        " bundles exhausted");
  }
  return report;
}

}  // namespace cepic::analysis
