// Static schedule analyzer: predicts the cycle behaviour of an
// assembled Program by walking bundles with the Mdes latency/port model
// — the same issue rules the simulator applies, evaluated over
// statically-known values (registers start at their reset values;
// memory loads are unknown).  On programs whose control flow and guard
// predicates resolve statically the prediction is *exact*: the returned
// SimStats compares field-for-field equal to EpicSimulator::run().
// When a branch, guard, BTR target or memory address depends on an
// unknown value the walk stops and only the per-bundle worst-case bound
// below applies.  Statically-resolved faults (unsupported op, branch
// past end, null-guard / out-of-range / misaligned access) are
// predicted with the simulator's exact fault text.
//
// Bound contract (valid for every terminating run, any input state):
//
//   bundles_issued <= cycles <= bundles_issued * max_cycles_per_bundle
//
// where max_cycles_per_bundle = 1 + (Lmax-1) + port_bound + contention
// + (pipeline_stages-1), from a whole-program scan (see docs/ANALYSIS.md
// for the derivation).  tests/test_static_cycles.cpp enforces both
// modes against the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/custom.hpp"
#include "core/program.hpp"
#include "sim/stats.hpp"

namespace cepic::analysis {

struct StaticCycleOptions {
  /// Walk budget: bundles to execute statically before giving up and
  /// falling back to the bound (covers static infinite loops too).
  std::uint64_t max_bundles = 1u << 20;
  /// Data memory size the fault model mirrors; must match the
  /// SimOptions::mem_size of the run being predicted (both default to
  /// 4 MiB). Accesses below kDataBase, past this size, or misaligned
  /// fault exactly like DataMemory::check.
  std::size_t mem_size = std::size_t{1} << 22;
};

struct StaticCycleReport {
  /// The whole run resolved statically to HALT: `stats` is the exact
  /// prediction, field-for-field comparable with the simulator's.
  bool exact = false;
  /// The walk proved the simulator will fault (unsupported op, branch
  /// past end, ...); `reason` carries the predicted fault text.
  bool fault = false;
  /// Why the walk stopped when not exact (unknown guard/branch/target,
  /// budget exhausted, fault).
  std::string reason;

  SimStats stats;  ///< meaningful only when exact
  std::uint64_t walked_bundles = 0;

  std::uint64_t max_cycles_per_bundle = 1;

  /// Per-pc stall attribution accumulated over the static walk.
  struct BundleCost {
    std::uint64_t issues = 0;
    std::uint64_t sb_stall = 0;
    std::uint64_t port_stall = 0;
    std::uint64_t contention = 0;
    std::uint64_t bubbles = 0;
  };
  std::vector<BundleCost> per_pc;

  /// Does an observed run satisfy the stated bound?
  bool within_bound(const SimStats& observed) const {
    return observed.cycles >= observed.bundles_issued &&
           observed.cycles <= observed.bundles_issued * max_cycles_per_bundle;
  }

  std::string to_string() const;
  /// Machine-readable single-object JSON (schemas/lint.schema.json).
  std::string to_json() const;
};

/// Analyze `program` with its embedded configuration (custom-op
/// semantics default to the builtin library, as in the simulator).
StaticCycleReport predict_cycles(const Program& program,
                                 const CustomOpTable& custom = {},
                                 const StaticCycleOptions& options = {});

}  // namespace cepic::analysis
