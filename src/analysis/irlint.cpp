#include "analysis/irlint.hpp"

#include <algorithm>

#include "analysis/analyses.hpp"
#include "analysis/intervals.hpp"
#include "support/text.hpp"

namespace cepic::analysis {

using ir::IrInst;
using ir::VReg;

namespace {

constexpr std::string_view kRuleIds[kNumLintRules] = {
    "ir.use-before-def", "ir.dead-store",    "ir.unreachable",
    "ir.guard-false",    "ir.const-branch",  "ir.global-oob",
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += cat("\\u00", "0123456789abcdef"[(c >> 4) & 0xf],
                     "0123456789abcdef"[c & 0xf]);
        } else {
          out += c;
        }
    }
  }
  return out;
}

class FunctionLinter {
 public:
  FunctionLinter(const ir::Module& module, const ir::Function& fn,
                 const LintOptions& options, std::vector<LintDiagnostic>& out)
      : module_(module),
        fn_(fn),
        options_(options),
        out_(out),
        first_(out.size()),
        cfg_(Cfg::build(fn)) {}

  void run() {
    const IntervalAnalysis ia = compute_intervals(module_, fn_, cfg_);

    if (options_.rule_enabled(LintRule::Unreachable)) {
      for (int b = 0; b < cfg_.num_blocks(); ++b) {
        if (b == 0 || ia.executable[b]) continue;
        diag(LintRule::Unreachable, LintSeverity::Warning, b, -1,
             cfg_.reachable[b]
                 ? "block can never execute: branch conditions exclude it"
                 : "block has no path from entry");
      }
    }

    if (options_.rule_enabled(LintRule::UseBeforeDef)) {
      lint_use_before_def();
    }
    if (options_.rule_enabled(LintRule::DeadStore)) lint_dead_stores();

    if (options_.rule_enabled(LintRule::GuardFalse)) {
      for (const auto& f : ia.guard_facts) {
        if (f.commits) continue;
        const IrInst& inst = fn_.blocks[f.block].insts[f.inst];
        diag(LintRule::GuardFalse, LintSeverity::Warning, f.block, f.inst,
             cat("guard %", inst.guard, inst.guard_negate ? " (negated)" : "",
                 " is never satisfied: instruction cannot commit"));
      }
    }

    if (options_.rule_enabled(LintRule::ConstBranch)) {
      for (const auto& f : ia.branch_facts) {
        const IrInst& term = fn_.blocks[f.block].insts.back();
        diag(LintRule::ConstBranch, LintSeverity::Warning, f.block,
             static_cast<int>(fn_.blocks[f.block].insts.size()) - 1,
             cat("condition is always ", f.then_taken ? "true" : "false",
                 ": branch always goes to .b",
                 f.then_taken ? term.block_then : term.block_else));
      }
    }

    if (options_.rule_enabled(LintRule::GlobalOob)) {
      for (const auto& f : ia.oob) {
        const ir::Global& g = module_.globals[f.global];
        std::string range = f.off_lo == f.off_hi
                                ? cat("byte offset ", f.off_lo)
                                : cat("byte offsets [", f.off_lo, ",",
                                      f.off_hi, "]");
        diag(LintRule::GlobalOob, LintSeverity::Error, f.block, f.inst,
             cat(f.size, "-byte access at @", g.name, " + ", range,
                 " is outside the global (", f.limit, " bytes)"));
      }
    }

    // Deterministic order regardless of which analysis found what.
    std::stable_sort(out_.begin() + first_, out_.end(),
                     [](const LintDiagnostic& a, const LintDiagnostic& b) {
                       if (a.block != b.block) return a.block < b.block;
                       if (a.inst != b.inst) return a.inst < b.inst;
                       return static_cast<unsigned>(a.rule) <
                              static_cast<unsigned>(b.rule);
                     });
  }

 private:
  void diag(LintRule rule, LintSeverity sev, int block, int inst,
            std::string message) {
    out_.push_back({rule, sev, fn_.name, block, inst, std::move(message)});
  }

  void lint_use_before_def() {
    const ReachingDefs rd = compute_reaching_defs(fn_, cfg_);
    for (int b = 0; b < cfg_.num_blocks(); ++b) {
      if (!cfg_.reachable[b]) continue;
      // Vregs definitely assigned earlier in this block.
      std::vector<bool> defined(fn_.next_vreg, false);
      const auto& insts = fn_.blocks[b].insts;
      for (std::size_t i = 0; i < insts.size(); ++i) {
        const IrInst& inst = insts[i];
        const auto check_use = [&](VReg v) {
          if (v == ir::kNoVReg || defined[v]) return;
          if (!rd.entry_def_reaches(fn_, b, v)) return;
          diag(LintRule::UseBeforeDef, LintSeverity::Warning, b,
               static_cast<int>(i),
               cat("%", v, " may be read before it is assigned"));
          defined[v] = true;  // report each vreg once per block
        };
        for_each_use(inst, [&](const ir::Value& v) {
          if (v.is_reg()) check_use(v.reg);
        });
        if (inst.guard != ir::kNoVReg) check_use(inst.guard);
        const VReg d = def_of(inst);
        if (d != ir::kNoVReg && inst.guard == ir::kNoVReg) defined[d] = true;
      }
    }
  }

  void lint_dead_stores() {
    const Liveness lv = compute_liveness(fn_, cfg_);
    for (int b = 0; b < cfg_.num_blocks(); ++b) {
      if (!cfg_.reachable[b]) continue;
      BitSet live = lv.live_out[b];
      const auto& insts = fn_.blocks[b].insts;
      for (std::size_t i = insts.size(); i-- > 0;) {
        const IrInst& inst = insts[i];
        const VReg d = def_of(inst);
        if (d != ir::kNoVReg && !live.test(d) &&
            !ir::has_side_effects(inst)) {
          diag(LintRule::DeadStore, LintSeverity::Warning, b,
               static_cast<int>(i),
               cat("result %", d, " is never used"));
        }
        if (d != ir::kNoVReg && inst.guard == ir::kNoVReg) live.reset(d);
        for_each_use(inst, [&](const ir::Value& v) {
          if (v.is_reg()) live.set(v.reg);
        });
        if (inst.guard != ir::kNoVReg) live.set(inst.guard);
      }
    }
  }

  const ir::Module& module_;
  const ir::Function& fn_;
  const LintOptions& options_;
  std::vector<LintDiagnostic>& out_;
  std::size_t first_ = 0;
  Cfg cfg_;
};

}  // namespace

std::string_view lint_rule_id(LintRule rule) {
  return kRuleIds[static_cast<unsigned>(rule)];
}

std::string_view lint_severity_name(LintSeverity s) {
  return s == LintSeverity::Error ? "error" : "warning";
}

std::string LintDiagnostic::to_string() const {
  std::string s = cat(lint_severity_name(severity), ": @", function, " .b",
                      block);
  if (inst >= 0) s += cat(" inst ", inst);
  s += cat(": ", message, " [", lint_rule_id(rule), "]");
  return s;
}

std::size_t LintReport::count(LintSeverity s) const {
  std::size_t n = 0;
  for (const auto& d : diags) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool LintReport::has_rule(LintRule rule) const {
  return std::any_of(diags.begin(), diags.end(),
                     [rule](const LintDiagnostic& d) { return d.rule == rule; });
}

std::string LintReport::to_text() const {
  std::string out;
  for (const auto& d : diags) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

std::string LintReport::to_json() const {
  std::string out = cat("{\"errors\":", count(LintSeverity::Error),
                        ",\"warnings\":", count(LintSeverity::Warning),
                        ",\"werror\":", werror, ",\"diagnostics\":[");
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const LintDiagnostic& d = diags[i];
    if (i != 0) out += ',';
    out += cat("{\"rule\":\"", lint_rule_id(d.rule), "\",\"severity\":\"",
               lint_severity_name(d.severity), "\",\"function\":\"",
               json_escape(d.function), "\",\"block\":", d.block,
               ",\"inst\":", d.inst, ",\"message\":\"",
               json_escape(d.message), "\"}");
  }
  out += "]}";
  return out;
}

LintReport lint_module(const ir::Module& module, const LintOptions& options) {
  LintReport report;
  report.werror = options.werror;
  for (const ir::Function& fn : module.functions) {
    FunctionLinter linter(module, fn, options, report.diags);
    linter.run();
  }
  return report;
}

}  // namespace cepic::analysis
