#include "analysis/intervals.hpp"

#include <algorithm>
#include <deque>

#include "core/eval.hpp"
#include "core/isa.hpp"
#include "support/text.hpp"

namespace cepic::analysis {

using ir::IrInst;
using ir::IrOp;
using ir::VReg;

namespace {

constexpr int kWidenAfterVisits = 16;

Op alu_op_of(IrOp op) {
  switch (op) {
    case IrOp::Add: return Op::ADD;
    case IrOp::Sub: return Op::SUB;
    case IrOp::Mul: return Op::MUL;
    case IrOp::Div: return Op::DIV;
    case IrOp::Rem: return Op::REM;
    case IrOp::And: return Op::AND;
    case IrOp::Or: return Op::OR;
    case IrOp::Xor: return Op::XOR;
    case IrOp::Shl: return Op::SHL;
    case IrOp::Shra: return Op::SHRA;
    case IrOp::Shrl: return Op::SHRL;
    case IrOp::Min: return Op::MIN;
    case IrOp::Max: return Op::MAX;
    default: break;
  }
  CEPIC_CHECK(false, "not a binary ALU IrOp");
}

Op cmp_op_of(IrOp op) {
  switch (op) {
    case IrOp::CmpEq: return Op::CMPP_EQ;
    case IrOp::CmpNe: return Op::CMPP_NE;
    case IrOp::CmpLt: return Op::CMPP_LT;
    case IrOp::CmpLe: return Op::CMPP_LE;
    case IrOp::CmpGt: return Op::CMPP_GT;
    case IrOp::CmpGe: return Op::CMPP_GE;
    case IrOp::CmpLtU: return Op::CMPP_LTU;
    case IrOp::CmpLeU: return Op::CMPP_LEU;
    case IrOp::CmpGtU: return Op::CMPP_GTU;
    case IrOp::CmpGeU: return Op::CMPP_GEU;
    default: break;
  }
  CEPIC_CHECK(false, "not a compare IrOp");
}

std::uint32_t bits_of(std::int64_t v) {
  return static_cast<std::uint32_t>(static_cast<std::int32_t>(v));
}

Interval clamp_or_full(std::int64_t lo, std::int64_t hi) {
  if (lo < INT32_MIN || hi > INT32_MAX) return Interval::full();
  return {lo, hi};
}

/// The unsigned 32-bit view of a signed interval, when it does not wrap
/// around: [lo,hi] both negative or both non-negative maps to one
/// unsigned range; a sign-crossing interval has a wrapped unsigned image.
bool unsigned_view(const Interval& iv, std::uint64_t& lo,
                   std::uint64_t& hi) {
  if (iv.lo >= 0) {
    lo = static_cast<std::uint64_t>(iv.lo);
    hi = static_cast<std::uint64_t>(iv.hi);
    return true;
  }
  if (iv.hi < 0) {
    lo = static_cast<std::uint64_t>(iv.lo + (std::int64_t{1} << 32));
    hi = static_cast<std::uint64_t>(iv.hi + (std::int64_t{1} << 32));
    return true;
  }
  return false;
}

/// Interval transfer for a binary ALU op; exact (via the shared
/// combinational evaluator) on constants, interval rules otherwise.
Interval alu_interval(IrOp op, const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  if (a.is_const() && b.is_const()) {
    const std::uint32_t r =
        eval_alu(alu_op_of(op), bits_of(a.lo), bits_of(b.lo), 32);
    return Interval::constant(static_cast<std::int32_t>(r));
  }
  switch (op) {
    case IrOp::Add:
      return clamp_or_full(a.lo + b.lo, a.hi + b.hi);
    case IrOp::Sub:
      return clamp_or_full(a.lo - b.hi, a.hi - b.lo);
    case IrOp::Mul: {
      const std::int64_t p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                                 a.hi * b.hi};
      return clamp_or_full(*std::min_element(p, p + 4),
                           *std::max_element(p, p + 4));
    }
    case IrOp::Div:
      // Truncating division is monotone for a non-negative dividend and
      // a positive constant divisor (matches eval_alu off the corner
      // cases, which need b == 0 or negative operands).
      if (a.lo >= 0 && b.is_const() && b.lo > 0) {
        return {a.lo / b.lo, a.hi / b.lo};
      }
      return Interval::full();
    case IrOp::Rem:
      if (a.lo >= 0 && b.is_const() && b.lo > 0) {
        return {0, std::min(a.hi, b.lo - 1)};
      }
      return Interval::full();
    case IrOp::And:
      if (a.lo >= 0 && b.lo >= 0) return {0, std::min(a.hi, b.hi)};
      return Interval::full();
    case IrOp::Or:
      // For non-negative x, y: max(x, y) <= x|y <= x + y.
      if (a.lo >= 0 && b.lo >= 0) {
        return clamp_or_full(std::max(a.lo, b.lo), a.hi + b.hi);
      }
      return Interval::full();
    case IrOp::Xor:
      if (a.lo >= 0 && b.lo >= 0) return clamp_or_full(0, a.hi + b.hi);
      return Interval::full();
    case IrOp::Shrl:
    case IrOp::Shra:
      // Right shift of a non-negative range by a constant in [0,31].
      if (a.lo >= 0 && b.is_const() && b.lo >= 0 && b.lo < 32) {
        return {a.lo >> b.lo, a.hi >> b.lo};
      }
      return Interval::full();
    case IrOp::Shl:
      if (a.lo >= 0 && b.is_const() && b.lo >= 0 && b.lo < 32) {
        return clamp_or_full(a.lo << b.lo, a.hi << b.lo);
      }
      return Interval::full();
    case IrOp::Min:
      return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
    case IrOp::Max:
      return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
    default:
      return Interval::full();
  }
}

/// Compare decision over intervals: 0 = always false, 1 = always true,
/// -1 = unknown.
int cmp_decide(IrOp op, const Interval& a, const Interval& b) {
  if (a.is_const() && b.is_const()) {
    return eval_cmpp(cmp_op_of(op), bits_of(a.lo), bits_of(b.lo), 32) ? 1 : 0;
  }
  switch (op) {
    case IrOp::CmpEq:
      if (a.hi < b.lo || b.hi < a.lo) return 0;
      return -1;
    case IrOp::CmpNe:
      if (a.hi < b.lo || b.hi < a.lo) return 1;
      return -1;
    case IrOp::CmpLt:
      if (a.hi < b.lo) return 1;
      if (a.lo >= b.hi) return 0;
      return -1;
    case IrOp::CmpLe:
      if (a.hi <= b.lo) return 1;
      if (a.lo > b.hi) return 0;
      return -1;
    case IrOp::CmpGt:
      return cmp_decide(IrOp::CmpLt, b, a);
    case IrOp::CmpGe:
      return cmp_decide(IrOp::CmpLe, b, a);
    case IrOp::CmpLtU:
    case IrOp::CmpLeU:
    case IrOp::CmpGtU:
    case IrOp::CmpGeU: {
      std::uint64_t alo, ahi, blo, bhi;
      if (!unsigned_view(a, alo, ahi) || !unsigned_view(b, blo, bhi)) {
        return -1;
      }
      switch (op) {
        case IrOp::CmpLtU:
          if (ahi < blo) return 1;
          if (alo >= bhi) return 0;
          return -1;
        case IrOp::CmpLeU:
          if (ahi <= blo) return 1;
          if (alo > bhi) return 0;
          return -1;
        case IrOp::CmpGtU:
          if (bhi < alo) return 1;
          if (blo >= ahi) return 0;
          return -1;
        default:  // CmpGeU
          if (bhi <= alo) return 1;
          if (blo > ahi) return 0;
          return -1;
      }
    }
    default:
      return -1;
  }
}

struct Analyzer {
  const ir::Module& module;
  const ir::Function& fn;
  const Cfg& cfg;
  ir::DataLayout layout;
  IntervalAnalysis& ia;

  Interval concretize(const AbsVal& v) const {
    if (v.kind != AbsVal::Kind::GlobalPtr) return v.iv;
    const std::int64_t base = layout.global_addr[v.global];
    return clamp_or_full(base + v.iv.lo, base + v.iv.hi);
  }

  AbsVal as_number(const AbsVal& v) const {
    if (v.kind != AbsVal::Kind::GlobalPtr) return v;
    return AbsVal::number(concretize(v));
  }

  /// Join `from` into `into`; returns true on change.  `widen` loosens
  /// any moving bound to its extreme so loops terminate.
  bool join(AbsVal& into, const AbsVal& from, bool widen) const {
    if (from.is_bottom()) return false;
    if (into.is_bottom()) {
      into = from;
      return true;
    }
    AbsVal a = into;
    AbsVal b = from;
    if (a.kind == AbsVal::Kind::GlobalPtr &&
        (b.kind != AbsVal::Kind::GlobalPtr || b.global != a.global)) {
      a = as_number(a);
      b = as_number(b);
    } else if (b.kind == AbsVal::Kind::GlobalPtr &&
               a.kind != AbsVal::Kind::GlobalPtr) {
      b = as_number(b);
    }
    AbsVal joined = a;
    if (b.iv.lo < joined.iv.lo) {
      joined.iv.lo = widen ? INT32_MIN : b.iv.lo;
    }
    if (b.iv.hi > joined.iv.hi) {
      joined.iv.hi = widen ? INT32_MAX : b.iv.hi;
    }
    if (joined == into) return false;
    into = joined;
    return true;
  }

  AbsVal value_of(const std::vector<AbsVal>& state,
                  const ir::Value& v) const {
    if (v.is_imm()) return AbsVal::constant(v.imm);
    if (v.is_reg()) return state[v.reg];
    return AbsVal::top();
  }

  /// Abstract result of a value-producing instruction.
  AbsVal eval_inst(const std::vector<AbsVal>& state,
                   const IrInst& inst) const {
    switch (inst.op) {
      case IrOp::Mov:
        return value_of(state, inst.a);
      case IrOp::GlobalAddr:
        return AbsVal::global_ptr(inst.global_index, Interval::constant(0));
      case IrOp::Add: {
        const AbsVal a = value_of(state, inst.a);
        const AbsVal b = value_of(state, inst.b);
        if (a.kind == AbsVal::Kind::GlobalPtr &&
            b.kind == AbsVal::Kind::Number) {
          const Interval off =
              alu_interval(IrOp::Add, a.iv, b.iv);
          if (!off.is_full()) return AbsVal::global_ptr(a.global, off);
        }
        if (b.kind == AbsVal::Kind::GlobalPtr &&
            a.kind == AbsVal::Kind::Number) {
          const Interval off = alu_interval(IrOp::Add, b.iv, a.iv);
          if (!off.is_full()) return AbsVal::global_ptr(b.global, off);
        }
        return AbsVal::number(
            alu_interval(IrOp::Add, concretize(a), concretize(b)));
      }
      case IrOp::Sub: {
        const AbsVal a = value_of(state, inst.a);
        const AbsVal b = value_of(state, inst.b);
        if (a.kind == AbsVal::Kind::GlobalPtr &&
            b.kind == AbsVal::Kind::Number) {
          const Interval off = alu_interval(IrOp::Sub, a.iv, b.iv);
          if (!off.is_full()) return AbsVal::global_ptr(a.global, off);
        }
        if (a.kind == AbsVal::Kind::GlobalPtr &&
            b.kind == AbsVal::Kind::GlobalPtr && a.global == b.global) {
          return AbsVal::number(alu_interval(IrOp::Sub, a.iv, b.iv));
        }
        return AbsVal::number(
            alu_interval(IrOp::Sub, concretize(a), concretize(b)));
      }
      case IrOp::CmpEq:
      case IrOp::CmpNe:
      case IrOp::CmpLt:
      case IrOp::CmpLe:
      case IrOp::CmpGt:
      case IrOp::CmpGe:
      case IrOp::CmpLtU:
      case IrOp::CmpLeU:
      case IrOp::CmpGtU:
      case IrOp::CmpGeU: {
        const Interval a = concretize(value_of(state, inst.a));
        const Interval b = concretize(value_of(state, inst.b));
        const int d = cmp_decide(inst.op, a, b);
        if (d < 0) return AbsVal::number({0, 1});
        return AbsVal::constant(d);
      }
      case IrOp::LoadW:
      case IrOp::LoadBU:
        return AbsVal::top();
      case IrOp::LoadB:
        return AbsVal::number({-128, 127});
      case IrOp::FrameAddr:
      case IrOp::Call:
        return AbsVal::top();
      default:
        if (ir::is_binary_alu(inst.op)) {
          const Interval a = concretize(value_of(state, inst.a));
          const Interval b = concretize(value_of(state, inst.b));
          return AbsVal::number(alu_interval(inst.op, a, b));
        }
        return AbsVal::top();
    }
  }

  /// Guard decision from the current state: 1 = commits, 0 = nullified,
  /// -1 = unknown.  Unguarded instructions always commit.
  int guard_decide(const std::vector<AbsVal>& state,
                   const IrInst& inst) const {
    if (inst.guard == ir::kNoVReg) return 1;
    const Interval g = concretize(state[inst.guard]);
    if (g.is_empty()) return -1;
    if (g.is_zero()) return inst.guard_negate ? 1 : 0;
    if (g.excludes_zero()) return inst.guard_negate ? 0 : 1;
    return -1;
  }

  /// Optional per-instruction hooks for the final fact-collection pass.
  struct FactSink {
    IntervalAnalysis* ia = nullptr;
    int block = 0;
  };

  /// Apply one instruction to the state.  Shared by the fixed point and
  /// the fact pass so both see identical transfer semantics.
  void transfer_inst(std::vector<AbsVal>& state, const IrInst& inst,
                     int inst_index, FactSink* sink) const {
    const int commits = guard_decide(state, inst);
    if (sink != nullptr && inst.guard != ir::kNoVReg && commits >= 0) {
      sink->ia->guard_facts.push_back(
          {sink->block, inst_index, commits == 1});
    }
    if (commits == 0) return;

    if (sink != nullptr && commits == 1 && ir::is_load(inst.op)) {
      check_oob(state, inst, inst_index, sink, /*size=*/
                inst.op == IrOp::LoadW ? 4u : 1u);
    }
    if (sink != nullptr && commits == 1 && ir::is_store(inst.op)) {
      check_oob(state, inst, inst_index, sink,
                inst.op == IrOp::StoreW ? 4u : 1u);
    }

    const VReg d = def_of(inst);
    if (d == ir::kNoVReg) return;
    AbsVal nv = eval_inst(state, inst);
    if (commits < 0) {
      // Unknown guard: the write may or may not land.
      join(nv, state[d], /*widen=*/false);
    }
    state[d] = nv;
  }

  void check_oob(const std::vector<AbsVal>& state, const IrInst& inst,
                 int inst_index, FactSink* sink, unsigned size) const {
    const AbsVal a = value_of(state, inst.a);
    const AbsVal b = value_of(state, inst.b);
    AbsVal addr;
    if (a.kind == AbsVal::Kind::GlobalPtr &&
        b.kind == AbsVal::Kind::Number) {
      const Interval off = alu_interval(IrOp::Add, a.iv, b.iv);
      addr = off.is_full() ? AbsVal::top()
                           : AbsVal::global_ptr(a.global, off);
    } else if (b.kind == AbsVal::Kind::GlobalPtr &&
               a.kind == AbsVal::Kind::Number) {
      const Interval off = alu_interval(IrOp::Add, b.iv, a.iv);
      addr = off.is_full() ? AbsVal::top()
                           : AbsVal::global_ptr(b.global, off);
    } else {
      return;
    }
    if (addr.kind != AbsVal::Kind::GlobalPtr || addr.iv.is_empty()) return;
    const std::uint32_t limit =
        module.globals[addr.global].size_words * 4;
    // Provably out of bounds on every execution: even the smallest
    // offset overruns, or every offset is negative.
    const bool oob =
        addr.iv.lo + size > limit || addr.iv.hi < 0;
    if (oob) {
      sink->ia->oob.push_back({sink->block, inst_index, addr.global,
                               addr.iv.lo, addr.iv.hi, size, limit});
    }
  }

  /// CondBr edge refinement: constrain the condition vreg and, when the
  /// condition was computed by an unguarded compare in the same block
  /// whose operands are still current, the compare operands too.
  /// Returns false if the refined state is infeasible (empty interval).
  bool refine_edge(std::vector<AbsVal>& state, const ir::BasicBlock& block,
                   const std::vector<int>& last_def, bool then_edge) const {
    const IrInst& term = block.insts.back();
    if (!term.a.is_reg()) return true;
    const VReg c = term.a.reg;

    // The condition itself: != 0 on the then edge, == 0 on the else.
    if (state[c].kind == AbsVal::Kind::Number) {
      Interval iv = state[c].iv;
      if (then_edge) {
        if (iv.lo == 0) iv.lo = 1;
        if (iv.hi == 0) iv.hi = -1;  // was [l,0] with l<0
      } else {
        iv.lo = std::max<std::int64_t>(iv.lo, 0);
        iv.hi = std::min<std::int64_t>(iv.hi, 0);
      }
      if (iv.is_empty()) return false;
      state[c].iv = iv;
    }

    const int di = last_def[c];
    if (di < 0) return true;
    const IrInst& cmp = block.insts[di];
    if (!ir::is_cmp(cmp.op) || cmp.guard != ir::kNoVReg) return true;
    // Operands must not have been redefined after the compare.
    const auto current = [&](const ir::Value& v) {
      return !v.is_reg() || last_def[v.reg] < di;
    };
    if (!current(cmp.a) || !current(cmp.b)) return true;

    return apply_cmp_constraint(state, cmp, then_edge);
  }

  /// Constrain the operands of `cmp` by "cmp is `truth`".  Only plain
  /// number operands are refined; returns false on infeasibility.
  bool apply_cmp_constraint(std::vector<AbsVal>& state, const IrInst& cmp,
                            bool truth) const {
    IrOp op = cmp.op;
    // Normalise to a true condition by flipping the predicate.
    if (!truth) {
      switch (op) {
        case IrOp::CmpEq: op = IrOp::CmpNe; break;
        case IrOp::CmpNe: op = IrOp::CmpEq; break;
        case IrOp::CmpLt: op = IrOp::CmpGe; break;
        case IrOp::CmpLe: op = IrOp::CmpGt; break;
        case IrOp::CmpGt: op = IrOp::CmpLe; break;
        case IrOp::CmpGe: op = IrOp::CmpLt; break;
        case IrOp::CmpLtU: op = IrOp::CmpGeU; break;
        case IrOp::CmpLeU: op = IrOp::CmpGtU; break;
        case IrOp::CmpGtU: op = IrOp::CmpLeU; break;
        case IrOp::CmpGeU: op = IrOp::CmpLtU; break;
        default: return true;
      }
    }
    // Normalise a > b to b < a, a >= b to b <= a.
    const ir::Value* va = &cmp.a;
    const ir::Value* vb = &cmp.b;
    switch (op) {
      case IrOp::CmpGt: op = IrOp::CmpLt; std::swap(va, vb); break;
      case IrOp::CmpGe: op = IrOp::CmpLe; std::swap(va, vb); break;
      case IrOp::CmpGtU: op = IrOp::CmpLtU; std::swap(va, vb); break;
      case IrOp::CmpGeU: op = IrOp::CmpLeU; std::swap(va, vb); break;
      default: break;
    }

    const auto get = [&](const ir::Value& v) -> Interval {
      if (v.is_imm()) return Interval::constant(v.imm);
      if (v.is_reg() && state[v.reg].kind == AbsVal::Kind::Number) {
        return state[v.reg].iv;
      }
      return Interval::full();
    };
    const auto put = [&](const ir::Value& v, const Interval& iv) {
      if (v.is_reg() && state[v.reg].kind == AbsVal::Kind::Number) {
        state[v.reg].iv = iv;
      }
    };

    Interval a = get(*va);
    Interval b = get(*vb);
    switch (op) {
      case IrOp::CmpEq: {
        const Interval m{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
        if (m.is_empty()) return false;
        put(*va, m);
        put(*vb, m);
        return true;
      }
      case IrOp::CmpNe:
        if (a.is_const() && b.is_const() && a.lo == b.lo) return false;
        return true;
      case IrOp::CmpLt:
        a.hi = std::min(a.hi, b.hi - 1);
        b.lo = std::max(b.lo, a.lo + 1);
        if (a.is_empty() || b.is_empty()) return false;
        put(*va, a);
        put(*vb, b);
        return true;
      case IrOp::CmpLe:
        a.hi = std::min(a.hi, b.hi);
        b.lo = std::max(b.lo, a.lo);
        if (a.is_empty() || b.is_empty()) return false;
        put(*va, a);
        put(*vb, b);
        return true;
      case IrOp::CmpLtU:
      case IrOp::CmpLeU:
        // Unsigned: refine only when both ranges sit in the
        // non-negative half, where the orders coincide.
        if (a.lo >= 0 && b.lo >= 0) {
          const std::int64_t slack = op == IrOp::CmpLtU ? 1 : 0;
          a.hi = std::min(a.hi, b.hi - slack);
          b.lo = std::max(b.lo, a.lo + slack);
          if (a.is_empty() || b.is_empty()) return false;
          put(*va, a);
          put(*vb, b);
        }
        return true;
      default:
        return true;
    }
  }

  void run() {
    const int nb = cfg.num_blocks();
    const std::size_t nv = fn.next_vreg;
    ia.in.assign(nb, std::vector<AbsVal>(nv, AbsVal::bottom()));
    ia.out.assign(nb, std::vector<AbsVal>(nv, AbsVal::bottom()));
    ia.executable.assign(nb, false);
    ia.edge_executable.resize(nb);
    for (int b = 0; b < nb; ++b) {
      ia.edge_executable[b].assign(cfg.succs[b].size(), false);
    }
    ia.global_addr_ = layout.global_addr;
    if (nb == 0) return;

    // Entry state: params unknown, every other vreg starts as the
    // implicit zero the interpreter gives uninitialised registers.
    std::vector<AbsVal> entry(nv, AbsVal::constant(0));
    for (VReg p : fn.params) entry[p] = AbsVal::top();

    std::vector<int> visits(nb, 0);
    std::deque<int> worklist;
    std::vector<bool> queued(nb, false);
    const auto enqueue = [&](int b) {
      if (!queued[b]) {
        queued[b] = true;
        worklist.push_back(b);
      }
    };

    ia.executable[0] = true;
    ia.in[0] = entry;
    enqueue(0);

    const auto propagate = [&](int from, int edge, int to,
                               std::vector<AbsVal>&& state) {
      ia.edge_executable[from][edge] = true;
      if (!ia.executable[to]) {
        ia.executable[to] = true;
        ia.in[to] = std::move(state);
        ++visits[to];
        enqueue(to);
        return;
      }
      const bool widen = visits[to] > kWidenAfterVisits;
      bool changed = false;
      for (std::size_t v = 0; v < nv; ++v) {
        changed |= join(ia.in[to][v], state[v], widen);
      }
      if (changed) {
        ++visits[to];
        enqueue(to);
      }
    };

    while (!worklist.empty()) {
      const int b = worklist.front();
      worklist.pop_front();
      queued[b] = false;

      std::vector<AbsVal> state = ia.in[b];
      std::vector<int> last_def(nv, -1);
      const auto& insts = fn.blocks[b].insts;
      for (std::size_t i = 0; i + 1 < insts.size(); ++i) {
        transfer_inst(state, insts[i], static_cast<int>(i), nullptr);
        // Record any def, guarded or not: refine_edge only trusts a
        // last_def that is an unguarded compare, and a guarded def in
        // between conservatively invalidates operand currency.
        const VReg d = def_of(insts[i]);
        if (d != ir::kNoVReg) last_def[d] = static_cast<int>(i);
      }
      ia.out[b] = state;

      const IrInst& term = insts.back();
      if (term.op == IrOp::Br) {
        propagate(b, 0, cfg.succs[b][0], std::vector<AbsVal>(state));
      } else if (term.op == IrOp::CondBr) {
        const Interval c = concretize(value_of(state, term.a));
        const bool both = !c.excludes_zero() && !c.is_zero();
        const bool then_on = both || c.excludes_zero();
        const bool else_on = both || c.is_zero();
        if (term.block_then == term.block_else) {
          // successors() deduplicates the edge.
          propagate(b, 0, cfg.succs[b][0], std::vector<AbsVal>(state));
        } else {
          if (then_on) {
            std::vector<AbsVal> s = state;
            if (refine_edge(s, fn.blocks[b], last_def, /*then=*/true)) {
              propagate(b, 0, term.block_then, std::move(s));
            }
          }
          if (else_on) {
            std::vector<AbsVal> s = state;
            if (refine_edge(s, fn.blocks[b], last_def, /*then=*/false)) {
              propagate(b, 1, term.block_else, std::move(s));
            }
          }
        }
      }
      // Ret: no successors.
    }

    // Final fact pass with the settled states: statically-decided
    // guards and branches, and provably out-of-bounds global accesses.
    for (int b = 0; b < nb; ++b) {
      if (!ia.executable[b]) continue;
      std::vector<AbsVal> state = ia.in[b];
      FactSink sink{&ia, b};
      const auto& insts = fn.blocks[b].insts;
      for (std::size_t i = 0; i + 1 < insts.size(); ++i) {
        transfer_inst(state, insts[i], static_cast<int>(i), &sink);
      }
      const IrInst& term = insts.back();
      if (term.op == IrOp::CondBr && term.block_then != term.block_else) {
        const Interval c = concretize(value_of(state, term.a));
        if (c.excludes_zero()) {
          ia.branch_facts.push_back({b, true});
        } else if (c.is_zero()) {
          ia.branch_facts.push_back({b, false});
        }
      }
    }
  }
};

}  // namespace

Interval IntervalAnalysis::concretize(const AbsVal& v) const {
  if (v.kind != AbsVal::Kind::GlobalPtr) return v.iv;
  const std::int64_t base = global_addr_[v.global];
  const std::int64_t lo = base + v.iv.lo;
  const std::int64_t hi = base + v.iv.hi;
  if (lo < INT32_MIN || hi > INT32_MAX) return Interval::full();
  return {lo, hi};
}

std::string IntervalAnalysis::to_string(const ir::Function& fn) const {
  std::string out = cat("intervals @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    if (!executable[b]) {
      out += cat("  .b", b, ": unreachable\n");
      continue;
    }
    out += cat("  .b", b, ":");
    bool any = false;
    for (std::size_t v = 1; v < in[b].size(); ++v) {
      const AbsVal& av = in[b][v];
      if (av.is_bottom()) continue;
      if (av.kind == AbsVal::Kind::Number && av.iv.is_full()) continue;
      any = true;
      if (av.kind == AbsVal::Kind::GlobalPtr) {
        out += cat(" %", v, "=@", av.global, "+[", av.iv.lo, ",", av.iv.hi,
                   "]");
      } else if (av.iv.is_const()) {
        out += cat(" %", v, "=", av.iv.lo);
      } else {
        out += cat(" %", v, "=[", av.iv.lo, ",", av.iv.hi, "]");
      }
    }
    if (!any) out += " top";
    out += "\n";
  }
  return out;
}

IntervalAnalysis compute_intervals(const ir::Module& module,
                                   const ir::Function& fn, const Cfg& cfg) {
  IntervalAnalysis ia;
  Analyzer an{module, fn, cfg, ir::layout_globals(module), ia};
  an.run();
  return ia;
}

}  // namespace cepic::analysis
