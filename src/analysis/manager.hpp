// Per-function analysis caching with LLVM-style preservation.
//
// The optimiser queries every analysis through an AnalysisManager
// instead of recomputing it at each pass boundary.  Results are keyed
// by function identity (the ir::Function's address, which is stable for
// the duration of a pipeline run) and stay valid until a pass that
// *changed* the function reports what it kept intact via a
// PreservedAnalyses set.  Invalidation is per-function: a pass mutating
// one function never drops cached results for its siblings.
//
// The preservation contract is the dangerous part of this design — a
// pass over-claiming (say, keeping liveness after rewriting operands)
// silently feeds stale facts to the next pass.  The manager therefore
// carries a differential verify mode (set_verify / the
// CEPIC_VERIFY_ANALYSES environment variable, also used by the
// preservation-soundness test suite): every invalidate() recomputes
// each *claimed-preserved, currently-cached* analysis from scratch and
// throws InternalError naming the offending pass on any mismatch.
//
// Observability: the manager bumps `opt.analysis_hits`,
// `opt.analysis_computes` and `opt.analysis_invalidations` counters on
// the process-wide obs registry.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "analysis/analyses.hpp"
#include "analysis/cfg.hpp"

namespace cepic::analysis {

enum class AnalysisKind : unsigned {
  kCfg = 0,
  kDominators,
  kLiveness,
  kReachingDefs,
  kAvailableCopies,
};
inline constexpr unsigned kNumAnalysisKinds = 5;

const char* to_string(AnalysisKind kind);

/// The set of analyses a pass left intact on a function it changed.
/// Passes that did not change anything should not invalidate at all.
class PreservedAnalyses {
 public:
  static PreservedAnalyses none() { return PreservedAnalyses(0); }
  static PreservedAnalyses all() {
    return PreservedAnalyses((1u << kNumAnalysisKinds) - 1);
  }

  PreservedAnalyses& preserve(AnalysisKind kind) {
    mask_ |= bit(kind);
    return *this;
  }
  bool preserved(AnalysisKind kind) const { return (mask_ & bit(kind)) != 0; }
  bool preserves_all() const { return mask_ == all().mask_; }

 private:
  explicit PreservedAnalyses(unsigned mask) : mask_(mask) {}
  static unsigned bit(AnalysisKind kind) {
    return 1u << static_cast<unsigned>(kind);
  }
  unsigned mask_ = 0;
};

class AnalysisManager {
 public:
  // Cached getters: compute on miss, return the cached result on hit.
  // References stay valid until the next invalidate()/clear() for that
  // function.
  const Cfg& cfg(const ir::Function& fn);
  const Dominators& dominators(const ir::Function& fn);
  const Liveness& liveness(const ir::Function& fn);
  const ReachingDefs& reaching_defs(const ir::Function& fn);
  const AvailableCopies& available_copies(const ir::Function& fn);

  /// A pass that changed `fn` reports what survives.  Bumps the
  /// function's version and drops every cached analysis not in
  /// `preserved`.  In verify mode, each claimed-preserved cached result
  /// is recomputed fresh and compared; a mismatch throws InternalError
  /// naming `pass`.
  void invalidate(const ir::Function& fn, const PreservedAnalyses& preserved,
                  const char* pass = "?");
  void invalidate_all(const ir::Function& fn) {
    invalidate(fn, PreservedAnalyses::none(), "invalidate_all");
  }

  /// Monotonic per-function change counter (starts at 1, bumps on every
  /// invalidate).  The pipeline uses it to skip pass invocations that
  /// provably cannot change anything: a deterministic pass that last ran
  /// on this exact version and reported "no change" will do so again.
  std::uint64_t version(const ir::Function& fn) const;

  /// Differential-check every preservation claim (expensive; tests).
  void set_verify(bool on) { verify_ = on; }
  bool verify() const { return verify_; }

  /// Drop everything (all functions).
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::uint64_t version = 1;
    std::unique_ptr<Cfg> cfg;
    std::unique_ptr<Dominators> dom;
    std::unique_ptr<Liveness> live;
    std::unique_ptr<ReachingDefs> reach;
    std::unique_ptr<AvailableCopies> copies;
  };

  Entry& entry(const ir::Function& fn) { return entries_[&fn]; }
  void verify_preserved(const ir::Function& fn, Entry& e,
                        const PreservedAnalyses& preserved, const char* pass);

  std::unordered_map<const ir::Function*, Entry> entries_;
  bool verify_ = false;
};

}  // namespace cepic::analysis
