#include "analysis/analyses.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/arena.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic::analysis {

using ir::IrInst;
using ir::VReg;

namespace {

// ---------------------------------------------------------------------
// Dominators: forward, all-blocks top, intersection join, transfer adds
// the block itself.  The classic iterative formulation.
struct DomProblem {
  using State = BitSet;
  static constexpr bool kForward = true;
  int nb;

  State boundary() const { return BitSet(nb); }  // entry dominated by itself only (added in transfer)
  State top() const {
    BitSet s(nb);
    s.set_all();
    return s;
  }
  bool join(State& into, const State& from) const { return into.iand(from); }
  void transfer(int block, State& state) const { state.set(block); }
};

// ---------------------------------------------------------------------
// Liveness: backward, union join, use/def per block precomputed into
// arena-backed bit matrices; the transfer is three word-parallel ops.
struct LiveProblem {
  using State = BitSet;
  static constexpr bool kForward = false;
  std::size_t nv;
  BitMatrix use, def;

  LiveProblem(const ir::Function& fn, Arena& arena) : nv(fn.next_vreg) {
    const std::size_t nb = fn.blocks.size();
    use = BitMatrix(nb, nv, arena);
    def = BitMatrix(nb, nv, arena);
    for (std::size_t b = 0; b < nb; ++b) {
      BitRow u = use.row(b);
      BitRow d = def.row(b);
      for (const IrInst& inst : fn.blocks[b].insts) {
        for_each_use(inst, [&](const ir::Value& v) {
          if (v.is_reg() && !d.test(v.reg)) u.set(v.reg);
        });
        if (inst.guard != ir::kNoVReg && !d.test(inst.guard)) {
          u.set(inst.guard);
        }
        const VReg dst = def_of(inst);
        // A guarded def does not kill: the old value may flow through.
        if (dst != ir::kNoVReg && inst.guard == ir::kNoVReg) d.set(dst);
      }
    }
  }

  State boundary() const { return BitSet(nv); }
  State top() const { return BitSet(nv); }
  bool join(State& into, const State& from) const { return into.ior(from); }
  void transfer(int block, State& state) const {
    // live_in = use ∪ (live_out − def)
    state.iandnot(def.row(block));
    state.ior(use.row(block));
  }
};

// ---------------------------------------------------------------------
// Reaching definitions: forward, union join, gen/kill over def sites.
struct ReachProblem {
  using State = BitSet;
  static constexpr bool kForward = true;
  std::size_t ns;
  BitMatrix gen, kill;
  BitSet entry;

  ReachProblem(const ir::Function& fn, const ReachingDefs& rd, Arena& arena)
      : ns(rd.sites.size()) {
    const std::size_t nb = fn.blocks.size();
    gen = BitMatrix(nb, ns, arena);
    kill = BitMatrix(nb, ns, arena);
    entry = BitSet(ns);
    for (VReg v = 1; v < fn.next_vreg; ++v) entry.set(v);

    for (std::size_t s = fn.next_vreg; s < ns; ++s) {
      const auto& site = rd.sites[s];
      const IrInst& inst = fn.blocks[site.block].insts[site.inst];
      BitRow g = gen.row(site.block);
      BitRow k = kill.row(site.block);
      if (inst.guard == ir::kNoVReg) {
        // Unguarded def: kills every other site of the vreg.
        for (int o : rd.sites_of_vreg[site.vreg]) {
          if (static_cast<std::size_t>(o) != s) {
            k.set(o);
            g.reset(o);
          }
        }
      }
      g.set(s);
      k.reset(s);
    }
  }

  State boundary() const { return entry; }
  State top() const { return BitSet(ns); }
  bool join(State& into, const State& from) const { return into.ior(from); }
  void transfer(int block, State& state) const {
    state.iandnot(kill.row(block));
    state.ior(gen.row(block));
  }
};

void append_vreg_set(std::string& out, const BitSet& s) {
  bool first = true;
  for (std::size_t v = 0; v < s.size(); ++v) {
    if (!s.test(v)) continue;
    out += first ? "%" : " %";
    out += std::to_string(v);
    first = false;
  }
  if (first) out += "-";
}

}  // namespace

Dominators compute_dominators(const ir::Function&, const Cfg& cfg) {
  const int nb = cfg.num_blocks();
  DomProblem p{nb};
  auto r = solve(cfg, p);
  Dominators d;
  d.dom = std::move(r.out);
  // Graph-unreachable blocks keep the vacuous all-ones solution; clear
  // them so dominates() queries are never accidentally true.
  for (int b = 0; b < nb; ++b) {
    if (!cfg.reachable[b]) d.dom[b].clear();
  }
  // idom[b]: the dominator of b (≠ b) that is itself dominated by every
  // other dominator of b; by construction it is the strict dominator
  // with the deepest rpo position.
  d.idom.assign(nb, -1);
  for (int b : cfg.rpo) {
    if (b == 0) continue;
    int best = -1;
    for (int a = 0; a < nb; ++a) {
      if (a == b || !d.dom[b].test(a)) continue;
      if (best == -1 || cfg.rpo_index[a] > cfg.rpo_index[best]) best = a;
    }
    d.idom[b] = best;
  }
  return d;
}

std::string Dominators::to_string(const ir::Function& fn) const {
  std::string out = cat("dominators @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += cat("  .b", b, ": idom=",
               idom[b] < 0 ? std::string("-") : cat(".b", idom[b]), " dom={");
    bool first = true;
    for (std::size_t a = 0; a < dom[b].size(); ++a) {
      if (!dom[b].test(a)) continue;
      out += first ? cat(".b", a) : cat(" .b", a);
      first = false;
    }
    out += "}\n";
  }
  return out;
}

Liveness compute_liveness(const ir::Function& fn, const Cfg& cfg) {
  ArenaScope scope(Arena::scratch());
  LiveProblem p(fn, scope.arena());
  auto r = solve(cfg, p);
  Liveness lv;
  lv.live_in = std::move(r.in);
  lv.live_out = std::move(r.out);
  return lv;
}

Liveness compute_liveness(const ir::Function& fn) {
  return compute_liveness(fn, Cfg::build(fn));
}

std::string Liveness::to_string(const ir::Function& fn) const {
  std::string out = cat("liveness @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += cat("  .b", b, ": in=");
    append_vreg_set(out, live_in[b]);
    out += " out=";
    append_vreg_set(out, live_out[b]);
    out += "\n";
  }
  return out;
}

ReachingDefs compute_reaching_defs(const ir::Function& fn, const Cfg& cfg) {
  ReachingDefs rd;
  // Synthetic entry sites first so site index == vreg for them.
  rd.sites_of_vreg.assign(fn.next_vreg, {});
  for (VReg v = 0; v < fn.next_vreg; ++v) {
    rd.sites.push_back({-1, -1, v});
    if (v != ir::kNoVReg) rd.sites_of_vreg[v].push_back(static_cast<int>(v));
  }
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
      const VReg d = def_of(fn.blocks[b].insts[i]);
      if (d == ir::kNoVReg) continue;
      rd.sites_of_vreg[d].push_back(static_cast<int>(rd.sites.size()));
      rd.sites.push_back(
          {static_cast<int>(b), static_cast<int>(i), d});
    }
  }

  ArenaScope scope(Arena::scratch());
  ReachProblem p(fn, rd, scope.arena());
  auto r = solve(cfg, p);
  rd.reach_in = std::move(r.in);
  rd.reach_out = std::move(r.out);
  return rd;
}

bool ReachingDefs::entry_def_reaches(const ir::Function& fn, int block,
                                     ir::VReg v) const {
  if (v == ir::kNoVReg || v >= fn.next_vreg) return false;
  if (std::find(fn.params.begin(), fn.params.end(), v) != fn.params.end()) {
    return false;
  }
  return reach_in[block].test(v);
}

std::string ReachingDefs::to_string(const ir::Function& fn) const {
  std::string out = cat("reaching-defs @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += cat("  .b", b, ": in={");
    bool first = true;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (!reach_in[b].test(s)) continue;
      const Site& site = sites[s];
      std::string tag = site.block < 0
                            ? cat("entry:%", site.vreg)
                            : cat(".b", site.block, "#", site.inst, ":%",
                                  site.vreg);
      out += first ? tag : cat(" ", tag);
      first = false;
    }
    out += "}\n";
  }
  return out;
}

namespace {

/// Hash-map key identifying the (dst, src) fact of a copy site.
struct CopyFactKey {
  ir::VReg dst = ir::kNoVReg;
  std::uint8_t src_kind = 0;
  std::uint32_t src_payload = 0;

  static CopyFactKey of(ir::VReg dst, const ir::Value& src) {
    CopyFactKey k;
    k.dst = dst;
    k.src_kind = static_cast<std::uint8_t>(src.kind);
    k.src_payload = src.is_reg() ? src.reg
                                 : static_cast<std::uint32_t>(src.imm);
    return k;
  }
  bool operator==(const CopyFactKey&) const = default;
};

struct CopyFactHash {
  std::size_t operator()(const CopyFactKey& k) const {
    std::uint64_t h = kFnvOffset64;
    h = (h ^ k.dst) * kFnvPrime64;
    h = (h ^ k.src_kind) * kFnvPrime64;
    h = (h ^ k.src_payload) * kFnvPrime64;
    return static_cast<std::size_t>(h);
  }
};

using CopyFactMap = std::unordered_map<CopyFactKey, int, CopyFactHash>;

// Available copies: forward, intersection.  Per-block net gen/kill sets
// are precomputed by one walk per block (kill-then-gen per instruction,
// composed exactly like the reaching-defs transfer), so the solver's
// transfer is word-parallel.
struct CopyProblem {
  using State = BitSet;
  static constexpr bool kForward = true;

  std::size_t ns;
  BitMatrix gen, kill;

  CopyProblem(const ir::Function& fn, const AvailableCopies& ac,
              const CopyFactMap& fact_site, Arena& arena)
      : ns(ac.sites.size()) {
    const std::size_t nb = fn.blocks.size();
    gen = BitMatrix(nb, ns, arena);
    kill = BitMatrix(nb, ns, arena);
    // Sites invalidated by a definition of vreg v (dst or register src).
    std::vector<std::vector<int>> killed_by(fn.next_vreg);
    for (std::size_t s = 0; s < ns; ++s) {
      const AvailableCopies::Site& site = ac.sites[s];
      killed_by[site.dst].push_back(static_cast<int>(s));
      if (site.src.is_reg()) {
        killed_by[site.src.reg].push_back(static_cast<int>(s));
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      BitRow g = gen.row(b);
      BitRow k = kill.row(b);
      for (const IrInst& inst : fn.blocks[b].insts) {
        const VReg d = def_of(inst);
        if (d == ir::kNoVReg) continue;
        for (int s : killed_by[d]) {
          k.set(s);
          g.reset(s);
        }
        // Every occurrence of the (dst, src) fact generates the same
        // shared site, so the fact survives an all-paths join even when
        // each path establishes it with a different instruction.
        if (inst.op == ir::IrOp::Mov && inst.guard == ir::kNoVReg) {
          const auto it = fact_site.find(CopyFactKey::of(inst.dst, inst.a));
          if (it != fact_site.end()) {
            g.set(it->second);
            k.reset(it->second);
          }
        }
      }
    }
  }

  State boundary() const { return BitSet(ns); }  // entry: nothing yet
  State top() const {
    BitSet s(ns);
    s.set_all();
    return s;
  }
  bool join(State& into, const State& from) const { return into.iand(from); }
  void transfer(int block, State& state) const {
    state.iandnot(kill.row(block));
    state.ior(gen.row(block));
  }
};

}  // namespace

AvailableCopies compute_available_copies(const ir::Function& fn,
                                         const Cfg& cfg) {
  AvailableCopies ac;
  CopyFactMap fact_site;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& insts = fn.blocks[b].insts;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const IrInst& inst = insts[i];
      if (inst.op != ir::IrOp::Mov || inst.guard != ir::kNoVReg) continue;
      // A self-copy carries no information and would kill itself.
      if (inst.a.is_reg() && inst.a.reg == inst.dst) continue;
      // Sites are keyed by the (dst, src) fact, not the instruction:
      // repeats of the same copy share one site (block/inst record the
      // first occurrence).
      const CopyFactKey key = CopyFactKey::of(inst.dst, inst.a);
      if (fact_site.find(key) != fact_site.end()) continue;
      fact_site.emplace(key, static_cast<int>(ac.sites.size()));
      ac.sites.push_back(
          {static_cast<int>(b), static_cast<int>(i), inst.dst, inst.a});
    }
  }

  ArenaScope scope(Arena::scratch());
  CopyProblem p(fn, ac, fact_site, scope.arena());
  auto r = solve(cfg, p);
  ac.avail_in = std::move(r.in);
  ac.avail_out = std::move(r.out);
  // Graph-unreachable blocks keep the vacuous all-ones solution; clear
  // them so callers never seed rewrites from contradictory facts.
  for (int b = 0; b < cfg.num_blocks(); ++b) {
    if (!cfg.reachable[b]) {
      ac.avail_in[b].clear();
      ac.avail_out[b].clear();
    }
  }
  return ac;
}

std::string AvailableCopies::to_string(const ir::Function& fn) const {
  std::string out = cat("available-copies @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += cat("  .b", b, ": in={");
    bool first = true;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (!avail_in[b].test(s)) continue;
      const Site& site = sites[s];
      std::string tag =
          site.src.is_reg()
              ? cat("%", site.dst, "=%", site.src.reg)
              : cat("%", site.dst, "=#", site.src.imm);
      out += first ? tag : cat(" ", tag);
      first = false;
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cepic::analysis
