#include "analysis/analyses.hpp"

#include <algorithm>

#include "support/text.hpp"

namespace cepic::analysis {

using ir::IrInst;
using ir::VReg;

namespace {

// ---------------------------------------------------------------------
// Dominators: forward, all-blocks top, intersection join, transfer adds
// the block itself.  The classic iterative formulation.
struct DomProblem {
  using State = BitSet;
  static constexpr bool kForward = true;
  int nb;

  State boundary() const { return BitSet(nb); }  // entry dominated by itself only (added in transfer)
  State top() const {
    BitSet s(nb);
    s.set_all();
    return s;
  }
  bool join(State& into, const State& from) const { return into.iand(from); }
  void transfer(int block, State& state) const { state.set(block); }
};

// ---------------------------------------------------------------------
// Liveness: backward, union join, use/def per block precomputed.
struct LiveProblem {
  using State = BitSet;
  static constexpr bool kForward = false;
  std::size_t nv;
  std::vector<BitSet> use, def;

  explicit LiveProblem(const ir::Function& fn) : nv(fn.next_vreg) {
    const std::size_t nb = fn.blocks.size();
    use.assign(nb, BitSet(nv));
    def.assign(nb, BitSet(nv));
    for (std::size_t b = 0; b < nb; ++b) {
      for (const IrInst& inst : fn.blocks[b].insts) {
        for_each_use(inst, [&](const ir::Value& v) {
          if (v.is_reg() && !def[b].test(v.reg)) use[b].set(v.reg);
        });
        if (inst.guard != ir::kNoVReg && !def[b].test(inst.guard)) {
          use[b].set(inst.guard);
        }
        const VReg d = def_of(inst);
        // A guarded def does not kill: the old value may flow through.
        if (d != ir::kNoVReg && inst.guard == ir::kNoVReg) def[b].set(d);
      }
    }
  }

  State boundary() const { return BitSet(nv); }
  State top() const { return BitSet(nv); }
  bool join(State& into, const State& from) const { return into.ior(from); }
  void transfer(int block, State& state) const {
    // live_in = use ∪ (live_out − def)
    BitSet in = use[block];
    for (std::size_t v = 0; v < nv; ++v) {
      if (state.test(v) && !def[block].test(v)) in.set(v);
    }
    state = std::move(in);
  }
};

// ---------------------------------------------------------------------
// Reaching definitions: forward, union join, gen/kill over def sites.
struct ReachProblem {
  using State = BitSet;
  static constexpr bool kForward = true;
  std::size_t ns;
  std::vector<BitSet> gen, kill;
  BitSet entry;

  ReachProblem(const ir::Function& fn, const ReachingDefs& rd)
      : ns(rd.sites.size()) {
    const std::size_t nb = fn.blocks.size();
    gen.assign(nb, BitSet(ns));
    kill.assign(nb, BitSet(ns));
    entry = BitSet(ns);
    for (VReg v = 1; v < fn.next_vreg; ++v) entry.set(v);

    for (std::size_t s = fn.next_vreg; s < ns; ++s) {
      const auto& site = rd.sites[s];
      const IrInst& inst = fn.blocks[site.block].insts[site.inst];
      auto& g = gen[site.block];
      auto& k = kill[site.block];
      if (inst.guard == ir::kNoVReg) {
        // Unguarded def: kills every other site of the vreg.
        for (int o : rd.sites_of_vreg[site.vreg]) {
          if (static_cast<std::size_t>(o) != s) {
            k.set(o);
            g.reset(o);
          }
        }
      }
      g.set(s);
      k.reset(s);
    }
  }

  State boundary() const { return entry; }
  State top() const { return BitSet(ns); }
  bool join(State& into, const State& from) const { return into.ior(from); }
  void transfer(int block, State& state) const {
    for (std::size_t s = 0; s < ns; ++s) {
      if (kill[block].test(s)) state.reset(s);
    }
    state.ior(gen[block]);
  }
};

void append_vreg_set(std::string& out, const BitSet& s) {
  bool first = true;
  for (std::size_t v = 0; v < s.size(); ++v) {
    if (!s.test(v)) continue;
    out += first ? "%" : " %";
    out += std::to_string(v);
    first = false;
  }
  if (first) out += "-";
}

}  // namespace

Dominators compute_dominators(const ir::Function&, const Cfg& cfg) {
  const int nb = cfg.num_blocks();
  DomProblem p{nb};
  auto r = solve(cfg, p);
  Dominators d;
  d.dom = std::move(r.out);
  // Graph-unreachable blocks keep the vacuous all-ones solution; clear
  // them so dominates() queries are never accidentally true.
  for (int b = 0; b < nb; ++b) {
    if (!cfg.reachable[b]) d.dom[b].clear();
  }
  // idom[b]: the dominator of b (≠ b) that is itself dominated by every
  // other dominator of b; by construction it is the strict dominator
  // with the deepest rpo position.
  d.idom.assign(nb, -1);
  for (int b : cfg.rpo) {
    if (b == 0) continue;
    int best = -1;
    for (int a = 0; a < nb; ++a) {
      if (a == b || !d.dom[b].test(a)) continue;
      if (best == -1 || cfg.rpo_index[a] > cfg.rpo_index[best]) best = a;
    }
    d.idom[b] = best;
  }
  return d;
}

std::string Dominators::to_string(const ir::Function& fn) const {
  std::string out = cat("dominators @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += cat("  .b", b, ": idom=",
               idom[b] < 0 ? std::string("-") : cat(".b", idom[b]), " dom={");
    bool first = true;
    for (std::size_t a = 0; a < dom[b].size(); ++a) {
      if (!dom[b].test(a)) continue;
      out += first ? cat(".b", a) : cat(" .b", a);
      first = false;
    }
    out += "}\n";
  }
  return out;
}

Liveness compute_liveness(const ir::Function& fn, const Cfg& cfg) {
  LiveProblem p(fn);
  auto r = solve(cfg, p);
  Liveness lv;
  lv.live_in = std::move(r.in);
  lv.live_out = std::move(r.out);
  return lv;
}

Liveness compute_liveness(const ir::Function& fn) {
  return compute_liveness(fn, Cfg::build(fn));
}

std::string Liveness::to_string(const ir::Function& fn) const {
  std::string out = cat("liveness @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += cat("  .b", b, ": in=");
    append_vreg_set(out, live_in[b]);
    out += " out=";
    append_vreg_set(out, live_out[b]);
    out += "\n";
  }
  return out;
}

ReachingDefs compute_reaching_defs(const ir::Function& fn, const Cfg& cfg) {
  ReachingDefs rd;
  // Synthetic entry sites first so site index == vreg for them.
  rd.sites_of_vreg.assign(fn.next_vreg, {});
  for (VReg v = 0; v < fn.next_vreg; ++v) {
    rd.sites.push_back({-1, -1, v});
    if (v != ir::kNoVReg) rd.sites_of_vreg[v].push_back(static_cast<int>(v));
  }
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (std::size_t i = 0; i < fn.blocks[b].insts.size(); ++i) {
      const VReg d = def_of(fn.blocks[b].insts[i]);
      if (d == ir::kNoVReg) continue;
      rd.sites_of_vreg[d].push_back(static_cast<int>(rd.sites.size()));
      rd.sites.push_back(
          {static_cast<int>(b), static_cast<int>(i), d});
    }
  }

  ReachProblem p(fn, rd);
  auto r = solve(cfg, p);
  rd.reach_in = std::move(r.in);
  rd.reach_out = std::move(r.out);
  return rd;
}

bool ReachingDefs::entry_def_reaches(const ir::Function& fn, int block,
                                     ir::VReg v) const {
  if (v == ir::kNoVReg || v >= fn.next_vreg) return false;
  if (std::find(fn.params.begin(), fn.params.end(), v) != fn.params.end()) {
    return false;
  }
  return reach_in[block].test(v);
}

std::string ReachingDefs::to_string(const ir::Function& fn) const {
  std::string out = cat("reaching-defs @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += cat("  .b", b, ": in={");
    bool first = true;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (!reach_in[b].test(s)) continue;
      const Site& site = sites[s];
      std::string tag = site.block < 0
                            ? cat("entry:%", site.vreg)
                            : cat(".b", site.block, "#", site.inst, ":%",
                                  site.vreg);
      out += first ? tag : cat(" ", tag);
      first = false;
    }
    out += "}\n";
  }
  return out;
}

namespace {

// Available copies: forward, intersection.  The transfer walks the
// block's instructions directly (kill lists are tiny), which keeps the
// gen/kill ordering exact without a precomputation pass.
struct CopyProblem {
  using State = BitSet;
  static constexpr bool kForward = true;

  const ir::Function& fn;
  const AvailableCopies& ac;
  std::size_t ns;
  // Sites invalidated by a definition of vreg v (dst or register src).
  std::vector<std::vector<int>> killed_by;
  // site_at[b][i]: the site generated by instruction i of block b, -1.
  std::vector<std::vector<int>> site_at;

  CopyProblem(const ir::Function& f, const AvailableCopies& a)
      : fn(f), ac(a), ns(a.sites.size()) {
    killed_by.assign(fn.next_vreg, {});
    site_at.assign(fn.blocks.size(), {});
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      site_at[b].assign(fn.blocks[b].insts.size(), -1);
    }
    for (std::size_t s = 0; s < ns; ++s) {
      const AvailableCopies::Site& site = ac.sites[s];
      killed_by[site.dst].push_back(static_cast<int>(s));
      if (site.src.is_reg()) {
        killed_by[site.src.reg].push_back(static_cast<int>(s));
      }
    }
    // Every occurrence of the (dst, src) fact generates the same shared
    // site, so the fact survives an all-paths join even when each path
    // establishes it with a different instruction.
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const auto& insts = fn.blocks[b].insts;
      for (std::size_t i = 0; i < insts.size(); ++i) {
        for (std::size_t s = 0; s < ns; ++s) {
          if (ac.sites[s].dst == insts[i].dst &&
              ac.sites[s].src == insts[i].a &&
              insts[i].op == ir::IrOp::Mov &&
              insts[i].guard == ir::kNoVReg) {
            site_at[b][i] = static_cast<int>(s);
            break;
          }
        }
      }
    }
  }

  State boundary() const { return BitSet(ns); }  // entry: nothing yet
  State top() const {
    BitSet s(ns);
    s.set_all();
    return s;
  }
  bool join(State& into, const State& from) const { return into.iand(from); }
  void transfer(int block, State& state) const {
    const auto& insts = fn.blocks[block].insts;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const VReg d = def_of(insts[i]);
      if (d == ir::kNoVReg) continue;
      for (int s : killed_by[d]) state.reset(s);
      if (site_at[block][i] >= 0) state.set(site_at[block][i]);
    }
  }
};

}  // namespace

AvailableCopies compute_available_copies(const ir::Function& fn,
                                         const Cfg& cfg) {
  AvailableCopies ac;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& insts = fn.blocks[b].insts;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const IrInst& inst = insts[i];
      if (inst.op != ir::IrOp::Mov || inst.guard != ir::kNoVReg) continue;
      // A self-copy carries no information and would kill itself.
      if (inst.a.is_reg() && inst.a.reg == inst.dst) continue;
      // Sites are keyed by the (dst, src) fact, not the instruction:
      // repeats of the same copy share one site (block/inst record the
      // first occurrence).
      bool known = false;
      for (const AvailableCopies::Site& s : ac.sites) {
        if (s.dst == inst.dst && s.src == inst.a) {
          known = true;
          break;
        }
      }
      if (known) continue;
      ac.sites.push_back(
          {static_cast<int>(b), static_cast<int>(i), inst.dst, inst.a});
    }
  }

  CopyProblem p(fn, ac);
  auto r = solve(cfg, p);
  ac.avail_in = std::move(r.in);
  ac.avail_out = std::move(r.out);
  // Graph-unreachable blocks keep the vacuous all-ones solution; clear
  // them so callers never seed rewrites from contradictory facts.
  for (int b = 0; b < cfg.num_blocks(); ++b) {
    if (!cfg.reachable[b]) {
      ac.avail_in[b].clear();
      ac.avail_out[b].clear();
    }
  }
  return ac;
}

std::string AvailableCopies::to_string(const ir::Function& fn) const {
  std::string out = cat("available-copies @", fn.name, "\n");
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += cat("  .b", b, ": in={");
    bool first = true;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (!avail_in[b].test(s)) continue;
      const Site& site = sites[s];
      std::string tag =
          site.src.is_reg()
              ? cat("%", site.dst, "=%", site.src.reg)
              : cat("%", site.dst, "=#", site.src.imm);
      out += first ? tag : cat(" ", tag);
      first = false;
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cepic::analysis
