// IR-level diagnostics built on the dataflow framework, following
// mcheck's conventions (stable rule ids, warning/error severities,
// werror folding, text/JSON reports) so `cepic-lint` surfaces one
// uniform diagnostic stream for both layers.
//
// Rules (docs/LINT.md has the catalogue):
//
//   use-before-def   a vreg may be read before any definition on some
//                    path from entry (reaching definitions; guarded
//                    defs do not count as definite)
//   dead-store       a side-effect-free instruction writes a vreg that
//                    is dead at that point (liveness)
//   unreachable      a block no execution can reach (graph reachability
//                    + interval-propagation edge feasibility)
//   guard-false      a guarded instruction whose guard is statically
//                    never satisfied: it can never commit
//   const-branch     a CondBr whose direction is statically fixed
//   global-oob       a load/store through a global's address whose
//                    byte offset is provably outside the global
//
// Semantic impossibilities (global-oob) are errors; the rest are
// code-quality warnings, promoted by LintOptions::werror.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "ir/ir.hpp"

namespace cepic::analysis {

enum class LintRule : unsigned {
  UseBeforeDef = 0,
  DeadStore,
  Unreachable,
  GuardFalse,
  ConstBranch,
  GlobalOob,
  kCount
};

inline constexpr std::size_t kNumLintRules =
    static_cast<std::size_t>(LintRule::kCount);

/// Stable diagnostic identifier, e.g. "ir.use-before-def".
std::string_view lint_rule_id(LintRule rule);

enum class LintSeverity : std::uint8_t { Warning, Error };

std::string_view lint_severity_name(LintSeverity s);

/// One finding, located at (function, block, inst). inst is -1 when the
/// finding concerns the whole block.
struct LintDiagnostic {
  LintRule rule = LintRule::UseBeforeDef;
  LintSeverity severity = LintSeverity::Warning;
  std::string function;
  int block = 0;
  int inst = -1;
  std::string message;

  /// "warning: @main .b2 inst 3: ... [ir.dead-store]"
  std::string to_string() const;
};

struct LintOptions {
  /// Treat warnings as errors in LintReport::error_count()/clean().
  bool werror = false;
  /// Bitmask of enabled rules (bit = static_cast<unsigned>(LintRule)).
  std::uint32_t enabled = ~0u;

  bool rule_enabled(LintRule r) const {
    return (enabled >> static_cast<unsigned>(r)) & 1u;
  }

  static LintOptions only(std::initializer_list<LintRule> rules) {
    LintOptions o;
    o.enabled = 0;
    for (LintRule r : rules) o.enabled |= 1u << static_cast<unsigned>(r);
    return o;
  }
};

struct LintReport {
  std::vector<LintDiagnostic> diags;
  bool werror = false;  ///< copied from LintOptions

  std::size_t count(LintSeverity s) const;
  std::size_t error_count() const {
    return count(LintSeverity::Error) +
           (werror ? count(LintSeverity::Warning) : 0);
  }
  std::size_t warning_count() const {
    return werror ? 0 : count(LintSeverity::Warning);
  }
  bool clean() const { return error_count() == 0; }
  bool has_rule(LintRule rule) const;

  /// Human-readable report, one diagnostic per line (empty if none).
  std::string to_text() const;
  /// Machine-readable report:
  /// {"errors":N,"warnings":M,"werror":W,"diagnostics":[{...},...]}
  std::string to_json() const;
};

/// Lint every function of the module.  The module is expected to pass
/// ir::verify_module first; the lint assumes structural sanity.
LintReport lint_module(const ir::Module& module,
                       const LintOptions& options = {});

}  // namespace cepic::analysis
