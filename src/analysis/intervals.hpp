// Guard-aware conditional constant/interval propagation over an
// ir::Function: an SCCP-style fixed point that tracks, per block and
// vreg, an interval of possible values (signed 32-bit view) with global
// address provenance, together with edge/block executability.  Guarded
// definitions join with the incoming value instead of killing it, and
// statically-decided guards/branches are recorded as facts.
//
// Soundness contract (enforced by the differential harness in
// tests/test_analysis_soundness.cpp): for every concrete execution,
//  * whenever block b is entered, every vreg's value lies inside
//    in[b][vreg];
//  * a block with executable[b] == false is never entered;
//  * an instruction with a recorded GuardFact commits iff the fact says
//    so, and a CondBr with a BranchFact always goes the recorded way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "ir/ir.hpp"

namespace cepic::analysis {

/// A closed interval of the signed 32-bit view of a value; empty when
/// lo > hi (infeasible).
struct Interval {
  std::int64_t lo = INT32_MIN;
  std::int64_t hi = INT32_MAX;

  static Interval full() { return {INT32_MIN, INT32_MAX}; }
  static Interval constant(std::int32_t v) { return {v, v}; }
  static Interval empty() { return {1, 0}; }

  bool is_empty() const { return lo > hi; }
  bool is_const() const { return lo == hi; }
  bool is_full() const { return lo <= INT32_MIN && hi >= INT32_MAX; }
  bool contains(std::int32_t v) const { return lo <= v && v <= hi; }
  bool excludes_zero() const { return lo > 0 || hi < 0; }
  bool is_zero() const { return lo == 0 && hi == 0; }

  bool operator==(const Interval&) const = default;
};

/// Abstract value: unvisited (Bottom), a plain number range, or a
/// pointer into a global with a byte-offset range (provenance for the
/// out-of-bounds lint; concretises to a number via the data layout).
struct AbsVal {
  enum class Kind : std::uint8_t { Bottom, Number, GlobalPtr };
  Kind kind = Kind::Bottom;
  int global = -1;  ///< GlobalPtr only
  Interval iv;

  static AbsVal bottom() { return {}; }
  static AbsVal top() { return {Kind::Number, -1, Interval::full()}; }
  static AbsVal number(Interval iv) { return {Kind::Number, -1, iv}; }
  static AbsVal constant(std::int32_t v) {
    return number(Interval::constant(v));
  }
  static AbsVal global_ptr(int g, Interval off) {
    return {Kind::GlobalPtr, g, off};
  }
  bool is_bottom() const { return kind == Kind::Bottom; }

  bool operator==(const AbsVal&) const = default;
};

struct IntervalAnalysis {
  /// Per block, indexed by vreg: facts on block entry / exit.  States of
  /// non-executable blocks are all-Bottom.
  std::vector<std::vector<AbsVal>> in;
  std::vector<std::vector<AbsVal>> out;
  std::vector<bool> executable;
  /// Aligned with Cfg::succs[b].
  std::vector<std::vector<bool>> edge_executable;

  /// A guarded instruction whose commit decision is static.
  struct GuardFact {
    int block = 0;
    int inst = 0;
    bool commits = false;
  };
  std::vector<GuardFact> guard_facts;

  /// A CondBr whose direction is static.
  struct BranchFact {
    int block = 0;
    bool then_taken = false;
  };
  std::vector<BranchFact> branch_facts;

  /// A load/store through a global pointer whose byte-offset range is
  /// provably outside the global on every execution reaching it.
  struct OobAccess {
    int block = 0;
    int inst = 0;
    int global = 0;
    std::int64_t off_lo = 0;
    std::int64_t off_hi = 0;
    unsigned size = 0;        ///< access size in bytes
    std::uint32_t limit = 0;  ///< global size in bytes
  };
  std::vector<OobAccess> oob;

  /// Concretise an abstract value to a plain number interval (resolves
  /// global provenance through the module layout used at analysis time).
  Interval concretize(const AbsVal& v) const;

  std::string to_string(const ir::Function& fn) const;

  std::vector<std::uint32_t> global_addr_;  ///< layout snapshot
};

IntervalAnalysis compute_intervals(const ir::Module& module,
                                   const ir::Function& fn, const Cfg& cfg);

}  // namespace cepic::analysis
