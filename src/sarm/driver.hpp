// One-call compilation pipelines for the SA-110-like scalar baseline.
// The SARM flow is not part of the EPIC pipeline::Service (it has no
// store, no batches, no configuration space to sweep), so its drivers
// live natively here; they were moved from the retired driver:: shim
// layer unchanged.
#pragma once

#include <string_view>

#include "opt/opt.hpp"
#include "sarm/codegen.hpp"
#include "sarm/sim.hpp"

namespace cepic::sarm {

struct SarmCompileOptions {
  opt::OptOptions opt;
  SarmOptions backend;
  bool optimize = true;

  SarmCompileOptions() {
    // The scalar baseline is compiled conventionally: EPIC-style
    // if-conversion off (its light ARM counterpart, conditional
    // execution, is applied by the SARM code generator itself).
    opt.if_convert = false;
  }
};

/// Compile MiniC for the SA-110-like scalar baseline.
SProgram compile_minic_to_sarm(std::string_view source,
                               const SarmCompileOptions& options = {});

/// Compile and run on the SA-110 cycle-model simulator; `main`'s return
/// value is left in r0.
SarmSimulator run_minic_on_sarm(std::string_view source,
                                const SarmCompileOptions& options = {},
                                const SarmOptionsSim& sim_options = {});

}  // namespace cepic::sarm
