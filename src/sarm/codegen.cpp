#include "sarm/codegen.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "ir/verify.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic::sarm {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::VReg;

constexpr std::uint32_t kVirt = 0x10000;
constexpr bool is_virtual(std::uint32_t r) { return r >= kVirt; }
constexpr std::uint32_t vreg(std::uint32_t id) { return id + kVirt; }
constexpr std::uint32_t vid(std::uint32_t r) { return r - kVirt; }

/// SARM immediates: 16-bit signed (a modelling simplification of ARM's
/// rotated 8-bit immediates; documented in DESIGN.md).
constexpr bool imm_fits(std::int32_t v) { return fits_signed(v, 16); }

struct CInst {
  SInst inst;
  int frame_sign = 0;  ///< ±1: sp adjustment patched after spilling
  bool is_call = false;
  std::string callee;  ///< Bl target function
};

struct CBlock {
  std::vector<CInst> insts;
};

struct CFunc {
  std::string name;
  std::vector<CBlock> blocks;
  std::vector<std::vector<int>> succs;
  std::uint32_t frame_bytes = 0;
  std::uint32_t num_virt = 0;
};

SOp alu_op_of(IrOp op) {
  switch (op) {
    case IrOp::Add: return SOp::Add;
    case IrOp::Sub: return SOp::Sub;
    case IrOp::Mul: return SOp::Mul;
    case IrOp::Div: return SOp::SDiv;
    case IrOp::Rem: return SOp::SRem;
    case IrOp::And: return SOp::And;
    case IrOp::Or: return SOp::Orr;
    case IrOp::Xor: return SOp::Eor;
    case IrOp::Shl: return SOp::Lsl;
    case IrOp::Shra: return SOp::Asr;
    case IrOp::Shrl: return SOp::Lsr;
    default: break;
  }
  CEPIC_CHECK(false, "not a SARM ALU op");
}

Cond cond_of(IrOp op) {
  switch (op) {
    case IrOp::CmpEq: return Cond::EQ;
    case IrOp::CmpNe: return Cond::NE;
    case IrOp::CmpLt: return Cond::LT;
    case IrOp::CmpLe: return Cond::LE;
    case IrOp::CmpGt: return Cond::GT;
    case IrOp::CmpGe: return Cond::GE;
    case IrOp::CmpLtU: return Cond::LO;
    case IrOp::CmpLeU: return Cond::LS;
    case IrOp::CmpGtU: return Cond::HI;
    case IrOp::CmpGeU: return Cond::HS;
    default: break;
  }
  CEPIC_CHECK(false, "not a compare");
}

Cond negate(Cond c) {
  switch (c) {
    case Cond::EQ: return Cond::NE;
    case Cond::NE: return Cond::EQ;
    case Cond::LT: return Cond::GE;
    case Cond::GE: return Cond::LT;
    case Cond::GT: return Cond::LE;
    case Cond::LE: return Cond::GT;
    case Cond::LO: return Cond::HS;
    case Cond::HS: return Cond::LO;
    case Cond::HI: return Cond::LS;
    case Cond::LS: return Cond::HI;
    case Cond::AL: break;
  }
  CEPIC_CHECK(false, "cannot negate AL");
}

/// Compares fused into the adjacent conditional branch (never
/// materialised): single def, and the only use is the CondBr that
/// immediately follows the defining compare in the same block.
std::set<VReg> fused_compares(const ir::Function& fn) {
  std::map<VReg, int> defs, uses;
  std::set<VReg> adjacent;
  for (const ir::BasicBlock& block : fn.blocks) {
    for (std::size_t i = 0; i < block.insts.size(); ++i) {
      const IrInst& inst = block.insts[i];
      if (ir::has_dst(inst)) ++defs[inst.dst];
      if (inst.op == IrOp::CondBr && inst.a.is_reg()) {
        ++uses[inst.a.reg];
        if (i > 0) {
          const IrInst& prev = block.insts[i - 1];
          if (ir::is_cmp(prev.op) && prev.dst == inst.a.reg &&
              prev.guard == ir::kNoVReg) {
            adjacent.insert(inst.a.reg);
          }
        }
        continue;
      }
      const auto note = [&](const ir::Value& v) {
        if (v.is_reg()) ++uses[v.reg];
      };
      switch (inst.op) {
        case IrOp::StoreW:
        case IrOp::StoreB:
          note(inst.a); note(inst.b); note(inst.c);
          break;
        case IrOp::Call:
          for (const ir::Value& v : inst.args) note(v);
          break;
        case IrOp::GlobalAddr:
        case IrOp::FrameAddr:
        case IrOp::Br:
          break;
        default:
          note(inst.a); note(inst.b);
          break;
      }
      if (inst.guard != ir::kNoVReg) ++uses[inst.guard];
    }
  }
  std::set<VReg> fused;
  for (VReg v : adjacent) {
    if (defs[v] == 1 && uses[v] == 1) fused.insert(v);
  }
  return fused;
}

class FuncGen {
public:
  FuncGen(const ir::Function& fn, const ir::Module& module,
          const ir::DataLayout& layout)
      : fn_(fn), module_(module), layout_(layout), fused_(fused_compares(fn)) {}

  CFunc run() {
    if (fn_.params.size() > kMaxArgs) {
      throw Error(cat("function @", fn_.name, " has ", fn_.params.size(),
                      " parameters; the SARM ABI supports at most ",
                      kMaxArgs));
    }
    out_.name = fn_.name;
    out_.frame_bytes = fn_.frame_bytes;
    next_virt_ = fn_.next_vreg;
    out_.blocks.resize(fn_.blocks.size());

    for (std::size_t bi = 0; bi < fn_.blocks.size(); ++bi) {
      cur_ = static_cast<int>(bi);
      if (bi == 0) prologue();
      const auto& insts = fn_.blocks[bi].insts;
      for (std::size_t i = 0; i < insts.size(); ++i) {
        lower(insts[i], i > 0 ? &insts[i - 1] : nullptr, bi);
      }
      const IrInst& term = fn_.blocks[bi].terminator();
      std::vector<int> succ;
      if (term.op == IrOp::Br) succ = {term.block_then};
      if (term.op == IrOp::CondBr) {
        if (term.a.is_imm()) {
          succ = {term.a.imm != 0 ? term.block_then : term.block_else};
        } else {
          succ = {term.block_then, term.block_else};
        }
      }
      out_.succs.push_back(std::move(succ));
    }
    out_.num_virt = next_virt_;
    return std::move(out_);
  }

private:
  void push(SInst inst, int frame_sign = 0, bool is_call = false,
            std::string callee = {}) {
    CInst c;
    c.inst = inst;
    c.frame_sign = frame_sign;
    c.is_call = is_call;
    c.callee = std::move(callee);
    out_.blocks[cur_].insts.push_back(std::move(c));
  }

  std::uint32_t fresh() { return vreg(next_virt_++); }
  std::uint32_t reg_of(VReg v) { return vreg(v); }

  SInst make(SOp op, std::uint32_t rd, std::uint32_t rn, Operand2 op2,
             Cond cond = Cond::AL) {
    SInst i;
    i.op = op;
    i.cond = cond;
    i.rd = rd;
    i.rn = rn;
    i.op2 = op2;
    return i;
  }

  /// Materialise an arbitrary 32-bit constant into dst.
  void emit_const(std::uint32_t dst, std::int32_t value, Cond cond) {
    if (imm_fits(value)) {
      push(make(SOp::Mov, dst, 0, Operand2::immediate(value), cond));
      return;
    }
    const std::uint32_t target = cond == Cond::AL ? dst : fresh();
    push(make(SOp::Mov, target, 0, Operand2::immediate(value >> 16)));
    push(make(SOp::Lsl, target, target, Operand2::immediate(16)));
    if ((value & 0xFFFF) != 0) {
      push(make(SOp::Orr, target, target,
                Operand2::immediate(value & 0xFFFF)));
    }
    if (cond != Cond::AL) {
      push(make(SOp::Mov, dst, 0, Operand2::reg(target), cond));
    }
  }

  std::uint32_t value_reg(const ir::Value& v) {
    if (v.is_reg()) return reg_of(v.reg);
    CEPIC_CHECK(v.is_imm(), "missing operand");
    const std::uint32_t t = fresh();
    emit_const(t, v.imm, Cond::AL);
    return t;
  }

  Operand2 op2_of(const ir::Value& v) {
    if (v.is_reg()) return Operand2::reg(reg_of(v.reg));
    CEPIC_CHECK(v.is_imm(), "missing operand");
    if (imm_fits(v.imm)) return Operand2::immediate(v.imm);
    return Operand2::reg(value_reg(v));
  }

  /// Establish flags for "v != 0" style guards; returns the condition
  /// under which the guarded op should execute.
  Cond guard_cond(const IrInst& inst) {
    if (inst.guard == ir::kNoVReg) return Cond::AL;
    push(make(SOp::Cmp, 0, reg_of(inst.guard), Operand2::immediate(0)));
    return inst.guard_negate ? Cond::EQ : Cond::NE;
  }

  void prologue() {
    push(make(SOp::Sub, kSp, kSp, Operand2::immediate(4)), /*frame=*/-1);
    push(make(SOp::Str, kLr, kSp, Operand2::immediate(0)));
    for (std::size_t i = 0; i < fn_.params.size(); ++i) {
      push(make(SOp::Mov, reg_of(fn_.params[i]), 0,
                Operand2::reg(kR0 + static_cast<std::uint32_t>(i))));
    }
  }

  void epilogue() {
    push(make(SOp::Ldr, kLr, kSp, Operand2::immediate(0)));
    push(make(SOp::Add, kSp, kSp, Operand2::immediate(4)), /*frame=*/+1);
    SInst bx;
    bx.op = SOp::Bx;
    bx.rn = kLr;
    push(bx, 0, /*is_call=*/true);  // barrier-like for the allocator
  }

  void branch_to(int block, std::size_t bi, Cond cond = Cond::AL) {
    if (cond == Cond::AL && block == static_cast<int>(bi) + 1) return;
    SInst b;
    b.op = SOp::B;
    b.cond = cond;
    b.target = block;
    push(b);
  }

  void lower(const IrInst& inst, const IrInst* prev, std::size_t bi) {
    switch (inst.op) {
      case IrOp::Mov: {
        const Cond c = guard_cond(inst);
        if (inst.a.is_imm() && !imm_fits(inst.a.imm)) {
          emit_const(reg_of(inst.dst), inst.a.imm, c);
        } else {
          push(make(SOp::Mov, reg_of(inst.dst), 0, op2_of(inst.a), c));
        }
        return;
      }
      case IrOp::GlobalAddr: {
        const Cond c = guard_cond(inst);
        emit_const(reg_of(inst.dst),
                   static_cast<std::int32_t>(
                       layout_.global_addr[inst.global_index]),
                   c);
        return;
      }
      case IrOp::FrameAddr: {
        const Cond c = guard_cond(inst);
        push(make(SOp::Add, reg_of(inst.dst), kSp,
                  Operand2::immediate(inst.a.imm + 4), c));
        return;
      }
      case IrOp::LoadW:
      case IrOp::LoadB:
      case IrOp::LoadBU: {
        const Cond c = guard_cond(inst);
        // LoadB (sign-extended byte) = Ldrb + sign extension.
        const SOp op = inst.op == IrOp::LoadW ? SOp::Ldr : SOp::Ldrb;
        const std::uint32_t base = value_reg(inst.a);
        if (inst.op == IrOp::LoadB) {
          const std::uint32_t t = fresh();
          push(make(op, t, base, op2_of(inst.b), c));
          push(make(SOp::Lsl, t, t, Operand2::immediate(24), c));
          push(make(SOp::Asr, reg_of(inst.dst), t, Operand2::immediate(24), c));
        } else {
          push(make(op, reg_of(inst.dst), base, op2_of(inst.b), c));
        }
        return;
      }
      case IrOp::StoreW:
      case IrOp::StoreB: {
        const Cond c = guard_cond(inst);
        const SOp op = inst.op == IrOp::StoreW ? SOp::Str : SOp::Strb;
        const std::uint32_t value = value_reg(inst.c);
        const std::uint32_t base = value_reg(inst.a);
        push(make(op, value, base, op2_of(inst.b), c));
        return;
      }
      case IrOp::Out: {
        const Cond c = guard_cond(inst);
        SInst o;
        o.op = SOp::Out;
        o.cond = c;
        o.op2 = op2_of(inst.a);
        push(o);
        return;
      }
      case IrOp::Call: {
        CEPIC_CHECK(inst.guard == ir::kNoVReg, "guarded call");
        if (inst.args.size() > kMaxArgs) {
          throw Error(cat("call to @", inst.callee, " passes ",
                          inst.args.size(), " arguments; SARM ABI max is ",
                          kMaxArgs));
        }
        for (std::size_t i = 0; i < inst.args.size(); ++i) {
          const auto arg = inst.args[i];
          if (arg.is_imm() && !imm_fits(arg.imm)) {
            emit_const(kR0 + static_cast<std::uint32_t>(i), arg.imm, Cond::AL);
          } else {
            push(make(SOp::Mov, kR0 + static_cast<std::uint32_t>(i), 0,
                      op2_of(arg)));
          }
        }
        SInst bl;
        bl.op = SOp::Bl;
        push(bl, 0, /*is_call=*/true, inst.callee);
        if (inst.dst != ir::kNoVReg) {
          push(make(SOp::Mov, reg_of(inst.dst), 0, Operand2::reg(kR0)));
        }
        return;
      }
      case IrOp::Ret: {
        if (!inst.a.is_none()) {
          if (inst.a.is_imm() && !imm_fits(inst.a.imm)) {
            emit_const(kR0, inst.a.imm, Cond::AL);
          } else {
            push(make(SOp::Mov, kR0, 0, op2_of(inst.a)));
          }
        }
        epilogue();
        return;
      }
      case IrOp::Br:
        branch_to(inst.block_then, bi);
        return;
      case IrOp::CondBr: {
        if (inst.a.is_imm()) {
          branch_to(inst.a.imm != 0 ? inst.block_then : inst.block_else, bi);
          return;
        }
        Cond cond;
        if (fused_.count(inst.a.reg) != 0 && prev != nullptr &&
            ir::is_cmp(prev->op) && prev->dst == inst.a.reg) {
          push(make(SOp::Cmp, 0, value_reg(prev->a), op2_of(prev->b)));
          cond = cond_of(prev->op);
        } else {
          push(make(SOp::Cmp, 0, reg_of(inst.a.reg), Operand2::immediate(0)));
          cond = Cond::NE;
        }
        if (inst.block_then == static_cast<int>(bi) + 1) {
          branch_to(inst.block_else, bi, negate(cond));
        } else {
          branch_to(inst.block_then, bi, cond);
          branch_to(inst.block_else, bi);
        }
        return;
      }
      case IrOp::Min:
      case IrOp::Max: {
        const Cond c = guard_cond(inst);
        const std::uint32_t target =
            c == Cond::AL ? reg_of(inst.dst) : fresh();
        const std::uint32_t a = value_reg(inst.a);
        const Operand2 b = op2_of(inst.b);
        push(make(SOp::Mov, target, 0, Operand2::reg(a)));
        push(make(SOp::Cmp, 0, a, b));
        // min: replace with b when a > b; max: when a < b.
        push(make(SOp::Mov, target, 0, b,
                  inst.op == IrOp::Min ? Cond::GT : Cond::LT));
        if (c != Cond::AL) {
          push(make(SOp::Mov, reg_of(inst.dst), 0, Operand2::reg(target), c));
        }
        return;
      }
      default:
        break;
    }

    if (ir::is_cmp(inst.op)) {
      if (fused_.count(inst.dst) != 0) return;  // emitted at the branch
      // Materialise 0/1 with a conditional mov.
      const Cond g = guard_cond(inst);
      const std::uint32_t target = g == Cond::AL ? reg_of(inst.dst) : fresh();
      push(make(SOp::Mov, target, 0, Operand2::immediate(0)));
      push(make(SOp::Cmp, 0, value_reg(inst.a), op2_of(inst.b)));
      push(make(SOp::Mov, target, 0, Operand2::immediate(1),
                cond_of(inst.op)));
      if (g != Cond::AL) {
        // Re-establish the guard flags (the compare clobbered them).
        const Cond g2 = guard_cond(inst);
        push(make(SOp::Mov, reg_of(inst.dst), 0, Operand2::reg(target), g2));
      }
      return;
    }

    // Binary ALU.
    const Cond c = guard_cond(inst);
    const SOp op = alu_op_of(inst.op);
    // `imm - reg` uses RSB.
    if (inst.op == IrOp::Sub && inst.a.is_imm() && imm_fits(inst.a.imm) &&
        inst.b.is_reg()) {
      push(make(SOp::Rsb, reg_of(inst.dst), reg_of(inst.b.reg),
                Operand2::immediate(inst.a.imm), c));
      return;
    }
    // MUL takes two registers (no immediate operand on ARM).
    if (op == SOp::Mul) {
      push(make(SOp::Mul, reg_of(inst.dst), value_reg(inst.a),
                Operand2::reg(value_reg(inst.b)), c));
      return;
    }
    push(make(op, reg_of(inst.dst), value_reg(inst.a), op2_of(inst.b), c));
  }

  const ir::Function& fn_;
  const ir::Module& module_;
  const ir::DataLayout& layout_;
  std::set<VReg> fused_;
  CFunc out_;
  int cur_ = 0;
  std::uint32_t next_virt_ = 0;
};

// ---------------- shift folding peephole (barrel shifter) ----------------

bool op2_shift_allowed(SOp op) {
  switch (op) {
    case SOp::Add: case SOp::Sub: case SOp::Rsb:
    case SOp::And: case SOp::Orr: case SOp::Eor: case SOp::Bic:
    case SOp::Mov: case SOp::Mvn: case SOp::Cmp:
    case SOp::Ldr: case SOp::Str: case SOp::Ldrb: case SOp::Strb:
      return true;
    default:
      return false;
  }
}

void fold_shifts(CFunc& fn) {
  // Count uses of each virtual register across the function.
  std::map<std::uint32_t, int> use_count;
  for (const CBlock& block : fn.blocks) {
    for (const CInst& ci : block.insts) {
      const SInst& inst = ci.inst;
      if (!inst.op2.is_imm && is_virtual(inst.op2.rm)) ++use_count[inst.op2.rm];
      if (is_virtual(inst.rn)) ++use_count[inst.rn];
      // Store value / Out read rd? Str reads rd.
      if ((inst.op == SOp::Str || inst.op == SOp::Strb) && is_virtual(inst.rd)) {
        ++use_count[inst.rd];
      }
    }
  }

  for (CBlock& block : fn.blocks) {
    for (std::size_t i = 0; i < block.insts.size(); ++i) {
      SInst& shift = block.insts[i].inst;
      Shift kind = Shift::None;
      if (shift.op == SOp::Lsl) kind = Shift::Lsl;
      else if (shift.op == SOp::Lsr) kind = Shift::Lsr;
      else if (shift.op == SOp::Asr) kind = Shift::Asr;
      if (kind == Shift::None) continue;
      if (shift.cond != Cond::AL) continue;
      if (!shift.op2.is_imm || shift.op2.imm <= 0 || shift.op2.imm >= 32) {
        continue;
      }
      if (!is_virtual(shift.rd) || use_count[shift.rd] != 1) continue;

      // Find the single use later in this block; bail on redefinitions.
      for (std::size_t j = i + 1; j < block.insts.size(); ++j) {
        SInst& use = block.insts[j].inst;
        const bool uses_here =
            !use.op2.is_imm && use.op2.rm == shift.rd &&
            use.op2.shift == Shift::None;
        if (uses_here && op2_shift_allowed(use.op) && use.cond == Cond::AL) {
          use.op2 = Operand2::reg(shift.rn, kind,
                                  static_cast<std::uint8_t>(shift.op2.imm));
          shift.op = SOp::Mov;  // neutralise: mov rd, rd (removed below)
          shift.op2 = Operand2::reg(shift.rd);
          shift.rn = 0;
          break;
        }
        // Any other appearance, or redefinition of the source/dest: stop.
        const bool reads = (!use.op2.is_imm && use.op2.rm == shift.rd) ||
                           use.rn == shift.rd ||
                           ((use.op == SOp::Str || use.op == SOp::Strb) &&
                            use.rd == shift.rd);
        const bool redefines_src =
            use.rd == shift.rn && use.op != SOp::Cmp && use.op != SOp::Str &&
            use.op != SOp::Strb && use.op != SOp::B && use.op != SOp::Out;
        if (reads || redefines_src || block.insts[j].is_call) break;
      }
    }
    // Sweep neutralised self-moves.
    std::erase_if(block.insts, [](const CInst& ci) {
      return ci.inst.op == SOp::Mov && !ci.inst.op2.is_imm &&
             ci.inst.op2.shift == Shift::None &&
             ci.inst.op2.rm == ci.inst.rd && ci.inst.cond == Cond::AL;
    });
  }
}

// ---------------- register allocation (liveness linear scan) -------------

struct Refs {
  std::vector<std::uint32_t*> reads;
  std::uint32_t* def = nullptr;
  bool def_conditional = false;
};

Refs refs_of(SInst& inst) {
  Refs r;
  switch (inst.op) {
    case SOp::B:
    case SOp::Bl:
    case SOp::Halt:
      return r;
    case SOp::Bx:
      r.reads.push_back(&inst.rn);
      return r;
    case SOp::Out:
      if (!inst.op2.is_imm) r.reads.push_back(&inst.op2.rm);
      return r;
    case SOp::Cmp:
      r.reads.push_back(&inst.rn);
      if (!inst.op2.is_imm) r.reads.push_back(&inst.op2.rm);
      return r;
    case SOp::Str:
    case SOp::Strb:
      r.reads.push_back(&inst.rd);
      r.reads.push_back(&inst.rn);
      if (!inst.op2.is_imm) r.reads.push_back(&inst.op2.rm);
      return r;
    case SOp::Ldr:
    case SOp::Ldrb:
      r.reads.push_back(&inst.rn);
      if (!inst.op2.is_imm) r.reads.push_back(&inst.op2.rm);
      r.def = &inst.rd;
      break;
    case SOp::Mov:
    case SOp::Mvn:
      if (!inst.op2.is_imm) r.reads.push_back(&inst.op2.rm);
      r.def = &inst.rd;
      break;
    default:
      r.reads.push_back(&inst.rn);
      if (!inst.op2.is_imm) r.reads.push_back(&inst.op2.rm);
      r.def = &inst.rd;
      break;
  }
  r.def_conditional = inst.cond != Cond::AL;
  return r;
}

class SarmAllocator {
public:
  explicit SarmAllocator(CFunc& fn) : fn_(fn) {}

  void run() {
    for (int iteration = 0; iteration < 24; ++iteration) {
      if (try_allocate()) {
        patch_frame();
        return;
      }
    }
    throw Error(cat("SARM register allocation did not converge in @",
                    fn_.name));
  }

private:
  struct Interval {
    std::uint32_t id;
    int start = -1;
    int end = -1;
    bool crosses_call = false;
  };

  void compute_liveness() {
    const std::size_t nb = fn_.blocks.size();
    const std::uint32_t nv = fn_.num_virt;
    live_in_.assign(nb, std::vector<bool>(nv, false));
    live_out_.assign(nb, std::vector<bool>(nv, false));
    std::vector<std::vector<bool>> use(nb, std::vector<bool>(nv, false));
    std::vector<std::vector<bool>> def(nb, std::vector<bool>(nv, false));
    for (std::size_t b = 0; b < nb; ++b) {
      for (CInst& ci : fn_.blocks[b].insts) {
        Refs r = refs_of(ci.inst);
        for (std::uint32_t* slot : r.reads) {
          if (is_virtual(*slot) && !def[b][vid(*slot)]) {
            use[b][vid(*slot)] = true;
          }
        }
        if (r.def != nullptr && is_virtual(*r.def)) {
          if (r.def_conditional) {
            if (!def[b][vid(*r.def)]) use[b][vid(*r.def)] = true;
          } else {
            def[b][vid(*r.def)] = true;
          }
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = nb; b-- > 0;) {
        for (int s : fn_.succs[b]) {
          for (std::uint32_t v = 0; v < nv; ++v) {
            if (live_in_[s][v] && !live_out_[b][v]) {
              live_out_[b][v] = true;
              changed = true;
            }
          }
        }
        for (std::uint32_t v = 0; v < nv; ++v) {
          const bool want = use[b][v] || (live_out_[b][v] && !def[b][v]);
          if (want && !live_in_[b][v]) {
            live_in_[b][v] = true;
            changed = true;
          }
        }
      }
    }
  }

  bool try_allocate() {
    compute_liveness();

    // Positions + intervals.
    std::vector<Interval> iv(fn_.num_virt);
    for (std::uint32_t v = 0; v < fn_.num_virt; ++v) iv[v].id = v;
    std::vector<int> calls;
    int p = 0;
    const auto extend = [&](std::uint32_t v, int pos) {
      if (iv[v].start < 0 || pos < iv[v].start) iv[v].start = pos;
      if (pos > iv[v].end) iv[v].end = pos;
    };
    for (std::size_t b = 0; b < fn_.blocks.size(); ++b) {
      const int block_start = p;
      for (CInst& ci : fn_.blocks[b].insts) {
        if (ci.is_call) calls.push_back(p);
        Refs r = refs_of(ci.inst);
        for (std::uint32_t* slot : r.reads) {
          if (is_virtual(*slot)) extend(vid(*slot), p);
        }
        if (r.def != nullptr && is_virtual(*r.def)) extend(vid(*r.def), p);
        ++p;
      }
      const int block_end = p;
      for (std::uint32_t v = 0; v < fn_.num_virt; ++v) {
        if (live_in_[b][v]) extend(v, block_start);
        if (live_out_[b][v]) extend(v, block_end);
      }
      ++p;
    }
    std::set<std::uint32_t> spills;
    for (Interval& i : iv) {
      if (i.start < 0) continue;
      for (int cp : calls) {
        if (i.start < cp && cp < i.end && spilled_.count(i.id) == 0) {
          spills.insert(i.id);
          break;
        }
      }
    }
    if (!spills.empty()) {
      rewrite_spills(spills);
      return false;
    }

    std::vector<Interval> order;
    for (const Interval& i : iv) {
      if (i.start >= 0) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [](const Interval& a,
                                             const Interval& b) {
      return a.start < b.start || (a.start == b.start && a.id < b.id);
    });

    std::vector<std::uint32_t> free;
    for (std::uint32_t r = kLastAllocatable + 1; r-- > kFirstAllocatable;) {
      free.push_back(r);
    }
    struct Active {
      int end;
      std::uint32_t id, phys;
    };
    std::vector<Active> active;
    std::vector<std::uint32_t> assign(fn_.num_virt, 0);

    for (const Interval& i : order) {
      std::erase_if(active, [&](const Active& a) {
        if (a.end < i.start) {
          free.push_back(a.phys);
          return true;
        }
        return false;
      });
      if (!free.empty()) {
        const std::uint32_t phys = free.back();
        free.pop_back();
        assign[i.id] = phys;
        active.push_back({i.end, i.id, phys});
        continue;
      }
      auto victim = std::max_element(
          active.begin(), active.end(),
          [](const Active& a, const Active& b) { return a.end < b.end; });
      if (victim != active.end() && victim->end > i.end) {
        spills.insert(victim->id);
        assign[i.id] = victim->phys;
        const Active replacement{i.end, i.id, victim->phys};
        active.erase(victim);
        active.push_back(replacement);
      } else {
        spills.insert(i.id);
      }
    }
    if (!spills.empty()) {
      rewrite_spills(spills);
      return false;
    }

    for (CBlock& block : fn_.blocks) {
      for (CInst& ci : block.insts) {
        Refs r = refs_of(ci.inst);
        for (std::uint32_t* slot : r.reads) {
          if (is_virtual(*slot)) *slot = assign[vid(*slot)];
        }
        if (r.def != nullptr && is_virtual(*r.def)) {
          *r.def = assign[vid(*r.def)];
        }
      }
    }
    return true;
  }

  std::uint32_t slot_of(std::uint32_t id) {
    auto [it, fresh] = spilled_.try_emplace(
        id, 4 + fn_.frame_bytes +
                4 * static_cast<std::uint32_t>(spilled_.size()));
    return it->second;
  }

  void rewrite_spills(const std::set<std::uint32_t>& to_spill) {
    for (std::uint32_t id : to_spill) slot_of(id);
    for (CBlock& block : fn_.blocks) {
      std::vector<CInst> result;
      result.reserve(block.insts.size());
      for (CInst& ci : block.insts) {
        Refs r = refs_of(ci.inst);
        std::map<std::uint32_t, std::uint32_t> temp;
        std::set<std::uint32_t> needs_load, needs_store;
        for (std::uint32_t* slot : r.reads) {
          if (!is_virtual(*slot) || to_spill.count(vid(*slot)) == 0) continue;
          const std::uint32_t id = vid(*slot);
          auto [it, fresh] = temp.try_emplace(id, 0);
          if (fresh) it->second = vreg(fn_.num_virt++);
          *slot = it->second;
          needs_load.insert(id);
        }
        if (r.def != nullptr && is_virtual(*r.def) &&
            to_spill.count(vid(*r.def)) != 0) {
          const std::uint32_t id = vid(*r.def);
          auto [it, fresh] = temp.try_emplace(id, 0);
          if (fresh) it->second = vreg(fn_.num_virt++);
          *r.def = it->second;
          needs_store.insert(id);
          if (r.def_conditional) needs_load.insert(id);
        }
        for (std::uint32_t id : needs_load) {
          CInst ld;
          ld.inst.op = SOp::Ldr;
          ld.inst.rd = temp[id];
          ld.inst.rn = kSp;
          ld.inst.op2 =
              Operand2::immediate(static_cast<std::int32_t>(slot_of(id)));
          result.push_back(std::move(ld));
        }
        const Cond cond = ci.inst.cond;
        result.push_back(std::move(ci));
        for (std::uint32_t id : needs_store) {
          CInst st;
          st.inst.op = SOp::Str;
          st.inst.cond = cond;
          st.inst.rd = temp[id];
          st.inst.rn = kSp;
          st.inst.op2 =
              Operand2::immediate(static_cast<std::int32_t>(slot_of(id)));
          result.push_back(std::move(st));
        }
      }
      block.insts = std::move(result);
    }
  }

  void patch_frame() {
    const std::uint32_t total =
        4 + fn_.frame_bytes + 4 * static_cast<std::uint32_t>(spilled_.size());
    for (CBlock& block : fn_.blocks) {
      for (CInst& ci : block.insts) {
        if (ci.frame_sign != 0) {
          ci.inst.op2 =
              Operand2::immediate(static_cast<std::int32_t>(total));
        }
      }
    }
  }

  CFunc& fn_;
  std::vector<std::vector<bool>> live_in_, live_out_;
  std::map<std::uint32_t, std::uint32_t> spilled_;
};

}  // namespace

SProgram compile_ir_to_sarm(const ir::Module& module,
                            const SarmOptions& options) {
  ir::verify_module(module, /*require_main=*/true);
  const ir::DataLayout layout = ir::layout_globals(module);

  std::vector<CFunc> funcs;
  funcs.reserve(module.functions.size());
  for (const ir::Function& fn : module.functions) {
    CFunc cf = FuncGen(fn, module, layout).run();
    if (options.fold_shifts) fold_shifts(cf);
    SarmAllocator(cf).run();
    funcs.push_back(std::move(cf));
  }

  // Link: start stub, then functions; resolve Bl by name, B by block.
  SProgram prog;
  prog.data = layout.image;

  const auto emit = [&prog](SInst inst) {
    prog.code.push_back(inst);
    return static_cast<std::uint32_t>(prog.code.size() - 1);
  };

  // __start: sp = stack_top; bl main; halt.
  const std::int32_t top = static_cast<std::int32_t>(options.stack_top);
  std::uint32_t stub_call_index = 0;
  {
    SInst mov;
    mov.op = SOp::Mov;
    mov.rd = kSp;
    mov.op2 = Operand2::immediate(top >> 16);
    emit(mov);
    SInst lsl;
    lsl.op = SOp::Lsl;
    lsl.rd = kSp;
    lsl.rn = kSp;
    lsl.op2 = Operand2::immediate(16);
    emit(lsl);
    if ((top & 0xFFFF) != 0) {
      SInst orr;
      orr.op = SOp::Orr;
      orr.rd = kSp;
      orr.rn = kSp;
      orr.op2 = Operand2::immediate(top & 0xFFFF);
      emit(orr);
    }
    SInst bl;
    bl.op = SOp::Bl;
    bl.target = -1;  // patched to main below
    stub_call_index = emit(bl);
    SInst halt;
    halt.op = SOp::Halt;
    emit(halt);
    prog.symbols.emplace_back("__start", 0);
  }

  std::map<std::string, std::uint32_t> fn_start;
  std::vector<std::pair<std::uint32_t, std::string>> pending_calls;
  pending_calls.emplace_back(stub_call_index, "main");

  for (CFunc& cf : funcs) {
    fn_start[cf.name] = static_cast<std::uint32_t>(prog.code.size());
    prog.symbols.emplace_back(cf.name,
                              static_cast<std::uint32_t>(prog.code.size()));
    std::vector<std::uint32_t> block_start(cf.blocks.size(), 0);
    std::vector<std::pair<std::uint32_t, int>> pending_branches;
    for (std::size_t b = 0; b < cf.blocks.size(); ++b) {
      block_start[b] = static_cast<std::uint32_t>(prog.code.size());
      for (CInst& ci : cf.blocks[b].insts) {
        const std::uint32_t idx = emit(ci.inst);
        if (ci.inst.op == SOp::B) {
          pending_branches.emplace_back(idx, ci.inst.target);
        } else if (ci.inst.op == SOp::Bl) {
          pending_calls.emplace_back(idx, ci.callee);
        }
      }
    }
    for (const auto& [idx, block] : pending_branches) {
      prog.code[idx].target = static_cast<int>(block_start[block]);
    }
  }
  for (const auto& [idx, callee] : pending_calls) {
    const auto it = fn_start.find(callee);
    CEPIC_CHECK(it != fn_start.end(), cat("unresolved call to ", callee));
    prog.code[idx].target = static_cast<int>(it->second);
  }
  prog.entry = 0;
  return prog;
}

}  // namespace cepic::sarm
