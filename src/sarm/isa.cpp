#include "sarm/isa.hpp"

#include "support/text.hpp"

namespace cepic::sarm {

namespace {

const char* op_name(SOp op) {
  switch (op) {
    case SOp::Add: return "add";
    case SOp::Sub: return "sub";
    case SOp::Rsb: return "rsb";
    case SOp::Mul: return "mul";
    case SOp::And: return "and";
    case SOp::Orr: return "orr";
    case SOp::Eor: return "eor";
    case SOp::Bic: return "bic";
    case SOp::Mov: return "mov";
    case SOp::Mvn: return "mvn";
    case SOp::Lsl: return "lsl";
    case SOp::Lsr: return "lsr";
    case SOp::Asr: return "asr";
    case SOp::Min: return "min";
    case SOp::Max: return "max";
    case SOp::Cmp: return "cmp";
    case SOp::Ldr: return "ldr";
    case SOp::Str: return "str";
    case SOp::Ldrb: return "ldrb";
    case SOp::Strb: return "strb";
    case SOp::B: return "b";
    case SOp::Bl: return "bl";
    case SOp::Bx: return "bx";
    case SOp::Out: return "out";
    case SOp::Halt: return "halt";
    case SOp::SDiv: return "sdiv";
    case SOp::SRem: return "srem";
  }
  return "?";
}

std::string op2_str(const Operand2& o) {
  if (o.is_imm) return cat('#', o.imm);
  std::string s = cat('r', o.rm);
  if (o.shift != Shift::None) {
    const char* sh = o.shift == Shift::Lsl ? "lsl"
                     : o.shift == Shift::Lsr ? "lsr" : "asr";
    s += cat(", ", sh, " #", static_cast<int>(o.shift_amount));
  }
  return s;
}

}  // namespace

const char* cond_name(Cond cond) {
  switch (cond) {
    case Cond::AL: return "";
    case Cond::EQ: return "eq";
    case Cond::NE: return "ne";
    case Cond::LT: return "lt";
    case Cond::LE: return "le";
    case Cond::GT: return "gt";
    case Cond::GE: return "ge";
    case Cond::LO: return "lo";
    case Cond::LS: return "ls";
    case Cond::HI: return "hi";
    case Cond::HS: return "hs";
  }
  return "?";
}

std::string to_string(const SInst& inst) {
  std::string s = cat(op_name(inst.op), cond_name(inst.cond));
  switch (inst.op) {
    case SOp::B:
    case SOp::Bl:
      return cat(s, " ", inst.target);
    case SOp::Bx:
      return cat(s, " r", inst.rn);
    case SOp::Halt:
      return s;
    case SOp::Out:
      return cat(s, " ", op2_str(inst.op2));
    case SOp::Cmp:
      return cat(s, " r", inst.rn, ", ", op2_str(inst.op2));
    case SOp::Mov:
    case SOp::Mvn:
      return cat(s, " r", inst.rd, ", ", op2_str(inst.op2));
    case SOp::Ldr:
    case SOp::Ldrb:
    case SOp::Str:
    case SOp::Strb:
      return cat(s, " r", inst.rd, ", [r", inst.rn, ", ", op2_str(inst.op2),
                 "]");
    default:
      return cat(s, " r", inst.rd, ", r", inst.rn, ", ", op2_str(inst.op2));
  }
}

std::string to_string(const SProgram& program) {
  std::string out;
  std::size_t sym = 0;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    while (sym < program.symbols.size() && program.symbols[sym].second == i) {
      out += cat(program.symbols[sym].first, ":\n");
      ++sym;
    }
    out += cat("  ", i, ": ", to_string(program.code[i]), "\n");
  }
  return out;
}

}  // namespace cepic::sarm
