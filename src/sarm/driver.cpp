#include "sarm/driver.hpp"

#include "frontend/irgen.hpp"

namespace cepic::sarm {

SProgram compile_minic_to_sarm(std::string_view source,
                               const SarmCompileOptions& options) {
  ir::Module module = minic::compile_to_ir(source);
  if (options.optimize) opt::optimize(module, options.opt);
  return compile_ir_to_sarm(module, options.backend);
}

SarmSimulator run_minic_on_sarm(std::string_view source,
                                const SarmCompileOptions& options,
                                const SarmOptionsSim& sim_options) {
  SarmCompileOptions opts = options;
  opts.backend.stack_top = static_cast<std::uint32_t>(sim_options.mem_size);
  SarmSimulator sim(compile_minic_to_sarm(source, opts), sim_options);
  sim.run();
  return sim;
}

}  // namespace cepic::sarm
