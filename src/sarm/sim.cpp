#include "sarm/sim.hpp"

#include <algorithm>

#include "core/program.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic::sarm {

SarmSimulator::SarmSimulator(SProgram program, SarmOptionsSim options)
    : program_(std::move(program)),
      options_(options),
      regs_(kNumRegs, 0),
      mem_(options.mem_size) {
  reset();
}

void SarmSimulator::reset() {
  std::fill(regs_.begin(), regs_.end(), 0);
  flags_ = Flags{};
  mem_.reset();  // cost: the pages actually written, not the full size
  mem_.load_image(kDataBase, program_.data);
  pc_ = program_.entry;
  halted_ = false;
  last_was_load_ = false;
  last_load_reg_ = 0;
  output_.clear();
  stats_ = SarmStats{};
}

std::uint32_t SarmSimulator::reg(unsigned i) const {
  CEPIC_CHECK(i < kNumRegs, "register index");
  return regs_[i];
}

void SarmSimulator::set_reg(unsigned i, std::uint32_t v) {
  CEPIC_CHECK(i < kNumRegs, "register index");
  regs_[i] = v;
}

bool SarmSimulator::cond_passes(Cond cond) const {
  switch (cond) {
    case Cond::AL: return true;
    case Cond::EQ: return flags_.z;
    case Cond::NE: return !flags_.z;
    case Cond::LT: return flags_.n != flags_.v;
    case Cond::GE: return flags_.n == flags_.v;
    case Cond::GT: return !flags_.z && flags_.n == flags_.v;
    case Cond::LE: return flags_.z || flags_.n != flags_.v;
    case Cond::LO: return !flags_.c;
    case Cond::HS: return flags_.c;
    case Cond::HI: return flags_.c && !flags_.z;
    case Cond::LS: return !flags_.c || flags_.z;
  }
  return false;
}

std::uint32_t SarmSimulator::eval_op2(const Operand2& op2) const {
  if (op2.is_imm) return static_cast<std::uint32_t>(op2.imm);
  const std::uint32_t v = regs_[op2.rm];
  switch (op2.shift) {
    case Shift::None: return v;
    case Shift::Lsl: return v << op2.shift_amount;
    case Shift::Lsr: return op2.shift_amount ? v >> op2.shift_amount : v;
    case Shift::Asr:
      return static_cast<std::uint32_t>(to_signed(v) >>
                                        std::min<unsigned>(op2.shift_amount, 31));
  }
  return v;
}

bool SarmSimulator::step() {
  if (halted_) return false;
  if (pc_ >= program_.code.size()) {
    throw SimError(cat("SARM pc ", pc_, " past end of program"));
  }
  const SInst& inst = program_.code[pc_];
  ++stats_.insts_executed;
  ++stats_.cycles;

  // Load-use interlock (value read the cycle after a load).
  if (last_was_load_) {
    bool uses = false;
    switch (inst.op) {
      case SOp::B:
      case SOp::Bl:
      case SOp::Halt:
        break;
      case SOp::Bx:
        uses = inst.rn == last_load_reg_;
        break;
      default: {
        if (!inst.op2.is_imm && inst.op2.rm == last_load_reg_) uses = true;
        switch (inst.op) {
          case SOp::Mov:
          case SOp::Mvn:
          case SOp::Out:
            break;
          case SOp::Str:
          case SOp::Strb:
            uses |= inst.rd == last_load_reg_ || inst.rn == last_load_reg_;
            break;
          default:
            uses |= inst.rn == last_load_reg_;
            break;
        }
        break;
      }
    }
    if (uses) {
      ++stats_.cycles;
      ++stats_.load_use_stalls;
    }
  }
  last_was_load_ = false;

  const bool execute = cond_passes(inst.cond);
  std::uint32_t next_pc = pc_ + 1;

  if (execute) {
    ++stats_.insts_committed;
    const std::uint32_t n = regs_[inst.rn];
    const std::uint32_t m = eval_op2(inst.op2);
    switch (inst.op) {
      case SOp::Add: regs_[inst.rd] = n + m; break;
      case SOp::Sub: regs_[inst.rd] = n - m; break;
      case SOp::Rsb: regs_[inst.rd] = m - n; break;
      case SOp::Mul:
        regs_[inst.rd] = n * m;
        stats_.cycles += options_.mul_extra_cycles;
        stats_.mul_cycles += options_.mul_extra_cycles;
        break;
      case SOp::And: regs_[inst.rd] = n & m; break;
      case SOp::Orr: regs_[inst.rd] = n | m; break;
      case SOp::Eor: regs_[inst.rd] = n ^ m; break;
      case SOp::Bic: regs_[inst.rd] = n & ~m; break;
      case SOp::Mov: regs_[inst.rd] = m; break;
      case SOp::Mvn: regs_[inst.rd] = ~m; break;
      case SOp::Lsl: regs_[inst.rd] = n << (m & 31); break;
      case SOp::Lsr: regs_[inst.rd] = (m & 31) ? n >> (m & 31) : n; break;
      case SOp::Asr:
        regs_[inst.rd] =
            static_cast<std::uint32_t>(to_signed(n) >> (m & 31));
        break;
      case SOp::Min:
      case SOp::Max:
        CEPIC_CHECK(false, "min/max are lowered by the code generator");
        break;
      case SOp::Cmp: {
        const std::uint64_t wide =
            static_cast<std::uint64_t>(n) - static_cast<std::uint64_t>(m);
        const std::uint32_t result = static_cast<std::uint32_t>(wide);
        flags_.z = result == 0;
        flags_.n = to_signed(result) < 0;
        flags_.c = n >= m;  // no borrow
        flags_.v = ((n ^ m) & (n ^ result) & 0x80000000u) != 0;
        break;
      }
      case SOp::Ldr:
        regs_[inst.rd] = mem_.read_word(n + m);
        ++stats_.mem_reads;
        last_was_load_ = true;
        last_load_reg_ = inst.rd;
        break;
      case SOp::Ldrb:
        regs_[inst.rd] = mem_.read_byte(n + m);
        ++stats_.mem_reads;
        last_was_load_ = true;
        last_load_reg_ = inst.rd;
        break;
      case SOp::Str:
        mem_.write_word(n + m, regs_[inst.rd]);
        ++stats_.mem_writes;
        break;
      case SOp::Strb:
        mem_.write_byte(n + m, static_cast<std::uint8_t>(regs_[inst.rd]));
        ++stats_.mem_writes;
        break;
      case SOp::B:
        next_pc = static_cast<std::uint32_t>(inst.target);
        ++stats_.branches_taken;
        stats_.cycles += options_.taken_branch_penalty;
        break;
      case SOp::Bl:
        regs_[kLr] = pc_ + 1;
        next_pc = static_cast<std::uint32_t>(inst.target);
        ++stats_.branches_taken;
        stats_.cycles += options_.taken_branch_penalty;
        break;
      case SOp::Bx:
        next_pc = n;
        ++stats_.branches_taken;
        stats_.cycles += options_.taken_branch_penalty;
        break;
      case SOp::Out:
        output_.push_back(m);
        break;
      case SOp::Halt:
        halted_ = true;
        return false;
      case SOp::SDiv:
      case SOp::SRem: {
        // Software divide routine: same defined corner cases as the
        // EPIC divider (q=0/r=n for m==0; INT_MIN/-1 wraps).
        const std::int32_t sn = to_signed(n);
        const std::int32_t sm = to_signed(m);
        std::int32_t q = 0, r = sn;
        if (sm != 0) {
          const std::int64_t wq = static_cast<std::int64_t>(sn) / sm;
          q = static_cast<std::int32_t>(wq);
          r = static_cast<std::int32_t>(static_cast<std::int64_t>(sn) % sm);
        }
        regs_[inst.rd] = to_unsigned(inst.op == SOp::SDiv ? q : r);
        stats_.cycles += options_.div_total_cycles - 1;
        stats_.div_cycles += options_.div_total_cycles - 1;
        break;
      }
    }
  } else if (inst.op == SOp::B || inst.op == SOp::Bl || inst.op == SOp::Bx) {
    ++stats_.branches_not_taken;
  }

  pc_ = next_pc;
  if (stats_.cycles > options_.max_cycles) {
    throw SimError(cat("SARM cycle limit exceeded (", options_.max_cycles,
                       ") — runaway program?"));
  }
  return true;
}

const SarmStats& SarmSimulator::run() {
  while (step()) {
  }
  return stats_;
}

}  // namespace cepic::sarm
