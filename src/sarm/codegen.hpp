// IR -> SARM code generation: the same optimised IR that feeds the EPIC
// backend is compiled for the scalar baseline, so the paper's comparison
// (§5.2) is compiler-fair — both targets get identical middle-end
// treatment; only the backends differ.
#pragma once

#include "ir/ir.hpp"
#include "sarm/isa.hpp"

namespace cepic::sarm {

struct SarmOptions {
  std::uint32_t stack_top = std::uint32_t{1} << 22;
  /// Fold constant shifts into the barrel-shifter operand of the
  /// consumer (free on ARM); disable to measure its effect.
  bool fold_shifts = true;
};

/// Compile a verified IR module (with a `main`) to a linked SARM
/// program. Throws Error on ABI violations (more than 4 arguments).
SProgram compile_ir_to_sarm(const ir::Module& module,
                            const SarmOptions& options = {});

}  // namespace cepic::sarm
