// SARM: the scalar ARM-flavoured baseline standing in for the StrongARM
// SA-110 (the paper compares against SimIt-ARM cycle counts, §5.2).
// Single-issue, in-order, condition codes, conditional execution, a free
// barrel shifter on the second operand — the architectural features that
// drive the SA-110's cycle behaviour. The divide instruction does not
// exist (as on real ARM); the code generator emits a software-divide
// pseudo-op charged with a fixed cycle cost.
//
// ABI: r0..r3 arguments / r0 return value, r4..r12 allocatable
// temporaries, r13 = sp, r14 = lr. All caller-save. Frame layout:
// [0,4) saved lr, [4, 4+frame_bytes) locals, then spill slots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cepic::sarm {

enum class SOp : std::uint8_t {
  Add, Sub, Rsb, Mul,
  And, Orr, Eor, Bic,
  Mov, Mvn,
  Lsl, Lsr, Asr,
  Min, Max,  // lowered to CMP + conditional MOV by the codegen; never emitted
  Cmp,
  Ldr, Str, Ldrb, Strb,
  B, Bl, Bx,
  Out,
  Halt,
  SDiv, SRem,  ///< software-divide pseudo-ops (library-routine stand-in)
};

enum class Cond : std::uint8_t {
  AL, EQ, NE, LT, LE, GT, GE, LO, LS, HI, HS,
};

enum class Shift : std::uint8_t { None, Lsl, Lsr, Asr };

/// The flexible second operand: register (optionally shifted by a
/// constant through the barrel shifter, which is free) or immediate.
struct Operand2 {
  bool is_imm = true;
  std::uint32_t rm = 0;
  std::int32_t imm = 0;
  Shift shift = Shift::None;
  std::uint8_t shift_amount = 0;

  static Operand2 reg(std::uint32_t r, Shift s = Shift::None,
                      std::uint8_t amount = 0) {
    Operand2 o;
    o.is_imm = false;
    o.rm = r;
    o.shift = s;
    o.shift_amount = amount;
    return o;
  }
  static Operand2 immediate(std::int32_t v) {
    Operand2 o;
    o.is_imm = true;
    o.imm = v;
    return o;
  }
};

struct SInst {
  SOp op = SOp::Mov;
  Cond cond = Cond::AL;
  std::uint32_t rd = 0;  ///< destination; store value for Str/Strb
  std::uint32_t rn = 0;  ///< first operand / memory base
  Operand2 op2;          ///< second operand / memory offset
  int target = -1;       ///< branch target (block id, then inst index)
};

/// Fixed registers.
inline constexpr std::uint32_t kR0 = 0;
inline constexpr std::uint32_t kSp = 13;
inline constexpr std::uint32_t kLr = 14;
inline constexpr std::uint32_t kNumRegs = 16;
inline constexpr std::uint32_t kMaxArgs = 4;
inline constexpr std::uint32_t kFirstAllocatable = 4;   // r4..r12
inline constexpr std::uint32_t kLastAllocatable = 12;

/// A linked SARM program: flat instruction vector with resolved branch
/// targets, plus the initial data image (same layout as the EPIC side).
struct SProgram {
  std::vector<SInst> code;
  std::uint32_t entry = 0;
  std::vector<std::uint8_t> data;
  /// Function name -> first instruction (for debugging/disassembly).
  std::vector<std::pair<std::string, std::uint32_t>> symbols;
};

std::string to_string(const SInst& inst);
std::string to_string(const SProgram& program);
const char* cond_name(Cond cond);

}  // namespace cepic::sarm
