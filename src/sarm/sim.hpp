// SARM simulator with an SA-110-like cycle model (the SimIt-ARM role
// from paper §5.2): single-issue in-order 5-stage pipeline —
//   * 1 cycle per issued instruction (condition-failed ones too);
//   * MUL: +2 cycles (SA-110 multiplies take 1-3 depending on operand);
//   * load-use interlock: +1 cycle when the very next executed
//     instruction reads a just-loaded register;
//   * taken branches (B/BL/BX): +2 cycles of fetch bubbles;
//   * software divide pseudo-ops: 35 cycles total (ARM has no divide
//     instruction; this models the shift-subtract library routine).
#pragma once

#include <cstdint>
#include <vector>

#include "core/memory.hpp"
#include "sarm/isa.hpp"

namespace cepic::sarm {

struct SarmStats {
  std::uint64_t cycles = 0;
  std::uint64_t insts_executed = 0;   ///< issued (including cond-failed)
  std::uint64_t insts_committed = 0;  ///< condition passed
  std::uint64_t branches_taken = 0;
  std::uint64_t branches_not_taken = 0;
  std::uint64_t load_use_stalls = 0;
  std::uint64_t mul_cycles = 0;
  std::uint64_t div_cycles = 0;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
};

struct SarmOptionsSim {
  std::uint64_t max_cycles = 2'000'000'000;
  std::size_t mem_size = std::size_t{1} << 22;
  unsigned mul_extra_cycles = 2;
  unsigned div_total_cycles = 35;
  unsigned taken_branch_penalty = 2;
};

class SarmSimulator {
public:
  explicit SarmSimulator(SProgram program, SarmOptionsSim options = {});

  void reset();
  const SarmStats& run();  ///< until HALT; throws SimError on faults
  bool step();

  std::uint32_t reg(unsigned i) const;
  void set_reg(unsigned i, std::uint32_t v);
  const std::vector<std::uint32_t>& output() const { return output_; }
  const SarmStats& stats() const { return stats_; }
  DataMemory& memory() { return mem_; }
  bool halted() const { return halted_; }

private:
  struct Flags {
    bool n = false, z = false, c = false, v = false;
  };

  bool cond_passes(Cond cond) const;
  std::uint32_t eval_op2(const Operand2& op2) const;

  SProgram program_;
  SarmOptionsSim options_;
  std::vector<std::uint32_t> regs_;
  Flags flags_;
  DataMemory mem_;
  std::uint32_t pc_ = 0;
  bool halted_ = false;
  std::uint32_t last_load_reg_ = 0;
  bool last_was_load_ = false;
  std::vector<std::uint32_t> output_;
  SarmStats stats_;
};

}  // namespace cepic::sarm
