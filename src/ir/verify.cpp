#include "ir/verify.hpp"

#include <set>

#include "support/text.hpp"

namespace cepic::ir {

namespace {

[[noreturn]] void fail(const Function& fn, std::size_t bi, std::size_t ii,
                       const std::string& msg) {
  throw InternalError(cat("IR verify: ", fn.name, " .b", bi, " inst ", ii,
                          ": ", msg));
}

}  // namespace

void verify_function(const Function& fn, const Module* module) {
  if (fn.blocks.empty()) {
    throw InternalError(cat("IR verify: ", fn.name, ": no blocks"));
  }
  if (fn.frame_bytes % 4 != 0) {
    throw InternalError(cat("IR verify: ", fn.name, ": unaligned frame"));
  }
  for (VReg p : fn.params) {
    if (p == kNoVReg || p >= fn.next_vreg) {
      throw InternalError(cat("IR verify: ", fn.name, ": bad param vreg"));
    }
  }

  const auto check_value = [&](const Value& v, std::size_t bi, std::size_t ii,
                               const char* slot, bool required) {
    if (v.is_none()) {
      if (required) fail(fn, bi, ii, cat(slot, " operand missing"));
      return;
    }
    if (v.is_reg() && (v.reg == kNoVReg || v.reg >= fn.next_vreg)) {
      fail(fn, bi, ii, cat(slot, " vreg %", v.reg, " out of range"));
    }
  };
  const auto check_block_ref = [&](int target, std::size_t bi, std::size_t ii) {
    if (target < 0 || target >= static_cast<int>(fn.blocks.size())) {
      fail(fn, bi, ii, cat("branch target .b", target, " out of range"));
    }
  };

  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    const BasicBlock& block = fn.blocks[bi];
    if (block.insts.empty() || !is_terminator(block.insts.back().op)) {
      throw InternalError(
          cat("IR verify: ", fn.name, " .b", bi, ": missing terminator"));
    }
    for (std::size_t ii = 0; ii < block.insts.size(); ++ii) {
      const IrInst& inst = block.insts[ii];
      if (is_terminator(inst.op) && ii + 1 != block.insts.size()) {
        fail(fn, bi, ii, "terminator in the middle of a block");
      }
      if (inst.guard != kNoVReg && inst.guard >= fn.next_vreg) {
        fail(fn, bi, ii, "guard vreg out of range");
      }
      if (inst.guard != kNoVReg && is_terminator(inst.op)) {
        fail(fn, bi, ii, "terminators cannot be guarded");
      }
      if (inst.guard != kNoVReg && inst.op == IrOp::Call) {
        // The backend lowers calls unconditionally (lower_call asserts
        // this); reject guarded calls at the IR level instead of deep
        // inside lowering.
        fail(fn, bi, ii, "calls cannot be guarded");
      }
      if (inst.guard == kNoVReg && inst.guard_negate) {
        fail(fn, bi, ii, "guard_negate set on an unguarded instruction");
      }
      if (has_dst(inst)) {
        if (inst.dst == kNoVReg || inst.dst >= fn.next_vreg) {
          fail(fn, bi, ii, cat("dst vreg %", inst.dst, " out of range"));
        }
      } else if (inst.op != IrOp::Call && inst.dst != kNoVReg) {
        fail(fn, bi, ii, "dst set on an op that defines nothing");
      }
      // Stray-field checks: every operand slot that the op does not
      // read or write must be in its default state, so analyses that
      // walk fields by op shape never see stale data.
      if (inst.op != IrOp::Br && inst.op != IrOp::CondBr) {
        if (inst.block_then != -1 || inst.block_else != -1) {
          fail(fn, bi, ii, "branch target on a non-branch instruction");
        }
      } else if (inst.op == IrOp::Br && inst.block_else != -1) {
        fail(fn, bi, ii, "block_else set on an unconditional branch");
      }
      if (inst.op != IrOp::Call && (!inst.callee.empty() || !inst.args.empty())) {
        fail(fn, bi, ii, "callee/args on a non-call instruction");
      }
      if (inst.op != IrOp::StoreW && inst.op != IrOp::StoreB &&
          !inst.c.is_none()) {
        fail(fn, bi, ii, "c operand on a non-store instruction");
      }
      switch (inst.op) {
        case IrOp::Mov:
          check_value(inst.a, bi, ii, "a", true);
          break;
        case IrOp::LoadW:
        case IrOp::LoadB:
        case IrOp::LoadBU:
          check_value(inst.a, bi, ii, "base", true);
          check_value(inst.b, bi, ii, "offset", true);
          break;
        case IrOp::StoreW:
        case IrOp::StoreB:
          check_value(inst.a, bi, ii, "base", true);
          check_value(inst.b, bi, ii, "offset", true);
          check_value(inst.c, bi, ii, "value", true);
          break;
        case IrOp::GlobalAddr:
          if (module != nullptr &&
              (inst.global_index < 0 ||
               inst.global_index >=
                   static_cast<int>(module->globals.size()))) {
            fail(fn, bi, ii, "global index out of range");
          }
          break;
        case IrOp::FrameAddr:
          if (!inst.a.is_imm()) fail(fn, bi, ii, "faddr needs imm offset");
          if (inst.a.imm < 0 ||
              static_cast<std::uint32_t>(inst.a.imm) >= std::max(fn.frame_bytes, 1u)) {
            fail(fn, bi, ii, "faddr offset outside frame");
          }
          break;
        case IrOp::Call: {
          for (std::size_t ai = 0; ai < inst.args.size(); ++ai) {
            check_value(inst.args[ai], bi, ii, "arg", true);
          }
          if (module != nullptr) {
            const Function* callee = module->find_function(inst.callee);
            if (callee == nullptr) {
              fail(fn, bi, ii, cat("unknown callee @", inst.callee));
            }
            if (callee->params.size() != inst.args.size()) {
              fail(fn, bi, ii,
                   cat("call @", inst.callee, " expects ",
                       callee->params.size(), " args, got ",
                       inst.args.size()));
            }
            if (inst.dst != kNoVReg && !callee->returns_value) {
              fail(fn, bi, ii, "void callee used as a value");
            }
          }
          break;
        }
        case IrOp::Out:
          check_value(inst.a, bi, ii, "a", true);
          break;
        case IrOp::Br:
          check_block_ref(inst.block_then, bi, ii);
          break;
        case IrOp::CondBr:
          check_value(inst.a, bi, ii, "cond", true);
          check_block_ref(inst.block_then, bi, ii);
          check_block_ref(inst.block_else, bi, ii);
          break;
        case IrOp::Ret:
          if (fn.returns_value && inst.a.is_none()) {
            fail(fn, bi, ii, "ret without value in value-returning function");
          }
          check_value(inst.a, bi, ii, "a", false);
          break;
        default:
          // Binary ALU and compares.
          check_value(inst.a, bi, ii, "a", true);
          check_value(inst.b, bi, ii, "b", true);
          break;
      }
    }
  }
}

void verify_module(const Module& module, bool require_main) {
  std::set<std::string> names;
  for (const Function& fn : module.functions) {
    if (!names.insert(fn.name).second) {
      throw InternalError(cat("IR verify: duplicate function @", fn.name));
    }
    verify_function(fn, &module);
  }
  std::set<std::string> globals;
  for (const Global& g : module.globals) {
    if (!globals.insert(g.name).second) {
      throw InternalError(cat("IR verify: duplicate global @", g.name));
    }
    if (g.size_words == 0) {
      throw InternalError(cat("IR verify: zero-sized global @", g.name));
    }
  }
  if (require_main && module.find_function("main") == nullptr) {
    throw InternalError("IR verify: no `main` function");
  }
}

}  // namespace cepic::ir
