#include "ir/interp.hpp"

#include "core/eval.hpp"
#include "core/program.hpp"
#include "support/bits.hpp"
#include "support/text.hpp"

namespace cepic::ir {

namespace {

Op alu_op_of(IrOp op) {
  switch (op) {
    case IrOp::Add: return Op::ADD;
    case IrOp::Sub: return Op::SUB;
    case IrOp::Mul: return Op::MUL;
    case IrOp::Div: return Op::DIV;
    case IrOp::Rem: return Op::REM;
    case IrOp::And: return Op::AND;
    case IrOp::Or: return Op::OR;
    case IrOp::Xor: return Op::XOR;
    case IrOp::Shl: return Op::SHL;
    case IrOp::Shra: return Op::SHRA;
    case IrOp::Shrl: return Op::SHRL;
    case IrOp::Min: return Op::MIN;
    case IrOp::Max: return Op::MAX;
    default: break;
  }
  CEPIC_CHECK(false, "not a binary ALU IrOp");
}

Op cmp_op_of(IrOp op) {
  switch (op) {
    case IrOp::CmpEq: return Op::CMPP_EQ;
    case IrOp::CmpNe: return Op::CMPP_NE;
    case IrOp::CmpLt: return Op::CMPP_LT;
    case IrOp::CmpLe: return Op::CMPP_LE;
    case IrOp::CmpGt: return Op::CMPP_GT;
    case IrOp::CmpGe: return Op::CMPP_GE;
    case IrOp::CmpLtU: return Op::CMPP_LTU;
    case IrOp::CmpLeU: return Op::CMPP_LEU;
    case IrOp::CmpGtU: return Op::CMPP_GTU;
    case IrOp::CmpGeU: return Op::CMPP_GEU;
    default: break;
  }
  CEPIC_CHECK(false, "not a compare IrOp");
}

}  // namespace

Interpreter::Interpreter(const Module& module, InterpOptions options)
    : module_(module),
      options_(options),
      layout_(layout_globals(module)),
      mem_(options.mem_size) {
  mem_.load_image(kDataBase, layout_.image);
  sp_ = static_cast<std::uint32_t>(mem_.size());
}

InterpResult Interpreter::run(std::string_view entry,
                              std::span<const std::uint32_t> args) {
  const Function* fn = module_.find_function(entry);
  if (fn == nullptr) {
    throw SimError(cat("interp: no function @", std::string(entry)));
  }
  steps_ = 0;
  output_.clear();
  InterpResult result;
  result.ret = call(*fn, {args.begin(), args.end()}, 0);
  result.output = output_;
  result.steps = steps_;
  return result;
}

std::uint32_t Interpreter::call(const Function& fn,
                                const std::vector<std::uint32_t>& args,
                                unsigned depth) {
  if (depth > options_.max_call_depth) {
    throw SimError(cat("interp: call depth exceeded in @", fn.name));
  }
  if (args.size() != fn.params.size()) {
    throw SimError(cat("interp: @", fn.name, " expects ", fn.params.size(),
                       " args, got ", args.size()));
  }
  if (sp_ < fn.frame_bytes + kDataBase) {
    throw SimError("interp: stack overflow");
  }
  sp_ -= fn.frame_bytes;
  const std::uint32_t frame_base = sp_;

  std::vector<std::uint32_t> regs(fn.next_vreg, 0);
  for (std::size_t i = 0; i < args.size(); ++i) regs[fn.params[i]] = args[i];

  const auto value = [&](const Value& v) -> std::uint32_t {
    if (v.is_imm()) return static_cast<std::uint32_t>(v.imm);
    if (v.is_reg()) return regs[v.reg];
    CEPIC_CHECK(false, "reading a missing operand");
  };

  std::uint32_t ret = 0;
  int bi = 0;
  std::size_t ii = 0;
  if (observer_ != nullptr) observer_->on_block_entry(fn, bi, regs);
  for (;;) {
    if (++steps_ > options_.max_steps) {
      throw SimError("interp: step limit exceeded — runaway program?");
    }
    const IrInst& inst = fn.blocks[bi].insts[ii];

    if (inst.guard != kNoVReg) {
      const bool g = (regs[inst.guard] != 0) != inst.guard_negate;
      if (observer_ != nullptr) {
        observer_->on_guard(fn, bi, static_cast<int>(ii), g);
      }
      if (!g) {
        ++ii;
        continue;
      }
    }

    switch (inst.op) {
      case IrOp::Mov:
        regs[inst.dst] = value(inst.a);
        break;
      case IrOp::LoadW:
        regs[inst.dst] = mem_.read_word(value(inst.a) + value(inst.b));
        break;
      case IrOp::LoadB:
        regs[inst.dst] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(
                mem_.read_byte(value(inst.a) + value(inst.b)))));
        break;
      case IrOp::LoadBU:
        regs[inst.dst] = mem_.read_byte(value(inst.a) + value(inst.b));
        break;
      case IrOp::StoreW:
        mem_.write_word(value(inst.a) + value(inst.b), value(inst.c));
        break;
      case IrOp::StoreB:
        mem_.write_byte(value(inst.a) + value(inst.b),
                        static_cast<std::uint8_t>(value(inst.c)));
        break;
      case IrOp::GlobalAddr:
        CEPIC_CHECK(inst.global_index >= 0 &&
                        inst.global_index <
                            static_cast<int>(layout_.global_addr.size()),
                    "global index");
        regs[inst.dst] = layout_.global_addr[inst.global_index];
        break;
      case IrOp::FrameAddr:
        regs[inst.dst] = frame_base + static_cast<std::uint32_t>(inst.a.imm);
        break;
      case IrOp::Call: {
        const Function* callee = module_.find_function(inst.callee);
        if (callee == nullptr) {
          throw SimError(cat("interp: unknown callee @", inst.callee));
        }
        std::vector<std::uint32_t> call_args;
        call_args.reserve(inst.args.size());
        for (const Value& v : inst.args) call_args.push_back(value(v));
        const std::uint32_t r = call(*callee, call_args, depth + 1);
        if (inst.dst != kNoVReg) regs[inst.dst] = r;
        break;
      }
      case IrOp::Out:
        output_.push_back(value(inst.a));
        break;
      case IrOp::Br:
        bi = inst.block_then;
        ii = 0;
        if (observer_ != nullptr) observer_->on_block_entry(fn, bi, regs);
        continue;
      case IrOp::CondBr: {
        const bool then_taken = value(inst.a) != 0;
        if (observer_ != nullptr) observer_->on_branch(fn, bi, then_taken);
        bi = then_taken ? inst.block_then : inst.block_else;
        ii = 0;
        if (observer_ != nullptr) observer_->on_block_entry(fn, bi, regs);
        continue;
      }
      case IrOp::Ret:
        if (!inst.a.is_none()) ret = value(inst.a);
        sp_ += fn.frame_bytes;
        return ret;
      default:
        if (is_cmp(inst.op)) {
          regs[inst.dst] =
              eval_cmpp(cmp_op_of(inst.op), value(inst.a), value(inst.b), 32)
                  ? 1u
                  : 0u;
        } else {
          regs[inst.dst] =
              eval_alu(alu_op_of(inst.op), value(inst.a), value(inst.b), 32);
        }
        break;
    }
    ++ii;
  }
}

}  // namespace cepic::ir
