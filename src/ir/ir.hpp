// The CEPIC compiler's intermediate representation: a non-SSA
// three-address code over virtual registers, in the spirit of the Lcode
// used by Trimaran's IMPACT module (which the paper's compiler flow is
// built on). Machine-independent optimisations, if-conversion and both
// back-ends (EPIC and the SARM baseline) operate on this IR; the
// interpreter in interp.hpp gives its golden semantics.
//
// Conventions:
//  * all values are 32-bit words; signedness is per-operation;
//  * virtual registers are dense indices, 1.. (0 is "no register");
//  * an instruction may carry a guard: it commits only if the guard
//    vreg is non-zero (or zero, when guard_negate) — the IR-level image
//    of EPIC predication, produced by the if-conversion pass;
//  * memory is byte-addressed big-endian, shared layout with the EPIC
//    simulator: globals from kDataBase, stack at the top growing down;
//  * each block ends in exactly one terminator (Br/CondBr/Ret).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cepic::ir {

using VReg = std::uint32_t;
inline constexpr VReg kNoVReg = 0;

enum class IrOp : std::uint8_t {
  // Binary arithmetic/logical: dst = a <op> b.
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor,
  Shl, Shra, Shrl,
  Min, Max,
  // dst = a.
  Mov,
  // Comparisons: dst = (a <cond> b) ? 1 : 0.
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  CmpLtU, CmpLeU, CmpGtU, CmpGeU,
  // Memory: address = a + b.
  LoadW, LoadB, LoadBU,
  StoreW, StoreB,  ///< stored value in `c`
  // Address materialisation.
  GlobalAddr,  ///< dst = address of globals[global_index]
  FrameAddr,   ///< dst = frame base + imm byte offset (in a)
  // Calls: dst (optional) = callee(args...).
  Call,
  // Emit a to the output port.
  Out,
  // Terminators.
  Br,       ///< jump to block_then
  CondBr,   ///< if a != 0 jump block_then else block_else
  Ret,      ///< return a (optional)
};

struct Value {
  enum class Kind : std::uint8_t { None, Reg, Imm };
  Kind kind = Kind::None;
  VReg reg = kNoVReg;
  std::int32_t imm = 0;

  static Value none() { return {}; }
  static Value r(VReg v) {
    Value x;
    x.kind = Kind::Reg;
    x.reg = v;
    return x;
  }
  static Value i(std::int32_t v) {
    Value x;
    x.kind = Kind::Imm;
    x.imm = v;
    return x;
  }
  bool is_reg() const { return kind == Kind::Reg; }
  bool is_imm() const { return kind == Kind::Imm; }
  bool is_none() const { return kind == Kind::None; }
  bool operator==(const Value&) const = default;
};

struct IrInst {
  IrOp op = IrOp::Mov;
  VReg dst = kNoVReg;
  Value a;
  Value b;
  Value c;  ///< store value operand

  // Guard (IR predication): commit only if vreg(guard) != 0, flipped by
  // guard_negate. kNoVReg = unguarded.
  VReg guard = kNoVReg;
  bool guard_negate = false;

  int global_index = -1;           ///< GlobalAddr
  std::string callee;              ///< Call
  std::vector<Value> args;         ///< Call
  int block_then = -1;             ///< Br/CondBr
  int block_else = -1;             ///< CondBr

  bool operator==(const IrInst&) const = default;
};

/// Operation predicates.
bool is_terminator(IrOp op);
bool is_cmp(IrOp op);
bool is_load(IrOp op);
bool is_store(IrOp op);
bool is_binary_alu(IrOp op);   // Add..Max (incl. Mov? no: pure 2-src ALU)
bool has_dst(const IrInst& inst);
/// Does the instruction have side effects beyond writing dst?
bool has_side_effects(const IrInst& inst);
const char* ir_op_name(IrOp op);

struct BasicBlock {
  std::string label;
  std::vector<IrInst> insts;

  const IrInst& terminator() const {
    CEPIC_CHECK(!insts.empty() && is_terminator(insts.back().op),
                "block has no terminator");
    return insts.back();
  }

  bool operator==(const BasicBlock&) const = default;
};

/// A word-array global with optional initialiser (zero-filled tail).
struct Global {
  std::string name;
  std::uint32_t size_words = 1;
  std::vector<std::uint32_t> init_words;

  bool operator==(const Global&) const = default;
};

struct Function {
  std::string name;
  std::vector<VReg> params;
  bool returns_value = false;
  std::uint32_t frame_bytes = 0;  ///< local array storage, 4-byte aligned
  std::vector<BasicBlock> blocks;
  VReg next_vreg = 1;

  VReg fresh_vreg() { return next_vreg++; }
  int add_block(std::string label) {
    blocks.push_back(BasicBlock{std::move(label), {}});
    return static_cast<int>(blocks.size()) - 1;
  }

  bool operator==(const Function&) const = default;
};

struct Module {
  std::vector<Global> globals;
  std::vector<Function> functions;

  Function* find_function(std::string_view name);
  const Function* find_function(std::string_view name) const;
  int global_index(std::string_view name) const;  ///< -1 if absent

  bool operator==(const Module&) const = default;
};

/// Placement of globals in data memory (shared between the interpreter
/// and both back-ends so addresses agree everywhere).
struct DataLayout {
  std::vector<std::uint32_t> global_addr;  ///< by global index
  std::vector<std::uint8_t> image;         ///< initial bytes at kDataBase
};

DataLayout layout_globals(const Module& module);

/// Render IR as text (debugging and golden tests).
std::string to_string(const IrInst& inst, const Module* module = nullptr);
std::string to_string(const Function& fn, const Module* module = nullptr);
std::string to_string(const Module& module);

}  // namespace cepic::ir
