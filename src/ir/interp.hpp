// Reference interpreter for the IR — the golden semantic model that the
// compiled EPIC and SARM executions are validated against in tests. It
// shares the word-level operation semantics (core/eval.hpp) and the
// memory model (core/memory.hpp, globals at kDataBase, big-endian) with
// the simulators, so outputs are bit-identical across all three
// executions by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/memory.hpp"
#include "ir/ir.hpp"

namespace cepic::ir {

struct InterpOptions {
  std::size_t mem_size = std::size_t{1} << 22;
  std::uint64_t max_steps = 500'000'000;
  unsigned max_call_depth = 256;
};

struct InterpResult {
  std::uint32_t ret = 0;
  std::vector<std::uint32_t> output;
  std::uint64_t steps = 0;
};

/// Observation hook for the analysis soundness harness
/// (tests/test_analysis_soundness.cpp): fires on every block entry
/// (with the committed register file), every guard evaluation, and
/// every conditional-branch direction, so statically proven facts can
/// be checked against each observed execution.
class InterpObserver {
public:
  virtual ~InterpObserver() = default;
  virtual void on_block_entry(const Function& /*fn*/, int /*block*/,
                              std::span<const std::uint32_t> /*regs*/) {}
  virtual void on_guard(const Function& /*fn*/, int /*block*/, int /*inst*/,
                        bool /*committed*/) {}
  virtual void on_branch(const Function& /*fn*/, int /*block*/,
                         bool /*then_taken*/) {}
};

class Interpreter {
public:
  explicit Interpreter(const Module& module, InterpOptions options = {});

  /// Execute `entry` with the given arguments. Throws SimError on
  /// faults, runaway execution or call-depth overflow.
  InterpResult run(std::string_view entry = "main",
                   std::span<const std::uint32_t> args = {});

  DataMemory& memory() { return mem_; }
  const DataLayout& layout() const { return layout_; }

  /// Install (or clear, with nullptr) an execution observer. Not owned.
  void set_observer(InterpObserver* observer) { observer_ = observer; }

private:
  std::uint32_t call(const Function& fn,
                     const std::vector<std::uint32_t>& args, unsigned depth);

  const Module& module_;
  InterpOptions options_;
  DataLayout layout_;
  DataMemory mem_;
  std::uint32_t sp_ = 0;
  std::uint64_t steps_ = 0;
  std::vector<std::uint32_t> output_;
  InterpObserver* observer_ = nullptr;
};

}  // namespace cepic::ir
