#include "ir/parse.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::ir {

namespace {

// Line-oriented recursive-descent parser over the printed form. Inside a
// line, a Cursor consumes the exact tokens the printer emits; it is
// whitespace-tolerant between tokens so hand-edited IR also parses, but
// printer output is consumed verbatim.
class Cursor {
public:
  Cursor(std::string_view s, int line) : s_(s), line_(line) {}

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  bool at_end() {
    skip_ws();
    return pos_ == s_.size();
  }

  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool try_eat(std::string_view token) {
    skip_ws();
    if (s_.substr(pos_).starts_with(token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void eat(std::string_view token) {
    if (!try_eat(token)) {
      fail(cat("expected '", token, "'"));
    }
  }

  /// An identifier: [A-Za-z_][A-Za-z0-9_]*.
  std::string ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected an identifier");
    return std::string(s_.substr(start, pos_ - start));
  }

  /// Everything up to (not including) the next `stop`, verbatim — used
  /// for block labels, which the frontend mints with dots in them
  /// ("for.cond") and the printer emits unquoted.
  std::string until(char stop) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != stop) ++pos_;
    if (pos_ == s_.size()) fail(cat("expected '", stop, "'"));
    return std::string(s_.substr(start, pos_ - start));
  }

  std::int64_t integer() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
    std::int64_t v = 0;
    if (pos_ == start || !parse_int(s_.substr(start, pos_ - start), v)) {
      fail("expected an integer");
    }
    return v;
  }

  VReg vreg() {
    eat("%");
    const std::int64_t v = integer();
    if (v <= 0 || v > 0xffffffffll) fail(cat("bad vreg %", v));
    return static_cast<VReg>(v);
  }

  /// A printed operand: %N, an integer literal, or _ (none).
  Value value() {
    skip_ws();
    if (peek() == '%') return Value::r(vreg());
    if (try_eat("_")) return Value::none();
    const std::int64_t v = integer();
    if (v < std::numeric_limits<std::int32_t>::min() ||
        v > std::numeric_limits<std::int32_t>::max()) {
      fail(cat("immediate ", v, " does not fit in 32 bits"));
    }
    return Value::i(static_cast<std::int32_t>(v));
  }

  /// A block reference: .bN.
  int block_ref() {
    eat(".b");
    const std::int64_t v = integer();
    if (v < 0 || v > 0x7fffffffll) fail(cat("bad block reference .b", v));
    return static_cast<int>(v);
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw CompileError(cat("IR: ", what), line_,
                       static_cast<int>(pos_) + 1);
  }

  std::string_view rest() {
    skip_ws();
    return s_.substr(pos_);
  }

private:
  std::string_view s_;
  int line_;
  std::size_t pos_ = 0;
};

/// ir_op_name() inverted for the ops printed by name in the generic
/// `%d = <op> a, b` form (binary ALU and comparisons).
const std::map<std::string, IrOp, std::less<>>& binary_ops() {
  static const std::map<std::string, IrOp, std::less<>> ops = [] {
    std::map<std::string, IrOp, std::less<>> m;
    for (int i = static_cast<int>(IrOp::Add);
         i <= static_cast<int>(IrOp::CmpGeU); ++i) {
      const auto op = static_cast<IrOp>(i);
      if (op == IrOp::Mov) continue;  // printed as a bare value
      m.emplace(ir_op_name(op), op);
    }
    return m;
  }();
  return ops;
}

class ModuleParser {
public:
  explicit ModuleParser(std::string_view text) {
    std::size_t pos = 0;
    int line_no = 0;
    while (pos <= text.size()) {
      const std::size_t eol = text.find('\n', pos);
      const std::string_view line =
          text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                         : eol - pos);
      ++line_no;
      if (!trim(line).empty()) lines_.emplace_back(line, line_no);
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
  }

  Module run() {
    while (index_ < lines_.size()) {
      Cursor c = cursor();
      if (c.try_eat("global")) {
        parse_global(c);
      } else {
        parse_function(c);
      }
    }
    return std::move(module_);
  }

private:
  Cursor cursor() const {
    const auto& [text, line_no] = lines_[index_];
    return Cursor(text, line_no);
  }

  void advance() { ++index_; }

  [[noreturn]] void fail_eof(const std::string& what) const {
    const int line = lines_.empty() ? 1 : lines_.back().second;
    throw CompileError(cat("IR: unexpected end of input: ", what), line, 1);
  }

  void parse_global(Cursor& c) {
    Global g;
    c.eat("@");
    g.name = c.ident();
    c.eat("[");
    const std::int64_t size = c.integer();
    if (size <= 0 || size > 0xffffffffll) {
      c.fail(cat("bad global size ", size));
    }
    g.size_words = static_cast<std::uint32_t>(size);
    c.eat("]");
    if (c.try_eat("=")) {
      c.eat("{");
      if (!c.try_eat("}")) {
        do {
          const std::int64_t v = c.integer();
          if (v < std::numeric_limits<std::int32_t>::min() ||
              v > std::numeric_limits<std::int32_t>::max()) {
            c.fail(cat("initialiser ", v, " does not fit in 32 bits"));
          }
          g.init_words.push_back(
              static_cast<std::uint32_t>(static_cast<std::int32_t>(v)));
        } while (c.try_eat(","));
        c.eat("}");
      }
    }
    if (!c.at_end()) c.fail("trailing characters after global");
    module_.globals.push_back(std::move(g));
    advance();
  }

  void parse_function(Cursor& c) {
    Function fn;
    if (c.try_eat("int")) {
      fn.returns_value = true;
    } else {
      c.eat("void");
    }
    fn.name = c.ident();
    c.eat("(");
    if (!c.try_eat(")")) {
      do {
        fn.params.push_back(c.vreg());
      } while (c.try_eat(","));
      c.eat(")");
    }
    c.eat("frame=");
    const std::int64_t frame = c.integer();
    if (frame < 0 || frame > 0xffffffffll) {
      c.fail(cat("bad frame size ", frame));
    }
    fn.frame_bytes = static_cast<std::uint32_t>(frame);
    c.eat("{");
    if (!c.at_end()) c.fail("trailing characters after function header");
    advance();

    while (true) {
      if (index_ >= lines_.size()) fail_eof("function body not closed");
      Cursor body = cursor();
      if (body.try_eat("}")) {
        if (!body.at_end()) body.fail("trailing characters after '}'");
        advance();
        break;
      }
      if (body.peek() == '.') {
        parse_block_header(body, fn);
        continue;
      }
      if (fn.blocks.empty()) {
        body.fail("instruction before the first block header");
      }
      fn.blocks.back().insts.push_back(parse_inst(body));
      if (!body.at_end()) body.fail("trailing characters after instruction");
      advance();
    }

    fn.next_vreg = max_vreg_of(fn) + 1;
    module_.functions.push_back(std::move(fn));
  }

  void parse_block_header(Cursor& c, Function& fn) {
    const int index = c.block_ref();
    if (index != static_cast<int>(fn.blocks.size())) {
      c.fail(cat("block header .b", index, " out of order (expected .b",
                 fn.blocks.size(), ")"));
    }
    BasicBlock block;
    if (c.try_eat("(")) {
      block.label = c.until(')');
      c.eat(")");
    }
    c.eat(":");
    if (!c.at_end()) c.fail("trailing characters after block header");
    fn.blocks.push_back(std::move(block));
    advance();
  }

  IrInst parse_inst(Cursor& c) {
    IrInst inst;
    if (c.try_eat("[")) {
      inst.guard_negate = c.try_eat("!");
      inst.guard = c.vreg();
      c.eat("]");
    }

    const std::string_view rest = c.rest();
    if (rest.starts_with("store.")) {
      inst.op = c.try_eat("store.w") ? IrOp::StoreW
                                     : (c.eat("store.b"), IrOp::StoreB);
      c.eat("[");
      inst.a = c.value();
      c.eat("+");
      inst.b = c.value();
      c.eat("]");
      c.eat("<-");
      inst.c = c.value();
      return inst;
    }
    if (rest.starts_with("out")) {
      c.eat("out");
      inst.op = IrOp::Out;
      inst.a = c.value();
      return inst;
    }
    if (rest.starts_with("br")) {
      c.eat("br");
      inst.op = IrOp::Br;
      inst.block_then = c.block_ref();
      return inst;
    }
    if (rest.starts_with("condbr")) {
      c.eat("condbr");
      inst.op = IrOp::CondBr;
      inst.a = c.value();
      c.eat("?");
      inst.block_then = c.block_ref();
      c.eat(":");
      inst.block_else = c.block_ref();
      return inst;
    }
    if (rest.starts_with("ret")) {
      c.eat("ret");
      inst.op = IrOp::Ret;
      if (!c.at_end()) inst.a = c.value();
      return inst;
    }
    if (rest.starts_with("call")) {
      parse_call(c, inst);
      return inst;
    }

    // Everything else is of the form `%dst = ...`.
    inst.dst = c.vreg();
    c.eat("=");
    const std::string_view rhs = c.rest();
    if (rhs.starts_with("load.")) {
      if (c.try_eat("load.w")) {
        inst.op = IrOp::LoadW;
      } else if (c.try_eat("load.bu")) {
        inst.op = IrOp::LoadBU;
      } else {
        c.eat("load.b");
        inst.op = IrOp::LoadB;
      }
      c.eat("[");
      inst.a = c.value();
      c.eat("+");
      inst.b = c.value();
      c.eat("]");
      return inst;
    }
    if (rhs.starts_with("gaddr")) {
      c.eat("gaddr");
      c.eat("@");
      inst.op = IrOp::GlobalAddr;
      inst.global_index = resolve_global(c, c.ident());
      return inst;
    }
    if (rhs.starts_with("faddr")) {
      c.eat("faddr");
      c.eat("+");
      inst.op = IrOp::FrameAddr;
      inst.a = c.value();
      return inst;
    }
    if (rhs.starts_with("call")) {
      parse_call(c, inst);
      return inst;
    }
    // Either `<op> a, b` (binary/compare) or a bare value (Mov).
    if (std::isalpha(static_cast<unsigned char>(rhs.empty() ? '\0'
                                                            : rhs[0])) != 0) {
      std::string name = c.ident();
      if (c.try_eat(".")) {
        name += '.';
        name += c.ident();
      }
      const auto it = binary_ops().find(name);
      if (it == binary_ops().end()) c.fail(cat("unknown IR op '", name, "'"));
      inst.op = it->second;
      inst.a = c.value();
      c.eat(",");
      inst.b = c.value();
      return inst;
    }
    inst.op = IrOp::Mov;
    inst.a = c.value();
    return inst;
  }

  void parse_call(Cursor& c, IrInst& inst) {
    c.eat("call");
    c.eat("@");
    inst.op = IrOp::Call;
    inst.callee = c.ident();
    c.eat("(");
    if (!c.try_eat(")")) {
      do {
        inst.args.push_back(c.value());
      } while (c.try_eat(","));
      c.eat(")");
    }
  }

  int resolve_global(Cursor& c, const std::string& name) {
    const int idx = module_.global_index(name);
    if (idx >= 0) return idx;
    // The standalone-instruction printer falls back to `g<N>` when no
    // module is at hand; accept that spelling too.
    std::int64_t n = 0;
    if (name.size() > 1 && name[0] == 'g' &&
        parse_int(std::string_view(name).substr(1), n) && n >= 0) {
      return static_cast<int>(n);
    }
    c.fail(cat("unknown global '@", name, "'"));
  }

  static VReg max_vreg_of(const Function& fn) {
    VReg m = 0;
    const auto see = [&m](VReg v) { m = std::max(m, v); };
    const auto see_value = [&see](const Value& v) {
      if (v.is_reg()) see(v.reg);
    };
    for (VReg p : fn.params) see(p);
    for (const BasicBlock& block : fn.blocks) {
      for (const IrInst& inst : block.insts) {
        see(inst.dst);
        see(inst.guard);
        see_value(inst.a);
        see_value(inst.b);
        see_value(inst.c);
        for (const Value& arg : inst.args) see_value(arg);
      }
    }
    return m;
  }

  std::vector<std::pair<std::string_view, int>> lines_;
  std::size_t index_ = 0;
  Module module_;
};

}  // namespace

Module parse_module(std::string_view text) {
  return ModuleParser(text).run();
}

}  // namespace cepic::ir
