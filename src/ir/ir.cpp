#include "ir/ir.hpp"

#include "core/program.hpp"

namespace cepic::ir {

bool is_terminator(IrOp op) {
  return op == IrOp::Br || op == IrOp::CondBr || op == IrOp::Ret;
}

bool is_cmp(IrOp op) {
  return op >= IrOp::CmpEq && op <= IrOp::CmpGeU;
}

bool is_load(IrOp op) {
  return op == IrOp::LoadW || op == IrOp::LoadB || op == IrOp::LoadBU;
}

bool is_store(IrOp op) {
  return op == IrOp::StoreW || op == IrOp::StoreB;
}

bool is_binary_alu(IrOp op) {
  return op >= IrOp::Add && op <= IrOp::Max;
}

bool has_dst(const IrInst& inst) {
  switch (inst.op) {
    case IrOp::StoreW:
    case IrOp::StoreB:
    case IrOp::Out:
    case IrOp::Br:
    case IrOp::CondBr:
    case IrOp::Ret:
      return false;
    case IrOp::Call:
      return inst.dst != kNoVReg;
    default:
      return true;
  }
}

bool has_side_effects(const IrInst& inst) {
  switch (inst.op) {
    case IrOp::StoreW:
    case IrOp::StoreB:
    case IrOp::Out:
    case IrOp::Call:  // conservatively: any call
    case IrOp::Br:
    case IrOp::CondBr:
    case IrOp::Ret:
      return true;
    default:
      return false;
  }
}

const char* ir_op_name(IrOp op) {
  switch (op) {
    case IrOp::Add: return "add";
    case IrOp::Sub: return "sub";
    case IrOp::Mul: return "mul";
    case IrOp::Div: return "div";
    case IrOp::Rem: return "rem";
    case IrOp::And: return "and";
    case IrOp::Or: return "or";
    case IrOp::Xor: return "xor";
    case IrOp::Shl: return "shl";
    case IrOp::Shra: return "shra";
    case IrOp::Shrl: return "shrl";
    case IrOp::Min: return "min";
    case IrOp::Max: return "max";
    case IrOp::Mov: return "mov";
    case IrOp::CmpEq: return "cmp.eq";
    case IrOp::CmpNe: return "cmp.ne";
    case IrOp::CmpLt: return "cmp.lt";
    case IrOp::CmpLe: return "cmp.le";
    case IrOp::CmpGt: return "cmp.gt";
    case IrOp::CmpGe: return "cmp.ge";
    case IrOp::CmpLtU: return "cmp.ltu";
    case IrOp::CmpLeU: return "cmp.leu";
    case IrOp::CmpGtU: return "cmp.gtu";
    case IrOp::CmpGeU: return "cmp.geu";
    case IrOp::LoadW: return "load.w";
    case IrOp::LoadB: return "load.b";
    case IrOp::LoadBU: return "load.bu";
    case IrOp::StoreW: return "store.w";
    case IrOp::StoreB: return "store.b";
    case IrOp::GlobalAddr: return "gaddr";
    case IrOp::FrameAddr: return "faddr";
    case IrOp::Call: return "call";
    case IrOp::Out: return "out";
    case IrOp::Br: return "br";
    case IrOp::CondBr: return "condbr";
    case IrOp::Ret: return "ret";
  }
  return "?";
}

Function* Module::find_function(std::string_view name) {
  for (Function& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const Function* Module::find_function(std::string_view name) const {
  for (const Function& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

int Module::global_index(std::string_view name) const {
  for (std::size_t i = 0; i < globals.size(); ++i) {
    if (globals[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

DataLayout layout_globals(const Module& module) {
  DataLayout layout;
  std::uint32_t addr = kDataBase;
  for (const Global& g : module.globals) {
    layout.global_addr.push_back(addr);
    addr += g.size_words * 4;
  }
  layout.image.assign(addr - kDataBase, 0);
  for (std::size_t gi = 0; gi < module.globals.size(); ++gi) {
    const Global& g = module.globals[gi];
    CEPIC_CHECK(g.init_words.size() <= g.size_words,
                "global initialiser larger than global");
    std::uint32_t offset = layout.global_addr[gi] - kDataBase;
    for (std::uint32_t w : g.init_words) {
      // Big-endian, matching DataMemory.
      layout.image[offset] = static_cast<std::uint8_t>(w >> 24);
      layout.image[offset + 1] = static_cast<std::uint8_t>(w >> 16);
      layout.image[offset + 2] = static_cast<std::uint8_t>(w >> 8);
      layout.image[offset + 3] = static_cast<std::uint8_t>(w);
      offset += 4;
    }
  }
  return layout;
}

}  // namespace cepic::ir
