// Parser for the IR's textual form — the exact inverse of the printers
// in print.cpp, so `parse_module(to_string(m))` reproduces `m` (up to
// next_vreg, which the text does not carry and is reconstructed as
// max-used-vreg + 1) and `to_string(parse_module(text)) == text` for
// printer-produced text. This is what lets the pipeline store treat
// textual and binary IR artifacts as the same value.
#pragma once

#include <string_view>

#include "ir/ir.hpp"

namespace cepic::ir {

/// Parse a printed Module. Throws CompileError with a line number on
/// malformed input.
Module parse_module(std::string_view text);

}  // namespace cepic::ir
