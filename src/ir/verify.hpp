// Structural verifier for the IR, run after the frontend and after every
// optimisation pass in debug flows. Throws cepic::InternalError with a
// location string on the first violation.
#pragma once

#include "ir/ir.hpp"

namespace cepic::ir {

/// Check one function: every block ends with exactly one terminator,
/// branch targets exist, vregs are in range, operand shapes match the
/// opcode, guards are registers, call targets resolve (when `module`
/// given) and argument counts match.
void verify_function(const Function& fn, const Module* module = nullptr);

/// Verify all functions plus module-level rules (unique names, a `main`
/// if `require_main`).
void verify_module(const Module& module, bool require_main = false);

}  // namespace cepic::ir
