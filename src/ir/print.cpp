#include "ir/ir.hpp"
#include "support/text.hpp"

namespace cepic::ir {

namespace {

std::string value_str(const Value& v) {
  if (v.is_reg()) return cat('%', v.reg);
  if (v.is_imm()) return cat(v.imm);
  return "_";
}

}  // namespace

std::string to_string(const IrInst& inst, const Module* module) {
  std::string s;
  if (inst.guard != kNoVReg) {
    s += cat('[', inst.guard_negate ? "!%" : "%", inst.guard, "] ");
  }
  switch (inst.op) {
    case IrOp::StoreW:
    case IrOp::StoreB:
      s += cat(ir_op_name(inst.op), " [", value_str(inst.a), " + ",
               value_str(inst.b), "] <- ", value_str(inst.c));
      return s;
    case IrOp::LoadW:
    case IrOp::LoadB:
    case IrOp::LoadBU:
      s += cat('%', inst.dst, " = ", ir_op_name(inst.op), " [",
               value_str(inst.a), " + ", value_str(inst.b), "]");
      return s;
    case IrOp::GlobalAddr: {
      std::string name = cat("g", inst.global_index);
      if (module != nullptr && inst.global_index >= 0 &&
          inst.global_index < static_cast<int>(module->globals.size())) {
        name = module->globals[inst.global_index].name;
      }
      s += cat('%', inst.dst, " = gaddr @", name);
      return s;
    }
    case IrOp::FrameAddr:
      s += cat('%', inst.dst, " = faddr +", value_str(inst.a));
      return s;
    case IrOp::Call: {
      if (inst.dst != kNoVReg) s += cat('%', inst.dst, " = ");
      s += cat("call @", inst.callee, "(");
      for (std::size_t i = 0; i < inst.args.size(); ++i) {
        if (i) s += ", ";
        s += value_str(inst.args[i]);
      }
      s += ")";
      return s;
    }
    case IrOp::Out:
      s += cat("out ", value_str(inst.a));
      return s;
    case IrOp::Br:
      s += cat("br .b", inst.block_then);
      return s;
    case IrOp::CondBr:
      s += cat("condbr ", value_str(inst.a), " ? .b", inst.block_then,
               " : .b", inst.block_else);
      return s;
    case IrOp::Ret:
      s += inst.a.is_none() ? "ret" : cat("ret ", value_str(inst.a));
      return s;
    case IrOp::Mov:
      s += cat('%', inst.dst, " = ", value_str(inst.a));
      return s;
    default:
      s += cat('%', inst.dst, " = ", ir_op_name(inst.op), " ",
               value_str(inst.a), ", ", value_str(inst.b));
      return s;
  }
}

std::string to_string(const Function& fn, const Module* module) {
  std::string s = cat(fn.returns_value ? "int " : "void ", fn.name, "(");
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i) s += ", ";
    s += cat('%', fn.params[i]);
  }
  s += cat(") frame=", fn.frame_bytes, " {\n");
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    const BasicBlock& block = fn.blocks[bi];
    s += cat(".b", bi);
    if (!block.label.empty()) s += cat(" (", block.label, ")");
    s += ":\n";
    for (const IrInst& inst : block.insts) {
      s += cat("  ", to_string(inst, module), "\n");
    }
  }
  s += "}\n";
  return s;
}

std::string to_string(const Module& module) {
  std::string s;
  for (std::size_t gi = 0; gi < module.globals.size(); ++gi) {
    const Global& g = module.globals[gi];
    s += cat("global @", g.name, "[", g.size_words, "]");
    if (!g.init_words.empty()) {
      s += " = {";
      for (std::size_t i = 0; i < g.init_words.size(); ++i) {
        if (i) s += ", ";
        s += cat(static_cast<std::int32_t>(g.init_words[i]));
      }
      s += "}";
    }
    s += "\n";
  }
  for (const Function& fn : module.functions) {
    s += to_string(fn, &module);
  }
  return s;
}

}  // namespace cepic::ir
