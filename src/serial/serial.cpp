#include "serial/serial.hpp"

#include <map>
#include <string>
#include <utility>

#include "core/encoding.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::serial {

namespace {

// Interns strings in first-use order; index 0 is always "". Because the
// encoders walk their structures in a fixed order, the resulting table —
// and with it the whole container — is canonical.
class StringInterner {
public:
  StringInterner() { list_.emplace_back(); }

  std::uint32_t intern(const std::string& s) {
    const auto [it, inserted] =
        index_.try_emplace(s, static_cast<std::uint32_t>(list_.size()));
    if (inserted) list_.push_back(s);
    return it->second;
  }

  std::vector<std::uint8_t> section() const {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(list_.size()));
    for (const std::string& s : list_) {
      w.u32(static_cast<std::uint32_t>(s.size()));
      w.raw(std::string_view(s));
    }
    return w.take();
  }

private:
  std::vector<std::string> list_;
  std::map<std::string, std::uint32_t> index_;
};

// The decoded string table, with bounds-checked lookup.
class StringTable {
public:
  explicit StringTable(ByteReader r) {
    const std::uint32_t n = r.u32();
    list_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t len = r.u32();
      const auto bytes = r.raw(len);
      list_.emplace_back(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
    }
    r.expect_done();
    if (list_.empty() || !list_[0].empty()) {
      throw Error("corrupt CEPX container: string table lacks the empty "
                  "string at index 0");
    }
  }

  const std::string& at(std::uint32_t idx) const {
    if (idx >= list_.size()) {
      throw Error(cat("corrupt CEPX container: string index ", idx,
                      " out of range (table has ", list_.size(),
                      " entries)"));
    }
    return list_[idx];
  }

private:
  std::vector<std::string> list_;
};

// Interned operand constants (the Module codec's CPOL section).
class ConstInterner {
public:
  std::uint32_t intern(std::int32_t v) {
    const auto [it, inserted] =
        index_.try_emplace(v, static_cast<std::uint32_t>(list_.size()));
    if (inserted) list_.push_back(v);
    return it->second;
  }

  std::vector<std::uint8_t> section() const {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(list_.size()));
    for (std::int32_t v : list_) w.i32(v);
    return w.take();
  }

private:
  std::vector<std::int32_t> list_;
  std::map<std::int32_t, std::uint32_t> index_;
};

class ConstPool {
public:
  explicit ConstPool(ByteReader r) {
    const std::uint32_t n = r.u32();
    list_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) list_.push_back(r.i32());
    r.expect_done();
  }

  std::int32_t at(std::uint32_t idx) const {
    if (idx >= list_.size()) {
      throw Error(cat("corrupt CEPX container: constant-pool index ", idx,
                      " out of range (pool has ", list_.size(),
                      " entries)"));
    }
    return list_[idx];
  }

private:
  std::vector<std::int32_t> list_;
};

// --- Module codec -----------------------------------------------------
//
// Each instruction is a fixed 40-byte record followed by argc variable
// call-argument pairs:
//   u8  op
//   u8  flags: bit 0 guard_negate, bits 2-3/4-5/6-7 kinds of a/b/c
//   u16 argc
//   u32 dst, u32 guard
//   u32 payload(a), payload(b), payload(c)   (reg | const-pool index | 0)
//   i32 global_index
//   u32 callee string index
//   i32 block_then, i32 block_else
//   argc x { u32 kind, u32 payload }

std::uint32_t value_payload(const ir::Value& v, ConstInterner& consts) {
  switch (v.kind) {
    case ir::Value::Kind::None: return 0;
    case ir::Value::Kind::Reg: return v.reg;
    case ir::Value::Kind::Imm: return consts.intern(v.imm);
  }
  return 0;
}

ir::Value make_value(std::uint32_t kind, std::uint32_t payload,
                     const ConstPool& consts) {
  switch (kind) {
    case 0:
      if (payload != 0) {
        throw Error("corrupt CEPX container: none-operand with a payload");
      }
      return ir::Value::none();
    case 1: return ir::Value::r(payload);
    case 2: return ir::Value::i(consts.at(payload));
    default:
      throw Error(cat("corrupt CEPX container: unknown operand kind ",
                      kind));
  }
}

void encode_inst(ByteWriter& w, const ir::IrInst& inst,
                 StringInterner& strings, ConstInterner& consts) {
  const auto kind2 = [](const ir::Value& v) {
    return static_cast<std::uint8_t>(v.kind);
  };
  const std::uint8_t flags = static_cast<std::uint8_t>(
      (inst.guard_negate ? 1u : 0u) | (kind2(inst.a) << 2) |
      (kind2(inst.b) << 4) | (kind2(inst.c) << 6));
  w.u8(static_cast<std::uint8_t>(inst.op));
  w.u8(flags);
  w.u16(static_cast<std::uint16_t>(inst.args.size()));
  w.u32(inst.dst);
  w.u32(inst.guard);
  w.u32(value_payload(inst.a, consts));
  w.u32(value_payload(inst.b, consts));
  w.u32(value_payload(inst.c, consts));
  w.i32(inst.global_index);
  w.u32(strings.intern(inst.callee));
  w.i32(inst.block_then);
  w.i32(inst.block_else);
  for (const ir::Value& arg : inst.args) {
    w.u32(kind2(arg));
    w.u32(value_payload(arg, consts));
  }
}

ir::IrInst decode_inst(ByteReader& r, const StringTable& strings,
                       const ConstPool& consts, int num_globals,
                       int num_blocks) {
  ir::IrInst inst;
  const std::uint8_t op = r.u8();
  if (op > static_cast<std::uint8_t>(ir::IrOp::Ret)) {
    throw Error(cat("corrupt CEPX container: unknown IR opcode ", int{op}));
  }
  inst.op = static_cast<ir::IrOp>(op);
  const std::uint8_t flags = r.u8();
  inst.guard_negate = (flags & 1) != 0;
  const std::uint16_t argc = r.u16();
  inst.dst = r.u32();
  inst.guard = r.u32();
  const std::uint32_t pa = r.u32();
  const std::uint32_t pb = r.u32();
  const std::uint32_t pc = r.u32();
  inst.a = make_value((flags >> 2) & 3, pa, consts);
  inst.b = make_value((flags >> 4) & 3, pb, consts);
  inst.c = make_value((flags >> 6) & 3, pc, consts);
  inst.global_index = r.i32();
  inst.callee = strings.at(r.u32());
  inst.block_then = r.i32();
  inst.block_else = r.i32();
  if (inst.global_index < -1 || inst.global_index >= num_globals) {
    throw Error(cat("corrupt CEPX container: global index ",
                    inst.global_index, " out of range"));
  }
  const auto check_block = [&](int b) {
    if (b < -1 || b >= num_blocks) {
      throw Error(cat("corrupt CEPX container: block index ", b,
                      " out of range (function has ", num_blocks,
                      " blocks)"));
    }
  };
  check_block(inst.block_then);
  check_block(inst.block_else);
  inst.args.reserve(argc);
  for (std::uint16_t i = 0; i < argc; ++i) {
    const std::uint32_t kind = r.u32();
    const std::uint32_t payload = r.u32();
    inst.args.push_back(make_value(kind, payload, consts));
  }
  return inst;
}

std::vector<std::uint8_t> encode_conf(const ProcessorConfig& c,
                                      StringInterner& strings) {
  ByteWriter w;
  w.u32(c.num_alus);
  w.u32(c.num_gprs);
  w.u32(c.num_preds);
  w.u32(c.num_btrs);
  w.u32(c.issue_width);
  w.u32(c.datapath_width);
  w.u32(c.max_regs_per_instr);
  w.u32(c.reg_port_budget);
  w.u32(c.load_latency);
  w.u32(c.pipeline_stages);
  w.u8(c.forwarding ? 1 : 0);
  w.u8(c.unified_memory_contention ? 1 : 0);
  w.u8(c.alu.has_mul ? 1 : 0);
  w.u8(c.alu.has_div ? 1 : 0);
  w.u8(c.alu.has_shift ? 1 : 0);
  w.u8(c.alu.has_minmax ? 1 : 0);
  w.u16(0);  // pad to 4-byte multiple
  w.u32(static_cast<std::uint32_t>(c.custom_ops.size()));
  for (const std::string& op : c.custom_ops) w.u32(strings.intern(op));
  return w.take();
}

ProcessorConfig decode_conf(ByteReader r, const StringTable& strings) {
  const auto flag = [](std::uint8_t v) {
    if (v > 1) {
      throw Error(cat("corrupt CEPX container: boolean field holds ",
                      int{v}));
    }
    return v != 0;
  };
  ProcessorConfig c;
  c.num_alus = r.u32();
  c.num_gprs = r.u32();
  c.num_preds = r.u32();
  c.num_btrs = r.u32();
  c.issue_width = r.u32();
  c.datapath_width = r.u32();
  c.max_regs_per_instr = r.u32();
  c.reg_port_budget = r.u32();
  c.load_latency = r.u32();
  c.pipeline_stages = r.u32();
  c.forwarding = flag(r.u8());
  c.unified_memory_contention = flag(r.u8());
  c.alu.has_mul = flag(r.u8());
  c.alu.has_div = flag(r.u8());
  c.alu.has_shift = flag(r.u8());
  c.alu.has_minmax = flag(r.u8());
  if (r.u16() != 0) {
    throw Error("corrupt CEPX container: CONF padding is non-zero");
  }
  const std::uint32_t n_custom = r.u32();
  c.custom_ops.clear();
  c.custom_ops.reserve(n_custom);
  for (std::uint32_t i = 0; i < n_custom; ++i) {
    c.custom_ops.push_back(strings.at(r.u32()));
  }
  r.expect_done();
  return c;
}

}  // namespace

std::vector<std::uint8_t> encode_module(const ir::Module& module) {
  StringInterner strings;
  ConstInterner consts;

  ByteWriter glob;
  glob.u32(static_cast<std::uint32_t>(module.globals.size()));
  for (const ir::Global& g : module.globals) {
    glob.u32(strings.intern(g.name));
    glob.u32(g.size_words);
    glob.u32(static_cast<std::uint32_t>(g.init_words.size()));
    for (std::uint32_t word : g.init_words) glob.u32(word);
  }

  ByteWriter func;
  func.u32(static_cast<std::uint32_t>(module.functions.size()));
  for (const ir::Function& fn : module.functions) {
    func.u32(strings.intern(fn.name));
    func.u8(fn.returns_value ? 1 : 0);
    func.u32(fn.frame_bytes);
    func.u32(fn.next_vreg);
    func.u32(static_cast<std::uint32_t>(fn.params.size()));
    for (ir::VReg p : fn.params) func.u32(p);
    func.u32(static_cast<std::uint32_t>(fn.blocks.size()));
    for (const ir::BasicBlock& block : fn.blocks) {
      func.u32(strings.intern(block.label));
      func.u32(static_cast<std::uint32_t>(block.insts.size()));
      for (const ir::IrInst& inst : block.insts) {
        encode_inst(func, inst, strings, consts);
      }
    }
  }

  ContainerWriter out;
  out.add_section(kSecStrings, strings.section());
  out.add_section(kSecConstPool, consts.section());
  out.add_section(kSecGlobals, std::move(glob));
  out.add_section(kSecFunctions, std::move(func));
  return out.finish(PayloadKind::kModule);
}

ir::Module decode_module(std::span<const std::uint8_t> bytes) {
  const ContainerReader container(bytes);
  if (container.kind() != PayloadKind::kModule) {
    throw Error(cat("CEPX container carries a ",
                    to_string(container.kind()),
                    ", expected an IR module"));
  }
  const StringTable strings(container.section(kSecStrings));
  const ConstPool consts(container.section(kSecConstPool));

  ir::Module module;

  ByteReader glob = container.section(kSecGlobals);
  const std::uint32_t n_globals = glob.u32();
  module.globals.reserve(n_globals);
  for (std::uint32_t i = 0; i < n_globals; ++i) {
    ir::Global g;
    g.name = strings.at(glob.u32());
    g.size_words = glob.u32();
    const std::uint32_t n_init = glob.u32();
    g.init_words.reserve(n_init);
    for (std::uint32_t j = 0; j < n_init; ++j) g.init_words.push_back(glob.u32());
    module.globals.push_back(std::move(g));
  }
  glob.expect_done();

  ByteReader func = container.section(kSecFunctions);
  const std::uint32_t n_functions = func.u32();
  module.functions.reserve(n_functions);
  for (std::uint32_t i = 0; i < n_functions; ++i) {
    ir::Function fn;
    fn.name = strings.at(func.u32());
    fn.returns_value = func.u8() != 0;
    fn.frame_bytes = func.u32();
    fn.next_vreg = func.u32();
    const std::uint32_t n_params = func.u32();
    fn.params.reserve(n_params);
    for (std::uint32_t j = 0; j < n_params; ++j) fn.params.push_back(func.u32());
    const std::uint32_t n_blocks = func.u32();
    fn.blocks.reserve(n_blocks);
    for (std::uint32_t j = 0; j < n_blocks; ++j) {
      ir::BasicBlock block;
      block.label = strings.at(func.u32());
      const std::uint32_t n_insts = func.u32();
      block.insts.reserve(n_insts);
      for (std::uint32_t k = 0; k < n_insts; ++k) {
        block.insts.push_back(decode_inst(func, strings, consts,
                                          static_cast<int>(n_globals),
                                          static_cast<int>(n_blocks)));
      }
      fn.blocks.push_back(std::move(block));
    }
    module.functions.push_back(std::move(fn));
  }
  func.expect_done();
  return module;
}

std::vector<std::uint8_t> encode_program(const Program& program) {
  StringInterner strings;

  const std::vector<std::uint8_t> conf = encode_conf(program.config, strings);

  ByteWriter code;
  const std::vector<std::uint64_t> words = program.encode_code();
  code.u32(static_cast<std::uint32_t>(words.size()));
  for (std::uint64_t word : words) code.u64(word);

  ByteWriter data;
  data.raw(std::span<const std::uint8_t>(program.data));

  ByteWriter syms;
  syms.u32(static_cast<std::uint32_t>(program.code_symbols.size()));
  for (const auto& [name, addr] : program.code_symbols) {
    syms.u32(strings.intern(name));
    syms.u32(addr);
  }
  syms.u32(static_cast<std::uint32_t>(program.data_symbols.size()));
  for (const auto& [name, addr] : program.data_symbols) {
    syms.u32(strings.intern(name));
    syms.u32(addr);
  }

  ByteWriter meta;
  meta.u32(program.entry_bundle);

  ContainerWriter out;
  out.add_section(kSecStrings, strings.section());
  out.add_section(kSecConfig, conf);
  out.add_section(kSecCode, std::move(code));
  out.add_section(kSecData, std::move(data));
  out.add_section(kSecSymbols, std::move(syms));
  out.add_section(kSecMeta, std::move(meta));
  return out.finish(PayloadKind::kProgram);
}

Program decode_program(std::span<const std::uint8_t> bytes) {
  const ContainerReader container(bytes);
  if (container.kind() != PayloadKind::kProgram) {
    throw Error(cat("CEPX container carries a ",
                    to_string(container.kind()), ", expected a program"));
  }
  const StringTable strings(container.section(kSecStrings));

  Program p;
  p.config = decode_conf(container.section(kSecConfig), strings);
  p.config.validate();

  ByteReader code = container.section(kSecCode);
  const std::uint32_t n_code = code.u32();
  p.code.reserve(n_code);
  for (std::uint32_t i = 0; i < n_code; ++i) {
    p.code.push_back(decode_instruction(code.u64(), p.config));
  }
  code.expect_done();
  if (p.config.issue_width == 0 ||
      p.code.size() % p.config.issue_width != 0) {
    throw Error("corrupt CEPX container: code is not a whole number of "
                "bundles");
  }

  ByteReader data = container.section(kSecData);
  const auto raw = data.raw(data.remaining());
  p.data.assign(raw.begin(), raw.end());

  ByteReader syms = container.section(kSecSymbols);
  const std::uint32_t n_csym = syms.u32();
  for (std::uint32_t i = 0; i < n_csym; ++i) {
    const std::string& name = strings.at(syms.u32());
    p.code_symbols[name] = syms.u32();
  }
  const std::uint32_t n_dsym = syms.u32();
  for (std::uint32_t i = 0; i < n_dsym; ++i) {
    const std::string& name = strings.at(syms.u32());
    p.data_symbols[name] = syms.u32();
  }
  syms.expect_done();

  ByteReader meta = container.section(kSecMeta);
  p.entry_bundle = meta.u32();
  meta.expect_done();
  return p;
}

std::vector<std::uint8_t> encode_config(const ProcessorConfig& config) {
  StringInterner strings;
  const std::vector<std::uint8_t> conf = encode_conf(config, strings);
  ContainerWriter out;
  out.add_section(kSecStrings, strings.section());
  out.add_section(kSecConfig, conf);
  return out.finish(PayloadKind::kConfig);
}

ProcessorConfig decode_config(std::span<const std::uint8_t> bytes) {
  const ContainerReader container(bytes);
  if (container.kind() != PayloadKind::kConfig) {
    throw Error(cat("CEPX container carries a ",
                    to_string(container.kind()),
                    ", expected a processor configuration"));
  }
  const StringTable strings(container.section(kSecStrings));
  ProcessorConfig c = decode_conf(container.section(kSecConfig), strings);
  c.validate();
  return c;
}

}  // namespace cepic::serial
