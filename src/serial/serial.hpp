// Payload codecs for the three CEPX store granularities (docs/FORMAT.md):
// packed ir::Module, assembled Program, and ProcessorConfig. Each codec
// produces a canonical encoding — encoding the decoded value again yields
// bit-identical bytes — which is what lets the pipeline store compare and
// dedup artifacts by digest alone.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/program.hpp"
#include "ir/ir.hpp"
#include "serial/cepx.hpp"

namespace cepic::serial {

/// Packed Module: STRT (interned strings) + CPOL (interned operand
/// constants) + GLOB + FUNC (fixed 40-byte instruction records,
/// firesnes-style). Round-trips exactly: decode(encode(m)) == m.
std::vector<std::uint8_t> encode_module(const ir::Module& module);
ir::Module decode_module(std::span<const std::uint8_t> bytes);

/// Assembled Program: STRT + CONF (packed config) + CODE (encoded
/// instruction words) + DATA + SYMS + META.
std::vector<std::uint8_t> encode_program(const Program& program);
Program decode_program(std::span<const std::uint8_t> bytes);

/// Standalone processor configuration (the Mdes source of truth):
/// STRT + CONF.
std::vector<std::uint8_t> encode_config(const ProcessorConfig& config);
ProcessorConfig decode_config(std::span<const std::uint8_t> bytes);

}  // namespace cepic::serial
