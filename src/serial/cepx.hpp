// The CEPX binary container (docs/FORMAT.md): the on-disk/in-store
// envelope every binary toolchain artifact travels in — packed IR
// Modules, assembled Programs, and processor configurations.
//
// Layout (all fixed-width fields big-endian, matching the paper's
// big-endian architecture):
//
//   header  (32 bytes)
//     u32  magic          "CEPX"
//     u16  container version (kContainerVersion)
//     u16  payload kind   (PayloadKind)
//     u32  section count
//     u32  reserved       (0)
//     u64  payload digest (FNV-1a over everything after the table)
//     u64  total container size in bytes
//   section table (16 bytes per section, immediately after the header)
//     u32  section id     (four ASCII characters, e.g. "CODE")
//     u32  reserved       (0)
//     u32  byte offset from container start (8-aligned)
//     u32  byte size      (unpadded)
//   payload sections, each zero-padded to 8-byte alignment
//
// The layout is deliberately mmap-friendly: the table stores offsets —
// never pointers — every section starts 8-aligned, and a reader can
// address any section from the table without touching the others.
// Integrity is layered so diagnostics stay precise: magic, then
// container version, then the declared total size (truncation), then
// table/section bounds, then the payload digest (corruption).
//
// Containers written by the pre-PR7 toolchain ("CEPX v1", a bare
// streamed Program with no section table) are detected and rejected
// with an explicit re-produce-the-artifact message rather than a
// generic parse failure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cepic::serial {

inline constexpr std::uint32_t kMagic = 0x43455058;  // "CEPX"
inline constexpr std::uint16_t kContainerVersion = 2;
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kSectionDescBytes = 16;
inline constexpr std::size_t kSectionAlign = 8;

/// What a container carries. The numeric values are the on-disk
/// encoding and must never be reused.
enum class PayloadKind : std::uint16_t {
  kModule = 1,   ///< packed ir::Module
  kProgram = 2,  ///< assembled Program
  kConfig = 3,   ///< ProcessorConfig (the Mdes source of truth)
};

const char* to_string(PayloadKind kind);

/// Four-ASCII-character section id, e.g. section_id("CODE").
constexpr std::uint32_t section_id(const char (&name)[5]) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(name[0]))
          << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(name[1]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(name[2]))
          << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(name[3]));
}

// Section ids shared by the payload codecs (serial.hpp).
inline constexpr std::uint32_t kSecStrings = section_id("STRT");
inline constexpr std::uint32_t kSecConstPool = section_id("CPOL");
inline constexpr std::uint32_t kSecGlobals = section_id("GLOB");
inline constexpr std::uint32_t kSecFunctions = section_id("FUNC");
inline constexpr std::uint32_t kSecConfig = section_id("CONF");
inline constexpr std::uint32_t kSecCode = section_id("CODE");
inline constexpr std::uint32_t kSecData = section_id("DATA");
inline constexpr std::uint32_t kSecSymbols = section_id("SYMS");
inline constexpr std::uint32_t kSecMeta = section_id("META");

/// Big-endian byte writer for section payloads.
class ByteWriter {
public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }
  void u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void raw(std::span<const std::uint8_t> bytes) {
    bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  }
  void raw(std::string_view bytes) {
    bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  }
  std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked big-endian reader over one section's bytes. Every
/// overrun throws Error naming the section, so a corrupt container can
/// never read out of bounds (the fuzz-decode suites rely on this).
class ByteReader {
public:
  ByteReader(std::span<const std::uint8_t> bytes, std::string where)
      : bytes_(bytes), where_(std::move(where)) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::span<const std::uint8_t> raw(std::size_t n);
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }
  /// Throw unless the section was consumed exactly.
  void expect_done() const;

private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::string where_;
  std::size_t pos_ = 0;
};

/// Assembles a container: append sections in payload order, then
/// finish() lays out the table, pads every section to 8 bytes and
/// computes the payload digest. Section order is part of the canonical
/// encoding — identical inputs always produce identical bytes.
class ContainerWriter {
public:
  void add_section(std::uint32_t id, std::vector<std::uint8_t> bytes);
  void add_section(std::uint32_t id, ByteWriter&& w) {
    add_section(id, w.take());
  }
  std::vector<std::uint8_t> finish(PayloadKind kind);

private:
  struct Section {
    std::uint32_t id;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Section> sections_;
};

/// Validates and indexes a container. Construction performs the full
/// integrity check (magic, version, size, table bounds, alignment,
/// digest); section() hands out payload spans.
class ContainerReader {
public:
  explicit ContainerReader(std::span<const std::uint8_t> bytes);

  PayloadKind kind() const { return kind_; }

  /// The payload of section `id`; throws Error if absent.
  ByteReader section(std::uint32_t id) const;
  bool has_section(std::uint32_t id) const;

private:
  struct Entry {
    std::uint32_t id;
    std::uint32_t offset;
    std::uint32_t size;
  };
  std::span<const std::uint8_t> bytes_;
  std::vector<Entry> entries_;
  PayloadKind kind_;
};

/// Cheap sniff: does this look like a CEPX container at all (magic
/// present)? Never throws; used by the tools to classify inputs.
bool looks_like_cepx(std::span<const std::uint8_t> bytes);

/// Header-level detection of what a container carries. Validates
/// magic, container version and the declared size, so truncated or
/// foreign files fail here with a precise diagnostic; full payload
/// validation (digest, sections) happens at decode.
PayloadKind detect_kind(std::span<const std::uint8_t> bytes);

}  // namespace cepic::serial
