#include "serial/cepx.hpp"

#include "support/bits.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::serial {

namespace {

std::uint16_t read_u16(std::span<const std::uint8_t> b, std::size_t at) {
  return static_cast<std::uint16_t>((b[at] << 8) | b[at + 1]);
}

std::uint32_t read_u32(std::span<const std::uint8_t> b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | b[at + i];
  return v;
}

std::uint64_t read_u64(std::span<const std::uint8_t> b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[at + i];
  return v;
}

std::uint64_t digest_of(std::span<const std::uint8_t> payload) {
  std::uint64_t h = kFnvOffset64;
  for (std::uint8_t b : payload) h = fnv1a64_byte(h, b);
  return h;
}

std::string id_name(std::uint32_t id) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>(id >> (24 - 8 * i));
    s[static_cast<std::size_t>(i)] = (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return s;
}

}  // namespace

const char* to_string(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kModule: return "IR module";
    case PayloadKind::kProgram: return "program";
    case PayloadKind::kConfig: return "processor configuration";
  }
  return "unknown";
}

// --- ByteReader -------------------------------------------------------

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw Error(cat("corrupt CEPX container: ", where_,
                    " section ends mid-record (wanted ", n, " byte(s) at ",
                    pos_, " of ", bytes_.size(), ")"));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v = read_u16(bytes_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  const std::uint32_t v = read_u32(bytes_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  const std::uint64_t v = read_u64(bytes_, pos_);
  pos_ += 8;
  return v;
}

std::span<const std::uint8_t> ByteReader::raw(std::size_t n) {
  need(n);
  const auto s = bytes_.subspan(pos_, n);
  pos_ += n;
  return s;
}

void ByteReader::expect_done() const {
  if (pos_ != bytes_.size()) {
    throw Error(cat("corrupt CEPX container: ", where_, " section has ",
                    bytes_.size() - pos_, " unconsumed byte(s)"));
  }
}

// --- ContainerWriter --------------------------------------------------

void ContainerWriter::add_section(std::uint32_t id,
                                  std::vector<std::uint8_t> bytes) {
  sections_.push_back(Section{id, std::move(bytes)});
}

std::vector<std::uint8_t> ContainerWriter::finish(PayloadKind kind) {
  const std::size_t table_bytes = sections_.size() * kSectionDescBytes;
  // kHeaderBytes and kSectionDescBytes are both multiples of the
  // alignment, so the first section lands aligned automatically.
  static_assert(kHeaderBytes % kSectionAlign == 0);
  static_assert(kSectionDescBytes % kSectionAlign == 0);
  const std::size_t payload_start = kHeaderBytes + table_bytes;

  ByteWriter payload;
  std::vector<std::uint32_t> offsets;
  offsets.reserve(sections_.size());
  for (const Section& s : sections_) {
    offsets.push_back(static_cast<std::uint32_t>(payload_start +
                                                 payload.size()));
    payload.raw(std::span<const std::uint8_t>(s.bytes));
    while ((payload_start + payload.size()) % kSectionAlign != 0) {
      payload.u8(0);
    }
  }
  const std::vector<std::uint8_t> payload_bytes = payload.take();

  ByteWriter out;
  out.u32(kMagic);
  out.u16(kContainerVersion);
  out.u16(static_cast<std::uint16_t>(kind));
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  out.u32(0);  // reserved
  out.u64(digest_of(payload_bytes));
  out.u64(payload_start + payload_bytes.size());
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    out.u32(sections_[i].id);
    out.u32(0);  // reserved
    out.u32(offsets[i]);
    out.u32(static_cast<std::uint32_t>(sections_[i].bytes.size()));
  }
  out.raw(std::span<const std::uint8_t>(payload_bytes));
  return out.take();
}

// --- ContainerReader --------------------------------------------------

ContainerReader::ContainerReader(std::span<const std::uint8_t> bytes)
    : bytes_(bytes) {
  // Magic and version first, so the diagnostics distinguish "not ours"
  // from "ours but damaged".
  if (bytes.size() < 8) {
    throw Error(cat("not a CEPX container: only ", bytes.size(),
                    " byte(s), too small for a header"));
  }
  if (read_u32(bytes, 0) != kMagic) {
    throw Error("not a CEPX container (bad magic)");
  }
  const std::uint16_t version = read_u16(bytes, 4);
  if (version == 0) {
    // The pre-PR7 streamed format stored a u32 version of 1 here, which
    // reads as u16 0 at this offset. Name it rather than guessing.
    throw Error(
        "unsupported CEPX container: written by a pre-PR7 toolchain "
        "(v1 streamed format); re-produce the artifact with this build");
  }
  if (version != kContainerVersion) {
    throw Error(cat("unsupported CEPX container version ", version,
                    " (this toolchain reads version ", kContainerVersion,
                    ")"));
  }
  if (bytes.size() < kHeaderBytes) {
    throw Error(cat("CEPX container truncated: ", bytes.size(),
                    " byte(s) is smaller than the ", kHeaderBytes,
                    "-byte header"));
  }
  const std::uint16_t kind = read_u16(bytes, 6);
  if (kind < 1 || kind > 3) {
    throw Error(cat("corrupt CEPX container: unknown payload kind ", kind));
  }
  kind_ = static_cast<PayloadKind>(kind);

  const std::uint64_t declared = read_u64(bytes, 24);
  if (bytes.size() < declared) {
    throw Error(cat("CEPX container truncated: header declares ", declared,
                    " bytes, got ", bytes.size()));
  }
  if (bytes.size() > declared) {
    throw Error(cat("trailing bytes after CEPX container (declares ",
                    declared, " bytes, got ", bytes.size(), ")"));
  }

  const std::uint32_t count = read_u32(bytes, 8);
  const std::size_t payload_start =
      kHeaderBytes + std::size_t{count} * kSectionDescBytes;
  if (payload_start > bytes.size()) {
    throw Error(cat("corrupt CEPX container: section table (", count,
                    " entries) exceeds the container"));
  }
  entries_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = kHeaderBytes + i * kSectionDescBytes;
    Entry e;
    e.id = read_u32(bytes_, at);
    e.offset = read_u32(bytes_, at + 8);
    e.size = read_u32(bytes_, at + 12);
    if (e.offset % kSectionAlign != 0) {
      throw Error(cat("corrupt CEPX container: section ", id_name(e.id),
                      " is misaligned (offset ", e.offset, ")"));
    }
    if (e.offset < payload_start ||
        std::uint64_t{e.offset} + e.size > bytes.size()) {
      throw Error(cat("corrupt CEPX container: section ", id_name(e.id),
                      " [", e.offset, ", +", e.size,
                      ") lies outside the payload"));
    }
    entries_.push_back(e);
  }

  if (digest_of(bytes.subspan(payload_start)) != read_u64(bytes, 16)) {
    throw Error("corrupt CEPX container (payload digest mismatch)");
  }
}

bool ContainerReader::has_section(std::uint32_t id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) return true;
  }
  return false;
}

ByteReader ContainerReader::section(std::uint32_t id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) {
      return ByteReader(bytes_.subspan(e.offset, e.size), id_name(id));
    }
  }
  throw Error(cat("corrupt CEPX container: missing section ", id_name(id)));
}

bool looks_like_cepx(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= 4 && read_u32(bytes, 0) == kMagic;
}

PayloadKind detect_kind(std::span<const std::uint8_t> bytes) {
  // Runs the same header checks as ContainerReader (construction also
  // checks the digest; detection deliberately stops at the header so
  // tools can classify inputs cheaply and still report truncation).
  if (bytes.size() < 8) {
    throw Error(cat("not a CEPX container: only ", bytes.size(),
                    " byte(s), too small for a header"));
  }
  if (read_u32(bytes, 0) != kMagic) {
    throw Error("not a CEPX container (bad magic)");
  }
  const std::uint16_t version = read_u16(bytes, 4);
  if (version == 0) {
    throw Error(
        "unsupported CEPX container: written by a pre-PR7 toolchain "
        "(v1 streamed format); re-produce the artifact with this build");
  }
  if (version != kContainerVersion) {
    throw Error(cat("unsupported CEPX container version ", version,
                    " (this toolchain reads version ", kContainerVersion,
                    ")"));
  }
  if (bytes.size() < kHeaderBytes) {
    throw Error(cat("CEPX container truncated: ", bytes.size(),
                    " byte(s) is smaller than the ", kHeaderBytes,
                    "-byte header"));
  }
  const std::uint64_t declared = read_u64(bytes, 24);
  if (bytes.size() < declared) {
    throw Error(cat("CEPX container truncated: header declares ", declared,
                    " bytes, got ", bytes.size()));
  }
  const std::uint16_t kind = read_u16(bytes, 6);
  if (kind < 1 || kind > 3) {
    throw Error(cat("corrupt CEPX container: unknown payload kind ", kind));
  }
  return static_cast<PayloadKind>(kind);
}

}  // namespace cepic::serial
