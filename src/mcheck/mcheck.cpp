#include "mcheck/mcheck.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/custom.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::mcheck {

namespace {

constexpr std::string_view kRuleIds[kNumRules] = {
    "mcheck.structure",        "mcheck.field-width",
    "mcheck.reg-bounds",       "mcheck.fu-missing",
    "mcheck.fu-oversubscribed", "mcheck.port-budget",
    "mcheck.latency",          "mcheck.multiop-waw",
    "mcheck.branch-target",    "mcheck.btr-discipline",
};

struct RegKey {
  RegFile file = RegFile::None;
  std::uint32_t reg = 0;
  bool operator<(const RegKey& o) const {
    return file < o.file || (file == o.file && reg < o.reg);
  }
};

RegFile src_file(SrcSpec spec) {
  switch (spec) {
    case SrcSpec::Gpr:
    case SrcSpec::GprOrLit: return RegFile::Gpr;
    case SrcSpec::Pred: return RegFile::Pred;
    case SrcSpec::Btr: return RegFile::Btr;
    case SrcSpec::None:
    case SrcSpec::LitOnly: return RegFile::None;
  }
  return RegFile::None;
}

char file_prefix(RegFile f) {
  switch (f) {
    case RegFile::Gpr: return 'r';
    case RegFile::Pred: return 'p';
    case RegFile::Btr: return 'b';
    case RegFile::None: break;
  }
  return '?';
}

unsigned file_size(const ProcessorConfig& cfg, RegFile f) {
  switch (f) {
    case RegFile::Gpr: return cfg.num_gprs;
    case RegFile::Pred: return cfg.num_preds;
    case RegFile::Btr: return cfg.num_btrs;
    case RegFile::None: break;
  }
  return 0;
}

const char* fu_name(FuClass fu) {
  switch (fu) {
    case FuClass::Alu: return "ALU";
    case FuClass::Cmpu: return "CMPU";
    case FuClass::Lsu: return "LSU";
    case FuClass::Bru: return "BRU";
    case FuClass::None: break;
  }
  return "?";
}

/// Architectural read/write sets of one instruction, split by consumer:
/// `port_reads` mirrors backend/schedule.cpp's classify() (guard reads
/// and the guarded-def merge read included, r0/p0 hardwired values
/// excluded); `sb_reads` mirrors the simulator scoreboard (operand and
/// store-value reads only).
struct InstSets {
  std::set<RegKey> port_reads;
  std::set<RegKey> sb_reads;
  std::set<RegKey> writes;
};

InstSets classify(const Instruction& inst) {
  InstSets s;
  const OpInfo& info = inst.info();
  const auto operand_read = [&](RegFile f, std::uint32_t r) {
    if (f == RegFile::None) return;
    if (f == RegFile::Gpr && r == 0) return;   // r0 hardwired zero
    if (f == RegFile::Pred && r == 0) return;  // p0 hardwired true
    s.port_reads.insert({f, r});
    s.sb_reads.insert({f, r});
  };
  if (inst.src1.is_reg()) operand_read(src_file(info.src1), inst.src1.reg);
  if (inst.src2.is_reg()) operand_read(src_file(info.src2), inst.src2.reg);
  if (info.dest1_is_source) operand_read(RegFile::Gpr, inst.dest1);
  if (inst.pred != 0) operand_read(RegFile::Pred, inst.pred);
  if (info.writes_dest1() &&
      !(info.dest1 == RegFile::Gpr && inst.dest1 == 0)) {
    s.writes.insert({info.dest1, inst.dest1});
    // A guarded definition merges with the old value: the register file
    // controller charges a read port for it (as the scheduler does).
    if (inst.pred != 0) s.port_reads.insert({info.dest1, inst.dest1});
  }
  if (info.dest2 != RegFile::None && inst.dest2 != 0) {
    s.writes.insert({info.dest2, inst.dest2});
    if (inst.pred != 0) s.port_reads.insert({info.dest2, inst.dest2});
  }
  return s;
}

bool is_control(const Instruction& inst) {
  return inst.info().is_branch || inst.op == Op::HALT;
}

class Checker {
 public:
  Checker(const Program& program, const Mdes& mdes,
          const CheckOptions& options)
      : p_(program), mdes_(mdes), opts_(options) {
    rep_.werror = options.werror;
  }

  Report run() {
    if (!check_structure()) return std::move(rep_);
    index_labels();
    collect_prepared_btrs();
    check_bundles();
    return std::move(rep_);
  }

 private:
  void diag(Rule rule, Severity sev, std::uint32_t bundle, int slot,
            std::string message) {
    if (!opts_.rule_enabled(rule)) return;
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.bundle = bundle;
    d.slot = slot;
    auto it = label_at_.upper_bound(bundle);
    if (it != label_at_.begin()) d.label = std::prev(it)->second;
    d.message = std::move(message);
    rep_.diags.push_back(std::move(d));
  }

  bool check_structure() {
    try {
      p_.config.validate();
    } catch (const Error& e) {
      diag(Rule::Structure, Severity::Error, 0, -1,
           cat("invalid processor configuration: ", e.what()));
      return false;
    }
    if (p_.code.size() % p_.config.issue_width != 0) {
      diag(Rule::Structure, Severity::Error, 0, -1,
           cat("code holds ", p_.code.size(), " operations, not a whole "
               "number of ", p_.config.issue_width, "-op MultiOps"));
      return false;
    }
    if (!p_.code.empty() && p_.entry_bundle >= p_.bundle_count()) {
      diag(Rule::Structure, Severity::Error, 0, -1,
           cat("entry bundle ", p_.entry_bundle, " past end of program (",
               p_.bundle_count(), " bundles)"));
    }
    return true;
  }

  void index_labels() {
    for (const auto& [name, addr] : p_.code_symbols) {
      auto [it, inserted] = label_at_.try_emplace(addr, name);
      // Prefer function-style labels over positional L<fn>_<n> aliases.
      if (!inserted && it->second.starts_with("L") && !name.starts_with("L")) {
        it->second = name;
      }
    }
  }

  void collect_prepared_btrs() {
    for (const Instruction& inst : p_.code) {
      if (inst.op == Op::PBR && inst.dest1 < p_.config.num_btrs) {
        prepared_btrs_.insert(inst.dest1);
      }
    }
  }

  // ---- per-instruction encoding checks ----

  void check_operand(std::uint32_t b, int slot, const Operand& o,
                     SrcSpec spec, const char* name, bool zext) {
    const ProcessorConfig& cfg = p_.config;
    switch (spec) {
      case SrcSpec::None:
        if (o.kind != Operand::Kind::None) {
          diag(Rule::Structure, Severity::Error, b, slot,
               cat(name, ": operand not allowed"));
        }
        return;
      case SrcSpec::Gpr:
      case SrcSpec::Pred:
      case SrcSpec::Btr: {
        if (!o.is_reg()) {
          diag(Rule::Structure, Severity::Error, b, slot,
               cat(name, ": register operand required"));
          return;
        }
        const RegFile f = src_file(spec);
        if (o.reg >= file_size(cfg, f)) {
          diag(Rule::RegBounds, Severity::Error, b, slot,
               cat(name, ": ", file_prefix(f), o.reg, " exceeds the ",
                   file_size(cfg, f), "-register file"));
        }
        return;
      }
      case SrcSpec::LitOnly:
        if (!o.is_lit()) {
          diag(Rule::Structure, Severity::Error, b, slot,
               cat(name, ": literal operand required"));
          return;
        }
        break;
      case SrcSpec::GprOrLit:
        if (o.is_reg()) {
          if (o.reg >= cfg.num_gprs) {
            diag(Rule::RegBounds, Severity::Error, b, slot,
                 cat(name, ": r", o.reg, " exceeds the ", cfg.num_gprs,
                     "-register file"));
          }
          return;
        }
        if (!o.is_lit()) {
          diag(Rule::Structure, Severity::Error, b, slot,
               cat(name, ": operand required"));
          return;
        }
        break;
    }
    const unsigned bits = cfg.format().src_bits;
    if (zext) {
      if (!fits_unsigned(static_cast<std::uint32_t>(o.lit), bits)) {
        diag(Rule::FieldWidth, Severity::Error, b, slot,
             cat(name, ": literal ", o.lit, " does not fit the ", bits,
                 "-bit SRC field (zero-extended)"));
      }
    } else if (!fits_signed(o.lit, bits)) {
      diag(Rule::FieldWidth, Severity::Error, b, slot,
           cat(name, ": literal ", o.lit, " does not fit the ", bits,
               "-bit SRC field (sign-extended)"));
    }
  }

  void check_instruction(std::uint32_t b, int slot, const Instruction& inst) {
    const OpInfo& info = inst.info();
    const ProcessorConfig& cfg = p_.config;

    if (!mdes_.op_supported(inst.op)) {
      if (is_custom(inst.op) && custom_slot(inst.op) >= cfg.custom_ops.size()) {
        diag(Rule::FuMissing, Severity::Error, b, slot,
             cat("`", info.name, "`: custom slot ", custom_slot(inst.op),
                 " is not bound in this configuration"));
      } else {
        diag(Rule::FuMissing, Severity::Error, b, slot,
             cat("`", info.name,
                 "` is not implemented on this customisation"));
      }
    }

    if (info.dest1 != RegFile::None) {
      if (inst.dest1 >= file_size(cfg, info.dest1)) {
        diag(Rule::RegBounds, Severity::Error, b, slot,
             cat("dest1: ", file_prefix(info.dest1), inst.dest1,
                 " exceeds the ", file_size(cfg, info.dest1),
                 "-register file"));
      }
    } else if (inst.dest1 != 0) {
      diag(Rule::Structure, Severity::Error, b, slot,
           "dest1 operand not allowed");
    }
    if (info.dest2 != RegFile::None) {
      if (inst.dest2 >= file_size(cfg, info.dest2)) {
        diag(Rule::RegBounds, Severity::Error, b, slot,
             cat("dest2: ", file_prefix(info.dest2), inst.dest2,
                 " exceeds the ", file_size(cfg, info.dest2),
                 "-register file"));
      }
    } else if (inst.dest2 != 0) {
      diag(Rule::Structure, Severity::Error, b, slot,
           "dest2 operand not allowed");
    }

    check_operand(b, slot, inst.src1, info.src1, "src1",
                  info.literal_zero_extends);
    check_operand(b, slot, inst.src2, info.src2, "src2",
                  info.literal_zero_extends);

    if (inst.pred >= cfg.num_preds) {
      diag(Rule::RegBounds, Severity::Error, b, slot,
           cat("guard predicate p", inst.pred, " exceeds the ",
               cfg.num_preds, "-register file"));
    }

    const unsigned regs = count_reg_reads(inst) + count_reg_writes(inst);
    if (regs > cfg.max_regs_per_instr) {
      diag(Rule::FieldWidth, Severity::Error, b, slot,
           cat("instruction uses ", regs,
               " register operands; the encoding caps it at ",
               cfg.max_regs_per_instr));
    }

    // Control flow: PBR targets are bundle addresses and must land on an
    // existing MultiOp boundary.
    if (inst.op == Op::PBR && inst.src1.is_lit()) {
      if (inst.src1.lit < 0 ||
          static_cast<std::uint64_t>(inst.src1.lit) >= p_.bundle_count()) {
        diag(Rule::BranchTarget, Severity::Error, b, slot,
             cat("pbr target ", inst.src1.lit, " is not a MultiOp boundary"
                 " (program has ", p_.bundle_count(), " bundles)"));
      }
    }
    if (info.is_branch && info.src1 == SrcSpec::Btr && inst.src1.is_reg() &&
        inst.src1.reg < cfg.num_btrs &&
        prepared_btrs_.count(inst.src1.reg) == 0) {
      diag(Rule::BtrDiscipline, Severity::Error, b, slot,
           cat("`", info.name, "` consumes b", inst.src1.reg,
               " but no pbr in the program prepares it"));
    }
  }

  // ---- per-bundle and cross-bundle analyses ----

  void check_bundles() {
    const unsigned width = p_.config.issue_width;
    const std::size_t nb = p_.bundle_count();
    const unsigned budget = mdes_.reg_port_budget();
    const bool fwd = mdes_.forwarding();

    // Region boundaries: every labelled bundle starts a scheduler block,
    // where both the forwarding window and the latency state reset.
    std::set<std::uint32_t> region_start;
    region_start.insert(p_.entry_bundle);
    for (const auto& [addr, name] : label_at_) region_start.insert(addr);

    std::set<std::uint32_t> prev_writes;       // GPRs written last cycle
    std::map<RegKey, std::uint64_t> ready;     // region-relative ready cycle
    std::uint64_t cycle = 0;                   // region-relative

    for (std::uint32_t b = 0; b < nb; ++b) {
      if (region_start.count(b) != 0) {
        prev_writes.clear();
        ready.clear();
        cycle = 0;
      }
      const std::span<const Instruction> bundle = p_.bundle(b);

      unsigned fu_used[5] = {0, 0, 0, 0, 0};
      unsigned port_ops = 0;
      std::map<RegKey, int> writer_slot;  // first writing slot per register
      std::set<std::uint32_t> gpr_writes;
      std::vector<std::pair<RegKey, unsigned>> pending;  // writes -> latency
      bool has_control = false;

      for (int slot = 0; slot < static_cast<int>(width); ++slot) {
        const Instruction& inst = bundle[slot];
        if (inst.is_nop()) continue;
        check_instruction(b, slot, inst);
        has_control |= is_control(inst);

        const FuClass fu = inst.info().fu;
        if (fu != FuClass::None) ++fu_used[static_cast<std::size_t>(fu)];

        const InstSets sets = classify(inst);

        // Worst-case register-port accounting (paper §3.2), mirroring
        // the scheduler: GPR reads not covered by last cycle's
        // forwarding window, plus GPR writes.
        for (const RegKey& r : sets.port_reads) {
          if (r.file != RegFile::Gpr) continue;
          if (fwd && prev_writes.count(r.reg) != 0) continue;
          ++port_ops;
        }
        for (const RegKey& w : sets.writes) {
          if (w.file == RegFile::Gpr) ++port_ops;
        }

        // Within-MultiOp ordering: all reads precede all writes, so a
        // read of a register an earlier slot writes returns the
        // pre-MultiOp value — legal MultiOp semantics, but under the
        // scheduler's dependence claims a RAW use must come >= one
        // cycle later.
        for (const RegKey& r : sets.sb_reads) {
          const auto it = writer_slot.find(r);
          if (it != writer_slot.end()) {
            diag(Rule::Latency, Severity::Warning, b, slot,
                 cat("reads ", file_prefix(r.file), r.reg, ", written by "
                     "slot ", it->second, " of the same MultiOp: the "
                     "pre-MultiOp value is used"));
          }
        }

        // Def-use latency (scoreboard oracle): the operand must be
        // ready by this bundle's stall-free issue cycle.
        for (const RegKey& r : sets.sb_reads) {
          const auto it = ready.find(r);
          if (it != ready.end() && it->second > cycle) {
            diag(Rule::Latency, Severity::Warning, b, slot,
                 cat("reads ", file_prefix(r.file), r.reg, " ",
                     it->second - cycle, " cycle(s) before the result is "
                     "ready: the scoreboard must stall issue"));
          }
        }

        for (const RegKey& w : sets.writes) {
          if (!writer_slot.try_emplace(w, slot).second) {
            diag(Rule::MultiOpWaw, Severity::Error, b, slot,
                 cat("MultiOp writes ", file_prefix(w.file), w.reg,
                     " twice; the architectural result is ambiguous"));
          }
          if (w.file == RegFile::Gpr) gpr_writes.insert(w.reg);
          pending.emplace_back(w, mdes_.latency(inst.op));
        }
      }

      for (unsigned f = 1; f < 5; ++f) {
        const auto fu = static_cast<FuClass>(f);
        if (fu_used[f] > mdes_.units(fu)) {
          diag(Rule::FuOversubscribed, Severity::Error, b, -1,
               cat("MultiOp uses ", fu_used[f], " ", fu_name(fu),
                   " ops; this customisation has ", mdes_.units(fu)));
        }
      }
      if (port_ops > budget) {
        diag(Rule::PortBudget, Severity::Warning, b, -1,
             cat("MultiOp needs ", port_ops, " register-port operations; "
                 "the controller provides ", budget,
                 " per cycle, so issue must stall"));
      }

      if (has_control) {
        // Control leaves the straight-line region: past this point the
        // forwarding window and in-flight latencies are unknown, so
        // reset to the worst case (no credit) / silence (no claims).
        prev_writes.clear();
        ready.clear();
        cycle = 0;
      } else {
        prev_writes = std::move(gpr_writes);
        for (const auto& [key, lat] : pending) ready[key] = cycle + lat;
        ++cycle;
      }
    }
  }

  const Program& p_;
  const Mdes& mdes_;
  CheckOptions opts_;
  Report rep_;
  std::map<std::uint32_t, std::string> label_at_;
  std::set<std::uint32_t> prepared_btrs_;
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += cat("\\u00", c < 0x10 ? "0" : "",
                     std::hex, static_cast<int>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view rule_id(Rule rule) {
  return kRuleIds[static_cast<std::size_t>(rule)];
}

std::string_view severity_name(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

std::string Diagnostic::to_string() const {
  std::string s = cat(severity_name(severity), ": bundle ", bundle);
  if (slot >= 0) s += cat(" slot ", slot);
  if (!label.empty()) s += cat(" (in ", label, ")");
  s += cat(": ", message, " [", rule_id(rule), "]");
  return s;
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.severity == s; }));
}

bool Report::has_rule(Rule rule) const {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::string Report::to_text() const {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

std::string Report::to_json() const {
  std::string out = cat("{\"errors\":", count(Severity::Error),
                        ",\"warnings\":", count(Severity::Warning),
                        ",\"werror\":", werror, ",\"diagnostics\":[");
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i != 0) out += ',';
    out += cat("{\"rule\":\"", rule_id(d.rule), "\",\"severity\":\"",
               severity_name(d.severity), "\",\"bundle\":", d.bundle,
               ",\"slot\":", d.slot, ",\"label\":\"", json_escape(d.label),
               "\",\"message\":\"", json_escape(d.message), "\"}");
  }
  out += "]}";
  return out;
}

Report check_program(const Program& program, const Mdes& mdes,
                     const CheckOptions& options) {
  return Checker(program, mdes, options).run();
}

Report check_program(const Program& program, const CheckOptions& options) {
  CustomOpTable custom;
  try {
    custom = CustomOpTable::for_names(program.config.custom_ops);
  } catch (const Error& e) {
    Report rep;
    rep.werror = options.werror;
    if (options.rule_enabled(Rule::Structure)) {
      Diagnostic d;
      d.rule = Rule::Structure;
      d.severity = Severity::Error;
      d.message = cat("invalid custom-op binding: ", e.what());
      rep.diags.push_back(std::move(d));
    }
    return rep;
  }
  // Mdes construction requires a valid configuration; report an invalid
  // one as a structure diagnostic rather than letting it throw.
  try {
    program.config.validate();
  } catch (const Error& e) {
    Report rep;
    rep.werror = options.werror;
    if (options.rule_enabled(Rule::Structure)) {
      Diagnostic d;
      d.rule = Rule::Structure;
      d.severity = Severity::Error;
      d.message = cat("invalid processor configuration: ", e.what());
      rep.diags.push_back(std::move(d));
    }
    return rep;
  }
  const Mdes mdes(program.config, &custom);
  return check_program(program, mdes, options);
}

}  // namespace cepic::mcheck
