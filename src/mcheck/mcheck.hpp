// mcheck — the config-aware machine-code verifier: a static analysis
// over assembled core::Programs that proves (or refutes) the
// architectural contract the backend and assembler are supposed to
// honour, independently of the cycle simulator. It is parameterised by
// the same ProcessorConfig/Mdes the backend consumes, so a customised
// processor (trimmed ALU features, resized register files, narrowed
// port budget) is checked against exactly the machine it will run on.
//
// Rules (docs/LINT.md has the full catalogue with paper citations):
//
//   structure         program shape: whole bundles, entry in range
//   field-width       operands fit the customised encoding fields (§3.1)
//   reg-bounds        register/predicate/BTR indices within file sizes
//   fu-missing        operation absent from this customisation (§3.3)
//   fu-oversubscribed more ops of one FU class in a MultiOp than units
//   port-budget       worst-case register-port accounting per MultiOp:
//                     flags MultiOps that must stall the 4x-clock RF
//                     controller (§3.2) — independently reimplements the
//                     budget logic of backend/schedule.cpp
//   latency           def-use analysis across the schedule: operands
//                     read before the producer's latency has elapsed
//                     (the scoreboard will stall) — an independent
//                     oracle for the scheduler's RAW/WAW claims
//   multiop-waw       two operations of one MultiOp write one register
//   branch-target     PBR targets land on existing MultiOp boundaries
//   btr-discipline    branches only consume BTRs some PBR prepares
//
// Severity: violations the hardware cannot execute (or that change
// results) are errors; "legal but must stall" findings (port-budget,
// latency) are warnings, promoted by CheckOptions::werror.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "core/program.hpp"
#include "mdes/mdes.hpp"

namespace cepic::mcheck {

enum class Rule : unsigned {
  Structure = 0,
  FieldWidth,
  RegBounds,
  FuMissing,
  FuOversubscribed,
  PortBudget,
  Latency,
  MultiOpWaw,
  BranchTarget,
  BtrDiscipline,
  kCount
};

inline constexpr std::size_t kNumRules = static_cast<std::size_t>(Rule::kCount);

/// Stable diagnostic identifier, e.g. "mcheck.port-budget".
std::string_view rule_id(Rule rule);

enum class Severity : std::uint8_t { Warning, Error };

std::string_view severity_name(Severity s);

/// One finding, located at (bundle, slot). slot is -1 when the finding
/// concerns the whole MultiOp or the program; bundle is 0 then too.
struct Diagnostic {
  Rule rule = Rule::Structure;
  Severity severity = Severity::Error;
  std::uint32_t bundle = 0;
  int slot = -1;
  /// Nearest preceding code label, empty if none (e.g. whole-program).
  std::string label;
  std::string message;

  /// "error: bundle 12 (slot 2, in fn_main): ... [mcheck.reg-bounds]"
  std::string to_string() const;
};

struct CheckOptions {
  /// Treat warnings as errors in Report::error_count()/clean().
  bool werror = false;
  /// Bitmask of enabled rules (bit = static_cast<unsigned>(Rule)).
  std::uint32_t enabled = ~0u;

  bool rule_enabled(Rule r) const {
    return (enabled >> static_cast<unsigned>(r)) & 1u;
  }

  /// Options with only the listed rules enabled.
  static CheckOptions only(std::initializer_list<Rule> rules) {
    CheckOptions o;
    o.enabled = 0;
    for (Rule r : rules) o.enabled |= 1u << static_cast<unsigned>(r);
    return o;
  }
};

struct Report {
  std::vector<Diagnostic> diags;
  bool werror = false;  ///< copied from CheckOptions

  std::size_t count(Severity s) const;
  std::size_t error_count() const {
    return count(Severity::Error) + (werror ? count(Severity::Warning) : 0);
  }
  std::size_t warning_count() const {
    return werror ? 0 : count(Severity::Warning);
  }
  bool clean() const { return error_count() == 0; }
  bool has_rule(Rule rule) const;

  /// Human-readable report, one diagnostic per line (empty if none).
  std::string to_text() const;
  /// Machine-readable report:
  /// {"errors":N,"warnings":M,"diagnostics":[{...},...]}
  std::string to_json() const;
};

/// Verify `program` against its embedded configuration. Builds the Mdes
/// (with the configuration's custom ops bound) internally. An invalid
/// ProcessorConfig is reported as a structure error, not thrown.
Report check_program(const Program& program, const CheckOptions& options = {});

/// Verify against an explicit machine description (must describe the
/// same customisation as program.config; tests use this to check
/// programs against deliberately mismatched machines).
Report check_program(const Program& program, const Mdes& mdes,
                     const CheckOptions& options = {});

}  // namespace cepic::mcheck
