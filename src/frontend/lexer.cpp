#include "frontend/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::minic {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> map = {
      {"int", Tok::KwInt},       {"void", Tok::KwVoid},
      {"if", Tok::KwIf},         {"else", Tok::KwElse},
      {"while", Tok::KwWhile},   {"for", Tok::KwFor},
      {"do", Tok::KwDo},         {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
  };
  return map;
}

class Lexer {
public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> lex_all() {
    std::vector<Token> out;
    for (;;) {
      skip_ws_and_comments();
      Token t = next_token();
      const bool end = t.kind == Tok::End;
      out.push_back(std::move(t));
      if (end) return out;
    }
  }

private:
  [[noreturn]] void error(const std::string& msg) const {
    // Report the start of the offending token, not the scan position.
    throw CompileError(msg, tok_line_, tok_col_);
  }

  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  bool match(char c) {
    if (peek() != c) return false;
    advance();
    return true;
  }

  void skip_ws_and_comments() {
    for (;;) {
      tok_line_ = line_;
      tok_col_ = col_;
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (peek() == '\0') error("unterminated block comment");
          advance();
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  Token make(Tok kind) {
    Token t;
    t.kind = kind;
    t.line = tok_line_;
    t.col = tok_col_;
    return t;
  }

  char escape_char(char c) {
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        error(cat("unknown escape \\", std::string(1, c)));
    }
  }

  Token next_token() {
    tok_line_ = line_;
    tok_col_ = col_;
    if (pos_ >= src_.size()) return make(Tok::End);

    const char c = advance();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name(1, c);
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        name += advance();
      }
      if (auto it = keywords().find(name); it != keywords().end()) {
        return make(it->second);
      }
      Token t = make(Tok::Ident);
      t.text = std::move(name);
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits(1, c);
      if (c == '0' && (peek() == 'x' || peek() == 'X')) {
        digits += advance();
        while (std::isxdigit(static_cast<unsigned char>(peek()))) {
          digits += advance();
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          digits += advance();
        }
      }
      std::int64_t value = 0;
      if (!parse_int(digits, value) || value > 0xFFFFFFFFll) {
        error(cat("bad integer literal `", digits, "`"));
      }
      Token t = make(Tok::IntLit);
      t.value = value;
      return t;
    }

    if (c == '\'') {
      char v = advance();
      if (v == '\\') v = escape_char(advance());
      if (!match('\'')) error("unterminated character literal");
      Token t = make(Tok::IntLit);
      t.value = static_cast<unsigned char>(v);
      return t;
    }

    if (c == '"') {
      std::string bytes;
      for (;;) {
        if (peek() == '\0') error("unterminated string literal");
        char v = advance();
        if (v == '"') break;
        if (v == '\\') v = escape_char(advance());
        bytes += v;
      }
      Token t = make(Tok::StrLit);
      t.text = std::move(bytes);
      return t;
    }

    switch (c) {
      case '(': return make(Tok::LParen);
      case ')': return make(Tok::RParen);
      case '{': return make(Tok::LBrace);
      case '}': return make(Tok::RBrace);
      case '[': return make(Tok::LBracket);
      case ']': return make(Tok::RBracket);
      case ';': return make(Tok::Semi);
      case ',': return make(Tok::Comma);
      case '?': return make(Tok::Question);
      case ':': return make(Tok::Colon);
      case '~': return make(Tok::Tilde);
      case '+':
        if (match('+')) return make(Tok::PlusPlus);
        if (match('=')) return make(Tok::PlusEq);
        return make(Tok::Plus);
      case '-':
        if (match('-')) return make(Tok::MinusMinus);
        if (match('=')) return make(Tok::MinusEq);
        return make(Tok::Minus);
      case '*':
        return match('=') ? make(Tok::StarEq) : make(Tok::Star);
      case '/':
        return match('=') ? make(Tok::SlashEq) : make(Tok::Slash);
      case '%':
        return match('=') ? make(Tok::PercentEq) : make(Tok::Percent);
      case '&':
        if (match('&')) return make(Tok::AmpAmp);
        if (match('=')) return make(Tok::AmpEq);
        return make(Tok::Amp);
      case '|':
        if (match('|')) return make(Tok::PipePipe);
        if (match('=')) return make(Tok::PipeEq);
        return make(Tok::Pipe);
      case '^':
        return match('=') ? make(Tok::CaretEq) : make(Tok::Caret);
      case '!':
        return match('=') ? make(Tok::NotEq) : make(Tok::Bang);
      case '=':
        return match('=') ? make(Tok::EqEq) : make(Tok::Assign);
      case '<':
        if (match('<')) return match('=') ? make(Tok::ShlEq) : make(Tok::Shl);
        if (match('=')) return make(Tok::Le);
        return make(Tok::Lt);
      case '>':
        if (match('>')) {
          if (match('>')) return make(Tok::Sar);  // >>> logical
          return match('=') ? make(Tok::ShrEq) : make(Tok::Shr);
        }
        if (match('=')) return make(Tok::Ge);
        return make(Tok::Gt);
      default:
        error(cat("unexpected character `", std::string(1, c), "`"));
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int tok_line_ = 1;
  int tok_col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).lex_all();
}

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::StrLit: return "string literal";
    case Tok::KwInt: return "`int`";
    case Tok::KwVoid: return "`void`";
    case Tok::KwIf: return "`if`";
    case Tok::KwElse: return "`else`";
    case Tok::KwWhile: return "`while`";
    case Tok::KwFor: return "`for`";
    case Tok::KwDo: return "`do`";
    case Tok::KwReturn: return "`return`";
    case Tok::KwBreak: return "`break`";
    case Tok::KwContinue: return "`continue`";
    case Tok::LParen: return "`(`";
    case Tok::RParen: return "`)`";
    case Tok::LBrace: return "`{`";
    case Tok::RBrace: return "`}`";
    case Tok::LBracket: return "`[`";
    case Tok::RBracket: return "`]`";
    case Tok::Semi: return "`;`";
    case Tok::Comma: return "`,`";
    case Tok::Question: return "`?`";
    case Tok::Colon: return "`:`";
    case Tok::Plus: return "`+`";
    case Tok::Minus: return "`-`";
    case Tok::Star: return "`*`";
    case Tok::Slash: return "`/`";
    case Tok::Percent: return "`%`";
    case Tok::Amp: return "`&`";
    case Tok::Pipe: return "`|`";
    case Tok::Caret: return "`^`";
    case Tok::Tilde: return "`~`";
    case Tok::Bang: return "`!`";
    case Tok::Lt: return "`<`";
    case Tok::Gt: return "`>`";
    case Tok::Le: return "`<=`";
    case Tok::Ge: return "`>=`";
    case Tok::EqEq: return "`==`";
    case Tok::NotEq: return "`!=`";
    case Tok::AmpAmp: return "`&&`";
    case Tok::PipePipe: return "`||`";
    case Tok::Shl: return "`<<`";
    case Tok::Shr: return "`>>`";
    case Tok::Sar: return "`>>>`";
    case Tok::Assign: return "`=`";
    case Tok::PlusEq: return "`+=`";
    case Tok::MinusEq: return "`-=`";
    case Tok::StarEq: return "`*=`";
    case Tok::SlashEq: return "`/=`";
    case Tok::PercentEq: return "`%=`";
    case Tok::AmpEq: return "`&=`";
    case Tok::PipeEq: return "`|=`";
    case Tok::CaretEq: return "`^=`";
    case Tok::ShlEq: return "`<<=`";
    case Tok::ShrEq: return "`>>=`";
    case Tok::PlusPlus: return "`++`";
    case Tok::MinusMinus: return "`--`";
  }
  return "?";
}

}  // namespace cepic::minic
