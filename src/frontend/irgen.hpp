// Semantic analysis + IR generation for MiniC. Symbols are scoped;
// scalars live in virtual registers (non-SSA: assignment rewrites the
// same vreg), arrays live in memory (globals at their laid-out address,
// locals in the frame, array parameters as incoming addresses).
//
// Builtins: out(x) emits to the output port; min/max/abs map to the
// corresponding IR (and ultimately HPL-PD) operations.
#pragma once

#include <string_view>

#include "frontend/ast.hpp"
#include "ir/ir.hpp"

namespace cepic::minic {

/// Lower a parsed unit to IR. Throws CompileError on semantic errors.
ir::Module generate_ir(const Unit& unit);

/// Convenience: lex + parse + generate + verify.
ir::Module compile_to_ir(std::string_view source);

}  // namespace cepic::minic
