#include "frontend/irgen.hpp"

#include <unordered_map>

#include "core/eval.hpp"
#include "ir/verify.hpp"
#include "obs/obs.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::minic {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::Value;
using ir::VReg;

[[noreturn]] void err(const Expr& e, const std::string& msg) {
  throw CompileError(msg, e.line, e.col);
}
[[noreturn]] void err(const Stmt& s, const std::string& msg) {
  throw CompileError(msg, s.line, s.col);
}

IrOp binary_ir_op(Tok op) {
  switch (op) {
    case Tok::Plus: return IrOp::Add;
    case Tok::Minus: return IrOp::Sub;
    case Tok::Star: return IrOp::Mul;
    case Tok::Slash: return IrOp::Div;
    case Tok::Percent: return IrOp::Rem;
    case Tok::Amp: return IrOp::And;
    case Tok::Pipe: return IrOp::Or;
    case Tok::Caret: return IrOp::Xor;
    case Tok::Shl: return IrOp::Shl;
    case Tok::Shr: return IrOp::Shra;
    case Tok::Sar: return IrOp::Shrl;
    case Tok::EqEq: return IrOp::CmpEq;
    case Tok::NotEq: return IrOp::CmpNe;
    case Tok::Lt: return IrOp::CmpLt;
    case Tok::Le: return IrOp::CmpLe;
    case Tok::Gt: return IrOp::CmpGt;
    case Tok::Ge: return IrOp::CmpGe;
    default:
      CEPIC_CHECK(false, "not a binary operator token");
  }
}

IrOp compound_ir_op(Tok op) {
  switch (op) {
    case Tok::PlusEq: return IrOp::Add;
    case Tok::MinusEq: return IrOp::Sub;
    case Tok::StarEq: return IrOp::Mul;
    case Tok::SlashEq: return IrOp::Div;
    case Tok::PercentEq: return IrOp::Rem;
    case Tok::AmpEq: return IrOp::And;
    case Tok::PipeEq: return IrOp::Or;
    case Tok::CaretEq: return IrOp::Xor;
    case Tok::ShlEq: return IrOp::Shl;
    case Tok::ShrEq: return IrOp::Shra;
    default:
      CEPIC_CHECK(false, "not a compound-assignment token");
  }
}

/// Constant expression evaluator (global initialisers, array sizes).
std::int32_t eval_const(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return static_cast<std::int32_t>(e.value);
    case ExprKind::Unary: {
      const std::int32_t v = eval_const(*e.rhs);
      switch (e.op) {
        case Tok::Minus: return -v;
        case Tok::Tilde: return ~v;
        case Tok::Bang: return v == 0 ? 1 : 0;
        default: break;
      }
      err(e, "unsupported operator in constant expression");
    }
    case ExprKind::Binary: {
      if (e.op == Tok::AmpAmp) {
        return (eval_const(*e.lhs) != 0 && eval_const(*e.rhs) != 0) ? 1 : 0;
      }
      if (e.op == Tok::PipePipe) {
        return (eval_const(*e.lhs) != 0 || eval_const(*e.rhs) != 0) ? 1 : 0;
      }
      const auto a = to_unsigned(eval_const(*e.lhs));
      const auto b = to_unsigned(eval_const(*e.rhs));
      const IrOp op = binary_ir_op(e.op);
      if (ir::is_cmp(op)) {
        // Map to the core evaluator through the interpreter's tables is
        // overkill here; compare directly.
        const auto sa = to_signed(a);
        const auto sb = to_signed(b);
        switch (op) {
          case IrOp::CmpEq: return a == b;
          case IrOp::CmpNe: return a != b;
          case IrOp::CmpLt: return sa < sb;
          case IrOp::CmpLe: return sa <= sb;
          case IrOp::CmpGt: return sa > sb;
          case IrOp::CmpGe: return sa >= sb;
          default: break;
        }
      }
      switch (op) {
        case IrOp::Add: return to_signed(eval_alu(Op::ADD, a, b, 32));
        case IrOp::Sub: return to_signed(eval_alu(Op::SUB, a, b, 32));
        case IrOp::Mul: return to_signed(eval_alu(Op::MUL, a, b, 32));
        case IrOp::Div: return to_signed(eval_alu(Op::DIV, a, b, 32));
        case IrOp::Rem: return to_signed(eval_alu(Op::REM, a, b, 32));
        case IrOp::And: return to_signed(a & b);
        case IrOp::Or: return to_signed(a | b);
        case IrOp::Xor: return to_signed(a ^ b);
        case IrOp::Shl: return to_signed(eval_alu(Op::SHL, a, b, 32));
        case IrOp::Shra: return to_signed(eval_alu(Op::SHRA, a, b, 32));
        case IrOp::Shrl: return to_signed(eval_alu(Op::SHRL, a, b, 32));
        default: break;
      }
      err(e, "unsupported operator in constant expression");
    }
    case ExprKind::Ternary:
      return eval_const(*e.cond) != 0 ? eval_const(*e.lhs)
                                      : eval_const(*e.rhs);
    default:
      err(e, "expression is not constant");
  }
}

struct Symbol {
  enum class Kind {
    GlobalScalar,
    GlobalArray,
    ParamScalar,
    ParamArray,   ///< incoming address in vreg
    LocalScalar,
    LocalArray,   ///< frame_offset bytes into the frame
  };
  Kind kind = Kind::LocalScalar;
  int global_index = -1;
  VReg vreg = ir::kNoVReg;
  std::uint32_t frame_offset = 0;
  std::uint32_t size_words = 0;

  bool is_array() const {
    return kind == Kind::GlobalArray || kind == Kind::ParamArray ||
           kind == Kind::LocalArray;
  }
};

struct FuncSig {
  bool returns_value = false;
  std::vector<bool> param_is_array;
};

class IrGen {
public:
  explicit IrGen(const Unit& unit) : unit_(unit) {}

  ir::Module run() {
    collect_globals();
    collect_signatures();
    for (const FuncDecl& fn : unit_.functions) gen_function(fn);
    return std::move(module_);
  }

private:
  // ---------- module-level collection ----------

  void collect_globals() {
    for (const StmtPtr& s : unit_.globals) {
      const Stmt& d = *s;
      if (globals_.count(d.name) != 0) {
        err(d, cat("redefinition of global `", d.name, "`"));
      }
      ir::Global g;
      g.name = d.name;
      if (!d.is_array) {
        g.size_words = 1;
        if (d.has_init_list) {
          g.init_words.push_back(to_unsigned(eval_const(*d.init_list[0])));
        }
      } else {
        std::vector<std::uint32_t> init;
        if (d.has_str_init) {
          for (char c : d.str_init) {
            init.push_back(static_cast<unsigned char>(c));
          }
        } else if (d.has_init_list) {
          for (const ExprPtr& e : d.init_list) {
            init.push_back(to_unsigned(eval_const(*e)));
          }
        }
        if (d.array_size == -2) {
          const std::int32_t n = eval_const(*d.expr);
          if (n <= 0) err(d, "array size must be positive");
          g.size_words = static_cast<std::uint32_t>(n);
        } else {
          if (init.empty()) err(d, "cannot infer size of `[]` array");
          g.size_words = static_cast<std::uint32_t>(init.size());
        }
        if (init.size() > g.size_words) {
          err(d, "too many initialisers");
        }
        g.init_words = std::move(init);
      }
      Symbol sym;
      sym.kind = d.is_array ? Symbol::Kind::GlobalArray
                            : Symbol::Kind::GlobalScalar;
      sym.global_index = static_cast<int>(module_.globals.size());
      sym.size_words = g.size_words;
      globals_.emplace(d.name, sym);
      module_.globals.push_back(std::move(g));
    }
  }

  void collect_signatures() {
    for (const FuncDecl& fn : unit_.functions) {
      if (sigs_.count(fn.name) != 0) {
        throw CompileError(cat("redefinition of function `", fn.name, "`"),
                           fn.line, fn.col);
      }
      FuncSig sig;
      sig.returns_value = fn.returns_value;
      for (const ParamDecl& p : fn.params) {
        sig.param_is_array.push_back(p.is_array);
      }
      sigs_.emplace(fn.name, std::move(sig));
    }
  }

  // ---------- per-function state ----------

  ir::Function* fn_ = nullptr;
  int cur_block_ = 0;
  std::vector<std::unordered_map<std::string, Symbol>> scopes_;
  std::vector<std::pair<int, int>> loop_stack_;  // (continue_bb, break_bb)

  void emit(IrInst inst) { fn_->blocks[cur_block_].insts.push_back(std::move(inst)); }

  bool block_terminated() const {
    const auto& insts = fn_->blocks[cur_block_].insts;
    return !insts.empty() && ir::is_terminator(insts.back().op);
  }

  int new_block(std::string label) { return fn_->add_block(std::move(label)); }

  void switch_to(int block) { cur_block_ = block; }

  void br_to(int block) {
    if (!block_terminated()) {
      IrInst br;
      br.op = IrOp::Br;
      br.block_then = block;
      emit(std::move(br));
    }
  }

  VReg fresh() { return fn_->fresh_vreg(); }

  VReg emit_binary(IrOp op, Value a, Value b) {
    IrInst inst;
    inst.op = op;
    inst.dst = fresh();
    inst.a = a;
    inst.b = b;
    const VReg dst = inst.dst;
    emit(std::move(inst));
    return dst;
  }

  void emit_mov(VReg dst, Value v) {
    IrInst inst;
    inst.op = IrOp::Mov;
    inst.dst = dst;
    inst.a = v;
    emit(std::move(inst));
  }

  // ---------- symbols ----------

  const Symbol* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (auto found = it->find(name); found != it->end()) {
        return &found->second;
      }
    }
    if (auto found = globals_.find(name); found != globals_.end()) {
      return &found->second;
    }
    return nullptr;
  }

  void declare(const Stmt& at, const std::string& name, Symbol sym) {
    auto& scope = scopes_.back();
    if (scope.count(name) != 0) {
      err(at, cat("redeclaration of `", name, "` in the same scope"));
    }
    scope.emplace(name, sym);
  }

  // ---------- functions ----------

  void gen_function(const FuncDecl& decl) {
    ir::Function fn;
    fn.name = decl.name;
    fn.returns_value = decl.returns_value;
    module_.functions.push_back(std::move(fn));
    fn_ = &module_.functions.back();

    scopes_.clear();
    scopes_.emplace_back();
    loop_stack_.clear();

    switch_to(new_block("entry"));

    for (const ParamDecl& p : decl.params) {
      Symbol sym;
      sym.kind = p.is_array ? Symbol::Kind::ParamArray
                            : Symbol::Kind::ParamScalar;
      sym.vreg = fresh();
      fn_->params.push_back(sym.vreg);
      auto& scope = scopes_.back();
      if (scope.count(p.name) != 0) {
        throw CompileError(cat("duplicate parameter `", p.name, "`"), p.line,
                           p.col);
      }
      scope.emplace(p.name, sym);
    }

    gen_stmt(*decl.body);

    if (!block_terminated()) {
      IrInst ret;
      ret.op = IrOp::Ret;
      if (fn_->returns_value) ret.a = Value::i(0);
      emit(std::move(ret));
    }
    // Any dangling dead blocks (after break/return) need terminators too.
    for (auto& block : fn_->blocks) {
      if (block.insts.empty() || !ir::is_terminator(block.insts.back().op)) {
        IrInst ret;
        ret.op = IrOp::Ret;
        if (fn_->returns_value) ret.a = Value::i(0);
        block.insts.push_back(std::move(ret));
      }
    }
  }

  // ---------- statements ----------

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Empty:
        return;
      case StmtKind::Block: {
        scopes_.emplace_back();
        for (const StmtPtr& child : s.body) gen_stmt(*child);
        scopes_.pop_back();
        return;
      }
      case StmtKind::Expr:
        gen_expr_for_effect(*s.expr);
        return;
      case StmtKind::Decl:
        gen_decl(s);
        return;
      case StmtKind::If: {
        const int bb_then = new_block("then");
        const int bb_else = s.else_s ? new_block("else") : -1;
        const int bb_join = new_block("endif");
        gen_cond(*s.expr, bb_then, s.else_s ? bb_else : bb_join);
        switch_to(bb_then);
        gen_stmt(*s.then_s);
        br_to(bb_join);
        if (s.else_s) {
          switch_to(bb_else);
          gen_stmt(*s.else_s);
          br_to(bb_join);
        }
        switch_to(bb_join);
        return;
      }
      case StmtKind::While: {
        const int bb_cond = new_block("while.cond");
        const int bb_body = new_block("while.body");
        const int bb_exit = new_block("while.end");
        br_to(bb_cond);
        switch_to(bb_cond);
        gen_cond(*s.expr, bb_body, bb_exit);
        loop_stack_.push_back({bb_cond, bb_exit});
        switch_to(bb_body);
        gen_stmt(*s.then_s);
        br_to(bb_cond);
        loop_stack_.pop_back();
        switch_to(bb_exit);
        return;
      }
      case StmtKind::DoWhile: {
        const int bb_body = new_block("do.body");
        const int bb_cond = new_block("do.cond");
        const int bb_exit = new_block("do.end");
        br_to(bb_body);
        loop_stack_.push_back({bb_cond, bb_exit});
        switch_to(bb_body);
        gen_stmt(*s.then_s);
        br_to(bb_cond);
        loop_stack_.pop_back();
        switch_to(bb_cond);
        gen_cond(*s.expr, bb_body, bb_exit);
        switch_to(bb_exit);
        return;
      }
      case StmtKind::For: {
        scopes_.emplace_back();  // for-init scope
        if (s.init) gen_stmt(*s.init);
        const int bb_cond = new_block("for.cond");
        const int bb_body = new_block("for.body");
        const int bb_step = new_block("for.step");
        const int bb_exit = new_block("for.end");
        br_to(bb_cond);
        switch_to(bb_cond);
        if (s.expr) {
          gen_cond(*s.expr, bb_body, bb_exit);
        } else {
          br_to(bb_body);
        }
        loop_stack_.push_back({bb_step, bb_exit});
        switch_to(bb_body);
        gen_stmt(*s.then_s);
        br_to(bb_step);
        switch_to(bb_step);
        if (s.step) gen_stmt(*s.step);
        br_to(bb_cond);
        loop_stack_.pop_back();
        scopes_.pop_back();
        switch_to(bb_exit);
        return;
      }
      case StmtKind::Return: {
        IrInst ret;
        ret.op = IrOp::Ret;
        if (s.expr) {
          if (!fn_->returns_value) err(s, "void function returning a value");
          ret.a = gen_value(*s.expr);
        } else if (fn_->returns_value) {
          err(s, "non-void function needs a return value");
        }
        emit(std::move(ret));
        switch_to(new_block("dead"));
        return;
      }
      case StmtKind::Break: {
        if (loop_stack_.empty()) err(s, "break outside a loop");
        IrInst br;
        br.op = IrOp::Br;
        br.block_then = loop_stack_.back().second;
        emit(std::move(br));
        switch_to(new_block("dead"));
        return;
      }
      case StmtKind::Continue: {
        if (loop_stack_.empty()) err(s, "continue outside a loop");
        IrInst br;
        br.op = IrOp::Br;
        br.block_then = loop_stack_.back().first;
        emit(std::move(br));
        switch_to(new_block("dead"));
        return;
      }
    }
  }

  void gen_decl(const Stmt& s) {
    if (!s.is_array) {
      Symbol sym;
      sym.kind = Symbol::Kind::LocalScalar;
      sym.vreg = fresh();
      declare(s, s.name, sym);
      emit_mov(sym.vreg,
               s.has_init_list ? gen_value(*s.init_list[0]) : Value::i(0));
      return;
    }
    // Local array: carve out frame space.
    std::uint32_t size_words = 0;
    if (s.array_size == -2) {
      const std::int32_t n = eval_const(*s.expr);
      if (n <= 0) err(s, "array size must be positive");
      size_words = static_cast<std::uint32_t>(n);
    } else if (s.has_str_init) {
      size_words = static_cast<std::uint32_t>(s.str_init.size());
    } else if (s.has_init_list) {
      size_words = static_cast<std::uint32_t>(s.init_list.size());
    } else {
      err(s, "cannot infer size of `[]` array");
    }
    Symbol sym;
    sym.kind = Symbol::Kind::LocalArray;
    sym.frame_offset = fn_->frame_bytes;
    sym.size_words = size_words;
    fn_->frame_bytes += size_words * 4;
    declare(s, s.name, sym);

    if (s.has_str_init || s.has_init_list) {
      const VReg base = emit_frame_addr(sym.frame_offset);
      std::uint32_t i = 0;
      if (s.has_str_init) {
        for (char ch : s.str_init) {
          emit_store_word(Value::r(base), Value::i(static_cast<std::int32_t>(i * 4)),
                          Value::i(static_cast<unsigned char>(ch)));
          ++i;
        }
      } else {
        if (s.init_list.size() > size_words) err(s, "too many initialisers");
        for (const ExprPtr& e : s.init_list) {
          emit_store_word(Value::r(base), Value::i(static_cast<std::int32_t>(i * 4)),
                          gen_value(*e));
          ++i;
        }
      }
    }
  }

  VReg emit_frame_addr(std::uint32_t offset) {
    IrInst inst;
    inst.op = IrOp::FrameAddr;
    inst.dst = fresh();
    inst.a = Value::i(static_cast<std::int32_t>(offset));
    const VReg dst = inst.dst;
    emit(std::move(inst));
    return dst;
  }

  void emit_store_word(Value base, Value offset, Value value) {
    IrInst inst;
    inst.op = IrOp::StoreW;
    inst.a = base;
    inst.b = offset;
    inst.c = value;
    emit(std::move(inst));
  }

  // ---------- conditions ----------

  void gen_cond(const Expr& e, int bb_true, int bb_false) {
    if (e.kind == ExprKind::Binary && e.op == Tok::AmpAmp) {
      const int bb_mid = new_block("and.rhs");
      gen_cond(*e.lhs, bb_mid, bb_false);
      switch_to(bb_mid);
      gen_cond(*e.rhs, bb_true, bb_false);
      return;
    }
    if (e.kind == ExprKind::Binary && e.op == Tok::PipePipe) {
      const int bb_mid = new_block("or.rhs");
      gen_cond(*e.lhs, bb_true, bb_mid);
      switch_to(bb_mid);
      gen_cond(*e.rhs, bb_true, bb_false);
      return;
    }
    if (e.kind == ExprKind::Unary && e.op == Tok::Bang) {
      gen_cond(*e.rhs, bb_false, bb_true);
      return;
    }
    if (e.kind == ExprKind::IntLit) {
      IrInst br;
      br.op = IrOp::Br;
      br.block_then = e.value != 0 ? bb_true : bb_false;
      emit(std::move(br));
      return;
    }
    IrInst br;
    br.op = IrOp::CondBr;
    br.a = gen_value(e);
    br.block_then = bb_true;
    br.block_else = bb_false;
    emit(std::move(br));
  }

  // ---------- expressions ----------

  /// Address (base, byte-offset) of an array element or the storage of a
  /// global scalar.
  struct Place {
    enum class Kind { ScalarReg, GlobalWord, Element } kind;
    VReg reg = ir::kNoVReg;  // ScalarReg
    Value base;              // GlobalWord/Element base address
    Value offset;            // Element byte offset (imm or reg)
  };

  Value gaddr_of(int global_index) {
    IrInst inst;
    inst.op = IrOp::GlobalAddr;
    inst.dst = fresh();
    inst.global_index = global_index;
    const VReg dst = inst.dst;
    emit(std::move(inst));
    return Value::r(dst);
  }

  Value array_base(const Expr& e) {
    if (e.kind != ExprKind::Var) err(e, "expected an array name");
    const Symbol* sym = lookup(e.name);
    if (sym == nullptr) err(e, cat("use of undeclared `", e.name, "`"));
    switch (sym->kind) {
      case Symbol::Kind::GlobalArray:
        return gaddr_of(sym->global_index);
      case Symbol::Kind::ParamArray:
        return Value::r(sym->vreg);
      case Symbol::Kind::LocalArray:
        return Value::r(emit_frame_addr(sym->frame_offset));
      default:
        err(e, cat("`", e.name, "` is not an array"));
    }
  }

  Place place_of(const Expr& e) {
    if (e.kind == ExprKind::Var) {
      const Symbol* sym = lookup(e.name);
      if (sym == nullptr) err(e, cat("use of undeclared `", e.name, "`"));
      if (sym->is_array()) err(e, cat("array `", e.name, "` used as a value"));
      if (sym->kind == Symbol::Kind::GlobalScalar) {
        Place p;
        p.kind = Place::Kind::GlobalWord;
        p.base = gaddr_of(sym->global_index);
        p.offset = Value::i(0);
        return p;
      }
      Place p;
      p.kind = Place::Kind::ScalarReg;
      p.reg = sym->vreg;
      return p;
    }
    if (e.kind == ExprKind::Index) {
      Place p;
      p.kind = Place::Kind::Element;
      p.base = array_base(*e.lhs);
      const Value idx = gen_value(*e.rhs);
      if (idx.is_imm()) {
        p.offset = Value::i(idx.imm * 4);
      } else {
        p.offset = Value::r(emit_binary(IrOp::Shl, idx, Value::i(2)));
      }
      return p;
    }
    err(e, "expression is not assignable");
  }

  Value load_place(const Place& p) {
    if (p.kind == Place::Kind::ScalarReg) return Value::r(p.reg);
    IrInst inst;
    inst.op = IrOp::LoadW;
    inst.dst = fresh();
    inst.a = p.base;
    inst.b = p.offset;
    const VReg dst = inst.dst;
    emit(std::move(inst));
    return Value::r(dst);
  }

  void store_place(const Place& p, Value v) {
    if (p.kind == Place::Kind::ScalarReg) {
      emit_mov(p.reg, v);
      return;
    }
    emit_store_word(p.base, p.offset, v);
  }

  void gen_expr_for_effect(const Expr& e) { (void)gen_value(e); }

  Value gen_value(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return Value::i(static_cast<std::int32_t>(e.value));
      case ExprKind::Var:
      case ExprKind::Index:
        return load_place(place_of(e));
      case ExprKind::Call:
        return gen_call(e);
      case ExprKind::Unary: {
        const Value v = gen_value(*e.rhs);
        switch (e.op) {
          case Tok::Minus:
            return Value::r(emit_binary(IrOp::Sub, Value::i(0), v));
          case Tok::Tilde:
            return Value::r(emit_binary(IrOp::Xor, v, Value::i(-1)));
          case Tok::Bang:
            return Value::r(emit_binary(IrOp::CmpEq, v, Value::i(0)));
          default:
            err(e, "unsupported unary operator");
        }
      }
      case ExprKind::Binary: {
        if (e.op == Tok::AmpAmp || e.op == Tok::PipePipe) {
          return gen_short_circuit(e);
        }
        const Value a = gen_value(*e.lhs);
        const Value b = gen_value(*e.rhs);
        return Value::r(emit_binary(binary_ir_op(e.op), a, b));
      }
      case ExprKind::Assign: {
        const Place p = place_of(*e.lhs);
        Value v;
        if (e.op == Tok::Assign) {
          v = gen_value(*e.rhs);
        } else {
          const Value old = load_place(p);
          v = Value::r(
              emit_binary(compound_ir_op(e.op), old, gen_value(*e.rhs)));
        }
        store_place(p, v);
        return v;
      }
      case ExprKind::IncDec: {
        const Place p = place_of(*e.lhs);
        const Value old = load_place(p);
        const IrOp op = e.op == Tok::PlusPlus ? IrOp::Add : IrOp::Sub;
        const Value updated = Value::r(emit_binary(op, old, Value::i(1)));
        if (e.prefix) {
          store_place(p, updated);
          return updated;
        }
        // Postfix: capture the old value before the store clobbers a
        // scalar register.
        const VReg saved = fresh();
        emit_mov(saved, old);
        store_place(p, updated);
        return Value::r(saved);
      }
      case ExprKind::Ternary: {
        const int bb_then = new_block("sel.then");
        const int bb_else = new_block("sel.else");
        const int bb_join = new_block("sel.end");
        const VReg result = fresh();
        gen_cond(*e.cond, bb_then, bb_else);
        switch_to(bb_then);
        emit_mov(result, gen_value(*e.lhs));
        br_to(bb_join);
        switch_to(bb_else);
        emit_mov(result, gen_value(*e.rhs));
        br_to(bb_join);
        switch_to(bb_join);
        return Value::r(result);
      }
    }
    err(e, "unsupported expression");
  }

  Value gen_short_circuit(const Expr& e) {
    const int bb_true = new_block("sc.true");
    const int bb_false = new_block("sc.false");
    const int bb_join = new_block("sc.end");
    const VReg result = fresh();
    gen_cond(e, bb_true, bb_false);
    switch_to(bb_true);
    emit_mov(result, Value::i(1));
    br_to(bb_join);
    switch_to(bb_false);
    emit_mov(result, Value::i(0));
    br_to(bb_join);
    switch_to(bb_join);
    return Value::r(result);
  }

  Value gen_call(const Expr& e) {
    // Builtins.
    if (e.name == "out") {
      if (e.args.size() != 1) err(e, "out() takes one argument");
      IrInst inst;
      inst.op = IrOp::Out;
      inst.a = gen_value(*e.args[0]);
      emit(std::move(inst));
      return Value::i(0);
    }
    if (e.name == "min" || e.name == "max") {
      if (e.args.size() != 2) err(e, cat(e.name, "() takes two arguments"));
      const Value a = gen_value(*e.args[0]);
      const Value b = gen_value(*e.args[1]);
      return Value::r(
          emit_binary(e.name == "min" ? IrOp::Min : IrOp::Max, a, b));
    }
    if (e.name == "abs") {
      if (e.args.size() != 1) err(e, "abs() takes one argument");
      const Value a = gen_value(*e.args[0]);
      const Value neg = Value::r(emit_binary(IrOp::Sub, Value::i(0), a));
      return Value::r(emit_binary(IrOp::Max, a, neg));
    }

    const auto sig = sigs_.find(e.name);
    if (sig == sigs_.end()) {
      err(e, cat("call to undeclared function `", e.name, "`"));
    }
    if (sig->second.param_is_array.size() != e.args.size()) {
      err(e, cat("`", e.name, "` expects ",
                 sig->second.param_is_array.size(), " arguments, got ",
                 e.args.size()));
    }
    IrInst inst;
    inst.op = IrOp::Call;
    inst.callee = e.name;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (sig->second.param_is_array[i]) {
        inst.args.push_back(array_base(*e.args[i]));
      } else {
        inst.args.push_back(gen_value(*e.args[i]));
      }
    }
    if (sig->second.returns_value) inst.dst = fresh();
    const VReg dst = inst.dst;
    emit(std::move(inst));
    return dst == ir::kNoVReg ? Value::i(0) : Value::r(dst);
  }

  const Unit& unit_;
  ir::Module module_;
  std::unordered_map<std::string, Symbol> globals_;
  std::unordered_map<std::string, FuncSig> sigs_;
};

}  // namespace

ir::Module generate_ir(const Unit& unit) { return IrGen(unit).run(); }

ir::Module compile_to_ir(std::string_view source) {
  obs::Span span("compile_to_ir", "frontend");
  span.arg("source_bytes", static_cast<std::uint64_t>(source.size()));
  std::vector<Token> tokens;
  {
    obs::Span s("lex", "frontend");
    tokens = lex(source);
  }
  Unit unit;
  {
    obs::Span s("parse", "frontend");
    unit = parse(tokens);
  }
  ir::Module module;
  {
    obs::Span s("irgen", "frontend");
    module = generate_ir(unit);
  }
  {
    obs::Span s("verify_ir", "frontend");
    ir::verify_module(module);
  }
  return module;
}

}  // namespace cepic::minic
