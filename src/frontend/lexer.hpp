// Lexer for MiniC, the C subset the CEPIC toolchain compiles (the role
// filled by IMPACT's C front-end in the paper's Trimaran flow).
// Supported: `int`/`void`, functions, `int[]` parameters, globals with
// initialiser lists or string literals, full C expression grammar with
// `>>>` (logical shift right, since `>>` is arithmetic on MiniC ints),
// character literals, decimal/hex integers, `//` and `/* */` comments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cepic::minic {

enum class Tok : std::uint8_t {
  End,
  Ident,
  IntLit,
  StrLit,
  // keywords
  KwInt, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwDo,
  KwReturn, KwBreak, KwContinue,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Question, Colon,
  // operators
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Lt, Gt, Le, Ge, EqEq, NotEq,
  AmpAmp, PipePipe,
  Shl, Shr, Sar,  // << >>(arith) >>>(logical)
  Assign,
  PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
  AmpEq, PipeEq, CaretEq, ShlEq, ShrEq,
  PlusPlus, MinusMinus,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       ///< identifier name or string-literal bytes
  std::int64_t value = 0; ///< integer literal value
  int line = 1;
  int col = 1;
};

/// Tokenise a whole translation unit. Throws CompileError on bad input.
std::vector<Token> lex(std::string_view source);

/// Human-readable token-kind name for diagnostics.
const char* tok_name(Tok t);

}  // namespace cepic::minic
