#include <utility>

#include "frontend/ast.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::minic {

namespace {

class Parser {
public:
  explicit Parser(const std::vector<Token>& tokens) : toks_(tokens) {}

  Unit parse_unit() {
    Unit unit;
    while (!at(Tok::End)) {
      // Both globals and functions start with `int`/`void`.
      const bool is_void = at(Tok::KwVoid);
      if (is_void) {
        advance();
      } else {
        expect(Tok::KwInt, "declaration");
      }
      const Token name = expect(Tok::Ident, "declaration name");
      if (at(Tok::LParen)) {
        unit.functions.push_back(parse_function(name, !is_void));
      } else {
        if (is_void) error(name, "globals must be `int`");
        unit.globals.push_back(parse_decl_tail(name));
      }
    }
    return unit;
  }

private:
  [[noreturn]] void error(const Token& t, const std::string& msg) const {
    throw CompileError(cat(msg, " (got ", tok_name(t.kind), ")"), t.line,
                       t.col);
  }

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }

  bool at(Tok kind) const { return peek().kind == kind; }

  const Token& advance() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

  bool match(Tok kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  const Token& expect(Tok kind, const std::string& what) {
    if (!at(kind)) error(peek(), cat("expected ", tok_name(kind), " in ", what));
    return advance();
  }

  template <typename... Args>
  ExprPtr make_expr(ExprKind kind, const Token& loc, Args&&... init) {
    auto e = std::make_unique<Expr>(std::forward<Args>(init)...);
    e->kind = kind;
    e->line = loc.line;
    e->col = loc.col;
    return e;
  }

  StmtPtr make_stmt(StmtKind kind, const Token& loc) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = loc.line;
    s->col = loc.col;
    return s;
  }

  // ---- declarations ----

  FuncDecl parse_function(const Token& name, bool returns_value) {
    FuncDecl fn;
    fn.name = name.text;
    fn.returns_value = returns_value;
    fn.line = name.line;
    fn.col = name.col;
    expect(Tok::LParen, "parameter list");
    if (!at(Tok::RParen)) {
      do {
        if (match(Tok::KwVoid)) break;  // `f(void)`
        expect(Tok::KwInt, "parameter");
        const Token pname = expect(Tok::Ident, "parameter name");
        ParamDecl p;
        p.name = pname.text;
        p.line = pname.line;
        p.col = pname.col;
        if (match(Tok::LBracket)) {
          expect(Tok::RBracket, "array parameter");
          p.is_array = true;
        }
        fn.params.push_back(std::move(p));
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "parameter list");
    fn.body = parse_block();
    return fn;
  }

  /// Parses the remainder of `int NAME ...;` (global or local decl).
  StmtPtr parse_decl_tail(const Token& name) {
    StmtPtr s = make_stmt(StmtKind::Decl, name);
    s->name = name.text;
    if (match(Tok::LBracket)) {
      s->is_array = true;
      if (at(Tok::RBracket)) {
        s->array_size = -1;  // size from initialiser
      } else {
        ExprPtr size = parse_expr();
        s->expr = std::move(size);  // temporarily park the size expression
        // The IR generator const-folds this; store it in init position.
        s->array_size = -2;  // marker: size expression in s->expr
      }
      expect(Tok::RBracket, "array declaration");
    }
    if (match(Tok::Assign)) {
      if (s->is_array) {
        if (at(Tok::StrLit)) {
          const Token& lit = advance();
          s->has_str_init = true;
          s->str_init = lit.text;
        } else {
          expect(Tok::LBrace, "array initialiser");
          s->has_init_list = true;
          if (!at(Tok::RBrace)) {
            do {
              s->init_list.push_back(parse_assignment());
            } while (match(Tok::Comma) && !at(Tok::RBrace));
          }
          expect(Tok::RBrace, "array initialiser");
        }
      } else {
        ExprPtr init = parse_assignment();
        s->has_init_list = true;
        s->init_list.push_back(std::move(init));
      }
    }
    expect(Tok::Semi, "declaration");
    return s;
  }

  // ---- statements ----

  StmtPtr parse_block() {
    const Token& brace = expect(Tok::LBrace, "block");
    StmtPtr s = make_stmt(StmtKind::Block, brace);
    while (!at(Tok::RBrace)) {
      if (at(Tok::End)) error(peek(), "unterminated block");
      s->body.push_back(parse_stmt());
    }
    expect(Tok::RBrace, "block");
    return s;
  }

  StmtPtr parse_stmt() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::LBrace:
        return parse_block();
      case Tok::Semi: {
        advance();
        return make_stmt(StmtKind::Empty, t);
      }
      case Tok::KwInt: {
        advance();
        const Token name = expect(Tok::Ident, "declaration name");
        return parse_decl_tail(name);
      }
      case Tok::KwIf: {
        advance();
        StmtPtr s = make_stmt(StmtKind::If, t);
        expect(Tok::LParen, "if condition");
        s->expr = parse_expr();
        expect(Tok::RParen, "if condition");
        s->then_s = parse_stmt();
        if (match(Tok::KwElse)) s->else_s = parse_stmt();
        return s;
      }
      case Tok::KwWhile: {
        advance();
        StmtPtr s = make_stmt(StmtKind::While, t);
        expect(Tok::LParen, "while condition");
        s->expr = parse_expr();
        expect(Tok::RParen, "while condition");
        s->then_s = parse_stmt();
        return s;
      }
      case Tok::KwDo: {
        advance();
        StmtPtr s = make_stmt(StmtKind::DoWhile, t);
        s->then_s = parse_stmt();
        expect(Tok::KwWhile, "do-while");
        expect(Tok::LParen, "do-while condition");
        s->expr = parse_expr();
        expect(Tok::RParen, "do-while condition");
        expect(Tok::Semi, "do-while");
        return s;
      }
      case Tok::KwFor: {
        advance();
        StmtPtr s = make_stmt(StmtKind::For, t);
        expect(Tok::LParen, "for header");
        if (!at(Tok::Semi)) {
          if (at(Tok::KwInt)) {
            advance();
            const Token name = expect(Tok::Ident, "declaration name");
            s->init = parse_decl_tail(name);  // consumes `;`
          } else {
            StmtPtr init = make_stmt(StmtKind::Expr, peek());
            init->expr = parse_expr();
            s->init = std::move(init);
            expect(Tok::Semi, "for header");
          }
        } else {
          advance();
        }
        if (!at(Tok::Semi)) s->expr = parse_expr();
        expect(Tok::Semi, "for header");
        if (!at(Tok::RParen)) {
          StmtPtr step = make_stmt(StmtKind::Expr, peek());
          step->expr = parse_expr();
          s->step = std::move(step);
        }
        expect(Tok::RParen, "for header");
        s->then_s = parse_stmt();
        return s;
      }
      case Tok::KwReturn: {
        advance();
        StmtPtr s = make_stmt(StmtKind::Return, t);
        if (!at(Tok::Semi)) s->expr = parse_expr();
        expect(Tok::Semi, "return");
        return s;
      }
      case Tok::KwBreak: {
        advance();
        expect(Tok::Semi, "break");
        return make_stmt(StmtKind::Break, t);
      }
      case Tok::KwContinue: {
        advance();
        expect(Tok::Semi, "continue");
        return make_stmt(StmtKind::Continue, t);
      }
      default: {
        StmtPtr s = make_stmt(StmtKind::Expr, t);
        s->expr = parse_expr();
        expect(Tok::Semi, "expression statement");
        return s;
      }
    }
  }

  // ---- expressions (C precedence, right-assoc assignment) ----

  ExprPtr parse_expr() { return parse_assignment(); }

  bool is_assign_op(Tok t) const {
    switch (t) {
      case Tok::Assign:
      case Tok::PlusEq:
      case Tok::MinusEq:
      case Tok::StarEq:
      case Tok::SlashEq:
      case Tok::PercentEq:
      case Tok::AmpEq:
      case Tok::PipeEq:
      case Tok::CaretEq:
      case Tok::ShlEq:
      case Tok::ShrEq:
        return true;
      default:
        return false;
    }
  }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_ternary();
    if (is_assign_op(peek().kind)) {
      const Token& op = advance();
      if (lhs->kind != ExprKind::Var && lhs->kind != ExprKind::Index) {
        error(op, "left side of assignment must be a variable or element");
      }
      ExprPtr e = make_expr(ExprKind::Assign, op);
      e->op = op.kind;
      e->lhs = std::move(lhs);
      e->rhs = parse_assignment();
      return e;
    }
    return lhs;
  }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_logical_or();
    if (!at(Tok::Question)) return cond;
    const Token& q = advance();
    ExprPtr e = make_expr(ExprKind::Ternary, q);
    e->cond = std::move(cond);
    e->lhs = parse_assignment();
    expect(Tok::Colon, "conditional expression");
    e->rhs = parse_ternary();
    return e;
  }

  ExprPtr parse_binary_chain(ExprPtr (Parser::*next)(),
                             std::initializer_list<Tok> ops) {
    ExprPtr lhs = (this->*next)();
    for (;;) {
      bool matched = false;
      for (Tok op : ops) {
        if (at(op)) {
          const Token& tok = advance();
          ExprPtr e = make_expr(ExprKind::Binary, tok);
          e->op = op;
          e->lhs = std::move(lhs);
          e->rhs = (this->*next)();
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr parse_logical_or() {
    return parse_binary_chain(&Parser::parse_logical_and, {Tok::PipePipe});
  }
  ExprPtr parse_logical_and() {
    return parse_binary_chain(&Parser::parse_bitor, {Tok::AmpAmp});
  }
  ExprPtr parse_bitor() {
    return parse_binary_chain(&Parser::parse_bitxor, {Tok::Pipe});
  }
  ExprPtr parse_bitxor() {
    return parse_binary_chain(&Parser::parse_bitand, {Tok::Caret});
  }
  ExprPtr parse_bitand() {
    return parse_binary_chain(&Parser::parse_equality, {Tok::Amp});
  }
  ExprPtr parse_equality() {
    return parse_binary_chain(&Parser::parse_relational,
                              {Tok::EqEq, Tok::NotEq});
  }
  ExprPtr parse_relational() {
    return parse_binary_chain(&Parser::parse_shift,
                              {Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge});
  }
  ExprPtr parse_shift() {
    return parse_binary_chain(&Parser::parse_additive,
                              {Tok::Shl, Tok::Shr, Tok::Sar});
  }
  ExprPtr parse_additive() {
    return parse_binary_chain(&Parser::parse_multiplicative,
                              {Tok::Plus, Tok::Minus});
  }
  ExprPtr parse_multiplicative() {
    return parse_binary_chain(&Parser::parse_unary,
                              {Tok::Star, Tok::Slash, Tok::Percent});
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::Minus:
      case Tok::Tilde:
      case Tok::Bang: {
        advance();
        ExprPtr e = make_expr(ExprKind::Unary, t);
        e->op = t.kind;
        e->rhs = parse_unary();
        return e;
      }
      case Tok::Plus:
        advance();
        return parse_unary();
      case Tok::PlusPlus:
      case Tok::MinusMinus: {
        advance();
        ExprPtr e = make_expr(ExprKind::IncDec, t);
        e->op = t.kind;
        e->prefix = true;
        e->lhs = parse_unary();
        if (e->lhs->kind != ExprKind::Var && e->lhs->kind != ExprKind::Index) {
          error(t, "++/-- needs a variable or element");
        }
        return e;
      }
      default:
        return parse_postfix();
    }
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      const Token& t = peek();
      if (t.kind == Tok::LBracket) {
        advance();
        ExprPtr idx = make_expr(ExprKind::Index, t);
        idx->lhs = std::move(e);
        idx->rhs = parse_expr();
        expect(Tok::RBracket, "index expression");
        e = std::move(idx);
      } else if (t.kind == Tok::PlusPlus || t.kind == Tok::MinusMinus) {
        advance();
        if (e->kind != ExprKind::Var && e->kind != ExprKind::Index) {
          error(t, "++/-- needs a variable or element");
        }
        ExprPtr inc = make_expr(ExprKind::IncDec, t);
        inc->op = t.kind;
        inc->prefix = false;
        inc->lhs = std::move(e);
        e = std::move(inc);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::IntLit: {
        advance();
        ExprPtr e = make_expr(ExprKind::IntLit, t);
        e->value = t.value;
        return e;
      }
      case Tok::Ident: {
        advance();
        if (at(Tok::LParen)) {
          advance();
          ExprPtr e = make_expr(ExprKind::Call, t);
          e->name = t.text;
          if (!at(Tok::RParen)) {
            do {
              e->args.push_back(parse_assignment());
            } while (match(Tok::Comma));
          }
          expect(Tok::RParen, "call");
          return e;
        }
        ExprPtr e = make_expr(ExprKind::Var, t);
        e->name = t.text;
        return e;
      }
      case Tok::LParen: {
        advance();
        ExprPtr e = parse_expr();
        expect(Tok::RParen, "parenthesised expression");
        return e;
      }
      default:
        error(t, "expected an expression");
    }
  }

  const std::vector<Token>& toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Unit parse(const std::vector<Token>& tokens) {
  CEPIC_CHECK(!tokens.empty() && tokens.back().kind == Tok::End,
              "token stream must end with End");
  return Parser(tokens).parse_unit();
}

}  // namespace cepic::minic
