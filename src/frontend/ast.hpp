// MiniC abstract syntax tree, produced by the parser and consumed by the
// IR generator (irgen.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/lexer.hpp"

namespace cepic::minic {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  IntLit,   ///< value
  Var,      ///< name
  Index,    ///< lhs[rhs] where lhs is a Var naming an array
  Call,     ///< name(args...)
  Unary,    ///< op rhs  (op in {-, ~, !})
  Binary,   ///< lhs op rhs
  Assign,   ///< lhs op= rhs (op == Assign for plain `=`)
  Ternary,  ///< cond ? lhs : rhs
  IncDec,   ///< ++/-- lhs (prefix or postfix)
};

struct Expr {
  ExprKind kind = ExprKind::IntLit;
  int line = 0;
  int col = 0;
  std::int64_t value = 0;     ///< IntLit
  std::string name;           ///< Var / Call
  Tok op = Tok::End;          ///< Unary/Binary/Assign operator, ++/--
  bool prefix = false;        ///< IncDec
  ExprPtr lhs;
  ExprPtr rhs;
  ExprPtr cond;               ///< Ternary condition
  std::vector<ExprPtr> args;  ///< Call arguments
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  Expr,
  Decl,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  Block,
  Empty,
};

struct Stmt {
  StmtKind kind = StmtKind::Empty;
  int line = 0;
  int col = 0;
  ExprPtr expr;   ///< Expr stmt / condition / return value / scalar init
  StmtPtr init;   ///< For initialiser (Decl or Expr stmt)
  StmtPtr step;   ///< For step (Expr stmt)
  StmtPtr then_s; ///< If-then, and loop bodies
  StmtPtr else_s; ///< If-else
  std::vector<StmtPtr> body;  ///< Block

  // Decl fields.
  std::string name;
  bool is_array = false;
  /// Declared element count; -1 when the size comes from the initialiser
  /// (`int a[] = {...}` / string).
  int array_size = -1;
  std::vector<ExprPtr> init_list;
  bool has_init_list = false;
  std::string str_init;
  bool has_str_init = false;
};

struct ParamDecl {
  std::string name;
  bool is_array = false;  ///< `int x[]` — passed as an address
  int line = 0;
  int col = 0;
};

struct FuncDecl {
  std::string name;
  bool returns_value = false;
  std::vector<ParamDecl> params;
  StmtPtr body;  ///< always a Block
  int line = 0;
  int col = 0;
};

/// A parsed translation unit: globals (as Decl statements) + functions.
struct Unit {
  std::vector<StmtPtr> globals;
  std::vector<FuncDecl> functions;
};

/// Parse a token stream. Throws CompileError on syntax errors.
Unit parse(const std::vector<Token>& tokens);

}  // namespace cepic::minic
