#include "pipeline/store.hpp"

#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"
#include "pipeline/version.hpp"
#include "serial/serial.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::pipeline {

namespace {

namespace fs = std::filesystem;

GranularityStats& stats_for(StoreStats& s, Granularity g) {
  switch (g) {
    case Granularity::kIr: return s.ir;
    case Granularity::kAsm: return s.assembly;
    case Granularity::kLint: return s.lint;
    case Granularity::kIrLint: return s.ir_lint;
    default: return s.program;
  }
}

/// Directory naming per granularity.
const char* subdir(Granularity g) {
  switch (g) {
    case Granularity::kIr: return "ir";
    case Granularity::kAsm: return "asm";
    case Granularity::kLint: return "lint";
    case Granularity::kIrLint: return "irlint";
    default: return "prog";
  }
}

/// File extension, purely for humans poking at the store. IR and
/// Programs persist as CEPX containers.
const char* extension(Granularity g) {
  switch (g) {
    case Granularity::kIr: return ".cepx";
    case Granularity::kAsm: return ".s";
    case Granularity::kLint: return ".lint";
    case Granularity::kIrLint: return ".irlint";
    default: return ".cepx";
  }
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return s;
}

/// Contents of the `format` marker each versioned directory carries.
/// Bump together with the store layout (not the artifact schema — that
/// is what the version tag is for).
constexpr std::string_view kFormatMarker = "cepx-store 2\n";

std::span<const std::uint8_t> as_bytes(std::string_view blob) {
  return {reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()};
}

std::string_view as_view(const std::vector<std::uint8_t>& bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

}  // namespace

const char* to_string(Granularity g) {
  switch (g) {
    case Granularity::kIr: return "ir";
    case Granularity::kAsm: return "asm";
    case Granularity::kLint: return "lint";
    case Granularity::kIrLint: return "irlint";
    default: return "program";
  }
}

std::string to_string(const ArtifactId& id) {
  return cat(to_string(id.granularity), ":", hex16(id.digest));
}

Store::Store(const std::string& root, std::string version_tag) {
  if (root.empty()) return;  // degenerate: behave as memory-only
  if (version_tag.empty()) version_tag = store_version_tag();

  // A store *root* contains version-tag directories; a *versioned*
  // directory contains the per-granularity subtrees. Someone pointing
  // the root at a versioned directory (old layout, or a copy-paste of
  // an inner path) would silently shadow every artifact, so reject it.
  const fs::path root_path(root);
  for (const char* g : {"ir", "asm", "prog", "lint", "irlint"}) {
    std::error_code ec;
    if (fs::is_directory(root_path / g, ec)) {
      throw Error(cat(
          "store root ", root, " looks like a versioned artifact directory "
          "(contains '", g, "/'); pass the store root, not a version "
          "subdirectory — old-layout stores must be re-produced"));
    }
  }

  dir_ = (root_path / version_tag).string();
  const fs::path marker = fs::path(dir_) / "format";
  std::error_code ec;
  if (fs::exists(fs::path(dir_), ec)) {
    std::ifstream in(marker, std::ios::binary);
    std::ostringstream ss;
    if (in) ss << in.rdbuf();
    if (!in || ss.str() != kFormatMarker) {
      throw Error(cat(
          "store directory ", dir_, " was not written by this toolchain "
          "(missing or mismatched format marker); delete it or point the "
          "store elsewhere — old-layout stores must be re-produced"));
    }
    return;
  }
  fs::create_directories(fs::path(dir_), ec);
  if (ec) throw Error(cat("cannot create store directory ", dir_));
  std::ofstream out(marker, std::ios::binary | std::ios::trunc);
  if (!out ||
      !out.write(kFormatMarker.data(),
                 static_cast<std::streamsize>(kFormatMarker.size()))
           .flush()) {
    throw Error(cat("cannot write store format marker in ", dir_));
  }
}

std::string Store::object_path(const ArtifactId& id) const {
  return (fs::path(dir_) / subdir(id.granularity) /
          (hex16(id.digest) + extension(id.granularity)))
      .string();
}

bool Store::get(const ArtifactId& id, std::string& blob) {
  // Every typed get() funnels through this blob path, so one latency
  // seam covers memory hits, disk promotions and misses alike.
  obs::ScopedObserve latency("store.get_ns");
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto& map = mem_[static_cast<int>(id.granularity)];
    const auto it = map.find(id.digest);
    if (it != map.end()) {
      blob = it->second;
      ++stats_for(stats_, id.granularity).hits;
      return true;
    }
  }
  if (!dir_.empty()) {
    std::ifstream in(object_path(id), std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      blob = ss.str();
      std::unique_lock<std::mutex> lock(mu_);
      mem_[static_cast<int>(id.granularity)][id.digest] = blob;
      ++stats_for(stats_, id.granularity).hits;
      return true;
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_for(stats_, id.granularity).misses;
  return false;
}

void Store::put(const ArtifactId& id, std::string_view blob) {
  obs::ScopedObserve latency("store.put_ns");
  {
    std::unique_lock<std::mutex> lock(mu_);
    mem_[static_cast<int>(id.granularity)][id.digest] = std::string(blob);
    ++stats_for(stats_, id.granularity).puts;
  }
  if (dir_.empty()) return;
  const std::string path = object_path(id);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) throw Error(cat("cannot create store directory for ", path));
  // Temp file + rename: concurrent writers of the same key race only on
  // identical content, and readers never see a partial object. The
  // temp name carries the thread id so two threads never share one.
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  const std::string tmp = cat(path, ".tmp.", tid.str());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error(cat("cannot write store object ", tmp));
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.flush()) throw Error(cat("failed writing store object ", tmp));
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error(cat("cannot publish store object ", path));
  }
}

bool Store::get(const ArtifactId& id, ir::Module& out) {
  CEPIC_CHECK(id.granularity == Granularity::kIr,
              "Module artifacts live at Granularity::kIr");
  std::string blob;
  if (!get(id, blob)) return false;
  try {
    out = serial::decode_module(as_bytes(blob));
  } catch (const Error& e) {
    throw Error(cat("store artifact ", to_string(id), ": ", e.what()));
  }
  return true;
}

void Store::put(const ArtifactId& id, const ir::Module& module) {
  CEPIC_CHECK(id.granularity == Granularity::kIr,
              "Module artifacts live at Granularity::kIr");
  const std::vector<std::uint8_t> bytes = serial::encode_module(module);
  put(id, as_view(bytes));
}

bool Store::get(const ArtifactId& id, Program& out) {
  CEPIC_CHECK(id.granularity == Granularity::kProgram,
              "Program artifacts live at Granularity::kProgram");
  std::string blob;
  if (!get(id, blob)) return false;
  try {
    out = serial::decode_program(as_bytes(blob));
  } catch (const Error& e) {
    throw Error(cat("store artifact ", to_string(id), ": ", e.what()));
  }
  return true;
}

void Store::put(const ArtifactId& id, const Program& program) {
  CEPIC_CHECK(id.granularity == Granularity::kProgram,
              "Program artifacts live at Granularity::kProgram");
  const std::vector<std::uint8_t> bytes = serial::encode_program(program);
  put(id, as_view(bytes));
}

StoreStats Store::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cepic::pipeline
