#include "pipeline/store.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "pipeline/version.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::pipeline {

namespace {

namespace fs = std::filesystem;

GranularityStats& stats_for(StoreStats& s, Granularity g) {
  switch (g) {
    case Granularity::kIr: return s.ir;
    case Granularity::kAsm: return s.assembly;
    case Granularity::kLint: return s.lint;
    default: return s.program;
  }
}

/// Directory + file-extension naming per granularity. The extension is
/// purely for humans poking at the store.
const char* subdir(Granularity g) {
  switch (g) {
    case Granularity::kIr: return "ir";
    case Granularity::kAsm: return "asm";
    case Granularity::kLint: return "lint";
    default: return "prog";
  }
}

const char* extension(Granularity g) {
  switch (g) {
    case Granularity::kIr: return ".ir";
    case Granularity::kAsm: return ".s";
    case Granularity::kLint: return ".lint";
    default: return ".cepx";
  }
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return s;
}

}  // namespace

Store::Store(std::string root, std::string version_tag) {
  if (root.empty()) return;  // degenerate: behave as memory-only
  if (version_tag.empty()) version_tag = store_version_tag();
  dir_ = (fs::path(root) / version_tag).string();
}

std::string Store::object_path(Granularity g, std::uint64_t key) const {
  return (fs::path(dir_) / subdir(g) / (hex16(key) + extension(g))).string();
}

bool Store::get(Granularity g, std::uint64_t key, std::string& blob) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto& map = mem_[static_cast<int>(g)];
    const auto it = map.find(key);
    if (it != map.end()) {
      blob = it->second;
      ++stats_for(stats_, g).hits;
      return true;
    }
  }
  if (!dir_.empty()) {
    std::ifstream in(object_path(g, key), std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      blob = ss.str();
      std::unique_lock<std::mutex> lock(mu_);
      mem_[static_cast<int>(g)][key] = blob;
      ++stats_for(stats_, g).hits;
      return true;
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_for(stats_, g).misses;
  return false;
}

void Store::put(Granularity g, std::uint64_t key, std::string_view blob) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    mem_[static_cast<int>(g)][key] = std::string(blob);
    ++stats_for(stats_, g).puts;
  }
  if (dir_.empty()) return;
  const std::string path = object_path(g, key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) throw Error(cat("cannot create store directory for ", path));
  // Temp file + rename: concurrent writers of the same key race only on
  // identical content, and readers never see a partial object. The
  // temp name carries the thread id so two threads never share one.
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  const std::string tmp = cat(path, ".tmp.", tid.str());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error(cat("cannot write store object ", tmp));
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.flush()) throw Error(cat("failed writing store object ", tmp));
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error(cat("cannot publish store object ", path));
  }
}

StoreStats Store::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cepic::pipeline
