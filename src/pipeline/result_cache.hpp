// Simulation-result cache for the batch pipeline (and, historically,
// the exploration engine). A point's simulation outcome is fully
// determined by (MiniC source, compile options, ProcessorConfig,
// simulation memory/cycle limits); the pipeline keys entries by a pair
// of stable 64-bit hashes covering exactly that material and every
// repeated point — within one batch or across tool invocations via the
// on-disk file — is free. Only the *simulation* outcome is cached
// (cycle count, committed ops, OUT-stream fingerprint, return value);
// the analytic area/power model is recomputed from the config on every
// run, which keeps every cached field an integer and the file format
// trivially round-trippable.
//
// File format: one `v1` line per entry, `#` comments; unknown or
// malformed lines are ignored on load so stale files never break a run.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace cepic::pipeline {

/// Cached simulation outcome of one (source, config) point.
struct CacheEntry {
  std::uint64_t cycles = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t output_words = 0;  ///< length of the OUT stream
  std::uint64_t output_hash = 0;   ///< FNV-1a fingerprint of the stream
  std::uint32_t ret = 0;           ///< main's return value (r3)

  bool operator==(const CacheEntry&) const = default;
};

class ResultCache {
public:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  ///< (source, config)

  /// Merge entries from `path` into the cache. A missing file is not an
  /// error (first run); malformed lines are skipped. Returns the number
  /// of entries loaded.
  std::size_t load_file(const std::string& path);

  /// Write every entry to `path` (full rewrite, deterministic order).
  /// Throws Error if the file cannot be written.
  void save_file(const std::string& path) const;

  /// Thread-safe lookup; counts a hit or miss.
  bool lookup(const Key& key, CacheEntry& out) const;

  /// Thread-safe insert (last writer wins; entries for the same key are
  /// identical by construction).
  void insert(const Key& key, const CacheEntry& entry);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

private:
  mutable std::mutex mu_;
  std::map<Key, CacheEntry> entries_;  ///< ordered => deterministic save
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace cepic::pipeline
