// cepic::pipeline — the unified compile/run surface of the toolchain.
//
// A pipeline::Service owns (a) a content-addressed store of compilation
// artifacts at three granularities (optimised IR, assembly text,
// assembled Program) and (b) a shared thread-pool scheduler that runs
// compile and simulate steps of a batch as separate dependency-ordered
// tasks. Everything — explore::run_sweep, the cepic-cc / cepic-sim /
// cepic-explore tools, the benches, the tests — is a client of this
// API; the historical driver:: shim layer is gone (docs/PIPELINE.md
// records the migration), with compile_once()/run_once() below as the
// one-shot spellings.
//
// ## The options partition (what makes artifact sharing sound)
//
// Options::codegen holds everything that can change the bytes the
// compiler or assembler produce; Options::sim holds everything that can
// only change how an already-assembled Program behaves under
// simulation. Store keys are derived exclusively from the codegen
// partition plus the *codegen-relevant slice* of the ProcessorConfig:
//
//   affects-codegen (keyed):
//     ProcessorConfig: num_alus, num_gprs, num_preds, num_btrs,
//       issue_width, datapath_width, max_regs_per_instr,
//       reg_port_budget, forwarding, load_latency, alu features,
//       custom_ops. (Note: reg_port_budget, forwarding and load_latency
//       feed the backend *scheduler* in this implementation, so unlike
//       on the real hardware they change the emitted bundles and must
//       be keyed.)
//     CodegenOptions: every optimiser flag, backend options, optimize.
//     SimOptions::mem_size — the one deliberate exception: the run/
//       run_batch paths derive the backend's stack-top constant from it
//       (exactly as the old driver did), so it is folded into the
//       codegen keys.
//   affects-simulation-only (never keyed into artifacts):
//     ProcessorConfig: pipeline_stages, unified_memory_contention —
//       the compiler, scheduler and assembler never read these, which
//       is why sweep points differing only in them share one compiled
//       Program. codegen_slice() is the normative definition.
//     SimOptions: max_cycles, trace collection.
//
// Violating the partition (e.g. making the backend read
// pipeline_stages) without moving the field into codegen_slice() /
// the key material is a correctness bug: the store would serve stale
// code. tests/test_pipeline.cpp pins the partition down.
//
// There is a second, dual slice: sim_slice() resets the fields the
// *simulator* never reads (num_alus feeds only Mdes::units(), which the
// simulator never calls; max_regs_per_instr feeds only mcheck and the
// assembler's validator). run_batch() uses it to deduplicate
// simulations: two batch items whose compiled Programs are
// byte-identical once their configs are canonicalised to the sim slice
// must produce identical outcomes, so only the first one runs and the
// rest share its result (ServiceStats::sim_dedup_hits counts them).
// This fires across compile groups — e.g. max_regs_per_instr 4 vs 3
// compile separately but usually schedule to the same bundles.
//
// ## Determinism contract
//
// Batch outcomes are stored at their (source, config) slot and are pure
// functions of the inputs, so results are byte-identical for any jobs
// count and any cache temperature (cold, warm store, warm result
// cache). tests/test_pipeline.cpp and the CI cache-correctness job
// assert this literally.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/irlint.hpp"
#include "backend/backend.hpp"
#include "core/config.hpp"
#include "core/program.hpp"
#include "ir/ir.hpp"
#include "opt/opt.hpp"
#include "pipeline/result_cache.hpp"
#include "pipeline/store.hpp"
#include "sim/simulator.hpp"

namespace cepic::pipeline {

/// The affects-codegen option partition (see the header comment).
struct CodegenOptions {
  opt::OptOptions opt;
  backend::BackendOptions backend;
  bool optimize = true;
};

/// One consolidated options struct for the whole pipeline, replacing
/// the old EpicCompileOptions / SimOptions / cache-flag spread.
struct Options {
  /// Affects-codegen: keyed into every store key.
  CodegenOptions codegen;
  /// Affects-simulation-only, except mem_size (see header comment).
  SimOptions sim;
  /// Worker threads for run_batch; 0 means "all hardware threads".
  /// Infrastructure — never keyed, never changes any output byte.
  unsigned jobs = 1;
  /// Root of the persistent content-addressed store; empty keeps all
  /// artifact sharing in-memory (within this Service only). Artifacts
  /// live under `<store_dir>/<store_version_tag()>/`.
  std::string store_dir;
  /// Simulation-result cache file. Empty + persistent store => the
  /// default `<store_dir>/<version>/results.cache`; empty + no store
  /// => no result persistence. (Kept separate from the store because
  /// entries are keyed per *simulation*, not per artifact.)
  std::string result_cache_file;
  /// Run the mcheck machine-code verifier over every compiled Program
  /// and refuse (throw / fail the batch item) on rule errors. Reports
  /// are cached in the store at Granularity::kLint under the program's
  /// artifact key — sound because mcheck reads only the codegen slice
  /// of the configuration. Never changes artifact bytes, so it is not
  /// part of the store key material; it *is* folded into the
  /// result-cache context (a "verified" result must mean verified).
  bool verify = false;
  /// Escalate mcheck warnings (port-budget, latency) to failures too.
  bool verify_werror = false;
};

/// Everything compile() produces; the from-store flags say which
/// granularities were served without recompilation.
struct CompileArtifacts {
  ir::Module module;     ///< optimised IR
  std::string asm_text;  ///< backend output fed to the assembler
  Program program;       ///< assembled machine code, config == requested
  bool asm_from_store = false;
  bool program_from_store = false;
};

/// Outcome of one batch item ((source, config) pair). When `ok` is
/// false the item failed to compile or simulate and `error` carries the
/// diagnostic; the metric fields are zero.
struct RunOutcome {
  bool ok = false;
  std::string error;
  bool from_result_cache = false;  ///< simulation skipped entirely

  std::uint64_t cycles = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t output_words = 0;
  std::uint64_t output_hash = 0;  ///< FNV-1a fingerprint of the OUT stream
  std::uint32_t ret = 0;          ///< main's return value (r3)
};

/// Counters for `--cache-stats`. compiles() == 0 on a fully warm run is
/// the "zero recompilations" acceptance signal.
struct ServiceStats {
  StoreStats store;                  ///< per-granularity blob hits/misses
  std::uint64_t frontend_runs = 0;   ///< MiniC -> optimised IR executions
  std::uint64_t backend_runs = 0;    ///< IR -> assembly executions
  std::uint64_t assemble_runs = 0;   ///< assembly -> Program executions
  std::uint64_t module_decodes = 0;  ///< Modules loaded from the binary
                                     ///< store (no reparse, no frontend)
  std::uint64_t simulations = 0;     ///< cycle-level simulations executed
  std::uint64_t lint_runs = 0;       ///< mcheck verifications executed
  std::uint64_t ir_lint_runs = 0;    ///< IR-level lint executions
  std::uint64_t result_hits = 0;     ///< batch items served from results
  std::uint64_t result_misses = 0;
  /// Batch items answered by another item's in-flight simulation (same
  /// program bytes under sim_slice()-canonical config).
  std::uint64_t sim_dedup_hits = 0;

  /// Total compilation-stage executions (any stage, any granularity).
  std::uint64_t compiles() const {
    return frontend_runs + backend_runs + assemble_runs;
  }
};

/// Fold a ServiceStats snapshot into the global obs::Registry as
/// absolute `pipeline.*` / `store.*` counters, so `--metrics-json` and
/// the unified `--cache-stats` report render from one source of truth.
void publish_stats(const ServiceStats& stats);

class Service {
public:
  explicit Service(Options options = {});

  const Options& options() const { return options_; }

  /// The codegen-relevant slice of a configuration: `config` with every
  /// affects-simulation-only field reset to its default. Two configs
  /// with equal slices share all compiled artifacts. This is the
  /// normative definition of the options partition for ProcessorConfig.
  static ProcessorConfig codegen_slice(const ProcessorConfig& config);

  /// The simulation-relevant slice of a configuration: `config` with
  /// every field the simulator never reads reset to its default. Two
  /// batch items whose Programs serialize identically under this slice
  /// simulate identically; run_batch() dedupes on that digest.
  static ProcessorConfig sim_slice(const ProcessorConfig& config);

  // --- single-shot API (replaces the driver:: entry points) ---

  /// MiniC -> optimised IR. Shared across every config; repeated calls
  /// with the same source build the IR once per Service, and a warm
  /// persistent store serves the Module as a packed CEPX binary —
  /// decoded, never reparsed (ServiceStats::module_decodes counts it).
  ir::Module compile_module(std::string_view source);

  /// Printed optimised IR, served from the store when possible (the
  /// IR granularity persists as text).
  std::string compile_ir_text(std::string_view source);

  /// IR-level lint (analysis::lint_module) over the optimised module
  /// for `source`. Config-independent — like the kIr artifact it is
  /// keyed by source + optimiser options only — and cached in the store
  /// at Granularity::kIrLint under the IR artifact's digest, so a warm
  /// store serves the report without rebuilding or re-analysing the IR.
  /// The cached blob is werror-independent; `werror` is folded into the
  /// returned report at read time. (Rule filtering is not cached —
  /// callers needing a rule subset should lint the module directly.)
  analysis::LintReport lint_ir(std::string_view source, bool werror = false);

  /// MiniC -> assembly for `config`, store-served when possible.
  std::string compile_asm(std::string_view source,
                          const ProcessorConfig& config);

  /// MiniC -> assembled Program for `config`, store-served when
  /// possible. The returned Program always carries the full requested
  /// `config` (store blobs are canonicalised to the codegen slice and
  /// re-stamped on the way out).
  Program compile_program(std::string_view source,
                          const ProcessorConfig& config);

  /// All three granularities at once.
  CompileArtifacts compile(std::string_view source,
                           const ProcessorConfig& config);

  /// Compile (store-served) and simulate; returns the simulator so
  /// callers can inspect stats, outputs and state. `main`'s return
  /// value is left in r3. Like the old driver, the backend's stack-top
  /// constant is derived from sim.mem_size on this path.
  EpicSimulator run(std::string_view source, const ProcessorConfig& config);

  // --- batch API (the shared scheduler) ---

  /// Compile and simulate every (source, config) pair: outcome of
  /// sources[w] on configs[p] lands at index `w * configs.size() + p`.
  /// One compile task per unique (source, codegen-slice) feeds the
  /// simulate tasks that depend on it through one shared thread pool;
  /// items already answered by the result cache schedule no work at
  /// all. Per-item failures are captured in the RunOutcome; only
  /// infrastructure failures (unwritable store/cache) escape.
  std::vector<RunOutcome> run_batch(const std::vector<std::string>& sources,
                                    const std::vector<ProcessorConfig>& configs);

  /// Snapshot of all counters since construction.
  ServiceStats stats() const;

  /// Fold the current ServiceStats snapshot into the global
  /// obs::Registry as absolute `pipeline.*` / `store.*` counters, so
  /// `--metrics-json` and the unified `--cache-stats` report see them.
  void publish_stats() const;

private:
  /// Handle of the shared optimised-IR artifact for `source`.
  ArtifactId ir_artifact(std::string_view source) const;
  /// Handle of a per-config artifact: `g` is kAsm, kProgram or kLint
  /// (kLint shares the program's digest — one report per Program).
  ArtifactId artifact(Granularity g, std::string_view source,
                      const ProcessorConfig& slice,
                      std::uint32_t stack_top) const;
  std::string compile_asm_at(std::string_view source,
                             const ProcessorConfig& config,
                             std::uint32_t stack_top, bool* from_store);
  Program compile_program_at(std::string_view source,
                             const ProcessorConfig& config,
                             std::uint32_t stack_top, bool* from_store);
  /// The Options::verify gate: lint `program` (store-cached at
  /// `lint_id`, sharing the program artifact's digest) and throw Error
  /// with the rendered report when it is not clean.
  void verify_program(const Program& program, const ArtifactId& lint_id);
  std::string result_cache_path() const;

  Options options_;
  Store store_;
  std::string codegen_text_;  ///< canonical codegen-options key material

  mutable std::mutex mu_;
  std::mutex build_mu_;  ///< serialises IR builds so each runs once
  std::map<std::uint64_t, ir::Module> modules_;  ///< ir digest -> IR
  std::uint64_t frontend_runs_ = 0;
  std::uint64_t backend_runs_ = 0;
  std::uint64_t assemble_runs_ = 0;
  std::uint64_t module_decodes_ = 0;
  std::uint64_t simulations_ = 0;
  std::uint64_t lint_runs_ = 0;
  std::uint64_t ir_lint_runs_ = 0;
  std::uint64_t result_hits_ = 0;
  std::uint64_t result_misses_ = 0;
  std::uint64_t sim_dedup_hits_ = 0;
};

/// One-shot convenience: compile `source` for `config` with a fresh,
/// memory-only Service. For anything that compiles more than once,
/// wants the persistent store, or runs batches, hold a Service instead.
CompileArtifacts compile_once(std::string_view source,
                              const ProcessorConfig& config,
                              const CodegenOptions& codegen = {});

/// One-shot convenience: compile and simulate with a fresh, memory-only
/// Service; returns the simulator so callers can inspect stats, outputs
/// and state. `main`'s return value is left in r3.
EpicSimulator run_once(std::string_view source, const ProcessorConfig& config,
                       const CodegenOptions& codegen = {},
                       const SimOptions& sim = {});

}  // namespace cepic::pipeline
