// Fixed-size thread-pool executor shared by the whole compile/simulate
// pipeline. Compile and simulate steps are submitted as separate tasks;
// a task may submit further tasks from inside its body (that is how
// dependency ordering is expressed: a compile task enqueues the
// simulate tasks that need its artifact once it holds one), and wait()
// blocks the submitter until the whole transitive set has drained. A
// pool of size 1 spawns no threads at all and runs tasks inline in
// submit(), so `--jobs 1` is a plain serial loop with zero
// synchronisation overhead and trivially deterministic scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cepic::pipeline {

class ThreadPool {
public:
  /// `threads` is clamped to at least 1; pass hardware_jobs() for "all
  /// cores".
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned concurrency() const { return threads_; }

  /// Enqueue a task. Tasks must not throw — wrap fallible work and
  /// capture errors in the result slot instead. Safe to call from
  /// inside a running task (nested submission keeps wait() blocked
  /// until the new task finishes too).
  void submit(std::function<void()> task);

  /// Block until every submitted task — including tasks submitted by
  /// other tasks — has finished. The pool is reusable: more tasks may
  /// be submitted afterwards.
  void wait();

  /// std::thread::hardware_concurrency(), never less than 1.
  static unsigned hardware_jobs();

private:
  void worker();

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  bool stop_ = false;
};

}  // namespace cepic::pipeline
