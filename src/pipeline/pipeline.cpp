#include "pipeline/pipeline.hpp"

#include <condition_variable>
#include <filesystem>
#include <memory>
#include <span>
#include <sstream>

#include "asmtool/assembler.hpp"
#include "core/custom.hpp"
#include "frontend/irgen.hpp"
#include "mcheck/mcheck.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "pipeline/thread_pool.hpp"
#include "pipeline/version.hpp"
#include "serial/serial.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::pipeline {

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// Canonical key material for the optimiser slice of CodegenOptions.
/// Every field is spelled out so that adding one without extending this
/// list shows up in review, not as a stale-artifact bug.  Deliberately
/// absent: verify_each_pass, verify_analyses and incremental, which are
/// check/scheduling knobs pinned byte-identical on the output by
/// tests/golden/optimize_digests.txt.
std::string opt_options_text(const opt::OptOptions& o, bool optimize) {
  return cat("optimize=", optimize ? 1 : 0, ";fold=", o.fold ? 1 : 0,
             ";copyprop=", o.copy_propagate ? 1 : 0, ";cse=", o.cse ? 1 : 0,
             ";licm=", o.licm ? 1 : 0, ";dce=", o.dce ? 1 : 0,
             ";simplify_cfg=", o.simplify_cfg ? 1 : 0,
             ";inline=", o.inline_calls ? 1 : 0,
             ";if_convert=", o.if_convert ? 1 : 0,
             ";inline_max=", o.inline_max_insts,
             ";if_convert_max=", o.if_convert_max_ops,
             ";rounds=", o.max_rounds);
}

/// Canonical key material for the backend slice (stack_top is passed
/// separately because run paths derive it from sim.mem_size).
std::string backend_options_text(const backend::BackendOptions& b,
                                 std::uint32_t stack_top) {
  return cat("schedule=", b.schedule ? 1 : 0,
             ";port_override=", b.test_override_port_budget,
             ";stack_top=", stack_top);
}

/// Werror-independent wire form of an IR lint report for the kIrLint
/// granularity: one diagnostic per line,
///   <rule> <severity> <block> <inst> <function>\t<message>
/// so a typed LintReport can be rebuilt on a store hit and rendered
/// with the *caller's* werror setting (mirroring how kLint caches the
/// mcheck report with werror applied only at the read gate).
std::string encode_ir_lint(const analysis::LintReport& report) {
  std::string blob;
  for (const analysis::LintDiagnostic& d : report.diags) {
    blob += cat(static_cast<unsigned>(d.rule), " ",
                static_cast<unsigned>(d.severity), " ", d.block, " ", d.inst,
                " ", d.function, "\t", d.message, "\n");
  }
  return blob;
}

analysis::LintReport decode_ir_lint(const std::string& blob) {
  analysis::LintReport report;
  std::istringstream in(blob);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    unsigned rule = 0;
    unsigned severity = 0;
    analysis::LintDiagnostic d;
    if (!(fields >> rule >> severity >> d.block >> d.inst) ||
        rule >= analysis::kNumLintRules || severity > 1) {
      throw Error(cat("corrupt IR-lint store artifact: `", line, "`"));
    }
    d.rule = static_cast<analysis::LintRule>(rule);
    d.severity = static_cast<analysis::LintSeverity>(severity);
    fields.get();  // the separator space before the function name
    std::getline(fields, d.function, '\t');
    std::getline(fields, d.message);
    report.diags.push_back(std::move(d));
  }
  return report;
}

}  // namespace

Service::Service(Options options)
    : options_(std::move(options)),
      store_(options_.store_dir),
      codegen_text_(opt_options_text(options_.codegen.opt,
                                     options_.codegen.optimize)) {}

ProcessorConfig Service::codegen_slice(const ProcessorConfig& config) {
  // The normative affects-simulation-only field list: everything the
  // compiler, scheduler and assembler never read. Keep in sync with the
  // partition documented in pipeline.hpp.
  static const ProcessorConfig kDefaults;
  ProcessorConfig slice = config;
  slice.pipeline_stages = kDefaults.pipeline_stages;
  slice.unified_memory_contention = kDefaults.unified_memory_contention;
  return slice;
}

ProcessorConfig Service::sim_slice(const ProcessorConfig& config) {
  // The dual slice: fields the *simulator* never reads. num_alus only
  // sizes Mdes::units(), which the simulator never queries (issue is
  // bounded by issue_width); max_regs_per_instr only gates mcheck and
  // the assembler's per-instruction validator. Everything else —
  // register file sizes, issue width, datapath width, port budget,
  // forwarding, latencies, feature trims, custom ops, pipeline_stages,
  // unified_memory_contention — changes simulated behaviour and stays.
  static const ProcessorConfig kDefaults;
  ProcessorConfig slice = config;
  slice.num_alus = kDefaults.num_alus;
  slice.max_regs_per_instr = kDefaults.max_regs_per_instr;
  return slice;
}

ArtifactId Service::ir_artifact(std::string_view source) const {
  return ArtifactId{
      Granularity::kIr,
      fnv1a64(source, fnv1a64(cat("ir|", store_version_tag(), "|",
                                  codegen_text_, "|")))};
}

ArtifactId Service::artifact(Granularity g, std::string_view source,
                             const ProcessorConfig& slice,
                             std::uint32_t stack_top) const {
  // kLint shares the program's digest: one verification report per
  // Program artifact.
  const std::string_view tag = g == Granularity::kAsm ? "asm" : "prog";
  const std::string material =
      cat(tag, "|", store_version_tag(), "|", codegen_text_, "|",
          backend_options_text(options_.codegen.backend, stack_top), "|",
          slice.to_text(), "|");
  return ArtifactId{g, fnv1a64(source, fnv1a64(material))};
}

ir::Module Service::compile_module(std::string_view source) {
  obs::Span span("compile_module", "pipeline");
  const ArtifactId id = ir_artifact(source);
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = modules_.find(id.digest);
    if (it != modules_.end()) {
      span.arg("cached", "memo");
      return it->second;
    }
  }
  // One builder at a time: concurrent compile tasks for the same source
  // (different configs) must not duplicate the frontend+optimiser work.
  std::unique_lock<std::mutex> build(build_mu_);
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = modules_.find(id.digest);
    if (it != modules_.end()) {
      span.arg("cached", "memo");
      return it->second;
    }
  }
  {
    // Warm store: the Module comes back as a packed CEPX binary — a
    // decode, not a reparse (no frontend span appears in the trace).
    ir::Module module;
    bool hit = false;
    {
      obs::Span decode_span("module_decode", "pipeline");
      hit = store_.get(id, module);
      if (!hit) decode_span.arg("cached", "miss");
    }
    if (hit) {
      span.arg("cached", "store");
      std::unique_lock<std::mutex> lock(mu_);
      ++module_decodes_;
      modules_[id.digest] = module;
      return module;
    }
  }
  span.arg("cached", "miss");
  ir::Module module = minic::compile_to_ir(source);
  if (options_.codegen.optimize) opt::optimize(module, options_.codegen.opt);
  store_.put(id, module);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++frontend_runs_;
    modules_[id.digest] = module;
  }
  return module;
}

std::string Service::compile_ir_text(std::string_view source) {
  return ir::to_string(compile_module(source));
}

analysis::LintReport Service::lint_ir(std::string_view source, bool werror) {
  obs::Span span("lint_ir", "pipeline");
  // Shares the IR artifact's digest: the lint is a pure function of the
  // optimised Module, which that digest already identifies.
  const ArtifactId id{Granularity::kIrLint, ir_artifact(source).digest};
  std::string blob;
  if (store_.get(id, blob)) {
    span.arg("cached", "store");
  } else {
    span.arg("cached", "miss");
    const ir::Module module = compile_module(source);
    blob = encode_ir_lint(analysis::lint_module(module));
    store_.put(id, blob);
    std::unique_lock<std::mutex> lock(mu_);
    ++ir_lint_runs_;
  }
  analysis::LintReport report = decode_ir_lint(blob);
  report.werror = werror;
  return report;
}

std::string Service::compile_asm_at(std::string_view source,
                                    const ProcessorConfig& config,
                                    std::uint32_t stack_top,
                                    bool* from_store) {
  obs::Span span("compile_asm", "pipeline");
  const ProcessorConfig slice = codegen_slice(config);
  const ArtifactId id = artifact(Granularity::kAsm, source, slice, stack_top);
  std::string blob;
  if (store_.get(id, blob)) {
    if (from_store) *from_store = true;
    span.arg("cached", "store");
    return blob;
  }
  if (from_store) *from_store = false;
  span.arg("cached", "miss");
  const ir::Module module = compile_module(source);
  backend::BackendOptions backend_options = options_.codegen.backend;
  backend_options.stack_top = stack_top;
  // Compile against the slice: identical output by the partition
  // contract, and canonical — the blob serves every simulation-only
  // variant of `config` byte-for-byte.
  std::string asm_text =
      backend::compile_ir_to_asm(module, slice, backend_options);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++backend_runs_;
  }
  store_.put(id, asm_text);
  return asm_text;
}

Program Service::compile_program_at(std::string_view source,
                                    const ProcessorConfig& config,
                                    std::uint32_t stack_top,
                                    bool* from_store) {
  obs::Span span("compile_program", "pipeline");
  obs::ScopedObserve latency("pipeline.compile_ns");
  const ProcessorConfig slice = codegen_slice(config);
  const ArtifactId id =
      artifact(Granularity::kProgram, source, slice, stack_top);
  const ArtifactId lint_id{Granularity::kLint, id.digest};
  Program program;
  if (store_.get(id, program)) {
    span.arg("cached", "store");
    // Verify against the canonical slice-stamped program (mcheck never
    // reads the simulation-only fields), then re-stamp.
    if (options_.verify) verify_program(program, lint_id);
    program.config = config;  // re-stamp simulation-only fields
    if (from_store) *from_store = true;
    return program;
  }
  if (from_store) *from_store = false;
  span.arg("cached", "miss");
  const std::string asm_text =
      compile_asm_at(source, config, stack_top, nullptr);
  program = asmtool::assemble(asm_text, slice);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++assemble_runs_;
  }
  store_.put(id, program);
  if (options_.verify) verify_program(program, lint_id);
  program.config = config;
  return program;
}

void Service::verify_program(const Program& program,
                             const ArtifactId& lint_id) {
  obs::Span span("verify", "pipeline");
  obs::ScopedObserve latency("pipeline.verify_ns");
  std::string blob;
  if (!store_.get(lint_id, blob)) {
    span.arg("cached", "miss");
    // Run with werror off so the cached report is werror-independent;
    // Options::verify_werror is applied at the gate below.
    const mcheck::Report report = mcheck::check_program(program);
    const std::uint64_t errors =
        report.count(mcheck::Severity::Error);
    const std::uint64_t warnings =
        report.count(mcheck::Severity::Warning);
    blob = cat(errors, " ", warnings, "\n", report.to_text());
    store_.put(lint_id, blob);
    std::unique_lock<std::mutex> lock(mu_);
    ++lint_runs_;
  }
  std::uint64_t errors = 0;
  std::uint64_t warnings = 0;
  std::string text;
  {
    std::istringstream in(blob);
    in >> errors >> warnings;
    std::string line;
    std::getline(in, line);  // rest of the count line
    std::ostringstream rest;
    rest << in.rdbuf();
    text = rest.str();
  }
  if (errors > 0 || (options_.verify_werror && warnings > 0)) {
    throw Error(cat("mcheck: program fails machine-code verification for ",
                    program.config.summary(), "\n", text));
  }
}

std::string Service::compile_asm(std::string_view source,
                                 const ProcessorConfig& config) {
  return compile_asm_at(source, config, options_.codegen.backend.stack_top,
                        nullptr);
}

Program Service::compile_program(std::string_view source,
                                 const ProcessorConfig& config) {
  return compile_program_at(source, config,
                            options_.codegen.backend.stack_top, nullptr);
}

CompileArtifacts Service::compile(std::string_view source,
                                  const ProcessorConfig& config) {
  CompileArtifacts artifacts;
  const std::uint32_t stack_top = options_.codegen.backend.stack_top;
  artifacts.module = compile_module(source);
  artifacts.asm_text =
      compile_asm_at(source, config, stack_top, &artifacts.asm_from_store);
  artifacts.program = compile_program_at(source, config, stack_top,
                                         &artifacts.program_from_store);
  return artifacts;
}

EpicSimulator Service::run(std::string_view source,
                           const ProcessorConfig& config) {
  // The backend's stack-top constant must match the simulated memory.
  Program program = compile_program_at(
      source, config, static_cast<std::uint32_t>(options_.sim.mem_size),
      nullptr);
  EpicSimulator sim(std::move(program),
                    CustomOpTable::for_names(config.custom_ops),
                    options_.sim);
  {
    obs::Span span("simulate", "pipeline");
    obs::ScopedObserve latency("pipeline.simulate_ns");
    sim.run();
    span.arg("cycles", sim.stats().cycles);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++simulations_;
  }
  return sim;
}

std::string Service::result_cache_path() const {
  if (!options_.result_cache_file.empty()) return options_.result_cache_file;
  if (store_.persistent()) {
    return (std::filesystem::path(store_.directory()) / "results.cache")
        .string();
  }
  return {};
}

std::vector<RunOutcome> Service::run_batch(
    const std::vector<std::string>& sources,
    const std::vector<ProcessorConfig>& configs) {
  const std::size_t cols = configs.size();
  std::vector<RunOutcome> outcomes(sources.size() * cols);

  ResultCache results;
  const std::string results_path = result_cache_path();
  if (!results_path.empty()) results.load_file(results_path);

  const std::uint32_t stack_top =
      static_cast<std::uint32_t>(options_.sim.mem_size);
  // Result-cache context: everything outside (source, config) that the
  // simulation outcome depends on. Folded into the key so a cache file
  // can never answer for different compile or simulation options.
  const std::uint64_t context = fnv1a64(
      cat("run|", store_version_tag(), "|", codegen_text_, "|",
          backend_options_text(options_.codegen.backend, stack_top),
          "|mem=", options_.sim.mem_size,
          ";max_cycles=", options_.sim.max_cycles,
          // Verification never changes a successful outcome's bytes,
          // but a cached "ok" must mean "ok under these verify
          // settings" — a non-verified result may answer for a program
          // the verifier would reject.
          ";verify=", options_.verify ? 1 : 0,
          ";verify_werror=", options_.verify_werror ? 1 : 0,
          // Execution tiers are differentially proven bit-identical,
          // but a cached result must never mask a tier divergence: a
          // hit may only answer for the tier that produced it.
          ";tier=", to_string(options_.sim.exec_tier)));

  struct Item {
    std::size_t index;   ///< slot in `outcomes`
    std::size_t source;  ///< index into `sources`
    std::size_t config;  ///< index into `configs`
    ResultCache::Key key;
  };
  // Items not answered by the result cache, grouped by program store
  // key: one compile task per group feeds its simulate tasks.
  std::map<std::uint64_t, std::vector<Item>> groups;

  // Simulation dedup across (and within) groups: keyed by the digest of
  // the compiled program serialized under its sim_slice()-canonical
  // config. The first task to claim a digest simulates; identical
  // later items wait for it and share the outcome. A claim is only ever
  // created by a running task, so waiters never block on unscheduled
  // work (with a 1-thread pool the claimer always finishes first).
  struct SimDedupEntry {
    bool done = false;
    bool ok = false;
    std::string error;
    CacheEntry result;
  };
  struct SimDedup {
    std::mutex m;
    std::condition_variable cv;
    std::map<std::uint64_t, SimDedupEntry> map;
  } dedup;

  for (std::size_t w = 0; w < sources.size(); ++w) {
    const std::uint64_t source_hash =
        fnv1a64(cat(hex64(fnv1a64(sources[w])), ":", hex64(context)));
    for (std::size_t p = 0; p < cols; ++p) {
      const std::size_t index = w * cols + p;
      RunOutcome& out = outcomes[index];
      try {
        configs[p].validate();
      } catch (const std::exception& e) {
        out.error = e.what();
        continue;
      }
      const ResultCache::Key key{source_hash, configs[p].stable_hash()};
      CacheEntry entry;
      if (results.lookup(key, entry)) {
        out.ok = true;
        out.from_result_cache = true;
        out.cycles = entry.cycles;
        out.ops_committed = entry.ops_committed;
        out.output_words = entry.output_words;
        out.output_hash = entry.output_hash;
        out.ret = entry.ret;
        continue;
      }
      groups[artifact(Granularity::kProgram, sources[w],
                      codegen_slice(configs[p]), stack_top)
                 .digest]
          .push_back(Item{index, w, p, key});
    }
  }

  {
    ThreadPool pool(options_.jobs == 0 ? ThreadPool::hardware_jobs()
                                       : options_.jobs);
    for (auto& [key, items] : groups) {
      (void)key;
      const std::vector<Item>* group = &items;
      const std::uint64_t submit_ns = obs::now_ns();
      pool.submit([this, group, &sources, &configs, &outcomes, &results,
                   &pool, &dedup, stack_top, submit_ns] {
        obs::Span task_span("batch.compile", "pipeline");
        const std::uint64_t wait_ns = obs::now_ns() - submit_ns;
        obs::observe("pipeline.queue_wait_ns", wait_ns);
        task_span.arg("queue_wait_ns", wait_ns);
        task_span.arg("group_items", static_cast<std::uint64_t>(group->size()));
        const Item& first = group->front();
        std::shared_ptr<const Program> shared;
        try {
          shared = std::make_shared<const Program>(
              compile_program_at(sources[first.source], configs[first.config],
                                 stack_top, nullptr));
        } catch (const std::exception& e) {
          // Leave the faulting task's last-moments trace behind (only
          // dumps when a --flight-out path is configured).
          obs::flight_record_fault(e.what());
          for (const Item& item : *group) outcomes[item.index].error = e.what();
          return;
        }
        for (const Item& item : *group) {
          const Item* it = &item;
          const std::uint64_t sim_submit_ns = obs::now_ns();
          pool.submit([this, shared, it, &configs, &outcomes, &results,
                       &dedup, sim_submit_ns] {
            obs::Span task_span("batch.simulate", "pipeline");
            const std::uint64_t wait_ns = obs::now_ns() - sim_submit_ns;
            obs::observe("pipeline.queue_wait_ns", wait_ns);
            task_span.arg("queue_wait_ns", wait_ns);
            RunOutcome& out = outcomes[it->index];
            const auto deliver = [&](const SimDedupEntry& e) {
              if (e.ok) {
                results.insert(it->key, e.result);
                out.ok = true;
                out.cycles = e.result.cycles;
                out.ops_committed = e.result.ops_committed;
                out.output_words = e.result.output_words;
                out.output_hash = e.result.output_hash;
                out.ret = e.result.ret;
              } else {
                out.ok = false;
                out.error = e.error;
              }
            };

            std::uint64_t digest = 0;
            {
              Program canon = *shared;
              canon.config = sim_slice(configs[it->config]);
              const std::vector<std::uint8_t> bytes =
                  serial::encode_program(canon);
              // Seed with the execution tier: dedup shares outcomes
              // within one run_batch call, and those must come from
              // the tier the caller asked for, not whichever identical
              // program claimed the digest first under another tier.
              digest = fnv1a64(
                  std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                   bytes.size()),
                  fnv1a64(to_string(options_.sim.exec_tier)));
            }
            std::map<std::uint64_t, SimDedupEntry>::iterator slot;
            {
              std::unique_lock<std::mutex> lk(dedup.m);
              const auto claim = dedup.map.try_emplace(digest);
              slot = claim.first;
              if (!claim.second) {
                dedup.cv.wait(lk, [&] { return slot->second.done; });
                // Copy the finished entry and drop dedup.m before
                // touching any other lock (the result cache inside
                // deliver, the stats mutex): every mutex on this path
                // stays a leaf, so no lock order can invert.
                const SimDedupEntry finished = slot->second;
                lk.unlock();
                deliver(finished);
                task_span.arg("dedup", "hit");
                std::unique_lock<std::mutex> lock(mu_);
                ++sim_dedup_hits_;
                return;
              }
            }

            SimDedupEntry entry;
            try {
              Program program = *shared;
              // Re-stamp the full config: the simulator reads the
              // simulation-only fields from Program::config.
              program.config = configs[it->config];
              EpicSimulator sim(
                  std::move(program),
                  CustomOpTable::for_names(configs[it->config].custom_ops),
                  options_.sim);
              {
                obs::ScopedObserve latency("pipeline.simulate_ns");
                sim.run();
              }
              entry.ok = true;
              entry.result.cycles = sim.stats().cycles;
              entry.result.ops_committed = sim.stats().ops_committed;
              entry.result.output_words = sim.output().size();
              entry.result.output_hash = fnv1a64_words(sim.output());
              entry.result.ret = sim.gpr(3);
              std::unique_lock<std::mutex> lock(mu_);
              ++simulations_;
            } catch (const std::exception& e) {
              obs::flight_record_fault(e.what());
              entry.ok = false;
              entry.error = e.what();
            }
            deliver(entry);
            {
              std::unique_lock<std::mutex> lk(dedup.m);
              slot->second = entry;
              slot->second.done = true;
            }
            dedup.cv.notify_all();
          });
        }
      });
    }
    pool.wait();
  }

  {
    // Snapshot the cache counters before taking the stats mutex so the
    // two locks never nest (keep mu_ a leaf lock).
    const std::uint64_t hits = results.hits();
    const std::uint64_t misses = results.misses();
    std::unique_lock<std::mutex> lock(mu_);
    result_hits_ += hits;
    result_misses_ += misses;
  }
  if (!results_path.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(results_path).parent_path(), ec);
    results.save_file(results_path);
  }
  return outcomes;
}

void publish_stats(const ServiceStats& s) {
  obs::Registry& r = obs::Registry::instance();
  r.set_counter("pipeline.frontend_runs", s.frontend_runs);
  r.set_counter("pipeline.backend_runs", s.backend_runs);
  r.set_counter("pipeline.assemble_runs", s.assemble_runs);
  r.set_counter("pipeline.module_decodes", s.module_decodes);
  r.set_counter("pipeline.simulations", s.simulations);
  r.set_counter("pipeline.lint_runs", s.lint_runs);
  r.set_counter("pipeline.ir_lint_runs", s.ir_lint_runs);
  r.set_counter("pipeline.result_hits", s.result_hits);
  r.set_counter("pipeline.result_misses", s.result_misses);
  r.set_counter("pipeline.sim_dedup_hits", s.sim_dedup_hits);
  r.set_counter("pipeline.compiles", s.compiles());
  const auto fold = [&r](const char* name, const GranularityStats& g) {
    r.set_counter(cat("store.", name, ".hits"), g.hits);
    r.set_counter(cat("store.", name, ".misses"), g.misses);
    r.set_counter(cat("store.", name, ".puts"), g.puts);
  };
  fold("ir", s.store.ir);
  fold("asm", s.store.assembly);
  fold("program", s.store.program);
  fold("lint", s.store.lint);
  fold("irlint", s.store.ir_lint);
}

void Service::publish_stats() const { pipeline::publish_stats(stats()); }

CompileArtifacts compile_once(std::string_view source,
                              const ProcessorConfig& config,
                              const CodegenOptions& codegen) {
  Options options;
  options.codegen = codegen;
  Service service(std::move(options));
  return service.compile(source, config);
}

EpicSimulator run_once(std::string_view source, const ProcessorConfig& config,
                       const CodegenOptions& codegen, const SimOptions& sim) {
  Options options;
  options.codegen = codegen;
  options.sim = sim;
  Service service(std::move(options));
  return service.run(source, config);
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.store = store_.stats();
  std::unique_lock<std::mutex> lock(mu_);
  s.frontend_runs = frontend_runs_;
  s.backend_runs = backend_runs_;
  s.assemble_runs = assemble_runs_;
  s.module_decodes = module_decodes_;
  s.simulations = simulations_;
  s.lint_runs = lint_runs_;
  s.ir_lint_runs = ir_lint_runs_;
  s.result_hits = result_hits_;
  s.result_misses = result_misses_;
  s.sim_dedup_hits = sim_dedup_hits_;
  return s;
}

}  // namespace cepic::pipeline
