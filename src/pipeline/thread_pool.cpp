#include "pipeline/thread_pool.hpp"

namespace cepic::pipeline {

ThreadPool::ThreadPool(unsigned threads) : threads_(threads < 1 ? 1 : threads) {
  if (threads_ == 1) return;  // inline mode: no workers
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

unsigned ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n < 1 ? 1 : n;
}

}  // namespace cepic::pipeline
