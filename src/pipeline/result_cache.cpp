#include "pipeline/result_cache.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::pipeline {

namespace {

bool parse_u64(std::string_view s, std::uint64_t& out, bool hex) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    unsigned digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<unsigned>(c - '0');
    } else if (hex && c >= 'a' && c <= 'f') {
      digit = static_cast<unsigned>(c - 'a') + 10;
    } else {
      return false;
    }
    const std::uint64_t base = hex ? 16 : 10;
    if (v > (~std::uint64_t{0} - digit) / base) return false;  // overflow
    v = v * base + digit;
  }
  out = v;
  return true;
}

std::string to_hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

std::size_t ResultCache::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto fields = split_ws(line);
    // v1 <src_hash hex> <cfg_hash hex> <cycles> <ops> <words> <hash hex> <ret>
    if (fields.size() != 8 || fields[0] != "v1") continue;
    Key key;
    CacheEntry e;
    std::uint64_t ret64 = 0;
    if (!parse_u64(fields[1], key.first, /*hex=*/true)) continue;
    if (!parse_u64(fields[2], key.second, /*hex=*/true)) continue;
    if (!parse_u64(fields[3], e.cycles, /*hex=*/false)) continue;
    if (!parse_u64(fields[4], e.ops_committed, /*hex=*/false)) continue;
    if (!parse_u64(fields[5], e.output_words, /*hex=*/false)) continue;
    if (!parse_u64(fields[6], e.output_hash, /*hex=*/true)) continue;
    if (!parse_u64(fields[7], ret64, /*hex=*/false)) continue;
    if (ret64 > 0xFFFFFFFFull) continue;
    e.ret = static_cast<std::uint32_t>(ret64);
    std::unique_lock<std::mutex> lock(mu_);
    entries_[key] = e;
    ++loaded;
  }
  return loaded;
}

void ResultCache::save_file(const std::string& path) const {
  std::ostringstream os;
  os << "# cepic pipeline result cache. One line per (source, config) "
        "point:\n"
     << "# v1 src_hash cfg_hash cycles ops_committed out_words out_hash "
        "ret\n";
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (const auto& [key, e] : entries_) {
      os << "v1 " << to_hex(key.first) << ' ' << to_hex(key.second) << ' '
         << e.cycles << ' ' << e.ops_committed << ' ' << e.output_words << ' '
         << to_hex(e.output_hash) << ' ' << e.ret << '\n';
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error(cat("cannot write cache file ", path));
  out << os.str();
  if (!out.flush()) throw Error(cat("failed writing cache file ", path));
}

bool ResultCache::lookup(const Key& key, CacheEntry& out) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  out = it->second;
  return true;
}

void ResultCache::insert(const Key& key, const CacheEntry& entry) {
  std::unique_lock<std::mutex> lock(mu_);
  entries_[key] = entry;
}

std::size_t ResultCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t ResultCache::hits() const {
  std::unique_lock<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::unique_lock<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace cepic::pipeline
