// Tool/build version identity for every persistent artifact the
// pipeline writes. The content-addressed store scopes all on-disk
// artifacts (and the batch result cache) under a directory named by
// store_version_tag(), so artifacts produced by an older toolchain —
// whose instruction encoding, CEPX container, scheduler or optimiser
// may differ — can never be replayed by a newer build: a version bump
// simply makes the old subtree unreachable.
//
// Bump kPipelineSchema whenever any of the following changes in a way
// that affects produced artifacts:
//   * the instruction encoding or the CEPX serialisation format,
//   * the assembly syntax the backend emits,
//   * the optimiser or scheduler output for a fixed input,
//   * the store key derivation in src/pipeline/pipeline.cpp.
#pragma once

#include <string>
#include <string_view>

namespace cepic::pipeline {

/// Monotonically increasing artifact-schema generation.
/// 2: artifacts are CEPX v2 sectioned containers (IR Modules persist as
/// packed binaries, not text) and versioned directories carry a
/// `format` marker — v1 streamed blobs must be unreachable.
inline constexpr unsigned kPipelineSchema = 2;

/// Human-readable toolchain identity folded into store paths and keys.
/// pr8: IR-level lint reports cached at the new kIrLint granularity;
/// the tag bump keeps pr7 stores (which never held them) separate.
inline constexpr std::string_view kToolVersion = "cepic-pr8";

/// Directory component under the store root that namespaces all
/// artifacts of this build, e.g. "v1-cepic-pr3".
inline std::string store_version_tag() {
  return "v" + std::to_string(kPipelineSchema) + "-" +
         std::string(kToolVersion);
}

}  // namespace cepic::pipeline
