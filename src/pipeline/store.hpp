// Content-addressed store of compilation artifacts at three
// granularities:
//
//   kIr       the optimised IR, printed (keyed by source + optimiser
//             options only — shared by *every* processor configuration)
//   kAsm      the backend's assembly text (keyed additionally by the
//             codegen-relevant slice of the ProcessorConfig and the
//             backend options)
//   kProgram  the assembled Program, CEPX-serialised (same key material
//             as kAsm; stored with the codegen slice embedded so one
//             blob serves every simulation-only variant of the config)
//   kLint     the mcheck verification report for the Program with the
//             same key (first line "<errors> <warnings>", then the
//             rendered report) — sound because mcheck reads only the
//             codegen slice of the configuration
//
// Keys are stable 64-bit content hashes computed by pipeline::Service
// (see pipeline.cpp); the store itself only maps (granularity, key) to
// an opaque blob. Blobs live in an in-memory map and, when a root
// directory is given, under `<root>/<store_version_tag()>/<gran>/` —
// one file per artifact, written via a temp file + rename so readers
// never observe a torn write. Because the version tag names the
// directory, artifacts written by an older toolchain (different
// encoding, scheduler, container format...) are simply invisible to a
// newer build and can never be replayed.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cepic::pipeline {

enum class Granularity { kIr = 0, kAsm = 1, kProgram = 2, kLint = 3 };

/// Hit/miss/write counters for one granularity. A disk read that
/// succeeds counts as a hit (the artifact was reused across processes).
struct GranularityStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
};

struct StoreStats {
  GranularityStats ir;
  GranularityStats assembly;
  GranularityStats program;
  GranularityStats lint;
};

class Store {
public:
  /// Memory-only store (artifacts shared within one Service lifetime).
  Store() = default;

  /// Persistent store rooted at `root` (created on demand). Artifacts
  /// live under `<root>/<version_tag>/`; `version_tag` defaults to
  /// store_version_tag() and is parameterised only so tests can prove
  /// the version isolation property.
  explicit Store(std::string root, std::string version_tag = {});

  /// Look up a blob. Memory first, then disk (a disk hit is promoted
  /// into memory). Returns false on a miss.
  bool get(Granularity g, std::uint64_t key, std::string& blob);

  /// Record a blob in memory and, if persistent, on disk. Throws Error
  /// if the disk write fails (a half-working store would silently lose
  /// the cross-process reuse the caller asked for).
  void put(Granularity g, std::uint64_t key, std::string_view blob);

  StoreStats stats() const;

  /// The versioned directory artifacts live in; empty if memory-only.
  const std::string& directory() const { return dir_; }
  bool persistent() const { return !dir_.empty(); }

private:
  std::string object_path(Granularity g, std::uint64_t key) const;

  std::string dir_;  ///< <root>/<version_tag>, "" when memory-only
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::string> mem_[4];
  StoreStats stats_;
};

}  // namespace cepic::pipeline
