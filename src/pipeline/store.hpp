// Content-addressed store of compilation artifacts at five
// granularities:
//
//   kIr       the optimised IR Module, CEPX-encoded (keyed by source +
//             optimiser options only — shared by *every* processor
//             configuration, and loaded back without reparsing)
//   kAsm      the backend's assembly text (keyed additionally by the
//             codegen-relevant slice of the ProcessorConfig and the
//             backend options)
//   kProgram  the assembled Program, CEPX-encoded (same key material
//             as kAsm; stored with the codegen slice embedded so one
//             blob serves every simulation-only variant of the config)
//   kLint     the mcheck verification report for the Program with the
//             same key (first line "<errors> <warnings>", then the
//             rendered report) — sound because mcheck reads only the
//             codegen slice of the configuration
//   kIrLint   the IR-level lint report (analysis::lint_module) for the
//             optimised Module, keyed like kIr (config-independent —
//             the lint reads only the IR), one parseable diagnostic
//             per line so the report is rebuilt typed on a hit
//
// Artifacts are addressed by ArtifactId{granularity, digest} handles —
// stable 64-bit content hashes computed by pipeline::Service (see
// pipeline.cpp); callers never touch on-disk paths or raw key strings.
// The typed get/put overloads go through the serial:: CEPX codecs, so
// Modules and Programs enter and leave the store as validated binary
// containers. Blobs live in an in-memory map and, when a root directory
// is given, under `<root>/<store_version_tag()>/<gran>/` — one file per
// artifact, written via a temp file + rename so readers never observe a
// torn write. Because the version tag names the directory, artifacts
// written by an older toolchain (different encoding, scheduler,
// container format...) are simply invisible to a newer build and can
// never be replayed; a `format` marker inside each versioned directory
// additionally rejects directories laid out by other means with a clear
// error instead of silently misreading them.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/program.hpp"
#include "ir/ir.hpp"

namespace cepic::pipeline {

enum class Granularity {
  kIr = 0,
  kAsm = 1,
  kProgram = 2,
  kLint = 3,
  kIrLint = 4,
};

inline constexpr int kNumGranularities = 5;

const char* to_string(Granularity g);

/// Typed handle to one stored artifact: which granularity it lives at
/// and the 64-bit content digest that addresses it. The Service derives
/// digests; everything else just passes handles around.
struct ArtifactId {
  Granularity granularity = Granularity::kIr;
  std::uint64_t digest = 0;

  bool operator==(const ArtifactId&) const = default;
};

/// Render e.g. "ir:1f2e3d4c5b6a7988" for diagnostics and logs.
std::string to_string(const ArtifactId& id);

/// Hit/miss/write counters for one granularity. A disk read that
/// succeeds counts as a hit (the artifact was reused across processes).
struct GranularityStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
};

struct StoreStats {
  GranularityStats ir;
  GranularityStats assembly;
  GranularityStats program;
  GranularityStats lint;
  GranularityStats ir_lint;
};

class Store {
public:
  /// Memory-only store (artifacts shared within one Service lifetime).
  Store() = default;

  /// Persistent store rooted at `root` (created eagerly, together with
  /// its format marker). Artifacts live under `<root>/<version_tag>/`;
  /// `version_tag` defaults to store_version_tag() and is parameterised
  /// only so tests can prove the version isolation property. Throws
  /// Error if `root` holds an old-layout or foreign store.
  explicit Store(const std::string& root, std::string version_tag = {});

  // --- raw blob interface (kAsm / kLint text artifacts) ---

  /// Look up a blob. Memory first, then disk (a disk hit is promoted
  /// into memory). Returns false on a miss.
  bool get(const ArtifactId& id, std::string& blob);

  /// Record a blob in memory and, if persistent, on disk. Throws Error
  /// if the disk write fails (a half-working store would silently lose
  /// the cross-process reuse the caller asked for).
  void put(const ArtifactId& id, std::string_view blob);

  // --- typed interface (CEPX-encoded binary artifacts) ---

  /// Load a Module (id.granularity must be kIr). Decode errors — a
  /// corrupt or stale container — propagate as Error with the CEPX
  /// diagnostic; a clean miss returns false.
  bool get(const ArtifactId& id, ir::Module& out);
  void put(const ArtifactId& id, const ir::Module& module);

  /// Load a Program (id.granularity must be kProgram).
  bool get(const ArtifactId& id, Program& out);
  void put(const ArtifactId& id, const Program& program);

  StoreStats stats() const;

  /// The versioned directory artifacts live in; empty if memory-only.
  const std::string& directory() const { return dir_; }
  bool persistent() const { return !dir_.empty(); }

private:
  std::string object_path(const ArtifactId& id) const;

  std::string dir_;  ///< <root>/<version_tag>, "" when memory-only
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::string> mem_[kNumGranularities];
  StoreStats stats_;
};

}  // namespace cepic::pipeline
