// Compatibility shim: the result cache moved into cepic::pipeline (PR 2)
// so the batch scheduler and every tool share one implementation. This
// header keeps the old explore:: spellings alive for existing includes;
// new code should include "pipeline/result_cache.hpp" directly.
#pragma once

#include "pipeline/result_cache.hpp"

namespace cepic::explore {

using CacheEntry = pipeline::CacheEntry;
using ResultCache = pipeline::ResultCache;

}  // namespace cepic::explore
