// SweepSpec: the set of ProcessorConfig points a design-space
// exploration visits — either an explicit list or a cartesian grid
// described by a compact grammar (the `--grid` flag of cepic-explore):
//
//   alus=1..4,width=1..4,ports=4,8
//
// Dimensions are comma-separated `key=values` clauses; a comma-separated
// token without `=` extends the previous dimension's value list (so
// `ports=4,8` is one dimension with two values). Values are single
// integers, `lo..hi` inclusive ranges, or lists mixing both. Boolean
// parameters take 0/1. Points are generated in row-major order with the
// *last* dimension varying fastest, which makes the output ordering a
// pure function of the grammar — independent of thread count.
//
// Recognised keys (long config-file names are accepted too):
//   alus        num_alus            gprs      num_gprs
//   preds       num_preds           btrs      num_btrs
//   width|issue issue_width         datapath  datapath_width
//   ports       reg_port_budget     maxregs   max_regs_per_instr
//   latency     load_latency        stages    pipeline_stages
//   forwarding  (bool)              contention unified_memory_contention
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "core/config.hpp"

namespace cepic::explore {

struct SweepSpec {
  std::vector<ProcessorConfig> points;

  void add(const ProcessorConfig& cfg) { points.push_back(cfg); }

  /// Expand a grid grammar over `base` (every parameter not named in the
  /// grammar keeps its base value). Throws ConfigError on a malformed
  /// grammar or unknown key. The expansion itself never validates —
  /// call filter_invalid() to drop out-of-range combinations.
  static SweepSpec from_grid(std::string_view grammar,
                             const ProcessorConfig& base = {});

  /// Drop every point whose ProcessorConfig::validate() throws. Returns
  /// the number of points removed. Order of survivors is preserved.
  std::size_t filter_invalid();

  std::size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }
};

}  // namespace cepic::explore
