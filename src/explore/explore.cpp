#include "explore/explore.hpp"

#include <algorithm>
#include <sstream>

#include "core/custom.hpp"
#include "fpga/model.hpp"
#include "support/text.hpp"

namespace cepic::explore {

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

/// Fill the derived analytic fields of a point from its config and the
/// cached/simulated cycle count. Pure function of (config, cycles,
/// ops_committed) — identical for cached and fresh points.
void fill_analytics(PointResult& p) {
  const CustomOpTable custom = CustomOpTable::for_names(p.config.custom_ops);
  const fpga::ResourceEstimate area = fpga::estimate(p.config, &custom);
  p.slices = area.slices;
  p.block_rams = area.block_rams;
  p.block_mults = area.block_mults;
  p.fmax_mhz = area.fmax_mhz;
  p.power_mw = fpga::estimate_power(area).total();
  p.time_ms = static_cast<double>(p.cycles) / (area.fmax_mhz * 1e3);
  p.ilp = p.cycles == 0 ? 0.0
                        : static_cast<double>(p.ops_committed) /
                              static_cast<double>(p.cycles);
}

/// True if `a` Pareto-dominates `b` on (cycles, slices, power).
bool dominates(const PointResult& a, const PointResult& b) {
  if (a.cycles > b.cycles || a.slices > b.slices || a.power_mw > b.power_mw) {
    return false;
  }
  return a.cycles < b.cycles || a.slices < b.slices || a.power_mw < b.power_mw;
}

void json_escape(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << (c < 0x10 ? "0" : "") << std::hex
             << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::vector<std::size_t> SweepResult::pareto_indices() const {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].ok) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = j != i && points[j].ok && dominates(points[j], points[i]);
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

bool SweepResult::is_pareto(std::size_t index) const {
  const auto frontier = pareto_indices();
  return std::binary_search(frontier.begin(), frontier.end(), index);
}

std::string SweepResult::to_csv() const {
  const auto frontier = pareto_indices();
  std::string csv =
      "point,config,alus,issue,ports,stages,ok,cycles,ilp,slices,brams,"
      "mults,fmax_mhz,time_ms,power_mw,out_words,out_hash,ret,pareto\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    const bool pareto = std::binary_search(frontier.begin(), frontier.end(), i);
    csv += cat(i, ",", p.config.summary(), ",", p.config.num_alus, ",",
               p.config.issue_width, ",", p.config.reg_port_budget, ",",
               p.config.pipeline_stages, ",", p.ok ? 1 : 0, ",", p.cycles, ",",
               fixed(p.ilp, 3), ",", fixed(p.slices, 0), ",", p.block_rams,
               ",", p.block_mults, ",", fixed(p.fmax_mhz, 1), ",",
               fixed(p.time_ms, 3), ",", fixed(p.power_mw, 1), ",",
               p.output_words, ",", hex64(p.output_hash), ",", p.ret, ",",
               pareto ? 1 : 0, "\n");
  }
  return csv;
}

std::string SweepResult::to_json() const {
  const auto frontier = pareto_indices();
  std::ostringstream os;
  os << "{\n  \"source_hash\": \"" << hex64(source_hash)
     << "\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    const bool pareto = std::binary_search(frontier.begin(), frontier.end(), i);
    os << "    {\"point\": " << i << ", \"config\": \"" << p.config.summary()
       << "\", \"config_hash\": \"" << hex64(p.config_hash)
       << "\", \"ok\": " << (p.ok ? "true" : "false");
    if (p.ok) {
      os << ", \"cycles\": " << p.cycles << ", \"ilp\": " << fixed(p.ilp, 3)
         << ", \"slices\": " << fixed(p.slices, 0)
         << ", \"brams\": " << p.block_rams << ", \"mults\": " << p.block_mults
         << ", \"fmax_mhz\": " << fixed(p.fmax_mhz, 1)
         << ", \"time_ms\": " << fixed(p.time_ms, 3)
         << ", \"power_mw\": " << fixed(p.power_mw, 1)
         << ", \"out_words\": " << p.output_words << ", \"out_hash\": \""
         << hex64(p.output_hash) << "\", \"ret\": " << p.ret
         << ", \"pareto\": " << (pareto ? "true" : "false");
    } else {
      os << ", \"error\": \"";
      json_escape(os, p.error);
      os << "\"";
    }
    os << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

SweepBatch run_sweep_batch(const std::vector<std::string>& sources,
                           const SweepSpec& spec,
                           const ExploreOptions& options) {
  pipeline::Options popts;
  popts.codegen = options.compile;
  popts.sim = options.sim;
  popts.jobs = options.jobs;
  popts.store_dir = options.store_dir;
  popts.result_cache_file = options.cache_file;
  pipeline::Service service(popts);

  const std::vector<pipeline::RunOutcome> outcomes =
      service.run_batch(sources, spec.points);

  SweepBatch batch;
  batch.sweeps.resize(sources.size());
  const std::size_t cols = spec.points.size();
  for (std::size_t w = 0; w < sources.size(); ++w) {
    SweepResult& result = batch.sweeps[w];
    result.source_hash = fnv1a64(sources[w]);
    result.points.resize(cols);
    for (std::size_t p = 0; p < cols; ++p) {
      PointResult& point = result.points[p];
      const pipeline::RunOutcome& out = outcomes[w * cols + p];
      point.config = spec.points[p];
      point.config_hash = spec.points[p].stable_hash();
      point.ok = out.ok;
      point.error = out.error;
      point.from_cache = out.from_result_cache;
      if (point.from_cache) ++result.cache_hits;
      if (!out.ok) continue;
      point.cycles = out.cycles;
      point.ops_committed = out.ops_committed;
      point.output_words = out.output_words;
      point.output_hash = out.output_hash;
      point.ret = out.ret;
      fill_analytics(point);
    }
  }
  batch.stats = service.stats();
  return batch;
}

SweepResult run_sweep(std::string_view source, const SweepSpec& spec,
                      const ExploreOptions& options) {
  SweepBatch batch =
      run_sweep_batch({std::string(source)}, spec, options);
  return std::move(batch.sweeps.front());
}

}  // namespace cepic::explore
