// Compatibility shim: the thread pool moved into cepic::pipeline (PR 2)
// where it schedules dependency-ordered compile and simulate tasks for
// every client of the toolchain. This header keeps the old explore::
// spelling alive for existing includes; new code should include
// "pipeline/thread_pool.hpp" directly.
#pragma once

#include "pipeline/thread_pool.hpp"

namespace cepic::explore {

using ThreadPool = pipeline::ThreadPool;

}  // namespace cepic::explore
