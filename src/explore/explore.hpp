// Parallel design-space exploration engine — the paper's headline
// workflow (§6, Table 1, Figs. 3–5) as a library: take MiniC programs
// and a SweepSpec of processor customisations, compile and simulate
// every (program, point) pair through the shared pipeline::Service
// batch scheduler, fold in the analytic FPGA area/timing/power model,
// and aggregate everything into SweepResults with Pareto-frontier
// extraction (cycles x slices x power) and CSV/JSON export.
//
// Since PR 2 the compile/simulate machinery lives in cepic::pipeline:
// one content-addressed artifact store shares compiled Programs across
// every sweep point whose codegen-relevant configuration slice matches
// (so points differing only in pipeline_stages or memory contention
// compile once), and one thread pool schedules the compile and simulate
// steps of the whole batch as dependency-ordered tasks. This layer only
// adds the FPGA analytics and the export formats.
//
// Determinism contract: results are stored at the point's index in the
// SweepSpec, every metric is a pure function of (source, config), and
// the exporters iterate in index order — so the output is byte-identical
// for any jobs count and for cached vs. freshly simulated points.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "explore/sweep.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/simulator.hpp"
#include "support/bits.hpp"

namespace cepic::explore {

/// Stable fingerprint of an OUT stream (each word folded LSB-first into
/// a 64-bit FNV-1a hash). Used to compare a sweep point's output against
/// a golden stream without retaining the stream itself.
inline std::uint64_t hash_output(std::span<const std::uint32_t> words) {
  return fnv1a64_words(words);
}

/// Outcome of one sweep point. When `ok` is false the point failed to
/// compile or simulate and `error` carries the diagnostic; the metric
/// fields are zero.
struct PointResult {
  ProcessorConfig config;
  std::uint64_t config_hash = 0;
  bool ok = false;
  std::string error;
  bool from_cache = false;  ///< served by the result cache (not exported)

  // Simulation outcome (cacheable, integers).
  std::uint64_t cycles = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t output_words = 0;
  std::uint64_t output_hash = 0;
  std::uint32_t ret = 0;

  // Derived analytics (recomputed from config + cycles on every run).
  double ilp = 0;
  double slices = 0;
  unsigned block_rams = 0;
  unsigned block_mults = 0;
  double fmax_mhz = 0;
  double time_ms = 0;
  double power_mw = 0;
};

struct SweepResult {
  std::uint64_t source_hash = 0;
  std::vector<PointResult> points;  ///< one per SweepSpec point, in order
  std::size_t cache_hits = 0;       ///< points served from the cache

  /// Indices (ascending) of the Pareto-optimal points under simultaneous
  /// minimisation of cycles, slices and power. Failed points never
  /// appear and never dominate.
  std::vector<std::size_t> pareto_indices() const;

  /// True if `index` is on the Pareto frontier.
  bool is_pareto(std::size_t index) const;

  /// CSV with a fixed header; one row per point in index order.
  std::string to_csv() const;

  /// JSON array of point objects, 2-space indented, in index order.
  std::string to_json() const;
};

struct ExploreOptions {
  /// Worker threads; 0 means "all hardware threads".
  unsigned jobs = 1;
  /// Explicit on-disk result cache file; empty defers to the store
  /// (results persist at `<store_dir>/<version>/results.cache` when a
  /// store is configured, nowhere otherwise). Kept for callers that
  /// want result persistence without an artifact store.
  std::string cache_file;
  /// Root of the persistent content-addressed artifact store (the
  /// tools' `--cache DIR`); empty keeps artifact sharing in-memory.
  std::string store_dir;
  SimOptions sim;
  pipeline::CodegenOptions compile;
};

/// A batch of sweeps (one per source) that shared a single
/// pipeline::Service — one store, one scheduler, one result cache.
struct SweepBatch {
  std::vector<SweepResult> sweeps;  ///< one per source, in order
  pipeline::ServiceStats stats;     ///< store / compile / simulate counters
};

/// Compile and simulate every source at every point of `spec` through
/// one shared pipeline::Service. Per-point failures (invalid config,
/// compile error, simulation fault) are captured in the corresponding
/// PointResult rather than thrown; only infrastructure failures
/// (unwritable store or cache file) escape.
SweepBatch run_sweep_batch(const std::vector<std::string>& sources,
                           const SweepSpec& spec,
                           const ExploreOptions& options = {});

/// Single-source convenience wrapper around run_sweep_batch.
SweepResult run_sweep(std::string_view source, const SweepSpec& spec,
                      const ExploreOptions& options = {});

}  // namespace cepic::explore
