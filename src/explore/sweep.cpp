#include "explore/sweep.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::explore {

namespace {

/// One grid dimension: the config field it drives and its value list.
struct Dimension {
  unsigned ProcessorConfig::*uint_field = nullptr;
  bool ProcessorConfig::*bool_field = nullptr;
  std::vector<unsigned> values;
};

/// Map a grammar key (short alias or config-file name) onto the field it
/// sets. Returns false for unknown keys.
bool resolve_key(std::string_view key, Dimension& dim) {
  struct UintKey {
    std::string_view name;
    std::string_view alias;
    unsigned ProcessorConfig::*field;
  };
  static constexpr UintKey kUintKeys[] = {
      {"num_alus", "alus", &ProcessorConfig::num_alus},
      {"num_gprs", "gprs", &ProcessorConfig::num_gprs},
      {"num_preds", "preds", &ProcessorConfig::num_preds},
      {"num_btrs", "btrs", &ProcessorConfig::num_btrs},
      {"issue_width", "width", &ProcessorConfig::issue_width},
      {"issue_width", "issue", &ProcessorConfig::issue_width},
      {"datapath_width", "datapath", &ProcessorConfig::datapath_width},
      {"reg_port_budget", "ports", &ProcessorConfig::reg_port_budget},
      {"max_regs_per_instr", "maxregs", &ProcessorConfig::max_regs_per_instr},
      {"load_latency", "latency", &ProcessorConfig::load_latency},
      {"pipeline_stages", "stages", &ProcessorConfig::pipeline_stages},
  };
  struct BoolKey {
    std::string_view name;
    std::string_view alias;
    bool ProcessorConfig::*field;
  };
  static constexpr BoolKey kBoolKeys[] = {
      {"forwarding", "fwd", &ProcessorConfig::forwarding},
      {"unified_memory_contention", "contention",
       &ProcessorConfig::unified_memory_contention},
  };
  for (const UintKey& k : kUintKeys) {
    if (key == k.name || key == k.alias) {
      dim.uint_field = k.field;
      return true;
    }
  }
  for (const BoolKey& k : kBoolKeys) {
    if (key == k.name || key == k.alias) {
      dim.bool_field = k.field;
      return true;
    }
  }
  return false;
}

unsigned parse_grid_uint(std::string_view token, std::string_view grammar) {
  std::int64_t v = 0;
  if (!parse_int(token, v) || v < 0) {
    throw ConfigError(
        cat("grid `", grammar, "`: bad value `", token, "`"));
  }
  return static_cast<unsigned>(v);
}

/// Append the values of one token: `7` or `lo..hi`.
void append_values(std::string_view token, std::string_view grammar,
                   std::vector<unsigned>& out) {
  const auto dots = token.find("..");
  if (dots == std::string_view::npos) {
    out.push_back(parse_grid_uint(token, grammar));
    return;
  }
  const unsigned lo = parse_grid_uint(token.substr(0, dots), grammar);
  const unsigned hi = parse_grid_uint(token.substr(dots + 2), grammar);
  if (hi < lo) {
    throw ConfigError(
        cat("grid `", grammar, "`: descending range `", token, "`"));
  }
  for (unsigned v = lo; v <= hi; ++v) out.push_back(v);
}

}  // namespace

SweepSpec SweepSpec::from_grid(std::string_view grammar,
                               const ProcessorConfig& base) {
  std::vector<Dimension> dims;
  for (std::string_view raw : split(grammar, ',')) {
    const std::string_view token = trim(raw);
    if (token.empty()) {
      throw ConfigError(cat("grid `", grammar, "`: empty clause"));
    }
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) {
      // Continuation of the previous dimension's value list (`ports=4,8`).
      if (dims.empty()) {
        throw ConfigError(
            cat("grid `", grammar, "`: value `", token,
                "` before any key=... clause"));
      }
      append_values(token, grammar, dims.back().values);
      continue;
    }
    Dimension dim;
    const std::string key = to_lower(trim(token.substr(0, eq)));
    if (!resolve_key(key, dim)) {
      throw ConfigError(cat("grid `", grammar, "`: unknown key `", key, "`"));
    }
    append_values(trim(token.substr(eq + 1)), grammar, dim.values);
    dims.push_back(std::move(dim));
  }
  if (dims.empty()) {
    throw ConfigError(cat("grid `", grammar, "`: no dimensions"));
  }
  for (const Dimension& d : dims) {
    if (d.bool_field) {
      for (unsigned v : d.values) {
        if (v > 1) {
          throw ConfigError(
              cat("grid `", grammar, "`: boolean key takes 0 or 1"));
        }
      }
    }
  }

  // Row-major cartesian product, last dimension fastest.
  SweepSpec spec;
  std::size_t total = 1;
  for (const Dimension& d : dims) total *= d.values.size();
  spec.points.reserve(total);
  std::vector<std::size_t> idx(dims.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    ProcessorConfig cfg = base;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const unsigned v = dims[d].values[idx[d]];
      if (dims[d].uint_field) {
        cfg.*(dims[d].uint_field) = v;
      } else {
        cfg.*(dims[d].bool_field) = (v != 0);
      }
    }
    spec.points.push_back(std::move(cfg));
    for (std::size_t d = dims.size(); d-- > 0;) {
      if (++idx[d] < dims[d].values.size()) break;
      idx[d] = 0;
    }
  }
  return spec;
}

std::size_t SweepSpec::filter_invalid() {
  const std::size_t before = points.size();
  std::erase_if(points, [](const ProcessorConfig& cfg) {
    try {
      cfg.validate();
      return false;
    } catch (const Error&) {
      return true;
    }
  });
  return before - points.size();
}

}  // namespace cepic::explore
