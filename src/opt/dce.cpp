// Liveness-based dead-code elimination: a pure instruction whose result
// is not live immediately after it is removed.  Sweeping a block is a
// pure function of its contents and its live_out set, and one backward
// sweep reaches the block-local fixed point (a dead instruction's uses
// are simply not marked live, so feeder chains die in the same sweep).
// Removals only shrink liveness, so instead of re-sweeping the whole
// function per liveness iteration the pass re-sweeps exactly the blocks
// whose live_out moved — and, across invocations, seeds from the blocks
// later passes touched plus those whose live_out differs from the
// snapshot taken when this pass last ran (driver-owned DceState).
#include <vector>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::VReg;

bool removable(const IrInst& inst) {
  return !ir::has_side_effects(inst) && ir::has_dst(inst);
}

/// Remove the dead instructions of one block; true if any were removed.
bool sweep_block(ir::BasicBlock& block, const analysis::BitSet& live_out) {
  analysis::BitSet live = live_out;
  // Walk backwards maintaining the live set; collect dead indices.
  std::vector<bool> dead(block.insts.size(), false);
  for (std::size_t i = block.insts.size(); i-- > 0;) {
    const IrInst& inst = block.insts[i];
    const VReg d = def_of(inst);
    if (removable(inst) && d != ir::kNoVReg && !live.test(d)) {
      dead[i] = true;
      continue;  // its uses do not become live
    }
    if (d != ir::kNoVReg && inst.guard == ir::kNoVReg) live.reset(d);
    for_each_use(inst, [&](const ir::Value& v) {
      if (v.is_reg()) live.set(v.reg);
    });
    if (inst.guard != ir::kNoVReg) live.set(inst.guard);
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < block.insts.size(); ++i) {
    if (!dead[i]) {
      if (out != i) block.insts[out] = std::move(block.insts[i]);
      ++out;
    }
  }
  if (out == block.insts.size()) return false;
  block.insts.resize(out);
  return true;
}

}  // namespace

bool pass_dce(ir::Function& fn, PassContext& ctx) {
  const std::size_t nb = fn.blocks.size();
  ctx.touched = BlockSeed{false, analysis::BitSet(nb)};

  // Removing defs and uses never shelters a previously-dead value (a
  // dead def's kill is always shadowed by the later def that made it
  // dead), so dce keeps the graph and dominance but moves everything
  // value-related.
  const auto preserved = analysis::PreservedAnalyses::none()
                             .preserve(analysis::AnalysisKind::kCfg)
                             .preserve(analysis::AnalysisKind::kDominators);

  const analysis::Liveness* lv = &ctx.am.liveness(fn);

  // First sweep: touched blocks plus those whose live_out moved since
  // the last run; without a usable snapshot, everything.
  analysis::BitSet work(nb);
  const bool have_snapshot = ctx.dce_state != nullptr &&
                             ctx.dce_state->valid &&
                             ctx.dce_state->live_out.size() == nb;
  if (ctx.seed.all || !have_snapshot) {
    work.set_all();
  } else {
    work = ctx.seed.blocks;
    for (std::size_t b = 0; b < nb; ++b) {
      if (lv->live_out[b] != ctx.dce_state->live_out[b]) work.set(b);
    }
  }

  bool changed = false;
  for (;;) {
    bool swept = false;
    for (std::size_t b = 0; b < nb; ++b) {
      if (!work.test(b)) continue;
      if (sweep_block(fn.blocks[b], lv->live_out[b])) {
        ctx.touched.blocks.set(b);
        swept = true;
        changed = true;
      }
    }
    if (!swept) break;
    // Removing uses can expose more dead defs elsewhere: re-solve
    // liveness and re-sweep exactly the blocks whose live_out moved.
    std::vector<analysis::BitSet> old_live_out = lv->live_out;
    ctx.am.invalidate(fn, preserved, "dce");
    lv = &ctx.am.liveness(fn);
    work.clear();
    for (std::size_t b = 0; b < nb; ++b) {
      if (lv->live_out[b] != old_live_out[b]) work.set(b);
    }
  }

  if (ctx.dce_state != nullptr) {
    ctx.dce_state->live_out = lv->live_out;
    ctx.dce_state->valid = true;
  }
  return changed;
}

bool pass_dce(ir::Function& fn) {
  analysis::AnalysisManager am;
  PassContext ctx(am);
  return pass_dce(fn, ctx);
}

}  // namespace cepic::opt
