// Liveness-based dead-code elimination: a pure instruction whose result
// is not live immediately after it is removed. Iterates the global
// liveness fixed point, then sweeps each block backwards.
#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::VReg;

bool removable(const IrInst& inst) {
  return !ir::has_side_effects(inst) && ir::has_dst(inst);
}

}  // namespace

bool pass_dce(ir::Function& fn) {
  bool changed = false;
  bool again = true;
  while (again) {
    again = false;
    const Liveness lv = compute_liveness(fn);
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      ir::BasicBlock& block = fn.blocks[bi];
      analysis::BitSet live = lv.live_out[bi];
      // Walk backwards maintaining the live set; collect dead indices.
      std::vector<bool> dead(block.insts.size(), false);
      for (std::size_t i = block.insts.size(); i-- > 0;) {
        const IrInst& inst = block.insts[i];
        const VReg d = def_of(inst);
        if (removable(inst) && d != ir::kNoVReg && !live.test(d)) {
          dead[i] = true;
          continue;  // its uses do not become live
        }
        if (d != ir::kNoVReg && inst.guard == ir::kNoVReg) live.reset(d);
        for_each_use(inst, [&](const ir::Value& v) {
          if (v.is_reg()) live.set(v.reg);
        });
        if (inst.guard != ir::kNoVReg) live.set(inst.guard);
      }
      std::size_t out = 0;
      for (std::size_t i = 0; i < block.insts.size(); ++i) {
        if (!dead[i]) {
          if (out != i) block.insts[out] = std::move(block.insts[i]);
          ++out;
        }
      }
      if (out != block.insts.size()) {
        block.insts.resize(out);
        changed = true;
        again = true;  // removing uses can expose more dead defs
      }
    }
  }
  return changed;
}

}  // namespace cepic::opt
