// Machine-independent optimiser — the IMPACT role in the paper's
// Trimaran-based flow (§4.1). Classic passes over the non-SSA IR plus
// if-conversion, the transformation EPIC predication exists for.
// Individual passes are exposed for unit testing and for the ablation
// benches (A1 measures if-conversion on/off).
#pragma once

#include <utility>
#include <vector>

#include "analysis/manager.hpp"
#include "ir/ir.hpp"

namespace cepic::opt {

struct OptOptions {
  bool fold = true;          ///< constant folding + algebraic simplification
  bool copy_propagate = true;
  bool cse = true;           ///< local common-subexpression elimination
  /// Loop-invariant code motion. Off by default: hoisting lengthens
  /// live ranges, which costs spills on the register-starved SARM
  /// baseline and turns forwarded operands into register-file reads on
  /// EPIC; without pressure-awareness it is a net loss on most of the
  /// paper's workloads (measured in EXPERIMENTS.md). Kept as an option
  /// for experimentation and exercised by the test suite.
  bool licm = false;
  bool dce = true;           ///< liveness-based dead-code elimination
  bool simplify_cfg = true;  ///< jump threading, block merging, unreachable
  bool inline_calls = true;  ///< bottom-up leaf inlining
  bool if_convert = true;    ///< hammocks -> guarded (predicated) code
  int inline_max_insts = 200;
  int if_convert_max_ops = 10;
  int max_rounds = 4;
  /// Debug: run ir::verify_module after every pass (not just once at
  /// the end), naming the offending pass in the InternalError. Also
  /// enabled by setting the CEPIC_VERIFY_IR environment variable.
  /// Purely a check — never changes the emitted IR, so the pipeline
  /// store deliberately leaves it out of its key material.
  bool verify_each_pass = false;
  /// Skip pass invocations that provably cannot change anything (the
  /// function's analysis-manager version is unchanged since the pass
  /// last reported "no change") and seed the sparse pass variants from
  /// the blocks earlier passes actually touched.  Off = the dense
  /// reference mode: every pass rescans the whole function.  Both modes
  /// produce byte-identical IR (pinned by tests/golden); like
  /// verify_each_pass this is deliberately not pipeline-key material.
  bool incremental = true;
  /// Differential-check every PreservedAnalyses claim against a fresh
  /// recomputation (expensive; also enabled by CEPIC_VERIFY_ANALYSES).
  bool verify_analyses = false;
};

/// A set of dirty blocks handed to (and reported by) the sparse pass
/// variants. `all` means "every block" — used on the first run and
/// whenever blocks were renumbered, added or removed since.
struct BlockSeed {
  bool all = true;
  analysis::BitSet blocks;  ///< valid when !all; indexed by block id
};

/// DCE's cross-invocation memory: live_out at the end of its last run.
/// On the next run only blocks whose live_out moved (or whose contents
/// a later pass touched) can hold newly-dead instructions.
struct DceState {
  bool valid = false;
  std::vector<analysis::BitSet> live_out;
};

/// Copy propagation's cross-invocation memory: the (dst, src) facts
/// available on entry to each block when it was last rewritten, stored
/// sorted so they compare independently of site numbering.
struct CopypropState {
  bool valid = false;
  std::vector<std::vector<std::pair<ir::VReg, ir::Value>>> avail_in;
};

/// Context for the manager-aware pass variants.  The pass reads
/// analyses through `am`, restricts its scan to `seed`, reports the
/// blocks it modified in `touched` (all = block ids changed), and — when
/// it changed the function — tells the manager what survived.
struct PassContext {
  explicit PassContext(analysis::AnalysisManager& manager) : am(manager) {}

  analysis::AnalysisManager& am;
  BlockSeed seed;                    ///< in: blocks needing reprocessing
  BlockSeed touched{false, {}};      ///< out: blocks the pass modified
  DceState* dce_state = nullptr;     ///< owned by the driver; may be null
  CopypropState* cp_state = nullptr; ///< owned by the driver; may be null
};

/// Run the full pipeline to a fixed point (bounded by max_rounds).
void optimize(ir::Module& module, const OptOptions& options = {});

// ---- individual passes; each returns true if it changed anything ----
// The one-argument forms are the dense legacy entry points (unit tests,
// ablation benches): they run over the whole function with a throwaway
// manager. The PassContext forms are what the pipeline drives.
bool pass_constfold(ir::Function& fn);
bool pass_constfold(ir::Function& fn, PassContext& ctx);
bool pass_copy_propagate(ir::Function& fn);
bool pass_copy_propagate(ir::Function& fn, PassContext& ctx);
bool pass_cse(ir::Function& fn);
bool pass_cse(ir::Function& fn, PassContext& ctx);
bool pass_licm(ir::Function& fn);
bool pass_dce(ir::Function& fn);
bool pass_dce(ir::Function& fn, PassContext& ctx);
bool pass_simplify_cfg(ir::Function& fn);
bool pass_simplify_cfg(ir::Function& fn, PassContext& ctx);
bool pass_if_convert(ir::Function& fn, int max_ops);
/// `fn_changed`, when non-null, is sized to module.functions and set
/// per caller so the driver can invalidate exactly the functions that
/// received clones.
bool pass_inline(ir::Module& module, int max_insts,
                 std::vector<bool>* fn_changed = nullptr);

}  // namespace cepic::opt
