// Machine-independent optimiser — the IMPACT role in the paper's
// Trimaran-based flow (§4.1). Classic passes over the non-SSA IR plus
// if-conversion, the transformation EPIC predication exists for.
// Individual passes are exposed for unit testing and for the ablation
// benches (A1 measures if-conversion on/off).
#pragma once

#include "ir/ir.hpp"

namespace cepic::opt {

struct OptOptions {
  bool fold = true;          ///< constant folding + algebraic simplification
  bool copy_propagate = true;
  bool cse = true;           ///< local common-subexpression elimination
  /// Loop-invariant code motion. Off by default: hoisting lengthens
  /// live ranges, which costs spills on the register-starved SARM
  /// baseline and turns forwarded operands into register-file reads on
  /// EPIC; without pressure-awareness it is a net loss on most of the
  /// paper's workloads (measured in EXPERIMENTS.md). Kept as an option
  /// for experimentation and exercised by the test suite.
  bool licm = false;
  bool dce = true;           ///< liveness-based dead-code elimination
  bool simplify_cfg = true;  ///< jump threading, block merging, unreachable
  bool inline_calls = true;  ///< bottom-up leaf inlining
  bool if_convert = true;    ///< hammocks -> guarded (predicated) code
  int inline_max_insts = 200;
  int if_convert_max_ops = 10;
  int max_rounds = 4;
  /// Debug: run ir::verify_module after every pass (not just once at
  /// the end), naming the offending pass in the InternalError. Also
  /// enabled by setting the CEPIC_VERIFY_IR environment variable.
  /// Purely a check — never changes the emitted IR, so the pipeline
  /// store deliberately leaves it out of its key material.
  bool verify_each_pass = false;
};

/// Run the full pipeline to a fixed point (bounded by max_rounds).
void optimize(ir::Module& module, const OptOptions& options = {});

// ---- individual passes; each returns true if it changed anything ----
bool pass_constfold(ir::Function& fn);
bool pass_copy_propagate(ir::Function& fn);
bool pass_cse(ir::Function& fn);
bool pass_licm(ir::Function& fn);
bool pass_dce(ir::Function& fn);
bool pass_simplify_cfg(ir::Function& fn);
bool pass_if_convert(ir::Function& fn, int max_ops);
bool pass_inline(ir::Module& module, int max_insts);

}  // namespace cepic::opt
