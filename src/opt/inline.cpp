// Bottom-up leaf inlining: a callee that itself performs no calls and is
// small enough is cloned into the caller. Run inside the pass pipeline,
// successive rounds collapse deeper call chains (a caller whose calls
// were all inlined becomes a leaf for the next round).
#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IrInst;
using ir::IrOp;
using ir::Value;
using ir::VReg;

bool is_leaf(const Function& fn) {
  for (const BasicBlock& block : fn.blocks) {
    for (const IrInst& inst : block.insts) {
      if (inst.op == IrOp::Call) return false;
    }
  }
  return true;
}

std::size_t inst_count(const Function& fn) {
  std::size_t n = 0;
  for (const BasicBlock& block : fn.blocks) n += block.insts.size();
  return n;
}

/// Clone `callee` into `caller` at the call site (block bi, instruction
/// index ii). Returns true on success.
void inline_at(Function& caller, int bi, std::size_t ii,
               const Function& callee) {
  const IrInst call = caller.blocks[bi].insts[ii];

  // Split the call block: everything after the call moves to `cont`.
  const int cont = caller.add_block(caller.blocks[bi].label + ".cont");
  BasicBlock& call_block = caller.blocks[bi];
  BasicBlock& cont_block = caller.blocks[cont];
  cont_block.insts.assign(
      std::make_move_iterator(call_block.insts.begin() + ii + 1),
      std::make_move_iterator(call_block.insts.end()));
  call_block.insts.resize(ii);  // drop the call and the tail

  // Map callee vregs to fresh caller vregs.
  std::vector<VReg> vmap(callee.next_vreg, ir::kNoVReg);
  const auto map_vreg = [&](VReg v) -> VReg {
    if (v == ir::kNoVReg) return ir::kNoVReg;
    if (vmap[v] == ir::kNoVReg) vmap[v] = caller.fresh_vreg();
    return vmap[v];
  };

  // Bind arguments.
  for (std::size_t p = 0; p < callee.params.size(); ++p) {
    IrInst mov;
    mov.op = IrOp::Mov;
    mov.dst = map_vreg(callee.params[p]);
    mov.a = call.args[p];
    caller.blocks[bi].insts.push_back(std::move(mov));
  }

  // The callee frame lives after the caller's current frame.
  const std::uint32_t frame_shift = caller.frame_bytes;
  caller.frame_bytes += callee.frame_bytes;

  // Clone blocks.
  const int base = static_cast<int>(caller.blocks.size());
  for (const BasicBlock& cb : callee.blocks) {
    const int nb = caller.add_block("inl." + callee.name +
                                    (cb.label.empty() ? "" : "." + cb.label));
    for (const IrInst& src : cb.insts) {
      IrInst inst = src;
      if (ir::has_dst(inst)) inst.dst = map_vreg(inst.dst);
      for_each_use(inst, [&](Value& v) {
        if (v.is_reg()) v.reg = map_vreg(v.reg);
      });
      if (inst.guard != ir::kNoVReg) inst.guard = map_vreg(inst.guard);
      switch (inst.op) {
        case IrOp::FrameAddr:
          inst.a = Value::i(inst.a.imm + static_cast<std::int32_t>(frame_shift));
          break;
        case IrOp::Br:
          inst.block_then += base;
          break;
        case IrOp::CondBr:
          inst.block_then += base;
          inst.block_else += base;
          break;
        case IrOp::Ret: {
          // ret v  ->  [dst = v;] br cont
          IrInst br;
          br.op = IrOp::Br;
          br.block_then = cont;
          if (call.dst != ir::kNoVReg) {
            IrInst mov;
            mov.op = IrOp::Mov;
            mov.dst = call.dst;
            mov.a = inst.a;
            caller.blocks[nb].insts.push_back(std::move(mov));
          }
          caller.blocks[nb].insts.push_back(std::move(br));
          continue;
        }
        default:
          break;
      }
      caller.blocks[nb].insts.push_back(std::move(inst));
    }
  }

  // Jump from the call site into the cloned entry.
  IrInst enter;
  enter.op = IrOp::Br;
  enter.block_then = base;
  caller.blocks[bi].insts.push_back(std::move(enter));
}

}  // namespace

bool pass_inline(ir::Module& module, int max_insts,
                 std::vector<bool>* fn_changed) {
  if (fn_changed != nullptr) {
    fn_changed->assign(module.functions.size(), false);
  }
  bool changed = false;
  for (std::size_t fi = 0; fi < module.functions.size(); ++fi) {
    Function& caller = module.functions[fi];
    bool scan_again = true;
    int budget = 16;  // cap clones per caller per pass invocation
    while (scan_again && budget > 0) {
      scan_again = false;
      for (int bi = 0; bi < static_cast<int>(caller.blocks.size()); ++bi) {
        const BasicBlock& block = caller.blocks[bi];
        for (std::size_t ii = 0; ii < block.insts.size(); ++ii) {
          const IrInst& inst = block.insts[ii];
          if (inst.op != IrOp::Call) continue;
          const Function* callee = module.find_function(inst.callee);
          if (callee == nullptr || callee == &caller) continue;
          if (!is_leaf(*callee)) continue;
          if (inst_count(*callee) > static_cast<std::size_t>(max_insts)) {
            continue;
          }
          inline_at(caller, bi, ii, *callee);
          changed = true;
          if (fn_changed != nullptr) (*fn_changed)[fi] = true;
          scan_again = true;
          --budget;
          break;  // block structure changed; rescan
        }
        if (scan_again) break;
      }
    }
  }
  return changed;
}

}  // namespace cepic::opt
