// If-conversion: turn small branch hammocks into straight-line guarded
// (predicated) code — the transformation that EPIC predication exists to
// enable (paper §2: "Predicated instructions transform control
// dependence to data dependence"). Handles triangles (if-then) and
// diamonds (if-then-else) whose arms are small, single-predecessor
// blocks of unguarded, call-free instructions.
//
// Correctness in the non-SSA IR: a guarded write preserves the old value
// when the guard is false, which is exactly the value the skipped path
// would have observed.
#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::BasicBlock;
using ir::IrInst;
using ir::IrOp;
using ir::VReg;

/// Is the block a convertible hammock arm: only unguarded, guardable
/// instructions followed by `br join`?
bool convertible_arm(const BasicBlock& block, int max_ops, int& join_out) {
  const IrInst& t = block.insts.back();
  if (t.op != IrOp::Br) return false;
  if (static_cast<int>(block.insts.size()) - 1 > max_ops) return false;
  for (std::size_t i = 0; i + 1 < block.insts.size(); ++i) {
    const IrInst& inst = block.insts[i];
    if (inst.guard != ir::kNoVReg) return false;  // no guard composition
    if (inst.op == IrOp::Call) return false;      // calls stay branchy
    if (ir::is_terminator(inst.op)) return false;
  }
  join_out = t.block_then;
  return true;
}

/// Does the block define `v` (unguarded or guarded)?
bool defines(const BasicBlock& block, VReg v) {
  for (const IrInst& inst : block.insts) {
    if (def_of(inst) == v) return true;
  }
  return false;
}

void append_guarded(BasicBlock& dst, const BasicBlock& arm, VReg guard,
                    bool negate) {
  for (std::size_t i = 0; i + 1 < arm.insts.size(); ++i) {
    IrInst inst = arm.insts[i];
    inst.guard = guard;
    inst.guard_negate = negate;
    dst.insts.push_back(std::move(inst));
  }
}

}  // namespace

bool pass_if_convert(ir::Function& fn, int max_ops) {
  bool changed = false;
  const auto preds = predecessors(fn);

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    BasicBlock& block = fn.blocks[b];
    const IrInst term = block.insts.back();
    if (term.op != IrOp::CondBr) continue;
    if (!term.a.is_reg()) continue;
    const VReg cond = term.a.reg;
    const int bt = term.block_then;
    const int bf = term.block_else;
    if (bt == bf || bt == static_cast<int>(b) || bf == static_cast<int>(b)) {
      continue;
    }

    const auto sole_pred = [&](int x) {
      return preds[x].size() == 1 && preds[x][0] == static_cast<int>(b);
    };

    int join_t = -1;
    int join_f = -1;
    const bool t_arm = sole_pred(bt) &&
                       convertible_arm(fn.blocks[bt], max_ops, join_t) &&
                       !defines(fn.blocks[bt], cond);
    const bool f_arm = sole_pred(bf) &&
                       convertible_arm(fn.blocks[bf], max_ops, join_f) &&
                       !defines(fn.blocks[bf], cond);

    int join = -1;
    bool use_t = false;
    bool use_f = false;
    if (t_arm && f_arm && join_t == join_f && join_t != bt && join_t != bf) {
      join = join_t;  // diamond
      use_t = use_f = true;
    } else if (t_arm && join_t == bf) {
      join = bf;  // triangle: then-arm, fall to else target
      use_t = true;
    } else if (f_arm && join_f == bt) {
      join = bt;  // inverted triangle: else-arm
      use_f = true;
    } else {
      continue;
    }

    // Rewrite: drop the CondBr, splice guarded arms, branch to join.
    block.insts.pop_back();
    if (use_t) append_guarded(block, fn.blocks[bt], cond, /*negate=*/false);
    if (use_f) append_guarded(block, fn.blocks[bf], cond, /*negate=*/true);
    IrInst br;
    br.op = IrOp::Br;
    br.block_then = join;
    block.insts.push_back(std::move(br));
    changed = true;
    // The arm blocks are now unreachable; simplify_cfg sweeps them.
  }
  return changed;
}

}  // namespace cepic::opt
