// Automatic custom-instruction candidate generation — the paper's §6
// future work ("supporting automatic generation of custom
// instructions"). Mines the optimised IR for fusable producer→consumer
// idioms whose intermediate value has a single use, weights occurrences
// by loop depth, and proposes candidates ranked by the ALU operations a
// fused instruction would save. Recognised idioms with a built-in
// implementation (e.g. the 3-op rotate → `rotr`) name it, so a designer
// can enable the op in the configuration directly.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace cepic::opt {

struct CustomCandidate {
  /// Human-readable pattern, e.g. "rotate (shrl|shl|or)" or "mul+add".
  std::string pattern;
  /// Name of a built-in custom op implementing it ("" if none).
  std::string builtin;
  /// Static occurrences in the module.
  std::uint64_t occurrences = 0;
  /// Occurrences weighted by loop depth (x10 per nesting level).
  std::uint64_t weighted = 0;
  /// ALU operations removed per occurrence by fusing.
  unsigned ops_saved = 0;

  /// Ranking key: weighted dynamic estimate of operations saved.
  std::uint64_t score() const { return weighted * ops_saved; }
};

/// Analyse a module; returns candidates sorted by descending score.
/// `max_candidates` caps the generic pair patterns reported.
std::vector<CustomCandidate> find_custom_candidates(
    const ir::Module& module, std::size_t max_candidates = 8);

/// Render as a designer-facing report.
std::string format_candidates(const std::vector<CustomCandidate>& candidates);

}  // namespace cepic::opt
