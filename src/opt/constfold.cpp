// Constant folding + algebraic simplification + canonicalisation
// (immediates of commutative operations move to the second operand,
// which is also the EPIC literal slot the backend prefers).
#include "core/eval.hpp"
#include "opt/opt.hpp"
#include "support/bits.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::Value;

bool is_commutative(IrOp op) {
  switch (op) {
    case IrOp::Add:
    case IrOp::Mul:
    case IrOp::And:
    case IrOp::Or:
    case IrOp::Xor:
    case IrOp::Min:
    case IrOp::Max:
      return true;
    default:
      return false;
  }
}

Op core_alu_op(IrOp op) {
  switch (op) {
    case IrOp::Add: return Op::ADD;
    case IrOp::Sub: return Op::SUB;
    case IrOp::Mul: return Op::MUL;
    case IrOp::Div: return Op::DIV;
    case IrOp::Rem: return Op::REM;
    case IrOp::And: return Op::AND;
    case IrOp::Or: return Op::OR;
    case IrOp::Xor: return Op::XOR;
    case IrOp::Shl: return Op::SHL;
    case IrOp::Shra: return Op::SHRA;
    case IrOp::Shrl: return Op::SHRL;
    case IrOp::Min: return Op::MIN;
    case IrOp::Max: return Op::MAX;
    default: break;
  }
  CEPIC_CHECK(false, "not foldable");
}

Op core_cmp_op(IrOp op) {
  switch (op) {
    case IrOp::CmpEq: return Op::CMPP_EQ;
    case IrOp::CmpNe: return Op::CMPP_NE;
    case IrOp::CmpLt: return Op::CMPP_LT;
    case IrOp::CmpLe: return Op::CMPP_LE;
    case IrOp::CmpGt: return Op::CMPP_GT;
    case IrOp::CmpGe: return Op::CMPP_GE;
    case IrOp::CmpLtU: return Op::CMPP_LTU;
    case IrOp::CmpLeU: return Op::CMPP_LEU;
    case IrOp::CmpGtU: return Op::CMPP_GTU;
    case IrOp::CmpGeU: return Op::CMPP_GEU;
    default: break;
  }
  CEPIC_CHECK(false, "not a compare");
}

void make_mov(IrInst& inst, Value v) {
  const auto dst = inst.dst;
  const auto guard = inst.guard;
  const bool neg = inst.guard_negate;
  inst = IrInst{};
  inst.op = IrOp::Mov;
  inst.dst = dst;
  inst.a = v;
  inst.guard = guard;
  inst.guard_negate = neg;
}

/// Is v a power of two (>= 1)?
bool power_of_two(std::int32_t v, unsigned& log2_out) {
  if (v <= 0) return false;
  const auto u = static_cast<std::uint32_t>(v);
  if ((u & (u - 1)) != 0) return false;
  unsigned n = 0;
  while ((u >> n) != 1) ++n;
  log2_out = n;
  return true;
}

bool fold_inst(IrInst& inst) {
  if (!ir::is_binary_alu(inst.op) && !ir::is_cmp(inst.op)) return false;

  // Canonicalise: immediate to the right for commutative ops.
  bool changed = false;
  if (is_commutative(inst.op) && inst.a.is_imm() && !inst.b.is_imm()) {
    std::swap(inst.a, inst.b);
    changed = true;
  }

  if (inst.a.is_imm() && inst.b.is_imm()) {
    const auto a = static_cast<std::uint32_t>(inst.a.imm);
    const auto b = static_cast<std::uint32_t>(inst.b.imm);
    std::uint32_t r;
    if (ir::is_cmp(inst.op)) {
      r = eval_cmpp(core_cmp_op(inst.op), a, b, 32) ? 1 : 0;
    } else {
      r = eval_alu(core_alu_op(inst.op), a, b, 32);
    }
    make_mov(inst, Value::i(to_signed(r)));
    return true;
  }

  if (!inst.b.is_imm()) return changed;
  const std::int32_t k = inst.b.imm;
  unsigned log2 = 0;
  switch (inst.op) {
    case IrOp::Add:
    case IrOp::Sub:
      if (k == 0) {
        make_mov(inst, inst.a);
        return true;
      }
      break;
    case IrOp::Mul:
      if (k == 0) {
        make_mov(inst, Value::i(0));
        return true;
      }
      if (k == 1) {
        make_mov(inst, inst.a);
        return true;
      }
      if (power_of_two(k, log2)) {
        inst.op = IrOp::Shl;
        inst.b = Value::i(static_cast<std::int32_t>(log2));
        return true;
      }
      break;
    case IrOp::Div:
      if (k == 1) {
        make_mov(inst, inst.a);
        return true;
      }
      break;
    case IrOp::And:
      if (k == 0) {
        make_mov(inst, Value::i(0));
        return true;
      }
      if (k == -1) {
        make_mov(inst, inst.a);
        return true;
      }
      break;
    case IrOp::Or:
      if (k == 0) {
        make_mov(inst, inst.a);
        return true;
      }
      if (k == -1) {
        make_mov(inst, Value::i(-1));
        return true;
      }
      break;
    case IrOp::Xor:
      if (k == 0) {
        make_mov(inst, inst.a);
        return true;
      }
      break;
    case IrOp::Shl:
    case IrOp::Shra:
    case IrOp::Shrl:
      if (k == 0) {
        make_mov(inst, inst.a);
        return true;
      }
      break;
    default:
      break;
  }
  return changed;
}

}  // namespace

bool pass_constfold(ir::Function& fn, PassContext& ctx) {
  const std::size_t nb = fn.blocks.size();
  ctx.touched = BlockSeed{false, analysis::BitSet(nb)};
  bool changed = false;
  bool cfg_changed = false;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    if (!ctx.seed.all && !ctx.seed.blocks.test(bi)) continue;
    bool block_changed = false;
    for (IrInst& inst : fn.blocks[bi].insts) {
      // Fold a constant conditional branch into a plain branch.
      if (inst.op == IrOp::CondBr && inst.a.is_imm()) {
        const int target = inst.a.imm != 0 ? inst.block_then : inst.block_else;
        inst = IrInst{};
        inst.op = IrOp::Br;
        inst.block_then = target;
        block_changed = true;
        cfg_changed = true;
        continue;
      }
      block_changed |= fold_inst(inst);
    }
    if (block_changed) {
      ctx.touched.blocks.set(bi);
      changed = true;
    }
  }
  if (changed) {
    // Folding keeps every def at its position with its guard, so the
    // def-site structure survives; the graph and dominance survive too
    // unless a conditional branch collapsed (an edge disappeared, which
    // also moves the reaching-defs solution).
    auto preserved = analysis::PreservedAnalyses::none();
    if (!cfg_changed) {
      preserved.preserve(analysis::AnalysisKind::kCfg)
          .preserve(analysis::AnalysisKind::kDominators)
          .preserve(analysis::AnalysisKind::kReachingDefs);
    }
    ctx.am.invalidate(fn, preserved, "constfold");
  }
  return changed;
}

bool pass_constfold(ir::Function& fn) {
  analysis::AnalysisManager am;
  PassContext ctx(am);
  return pass_constfold(fn, ctx);
}

}  // namespace cepic::opt
