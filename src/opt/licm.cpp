// Loop-invariant code motion: pure computations whose operands are not
// defined inside a loop move to a freshly created preheader. The big
// winners on this IR are re-materialised global addresses and constants
// inside hot loops (the frontend emits a GlobalAddr per access; local
// CSE removes duplicates within an iteration but not across them).
//
// Loop shape handled: a header H whose CondBr enters a single-block body
// B that branches straight back to H (the shape the frontend + CFG
// simplification produce for while/for loops without inner control
// flow). Safety in the non-SSA IR:
//  * only unguarded, side-effect-free, non-memory instructions move
//    (division is fault-free by our defined semantics, so it may
//    speculate past a zero-trip loop);
//  * the destination must be defined exactly once inside the loop and
//    must not be live into the header (it could carry a pre-loop value
//    around a zero-trip execution) nor live into the loop exit.
#include <set>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::BasicBlock;
using ir::IrInst;
using ir::IrOp;
using ir::VReg;

bool hoistable_op(const IrInst& inst) {
  if (inst.guard != ir::kNoVReg) return false;
  switch (inst.op) {
    case IrOp::Mov:
    case IrOp::GlobalAddr:
    case IrOp::FrameAddr:
      return true;
    default:
      return ir::is_binary_alu(inst.op) || ir::is_cmp(inst.op);
  }
}

struct Loop {
  int header;
  int body;
  int exit;
};

/// Find header/body pairs of the handled shape.
std::vector<Loop> find_loops(const ir::Function& fn,
                             const std::vector<std::vector<int>>& preds) {
  std::vector<Loop> loops;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const IrInst& back = fn.blocks[b].terminator();
    if (back.op != IrOp::Br) continue;
    const int h = back.block_then;
    if (h == static_cast<int>(b)) continue;
    const IrInst& head = fn.blocks[h].terminator();
    if (head.op != IrOp::CondBr) continue;
    int exit = -1;
    if (head.block_then == static_cast<int>(b)) {
      exit = head.block_else;
    } else if (head.block_else == static_cast<int>(b)) {
      exit = head.block_then;
    } else {
      continue;
    }
    if (exit == h || exit == static_cast<int>(b)) continue;
    // The body must be entered only from the header.
    if (preds[b].size() != 1 || preds[b][0] != h) continue;
    loops.push_back({h, static_cast<int>(b), exit});
  }
  return loops;
}

}  // namespace

bool pass_licm(ir::Function& fn) {
  bool changed = false;
  const auto preds = predecessors(fn);
  const std::vector<Loop> loops = find_loops(fn, preds);
  if (loops.empty()) return false;
  const Liveness lv = compute_liveness(fn);

  for (const Loop& loop : loops) {
    // Registers defined anywhere in the loop, with def counts.
    std::map<VReg, int> def_count;
    for (int b : {loop.header, loop.body}) {
      for (const IrInst& inst : fn.blocks[b].insts) {
        const VReg d = def_of(inst);
        if (d != ir::kNoVReg) ++def_count[d];
      }
    }

    std::vector<IrInst> hoisted;
    std::set<VReg> hoisted_defs;
    bool moved = true;
    while (moved) {
      moved = false;
      BasicBlock& body = fn.blocks[loop.body];
      for (std::size_t i = 0; i + 1 < body.insts.size(); ++i) {
        const IrInst& inst = body.insts[i];
        if (!hoistable_op(inst)) continue;
        const VReg d = inst.dst;
        if (def_count[d] != 1) continue;
        if (lv.live_in[loop.header].test(d)) continue;
        if (lv.live_in[loop.exit].test(d)) continue;
        bool invariant = true;
        for_each_use(inst, [&](const ir::Value& v) {
          if (v.is_reg() && def_count.count(v.reg) != 0 &&
              hoisted_defs.count(v.reg) == 0) {
            invariant = false;
          }
        });
        if (!invariant) continue;

        hoisted.push_back(inst);
        hoisted_defs.insert(d);
        def_count.erase(d);
        body.insts.erase(body.insts.begin() +
                         static_cast<std::ptrdiff_t>(i));
        moved = true;
        changed = true;
        break;  // indices shifted; rescan
      }
    }
    if (hoisted.empty()) continue;

    // Build the preheader: redirect every non-backedge predecessor of
    // the header to it. (New block indices don't disturb existing ones.)
    IrInst br;
    br.op = IrOp::Br;
    br.block_then = loop.header;
    hoisted.push_back(br);
    const int pre = fn.add_block("preheader");
    fn.blocks[pre].insts = std::move(hoisted);
    for (int p : preds[loop.header]) {
      if (p == loop.body) continue;
      IrInst& term = fn.blocks[p].insts.back();
      if (term.op == IrOp::Br && term.block_then == loop.header) {
        term.block_then = pre;
      } else if (term.op == IrOp::CondBr) {
        if (term.block_then == loop.header) term.block_then = pre;
        if (term.block_else == loop.header) term.block_else = pre;
      }
    }
    // If the header was the entry block, the new preheader must become
    // the entry: swap them.
    if (loop.header == 0) {
      std::swap(fn.blocks[0], fn.blocks[pre]);
      // Fix references to the swapped indices.
      for (BasicBlock& block : fn.blocks) {
        IrInst& t = block.insts.back();
        const auto remap = [&](int x) {
          if (x == 0) return pre;
          if (x == pre) return 0;
          return x;
        };
        if (t.op == IrOp::Br) t.block_then = remap(t.block_then);
        if (t.op == IrOp::CondBr) {
          t.block_then = remap(t.block_then);
          t.block_else = remap(t.block_else);
        }
      }
    }
  }
  return changed;
}

}  // namespace cepic::opt
