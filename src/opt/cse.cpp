// Local common-subexpression elimination: within a block, a pure
// computation with identical operands reuses the earlier result via a
// mov. Loads participate too, invalidated by any store or call (no alias
// analysis — conservative). Guarded instructions neither create nor
// reuse entries (their result is conditional), but their defs still
// invalidate.
//
// The available-expression table is a hash map keyed by
// (op, a, b, global_index).  At most one *live* entry can exist per key
// (a second identical instruction is rewritten to a mov and never
// inserted), so a map lookup returns exactly what the historical linear
// scan found, and the pass stays byte-identical while dropping from
// O(insts * table) to O(insts).  Redefinition kills go through per-vreg
// dependency lists; each entry carries a unique id so a stale dependency
// (left behind by an already-erased entry, or by a previous block) never
// removes a newer entry that happens to reuse the key.
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"
#include "support/bits.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::Value;
using ir::VReg;

/// Order-insensitive 64-bit encoding of a Value (kind tag + payload).
std::uint64_t encode_value(const Value& v) {
  const auto kind = static_cast<std::uint64_t>(v.kind);
  const auto payload = v.is_reg()
                           ? static_cast<std::uint64_t>(v.reg)
                           : static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(v.imm));
  return (kind << 32) | payload;
}

struct Key {
  IrOp op;
  int global_index;
  std::uint64_t a, b;

  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    std::uint64_t h = kFnvOffset64;
    const auto mix = [&h](std::uint64_t x) {
      for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= kFnvPrime64;
      }
    };
    mix(static_cast<std::uint64_t>(k.op));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.global_index)));
    mix(k.a);
    mix(k.b);
    return static_cast<std::size_t>(h);
  }
};

struct Entry {
  VReg result;
  std::uint32_t id;  ///< unique per insertion; stamps dependency records
};

Key key_of(const IrInst& inst) {
  return Key{inst.op, inst.global_index, encode_value(inst.a),
             encode_value(inst.b)};
}

bool cse_eligible(const IrInst& inst) {
  if (inst.guard != ir::kNoVReg) return false;
  switch (inst.op) {
    case IrOp::GlobalAddr:
    case IrOp::FrameAddr:
    case IrOp::LoadW:
    case IrOp::LoadB:
    case IrOp::LoadBU:
      return true;
    default:
      return ir::is_binary_alu(inst.op) || ir::is_cmp(inst.op);
  }
}

struct Dep {
  Key key;
  std::uint32_t id;
};

class Table {
 public:
  explicit Table(std::size_t num_vregs) : deps_(num_vregs) {}

  /// Start a new block: live entries are dropped wholesale; dependency
  /// records go stale instead of being swept (their ids no longer match
  /// anything, so kills skip them).
  void new_block() {
    map_.clear();
    loads_.clear();
  }

  const Entry* lookup(const Key& k) const {
    const auto it = map_.find(k);
    return it == map_.end() ? nullptr : &it->second;
  }

  void insert(const IrInst& inst) {
    const Key k = key_of(inst);
    const std::uint32_t id = next_id_++;
    map_[k] = Entry{inst.dst, id};
    add_dep(inst.dst, k, id);
    if (inst.a.is_reg()) add_dep(inst.a.reg, k, id);
    if (inst.b.is_reg()) add_dep(inst.b.reg, k, id);
    if (ir::is_load(inst.op)) loads_.push_back(Dep{k, id});
  }

  /// A definition of d invalidates entries producing or reading d.
  void kill(VReg d) {
    if (d >= deps_.size()) return;
    for (const Dep& dep : deps_[d]) {
      const auto it = map_.find(dep.key);
      if (it != map_.end() && it->second.id == dep.id) map_.erase(it);
    }
    deps_[d].clear();
  }

  /// Stores and calls clobber memory: drop load entries.
  void kill_loads() {
    for (const Dep& dep : loads_) {
      const auto it = map_.find(dep.key);
      if (it != map_.end() && it->second.id == dep.id) map_.erase(it);
    }
    loads_.clear();
  }

 private:
  void add_dep(VReg v, const Key& k, std::uint32_t id) {
    if (v < deps_.size()) deps_[v].push_back(Dep{k, id});
  }

  std::unordered_map<Key, Entry, KeyHash> map_;
  std::vector<std::vector<Dep>> deps_;  ///< per vreg, lazily invalidated
  std::vector<Dep> loads_;              ///< live load entries this block
  std::uint32_t next_id_ = 0;
};

bool cse_block(ir::BasicBlock& block, Table& table) {
  bool changed = false;
  table.new_block();
  for (IrInst& inst : block.insts) {
    if (ir::is_store(inst.op) || inst.op == IrOp::Call) table.kill_loads();

    if (cse_eligible(inst)) {
      if (const Entry* hit = table.lookup(key_of(inst))) {
        const VReg dst = inst.dst;
        const VReg src = hit->result;
        inst = IrInst{};
        inst.op = IrOp::Mov;
        inst.dst = dst;
        inst.a = Value::r(src);
        changed = true;
      }
    }

    const VReg d = def_of(inst);
    if (d != ir::kNoVReg) {
      table.kill(d);
      if (cse_eligible(inst) && inst.op != IrOp::Mov) table.insert(inst);
    }
  }
  return changed;
}

}  // namespace

bool pass_cse(ir::Function& fn, PassContext& ctx) {
  const std::size_t nb = fn.blocks.size();
  ctx.touched = BlockSeed{false, analysis::BitSet(nb)};
  Table table(fn.next_vreg);
  bool changed = false;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    if (!ctx.seed.all && !ctx.seed.blocks.test(bi)) continue;
    if (cse_block(fn.blocks[bi], table)) {
      ctx.touched.blocks.set(bi);
      changed = true;
    }
  }
  if (changed) {
    // Rewrites replace an instruction with a mov to the same dst at the
    // same position and never touch terminators or guards: the graph,
    // dominance and the def-site structure all survive.
    ctx.am.invalidate(fn,
                      analysis::PreservedAnalyses::none()
                          .preserve(analysis::AnalysisKind::kCfg)
                          .preserve(analysis::AnalysisKind::kDominators)
                          .preserve(analysis::AnalysisKind::kReachingDefs),
                      "cse");
  }
  return changed;
}

bool pass_cse(ir::Function& fn) {
  analysis::AnalysisManager am;
  PassContext ctx(am);
  return pass_cse(fn, ctx);
}

}  // namespace cepic::opt
