// Local common-subexpression elimination: within a block, a pure
// computation with identical operands reuses the earlier result via a
// mov. Loads participate too, invalidated by any store or call (no alias
// analysis — conservative). Guarded instructions neither create nor
// reuse entries (their result is conditional), but their defs still
// invalidate.
#include <vector>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::Value;
using ir::VReg;

struct Entry {
  IrOp op;
  Value a, b;
  int global_index;
  VReg result;
};

bool value_eq(const Value& x, const Value& y) { return x == y; }

bool cse_eligible(const IrInst& inst) {
  if (inst.guard != ir::kNoVReg) return false;
  switch (inst.op) {
    case IrOp::GlobalAddr:
    case IrOp::FrameAddr:
    case IrOp::LoadW:
    case IrOp::LoadB:
    case IrOp::LoadBU:
      return true;
    default:
      return ir::is_binary_alu(inst.op) || ir::is_cmp(inst.op);
  }
}

}  // namespace

bool pass_cse(ir::Function& fn) {
  bool changed = false;
  std::vector<Entry> table;
  for (ir::BasicBlock& block : fn.blocks) {
    table.clear();
    for (IrInst& inst : block.insts) {
      // Stores and calls clobber memory: drop load entries.
      if (ir::is_store(inst.op) || inst.op == IrOp::Call) {
        std::erase_if(table,
                      [](const Entry& e) { return ir::is_load(e.op); });
      }

      if (cse_eligible(inst)) {
        const Entry* hit = nullptr;
        for (const Entry& e : table) {
          if (e.op == inst.op && value_eq(e.a, inst.a) &&
              value_eq(e.b, inst.b) && e.global_index == inst.global_index) {
            hit = &e;
            break;
          }
        }
        if (hit != nullptr) {
          const VReg dst = inst.dst;
          const VReg src = hit->result;
          inst = IrInst{};
          inst.op = IrOp::Mov;
          inst.dst = dst;
          inst.a = Value::r(src);
          changed = true;
        }
      }

      const VReg d = def_of(inst);
      if (d != ir::kNoVReg) {
        // Any redefinition invalidates entries using or producing d.
        std::erase_if(table, [d](const Entry& e) {
          return e.result == d || (e.a.is_reg() && e.a.reg == d) ||
                 (e.b.is_reg() && e.b.reg == d);
        });
        if (cse_eligible(inst) && inst.op != IrOp::Mov) {
          table.push_back(
              {inst.op, inst.a, inst.b, inst.global_index, inst.dst});
        }
      }
    }
  }
  return changed;
}

}  // namespace cepic::opt
