// Small CFG/dataflow utilities shared by the optimiser passes and the
// back-ends: successor/predecessor computation, operand visitation, and
// per-block liveness.
#pragma once

#include <vector>

#include "ir/ir.hpp"

namespace cepic::opt {

/// Successor block indices of a block (from its terminator).
std::vector<int> successors(const ir::BasicBlock& block);

/// preds[b] = blocks branching to b.
std::vector<std::vector<int>> predecessors(const ir::Function& fn);

/// The vreg defined by an instruction, or kNoVReg.
ir::VReg def_of(const ir::IrInst& inst);

/// Invoke fn(Value&) on every value operand the instruction *reads*
/// (a/b/c/args as applicable; the guard is visited separately since it
/// is a bare vreg).
template <typename Fn>
void for_each_use(ir::IrInst& inst, Fn&& fn) {
  using ir::IrOp;
  switch (inst.op) {
    case IrOp::GlobalAddr:
    case IrOp::FrameAddr:
      break;
    case IrOp::Call:
      for (ir::Value& v : inst.args) fn(v);
      break;
    case IrOp::Ret:
    case IrOp::Out:
    case IrOp::Mov:
    case IrOp::CondBr:
      if (!inst.a.is_none()) fn(inst.a);
      break;
    case IrOp::Br:
      break;
    case IrOp::StoreW:
    case IrOp::StoreB:
      fn(inst.a);
      fn(inst.b);
      fn(inst.c);
      break;
    default:
      if (!inst.a.is_none()) fn(inst.a);
      if (!inst.b.is_none()) fn(inst.b);
      break;
  }
}

template <typename Fn>
void for_each_use(const ir::IrInst& inst, Fn&& fn) {
  for_each_use(const_cast<ir::IrInst&>(inst),
               [&fn](ir::Value& v) { fn(static_cast<const ir::Value&>(v)); });
}

/// Per-block liveness (vreg -> bit), computed by the usual backward
/// fixed point. live_in[b][v] / live_out[b][v].
struct Liveness {
  std::vector<std::vector<bool>> live_in;
  std::vector<std::vector<bool>> live_out;
};

Liveness compute_liveness(const ir::Function& fn);

}  // namespace cepic::opt
