// Forwarding shim: the CFG/dataflow utilities the optimiser passes were
// born with now live in src/analysis (shared with the linter and the
// soundness harness).  This header keeps the historical cepic::opt
// spellings working; new code should include analysis/cfg.hpp and
// analysis/analyses.hpp directly.
#pragma once

#include "analysis/analyses.hpp"
#include "analysis/cfg.hpp"

namespace cepic::opt {

using analysis::def_of;
using analysis::for_each_use;
using analysis::predecessors;
using analysis::successors;

using analysis::compute_liveness;
using analysis::Liveness;

}  // namespace cepic::opt
