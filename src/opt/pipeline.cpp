#include "ir/verify.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

void optimize(ir::Module& module, const OptOptions& options) {
  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;
    if (options.inline_calls) {
      changed |= pass_inline(module, options.inline_max_insts);
    }
    for (ir::Function& fn : module.functions) {
      if (options.simplify_cfg) changed |= pass_simplify_cfg(fn);
      if (options.fold) changed |= pass_constfold(fn);
      if (options.copy_propagate) changed |= pass_copy_propagate(fn);
      if (options.cse) changed |= pass_cse(fn);
      if (options.licm) {
        changed |= pass_licm(fn);
        if (options.simplify_cfg) changed |= pass_simplify_cfg(fn);
        if (options.copy_propagate) changed |= pass_copy_propagate(fn);
        if (options.cse) changed |= pass_cse(fn);
      }
      if (options.fold) changed |= pass_constfold(fn);
      if (options.copy_propagate) changed |= pass_copy_propagate(fn);
      if (options.dce) changed |= pass_dce(fn);
      if (options.if_convert) {
        changed |= pass_if_convert(fn, options.if_convert_max_ops);
        if (options.simplify_cfg) changed |= pass_simplify_cfg(fn);
      }
    }
    if (!changed) break;
  }
  ir::verify_module(module);
}

}  // namespace cepic::opt
