#include <cstdlib>

#include "ir/verify.hpp"
#include "obs/obs.hpp"
#include "opt/opt.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::opt {

namespace {

/// Re-verify the whole module after `pass` and pin the blame on it:
/// a corrupt module at this point was legal before the pass ran.
void verify_after(const ir::Module& module, const char* pass) {
  try {
    ir::verify_module(module);
  } catch (const InternalError& e) {
    throw InternalError(cat("after pass ", pass, ": ", e.what()));
  }
}

}  // namespace

void optimize(ir::Module& module, const OptOptions& options) {
  obs::Span opt_span("optimize", "opt");
  // Environment hook so any flow (tools, tests, benches) can switch on
  // per-pass verification without plumbing an option through. Read-only
  // env access; nothing in the toolchain calls setenv concurrently.
  const bool verify_each =
      options.verify_each_pass ||
      std::getenv("CEPIC_VERIFY_IR") != nullptr;  // NOLINT(concurrency-mt-unsafe)
  // Wrap each pass: run it, then (in verify mode) prove the module is
  // still structurally legal before the next pass consumes it.
  const auto fn_pass = [&](bool (*pass)(ir::Function&), const char* name,
                           ir::Function& fn) {
    obs::Span span(name, "opt");
    span.arg("fn", fn.name);
    const bool changed = pass(fn);
    if (verify_each) verify_after(module, name);
    return changed;
  };
  int rounds_run = 0;
  for (int round = 0; round < options.max_rounds; ++round) {
    ++rounds_run;
    bool changed = false;
    if (options.inline_calls) {
      obs::Span span("inline", "opt");
      changed |= pass_inline(module, options.inline_max_insts);
      if (verify_each) verify_after(module, "inline");
    }
    for (ir::Function& fn : module.functions) {
      if (options.simplify_cfg) {
        changed |= fn_pass(pass_simplify_cfg, "simplify_cfg", fn);
      }
      if (options.fold) changed |= fn_pass(pass_constfold, "constfold", fn);
      if (options.copy_propagate) {
        changed |= fn_pass(pass_copy_propagate, "copy_propagate", fn);
      }
      if (options.cse) changed |= fn_pass(pass_cse, "cse", fn);
      if (options.licm) {
        changed |= fn_pass(pass_licm, "licm", fn);
        if (options.simplify_cfg) {
          changed |= fn_pass(pass_simplify_cfg, "simplify_cfg", fn);
        }
        if (options.copy_propagate) {
          changed |= fn_pass(pass_copy_propagate, "copy_propagate", fn);
        }
        if (options.cse) changed |= fn_pass(pass_cse, "cse", fn);
      }
      if (options.fold) changed |= fn_pass(pass_constfold, "constfold", fn);
      if (options.copy_propagate) {
        changed |= fn_pass(pass_copy_propagate, "copy_propagate", fn);
      }
      if (options.dce) changed |= fn_pass(pass_dce, "dce", fn);
      if (options.if_convert) {
        bool ic = false;
        {
          obs::Span span("if_convert", "opt");
          span.arg("fn", fn.name);
          ic = pass_if_convert(fn, options.if_convert_max_ops);
        }
        if (verify_each) verify_after(module, "if_convert");
        changed |= ic;
        if (options.simplify_cfg) {
          changed |= fn_pass(pass_simplify_cfg, "simplify_cfg", fn);
        }
      }
    }
    if (!changed) break;
  }
  opt_span.arg("rounds", static_cast<std::uint64_t>(rounds_run));
  ir::verify_module(module);
}

}  // namespace cepic::opt
