// The pass driver.  Historically this iterated the whole pass battery
// over the whole module until a round changed nothing — every pass
// rescanned every function every round.  The driver now runs the same
// battery in the same order (output IR is pinned byte-identical by
// tests/golden), but each invocation is change-driven:
//
//  * a shared AnalysisManager caches Cfg/dominators/liveness/reaching-
//    defs/available-copies per function; passes declare what they
//    preserved, so only genuinely stale results are recomputed;
//  * every (function, pass) pair remembers the manager version at which
//    the pass last reported "no change"; a deterministic pass re-run on
//    an unchanged function is provably a no-op, so the invocation is
//    skipped outright (`opt.pass_skips`);
//  * the sparse pass variants are seeded with the blocks earlier passes
//    actually touched instead of rescanning the function.
//
// The outer round loop survives only as the inline barrier the battery
// is ordered around (inlining between rounds is semantically
// observable); once the module converges a round degenerates to a
// handful of version checks and the loop exits having run nothing.
#include <cstdlib>
#include <vector>

#include "analysis/manager.hpp"
#include "ir/verify.hpp"
#include "obs/obs.hpp"
#include "opt/opt.hpp"
#include "support/arena.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::opt {

namespace {

/// Re-verify the whole module after `pass` and pin the blame on it:
/// a corrupt module at this point was legal before the pass ran.
void verify_after(const ir::Module& module, const char* pass) {
  try {
    ir::verify_module(module);
  } catch (const InternalError& e) {
    throw InternalError(cat("after pass ", pass, ": ", e.what()));
  }
}

enum PassId {
  kSimplifyCfg = 0,
  kConstfold,
  kCopyprop,
  kCse,
  kLicm,
  kDce,
  kIfConvert,
  kNumPassIds,
};

/// Everything the driver remembers about one function between pass
/// invocations: per-pass clean versions and dirty-block sets, plus the
/// sparse passes' cross-invocation snapshots.
struct FnState {
  std::uint64_t clean_version[kNumPassIds] = {};
  BlockSeed pending[kNumPassIds];  // defaults to all-dirty
  DceState dce;
  CopypropState cp;

  /// Blocks were renumbered/added/removed: every block-level fact about
  /// this function is void.
  void mark_all_dirty() {
    for (BlockSeed& p : pending) p = BlockSeed{};
    dce.valid = false;
    cp.valid = false;
  }

  /// Fold a pass's touched set into every other pass's pending set.
  void absorb_touched(PassId pass, BlockSeed&& touched) {
    if (touched.all) {
      mark_all_dirty();
      return;
    }
    const std::size_t nb = touched.blocks.size();
    for (int q = 0; q < kNumPassIds; ++q) {
      if (q == pass) continue;
      BlockSeed& p = pending[q];
      if (p.all) continue;
      if (p.blocks.size() != nb) {
        p = BlockSeed{};  // stale sizing; treat as all-dirty
        continue;
      }
      p.blocks.ior(touched.blocks);
    }
    // The pass itself just processed its seed; only its own touches can
    // need a revisit.
    pending[pass] = BlockSeed{false, std::move(touched.blocks)};
  }
};

class Driver {
 public:
  Driver(ir::Module& module, const OptOptions& options)
      : module_(module),
        options_(options),
        verify_each_(
            options.verify_each_pass ||
            std::getenv("CEPIC_VERIFY_IR") != nullptr),  // NOLINT(concurrency-mt-unsafe)
        states_(module.functions.size()) {
    am_.set_verify(
        options.verify_analyses ||
        std::getenv("CEPIC_VERIFY_ANALYSES") != nullptr);  // NOLINT(concurrency-mt-unsafe)
  }

  analysis::AnalysisManager& manager() { return am_; }

  /// Run a manager-aware (sparse) pass on one function.
  template <typename Pass>
  bool run(PassId id, const char* name, Pass pass, std::size_t fi) {
    ir::Function& fn = module_.functions[fi];
    FnState& st = states_[fi];
    if (skip(id, st, fn)) return false;
    PassContext ctx(am_);
    if (options_.incremental) {
      ctx.seed = std::move(st.pending[id]);
      st.pending[id] = BlockSeed{};
      if (id == kDce) ctx.dce_state = &st.dce;
      if (id == kCopyprop) ctx.cp_state = &st.cp;
    }
    bool changed = false;
    {
      obs::Span span(name, "opt");
      obs::ScopedObserve latency("opt.pass_ns");
      span.arg("fn", fn.name);
      changed = pass(fn, ctx);
    }
    obs::add("opt.pass_runs");
    if (verify_each_) verify_after(module_, name);
    if (changed) {
      st.absorb_touched(id, std::move(ctx.touched));
    } else {
      mark_clean(id, st, fn);
    }
    return changed;
  }

  /// Run a dense legacy pass (licm, if_convert) on one function; any
  /// change voids everything the manager and driver knew about it.
  template <typename Pass>
  bool run_dense(PassId id, const char* name, Pass pass, std::size_t fi) {
    ir::Function& fn = module_.functions[fi];
    FnState& st = states_[fi];
    if (skip(id, st, fn)) return false;
    bool changed = false;
    {
      obs::Span span(name, "opt");
      obs::ScopedObserve latency("opt.pass_ns");
      span.arg("fn", fn.name);
      changed = pass(fn);
    }
    obs::add("opt.pass_runs");
    if (verify_each_) verify_after(module_, name);
    if (changed) {
      am_.invalidate_all(fn);
      st.mark_all_dirty();
    } else {
      mark_clean(id, st, fn);
    }
    return changed;
  }

  /// Inlining reads every callee while rewriting callers, so its skip
  /// condition is module-wide: every function unchanged since the last
  /// no-op inline run.
  bool run_inline() {
    if (options_.incremental &&
        inline_clean_.size() == module_.functions.size()) {
      bool clean = true;
      for (std::size_t fi = 0; fi < module_.functions.size(); ++fi) {
        if (inline_clean_[fi] != am_.version(module_.functions[fi])) {
          clean = false;
          break;
        }
      }
      if (clean) {
        obs::add("opt.pass_skips");
        return false;
      }
    }
    std::vector<bool> fn_changed;
    bool changed = false;
    {
      obs::Span span("inline", "opt");
      obs::ScopedObserve latency("opt.pass_ns");
      changed = pass_inline(module_, options_.inline_max_insts, &fn_changed);
    }
    obs::add("opt.pass_runs");
    if (verify_each_) verify_after(module_, "inline");
    if (changed) {
      inline_clean_.clear();
      for (std::size_t fi = 0; fi < module_.functions.size(); ++fi) {
        if (fn_changed[fi]) {
          am_.invalidate_all(module_.functions[fi]);
          states_[fi].mark_all_dirty();
        }
      }
    } else {
      inline_clean_.resize(module_.functions.size());
      for (std::size_t fi = 0; fi < module_.functions.size(); ++fi) {
        inline_clean_[fi] = am_.version(module_.functions[fi]);
      }
    }
    return changed;
  }

 private:
  bool skip(PassId id, const FnState& st, const ir::Function& fn) {
    if (options_.incremental &&
        st.clean_version[id] == am_.version(fn)) {
      obs::add("opt.pass_skips");
      return true;
    }
    return false;
  }

  void mark_clean(PassId id, FnState& st, const ir::Function& fn) {
    st.clean_version[id] = am_.version(fn);
    st.pending[id] =
        BlockSeed{false, analysis::BitSet(fn.blocks.size())};
  }

  ir::Module& module_;
  const OptOptions& options_;
  const bool verify_each_;
  analysis::AnalysisManager am_;
  std::vector<FnState> states_;
  std::vector<std::uint64_t> inline_clean_;
};

}  // namespace

void optimize(ir::Module& module, const OptOptions& options) {
  obs::Span opt_span("optimize", "opt");
  Driver driver(module, options);

  // Pass battery and ordering are load-bearing: the optimized IR (and
  // the golden digests pinning it) depends on the exact sequence.
  int rounds_run = 0;
  for (int round = 0; round < options.max_rounds; ++round) {
    ++rounds_run;
    bool changed = false;
    if (options.inline_calls) changed |= driver.run_inline();
    for (std::size_t fi = 0; fi < module.functions.size(); ++fi) {
      if (options.simplify_cfg) {
        changed |= driver.run(kSimplifyCfg, "simplify_cfg",
                              [](ir::Function& fn, PassContext& ctx) {
                                return pass_simplify_cfg(fn, ctx);
                              },
                              fi);
      }
      const auto constfold = [](ir::Function& fn, PassContext& ctx) {
        return pass_constfold(fn, ctx);
      };
      const auto copyprop = [](ir::Function& fn, PassContext& ctx) {
        return pass_copy_propagate(fn, ctx);
      };
      const auto cse = [](ir::Function& fn, PassContext& ctx) {
        return pass_cse(fn, ctx);
      };
      if (options.fold) changed |= driver.run(kConstfold, "constfold",
                                              constfold, fi);
      if (options.copy_propagate) {
        changed |= driver.run(kCopyprop, "copy_propagate", copyprop, fi);
      }
      if (options.cse) changed |= driver.run(kCse, "cse", cse, fi);
      if (options.licm) {
        changed |= driver.run_dense(kLicm, "licm",
                                    [](ir::Function& fn) {
                                      return pass_licm(fn);
                                    },
                                    fi);
        if (options.simplify_cfg) {
          changed |= driver.run(kSimplifyCfg, "simplify_cfg",
                                [](ir::Function& fn, PassContext& ctx) {
                                  return pass_simplify_cfg(fn, ctx);
                                },
                                fi);
        }
        if (options.copy_propagate) {
          changed |= driver.run(kCopyprop, "copy_propagate", copyprop, fi);
        }
        if (options.cse) changed |= driver.run(kCse, "cse", cse, fi);
      }
      if (options.fold) changed |= driver.run(kConstfold, "constfold",
                                              constfold, fi);
      if (options.copy_propagate) {
        changed |= driver.run(kCopyprop, "copy_propagate", copyprop, fi);
      }
      if (options.dce) {
        changed |= driver.run(kDce, "dce",
                              [](ir::Function& fn, PassContext& ctx) {
                                return pass_dce(fn, ctx);
                              },
                              fi);
      }
      if (options.if_convert) {
        changed |= driver.run_dense(
            kIfConvert, "if_convert",
            [&options](ir::Function& fn) {
              return pass_if_convert(fn, options.if_convert_max_ops);
            },
            fi);
        if (options.simplify_cfg) {
          changed |= driver.run(kSimplifyCfg, "simplify_cfg",
                                [](ir::Function& fn, PassContext& ctx) {
                                  return pass_simplify_cfg(fn, ctx);
                                },
                                fi);
        }
      }
    }
    if (!changed) break;
  }
  opt_span.arg("rounds", static_cast<std::uint64_t>(rounds_run));
  obs::Registry::instance().set_gauge(
      "opt.arena_reserved_bytes",
      static_cast<double>(Arena::scratch().bytes_reserved()));
  obs::Registry::instance().set_gauge(
      "opt.arena_peak_bytes",
      static_cast<double>(Arena::scratch().bytes_peak()));
  ir::verify_module(module);
}

}  // namespace cepic::opt
