// Global copy and constant propagation on the non-SSA IR.  `mov d, x`
// records d -> x; later reads of d become x until either d or x is
// redefined.  Cross-block facts come from the framework's available-
// copies analysis (forward, intersection join), so a copy survives a
// join point only when it holds on every incoming path.  Guarded movs
// are conditional and are never propagated.
//
// Sparse mode: rewriting a block is a pure function of its contents and
// the (dst, src) facts available on entry, so a block is skipped when
// neither changed since this pass last left it alone.  The previous
// facts live in the driver-owned CopypropState, stored sorted so the
// comparison is independent of site renumbering.
#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::Value;
using ir::VReg;

class CopyMap {
public:
  void clear() {
    map_.clear();
    by_src_.clear();
  }

  /// Resolve v through the copy chain.
  Value resolve(Value v) const {
    int fuel = 64;  // chains are short; guard against cycles regardless
    while (v.is_reg() && fuel-- > 0) {
      const auto it = map_.find(v.reg);
      if (it == map_.end()) return v;
      v = it->second;
    }
    return v;
  }

  void record(VReg dst, Value src) {
    map_[dst] = src;
    if (src.is_reg()) by_src_[src.reg].push_back(dst);
  }

  /// A definition of d invalidates d's entry and entries copying from d.
  void kill(VReg d) {
    map_.erase(d);
    const auto it = by_src_.find(d);
    if (it == by_src_.end()) return;
    for (const VReg dst : it->second) {
      // The reverse index keeps stale dsts (re-recorded with another
      // src, or already killed); erase only a still-matching entry.
      const auto mit = map_.find(dst);
      if (mit != map_.end() && mit->second.is_reg() && mit->second.reg == d) {
        map_.erase(mit);
      }
    }
    by_src_.erase(it);
  }

private:
  std::unordered_map<VReg, Value> map_;
  std::unordered_map<VReg, std::vector<VReg>> by_src_;
};

/// Rewrite one block against the copies valid on entry; true if changed.
bool propagate_block(ir::BasicBlock& block, CopyMap& copies) {
  bool changed = false;
  for (IrInst& inst : block.insts) {
    for_each_use(inst, [&](Value& v) {
      const Value resolved = copies.resolve(v);
      if (!(resolved == v)) {
        v = resolved;
        changed = true;
      }
    });
    // Note: the guard is deliberately not rewritten — a guard must
    // stay a vreg, and the backend prefers compare results directly.
    if (inst.guard != ir::kNoVReg) {
      const Value g = copies.resolve(Value::r(inst.guard));
      if (g.is_reg() && g.reg != inst.guard) {
        inst.guard = g.reg;
        changed = true;
      }
    }
    const VReg d = def_of(inst);
    if (d != ir::kNoVReg) {
      copies.kill(d);
      if (inst.op == IrOp::Mov && inst.guard == ir::kNoVReg) {
        const Value src = inst.a;
        if (!(src.is_reg() && src.reg == d)) copies.record(d, src);
      }
    }
  }
  return changed;
}

using Facts = std::vector<std::pair<VReg, Value>>;

bool fact_less(const std::pair<VReg, Value>& x,
               const std::pair<VReg, Value>& y) {
  if (x.first != y.first) return x.first < y.first;
  if (x.second.kind != y.second.kind) return x.second.kind < y.second.kind;
  if (x.second.is_reg()) return x.second.reg < y.second.reg;
  return x.second.imm < y.second.imm;
}

}  // namespace

bool pass_copy_propagate(ir::Function& fn, PassContext& ctx) {
  const std::size_t nb = fn.blocks.size();
  ctx.touched = BlockSeed{false, analysis::BitSet(nb)};
  const analysis::AvailableCopies& ac = ctx.am.available_copies(fn);

  // The sorted entry facts of every block, both the skip criterion and
  // the CopyMap seed.  At most one site per dst can be simultaneously
  // available (a second mov to the same dst kills the first), so the
  // sorted form is canonical.
  std::vector<Facts> facts(nb);
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t s = 0; s < ac.sites.size(); ++s) {
      if (ac.avail_in[bi].test(s)) {
        facts[bi].emplace_back(ac.sites[s].dst, ac.sites[s].src);
      }
    }
    std::sort(facts[bi].begin(), facts[bi].end(), fact_less);
  }

  const bool have_snapshot = ctx.cp_state != nullptr &&
                             ctx.cp_state->valid &&
                             ctx.cp_state->avail_in.size() == nb;
  bool changed = false;
  CopyMap copies;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const bool seeded = ctx.seed.all || ctx.seed.blocks.test(bi);
    if (!seeded && have_snapshot &&
        ctx.cp_state->avail_in[bi] == facts[bi]) {
      continue;  // same contents, same entry facts -> provably a no-op
    }
    copies.clear();
    for (const auto& [dst, src] : facts[bi]) copies.record(dst, src);
    if (propagate_block(fn.blocks[bi], copies)) {
      ctx.touched.blocks.set(bi);
      changed = true;
    }
  }

  if (ctx.cp_state != nullptr) {
    ctx.cp_state->avail_in = std::move(facts);
    ctx.cp_state->valid = true;
  }
  if (changed) {
    // Operand rewrites only: no instruction moves, no dst changes, no
    // guard appears or disappears — the graph, dominance and the
    // def-site structure survive.
    ctx.am.invalidate(fn,
                      analysis::PreservedAnalyses::none()
                          .preserve(analysis::AnalysisKind::kCfg)
                          .preserve(analysis::AnalysisKind::kDominators)
                          .preserve(analysis::AnalysisKind::kReachingDefs),
                      "copy_propagate");
  }
  return changed;
}

bool pass_copy_propagate(ir::Function& fn) {
  analysis::AnalysisManager am;
  PassContext ctx(am);
  return pass_copy_propagate(fn, ctx);
}

}  // namespace cepic::opt
