// Global copy and constant propagation on the non-SSA IR.  `mov d, x`
// records d -> x; later reads of d become x until either d or x is
// redefined.  Cross-block facts come from the framework's available-
// copies analysis (forward, intersection join), so a copy survives a
// join point only when it holds on every incoming path.  Guarded movs
// are conditional and are never propagated.
#include <unordered_map>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::Value;
using ir::VReg;

class CopyMap {
public:
  void clear() { map_.clear(); }

  /// Resolve v through the copy chain.
  Value resolve(Value v) const {
    int fuel = 64;  // chains are short; guard against cycles regardless
    while (v.is_reg() && fuel-- > 0) {
      const auto it = map_.find(v.reg);
      if (it == map_.end()) return v;
      v = it->second;
    }
    return v;
  }

  void record(VReg dst, Value src) { map_[dst] = src; }

  /// A definition of d invalidates d's entry and entries copying from d.
  void kill(VReg d) {
    map_.erase(d);
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.is_reg() && it->second.reg == d) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

private:
  std::unordered_map<VReg, Value> map_;
};

}  // namespace

bool pass_copy_propagate(ir::Function& fn) {
  bool changed = false;
  const analysis::Cfg cfg = analysis::Cfg::build(fn);
  const analysis::AvailableCopies ac =
      analysis::compute_available_copies(fn, cfg);
  CopyMap copies;
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    ir::BasicBlock& block = fn.blocks[bi];
    copies.clear();
    // Seed with the copies valid on every path into this block.  At
    // most one site per dst can be simultaneously available (a second
    // mov to the same dst kills the first), so insertion order is
    // irrelevant.
    for (std::size_t s = 0; s < ac.sites.size(); ++s) {
      if (ac.avail_in[bi].test(s)) {
        copies.record(ac.sites[s].dst, ac.sites[s].src);
      }
    }
    for (IrInst& inst : block.insts) {
      for_each_use(inst, [&](Value& v) {
        const Value resolved = copies.resolve(v);
        if (!(resolved == v)) {
          v = resolved;
          changed = true;
        }
      });
      // Note: the guard is deliberately not rewritten — a guard must
      // stay a vreg, and the backend prefers compare results directly.
      if (inst.guard != ir::kNoVReg) {
        const Value g = copies.resolve(Value::r(inst.guard));
        if (g.is_reg() && g.reg != inst.guard) {
          inst.guard = g.reg;
          changed = true;
        }
      }
      const VReg d = def_of(inst);
      if (d != ir::kNoVReg) {
        copies.kill(d);
        if (inst.op == IrOp::Mov && inst.guard == ir::kNoVReg) {
          const Value src = inst.a;
          if (!(src.is_reg() && src.reg == d)) copies.record(d, src);
        }
      }
    }
  }
  return changed;
}

}  // namespace cepic::opt
