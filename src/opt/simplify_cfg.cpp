// Control-flow cleanup: thread jumps through empty forwarding blocks,
// merge single-predecessor fallthrough chains (bigger blocks = bigger
// scheduling regions for the EPIC list scheduler), fold trivial
// conditional branches, and drop unreachable blocks.
#include <algorithm>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::IrOp;

/// A block containing only `br X` forwards to X.
bool is_forwarder(const ir::BasicBlock& block, int& target) {
  if (block.insts.size() != 1) return false;
  const IrInst& t = block.insts[0];
  if (t.op != IrOp::Br) return false;
  target = t.block_then;
  return true;
}

int thread_target(const ir::Function& fn, int target) {
  int fuel = static_cast<int>(fn.blocks.size());
  int next = 0;
  while (fuel-- > 0 && is_forwarder(fn.blocks[target], next) &&
         next != target) {
    target = next;
  }
  return target;
}

bool thread_jumps(ir::Function& fn) {
  bool changed = false;
  for (ir::BasicBlock& block : fn.blocks) {
    IrInst& t = block.insts.back();
    if (t.op == IrOp::Br) {
      const int nt = thread_target(fn, t.block_then);
      if (nt != t.block_then) {
        t.block_then = nt;
        changed = true;
      }
    } else if (t.op == IrOp::CondBr) {
      const int nt = thread_target(fn, t.block_then);
      const int ne = thread_target(fn, t.block_else);
      if (nt != t.block_then || ne != t.block_else) {
        t.block_then = nt;
        t.block_else = ne;
        changed = true;
      }
      // Both arms equal: degrade to an unconditional branch.
      if (t.block_then == t.block_else) {
        const int target = t.block_then;
        t = IrInst{};
        t.op = IrOp::Br;
        t.block_then = target;
        changed = true;
      }
    }
  }
  return changed;
}

bool merge_chains(ir::Function& fn) {
  bool changed = false;
  const auto preds = predecessors(fn);
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (;;) {
      ir::BasicBlock& block = fn.blocks[b];
      IrInst& t = block.insts.back();
      if (t.op != IrOp::Br) break;
      const int succ = t.block_then;
      if (succ == static_cast<int>(b) || succ == 0) break;  // not entry
      if (preds[succ].size() != 1) break;
      // Splice succ's instructions in place of our Br. succ becomes
      // unreachable and is removed below.
      block.insts.pop_back();
      ir::BasicBlock& victim = fn.blocks[succ];
      std::move(victim.insts.begin(), victim.insts.end(),
                std::back_inserter(block.insts));
      victim.insts.clear();
      IrInst dead_ret;
      dead_ret.op = IrOp::Ret;
      if (fn.returns_value) dead_ret.a = ir::Value::i(0);
      victim.insts.push_back(dead_ret);
      changed = true;
      // The merged terminator may itself be a Br to another mergeable
      // block, but preds are stale now; stop and let the next round
      // continue.
      break;
    }
  }
  return changed;
}

bool remove_unreachable(ir::Function& fn) {
  // Graph reachability comes from the shared CFG; this pass only owns
  // the compaction/renumbering.
  const std::vector<bool> reachable = analysis::Cfg::build(fn).reachable;
  if (std::all_of(reachable.begin(), reachable.end(),
                  [](bool r) { return r; })) {
    return false;
  }
  std::vector<int> remap(fn.blocks.size(), -1);
  std::vector<ir::BasicBlock> kept;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    if (reachable[b]) {
      remap[b] = static_cast<int>(kept.size());
      kept.push_back(std::move(fn.blocks[b]));
    }
  }
  for (ir::BasicBlock& block : kept) {
    IrInst& t = block.insts.back();
    if (t.op == IrOp::Br) t.block_then = remap[t.block_then];
    if (t.op == IrOp::CondBr) {
      t.block_then = remap[t.block_then];
      t.block_else = remap[t.block_else];
    }
  }
  fn.blocks = std::move(kept);
  return true;
}

}  // namespace

bool pass_simplify_cfg(ir::Function& fn) {
  bool changed = false;
  for (int round = 0; round < 8; ++round) {
    bool round_changed = false;
    round_changed |= thread_jumps(fn);
    round_changed |= merge_chains(fn);
    round_changed |= remove_unreachable(fn);
    if (!round_changed) break;
    changed = true;
  }
  return changed;
}

}  // namespace cepic::opt
