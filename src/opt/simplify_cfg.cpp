// Control-flow cleanup: thread jumps through empty forwarding blocks,
// merge single-predecessor fallthrough chains (bigger blocks = bigger
// scheduling regions for the EPIC list scheduler), fold trivial
// conditional branches, and drop unreachable blocks.
//
// The rewrite sequence (thread / merge / remove-unreachable to a fixed
// point, bounded) is deliberately unchanged — block numbering in the
// output depends on it.  What changed is the machinery: reachability
// and predecessor counts come from arena-backed scratch arrays instead
// of a freshly heap-built Cfg per round.
#include <algorithm>

#include "opt/cfg.hpp"
#include "opt/opt.hpp"
#include "support/arena.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::IrOp;

/// A block containing only `br X` forwards to X.
bool is_forwarder(const ir::BasicBlock& block, int& target) {
  if (block.insts.size() != 1) return false;
  const IrInst& t = block.insts[0];
  if (t.op != IrOp::Br) return false;
  target = t.block_then;
  return true;
}

int thread_target(const ir::Function& fn, int target) {
  int fuel = static_cast<int>(fn.blocks.size());
  int next = 0;
  while (fuel-- > 0 && is_forwarder(fn.blocks[target], next) &&
         next != target) {
    target = next;
  }
  return target;
}

bool thread_jumps(ir::Function& fn) {
  bool changed = false;
  for (ir::BasicBlock& block : fn.blocks) {
    IrInst& t = block.insts.back();
    if (t.op == IrOp::Br) {
      const int nt = thread_target(fn, t.block_then);
      if (nt != t.block_then) {
        t.block_then = nt;
        changed = true;
      }
    } else if (t.op == IrOp::CondBr) {
      const int nt = thread_target(fn, t.block_then);
      const int ne = thread_target(fn, t.block_else);
      if (nt != t.block_then || ne != t.block_else) {
        t.block_then = nt;
        t.block_else = ne;
        changed = true;
      }
      // Both arms equal: degrade to an unconditional branch.
      if (t.block_then == t.block_else) {
        const int target = t.block_then;
        t = IrInst{};
        t.op = IrOp::Br;
        t.block_then = target;
        changed = true;
      }
    }
  }
  return changed;
}

bool merge_chains(ir::Function& fn) {
  bool changed = false;
  const std::size_t nb = fn.blocks.size();
  ArenaScope scope(Arena::scratch());
  // Only the predecessor *count* matters here (a chain head is the sole
  // predecessor of its successor), so skip building adjacency lists.
  int* pred_count = scope.arena().alloc_zeroed<int>(nb);
  for (const ir::BasicBlock& block : fn.blocks) {
    analysis::for_each_successor(block,
                                 [&](int s) { ++pred_count[s]; });
  }
  for (std::size_t b = 0; b < nb; ++b) {
    ir::BasicBlock& block = fn.blocks[b];
    IrInst& t = block.insts.back();
    if (t.op != IrOp::Br) continue;
    const int succ = t.block_then;
    if (succ == static_cast<int>(b) || succ == 0) continue;  // not entry
    if (pred_count[succ] != 1) continue;
    // Splice succ's instructions in place of our Br. succ becomes
    // unreachable and is removed below.
    block.insts.pop_back();
    ir::BasicBlock& victim = fn.blocks[succ];
    std::move(victim.insts.begin(), victim.insts.end(),
              std::back_inserter(block.insts));
    victim.insts.clear();
    IrInst dead_ret;
    dead_ret.op = IrOp::Ret;
    if (fn.returns_value) dead_ret.a = ir::Value::i(0);
    victim.insts.push_back(dead_ret);
    changed = true;
    // The merged terminator may itself be a Br to another mergeable
    // block, but pred counts are stale now; the next round continues.
  }
  return changed;
}

bool remove_unreachable(ir::Function& fn) {
  const std::size_t nb = fn.blocks.size();
  ArenaScope scope(Arena::scratch());
  // Plain DFS from the entry block; matches Cfg::build's notion of
  // graph reachability without paying for adjacency lists.
  bool* reachable = scope.arena().alloc_zeroed<bool>(nb);
  int* stack = scope.arena().alloc_array<int>(nb);
  int sp = 0;
  reachable[0] = true;
  stack[sp++] = 0;
  std::size_t num_reachable = 1;
  while (sp > 0) {
    const int b = stack[--sp];
    analysis::for_each_successor(fn.blocks[b], [&](int s) {
      if (!reachable[s]) {
        reachable[s] = true;
        ++num_reachable;
        stack[sp++] = s;
      }
    });
  }
  if (num_reachable == nb) return false;
  std::vector<int> remap(nb, -1);
  std::vector<ir::BasicBlock> kept;
  for (std::size_t b = 0; b < nb; ++b) {
    if (reachable[b]) {
      remap[b] = static_cast<int>(kept.size());
      kept.push_back(std::move(fn.blocks[b]));
    }
  }
  for (ir::BasicBlock& block : kept) {
    IrInst& t = block.insts.back();
    if (t.op == IrOp::Br) t.block_then = remap[t.block_then];
    if (t.op == IrOp::CondBr) {
      t.block_then = remap[t.block_then];
      t.block_else = remap[t.block_else];
    }
  }
  fn.blocks = std::move(kept);
  return true;
}

bool run_rounds(ir::Function& fn) {
  bool changed = false;
  for (int round = 0; round < 8; ++round) {
    bool round_changed = false;
    round_changed |= thread_jumps(fn);
    round_changed |= merge_chains(fn);
    round_changed |= remove_unreachable(fn);
    if (!round_changed) break;
    changed = true;
  }
  return changed;
}

}  // namespace

bool pass_simplify_cfg(ir::Function& fn, PassContext& ctx) {
  // Function-granular: any change can splice, renumber or delete blocks,
  // so there is no meaningful block-level seed or preservation story —
  // the driver's version skip is what makes repeat invocations cheap.
  const bool changed = run_rounds(fn);
  ctx.touched = BlockSeed{changed, {}};
  if (changed) {
    ctx.am.invalidate(fn, analysis::PreservedAnalyses::none(),
                      "simplify_cfg");
  }
  return changed;
}

bool pass_simplify_cfg(ir::Function& fn) {
  analysis::AnalysisManager am;
  PassContext ctx(am);
  return pass_simplify_cfg(fn, ctx);
}

}  // namespace cepic::opt
