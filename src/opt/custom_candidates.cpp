#include "opt/custom_candidates.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "opt/cfg.hpp"
#include "support/text.hpp"

namespace cepic::opt {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::VReg;

/// Blocks that sit on a CFG cycle (loop bodies), found by DFS back-edge
/// detection from the entry.
std::vector<unsigned> loop_depth(const ir::Function& fn) {
  // Approximate nesting: a block's depth = number of back-edge targets
  // (natural-loop headers) that can both reach it and be reached from it.
  // For candidate weighting a cruder measure works: depth 1 for any
  // block on a cycle, +1 if on a cycle within that cycle is overkill —
  // use reachability-based membership per header.
  const std::size_t nb = fn.blocks.size();
  std::vector<std::vector<int>> succ(nb);
  for (std::size_t b = 0; b < nb; ++b) succ[b] = successors(fn.blocks[b]);

  // Find headers: targets of back edges in DFS.
  std::vector<int> state(nb, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<int> headers;
  const auto dfs = [&](auto&& self, int b) -> void {
    state[b] = 1;
    for (int s : succ[b]) {
      if (state[s] == 0) {
        self(self, s);
      } else if (state[s] == 1) {
        headers.push_back(s);
      }
    }
    state[b] = 2;
  };
  dfs(dfs, 0);

  // Membership: block m is in header h's loop if h reaches m and m
  // reaches h.
  const auto reachable_from = [&](int from) {
    std::vector<bool> seen(nb, false);
    std::vector<int> stack = {from};
    seen[from] = true;
    while (!stack.empty()) {
      const int b = stack.back();
      stack.pop_back();
      for (int s : succ[b]) {
        if (!seen[s]) {
          seen[s] = true;
          stack.push_back(s);
        }
      }
    }
    return seen;
  };

  std::vector<unsigned> depth(nb, 0);
  std::set<int> unique_headers(headers.begin(), headers.end());
  for (int h : unique_headers) {
    const std::vector<bool> from_h = reachable_from(h);
    for (std::size_t m = 0; m < nb; ++m) {
      if (!from_h[m]) continue;
      const std::vector<bool> from_m = reachable_from(static_cast<int>(m));
      if (from_m[h]) ++depth[m];
    }
  }
  return depth;
}

std::uint64_t weight_of(unsigned depth) {
  std::uint64_t w = 1;
  for (unsigned i = 0; i < std::min(depth, 4u); ++i) w *= 10;
  return w;
}

struct Accumulator {
  std::map<std::string, CustomCandidate> table;

  void hit(const std::string& pattern, const std::string& builtin,
           unsigned ops_saved, std::uint64_t weight) {
    CustomCandidate& c = table[pattern];
    c.pattern = pattern;
    c.builtin = builtin;
    c.ops_saved = ops_saved;
    c.occurrences += 1;
    c.weighted += weight;
  }
};

/// Number of uses of each vreg in a function.
std::map<VReg, int> use_counts(const ir::Function& fn) {
  std::map<VReg, int> uses;
  for (const ir::BasicBlock& block : fn.blocks) {
    for (const IrInst& inst : block.insts) {
      for_each_use(inst, [&](const ir::Value& v) {
        if (v.is_reg()) ++uses[v.reg];
      });
      if (inst.guard != ir::kNoVReg) ++uses[inst.guard];
    }
  }
  return uses;
}

}  // namespace

std::vector<CustomCandidate> find_custom_candidates(
    const ir::Module& module, std::size_t max_candidates) {
  Accumulator acc;

  for (const ir::Function& fn : module.functions) {
    const std::vector<unsigned> depths = loop_depth(fn);
    const std::map<VReg, int> uses = use_counts(fn);
    const auto single_use = [&](VReg v) {
      const auto it = uses.find(v);
      return it != uses.end() && it->second == 1;
    };

    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      const ir::BasicBlock& block = fn.blocks[bi];
      const std::uint64_t w = weight_of(depths[bi]);

      // Map from defining vreg to its instruction index (within block,
      // unguarded defs only — fusing across guards changes semantics).
      std::map<VReg, std::size_t> def_at;
      for (std::size_t i = 0; i < block.insts.size(); ++i) {
        const IrInst& inst = block.insts[i];

        // --- specific idiom: rotate = Or(Shrl(x,k), Shl(x, 32-k)) ---
        if (inst.op == IrOp::Or && inst.a.is_reg() && inst.b.is_reg()) {
          const auto ia = def_at.find(inst.a.reg);
          const auto ib = def_at.find(inst.b.reg);
          if (ia != def_at.end() && ib != def_at.end()) {
            const IrInst* l = &block.insts[ia->second];
            const IrInst* r = &block.insts[ib->second];
            if (l->op == IrOp::Shl && r->op == IrOp::Shrl) std::swap(l, r);
            if (l->op == IrOp::Shrl && r->op == IrOp::Shl &&
                l->a == r->a && l->b.is_imm() && r->b.is_imm() &&
                l->b.imm + r->b.imm == 32 && single_use(inst.a.reg) &&
                single_use(inst.b.reg)) {
              acc.hit("rotate: (x >>> k) | (x << 32-k)", "rotr", 2, w);
            }
          }
        }

        // --- generic single-use producer -> consumer pairs ---
        if (ir::is_binary_alu(inst.op)) {
          for_each_use(inst, [&](const ir::Value& v) {
            if (!v.is_reg() || !single_use(v.reg)) return;
            const auto it = def_at.find(v.reg);
            if (it == def_at.end()) return;
            const IrInst& producer = block.insts[it->second];
            if (!ir::is_binary_alu(producer.op)) return;
            // Specific well-known fusions get friendly names.
            if (producer.op == IrOp::Mul && inst.op == IrOp::Add) {
              acc.hit("multiply-accumulate: a*b + c", "", 1, w);
            } else if (producer.op == IrOp::Shl && inst.op == IrOp::Add) {
              acc.hit("scaled add: (a << k) + b", "", 1, w);
            } else if (producer.op == IrOp::Sub &&
                       (inst.op == IrOp::Max || inst.op == IrOp::Min)) {
              acc.hit("clamped difference: min/max(a-b, c)", "sadd", 1, w);
            } else {
              acc.hit(cat("pair: ", ir::ir_op_name(producer.op), " -> ",
                          ir::ir_op_name(inst.op)),
                      "", 1, w);
            }
          });
        }

        const VReg d = def_of(inst);
        if (d != ir::kNoVReg) {
          if (inst.guard == ir::kNoVReg) {
            def_at[d] = i;
          } else {
            def_at.erase(d);
          }
        }
      }
    }
  }

  std::vector<CustomCandidate> out;
  out.reserve(acc.table.size());
  for (auto& [key, candidate] : acc.table) out.push_back(candidate);
  std::sort(out.begin(), out.end(),
            [](const CustomCandidate& a, const CustomCandidate& b) {
              return a.score() > b.score() ||
                     (a.score() == b.score() && a.pattern < b.pattern);
            });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

std::string format_candidates(
    const std::vector<CustomCandidate>& candidates) {
  std::string s = "custom-instruction candidates (ranked):\n";
  if (candidates.empty()) {
    s += "  (none found)\n";
    return s;
  }
  for (const CustomCandidate& c : candidates) {
    s += cat("  ", pad_right(c.pattern, 40), " x", c.occurrences,
             " (weighted ", c.weighted, "), saves ", c.ops_saved,
             " op/occurrence");
    if (!c.builtin.empty()) {
      s += cat("  -> enable `custom_ops = ", c.builtin, "`");
    }
    s += "\n";
  }
  return s;
}

}  // namespace cepic::opt
