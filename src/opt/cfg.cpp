#include "opt/cfg.hpp"

namespace cepic::opt {

using ir::IrInst;
using ir::IrOp;
using ir::VReg;

std::vector<int> successors(const ir::BasicBlock& block) {
  const IrInst& t = block.terminator();
  switch (t.op) {
    case IrOp::Br:
      return {t.block_then};
    case IrOp::CondBr:
      if (t.block_then == t.block_else) return {t.block_then};
      return {t.block_then, t.block_else};
    default:
      return {};
  }
}

std::vector<std::vector<int>> predecessors(const ir::Function& fn) {
  std::vector<std::vector<int>> preds(fn.blocks.size());
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (int s : successors(fn.blocks[b])) {
      preds[s].push_back(static_cast<int>(b));
    }
  }
  return preds;
}

VReg def_of(const IrInst& inst) {
  return ir::has_dst(inst) ? inst.dst : ir::kNoVReg;
}

Liveness compute_liveness(const ir::Function& fn) {
  const std::size_t nb = fn.blocks.size();
  const std::size_t nv = fn.next_vreg;
  Liveness lv;
  lv.live_in.assign(nb, std::vector<bool>(nv, false));
  lv.live_out.assign(nb, std::vector<bool>(nv, false));

  // use[b]: upward-exposed reads; def[b]: vregs surely defined before any
  // later read in b. A guarded def does not kill (the old value may flow
  // through), so guarded defs are not added to def[b].
  std::vector<std::vector<bool>> use(nb, std::vector<bool>(nv, false));
  std::vector<std::vector<bool>> def(nb, std::vector<bool>(nv, false));
  for (std::size_t b = 0; b < nb; ++b) {
    for (const IrInst& inst : fn.blocks[b].insts) {
      for_each_use(inst, [&](const ir::Value& v) {
        if (v.is_reg() && !def[b][v.reg]) use[b][v.reg] = true;
      });
      if (inst.guard != ir::kNoVReg && !def[b][inst.guard]) {
        use[b][inst.guard] = true;
      }
      const VReg d = def_of(inst);
      if (d != ir::kNoVReg && inst.guard == ir::kNoVReg) def[b][d] = true;
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = nb; bi-- > 0;) {
      std::vector<bool>& out = lv.live_out[bi];
      for (int s : successors(fn.blocks[bi])) {
        const std::vector<bool>& sin = lv.live_in[s];
        for (std::size_t v = 0; v < nv; ++v) {
          if (sin[v] && !out[v]) {
            out[v] = true;
            changed = true;
          }
        }
      }
      std::vector<bool>& in = lv.live_in[bi];
      for (std::size_t v = 0; v < nv; ++v) {
        const bool want = use[bi][v] || (out[v] && !def[bi][v]);
        if (want && !in[v]) {
          in[v] = true;
          changed = true;
        }
      }
    }
  }
  return lv;
}

}  // namespace cepic::opt
