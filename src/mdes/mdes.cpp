#include "mdes/mdes.hpp"

#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic {

namespace {

const char* fu_name(FuClass fu) {
  switch (fu) {
    case FuClass::None: return "none";
    case FuClass::Alu: return "ALU";
    case FuClass::Cmpu: return "CMPU";
    case FuClass::Lsu: return "LSU";
    case FuClass::Bru: return "BRU";
  }
  return "?";
}

}  // namespace

Mdes::Mdes(const ProcessorConfig& cfg, const CustomOpTable* custom) {
  cfg.validate();

  units_[static_cast<std::size_t>(FuClass::None)] = 0;
  units_[static_cast<std::size_t>(FuClass::Alu)] = cfg.num_alus;
  units_[static_cast<std::size_t>(FuClass::Cmpu)] = 1;
  units_[static_cast<std::size_t>(FuClass::Lsu)] = 1;
  units_[static_cast<std::size_t>(FuClass::Bru)] = 1;

  issue_width_ = cfg.issue_width;
  reg_port_budget_ = cfg.reg_port_budget;
  forwarding_ = cfg.forwarding;

  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    const OpInfo& info = op_info(op);
    unsigned lat = info.latency;
    if (info.is_load) lat = cfg.load_latency;
    bool ok = !info.name.empty();
    if (op == Op::MUL && !cfg.alu.has_mul) ok = false;
    if ((op == Op::DIV || op == Op::REM) && !cfg.alu.has_div) ok = false;
    if ((op == Op::SHL || op == Op::SHRA || op == Op::SHRL) &&
        !cfg.alu.has_shift) {
      ok = false;
    }
    if ((op == Op::MIN || op == Op::MAX || op == Op::ABS) &&
        !cfg.alu.has_minmax) {
      ok = false;
    }
    if (is_custom(op)) {
      const unsigned slot = custom_slot(op);
      ok = slot < cfg.custom_ops.size();
      if (ok && custom != nullptr && custom->has(slot)) {
        lat = custom->get(slot).latency;
      }
    }
    latency_[i] = lat;
    supported_[i] = ok ? 1 : 0;
  }
}

unsigned Mdes::units(FuClass fu) const {
  return units_[static_cast<std::size_t>(fu)];
}

unsigned Mdes::latency(Op op) const {
  return latency_[static_cast<std::size_t>(op)];
}

bool Mdes::op_supported(Op op) const {
  return supported_[static_cast<std::size_t>(op)] != 0;
}

std::string Mdes::to_text() const {
  std::string out;
  out += "// CEPIC machine description (HMDES-lite)\n";
  out += "SECTION Resource {\n";
  for (FuClass fu : {FuClass::Alu, FuClass::Cmpu, FuClass::Lsu, FuClass::Bru}) {
    out += cat("  ", fu_name(fu), "(count ", units(fu), ");\n");
  }
  out += cat("  issue(width ", issue_width_, ");\n");
  out += cat("  regports(count ", reg_port_budget_, ");\n");
  out += cat("  forwarding(enabled ", forwarding_ ? 1 : 0, ");\n");
  out += "}\n";
  out += "SECTION Operation {\n";
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    const OpInfo& info = op_info(op);
    if (info.name.empty() || op == Op::NOP) continue;
    if (!op_supported(op)) continue;
    out += cat("  ", info.name, "(unit ", fu_name(info.fu), "; latency ",
               latency(op), ");\n");
  }
  out += "}\n";
  return out;
}

namespace {

// Parses "name(key1 v1; key2 v2)" entries inside SECTION blocks.
struct Entry {
  std::string name;
  std::vector<std::pair<std::string, std::string>> kv;
};

std::optional<Entry> parse_entry(std::string_view line, int line_no) {
  line = trim(line);
  if (line.empty()) return std::nullopt;
  const auto open = line.find('(');
  const auto close = line.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    throw ConfigError(cat("mdes line ", line_no, ": malformed entry"));
  }
  Entry e;
  e.name = std::string(trim(line.substr(0, open)));
  for (std::string_view part :
       split(line.substr(open + 1, close - open - 1), ';')) {
    part = trim(part);
    if (part.empty()) continue;
    const auto ws = part.find(' ');
    if (ws == std::string_view::npos) {
      throw ConfigError(cat("mdes line ", line_no, ": expected `key value`"));
    }
    e.kv.emplace_back(std::string(trim(part.substr(0, ws))),
                      std::string(trim(part.substr(ws + 1))));
  }
  return e;
}

FuClass fu_by_name(std::string_view name, int line_no) {
  if (name == "ALU") return FuClass::Alu;
  if (name == "CMPU") return FuClass::Cmpu;
  if (name == "LSU") return FuClass::Lsu;
  if (name == "BRU") return FuClass::Bru;
  throw ConfigError(cat("mdes line ", line_no, ": unknown unit `", name, "`"));
}

unsigned to_uint(const std::string& v, int line_no) {
  std::int64_t x = 0;
  if (!parse_int(v, x) || x < 0) {
    throw ConfigError(cat("mdes line ", line_no, ": bad integer `", v, "`"));
  }
  return static_cast<unsigned>(x);
}

}  // namespace

Mdes Mdes::from_text(std::string_view text) {
  Mdes m;
  m.units_.fill(0);
  m.latency_.fill(1);
  m.supported_.fill(0);

  enum class Section { None, Resource, Operation };
  Section section = Section::None;
  int line_no = 0;
  for (std::string_view raw : split(text, '\n')) {
    ++line_no;
    std::string_view line = raw;
    if (auto c = line.find("//"); c != std::string_view::npos) {
      line = line.substr(0, c);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (starts_with(line, "SECTION")) {
      const std::string_view name = trim(line.substr(7));
      if (starts_with(name, "Resource")) {
        section = Section::Resource;
      } else if (starts_with(name, "Operation")) {
        section = Section::Operation;
      } else {
        throw ConfigError(cat("mdes line ", line_no, ": unknown section"));
      }
      continue;
    }
    if (line == "}") {
      section = Section::None;
      continue;
    }
    auto entry = parse_entry(line, line_no);
    if (!entry) continue;

    if (section == Section::Resource) {
      if (entry->name == "issue") {
        m.issue_width_ = to_uint(entry->kv.at(0).second, line_no);
      } else if (entry->name == "regports") {
        m.reg_port_budget_ = to_uint(entry->kv.at(0).second, line_no);
      } else if (entry->name == "forwarding") {
        m.forwarding_ = to_uint(entry->kv.at(0).second, line_no) != 0;
      } else {
        const FuClass fu = fu_by_name(entry->name, line_no);
        m.units_[static_cast<std::size_t>(fu)] =
            to_uint(entry->kv.at(0).second, line_no);
      }
    } else if (section == Section::Operation) {
      const auto op = op_by_name(entry->name);
      if (!op) {
        throw ConfigError(cat("mdes line ", line_no, ": unknown op `",
                              entry->name, "`"));
      }
      const std::size_t idx = static_cast<std::size_t>(*op);
      m.supported_[idx] = 1;
      for (const auto& [key, value] : entry->kv) {
        if (key == "latency") m.latency_[idx] = to_uint(value, line_no);
      }
    } else {
      throw ConfigError(cat("mdes line ", line_no, ": entry outside section"));
    }
  }
  return m;
}

}  // namespace cepic
