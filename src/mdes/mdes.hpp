// Machine description (the HMDES role from the paper, §4.1): a queryable
// resource/latency model of one processor customisation, generated from
// the ProcessorConfig and handed to the scheduler. "By modifying the
// appropriate entries in the machine description file during
// customisation, the compiler is able to support our design, without the
// need for recompiling the compiler itself" — correspondingly, Mdes can
// be emitted to and re-parsed from a textual description file.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/custom.hpp"
#include "core/isa.hpp"

namespace cepic {

class Mdes {
public:
  /// Build from a configuration; custom-op latencies are taken from
  /// `custom` when provided.
  explicit Mdes(const ProcessorConfig& cfg,
                const CustomOpTable* custom = nullptr);

  /// Number of functional units of a class (Alu = N, others 1; None = 0).
  unsigned units(FuClass fu) const;

  /// Result latency of an operation in cycles.
  unsigned latency(Op op) const;

  /// Operations per MultiOp.
  unsigned issue_width() const { return issue_width_; }

  /// Register read+write port operations available per cycle (paper §3.2).
  unsigned reg_port_budget() const { return reg_port_budget_; }

  /// Whether the register file controller forwards last-cycle results.
  bool forwarding() const { return forwarding_; }

  /// Is the operation implemented on this customisation (feature trims,
  /// enabled custom slots)?
  bool op_supported(Op op) const;

  /// Emit as a machine-description file (HMDES-lite syntax).
  std::string to_text() const;

  /// Parse a machine-description file produced by to_text(). Throws
  /// ConfigError on malformed input.
  static Mdes from_text(std::string_view text);

private:
  Mdes() = default;

  std::array<unsigned, 5> units_{};                 // by FuClass
  std::array<unsigned, kNumOps> latency_{};         // by Op
  std::array<std::uint8_t, kNumOps> supported_{};   // by Op
  unsigned issue_width_ = 4;
  unsigned reg_port_budget_ = 8;
  bool forwarding_ = true;
};

}  // namespace cepic
