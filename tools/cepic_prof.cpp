// cepic-prof — offline reporter and cross-run analytics over the
// artifacts the observability layer writes (docs/OBSERVABILITY.md):
// Chrome trace JSON from `--trace-out` / `--timeline-out` /
// `--flight-out`, flat metrics JSON from `--metrics-json`, and the
// committed bench history BENCH_toolspeed.json.
//
//   cepic-prof trace.json               # top spans + per-stage totals
//   cepic-prof trace.json --top 20
//   cepic-prof metrics.json             # counters/gauges/histograms
//   cepic-prof --validate schemas/chrome-trace.schema.json trace.json...
//   cepic-prof diff A.json B.json [--check]
//   cepic-prof bench BENCH_toolspeed.json [--fresh RUN.json] [--check]
//
// `diff` compares two exports of the same kind — traces by per-span
// self time, metrics by per-histogram latency quantiles (counters ride
// along informationally) — and flags rows whose B/A ratio crosses
// `--threshold` above a noise floor; `--check` exits 1 when any row is
// flagged. `bench` prints the committed perf trajectory and, with
// `--check`, enforces the perf-smoke ratio guards (execution-tier
// sim_cycles/s floors, optimiser wall-time ceiling) against `--fresh`
// (a raw google-benchmark JSON run) or the history's own last run.
//
// `--validate SCHEMA` checks each input against a JSON-Schema file
// (src/obs/schema.hpp subset), reports every violation with the JSON
// path of the failing node, and exits 1 if *any* input fails — a file
// that fails to parse counts as failing without aborting the rest.
#include "tool_common.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/schema.hpp"

namespace json = cepic::obs::json;
namespace report = cepic::obs::report;
namespace schema = cepic::obs::schema;
namespace tools = cepic::tools;

namespace {

using cepic::cat;
using cepic::Error;
using cepic::fixed;
using cepic::pad_left;
using cepic::pad_right;

double number_or(const json::Value& obj, const char* key,
                 double fallback) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->kind == json::Value::Kind::Number) ? v->number
                                                                : fallback;
}

std::string int_text(double v) {
  return v == static_cast<std::uint64_t>(v)
             ? cat(static_cast<std::uint64_t>(v))
             : fixed(v, 3);
}

void report_trace(const json::Value& doc, unsigned top) {
  const std::vector<report::SpanAgg> aggs = report::aggregate_spans(doc);
  std::uint64_t spans = 0;
  for (const report::SpanAgg& agg : aggs) spans += agg.count;

  std::vector<const report::SpanAgg*> ranked;
  ranked.reserve(aggs.size());
  for (const report::SpanAgg& agg : aggs) ranked.push_back(&agg);
  std::sort(ranked.begin(), ranked.end(),
            [](const report::SpanAgg* a, const report::SpanAgg* b) {
              return a->self > b->self;
            });

  std::cout << "top spans by self time (" << spans << " spans)\n";
  std::cout << pad_right("  span", 34) << pad_left("count", 7)
            << pad_left("self(us)", 12) << pad_left("total(us)", 12) << "\n";
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    const report::SpanAgg& agg = *ranked[i];
    std::cout << pad_right(cat("  ", agg.name), 34)
              << pad_left(cat(agg.count), 7)
              << pad_left(fixed(agg.self, 1), 12)
              << pad_left(fixed(agg.total, 1), 12) << "\n";
  }

  // Per-stage totals: aggregate again by the "cat." prefix.
  struct Agg {
    double self = 0;
    double total = 0;
    std::uint64_t count = 0;
  };
  std::map<std::string, Agg> by_cat;
  for (const report::SpanAgg& agg : aggs) {
    const std::size_t dot = agg.name.find('.');
    Agg& c = by_cat[dot == std::string::npos ? "(none)"
                                             : agg.name.substr(0, dot)];
    c.self += agg.self;
    c.total += agg.total;
    c.count += agg.count;
  }
  std::cout << "\nper-stage totals\n";
  for (const auto& [name, agg] : by_cat) {
    std::cout << pad_right(cat("  ", name), 34) << pad_left(cat(agg.count), 7)
              << pad_left(fixed(agg.self, 1), 12)
              << pad_left(fixed(agg.total, 1), 12) << "\n";
  }

  // Cache efficiency from the embedded counter snapshot.
  const json::Value* other = doc.find("otherData");
  if (other == nullptr || other->kind != json::Value::Kind::Object) return;
  const auto counter = [&](const std::string& name) {
    return number_or(*other, cat("counter.", name).c_str(), 0);
  };
  const double compiles = counter("pipeline.compiles");
  const double simulations = counter("pipeline.simulations");
  if (compiles == 0 && simulations == 0) return;
  std::cout << "\ncache efficiency\n";
  const auto ratio_line = [&](const char* label, double hits, double misses) {
    const double total = hits + misses;
    std::cout << pad_right(cat("  ", label), 26) << pad_left(cat(hits), 9)
              << " / " << pad_left(cat(total), 9);
    if (total > 0) {
      std::cout << "  (" << fixed(100.0 * hits / total, 1) << "% hit)";
    }
    std::cout << "\n";
  };
  for (const char* g : {"ir", "asm", "program", "lint"}) {
    ratio_line(cat("store.", g).c_str(), counter(cat("store.", g, ".hits")),
               counter(cat("store.", g, ".misses")));
  }
  ratio_line("results", counter("pipeline.result_hits"),
             counter("pipeline.result_misses"));
  std::cout << pad_right("  compiles", 26)
            << pad_left(cat(compiles), 9) << "\n";
  std::cout << pad_right("  simulations", 26)
            << pad_left(cat(simulations), 9) << "\n";
  std::cout << pad_right("  sim-dedup hits", 26)
            << pad_left(cat(counter("pipeline.sim_dedup_hits")), 9) << "\n";
}

void report_metrics(const json::Value& doc) {
  for (const char* section : {"counters", "gauges"}) {
    const json::Value* v = doc.find(section);
    if (v == nullptr || v->kind != json::Value::Kind::Object) continue;
    std::cout << section << "\n";
    for (const auto& [name, value] : v->object) {
      std::cout << pad_right(cat("  ", name), 40);
      if (value.kind == json::Value::Kind::Number) {
        std::cout << pad_left(int_text(value.number), 14);
      }
      std::cout << "\n";
    }
  }
  const std::vector<report::HistStat> hists = report::histogram_stats(doc);
  if (hists.empty()) return;
  std::cout << "histograms\n";
  std::cout << pad_right("  name", 30) << pad_left("count", 9)
            << pad_left("p50", 13) << pad_left("p90", 13)
            << pad_left("p99", 13) << pad_left("max", 13) << "\n";
  for (const report::HistStat& h : hists) {
    std::cout << pad_right(cat("  ", h.name), 30)
              << pad_left(int_text(h.count), 9)
              << pad_left(int_text(h.p50), 13)
              << pad_left(int_text(h.p90), 13)
              << pad_left(int_text(h.p99), 13)
              << pad_left(int_text(h.max), 13) << "\n";
  }
}

// --- cepic-prof --validate --------------------------------------------

int run_validate(const std::string& schema_path,
                 const std::vector<std::string>& paths) {
  const json::Value schema = json::parse(tools::read_file(schema_path));
  int failures = 0;
  for (const std::string& path : paths) {
    json::Value doc;
    try {
      doc = json::parse(tools::read_file(path));
    } catch (const std::exception& e) {
      std::cerr << path << ": FAIL (unreadable/unparsable): " << e.what()
                << "\n";
      ++failures;
      continue;
    }
    const std::vector<std::string> violations = schema::validate(schema, doc);
    if (violations.empty()) {
      std::cout << path << ": valid against " << schema_path << "\n";
      continue;
    }
    for (const std::string& v : violations) {
      std::cerr << path << ": " << v << "\n";
    }
    // Violations are "<json-path>: <rule>" — lead the summary with the
    // first failing node's path so CI logs point straight at it.
    const std::string& first = violations.front();
    const std::size_t colon = first.find(": ");
    std::cerr << path << ": FAIL at "
              << (colon == std::string::npos ? first
                                             : first.substr(0, colon))
              << " (" << violations.size() << " violation(s) against "
              << schema_path << ")\n";
    ++failures;
  }
  if (failures > 0) {
    std::cerr << failures << " of " << paths.size()
              << " input(s) failed validation\n";
  }
  return failures == 0 ? 0 : 1;
}

// --- cepic-prof diff --------------------------------------------------

int run_diff(const std::vector<std::string>& paths, double threshold,
             bool check) {
  if (paths.size() != 2) {
    throw Error("diff expects exactly two inputs: cepic-prof diff A B");
  }
  report::DiffOptions options;
  if (threshold > 0) options.ratio_threshold = threshold;
  const json::Value a = json::parse(tools::read_file(paths[0]));
  const json::Value b = json::parse(tools::read_file(paths[1]));
  const report::DiffReport diff = report::diff_documents(a, b, options);

  std::cout << "diff " << paths[0] << " -> " << paths[1] << " (flagging B >= "
            << fixed(options.ratio_threshold, 2) << "x A)\n";
  std::cout << pad_right("  quantity", 42) << pad_left("A", 13)
            << pad_left("B", 13) << pad_left("B/A", 8) << "\n";
  for (const report::DiffRow& row : diff.rows) {
    std::cout << pad_right(cat("  ", row.name), 42)
              << pad_left(int_text(row.a), 13)
              << pad_left(int_text(row.b), 13)
              << pad_left(row.a > 0 ? fixed(row.ratio, 2) : "new", 8)
              << (row.regressed ? "  REGRESSED" : "") << "\n";
  }
  std::cout << "regressions: " << diff.regressions << "\n";
  return check && diff.regressions > 0 ? 1 : 0;
}

// --- cepic-prof bench -------------------------------------------------

int run_bench(const std::vector<std::string>& paths,
              const std::string& fresh_path, bool check) {
  if (paths.size() != 1) {
    throw Error("bench expects one history file: cepic-prof bench "
                "BENCH_toolspeed.json");
  }
  const std::vector<report::BenchRun> history =
      report::parse_history(json::parse(tools::read_file(paths[0])));
  if (history.empty()) throw Error(cat(paths[0], ": empty bench history"));

  // Trajectory: per benchmark, one column per run (wall time, with the
  // per-run ratio to the previous run carrying it).
  std::cout << "bench trajectory (" << history.size() << " runs)\n";
  for (const report::BenchRun& run : history) {
    std::cout << "  " << run.label << "  [" << run.commit
              << (run.git_dirty ? "+dirty" : "") << "] "
              << (run.date.empty() ? "" : run.date)
              << (run.release_eligible() ? "" : "  (excluded from baselines)")
              << "\n";
  }
  std::map<std::string, double> previous;
  std::cout << "\n" << pad_right("  benchmark", 30) << pad_right("run", 34)
            << pad_left("time(us)", 12) << pad_left("vs prev", 9) << "\n";
  for (const report::BenchRun& run : history) {
    for (const auto& [name, measure] : run.benchmarks) {
      std::cout << pad_right(cat("  ", name), 30)
                << pad_right(run.label.substr(0, 32), 34)
                << pad_left(fixed(measure.real_time_ns / 1e3, 1), 12);
      const auto prev = previous.find(name);
      if (prev != previous.end() && prev->second > 0) {
        std::cout << pad_left(
            cat(fixed(measure.real_time_ns / prev->second, 2), "x"), 9);
      }
      std::cout << "\n";
      previous[name] = measure.real_time_ns;
    }
  }

  // Ratio guards: --fresh checks a new run against the committed
  // baselines; without it the history's own last run is audited.
  report::BenchRun fresh;
  std::vector<report::BenchRun> baselines = history;
  if (!fresh_path.empty()) {
    fresh = report::parse_run(json::parse(tools::read_file(fresh_path)),
                              "(fresh)");
  } else {
    fresh = history.back();
    baselines.pop_back();
  }
  std::cout << "\nratio guards (fresh: " << fresh.label << ")\n";
  bool failed = false;
  for (const report::RatioCheck& rc :
       report::check_ratios(baselines, fresh)) {
    if (rc.baseline_label.empty()) {
      std::cout << "  " << rc.name << ": no committed baseline, skipped\n";
      continue;
    }
    std::cout << "  " << rc.name << ": baseline '" << rc.baseline_label
              << "' = " << fixed(rc.baseline, 3)
              << ", fresh = " << fixed(rc.fresh, 3) << " ("
              << (rc.is_floor ? "floor " : "ceiling ") << fixed(rc.limit, 3)
              << ") " << (rc.ok ? "ok" : "FAIL") << "\n";
    if (!rc.ok) failed = true;
  }
  if (failed) {
    std::cerr << "bench: ratio guard failed against the committed "
                 "baselines\n";
  }
  return check && failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-prof", [&]() -> int {
    unsigned top = 10;
    std::string schema_path;
    std::string fresh_path;
    double threshold = 0;
    bool check = false;

    tools::OptionTable table(
        "cepic-prof <trace.json|metrics.json>... [options]\n"
        "       cepic-prof diff A.json B.json [--threshold R] [--check]\n"
        "       cepic-prof bench HISTORY.json [--fresh RUN.json] [--check]\n"
        "       cepic-prof --validate SCHEMA FILE...");
    table.uint("--top", "N", "spans to list in the self-time ranking", &top);
    table.str("--validate", "SCHEMA",
              "validate the inputs against a JSON-Schema file and stop",
              &schema_path);
    table.str("--fresh", "RUN.json",
              "bench: check this raw google-benchmark run against the "
              "committed baselines",
              &fresh_path);
    table.real("--threshold", "R",
               "diff: flag rows whose B/A ratio reaches R (default 1.5)",
               &threshold);
    table.flag("--check", "exit 1 on flagged regressions / failed guards",
               &check);

    std::vector<std::string> positionals;
    if (!table.parse(argc, argv, positionals)) return 2;
    if (positionals.empty()) return table.usage();

    if (!schema_path.empty()) return run_validate(schema_path, positionals);

    const std::string subcommand = positionals.front();
    if (subcommand == "diff") {
      positionals.erase(positionals.begin());
      return run_diff(positionals, threshold, check);
    }
    if (subcommand == "bench") {
      positionals.erase(positionals.begin());
      return run_bench(positionals, fresh_path, check);
    }

    bool first = true;
    for (const std::string& path : positionals) {
      if (!first) std::cout << "\n";
      first = false;
      if (positionals.size() > 1) std::cout << "== " << path << " ==\n";
      const json::Value doc = json::parse(tools::read_file(path));
      if (doc.find("traceEvents") != nullptr) {
        report_trace(doc, top == 0 ? 10 : top);
      } else if (doc.find("counters") != nullptr ||
                 doc.find("gauges") != nullptr) {
        report_metrics(doc);
      } else {
        throw Error(cat(path,
                        ": neither a trace (traceEvents) nor a metrics "
                        "(counters/gauges) document"));
      }
    }
    return 0;
  });
}
