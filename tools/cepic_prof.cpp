// cepic-prof — offline reporter over the artifacts the observability
// layer writes (docs/OBSERVABILITY.md): Chrome trace JSON from
// `--trace-out` / `--timeline-out` and flat metrics JSON from
// `--metrics-json`.
//
//   cepic-prof trace.json               # top spans + per-stage totals
//   cepic-prof trace.json --top 20
//   cepic-prof metrics.json             # counter/gauge listing
//   cepic-prof --validate schemas/chrome-trace.schema.json trace.json
//
// Subreports on a trace file:
//   * top spans by self time (duration minus same-thread children),
//   * per-stage totals (spans aggregated by their category:
//     frontend / opt / backend / asm / pipeline / sim),
//   * cache efficiency, reconstructed from the counter snapshot the
//     exporter embeds under otherData.
//
// `--validate SCHEMA` checks any JSON file against a JSON-Schema subset
// (src/obs/schema.hpp) and exits 1 on the first batch of violations —
// CI uses it to keep every exported artifact loadable by Perfetto.
#include "tool_common.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"
#include "obs/schema.hpp"

namespace json = cepic::obs::json;
namespace schema = cepic::obs::schema;

namespace {

using cepic::cat;
using cepic::Error;
using cepic::fixed;
using cepic::pad_left;
using cepic::pad_right;

struct SpanRow {
  std::string name;
  std::string cat;
  int tid = 0;
  double ts = 0;
  double dur = 0;
  double self = 0;  ///< dur minus same-thread child time
};

double number_or(const json::Value& obj, const char* key,
                 double fallback) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->kind == json::Value::Kind::Number) ? v->number
                                                                : fallback;
}

std::string string_or(const json::Value& obj, const char* key,
                      std::string fallback) {
  const json::Value* v = obj.find(key);
  return (v != nullptr && v->kind == json::Value::Kind::String) ? v->string
                                                                : fallback;
}

/// Extract the 'X' (complete) events and compute per-span self time:
/// a span's children are the spans on the same thread fully nested
/// inside it; their durations are subtracted from the parent.
std::vector<SpanRow> extract_spans(const json::Value& events) {
  std::vector<SpanRow> rows;
  for (const json::Value& e : events.array) {
    if (e.kind != json::Value::Kind::Object) continue;
    if (string_or(e, "ph", "") != "X") continue;
    SpanRow row;
    row.name = string_or(e, "name", "?");
    row.cat = string_or(e, "cat", "");
    row.tid = static_cast<int>(number_or(e, "tid", 0));
    row.ts = number_or(e, "ts", 0);
    row.dur = number_or(e, "dur", 0);
    row.self = row.dur;
    rows.push_back(std::move(row));
  }
  // Nesting pass per thread: sort by (tid, ts, -dur) so a parent comes
  // before its children, then walk with an enclosing-span stack.
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows[a].tid != rows[b].tid) return rows[a].tid < rows[b].tid;
    if (rows[a].ts != rows[b].ts) return rows[a].ts < rows[b].ts;
    return rows[a].dur > rows[b].dur;
  });
  std::vector<std::size_t> stack;
  int tid = 0;
  for (const std::size_t i : order) {
    SpanRow& row = rows[i];
    if (stack.empty() || rows[stack.front()].tid != row.tid) {
      stack.clear();
      tid = row.tid;
    }
    (void)tid;
    while (!stack.empty() &&
           rows[stack.back()].ts + rows[stack.back()].dur <= row.ts) {
      stack.pop_back();
    }
    if (!stack.empty()) rows[stack.back()].self -= row.dur;
    stack.push_back(i);
  }
  return rows;
}

void report_trace(const json::Value& doc, unsigned top) {
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || events->kind != json::Value::Kind::Array) {
    throw Error("no traceEvents array in input");
  }
  const std::vector<SpanRow> rows = extract_spans(*events);

  struct Agg {
    double self = 0;
    double total = 0;
    std::uint64_t count = 0;
  };
  std::map<std::string, Agg> by_name;
  std::map<std::string, Agg> by_cat;
  for (const SpanRow& row : rows) {
    Agg& n = by_name[row.cat.empty() ? row.name
                                     : cat(row.cat, ".", row.name)];
    n.self += row.self;
    n.total += row.dur;
    ++n.count;
    Agg& c = by_cat[row.cat.empty() ? "(none)" : row.cat];
    c.self += row.self;
    c.total += row.dur;
    ++c.count;
  }

  std::vector<std::pair<std::string, Agg>> ranked(by_name.begin(),
                                                  by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.self > b.second.self;
  });

  std::cout << "top spans by self time (" << rows.size() << " spans)\n";
  std::cout << pad_right("  span", 34) << pad_left("count", 7)
            << pad_left("self(us)", 12) << pad_left("total(us)", 12) << "\n";
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    const auto& [name, agg] = ranked[i];
    std::cout << pad_right(cat("  ", name), 34) << pad_left(cat(agg.count), 7)
              << pad_left(fixed(agg.self, 1), 12)
              << pad_left(fixed(agg.total, 1), 12) << "\n";
  }

  std::cout << "\nper-stage totals\n";
  for (const auto& [name, agg] : by_cat) {
    std::cout << pad_right(cat("  ", name), 34) << pad_left(cat(agg.count), 7)
              << pad_left(fixed(agg.self, 1), 12)
              << pad_left(fixed(agg.total, 1), 12) << "\n";
  }

  // Cache efficiency from the embedded counter snapshot.
  const json::Value* other = doc.find("otherData");
  if (other == nullptr || other->kind != json::Value::Kind::Object) return;
  const auto counter = [&](const std::string& name) {
    return number_or(*other, cat("counter.", name).c_str(), 0);
  };
  const double compiles = counter("pipeline.compiles");
  const double simulations = counter("pipeline.simulations");
  if (compiles == 0 && simulations == 0) return;
  std::cout << "\ncache efficiency\n";
  const auto ratio_line = [&](const char* label, double hits, double misses) {
    const double total = hits + misses;
    std::cout << pad_right(cat("  ", label), 26) << pad_left(cat(hits), 9)
              << " / " << pad_left(cat(total), 9);
    if (total > 0) {
      std::cout << "  (" << fixed(100.0 * hits / total, 1) << "% hit)";
    }
    std::cout << "\n";
  };
  for (const char* g : {"ir", "asm", "program", "lint"}) {
    ratio_line(cat("store.", g).c_str(), counter(cat("store.", g, ".hits")),
               counter(cat("store.", g, ".misses")));
  }
  ratio_line("results", counter("pipeline.result_hits"),
             counter("pipeline.result_misses"));
  std::cout << pad_right("  compiles", 26)
            << pad_left(cat(compiles), 9) << "\n";
  std::cout << pad_right("  simulations", 26)
            << pad_left(cat(simulations), 9) << "\n";
  std::cout << pad_right("  sim-dedup hits", 26)
            << pad_left(cat(counter("pipeline.sim_dedup_hits")), 9) << "\n";
}

void report_metrics(const json::Value& doc) {
  for (const char* section : {"counters", "gauges"}) {
    const json::Value* v = doc.find(section);
    if (v == nullptr || v->kind != json::Value::Kind::Object) continue;
    std::cout << section << "\n";
    for (const auto& [name, value] : v->object) {
      std::cout << pad_right(cat("  ", name), 40);
      if (value.kind == json::Value::Kind::Number) {
        std::cout << pad_left(
            value.number == static_cast<std::uint64_t>(value.number)
                ? cat(static_cast<std::uint64_t>(value.number))
                : fixed(value.number, 3),
            14);
      }
      std::cout << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cepic;
  return tools::tool_main("cepic-prof", [&]() -> int {
    unsigned top = 10;
    std::string schema_path;

    tools::OptionTable table(
        "cepic-prof <trace.json|metrics.json>... [options]");
    table.uint("--top", "N", "spans to list in the self-time ranking", &top);
    table.str("--validate", "SCHEMA",
              "validate the inputs against a JSON-Schema file and stop",
              &schema_path);

    std::vector<std::string> positionals;
    if (!table.parse(argc, argv, positionals)) return 2;
    if (positionals.empty()) return table.usage();

    if (!schema_path.empty()) {
      const json::Value schema = json::parse(tools::read_file(schema_path));
      int failures = 0;
      for (const std::string& path : positionals) {
        const json::Value doc = json::parse(tools::read_file(path));
        const std::vector<std::string> violations =
            schema::validate(schema, doc);
        for (const std::string& v : violations) {
          std::cerr << path << ": " << v << "\n";
        }
        if (!violations.empty()) {
          std::cerr << path << ": " << violations.size()
                    << " schema violation(s) against " << schema_path << "\n";
          ++failures;
        } else {
          std::cout << path << ": valid against " << schema_path << "\n";
        }
      }
      return failures == 0 ? 0 : 1;
    }

    bool first = true;
    for (const std::string& path : positionals) {
      if (!first) std::cout << "\n";
      first = false;
      if (positionals.size() > 1) std::cout << "== " << path << " ==\n";
      const json::Value doc = json::parse(tools::read_file(path));
      if (doc.find("traceEvents") != nullptr) {
        report_trace(doc, top == 0 ? 10 : top);
      } else if (doc.find("counters") != nullptr ||
                 doc.find("gauges") != nullptr) {
        report_metrics(doc);
      } else {
        throw Error(cat(path,
                        ": neither a trace (traceEvents) nor a metrics "
                        "(counters/gauges) document"));
      }
    }
    return 0;
  });
}
