// Shared plumbing for the CEPIC command-line tools: file I/O and
// configuration loading. Tools print a short usage and exit 2 on bad
// arguments, exit 1 on tool errors (with the library's diagnostic).
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "support/error.hpp"

namespace cepic::tools {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

inline std::vector<std::uint8_t> read_binary(const std::string& path) {
  const std::string s = read_file(path);
  return {s.begin(), s.end()};
}

inline void write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
}

inline void write_binary(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Load a processor configuration: default when `path` is empty.
inline ProcessorConfig load_config(const std::string& path) {
  if (path.empty()) return ProcessorConfig{};
  return ProcessorConfig::from_text(read_file(path));
}

/// Run a tool main body with uniform error reporting.
template <typename Fn>
int tool_main(const char* tool, Fn&& body) {
  try {
    return body();
  } catch (const Error& e) {
    std::cerr << tool << ": " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << tool << ": internal error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace cepic::tools
