// Shared plumbing for the CEPIC command-line tools: file I/O,
// configuration loading, and — since PR 2 — one OptionTable parser so
// every tool spells shared options identically (`--config FILE`,
// `--cache DIR`, `--cache-stats`, `--jobs N`) and prints its usage from
// the same table it parses with. Tools print a short usage and exit 2
// on bad arguments, exit 1 on tool errors (with the library's
// diagnostic).
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "pipeline/pipeline.hpp"
#include "serial/serial.hpp"
#include "sim/stats.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace cepic::tools {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

inline std::vector<std::uint8_t> read_binary(const std::string& path) {
  const std::string s = read_file(path);
  return {s.begin(), s.end()};
}

inline void write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
}

inline void write_binary(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Load a processor configuration: default when `path` is empty. Both
/// the textual `key = value` form and a binary CEPX configuration
/// container are accepted; the form is detected from the file contents
/// (magic bytes), never from the file name.
inline ProcessorConfig load_config(const std::string& path) {
  if (path.empty()) return ProcessorConfig{};
  const std::string raw = read_file(path);
  const std::span<const std::uint8_t> bytes{
      reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()};
  if (serial::looks_like_cepx(bytes)) return serial::decode_config(bytes);
  return ProcessorConfig::from_text(raw);
}

/// Run a tool main body with uniform error reporting. A fault escaping
/// the body is stamped into the flight recorder, which also dumps the
/// rings when the tool configured `--flight-out` (obs_begin) — the
/// post-mortem trace outlives the failed process.
template <typename Fn>
int tool_main(const char* tool, Fn&& body) {
  try {
    return body();
  } catch (const Error& e) {
    obs::flight_record_fault(e.what());
    std::cerr << tool << ": " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    obs::flight_record_fault(e.what());
    std::cerr << tool << ": internal error: " << e.what() << "\n";
    return 1;
  }
}

/// One option table per tool: declares the options once, parses from it
/// and prints usage from it, so a flag can never drift between the two.
/// Option names are matched exactly; the token `-` and anything not
/// starting with `-` are positionals; `--help` or an unknown option
/// prints usage. Malformed values throw Error (tool exit 1).
class OptionTable {
public:
  /// `head` is the synopsis line after "usage: ", e.g.
  /// "cepic-cc <source.mc> [options]".
  explicit OptionTable(std::string head) : head_(std::move(head)) {}

  /// A valueless switch: presence sets `*out` to true.
  OptionTable& flag(std::string name, std::string help, bool* out) {
    specs_.push_back({std::move(name), "", std::move(help),
                      [out](const std::string&) { *out = true; }, false});
    return *this;
  }

  /// A string-valued option: `--name META`.
  OptionTable& str(std::string name, std::string meta, std::string help,
                   std::string* out) {
    specs_.push_back({std::move(name), std::move(meta), std::move(help),
                      [out](const std::string& v) { *out = v; }, true});
    return *this;
  }

  /// A non-negative integer option.
  OptionTable& uint(std::string name, std::string meta, std::string help,
                    unsigned* out) {
    std::string flag_name = name;
    specs_.push_back(
        {std::move(name), std::move(meta), std::move(help),
         [out, flag_name](const std::string& v) {
           std::int64_t parsed = 0;
           if (!parse_int(v, parsed) || parsed < 0) {
             throw Error(flag_name + " needs a non-negative integer");
           }
           *out = static_cast<unsigned>(parsed);
         },
         true});
    return *this;
  }

  /// A positive 64-bit integer option.
  OptionTable& uint64_positive(std::string name, std::string meta,
                               std::string help, std::uint64_t* out) {
    std::string flag_name = name;
    specs_.push_back({std::move(name), std::move(meta), std::move(help),
                      [out, flag_name](const std::string& v) {
                        std::int64_t parsed = 0;
                        if (!parse_int(v, parsed) || parsed <= 0) {
                          throw Error("bad " + flag_name);
                        }
                        *out = static_cast<std::uint64_t>(parsed);
                      },
                      true});
    return *this;
  }

  /// A real-valued option (any finite double).
  OptionTable& real(std::string name, std::string meta, std::string help,
                    double* out) {
    std::string flag_name = name;
    specs_.push_back({std::move(name), std::move(meta), std::move(help),
                      [out, flag_name](const std::string& v) {
                        try {
                          std::size_t used = 0;
                          *out = std::stod(v, &used);
                          if (used != v.size()) throw Error("");
                        } catch (const std::exception&) {
                          throw Error(flag_name + " needs a number");
                        }
                      },
                      true});
    return *this;
  }

  /// Arbitrary handler for a valued option.
  OptionTable& value(std::string name, std::string meta, std::string help,
                     std::function<void(const std::string&)> apply) {
    specs_.push_back({std::move(name), std::move(meta), std::move(help),
                      std::move(apply), true});
    return *this;
  }

  int usage() const {
    std::cerr << "usage: " << head_ << "\n";
    for (const Spec& s : specs_) {
      std::string left = "  " + s.name;
      if (!s.meta.empty()) left += " " + s.meta;
      std::cerr << pad_right(left, 22) << s.help << "\n";
    }
    return 2;
  }

  /// Parse argv; positionals (in order) land in `positionals`. Returns
  /// false after printing usage on `--help` or an unknown option.
  bool parse(int argc, char** argv, std::vector<std::string>& positionals) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-" || arg.empty() || arg[0] != '-') {
        positionals.push_back(arg);
        continue;
      }
      const Spec* spec = nullptr;
      for (const Spec& s : specs_) {
        if (s.name == arg) {
          spec = &s;
          break;
        }
      }
      if (spec == nullptr) {
        usage();
        return false;
      }
      std::string value;
      if (spec->takes_value) {
        if (i + 1 >= argc) throw Error(arg + " needs a value");
        value = argv[++i];
      }
      spec->apply(value);
    }
    return true;
  }

private:
  struct Spec {
    std::string name;
    std::string meta;  ///< value placeholder; empty for flags
    std::string help;
    std::function<void(const std::string&)> apply;
    bool takes_value;
  };

  std::string head_;
  std::vector<Spec> specs_;
};

// --- the canonical shared options ------------------------------------
// Every tool that offers one of these MUST add it through the helper so
// the spelling, placeholder and help text stay identical across
// cepic-cc, cepic-sim and cepic-explore.

/// `--config FILE` — processor configuration.
inline void add_config_option(OptionTable& table, std::string* config_path) {
  table.str("--config", "FILE", "processor configuration file", config_path);
}

/// `--cache DIR` + `--cache-stats` — the persistent content-addressed
/// compile store (artifacts shared across configurations, tools and
/// runs; results.cache lives inside it) and its stderr report.
inline void add_cache_options(OptionTable& table, std::string* store_dir,
                              bool* cache_stats) {
  table.str("--cache", "DIR",
            "persistent compile store (artifacts + results)", store_dir);
  table.flag("--cache-stats", "report store hits/misses to stderr",
             cache_stats);
}

/// `--jobs N` — shared thread-pool width.
inline void add_jobs_option(OptionTable& table, unsigned* jobs) {
  table.uint("--jobs", "N", "worker threads; 0 = all hardware threads",
             jobs);
}

/// `--exec-tier TIER` — simulator execution tier (docs/SIM.md
/// "Execution tiers"). Spellings match to_string(ExecTier).
inline void add_exec_tier_option(OptionTable& table, ExecTier* tier) {
  table.value("--exec-tier", "TIER",
              "simulator tier: threaded (default), decode or interp",
              [tier](const std::string& v) {
                if (v == "interp") {
                  *tier = ExecTier::Interp;
                } else if (v == "decode") {
                  *tier = ExecTier::Decode;
                } else if (v == "threaded") {
                  *tier = ExecTier::Threaded;
                } else {
                  throw Error("--exec-tier needs interp, decode or threaded");
                }
              });
}

// --- observability ----------------------------------------------------

/// Shared observability surface: the two flags every tool spells the
/// same way (docs/OBSERVABILITY.md).
struct ObsOptions {
  std::string trace_out;     ///< Chrome trace JSON of toolchain spans
  std::string metrics_json;  ///< flat counters/gauges/histograms report
  std::string flight_out;    ///< flight-recorder dump (always-on rings)
};

/// `--trace-out FILE` + `--metrics-json FILE` + `--flight-out FILE`.
inline void add_obs_options(OptionTable& table, ObsOptions* obs) {
  table.str("--trace-out", "FILE",
            "write toolchain spans as Chrome trace JSON (Perfetto)",
            &obs->trace_out);
  table.str("--metrics-json", "FILE",
            "write counters/gauges/histograms as JSON", &obs->metrics_json);
  table.str("--flight-out", "FILE",
            "dump the always-on flight recorder (last events per thread) "
            "as Chrome trace JSON, on exit and on faults",
            &obs->flight_out);
}

/// Call right after parse(): switches span recording on when a trace
/// was requested (the whole tool run is covered) and registers the
/// fault-dump path when a flight dump was requested, so a fault
/// anywhere below leaves the post-mortem file even though the normal
/// obs_finish exit is never reached.
inline void obs_begin(const ObsOptions& obs) {
  if (!obs.trace_out.empty()) cepic::obs::set_enabled(true);
  if (!obs.flight_out.empty()) {
    cepic::obs::set_flight_fault_path(obs.flight_out);
  }
}

/// Call once the tool's work (and any Service::publish_stats()) is
/// done: writes the requested artifacts.
inline void obs_finish(const ObsOptions& obs) {
  if (!obs.trace_out.empty()) cepic::obs::write_trace_json(obs.trace_out);
  if (!obs.metrics_json.empty()) {
    cepic::obs::write_metrics_json(obs.metrics_json);
  }
  if (!obs.flight_out.empty()) {
    cepic::obs::write_flight_json(obs.flight_out);
  }
}

/// The `--cache-stats` report: one grep-able summary line (a fully warm
/// run shows `compiles=0`) plus one line per store granularity. Folds
/// the Service's counters into the obs registry first and renders from
/// that snapshot, so `--metrics-json` and this report can never
/// disagree.
inline void print_cache_stats(const char* tool,
                              const pipeline::ServiceStats& stats) {
  pipeline::publish_stats(stats);
  const auto counters = obs::Registry::instance().counters();
  const auto get = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [k, v] : counters) {
      if (k == name) return v;
    }
    return 0;
  };
  const auto granularity = [&](const char* name) {
    std::cerr << tool << ": cache-stats " << name
              << " hits=" << get(cat("store.", name, ".hits"))
              << " misses=" << get(cat("store.", name, ".misses"))
              << " puts=" << get(cat("store.", name, ".puts")) << "\n";
  };
  std::cerr << tool << ": cache-stats compiles=" << get("pipeline.compiles")
            << " frontend=" << get("pipeline.frontend_runs")
            << " backend=" << get("pipeline.backend_runs")
            << " assemble=" << get("pipeline.assemble_runs")
            << " simulations=" << get("pipeline.simulations")
            << " result-hits=" << get("pipeline.result_hits")
            << " result-misses=" << get("pipeline.result_misses")
            << " sim-dedup=" << get("pipeline.sim_dedup_hits")
            << " lint=" << get("pipeline.lint_runs") << "\n";
  granularity("ir");
  granularity("asm");
  granularity("program");
  granularity("lint");
}

}  // namespace cepic::tools
